// Chain replication tests: traditional chain and Kamino-Tx-Chain (paper §5)
// including fail-stop repair, head promotion and quick-reboot recovery.

#include "src/chain/chain.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "src/common/random.h"

namespace kamino::chain {
namespace {

ChainOptions Opts(bool kamino, int f = 2) {
  ChainOptions o;
  o.kamino = kamino;
  o.f = f;
  o.pool_size = 32ull << 20;
  o.log_region_size = 4ull << 20;
  o.one_way_latency_us = 5;
  o.client_timeout_ms = 5'000;
  return o;
}

// All live replicas must hold identical KV contents (determinism invariant).
void ExpectReplicasConverged(Chain* chain, const std::map<uint64_t, std::string>& expect) {
  ASSERT_TRUE(chain->Quiesce().ok());
  const View v = chain->current_view();
  for (uint64_t id : v.nodes) {
    Replica* r = chain->replica_by_id(id);
    ASSERT_NE(r, nullptr);
    ASSERT_TRUE(r->tree()->Validate().ok()) << "replica " << id;
    EXPECT_EQ(r->tree()->CountSlow(), expect.size()) << "replica " << id;
    for (const auto& [k, val] : expect) {
      Result<std::string> got = r->tree()->Get(k);
      ASSERT_TRUE(got.ok()) << "replica " << id << " key " << k;
      EXPECT_EQ(*got, val) << "replica " << id << " key " << k;
    }
  }
}

class ChainTest : public ::testing::TestWithParam<bool> {
 protected:
  bool kamino() const { return GetParam(); }
};

TEST_P(ChainTest, GeometryMatchesTable1) {
  auto chain = Chain::Create(Opts(kamino(), /*f=*/2)).value();
  EXPECT_EQ(chain->num_replicas(), kamino() ? 4u : 3u);
}

TEST_P(ChainTest, WriteReadRoundTrip) {
  auto chain = Chain::Create(Opts(kamino())).value();
  ASSERT_TRUE(chain->Upsert(1, "hello").ok());
  EXPECT_EQ(chain->Read(1).value(), "hello");
  EXPECT_EQ(chain->Read(2).status().code(), StatusCode::kNotFound);
}

TEST_P(ChainTest, OverwriteAndDelete) {
  auto chain = Chain::Create(Opts(kamino())).value();
  ASSERT_TRUE(chain->Upsert(1, "v1").ok());
  ASSERT_TRUE(chain->Upsert(1, "v2").ok());
  EXPECT_EQ(chain->Read(1).value(), "v2");
  ASSERT_TRUE(chain->Delete(1).ok());
  EXPECT_EQ(chain->Read(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(chain->Delete(1).code(), StatusCode::kNotFound);
}

TEST_P(ChainTest, MultiUpsertIsAtomicAcrossChain) {
  auto chain = Chain::Create(Opts(kamino())).value();
  ASSERT_TRUE(chain->MultiUpsert({{1, "a"}, {2, "b"}, {3, "c"}}).ok());
  EXPECT_EQ(chain->Read(1).value(), "a");
  EXPECT_EQ(chain->Read(2).value(), "b");
  EXPECT_EQ(chain->Read(3).value(), "c");
}

TEST_P(ChainTest, AllReplicasConverge) {
  auto chain = Chain::Create(Opts(kamino())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 60; ++k) {
    const std::string v = "val-" + std::to_string(k);
    ASSERT_TRUE(chain->Upsert(k, v).ok());
    model[k] = v;
  }
  for (uint64_t k = 0; k < 60; k += 4) {
    ASSERT_TRUE(chain->Delete(k).ok());
    model.erase(k);
  }
  ExpectReplicasConverged(chain.get(), model);
}

TEST_P(ChainTest, ConcurrentClientsPipeline) {
  auto chain = Chain::Create(Opts(kamino())).value();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i);
        if (!chain->Upsert(key, "v" + std::to_string(key)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures, 0);
  std::map<uint64_t, std::string> model;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const uint64_t key = static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i);
      model[key] = "v" + std::to_string(key);
    }
  }
  ExpectReplicasConverged(chain.get(), model);
}

TEST_P(ChainTest, DependentWritesSerializeToLastValue) {
  auto chain = Chain::Create(Opts(kamino())).value();
  ASSERT_TRUE(chain->Upsert(7, "init").ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(chain->Upsert(7, "w" + std::to_string(t) + "-" + std::to_string(i)).ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_TRUE(chain->Quiesce().ok());
  // Every replica agrees on whatever the last committed value was.
  const View v = chain->current_view();
  const std::string head_val =
      chain->replica_by_id(v.head())->tree()->Get(7).value();
  for (uint64_t id : v.nodes) {
    EXPECT_EQ(chain->replica_by_id(id)->tree()->Get(7).value(), head_val);
  }
}

TEST_P(ChainTest, StorageFootprint) {
  auto chain = Chain::Create(Opts(kamino(), /*f=*/2)).value();
  const uint64_t pool = (32ull << 20);
  if (kamino()) {
    // f+2 replicas + one full backup at the head (alpha = 1).
    EXPECT_EQ(chain->total_nvm_bytes(), 5 * pool);
  } else {
    // f+1 replicas, no backups.
    EXPECT_EQ(chain->total_nvm_bytes(), 3 * pool);
  }
}

// --- Failure handling ---------------------------------------------------------

TEST_P(ChainTest, TailFailure) {
  auto chain = Chain::Create(Opts(kamino())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "pre").ok());
    model[k] = "pre";
  }
  ASSERT_TRUE(chain->Quiesce().ok());
  ASSERT_TRUE(chain->KillReplica(chain->current_view().tail()).ok());

  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "post").ok());
    model[k] = "post";
  }
  EXPECT_EQ(chain->Read(5).value(), "post");
  ExpectReplicasConverged(chain.get(), model);
}

TEST_P(ChainTest, MiddleFailure) {
  auto chain = Chain::Create(Opts(kamino())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "pre").ok());
    model[k] = "pre";
  }
  ASSERT_TRUE(chain->Quiesce().ok());
  const View v = chain->current_view();
  ASSERT_GE(v.nodes.size(), 3u);
  ASSERT_TRUE(chain->KillReplica(v.nodes[1]).ok());

  for (uint64_t k = 10; k < 30; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "post").ok());
    model[k] = "post";
  }
  ExpectReplicasConverged(chain.get(), model);
}

TEST_P(ChainTest, HeadFailurePromotesAndContinues) {
  auto chain = Chain::Create(Opts(kamino())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "pre").ok());
    model[k] = "pre";
  }
  ASSERT_TRUE(chain->Quiesce().ok());
  const uint64_t old_head = chain->current_view().head();
  ASSERT_TRUE(chain->KillReplica(old_head).ok());
  EXPECT_NE(chain->current_view().head(), old_head);

  // The promoted head accepts writes and serves (chain) reads.
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "post").ok()) << k;
    model[k] = "post";
  }
  EXPECT_EQ(chain->Read(3).value(), "post");
  ExpectReplicasConverged(chain.get(), model);
}

TEST_P(ChainTest, RepairRestoresFullStrength) {
  auto chain = Chain::Create(Opts(kamino())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 25; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "v" + std::to_string(k)).ok());
    model[k] = "v" + std::to_string(k);
  }
  ASSERT_TRUE(chain->Quiesce().ok());
  const size_t full = chain->current_view().nodes.size();
  ASSERT_TRUE(chain->KillReplica(chain->current_view().tail()).ok());
  ASSERT_TRUE(chain->AddReplica().ok());
  EXPECT_EQ(chain->current_view().nodes.size(), full);

  // New tail must already hold the full dataset (state transfer) and keep up.
  for (uint64_t k = 25; k < 35; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "v" + std::to_string(k)).ok());
    model[k] = "v" + std::to_string(k);
  }
  ExpectReplicasConverged(chain.get(), model);
}

TEST_P(ChainTest, QuickRebootIdleReplica) {
  auto chain = Chain::Create(Opts(kamino())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "v").ok());
    model[k] = "v";
  }
  ASSERT_TRUE(chain->Quiesce().ok());
  const View v = chain->current_view();
  ASSERT_TRUE(chain->RebootReplica(v.nodes[1]).ok());

  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "w").ok());
    model[k] = "w";
  }
  ExpectReplicasConverged(chain.get(), model);
}

TEST_P(ChainTest, QuickRebootMidApplyRollsForward) {
  auto chain = Chain::Create(Opts(kamino())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "stable").ok());
    model[k] = "stable";
  }
  ASSERT_TRUE(chain->Quiesce().ok());

  // Arm a power failure in the middle of the victim's next apply, then issue
  // a write that trips it. The write stalls in the chain until the victim
  // reboots and rolls the incomplete transaction forward from its
  // predecessor (paper Figure 9).
  const View v = chain->current_view();
  Replica* victim = chain->replica_by_id(v.nodes[1]);
  victim->ArmCrashDuringNextApply();

  std::thread writer([&] {
    ASSERT_TRUE(chain->Upsert(5, "after-crash").ok());
  });
  // Give the op time to reach the victim and kill it.
  for (int i = 0; i < 200 && victim->alive(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(victim->alive()) << "fault never fired";
  ASSERT_TRUE(chain->RebootReplica(victim->node_id()).ok());
  writer.join();
  model[5] = "after-crash";

  EXPECT_EQ(chain->Read(5).value(), "after-crash");
  ExpectReplicasConverged(chain.get(), model);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ChainTest, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "KaminoChain" : "TraditionalChain";
                         });

// Stale reads are answered by any live replica at its applied watermark:
// after Quiesce every replica holds the committed state, so round-robined
// stale reads return correct values from every chain position.
TEST_P(ChainTest, StaleReadsServedFromEveryReplica) {
  auto chain = Chain::Create(Opts(kamino())).value();
  for (uint64_t k = 0; k < 32; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "sv" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(chain->Quiesce().ok());
  // One round per replica so the round-robin cursor visits every position.
  const size_t n = chain->current_view().nodes.size();
  for (size_t round = 0; round < n; ++round) {
    for (uint64_t k = 0; k < 32; ++k) {
      uint64_t applied = 0;
      Result<std::string> got = chain->ReadStale(k, &applied);
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_EQ(*got, "sv" + std::to_string(k));
      EXPECT_GT(applied, 0u);  // Every replica has applied the writes.
    }
  }
  uint64_t applied = 0;
  EXPECT_EQ(chain->ReadStale(999, &applied).status().code(),
            StatusCode::kNotFound);
}

// A killed replica is skipped by the stale-read round-robin instead of
// failing the call.
TEST_P(ChainTest, StaleReadsSkipDeadReplicas) {
  auto chain = Chain::Create(Opts(kamino())).value();
  ASSERT_TRUE(chain->Upsert(7, "alive").ok());
  ASSERT_TRUE(chain->Quiesce().ok());
  const View before = chain->current_view();
  ASSERT_TRUE(chain->KillReplica(before.nodes[before.nodes.size() / 2]).ok());
  for (int i = 0; i < 8; ++i) {
    Result<std::string> got = chain->ReadStale(7);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(*got, "alive");
  }
}

// Readers and quiescers racing a mid-flight promotion must get either a
// typed degradation (kUnavailable / kDegraded) or a consistent answer —
// never a torn value, a phantom miss, or a hang. The promotion holds the
// chain's recovery gate exclusively, so racing calls serialize against it;
// this test pins down that the observable outcomes stay within contract.
TEST_P(ChainTest, StaleReadsAndQuiesceRacingPromotionAreNeverTorn) {
  auto chain = Chain::Create(Opts(kamino())).value();
  constexpr uint64_t kKeys = 8;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "a-" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(chain->Quiesce().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> unexpected{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> quiesces{0};

  // Every key only ever holds "a-k" or "b-k"; anything else is a torn or
  // phantom read. Errors must be typed degradation, nothing else.
  std::thread reader([&] {
    uint64_t k = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t key = k++ % kKeys;
      Result<std::string> got = chain->ReadStale(key);
      reads.fetch_add(1, std::memory_order_relaxed);
      if (got.ok()) {
        if (*got != "a-" + std::to_string(key) && *got != "b-" + std::to_string(key)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (got.status().code() != StatusCode::kUnavailable &&
                 got.status().code() != StatusCode::kDegraded) {
        unexpected.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Quiesce must stay bounded (return a typed answer) even while the repair
  // gate is held; progress of this loop is the hang check.
  std::thread quiescer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Status st = chain->Quiesce(/*timeout_ms=*/300);
      quiesces.fetch_add(1, std::memory_order_relaxed);
      if (!st.ok() && st.code() != StatusCode::kUnavailable) {
        unexpected.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Overlapping writes give the reader a genuine old-vs-new race to observe.
  std::thread writer([&] {
    for (uint64_t k = 0; k < kKeys; ++k) {
      // May time out mid-repair; the read-side check accepts either version.
      (void)chain->Upsert(k, "b-" + std::to_string(k));
    }
  });

  ASSERT_TRUE(chain->KillReplica(chain->current_view().head()).ok());
  writer.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  reader.join();
  quiescer.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(quiesces.load(), 0u);

  // After the dust settles every key reads as one of its two versions, and
  // the chain still quiesces cleanly.
  ASSERT_TRUE(chain->Quiesce().ok());
  for (uint64_t k = 0; k < kKeys; ++k) {
    Result<std::string> got = chain->Read(k);
    ASSERT_TRUE(got.ok()) << "key " << k;
    EXPECT_TRUE(*got == "a-" + std::to_string(k) || *got == "b-" + std::to_string(k))
        << "key " << k << " read torn value " << *got;
  }
}

TEST(ChainDynamicHeadTest, DynamicBackupAtHeadWorks) {
  ChainOptions o = Opts(/*kamino=*/true);
  o.head_alpha = 0.3;
  auto chain = Chain::Create(o).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "dyn").ok());
    model[k] = "dyn";
  }
  ExpectReplicasConverged(chain.get(), model);
  // Head backup is a fraction of a full pool.
  const uint64_t pool = o.pool_size;
  EXPECT_LT(chain->total_nvm_bytes(), 5 * pool);
  EXPECT_GT(chain->total_nvm_bytes(), 4 * pool);
}

TEST(ChainSingleNodeTest, DegenerateChainWorks) {
  ChainOptions o = Opts(/*kamino=*/true, /*f=*/0);
  o.kamino = false;  // f=0 traditional => 1 replica.
  auto chain = Chain::Create(o).value();
  ASSERT_EQ(chain->num_replicas(), 1u);
  ASSERT_TRUE(chain->Upsert(1, "solo").ok());
  EXPECT_EQ(chain->Read(1).value(), "solo");
}

}  // namespace
}  // namespace kamino::chain
