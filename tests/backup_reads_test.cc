// Backup-epoch read model (DESIGN.md §12): snapshot reads and scans served
// from the backup copy at a transaction-consistent epoch cut.
//
// The load-bearing test is the writer-concurrent cut check: pairs of keys are
// always updated atomically in one transaction, so ANY scan that observes a
// half-updated pair has read a mid-transaction state. Main-path Scan gets the
// same assertion (the satellite regression test for its torn-read exposure).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/kv/kv_store.h"
#include "tests/test_util.h"

namespace kamino::kv {
namespace {

using test::CrashableSystem;

std::string PairValue(uint64_t pair, uint64_t version) {
  std::string v = "pair-" + std::to_string(pair) + "-v" + std::to_string(version);
  v.resize(96, '.');
  return v;
}

// Atomically writes the same value to both keys of a pair in one transaction.
Status PairUpdate(KvStore* store, uint64_t a, uint64_t b, const std::string& v) {
  pds::BPlusTree* tree = store->tree();
  auto guard = tree->LockShared();
  return store->manager()->RunWithRetries([&](txn::Tx& tx) -> Status {
    Status st = tree->UpdateInTx(tx, a, v);
    if (!st.ok()) {
      return st;
    }
    return tree->UpdateInTx(tx, b, v);
  });
}

class BackupReadsTest : public ::testing::TestWithParam<txn::EngineType> {
 protected:
  static constexpr uint64_t kPairs = 64;
  static constexpr uint64_t kPairStride = 1000;  // Pair i = keys {i, i+stride}.

  void SetUp() override {
    sys_ = CrashableSystem::Create(GetParam(), 256ull << 20, /*alpha=*/0.25,
                                   /*applier_threads=*/2);
    store_ = std::move(KvStore::Create(sys_.mgr.get()).value());
    for (uint64_t i = 0; i < kPairs; ++i) {
      ASSERT_TRUE(store_->Insert(i, PairValue(i, 0)).ok());
      ASSERT_TRUE(store_->Insert(i + kPairStride, PairValue(i, 0)).ok());
    }
    sys_.mgr->WaitIdle();
  }

  CrashableSystem sys_;
  std::unique_ptr<KvStore> store_;
};

TEST_P(BackupReadsTest, SnapshotReadMatchesReadWhenIdle) {
  uint64_t epoch = 0;
  for (uint64_t i = 0; i < kPairs; ++i) {
    Result<std::string> snap = store_->SnapshotRead(i, &epoch);
    ASSERT_TRUE(snap.ok()) << snap.status().message();
    EXPECT_EQ(*snap, store_->Read(i).value());
  }
  EXPECT_GT(epoch, 0u);
  Result<std::string> miss = store_->SnapshotRead(999'999);
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
}

TEST_P(BackupReadsTest, SnapshotScanMatchesScanWhenIdle) {
  uint64_t epoch = 0;
  auto snap = store_->SnapshotScan(0, kPairs, &epoch).value();
  auto main = store_->Scan(0, kPairs).value();
  ASSERT_EQ(snap.size(), main.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i], main[i]);
  }
  EXPECT_GT(epoch, 0u);
}

TEST_P(BackupReadsTest, EpochIsMonotoneAndCountsAppliedTransactions) {
  uint64_t prev = 0;
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(store_->Update(round % kPairs, PairValue(round % kPairs, 7)).ok());
    uint64_t epoch = 0;
    ASSERT_TRUE(store_->SnapshotRead(0, &epoch).ok());
    EXPECT_GE(epoch, prev);
    prev = epoch;
  }
  sys_.mgr->WaitIdle();
  const txn::EngineStats s = sys_.mgr->engine()->stats();
  // Once idle, every applied transaction is released and stamped: the durable
  // epoch equals the engine's applied count exactly (no crash involved here).
  EXPECT_EQ(s.backup_epoch, s.applied);
  EXPECT_GT(s.backup_read_hits + s.backup_read_misses, 0u);
  EXPECT_GT(s.backup_snapshot_views, 0u);
}

// The tentpole invariant: a snapshot scan under concurrent atomic pair
// writers never observes a half-updated pair — every observed state lies on
// a transaction boundary of the commit order.
TEST_P(BackupReadsTest, SnapshotScanNeverObservesMidTransactionState) {
  std::atomic<bool> stop{false};
  std::atomic<int> write_failures{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      uint64_t version = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        // Each writer owns a disjoint half of the pairs; both keys of a pair
        // always carry the same value or the write was not atomic.
        for (uint64_t i = static_cast<uint64_t>(t); i < kPairs; i += 2) {
          const std::string v = PairValue(i, version);
          if (!PairUpdate(store_.get(), i, i + kPairStride, v).ok()) {
            write_failures.fetch_add(1);
          }
        }
        ++version;
      }
    });
  }
  uint64_t last_epoch = 0;
  for (int round = 0; round < 30; ++round) {
    uint64_t epoch = 0;
    auto rows = store_->SnapshotScan(0, 2 * kPairStride, &epoch).value();
    EXPECT_GE(epoch, last_epoch);
    last_epoch = epoch;
    ASSERT_EQ(rows.size(), 2 * kPairs);
    for (uint64_t i = 0; i < kPairs; ++i) {
      EXPECT_EQ(rows[i].first, i);
      EXPECT_EQ(rows[kPairs + i].first, i + kPairStride);
      EXPECT_EQ(rows[i].second, rows[kPairs + i].second)
          << "snapshot scan observed a torn pair " << i << " at epoch " << epoch;
    }
  }
  stop.store(true);
  for (auto& w : writers) {
    w.join();
  }
  EXPECT_EQ(write_failures.load(), 0);
}

// Satellite regression: the main-path Scan holds 2PL read locks to the end of
// its transaction, so it must give the same no-torn-pair guarantee.
TEST_P(BackupReadsTest, MainScanNeverObservesMidTransactionState) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t version = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      for (uint64_t i = 0; i < kPairs; ++i) {
        ASSERT_TRUE(
            PairUpdate(store_.get(), i, i + kPairStride, PairValue(i, version)).ok());
      }
      ++version;
    }
  });
  for (int round = 0; round < 15; ++round) {
    auto rows = store_->Scan(0, 2 * kPairStride).value();
    ASSERT_EQ(rows.size(), 2 * kPairs);
    for (uint64_t i = 0; i < kPairs; ++i) {
      EXPECT_EQ(rows[i].second, rows[kPairs + i].second)
          << "main-path scan observed a torn pair " << i;
    }
  }
  stop.store(true);
  writer.join();
}

// Chunked analytics scans trade whole-result consistency for bounded applier
// stalls; each chunk must still be internally consistent and the union must
// cover every key exactly once.
TEST_P(BackupReadsTest, ChunkedSnapshotScanCoversKeyspace) {
  uint64_t epoch = 0;
  auto rows = store_->SnapshotScanChunked(0, 2 * kPairs, /*chunk_limit=*/7, &epoch).value();
  ASSERT_EQ(rows.size(), 2 * kPairs);
  for (uint64_t i = 0; i < kPairs; ++i) {
    EXPECT_EQ(rows[i].first, i);
    EXPECT_EQ(rows[kPairs + i].first, i + kPairStride);
  }
  EXPECT_GT(epoch, 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, BackupReadsTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic),
                         [](const auto& info) {
                           return info.param == txn::EngineType::kKaminoSimple
                                      ? "KaminoSimple"
                                      : "KaminoDynamic";
                         });

TEST(BackupReadsUnsupportedTest, NonKaminoEnginesReportNotSupported) {
  CrashableSystem sys = CrashableSystem::Create(txn::EngineType::kUndoLog);
  auto store = std::move(KvStore::Create(sys.mgr.get()).value());
  ASSERT_TRUE(store->Insert(1, "x").ok());
  EXPECT_EQ(store->SnapshotRead(1).status().code(), StatusCode::kNotSupported);
  EXPECT_EQ(store->SnapshotScan(0, 10).status().code(), StatusCode::kNotSupported);
}

// Partial-backup degradation story: with a tiny α budget most objects have no
// resident copy, so snapshot reads fall back to the epoch-checked main read —
// results stay correct and the misses are visible in the stats.
TEST(BackupReadsDynamicTest, TinyBudgetFallsBackToEpochCheckedMainReads) {
  CrashableSystem sys =
      CrashableSystem::Create(txn::EngineType::kKaminoDynamic, 64ull << 20,
                              /*alpha=*/0.001);
  auto store = std::move(KvStore::Create(sys.mgr.get()).value());
  constexpr uint64_t kN = 2048;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(store->Insert(k, PairValue(k, 0)).ok());
  }
  sys.mgr->WaitIdle();
  auto rows = store->SnapshotScan(0, kN).value();
  ASSERT_EQ(rows.size(), kN);
  for (uint64_t k = 0; k < kN; ++k) {
    EXPECT_EQ(rows[k].first, k);
    EXPECT_EQ(rows[k].second, PairValue(k, 0));
  }
  const txn::EngineStats s = sys.mgr->engine()->stats();
  EXPECT_GT(s.backup_read_misses, 0u);
}

}  // namespace
}  // namespace kamino::kv
