# Applies a multi-valued LABELS property to every test discovered from one
# gtest target. gtest_discover_tests cannot forward list-valued properties
# (the label list flattens into separate set_tests_properties arguments and
# only the first label survives), so kamino_label_tests() appends a stub to
# TEST_INCLUDE_FILES that sets KAMINO_LABEL_{TARGET,DIR,LABELS} and includes
# this script. It runs at ctest time, AFTER the discovery scripts, parses
# the registered test names back out of them, and labels each test.
file(GLOB _kamino_discovered "${KAMINO_LABEL_DIR}/${KAMINO_LABEL_TARGET}*_tests.cmake")
set(_kamino_names)
foreach(_kamino_file IN LISTS _kamino_discovered)
  file(STRINGS "${_kamino_file}" _kamino_lines REGEX "^add_test")
  foreach(_kamino_line IN LISTS _kamino_lines)
    if(_kamino_line MATCHES "^add_test\\(\\[=\\[([^]]+)\\]=\\]")
      list(APPEND _kamino_names "${CMAKE_MATCH_1}")
    endif()
  endforeach()
endforeach()
if(_kamino_names)
  set_tests_properties(${_kamino_names} PROPERTIES LABELS "${KAMINO_LABEL_LABELS}")
endif()
