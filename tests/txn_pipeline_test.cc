// Transaction Coordinator pipeline tests: sharded applier queues under
// concurrency, dependent-transaction ordering, crash during the
// committed-but-unapplied window with multiple appliers, and the abort /
// error paths that must release pins, slots and locks.
//
// The multi-threaded cases are the ThreadSanitizer targets for the striped
// dynamic backup and the per-shard queues (see CMakePresets.json, "tsan").

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "src/txn/kamino_engine.h"
#include "tests/test_util.h"

namespace kamino::txn {
namespace {

using test::CrashableSystem;

constexpr int kObjects = 32;
constexpr uint64_t kObjectSize = 64;

struct Stack {
  std::unique_ptr<heap::Heap> heap;
  std::unique_ptr<TxManager> mgr;

  static Stack Make(EngineType engine, int applier_threads,
                    const std::function<void(TxManagerOptions&)>& tweak = nullptr) {
    Stack s;
    heap::HeapOptions hopts;
    hopts.pool_size = 32ull << 20;
    s.heap = std::move(heap::Heap::Create(hopts).value());
    TxManagerOptions mopts;
    mopts.engine = engine;
    mopts.applier_threads = applier_threads;
    mopts.lock.timeout_ms = 10'000;
    if (tweak) {
      tweak(mopts);
    }
    s.mgr = std::move(TxManager::Create(s.heap.get(), mopts).value());
    return s;
  }
};

std::vector<uint64_t> AllocObjects(TxManager* mgr, int count) {
  std::vector<uint64_t> offs;
  for (int i = 0; i < count; ++i) {
    Status st = mgr->Run([&](Tx& tx) -> Status {
      Result<uint64_t> a = tx.Alloc(kObjectSize);
      if (!a.ok()) {
        return a.status();
      }
      offs.push_back(*a);
      return Status::Ok();
    });
    ASSERT_CRASH(st.ok());
  }
  mgr->WaitIdle();
  return offs;
}

// Four client threads hammer a shared object set with read-modify-write
// increments while N applier shards drain concurrently. Write locks are held
// until apply, so every increment must observe its predecessor (dependent
// ordering) and the final counters must be exact — for every applier count.
void RunContendedIncrements(EngineType engine, int applier_threads) {
  Stack s = Stack::Make(engine, applier_threads);
  std::vector<uint64_t> offs = AllocObjects(s.mgr.get(), kObjects);

  constexpr int kThreads = 4;
  constexpr int kTxPerThread = 200;
  std::vector<uint64_t> hits(kObjects, 0);
  std::mutex hits_mu;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<uint64_t> local(kObjects, 0);
      uint64_t state = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kTxPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const int obj = static_cast<int>((state >> 33) % kObjects);
        Status st = s.mgr->RunWithRetries([&](Tx& tx) -> Status {
          Result<void*> p = tx.OpenWrite(offs[static_cast<size_t>(obj)], kObjectSize);
          if (!p.ok()) {
            return p.status();
          }
          auto* counter = static_cast<uint64_t*>(*p);
          *counter += 1;
          return Status::Ok();
        });
        ASSERT_CRASH(st.ok());
        ++local[static_cast<size_t>(obj)];
      }
      std::lock_guard<std::mutex> lk(hits_mu);
      for (int o = 0; o < kObjects; ++o) {
        hits[static_cast<size_t>(o)] += local[static_cast<size_t>(o)];
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  s.mgr->WaitIdle();

  for (int o = 0; o < kObjects; ++o) {
    const auto* counter =
        static_cast<const uint64_t*>(s.heap->pool()->At(offs[static_cast<size_t>(o)]));
    EXPECT_EQ(*counter, hits[static_cast<size_t>(o)]) << "object " << o;
  }

  // After WaitIdle every committed transaction is applied, so main and
  // backup must agree on every object — regardless of how the applies were
  // spread across shards.
  if (engine == EngineType::kKaminoSimple) {
    nvm::Pool* backup = s.mgr->backup_pool();
    ASSERT_NE(backup, nullptr);
    for (uint64_t off : offs) {
      EXPECT_EQ(std::memcmp(s.heap->pool()->At(off), backup->At(off), kObjectSize), 0);
    }
  }

  const EngineStats stats = s.mgr->engine()->stats();
  EXPECT_EQ(stats.applier_queue_depth, 0u);
  EXPECT_GT(stats.apply_batches, 0u);
  EXPECT_EQ(stats.applied, stats.committed);
}

TEST(TxnPipelineTest, SimpleContendedIncrementsOneApplier) {
  RunContendedIncrements(EngineType::kKaminoSimple, 1);
}
TEST(TxnPipelineTest, SimpleContendedIncrementsTwoAppliers) {
  RunContendedIncrements(EngineType::kKaminoSimple, 2);
}
TEST(TxnPipelineTest, SimpleContendedIncrementsFourAppliers) {
  RunContendedIncrements(EngineType::kKaminoSimple, 4);
}
TEST(TxnPipelineTest, DynamicContendedIncrementsFourAppliers) {
  RunContendedIncrements(EngineType::kKaminoDynamic, 4);
}

// Crash while a committed transaction sits frozen in the applier queue:
// recovery must roll it forward into the backup, with multiple shards.
TEST(TxnPipelineTest, CrashDuringApplyRecoversCommitted) {
  CrashableSystem sys = CrashableSystem::Create(EngineType::kKaminoSimple, 64ull << 20,
                                                0.25, /*applier_threads=*/2);
  uint64_t off = 0;
  Status st = sys.mgr->Run([&](Tx& tx) -> Status {
    Result<uint64_t> a = tx.Alloc(kObjectSize);
    if (!a.ok()) {
      return a.status();
    }
    off = *a;
    Result<void*> p = tx.OpenWrite(off, kObjectSize);
    if (!p.ok()) {
      return p.status();
    }
    static_cast<uint64_t*>(*p)[0] = 1;
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok());
  sys.heap->set_root(off);
  sys.mgr->WaitIdle();

  auto* engine = static_cast<KaminoEngine*>(sys.mgr->engine());
  engine->PauseApplier(true);

  st = sys.mgr->Run([&](Tx& tx) -> Status {
    Result<void*> p = tx.OpenWrite(off, kObjectSize);
    if (!p.ok()) {
      return p.status();
    }
    static_cast<uint64_t*>(*p)[0] = 2;
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok());

  engine->DiscardPendingForCrashTest();
  sys.CrashAndRecover();

  off = sys.heap->root();
  EXPECT_EQ(static_cast<const uint64_t*>(sys.main_pool->At(off))[0], 2u);
  // Rolled forward during recovery: the backup mirror agrees.
  EXPECT_EQ(static_cast<const uint64_t*>(sys.backup_pool->At(off))[0], 2u);
}

// DiscardPendingForCrashTest must fix the in-flight accounting and wake
// WaitIdle callers; without that, the first WaitIdle after an unpause would
// block on transactions that no longer exist.
TEST(TxnPipelineTest, DiscardPendingUnblocksWaitIdle) {
  Stack s = Stack::Make(EngineType::kKaminoSimple, 2);
  std::vector<uint64_t> offs = AllocObjects(s.mgr.get(), 4);

  auto* engine = static_cast<KaminoEngine*>(s.mgr->engine());
  engine->PauseApplier(true);
  for (uint64_t off : offs) {
    Status st = s.mgr->Run([&](Tx& tx) -> Status {
      Result<void*> p = tx.OpenWrite(off, kObjectSize);
      if (!p.ok()) {
        return p.status();
      }
      static_cast<uint64_t*>(*p)[0] = 7;
      return Status::Ok();
    });
    ASSERT_TRUE(st.ok());
  }
  EXPECT_EQ(s.mgr->engine()->stats().applier_queue_depth, 4u);

  engine->DiscardPendingForCrashTest();
  EXPECT_EQ(s.mgr->engine()->stats().applier_queue_depth, 0u);
  engine->PauseApplier(false);

  auto waited = std::async(std::launch::async, [&] { s.mgr->WaitIdle(); });
  ASSERT_EQ(waited.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  // The discarded contexts' locks are intentionally leaked (the real caller
  // crashes the system next); the stack is torn down without reusing them.
}

// A failed intent-log append after EnsureBackupCopy(pin=true) must drop the
// pin: the intent never existed, so Abort will not unpin it, and a leaked
// pin makes the copy unevictable forever.
TEST(TxnPipelineTest, OpenWriteAppendFailureReleasesPin) {
  Stack s = Stack::Make(EngineType::kKaminoDynamic, 1, [](TxManagerOptions& o) {
    o.log.max_records = 2;  // Third record append in one transaction fails.
  });
  std::vector<uint64_t> offs = AllocObjects(s.mgr.get(), 3);
  auto* store = static_cast<DynamicBackupStore*>(s.mgr->backup_store());
  for (uint64_t off : offs) {
    ASSERT_TRUE(store->HasCopy(off));  // Created by the applier roll-forward.
  }

  Result<Tx> tx = s.mgr->Begin();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(tx->OpenWrite(offs[0], kObjectSize).ok());
  ASSERT_TRUE(tx->OpenWrite(offs[1], kObjectSize).ok());
  Result<void*> third = tx->OpenWrite(offs[2], kObjectSize);
  ASSERT_FALSE(third.ok());
  // The pin taken for the failed append must already be gone — only the two
  // successful opens hold pins.
  EXPECT_EQ(store->PinCount(offs[2]), 0u) << "pin leaked by the failed OpenWrite";
  EXPECT_EQ(store->PinCount(offs[0]), 1u);
  EXPECT_EQ(store->PinCount(offs[1]), 1u);
  (void)tx->Abort();
  s.mgr->WaitIdle();

  EXPECT_EQ(store->PinCount(offs[0]), 0u);
  EXPECT_EQ(store->PinCount(offs[1]), 0u);
  EXPECT_EQ(store->PinCount(offs[2]), 0u);
}

// When RestoreToMain fails mid-abort (chain replicas have no local backup),
// the abort must still release the log slot and every write lock — an early
// return here used to wedge all dependent transactions and, with enough
// failed aborts, exhaust the slot pool.
TEST(TxnPipelineTest, FailedAbortReleasesSlotAndLocks) {
  Stack s = Stack::Make(EngineType::kChainReplica, 1, [](TxManagerOptions& o) {
    o.log.num_slots = 2;  // A leaked slot shows up after two failed aborts.
    o.lock.timeout_ms = 500;
  });
  std::vector<uint64_t> offs = AllocObjects(s.mgr.get(), 1);

  for (int i = 0; i < 4; ++i) {
    Result<Tx> tx = s.mgr->Begin();
    ASSERT_TRUE(tx.ok());
    Result<void*> p = tx->OpenWrite(offs[0], kObjectSize);
    ASSERT_TRUE(p.ok());
    static_cast<uint64_t*>(*p)[0] = static_cast<uint64_t>(i);
    Status st = tx->Abort();
    EXPECT_FALSE(st.ok()) << "chain replica rollback is expected to fail";
  }

  // Lock and slot are free again: a normal transaction on the same object
  // must succeed well within the 500 ms lock timeout.
  Status st = s.mgr->Run([&](Tx& tx) -> Status {
    Result<void*> p = tx.OpenWrite(offs[0], kObjectSize);
    if (!p.ok()) {
      return p.status();
    }
    static_cast<uint64_t*>(*p)[0] = 99;
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok());
  s.mgr->WaitIdle();
}

}  // namespace
}  // namespace kamino::txn
