// Shared fixtures for Kamino-Tx tests: crashable pool/heap/manager bundles.

#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <memory>

#include "src/heap/heap.h"
#include "src/nvm/pool.h"
#include "src/txn/tx_manager.h"

// Hard-failure assert for helpers that cannot use gtest macros (non-void
// returns / constructors).
#define ASSERT_CRASH(x) \
  do {                  \
    if (!(x)) {         \
      abort();          \
    }                   \
  } while (0)

namespace kamino::test {

// A heap + manager whose pools outlive manager/heap teardown, so tests can
// simulate a crash and re-attach ("restart the process").
struct CrashableSystem {
  std::unique_ptr<nvm::Pool> main_pool;
  std::unique_ptr<nvm::Pool> backup_pool;  // Only for Kamino engines.
  std::unique_ptr<heap::Heap> heap;
  std::unique_ptr<txn::TxManager> mgr;

  txn::TxManagerOptions options;

  // `log` carries commit-path knobs (group_commit_window_ns, epoch_commit,
  // legacy_fences) into the system under test; geometry defaults apply.
  static CrashableSystem Create(txn::EngineType engine, uint64_t pool_size = 64ull << 20,
                                double alpha = 0.25, int applier_threads = 1,
                                const txn::LogOptions& log = {}) {
    CrashableSystem sys;
    nvm::PoolOptions popts;
    popts.size = pool_size;
    popts.crash_sim = true;
    sys.main_pool = std::move(nvm::Pool::Create(popts).value());

    sys.options.engine = engine;
    sys.options.log = log;
    sys.options.alpha = alpha;
    sys.options.lock.timeout_ms = 2000;
    sys.options.applier_threads = applier_threads;

    sys.heap = std::move(heap::Heap::CreateOn(sys.main_pool.get(), 16ull << 20).value());

    if (engine == txn::EngineType::kKaminoSimple) {
      nvm::PoolOptions bopts;
      bopts.size = pool_size;
      bopts.crash_sim = true;
      sys.backup_pool = std::move(nvm::Pool::Create(bopts).value());
      sys.options.external_backup_pool = sys.backup_pool.get();
    } else if (engine == txn::EngineType::kKaminoDynamic) {
      const uint64_t budget = static_cast<uint64_t>(
          alpha * static_cast<double>(sys.heap->allocator()->stats().capacity));
      nvm::PoolOptions bopts;
      bopts.size = txn::DynamicBackupStore::RequiredPoolSize(budget, 1 << 14);
      bopts.crash_sim = true;
      sys.backup_pool = std::move(nvm::Pool::Create(bopts).value());
      sys.options.external_backup_pool = sys.backup_pool.get();
      sys.options.dynamic_lookup_buckets = 1 << 14;
    }

    sys.mgr = std::move(txn::TxManager::Create(sys.heap.get(), sys.options).value());
    return sys;
  }

  // Simulates a machine crash: discards unflushed stores in both pools and
  // rebuilds heap + manager via the recovery path. Callers must have
  // quiesced the applier (WaitIdle / PauseApplier + DiscardPending).
  void CrashAndRecover(nvm::CrashMode mode = nvm::CrashMode::kDropUnflushed,
                       uint64_t seed = 0) {
    mgr.reset();   // "Process dies" — volatile state (locks, LRU) is lost.
    heap.reset();
    ASSERT_CRASH(main_pool->Crash(mode, seed).ok());
    if (backup_pool) {
      ASSERT_CRASH(backup_pool->Crash(mode, seed + 1).ok());
    }
    heap = std::move(heap::Heap::Attach(main_pool.get()).value());
    mgr = std::move(txn::TxManager::Open(heap.get(), options).value());
  }
};

}  // namespace kamino::test

#endif  // TESTS_TEST_UTIL_H_
