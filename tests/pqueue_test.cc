#include "src/pds/pqueue.h"

#include <gtest/gtest.h>

#include <deque>

#include "src/common/random.h"
#include "tests/test_util.h"

namespace kamino::pds {
namespace {

using test::CrashableSystem;

class PQueueTest : public ::testing::TestWithParam<txn::EngineType> {
 protected:
  void SetUp() override {
    sys_ = CrashableSystem::Create(GetParam());
    q_ = std::move(PQueue::Create(sys_.mgr.get()).value());
  }

  CrashableSystem sys_;
  std::unique_ptr<PQueue> q_;
};

TEST_P(PQueueTest, EmptyQueue) {
  EXPECT_TRUE(q_->empty());
  EXPECT_EQ(q_->PopFront().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(q_->Front().status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(q_->Validate().ok());
}

TEST_P(PQueueTest, FifoOrder) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(q_->PushBack("item-" + std::to_string(i)).ok());
  }
  EXPECT_EQ(q_->size(), 20u);
  EXPECT_EQ(q_->Front().value(), "item-0");
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(q_->PopFront().value(), "item-" + std::to_string(i));
  }
  EXPECT_TRUE(q_->empty());
  sys_.mgr->WaitIdle();
  EXPECT_TRUE(q_->Validate().ok());
}

TEST_P(PQueueTest, SequenceNumbersAreMonotonic) {
  const uint64_t s1 = q_->PushBack("a").value();
  const uint64_t s2 = q_->PushBack("b").value();
  (void)q_->PopFront();
  const uint64_t s3 = q_->PushBack("c").value();
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s3);
}

TEST_P(PQueueTest, InterleavedPushPopAgainstModel) {
  std::deque<std::string> model;
  Xoshiro256 rng(5);
  for (int op = 0; op < 1000; ++op) {
    if (model.empty() || rng.NextDouble() < 0.6) {
      const std::string v = "v" + std::to_string(op);
      ASSERT_TRUE(q_->PushBack(v).ok());
      model.push_back(v);
    } else {
      ASSERT_EQ(q_->PopFront().value(), model.front());
      model.pop_front();
    }
  }
  sys_.mgr->WaitIdle();
  ASSERT_TRUE(q_->Validate().ok());
  EXPECT_EQ(q_->size(), model.size());
  auto items = q_->Items();
  ASSERT_EQ(items.size(), model.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i], model[i]);
  }
}

TEST_P(PQueueTest, VariableSizedPayloads) {
  ASSERT_TRUE(q_->PushBack("").ok());
  ASSERT_TRUE(q_->PushBack(std::string(5000, 'x')).ok());
  EXPECT_EQ(q_->PopFront().value(), "");
  EXPECT_EQ(q_->PopFront().value().size(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(Engines, PQueueTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic,
                                           txn::EngineType::kUndoLog, txn::EngineType::kCow,
                                           txn::EngineType::kRedoLog),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           switch (info.param) {
                             case txn::EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case txn::EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case txn::EngineType::kUndoLog:
                               return "UndoLog";
                             case txn::EngineType::kCow:
                               return "Cow";
                             case txn::EngineType::kRedoLog:
                               return "RedoLog";
                             default:
                               return "Unknown";
                           }
                         });

TEST(PQueueCrashTest, InterruptedPushInvisibleAfterRecovery) {
  for (txn::EngineType engine :
       {txn::EngineType::kKaminoSimple, txn::EngineType::kUndoLog,
        txn::EngineType::kRedoLog}) {
    CrashableSystem sys = CrashableSystem::Create(engine);
    uint64_t anchor = 0;
    {
      auto q = PQueue::Create(sys.mgr.get()).value();
      anchor = q->anchor();
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(q->PushBack("stable-" + std::to_string(i)).ok());
      }
      sys.mgr->WaitIdle();
      // A push left mid-flight: alloc done, anchor half-updated, no commit.
      Result<txn::Tx> tx = sys.mgr->Begin();
      ASSERT_TRUE(tx.ok());
      uint64_t node = tx->Alloc(64).value();
      auto* a = static_cast<PQueue::Anchor*>(
          tx->OpenWrite(anchor, sizeof(PQueue::Anchor)).value());
      a->tail = node;
      ++a->size;
      sys.main_pool->Persist(a, sizeof(PQueue::Anchor));
      tx->LeakForCrashTest();
    }
    sys.CrashAndRecover();
    auto q = PQueue::Attach(sys.mgr.get(), anchor).value();
    ASSERT_TRUE(q->Validate().ok()) << txn::EngineTypeName(engine);
    EXPECT_EQ(q->size(), 10u);
    EXPECT_EQ(q->Front().value(), "stable-0");
    // Still usable.
    ASSERT_TRUE(q->PushBack("post-crash").ok());
    EXPECT_EQ(q->size(), 11u);
  }
}

}  // namespace
}  // namespace kamino::pds
