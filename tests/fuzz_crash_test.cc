// Randomized whole-system crash fuzzer: a tree + map + queue share one heap;
// random committed operations interleave with leaked (in-flight)
// transactions and randomized power failures (kEvictRandomly). After every
// recovery, all structural invariants must hold and all committed data must
// match a volatile model exactly. Sweeps engines x seeds.
//
// EnumeratedCrashPoints complements the randomness with one systematic pass
// per engine through the crash-point scheduler (tests/crash_points/): every
// k-th persistence event of a small deterministic workload, instead of
// whatever points the random seeds happen to hit.

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "src/common/random.h"
#include "src/pds/bplus_tree.h"
#include "src/pds/hash_map.h"
#include "src/pds/pqueue.h"
#include "tests/crash_points/crash_point_harness.h"
#include "tests/test_util.h"

namespace kamino {
namespace {

using test::CrashableSystem;

struct Model {
  std::map<uint64_t, std::string> tree;
  std::map<uint64_t, std::string> map;
  std::deque<std::string> queue;
};

struct Structures {
  std::unique_ptr<pds::BPlusTree> tree;
  std::unique_ptr<pds::HashMap> map;
  std::unique_ptr<pds::PQueue> queue;
};

Structures AttachAll(CrashableSystem* sys, uint64_t tree_a, uint64_t map_a, uint64_t q_a) {
  Structures s;
  s.tree = std::move(pds::BPlusTree::Attach(sys->mgr.get(), tree_a).value());
  s.map = std::move(pds::HashMap::Attach(sys->mgr.get(), map_a).value());
  s.queue = std::move(pds::PQueue::Attach(sys->mgr.get(), q_a).value());
  return s;
}

void CheckAgainstModel(const Structures& s, const Model& m) {
  ASSERT_TRUE(s.tree->Validate().ok());
  ASSERT_TRUE(s.map->Validate().ok());
  ASSERT_TRUE(s.queue->Validate().ok());
  ASSERT_EQ(s.tree->CountSlow(), m.tree.size());
  for (const auto& [k, v] : m.tree) {
    ASSERT_EQ(s.tree->Get(k).value(), v) << "tree key " << k;
  }
  ASSERT_EQ(s.map->CountSlow(), m.map.size());
  for (const auto& [k, v] : m.map) {
    ASSERT_EQ(s.map->Get(k).value(), v) << "map key " << k;
  }
  ASSERT_EQ(s.queue->size(), m.queue.size());
  const auto items = s.queue->Items();
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_EQ(items[i], m.queue[i]) << "queue item " << i;
  }
}

class FuzzCrashTest : public ::testing::TestWithParam<txn::EngineType> {};

TEST_P(FuzzCrashTest, RandomOpsWithRandomCrashes) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    CrashableSystem sys = CrashableSystem::Create(GetParam(), 128ull << 20);
    Model model;
    Xoshiro256 rng(seed * 7919);

    uint64_t tree_a, map_a, q_a;
    {
      auto tree = pds::BPlusTree::Create(sys.mgr.get()).value();
      auto map = pds::HashMap::Create(sys.mgr.get(), 128).value();
      auto queue = pds::PQueue::Create(sys.mgr.get()).value();
      tree_a = tree->anchor();
      map_a = map->anchor();
      q_a = queue->anchor();
    }
    Structures s = AttachAll(&sys, tree_a, map_a, q_a);

    for (int round = 0; round < 4; ++round) {
      // A burst of committed operations, mirrored in the model.
      for (int op = 0; op < 120; ++op) {
        const uint64_t key = rng.NextBounded(80);
        const std::string val =
            "s" + std::to_string(seed) + "r" + std::to_string(round) + "o" + std::to_string(op);
        switch (rng.NextBounded(6)) {
          case 0:
            ASSERT_TRUE(s.tree->Upsert(key, val).ok());
            model.tree[key] = val;
            break;
          case 1:
            if (s.tree->Delete(key).ok()) {
              model.tree.erase(key);
            }
            break;
          case 2:
            ASSERT_TRUE(s.map->Put(key, val).ok());
            model.map[key] = val;
            break;
          case 3:
            if (s.map->Erase(key).ok()) {
              model.map.erase(key);
            }
            break;
          case 4:
            ASSERT_TRUE(s.queue->PushBack(val).ok());
            model.queue.push_back(val);
            break;
          case 5:
            if (s.queue->PopFront().ok()) {
              model.queue.pop_front();
            }
            break;
        }
      }
      sys.mgr->WaitIdle();

      // One in-flight transaction that dies with the machine (sometimes).
      if (rng.NextDouble() < 0.7) {
        Result<txn::Tx> tx = sys.mgr->Begin();
        ASSERT_TRUE(tx.ok());
        auto guard = s.tree->LockExclusive();
        (void)s.tree->UpsertInTx(*tx, 999, "doomed");
        tx->LeakForCrashTest();
      }

      // Power failure with a random eviction outcome, then recovery.
      s = Structures{};  // Handles die with the "process".
      sys.CrashAndRecover(nvm::CrashMode::kEvictRandomly, seed * 100 + round);
      s = AttachAll(&sys, tree_a, map_a, q_a);
      CheckAgainstModel(s, model);
      ASSERT_EQ(s.tree->Get(999).status().code(), StatusCode::kNotFound)
          << "in-flight write leaked into recovered state";
    }
  }
}

// One enumerated (non-random) pass per engine: a small workload, every 3rd
// persistence event injected. Catches ordering bugs the random sweep's
// eviction model can step over.
TEST_P(FuzzCrashTest, EnumeratedCrashPoints) {
  testing::CrashPointOptions options;
  options.engine = GetParam();
  options.num_ops = 4;
  options.stride = 3;
  testing::CrashPointReport report = testing::EnumerateCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Engines, FuzzCrashTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic,
                                           txn::EngineType::kUndoLog, txn::EngineType::kCow,
                                           txn::EngineType::kRedoLog),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           switch (info.param) {
                             case txn::EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case txn::EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case txn::EngineType::kUndoLog:
                               return "UndoLog";
                             case txn::EngineType::kCow:
                               return "Cow";
                             case txn::EngineType::kRedoLog:
                               return "RedoLog";
                             default:
                               return "Unknown";
                           }
                         });

}  // namespace
}  // namespace kamino
