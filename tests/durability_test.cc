// File-backed durability: the cross-process persistence path (Pool::OpenFile)
// that the kamino_kv_shell / kamino_inspect tools rely on. Simulates process
// restarts by destroying every object and re-opening from the files.

#include <gtest/gtest.h>
#include <unistd.h>

#include "src/kv/kv_store.h"
#include "src/nvm/pool.h"
#include "src/txn/tx_manager.h"

namespace kamino {
namespace {

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/kamino_durability_" + std::to_string(::getpid()) + ".pool";
    backup_path_ = path_ + ".backup";
  }
  void TearDown() override {
    ::unlink(path_.c_str());
    ::unlink(backup_path_.c_str());
  }

  std::string path_;
  std::string backup_path_;
};

TEST_F(DurabilityTest, PoolOpenFileSeesPersistedBytes) {
  {
    nvm::PoolOptions o;
    o.size = 4ull << 20;
    o.path = path_;
    auto pool = nvm::Pool::Create(o).value();
    auto* p = static_cast<uint64_t*>(pool->At(4096));
    *p = 0xABCDEF;
    pool->Persist(p, 8);
  }
  nvm::PoolOptions o;
  o.path = path_;
  auto pool = nvm::Pool::OpenFile(o).value();
  EXPECT_EQ(pool->size(), 4ull << 20);
  EXPECT_EQ(*static_cast<uint64_t*>(pool->At(4096)), 0xABCDEFu);
}

TEST_F(DurabilityTest, OpenFileRequiresPath) {
  nvm::PoolOptions o;
  EXPECT_FALSE(nvm::Pool::OpenFile(o).ok());
  o.path = "/tmp/kamino_no_such_file_12345.pool";
  EXPECT_FALSE(nvm::Pool::OpenFile(o).ok());
}

TEST_F(DurabilityTest, KvStoreSurvivesProcessRestart) {
  // "Process 1": create a store on files and write data.
  {
    nvm::PoolOptions po;
    po.size = 64ull << 20;
    po.path = path_;
    auto pool = nvm::Pool::Create(po).value();
    auto heap = heap::Heap::CreateOn(pool.get(), 8ull << 20).value();
    txn::TxManagerOptions mo;
    mo.engine = txn::EngineType::kKaminoSimple;
    mo.backup_path = backup_path_;
    auto mgr = txn::TxManager::Create(heap.get(), mo).value();
    auto store = kv::KvStore::Create(mgr.get()).value();
    for (uint64_t k = 0; k < 300; ++k) {
      ASSERT_TRUE(store->Upsert(k, "persisted-" + std::to_string(k)).ok());
    }
    mgr->WaitIdle();
  }  // Everything torn down; only the files remain.

  // "Process 2": reopen and read.
  nvm::PoolOptions po;
  po.path = path_;
  auto pool = nvm::Pool::OpenFile(po).value();
  auto heap = heap::Heap::Attach(pool.get()).value();
  nvm::PoolOptions bo;
  bo.path = backup_path_;
  auto backup = nvm::Pool::OpenFile(bo).value();
  txn::TxManagerOptions mo;
  mo.engine = txn::EngineType::kKaminoSimple;
  mo.external_backup_pool = backup.get();
  auto mgr = txn::TxManager::Open(heap.get(), mo).value();
  auto store = kv::KvStore::Open(mgr.get()).value();
  ASSERT_TRUE(store->tree()->Validate().ok());
  EXPECT_EQ(store->tree()->CountSlow(), 300u);
  EXPECT_EQ(store->Read(123).value(), "persisted-123");
  // And keeps working.
  ASSERT_TRUE(store->Upsert(1000, "second-life").ok());
  EXPECT_EQ(store->Read(1000).value(), "second-life");
  mgr->WaitIdle();
}

TEST_F(DurabilityTest, UndoStoreSurvivesRestartWithoutBackupFile) {
  {
    nvm::PoolOptions po;
    po.size = 32ull << 20;
    po.path = path_;
    auto pool = nvm::Pool::Create(po).value();
    auto heap = heap::Heap::CreateOn(pool.get(), 8ull << 20).value();
    txn::TxManagerOptions mo;
    mo.engine = txn::EngineType::kUndoLog;
    auto mgr = txn::TxManager::Create(heap.get(), mo).value();
    auto store = kv::KvStore::Create(mgr.get()).value();
    ASSERT_TRUE(store->Upsert(7, "undo-durable").ok());
  }
  nvm::PoolOptions po;
  po.path = path_;
  auto pool = nvm::Pool::OpenFile(po).value();
  auto heap = heap::Heap::Attach(pool.get()).value();
  txn::TxManagerOptions mo;
  mo.engine = txn::EngineType::kUndoLog;
  auto mgr = txn::TxManager::Open(heap.get(), mo).value();
  auto store = kv::KvStore::Open(mgr.get()).value();
  EXPECT_EQ(store->Read(7).value(), "undo-durable");
}

}  // namespace
}  // namespace kamino
