// Crash-consistency tests: simulate power failures in the windows the paper's
// recovery protocol must handle (mid-transaction, committed-but-unapplied)
// and verify the heap always recovers to a transaction-consistent state.
// The kEvictRandomly sweeps additionally model arbitrary cache evictions:
// recovery must be correct whether or not any given dirty line reached NVM.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/random.h"
#include "src/txn/kamino_engine.h"
#include "tests/test_util.h"

namespace kamino::txn {
namespace {

using test::CrashableSystem;

// Engines with rollback guarantees (no-logging intentionally excluded).
class CrashRecoveryTest : public ::testing::TestWithParam<EngineType> {
 protected:
  void SetUp() override { sys_ = CrashableSystem::Create(GetParam()); }

  bool is_kamino() const {
    return GetParam() == EngineType::kKaminoSimple ||
           GetParam() == EngineType::kKaminoDynamic;
  }
  KaminoEngine* kamino() { return static_cast<KaminoEngine*>(sys_.mgr->engine()); }

  // Allocates `n` objects of `size` bytes, each stamped with (index+1), in
  // committed transactions. Returns their offsets.
  std::vector<uint64_t> Populate(int n, uint64_t size = 128) {
    std::vector<uint64_t> offs;
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(sys_.mgr
                      ->Run([&](Tx& tx) -> Status {
                        uint64_t off = tx.Alloc(size).value();
                        std::memset(tx.OpenWrite(off, size).value(),
                                    static_cast<int>(i + 1), size);
                        offs.push_back(off);
                        return Status::Ok();
                      })
                      .ok());
    }
    sys_.mgr->WaitIdle();
    return offs;
  }

  void ExpectStamped(const std::vector<uint64_t>& offs, uint64_t size = 128) {
    for (size_t i = 0; i < offs.size(); ++i) {
      const auto* p = static_cast<const uint8_t*>(sys_.main_pool->At(offs[i]));
      for (uint64_t b = 0; b < size; ++b) {
        ASSERT_EQ(p[b], static_cast<uint8_t>(i + 1)) << "object " << i << " byte " << b;
      }
    }
  }

  CrashableSystem sys_;
};

TEST_P(CrashRecoveryTest, CommittedDataSurvivesCrash) {
  auto offs = Populate(16);
  sys_.CrashAndRecover();
  ExpectStamped(offs);
  for (uint64_t off : offs) {
    EXPECT_TRUE(sys_.heap->allocator()->IsAllocated(off));
  }
}

TEST_P(CrashRecoveryTest, MidTransactionCrashRollsBack) {
  auto offs = Populate(8);
  {
    Result<Tx> tx = sys_.mgr->Begin();
    ASSERT_TRUE(tx.ok());
    // Scribble over half the objects and persist the scribbles — the worst
    // case, where the in-place edits reached NVM before the failure.
    for (int i = 0; i < 4; ++i) {
      void* p = tx->OpenWrite(offs[static_cast<size_t>(i)], 128).value();
      std::memset(p, 0xEE, 128);
      sys_.main_pool->Persist(p, 128);
    }
    tx->LeakForCrashTest();  // Process dies without commit or abort.
  }
  sys_.CrashAndRecover();
  ExpectStamped(offs);  // All pre-transaction values restored.
  EXPECT_EQ(sys_.mgr->engine()->stats().recovered_back, 1u)
      << "Open must have rolled the incomplete transaction back";
}

TEST_P(CrashRecoveryTest, MidTransactionAllocDoesNotLeak) {
  Populate(4);
  std::vector<uint64_t> leaked;
  {
    Result<Tx> tx = sys_.mgr->Begin();
    ASSERT_TRUE(tx.ok());
    for (int i = 0; i < 5; ++i) {
      leaked.push_back(tx->Alloc(256).value());
    }
    tx->LeakForCrashTest();
  }
  sys_.CrashAndRecover();
  for (uint64_t off : leaked) {
    EXPECT_FALSE(sys_.heap->allocator()->IsAllocated(off)) << off;
  }
}

TEST_P(CrashRecoveryTest, MidTransactionFreeDoesNotFree) {
  auto offs = Populate(4);
  {
    Result<Tx> tx = sys_.mgr->Begin();
    ASSERT_TRUE(tx.ok());
    ASSERT_TRUE(tx->Free(offs[0]).ok());
    tx->LeakForCrashTest();
  }
  sys_.CrashAndRecover();
  EXPECT_TRUE(sys_.heap->allocator()->IsAllocated(offs[0]));
  ExpectStamped(offs);
}

TEST_P(CrashRecoveryTest, CrashWithRandomEvictionsAlwaysRecovers) {
  // Property sweep: whatever subset of dirty lines happens to survive, the
  // recovered heap must hold exactly the pre-transaction values.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    CrashableSystem sys = CrashableSystem::Create(GetParam());
    std::vector<uint64_t> offs;
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(sys.mgr
                      ->Run([&](Tx& tx) -> Status {
                        uint64_t off = tx.Alloc(128).value();
                        std::memset(tx.OpenWrite(off, 128).value(), i + 1, 128);
                        offs.push_back(off);
                        return Status::Ok();
                      })
                      .ok());
    }
    sys.mgr->WaitIdle();
    {
      Result<Tx> tx = sys.mgr->Begin();
      ASSERT_TRUE(tx.ok());
      for (int i = 0; i < 3; ++i) {
        void* p = tx->OpenWrite(offs[static_cast<size_t>(i)], 128).value();
        std::memset(p, 0xEE, 128);
        // Not persisted: lines may or may not survive, per seed.
      }
      tx->LeakForCrashTest();
    }
    sys.CrashAndRecover(nvm::CrashMode::kEvictRandomly, seed);
    for (size_t i = 0; i < offs.size(); ++i) {
      const auto* p = static_cast<const uint8_t*>(sys.main_pool->At(offs[i]));
      for (uint64_t b = 0; b < 128; ++b) {
        ASSERT_EQ(p[b], static_cast<uint8_t>(i + 1))
            << "seed " << seed << " object " << i << " byte " << b;
      }
    }
  }
}

// Pair-atomicity property: every transaction stamps the same value into two
// objects; recovery must never leave a pair torn, under any eviction outcome.
TEST_P(CrashRecoveryTest, PairAtomicityUnderRandomCrashes) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    CrashableSystem sys = CrashableSystem::Create(GetParam());
    constexpr int kPairs = 4;
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    for (int i = 0; i < kPairs; ++i) {
      ASSERT_TRUE(sys.mgr
                      ->Run([&](Tx& tx) -> Status {
                        uint64_t a = tx.Alloc(64).value();
                        uint64_t b = tx.Alloc(64).value();
                        *static_cast<uint64_t*>(tx.OpenWrite(a, 64).value()) = 1;
                        *static_cast<uint64_t*>(tx.OpenWrite(b, 64).value()) = 1;
                        pairs.emplace_back(a, b);
                        return Status::Ok();
                      })
                      .ok());
    }
    sys.mgr->WaitIdle();

    Xoshiro256 rng(seed);
    std::vector<uint64_t> committed_value(kPairs, 1);
    // A few committed updates...
    for (int t = 0; t < 6; ++t) {
      const int i = static_cast<int>(rng.NextBounded(kPairs));
      const uint64_t v = 10 + static_cast<uint64_t>(t);
      ASSERT_TRUE(sys.mgr
                      ->Run([&](Tx& tx) -> Status {
                        *static_cast<uint64_t*>(
                            tx.OpenWrite(pairs[static_cast<size_t>(i)].first, 64).value()) = v;
                        *static_cast<uint64_t*>(
                            tx.OpenWrite(pairs[static_cast<size_t>(i)].second, 64).value()) = v;
                        return Status::Ok();
                      })
                      .ok());
      committed_value[static_cast<size_t>(i)] = v;
    }
    sys.mgr->WaitIdle();
    // ...then one in-flight transaction that never commits.
    const int victim = static_cast<int>(rng.NextBounded(kPairs));
    {
      Result<Tx> tx = sys.mgr->Begin();
      ASSERT_TRUE(tx.ok());
      *static_cast<uint64_t*>(
          tx->OpenWrite(pairs[static_cast<size_t>(victim)].first, 64).value()) = 999;
      *static_cast<uint64_t*>(
          tx->OpenWrite(pairs[static_cast<size_t>(victim)].second, 64).value()) = 999;
      tx->LeakForCrashTest();
    }
    sys.CrashAndRecover(nvm::CrashMode::kEvictRandomly, seed * 17);
    for (int i = 0; i < kPairs; ++i) {
      const uint64_t a =
          *static_cast<uint64_t*>(sys.main_pool->At(pairs[static_cast<size_t>(i)].first));
      const uint64_t b =
          *static_cast<uint64_t*>(sys.main_pool->At(pairs[static_cast<size_t>(i)].second));
      ASSERT_EQ(a, b) << "torn pair " << i << " seed " << seed;
      ASSERT_EQ(a, committed_value[static_cast<size_t>(i)]) << "pair " << i << " seed " << seed;
    }
  }
}

TEST_P(CrashRecoveryTest, RecoveryIsIdempotent) {
  auto offs = Populate(4);
  {
    Result<Tx> tx = sys_.mgr->Begin();
    ASSERT_TRUE(tx.ok());
    std::memset(tx->OpenWrite(offs[0], 128).value(), 0xEE, 128);
    sys_.main_pool->Persist(sys_.main_pool->At(offs[0]), 128);
    tx->LeakForCrashTest();
  }
  sys_.CrashAndRecover();
  // Crash again immediately (recovery completed, nothing new committed).
  sys_.CrashAndRecover();
  ExpectStamped(offs);
}

TEST_P(CrashRecoveryTest, WorkContinuesAfterRecovery) {
  auto offs = Populate(4);
  {
    Result<Tx> tx = sys_.mgr->Begin();
    ASSERT_TRUE(tx.ok());
    std::memset(tx->OpenWrite(offs[1], 128).value(), 0xEE, 128);
    tx->LeakForCrashTest();
  }
  sys_.CrashAndRecover();
  // The recovered system accepts new transactions on the same objects.
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    std::memset(tx.OpenWrite(offs[1], 128).value(), 0x44, 128);
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();
  EXPECT_EQ(static_cast<uint8_t*>(sys_.main_pool->At(offs[1]))[0], 0x44);
}

// --- Kamino-specific: the committed-but-unapplied window ---------------------

TEST_P(CrashRecoveryTest, CommittedUnappliedRollsForward) {
  if (!is_kamino()) {
    GTEST_SKIP() << "applier window only exists for Kamino engines";
  }
  auto offs = Populate(4);

  kamino()->PauseApplier(true);
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    std::memset(tx.OpenWrite(offs[0], 128).value(), 0x77, 128);
                    std::memset(tx.OpenWrite(offs[1], 128).value(), 0x77, 128);
                    return Status::Ok();
                  })
                  .ok());
  // Commit returned; the backup was never synced. Crash here.
  kamino()->DiscardPendingForCrashTest();
  sys_.CrashAndRecover();

  // Committed data must survive...
  EXPECT_EQ(static_cast<uint8_t*>(sys_.main_pool->At(offs[0]))[0], 0x77);
  EXPECT_EQ(static_cast<uint8_t*>(sys_.main_pool->At(offs[1]))[0], 0x77);
  // ...and the backup must have been rolled forward: an abort of a new
  // transaction on the same object must restore 0x77, not the old stamp.
  {
    Result<Tx> tx = sys_.mgr->Begin();
    ASSERT_TRUE(tx.ok());
    std::memset(tx->OpenWrite(offs[0], 128).value(), 0xAB, 128);
    ASSERT_TRUE(tx->Abort().ok());
  }
  EXPECT_EQ(static_cast<uint8_t*>(sys_.main_pool->At(offs[0]))[0], 0x77);
}

TEST_P(CrashRecoveryTest, CommittedUnappliedFreeIsReexecuted) {
  if (!is_kamino()) {
    GTEST_SKIP() << "applier window only exists for Kamino engines";
  }
  auto offs = Populate(4);
  kamino()->PauseApplier(true);
  ASSERT_TRUE(sys_.mgr->Run([&](Tx& tx) { return tx.Free(offs[2]); }).ok());
  kamino()->DiscardPendingForCrashTest();
  sys_.CrashAndRecover();
  EXPECT_FALSE(sys_.heap->allocator()->IsAllocated(offs[2]));
}

INSTANTIATE_TEST_SUITE_P(Engines, CrashRecoveryTest,
                         ::testing::Values(EngineType::kKaminoSimple,
                                           EngineType::kKaminoDynamic,
                                           EngineType::kUndoLog, EngineType::kCow,
                                           EngineType::kRedoLog),
                         [](const ::testing::TestParamInfo<EngineType>& info) {
                           switch (info.param) {
                             case EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case EngineType::kUndoLog:
                               return "UndoLog";
                             case EngineType::kCow:
                               return "Cow";
                             case EngineType::kRedoLog:
                               return "RedoLog";
                             default:
                               return "Unknown";
                           }
                         });

}  // namespace
}  // namespace kamino::txn
