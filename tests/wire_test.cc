#include "src/chain/wire.h"

#include <gtest/gtest.h>

namespace kamino::chain {
namespace {

TEST(WireTest, ScalarRoundTrip) {
  Writer w;
  w.U32(42);
  w.U64(0xDEADBEEFCAFEull);
  w.Str("hello");
  const std::vector<uint8_t> buf = w.Take();

  Reader r(buf);
  uint32_t a = 0;
  uint64_t b = 0;
  std::string s;
  ASSERT_TRUE(r.U32(&a));
  ASSERT_TRUE(r.U64(&b));
  ASSERT_TRUE(r.Str(&s));
  EXPECT_EQ(a, 42u);
  EXPECT_EQ(b, 0xDEADBEEFCAFEull);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, TruncatedBufferRejected) {
  Writer w;
  w.U64(7);
  std::vector<uint8_t> buf = w.Take();
  buf.resize(4);
  Reader r(buf);
  uint64_t v = 0;
  EXPECT_FALSE(r.U64(&v));
}

TEST(WireTest, StringLengthBeyondBufferRejected) {
  Writer w;
  w.U32(1000);  // Claims 1000 bytes follow...
  std::vector<uint8_t> buf = w.Take();
  buf.push_back('x');  // ...but only one does.
  Reader r(buf);
  std::string s;
  EXPECT_FALSE(r.Str(&s));
}

TEST(WireTest, EmptyStringRoundTrip) {
  Writer w;
  w.Str("");
  const std::vector<uint8_t> buf = w.Take();
  Reader r(buf);
  std::string s = "junk";
  ASSERT_TRUE(r.Str(&s));
  EXPECT_TRUE(s.empty());
}

TEST(WireTest, BinaryPayloadSurvives) {
  std::string binary;
  for (int i = 0; i < 256; ++i) {
    binary.push_back(static_cast<char>(i));
  }
  Writer w;
  w.Str(binary);
  Reader r(w.Take());
  std::string out;
  ASSERT_TRUE(r.Str(&out));
  EXPECT_EQ(out, binary);
}

TEST(WireTest, OpRoundTripAllKinds) {
  for (OpKind kind : {OpKind::kUpsert, OpKind::kDelete, OpKind::kMultiUpsert}) {
    Op op;
    op.kind = kind;
    op.pairs.push_back({1, "one"});
    op.pairs.push_back({0xFFFFFFFFFFFFFFFFull, std::string(2000, 'z')});
    Writer w;
    EncodeOp(op, &w);
    Reader r(w.Take());
    Op out;
    ASSERT_TRUE(DecodeOp(&r, &out));
    EXPECT_EQ(out.kind, kind);
    ASSERT_EQ(out.pairs.size(), 2u);
    EXPECT_EQ(out.pairs[0].key, 1u);
    EXPECT_EQ(out.pairs[0].value, "one");
    EXPECT_EQ(out.pairs[1].key, 0xFFFFFFFFFFFFFFFFull);
    EXPECT_EQ(out.pairs[1].value.size(), 2000u);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(WireTest, EmptyOpRoundTrip) {
  Op op;
  op.kind = OpKind::kMultiUpsert;
  Writer w;
  EncodeOp(op, &w);
  Reader r(w.Take());
  Op out;
  ASSERT_TRUE(DecodeOp(&r, &out));
  EXPECT_TRUE(out.pairs.empty());
}

TEST(WireTest, MalformedOpRejected) {
  std::vector<uint8_t> garbage = {1, 2, 3};
  Reader r(garbage);
  Op out;
  EXPECT_FALSE(DecodeOp(&r, &out));
}

}  // namespace
}  // namespace kamino::chain
