// Cross-engine semantics tests: all five atomicity engines behind the same
// API must agree on commit/abort/alloc/free behaviour (the no-logging engine
// is exempt from rollback guarantees).

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/txn/kamino_engine.h"
#include "tests/test_util.h"

namespace kamino::txn {
namespace {

using test::CrashableSystem;

class EngineTest : public ::testing::TestWithParam<EngineType> {
 protected:
  void SetUp() override { sys_ = CrashableSystem::Create(GetParam()); }

  bool rolls_back() const { return GetParam() != EngineType::kNoLogging; }

  uint8_t* MainAt(uint64_t off) {
    return static_cast<uint8_t*>(sys_.main_pool->At(off));
  }

  CrashableSystem sys_;
};

TEST_P(EngineTest, CommitMakesWritesVisible) {
  uint64_t off = 0;
  Status st = sys_.mgr->Run([&](Tx& tx) -> Status {
    Result<uint64_t> a = tx.Alloc(128);
    if (!a.ok()) {
      return a.status();
    }
    off = *a;
    Result<void*> p = tx.OpenWrite(off, 128);
    if (!p.ok()) {
      return p.status();
    }
    std::memset(*p, 0x5A, 128);
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st;
  sys_.mgr->WaitIdle();
  EXPECT_EQ(MainAt(off)[0], 0x5A);
  EXPECT_EQ(MainAt(off)[127], 0x5A);
  EXPECT_TRUE(sys_.heap->allocator()->IsAllocated(off));
}

TEST_P(EngineTest, AbortRollsBackWrites) {
  // Commit an initial value, then modify and abort.
  uint64_t off = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(128).value();
                    void* p = tx.OpenWrite(off, 128).value();
                    std::memset(p, 0x11, 128);
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();

  Status st = sys_.mgr->Run([&](Tx& tx) -> Status {
    void* p = tx.OpenWrite(off, 128).value();
    std::memset(p, 0x22, 128);
    return Status::Internal("force abort");
  });
  EXPECT_FALSE(st.ok());
  sys_.mgr->WaitIdle();
  if (rolls_back()) {
    EXPECT_EQ(MainAt(off)[0], 0x11);
    EXPECT_EQ(MainAt(off)[127], 0x11);
  }
  EXPECT_EQ(sys_.mgr->engine()->stats().aborted, 1u);
}

TEST_P(EngineTest, AbortFreesAllocations) {
  uint64_t off = 0;
  Status st = sys_.mgr->Run([&](Tx& tx) -> Status {
    off = tx.Alloc(256).value();
    return Status::Internal("abort");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(sys_.heap->allocator()->IsAllocated(off));
}

TEST_P(EngineTest, CommittedFreeTakesEffect) {
  uint64_t off = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(128).value();
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();
  ASSERT_TRUE(sys_.mgr->Run([&](Tx& tx) { return tx.Free(off); }).ok());
  sys_.mgr->WaitIdle();
  EXPECT_FALSE(sys_.heap->allocator()->IsAllocated(off));
}

TEST_P(EngineTest, AbortedFreeHasNoEffect) {
  uint64_t off = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(128).value();
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();
  Status st = sys_.mgr->Run([&](Tx& tx) -> Status {
    KAMINO_RETURN_IF_ERROR(tx.Free(off));
    return Status::Internal("abort");
  });
  EXPECT_FALSE(st.ok());
  sys_.mgr->WaitIdle();
  EXPECT_TRUE(sys_.heap->allocator()->IsAllocated(off));
}

TEST_P(EngineTest, AllocIsZeroed) {
  uint64_t off = 0;
  // Dirty a slot, free it, re-allocate: the new object must read zero.
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(128).value();
                    void* p = tx.OpenWrite(off, 128).value();
                    std::memset(p, 0xFF, 128);
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();
  ASSERT_TRUE(sys_.mgr->Run([&](Tx& tx) { return tx.Free(off); }).ok());
  sys_.mgr->WaitIdle();
  uint64_t off2 = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off2 = tx.Alloc(128).value();
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();
  EXPECT_EQ(off2, off) << "slot should be reused";
  EXPECT_EQ(MainAt(off2)[0], 0);
  EXPECT_EQ(MainAt(off2)[127], 0);
}

TEST_P(EngineTest, MultiObjectTransactionIsAtomic) {
  uint64_t a = 0, b = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    a = tx.Alloc(64).value();
                    b = tx.Alloc(64).value();
                    std::memset(tx.OpenWrite(a, 64).value(), 1, 64);
                    std::memset(tx.OpenWrite(b, 64).value(), 1, 64);
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();

  // Modify both, abort: both must revert.
  Status st = sys_.mgr->Run([&](Tx& tx) -> Status {
    std::memset(tx.OpenWrite(a, 64).value(), 2, 64);
    std::memset(tx.OpenWrite(b, 64).value(), 2, 64);
    return Status::Internal("abort");
  });
  EXPECT_FALSE(st.ok());
  sys_.mgr->WaitIdle();
  if (rolls_back()) {
    EXPECT_EQ(MainAt(a)[0], 1);
    EXPECT_EQ(MainAt(b)[0], 1);
  }
}

TEST_P(EngineTest, RepeatedOpenWriteIsIdempotent) {
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    uint64_t off = tx.Alloc(64).value();
                    void* p1 = tx.OpenWrite(off, 64).value();
                    void* p2 = tx.OpenWrite(off, 64).value();
                    EXPECT_EQ(p1, p2);
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();
}

TEST_P(EngineTest, RootFieldUpdateInTransaction) {
  uint64_t off = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(64).value();
                    auto* root = static_cast<uint64_t*>(
                        tx.OpenWrite(sys_.heap->root_field_offset(), 8).value());
                    *root = off;
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();
  EXPECT_EQ(sys_.heap->root(), off);

  // Aborted root update reverts.
  Status st = sys_.mgr->Run([&](Tx& tx) -> Status {
    auto* root =
        static_cast<uint64_t*>(tx.OpenWrite(sys_.heap->root_field_offset(), 8).value());
    *root = 0xBAD;
    return Status::Internal("abort");
  });
  EXPECT_FALSE(st.ok());
  sys_.mgr->WaitIdle();
  if (rolls_back()) {
    EXPECT_EQ(sys_.heap->root(), off);
  }
}

TEST_P(EngineTest, ExplicitAbortViaHandle) {
  uint64_t off = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(64).value();
                    std::memset(tx.OpenWrite(off, 64).value(), 7, 64);
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();

  Result<Tx> tx = sys_.mgr->Begin();
  ASSERT_TRUE(tx.ok());
  std::memset(tx->OpenWrite(off, 64).value(), 9, 64);
  ASSERT_TRUE(tx->Abort().ok());
  EXPECT_FALSE(tx->active());
  sys_.mgr->WaitIdle();
  if (rolls_back()) {
    EXPECT_EQ(MainAt(off)[0], 7);
  }
}

TEST_P(EngineTest, DroppedHandleAutoAborts) {
  uint64_t off = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(64).value();
                    std::memset(tx.OpenWrite(off, 64).value(), 7, 64);
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();
  {
    Result<Tx> tx = sys_.mgr->Begin();
    ASSERT_TRUE(tx.ok());
    std::memset(tx->OpenWrite(off, 64).value(), 9, 64);
    // Handle dropped without commit.
  }
  sys_.mgr->WaitIdle();
  if (rolls_back()) {
    EXPECT_EQ(MainAt(off)[0], 7);
  }
  EXPECT_EQ(sys_.mgr->engine()->stats().aborted, 1u);
}

TEST_P(EngineTest, ConflictingWritersSerialize) {
  uint64_t off = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(64).value();
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();

  constexpr int kThreads = 4;
  constexpr int kIters = 100;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        Status st = sys_.mgr->RunWithRetries([&](Tx& tx) -> Status {
          Result<void*> p = tx.OpenWrite(off, 64);
          if (!p.ok()) {
            return p.status();
          }
          auto* counter = static_cast<uint64_t*>(*p);
          *counter += 1;
          return Status::Ok();
        });
        if (!st.ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(*reinterpret_cast<uint64_t*>(MainAt(off)), kThreads * kIters);
}

TEST_P(EngineTest, ReadLockBlocksUntilApplied) {
  uint64_t off = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(64).value();
                    auto* v = static_cast<uint64_t*>(tx.OpenWrite(off, 64).value());
                    *v = 1;
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();

  // Writer commits; a dependent reader must see the committed value.
  std::thread writer([&] {
    ASSERT_TRUE(sys_.mgr
                    ->Run([&](Tx& tx) -> Status {
                      auto* v = static_cast<uint64_t*>(tx.OpenWrite(off, 64).value());
                      *v = 2;
                      return Status::Ok();
                    })
                    .ok());
  });
  writer.join();
  uint64_t seen = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    KAMINO_RETURN_IF_ERROR(tx.ReadLock(off));
                    seen = *reinterpret_cast<uint64_t*>(MainAt(off));
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(seen, 2u);
  sys_.mgr->WaitIdle();
}

TEST_P(EngineTest, StatsCountCommits) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sys_.mgr
                    ->Run([&](Tx& tx) -> Status {
                      uint64_t off = tx.Alloc(64).value();
                      std::memset(tx.OpenWrite(off, 64).value(), 1, 64);
                      return Status::Ok();
                    })
                    .ok());
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(sys_.mgr->engine()->stats().committed, 5u);
}

TEST_P(EngineTest, LargeObjectTransactions) {
  // Spans (above the largest size class) must work transactionally too.
  const uint64_t kBig = 2ull << 20;
  uint64_t off = 0;
  ASSERT_TRUE(sys_.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(kBig, /*zero=*/false).value();
                    void* p = tx.OpenWrite(off, kBig).value();
                    std::memset(p, 0x3C, kBig);
                    return Status::Ok();
                  })
                  .ok());
  sys_.mgr->WaitIdle();
  EXPECT_EQ(MainAt(off)[0], 0x3C);
  EXPECT_EQ(MainAt(off)[kBig - 1], 0x3C);
  ASSERT_TRUE(sys_.mgr->Run([&](Tx& tx) { return tx.Free(off); }).ok());
  sys_.mgr->WaitIdle();
  EXPECT_FALSE(sys_.heap->allocator()->IsAllocated(off));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest,
                         ::testing::Values(EngineType::kKaminoSimple,
                                           EngineType::kKaminoDynamic, EngineType::kUndoLog,
                                           EngineType::kCow, EngineType::kRedoLog,
                                           EngineType::kNoLogging),
                         [](const ::testing::TestParamInfo<EngineType>& info) {
                           switch (info.param) {
                             case EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case EngineType::kUndoLog:
                               return "UndoLog";
                             case EngineType::kCow:
                               return "Cow";
                             case EngineType::kRedoLog:
                               return "RedoLog";
                             case EngineType::kNoLogging:
                               return "NoLogging";
                             default:
                               return "Unknown";
                           }
                         });

// --- Engine-specific behaviour ----------------------------------------------

TEST(CowEngineTest, WritesGoToShadowUntilCommit) {
  auto sys = CrashableSystem::Create(EngineType::kCow);
  uint64_t off = 0;
  ASSERT_TRUE(sys.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(64).value();
                    auto* v = static_cast<uint64_t*>(tx.OpenWrite(off, 64).value());
                    *v = 1;
                    return Status::Ok();
                  })
                  .ok());

  Result<Tx> tx = sys.mgr->Begin();
  ASSERT_TRUE(tx.ok());
  auto* shadow = static_cast<uint64_t*>(tx->OpenWrite(off, 64).value());
  *shadow = 99;
  // Shadow is a different location; the main copy still holds 1.
  EXPECT_NE(reinterpret_cast<uint8_t*>(shadow), sys.main_pool->At(off));
  EXPECT_EQ(*static_cast<uint64_t*>(sys.main_pool->At(off)), 1u);
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_EQ(*static_cast<uint64_t*>(sys.main_pool->At(off)), 99u);
}

TEST(KaminoEngineTest, BackupCatchesUpAfterCommit) {
  auto sys = CrashableSystem::Create(EngineType::kKaminoSimple);
  uint64_t off = 0;
  ASSERT_TRUE(sys.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(64).value();
                    auto* v = static_cast<uint64_t*>(tx.OpenWrite(off, 64).value());
                    *v = 0x1234;
                    return Status::Ok();
                  })
                  .ok());
  sys.mgr->WaitIdle();
  EXPECT_EQ(*static_cast<uint64_t*>(sys.backup_pool->At(off)), 0x1234u);
}

TEST(KaminoEngineTest, LockHeldUntilApplied) {
  auto sys = CrashableSystem::Create(EngineType::kKaminoSimple);
  auto* engine = static_cast<KaminoEngine*>(sys.mgr->engine());
  uint64_t off = 0;
  ASSERT_TRUE(sys.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(64).value();
                    return Status::Ok();
                  })
                  .ok());
  sys.mgr->WaitIdle();

  engine->PauseApplier(true);
  ASSERT_TRUE(sys.mgr
                  ->Run([&](Tx& tx) -> Status {
                    std::memset(tx.OpenWrite(off, 64).value(), 1, 64);
                    return Status::Ok();
                  })
                  .ok());
  // Commit returned but the applier is frozen: the object stays locked.
  EXPECT_TRUE(sys.mgr->locks()->IsWriteLocked(off));
  engine->PauseApplier(false);
  sys.mgr->WaitIdle();
  EXPECT_FALSE(sys.mgr->locks()->IsWriteLocked(off));
}

TEST(KaminoEngineTest, DynamicMissCountsCopies) {
  auto sys = CrashableSystem::Create(EngineType::kKaminoDynamic);
  auto* engine = static_cast<KaminoEngine*>(sys.mgr->engine());
  uint64_t off = 0;
  ASSERT_TRUE(sys.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(1024).value();
                    return Status::Ok();
                  })
                  .ok());
  sys.mgr->WaitIdle();
  const uint64_t misses_before = engine->store()->stats().ensure_misses;
  // First write after the applier-created copy exists: hit, no copy.
  ASSERT_TRUE(sys.mgr
                  ->Run([&](Tx& tx) -> Status {
                    std::memset(tx.OpenWrite(off, 1024).value(), 1, 1024);
                    return Status::Ok();
                  })
                  .ok());
  sys.mgr->WaitIdle();
  EXPECT_EQ(engine->store()->stats().ensure_misses, misses_before);
}

}  // namespace
}  // namespace kamino::txn
