#include "src/alloc/allocator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace kamino::alloc {
namespace {

class AllocatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::PoolOptions popts;
    popts.size = 64ull << 20;
    popts.crash_sim = true;
    pool_ = std::move(nvm::Pool::Create(popts).value());
    allocator_ = std::move(Allocator::Create(pool_.get(), 0, pool_->size()).value());
  }

  std::unique_ptr<nvm::Pool> pool_;
  std::unique_ptr<Allocator> allocator_;
};

TEST_F(AllocatorTest, SizeClassMapping) {
  EXPECT_EQ(Allocator::SizeClassFor(1), 0);
  EXPECT_EQ(Allocator::SizeClassFor(64), 0);
  EXPECT_EQ(Allocator::SizeClassFor(65), 1);
  EXPECT_EQ(Allocator::SizeClassFor(128), 1);
  EXPECT_EQ(Allocator::SizeClassFor(1024), 4);
  EXPECT_EQ(Allocator::SizeClassFor(64 * 1024), 10);
  EXPECT_EQ(Allocator::SizeClassFor(64 * 1024 + 1), -1);  // Span.
  EXPECT_EQ(Allocator::ClassSize(0), 64u);
  EXPECT_EQ(Allocator::ClassSize(10), 65536u);
}

TEST_F(AllocatorTest, AllocFreeRoundTrip) {
  uint64_t off = allocator_->AllocRaw(100).value();
  EXPECT_TRUE(allocator_->IsAllocated(off));
  EXPECT_EQ(allocator_->UsableSize(off), 128u);
  ASSERT_TRUE(allocator_->FreeRaw(off).ok());
  EXPECT_FALSE(allocator_->IsAllocated(off));
}

TEST_F(AllocatorTest, DistinctOffsets) {
  std::set<uint64_t> offsets;
  for (int i = 0; i < 1000; ++i) {
    uint64_t off = allocator_->AllocRaw(64).value();
    EXPECT_TRUE(offsets.insert(off).second) << "duplicate offset " << off;
  }
}

TEST_F(AllocatorTest, FreeIsIdempotent) {
  uint64_t off = allocator_->AllocRaw(64).value();
  ASSERT_TRUE(allocator_->FreeRaw(off).ok());
  ASSERT_TRUE(allocator_->FreeRaw(off).ok());  // Recovery re-free.
}

TEST_F(AllocatorTest, ReusesFreedSlot) {
  uint64_t a = allocator_->AllocRaw(64).value();
  ASSERT_TRUE(allocator_->FreeRaw(a).ok());
  // With a single partial chunk, the freed slot is the first free slot again.
  uint64_t b = allocator_->AllocRaw(64).value();
  EXPECT_EQ(a, b);
}

TEST_F(AllocatorTest, ZeroSizeAllocates) {
  uint64_t off = allocator_->AllocRaw(0).value();
  EXPECT_EQ(allocator_->UsableSize(off), 64u);
}

TEST_F(AllocatorTest, SpanAllocation) {
  const uint64_t big = 3ull << 20;  // 3 MiB -> multi-chunk span.
  uint64_t off = allocator_->AllocRaw(big).value();
  EXPECT_TRUE(allocator_->IsAllocated(off));
  EXPECT_EQ(allocator_->UsableSize(off), big);
  std::memset(pool_->At(off), 0x5A, big);  // Whole payload is writable.
  ASSERT_TRUE(allocator_->FreeRaw(off).ok());
  EXPECT_FALSE(allocator_->IsAllocated(off));
}

TEST_F(AllocatorTest, SpanChunksReusableAfterFree) {
  const uint64_t big = 2ull << 20;
  uint64_t a = allocator_->AllocRaw(big).value();
  ASSERT_TRUE(allocator_->FreeRaw(a).ok());
  uint64_t b = allocator_->AllocRaw(big).value();
  EXPECT_TRUE(allocator_->IsAllocated(b));
}

TEST_F(AllocatorTest, PrepareWithoutCommitLeavesNoPersistentTrace) {
  Reservation r = allocator_->PrepareAlloc(64).value();
  EXPECT_FALSE(allocator_->IsAllocated(r.offset));
  // A second Prepare must not hand out the same slot.
  Reservation r2 = allocator_->PrepareAlloc(64).value();
  EXPECT_NE(r.offset, r2.offset);
  allocator_->CancelAlloc(r);
  allocator_->CancelAlloc(r2);
}

TEST_F(AllocatorTest, CommitAllocMakesLive) {
  Reservation r = allocator_->PrepareAlloc(64).value();
  allocator_->CommitAlloc(r);
  EXPECT_TRUE(allocator_->IsAllocated(r.offset));
  ASSERT_TRUE(allocator_->FreeRaw(r.offset).ok());
}

TEST_F(AllocatorTest, CancelledSlotIsReusable) {
  Reservation r = allocator_->PrepareAlloc(64).value();
  const uint64_t off = r.offset;
  allocator_->CancelAlloc(r);
  Reservation r2 = allocator_->PrepareAlloc(64).value();
  EXPECT_EQ(r2.offset, off);
  allocator_->CancelAlloc(r2);
}

TEST_F(AllocatorTest, TwoPhaseFreeBlocksReuseUntilReleased) {
  uint64_t off = allocator_->AllocRaw(64).value();
  ASSERT_TRUE(allocator_->FreeRawKeepReserved(off).ok());
  EXPECT_FALSE(allocator_->IsAllocated(off));  // Persistently free...
  uint64_t other = allocator_->AllocRaw(64).value();
  EXPECT_NE(other, off);  // ...but not allocatable yet.
  allocator_->ReleaseReservation(off);
  uint64_t reused = allocator_->AllocRaw(64).value();
  EXPECT_EQ(reused, off);
}

TEST_F(AllocatorTest, SpanPrepareCancel) {
  Reservation r = allocator_->PrepareAlloc(3ull << 20).value();
  EXPECT_FALSE(allocator_->IsAllocated(r.offset));
  allocator_->CancelAlloc(r);
  // Chunks available again.
  uint64_t off = allocator_->AllocRaw(3ull << 20).value();
  EXPECT_TRUE(allocator_->IsAllocated(off));
}

TEST_F(AllocatorTest, SpanTwoPhaseFree) {
  uint64_t off = allocator_->AllocRaw(2ull << 20).value();
  ASSERT_TRUE(allocator_->FreeRawKeepReserved(off).ok());
  EXPECT_FALSE(allocator_->IsAllocated(off));
  allocator_->ReleaseReservation(off);
  uint64_t again = allocator_->AllocRaw(2ull << 20).value();
  EXPECT_TRUE(allocator_->IsAllocated(again));
}

TEST_F(AllocatorTest, StatsTrackAllocations) {
  AllocatorStats before = allocator_->stats();
  uint64_t off = allocator_->AllocRaw(1024).value();
  AllocatorStats mid = allocator_->stats();
  EXPECT_EQ(mid.bytes_allocated, before.bytes_allocated + 1024);
  ASSERT_TRUE(allocator_->FreeRaw(off).ok());
  AllocatorStats after = allocator_->stats();
  EXPECT_EQ(after.bytes_allocated, before.bytes_allocated);
}

TEST_F(AllocatorTest, ReopenRebuildsState) {
  std::vector<uint64_t> live;
  for (int i = 0; i < 100; ++i) {
    uint64_t off = allocator_->AllocRaw(256).value();
    if (i % 2 == 0) {
      live.push_back(off);
    } else {
      ASSERT_TRUE(allocator_->FreeRaw(off).ok());
    }
  }
  uint64_t span = allocator_->AllocRaw(2ull << 20).value();
  live.push_back(span);

  const uint64_t region_off = allocator_->region_offset();
  allocator_.reset();
  allocator_ = std::move(Allocator::Open(pool_.get(), region_off).value());

  for (uint64_t off : live) {
    EXPECT_TRUE(allocator_->IsAllocated(off)) << off;
  }
  // New allocations must not collide with survivors.
  std::set<uint64_t> live_set(live.begin(), live.end());
  for (int i = 0; i < 200; ++i) {
    uint64_t off = allocator_->AllocRaw(256).value();
    EXPECT_EQ(live_set.count(off), 0u);
  }
}

TEST_F(AllocatorTest, ReopenAfterCrashDropsUncommittedReservation) {
  Reservation r = allocator_->PrepareAlloc(64).value();
  const uint64_t off = r.offset;
  // Crash before CommitAlloc: nothing was persisted for this reservation.
  ASSERT_TRUE(pool_->Crash().ok());
  allocator_ = std::move(Allocator::Open(pool_.get(), 0).value());
  EXPECT_FALSE(allocator_->IsAllocated(off));
}

TEST_F(AllocatorTest, OrphanSpanContinuationReclaimedOnOpen) {
  // Simulate a crash between persisting continuation headers and the span
  // start: allocate a span, persist, crash with random eviction so some
  // header lines may be stale — then verify Open() never reports corruption.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    nvm::PoolOptions popts;
    popts.size = 16ull << 20;
    popts.crash_sim = true;
    auto pool = std::move(nvm::Pool::Create(popts).value());
    auto alloc = std::move(Allocator::Create(pool.get(), 0, pool->size()).value());
    Reservation r = alloc->PrepareAlloc(3ull << 20).value();
    alloc->CommitAlloc(r);
    ASSERT_TRUE(pool->Crash(nvm::CrashMode::kEvictRandomly, seed, 0.5).ok());
    auto reopened = Allocator::Open(pool.get(), 0);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
  }
}

TEST_F(AllocatorTest, OutOfMemoryReported) {
  nvm::PoolOptions popts;
  popts.size = 4ull << 20;  // Room for very few chunks.
  auto pool = std::move(nvm::Pool::Create(popts).value());
  auto alloc = std::move(Allocator::Create(pool.get(), 0, pool->size()).value());
  std::vector<uint64_t> got;
  for (;;) {
    Result<uint64_t> r = alloc->AllocRaw(64 * 1024);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kOutOfMemory);
      break;
    }
    got.push_back(*r);
    ASSERT_LT(got.size(), 10000u);
  }
  EXPECT_GT(got.size(), 10u);
  // Freeing restores capacity.
  for (uint64_t off : got) {
    ASSERT_TRUE(alloc->FreeRaw(off).ok());
  }
  EXPECT_TRUE(alloc->AllocRaw(64 * 1024).ok());
}

TEST_F(AllocatorTest, InvalidFreeRejected) {
  EXPECT_FALSE(allocator_->FreeRaw(1).ok());  // Inside superblock.
  uint64_t off = allocator_->AllocRaw(128).value();
  EXPECT_FALSE(allocator_->FreeRaw(off + 1).ok());  // Not an allocation start.
  ASSERT_TRUE(allocator_->FreeRaw(off).ok());
}

TEST_F(AllocatorTest, ConcurrentAllocFree) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<uint64_t> mine;
      for (int i = 0; i < kIters; ++i) {
        const uint64_t size = 64u << (i % 4);
        Result<uint64_t> off = allocator_->AllocRaw(size);
        if (!off.ok()) {
          failed = true;
          return;
        }
        // Stamp the payload to catch overlapping allocations.
        std::memset(pool_->At(*off), t + 1, size);
        mine.push_back(*off);
        if (mine.size() > 16) {
          if (!allocator_->FreeRaw(mine.front()).ok()) {
            failed = true;
            return;
          }
          mine.erase(mine.begin());
        }
      }
      for (uint64_t off : mine) {
        const uint64_t size = allocator_->UsableSize(off);
        const auto* p = static_cast<const uint8_t*>(pool_->At(off));
        for (uint64_t b = 0; b < size; ++b) {
          if (p[b] != static_cast<uint8_t>(t + 1)) {
            failed = true;
            return;
          }
        }
        (void)allocator_->FreeRaw(off);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed);
}

TEST_F(AllocatorTest, ConcurrentPrepareNeverOverlaps) {
  constexpr int kThreads = 8;
  std::vector<std::vector<uint64_t>> offsets(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        Reservation r = allocator_->PrepareAlloc(64).value();
        offsets[static_cast<size_t>(t)].push_back(r.offset);
        allocator_->CommitAlloc(r);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::set<uint64_t> all;
  for (const auto& v : offsets) {
    for (uint64_t off : v) {
      EXPECT_TRUE(all.insert(off).second) << "duplicate " << off;
    }
  }
}

}  // namespace
}  // namespace kamino::alloc

namespace kamino::alloc {
namespace {

// (Appended coverage: enumeration API used by recovery compaction.)
class AllocatorEnumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::PoolOptions popts;
    popts.size = 32ull << 20;
    pool_ = std::move(nvm::Pool::Create(popts).value());
    allocator_ = std::move(Allocator::Create(pool_.get(), 0, pool_->size()).value());
  }
  std::unique_ptr<nvm::Pool> pool_;
  std::unique_ptr<Allocator> allocator_;
};

TEST_F(AllocatorEnumTest, ForEachAllocationSeesExactlyLiveSet) {
  std::set<std::pair<uint64_t, uint64_t>> expect;
  for (int i = 0; i < 50; ++i) {
    const uint64_t size = 64u << (i % 3);
    uint64_t off = allocator_->AllocRaw(size).value();
    if (i % 4 == 0) {
      ASSERT_TRUE(allocator_->FreeRaw(off).ok());
    } else {
      expect.emplace(off, Allocator::ClassSize(Allocator::SizeClassFor(size)));
    }
  }
  const uint64_t span = allocator_->AllocRaw(2ull << 20).value();
  expect.emplace(span, 2ull << 20);

  std::set<std::pair<uint64_t, uint64_t>> seen;
  allocator_->ForEachAllocation([&](uint64_t off, uint64_t size) { seen.emplace(off, size); });
  EXPECT_EQ(seen, expect);
}

TEST_F(AllocatorEnumTest, ForEachAllocationEmptyAllocator) {
  int count = 0;
  allocator_->ForEachAllocation([&](uint64_t, uint64_t) { ++count; });
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace kamino::alloc
