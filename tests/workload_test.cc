#include <gtest/gtest.h>

#include <map>

#include "src/stats/cost_model.h"
#include "src/stats/histogram.h"
#include "src/workload/tpcc_lite.h"
#include "src/workload/ycsb.h"
#include "src/workload/zipfian.h"
#include "tests/test_util.h"

namespace kamino::workload {
namespace {

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator zipf(1000);
  Xoshiro256 rng(1);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(ZipfianTest, IsSkewed) {
  ZipfianGenerator zipf(10000);
  Xoshiro256 rng(2);
  int hot = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (zipf.Next(rng) < 100) {
      ++hot;  // Top 1% of items.
    }
  }
  // Under theta=0.99, the top 1% draws far more than 1% of accesses.
  EXPECT_GT(hot, kN / 5);
}

TEST(ZipfianTest, ScrambledSpreadsHotKeys) {
  ScrambledZipfian zipf(10000);
  Xoshiro256 rng(3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Next(rng)];
  }
  // Find the hottest key: it must NOT be key 0 specifically clustered at the
  // low end of the keyspace (scrambling), and skew must persist.
  uint64_t hottest = 0;
  int hot_count = 0;
  for (const auto& [k, c] : counts) {
    if (c > hot_count) {
      hot_count = c;
      hottest = k;
    }
  }
  EXPECT_GT(hot_count, 1000);  // ~ zipf head.
  (void)hottest;
}

TEST(ZipfianTest, LatestFavorsRecent) {
  FastLatestChooser latest;
  Xoshiro256 rng(4);
  int recent = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const uint64_t k = latest.Next(rng, 10000);
    ASSERT_LT(k, 10000u);
    if (k >= 9000) {
      ++recent;  // Most recent 10%.
    }
  }
  EXPECT_GT(recent, kN * 8 / 10);
}

TEST(YcsbTest, MixesMatchTable3) {
  for (YcsbWorkload w : {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
                         YcsbWorkload::kD, YcsbWorkload::kF}) {
    const YcsbSpec spec = YcsbSpec::For(w);
    EXPECT_NEAR(spec.read + spec.update + spec.insert + spec.rmw, 1.0, 1e-9)
        << YcsbWorkloadName(w);
  }
  EXPECT_EQ(YcsbSpec::For(YcsbWorkload::kA).update, 0.5);
  EXPECT_EQ(YcsbSpec::For(YcsbWorkload::kB).read, 0.95);
  EXPECT_EQ(YcsbSpec::For(YcsbWorkload::kC).read, 1.0);
  EXPECT_EQ(YcsbSpec::For(YcsbWorkload::kD).insert, 0.05);
  EXPECT_TRUE(YcsbSpec::For(YcsbWorkload::kD).latest_reads);
  EXPECT_EQ(YcsbSpec::For(YcsbWorkload::kF).rmw, 0.5);
}

TEST(YcsbTest, GeneratorHonorsMix) {
  std::atomic<uint64_t> count{10000};
  YcsbGenerator gen(YcsbWorkload::kA, 10000, &count, 7);
  int reads = 0, updates = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    auto req = gen.Next();
    ASSERT_LT(req.key, 10000u);
    if (req.op == YcsbOp::kRead) {
      ++reads;
    } else if (req.op == YcsbOp::kUpdate) {
      ++updates;
    }
  }
  EXPECT_NEAR(reads, kN / 2, kN / 20);
  EXPECT_NEAR(updates, kN / 2, kN / 20);
}

TEST(YcsbTest, InsertsGrowKeyspace) {
  std::atomic<uint64_t> count{1000};
  YcsbGenerator gen(YcsbWorkload::kD, 1000, &count, 7);
  int inserts = 0;
  for (int i = 0; i < 10000; ++i) {
    auto req = gen.Next();
    if (req.op == YcsbOp::kInsert) {
      ++inserts;
      EXPECT_GE(req.key, 1000u);
    }
  }
  EXPECT_NEAR(inserts, 500, 120);
  EXPECT_EQ(count.load(), 1000u + static_cast<uint64_t>(inserts));
}

TEST(YcsbTest, ValueIsDeterministicAndSized) {
  EXPECT_EQ(YcsbValue(42, 1024).size(), 1024u);
  EXPECT_EQ(YcsbValue(42, 64), YcsbValue(42, 64));
  EXPECT_NE(YcsbValue(42, 64), YcsbValue(43, 64));
}

class TpccTest : public ::testing::TestWithParam<txn::EngineType> {
 protected:
  void SetUp() override {
    sys_ = test::CrashableSystem::Create(GetParam(), 256ull << 20);
    TpccLite::Options topts;
    topts.warehouses = 1;
    topts.items = 200;
    topts.customers = 50;
    tpcc_ = std::move(TpccLite::Create(sys_.mgr.get(), topts).value());
    ASSERT_TRUE(tpcc_->Load().ok());
  }

  static TpccLite::Options Options() { return TpccLite::Options{}; }

  test::CrashableSystem sys_;
  std::unique_ptr<TpccLite> tpcc_;
};

TEST_P(TpccTest, RunsFullMix) {
  Xoshiro256 rng(11);
  int failures = 0;
  for (int i = 0; i < 300; ++i) {
    if (!tpcc_->RunOne(rng).ok()) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 0);
  sys_.mgr->WaitIdle();
  const TpccLite::Stats s = tpcc_->stats();
  EXPECT_EQ(s.new_order + s.payment + s.order_status + s.delivery + s.stock_level, 300u);
  EXPECT_GT(s.new_order, 90u);  // ~45%.
  EXPECT_GT(s.payment, 90u);    // ~43%.
}

TEST_P(TpccTest, NewOrderThenDeliveryConserves) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(tpcc_->RunTransaction(TpccLite::TxKind::kNewOrder, rng).ok()) << i;
  }
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(tpcc_->RunTransaction(TpccLite::TxKind::kDelivery, rng).ok()) << i;
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tpcc_->RunTransaction(TpccLite::TxKind::kOrderStatus, rng).ok()) << i;
    ASSERT_TRUE(tpcc_->RunTransaction(TpccLite::TxKind::kStockLevel, rng).ok()) << i;
  }
  EXPECT_EQ(tpcc_->stats().aborted, 0u);
}

TEST_P(TpccTest, ConcurrentClients) {
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<uint64_t>(t) + 100);
      for (int i = 0; i < 100; ++i) {
        if (!tpcc_->RunOne(rng).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(Engines, TpccTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kUndoLog),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           return info.param == txn::EngineType::kKaminoSimple
                                      ? "KaminoSimple"
                                      : "UndoLog";
                         });

}  // namespace
}  // namespace kamino::workload

namespace kamino::stats {
namespace {

TEST(HistogramTest, RecordsAndSummarizes) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.MeanNs(), 500.5, 0.5);
  EXPECT_EQ(h.MinNs(), 1u);
  EXPECT_EQ(h.MaxNs(), 1000u);
  // Log buckets give ~6% relative error.
  EXPECT_NEAR(static_cast<double>(h.PercentileNs(50)), 500.0, 40.0);
  EXPECT_NEAR(static_cast<double>(h.PercentileNs(99)), 990.0, 70.0);
}

TEST(HistogramTest, MergeAndReset) {
  LatencyHistogram a, b;
  a.Record(100);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.MeanNs(), 200.0, 0.1);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.MeanNs(), 0.0);
}

TEST(HistogramTest, LargeValues) {
  LatencyHistogram h;
  h.Record(5'000'000'000ull);  // 5 s.
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.PercentileNs(50), 4'000'000'000ull);
}

TEST(CostModelTest, MoreNvmCostsMore) {
  CostModel model;
  const double one = model.Dollars(1, 100ull << 30);
  const double two = model.Dollars(1, 200ull << 30);
  EXPECT_GT(two, one);
  EXPECT_GT(model.Dollars(2, 100ull << 30), one);
}

TEST(CostModelTest, PerDollarPrefersCheaperAtEqualThroughput) {
  CostModel model;
  const double undo = model.OpsPerSecPerDollar(1000, 1, 100ull << 30);
  const double kamino_full = model.OpsPerSecPerDollar(1000, 1, 200ull << 30);
  EXPECT_GT(undo, kamino_full);
  // But enough of a throughput win flips it (the paper's write-heavy case).
  EXPECT_GT(model.OpsPerSecPerDollar(5000, 1, 200ull << 30), undo);
}

}  // namespace
}  // namespace kamino::stats
