#include "src/txn/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace kamino::txn {
namespace {

LockOptions ShortTimeout() {
  LockOptions o;
  o.timeout_ms = 100;
  return o;
}

TEST(LockManagerTest, WriteLockBasic) {
  LockManager lm;
  EXPECT_TRUE(lm.AcquireWrite(100, 1).ok());
  EXPECT_TRUE(lm.IsWriteLocked(100));
  lm.ReleaseWrite(100, 1);
  EXPECT_FALSE(lm.IsWriteLocked(100));
}

TEST(LockManagerTest, WriteIsReentrantForSameTx) {
  LockManager lm;
  EXPECT_TRUE(lm.AcquireWrite(100, 1).ok());
  EXPECT_TRUE(lm.AcquireWrite(100, 1).ok());
  lm.ReleaseWrite(100, 1);
  EXPECT_FALSE(lm.IsWriteLocked(100));
}

TEST(LockManagerTest, WriteExcludesWrite) {
  LockManager lm(ShortTimeout());
  ASSERT_TRUE(lm.AcquireWrite(100, 1).ok());
  EXPECT_EQ(lm.AcquireWrite(100, 2).code(), StatusCode::kTxConflict);
  lm.ReleaseWrite(100, 1);
  EXPECT_TRUE(lm.AcquireWrite(100, 2).ok());
  lm.ReleaseWrite(100, 2);
}

TEST(LockManagerTest, WriteExcludesRead) {
  LockManager lm(ShortTimeout());
  ASSERT_TRUE(lm.AcquireWrite(100, 1).ok());
  EXPECT_EQ(lm.AcquireRead(100, 2).code(), StatusCode::kTxConflict);
  lm.ReleaseWrite(100, 1);
}

TEST(LockManagerTest, ReadersShare) {
  LockManager lm(ShortTimeout());
  EXPECT_TRUE(lm.AcquireRead(100, 1).ok());
  EXPECT_TRUE(lm.AcquireRead(100, 2).ok());
  EXPECT_TRUE(lm.AcquireRead(100, 3).ok());
  EXPECT_EQ(lm.AcquireWrite(100, 4).code(), StatusCode::kTxConflict);
  lm.ReleaseRead(100, 1);
  lm.ReleaseRead(100, 2);
  lm.ReleaseRead(100, 3);
  EXPECT_TRUE(lm.AcquireWrite(100, 4).ok());
  lm.ReleaseWrite(100, 4);
}

TEST(LockManagerTest, WriterCanReadOwnLock) {
  LockManager lm(ShortTimeout());
  ASSERT_TRUE(lm.AcquireWrite(100, 1).ok());
  EXPECT_TRUE(lm.AcquireRead(100, 1).ok());
  // The read was a no-op: releasing write fully frees the key.
  lm.ReleaseWrite(100, 1);
  EXPECT_TRUE(lm.AcquireWrite(100, 2).ok());
  lm.ReleaseWrite(100, 2);
}

TEST(LockManagerTest, DistinctKeysIndependent) {
  LockManager lm(ShortTimeout());
  ASSERT_TRUE(lm.AcquireWrite(100, 1).ok());
  EXPECT_TRUE(lm.AcquireWrite(200, 2).ok());
  lm.ReleaseWrite(100, 1);
  lm.ReleaseWrite(200, 2);
}

TEST(LockManagerTest, BlockedWriterWakesOnRelease) {
  LockManager lm;  // Default (long) timeout.
  ASSERT_TRUE(lm.AcquireWrite(100, 1).ok());
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm.AcquireWrite(100, 2).ok());
    got = true;
    lm.ReleaseWrite(100, 2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got);
  lm.ReleaseWrite(100, 1);
  waiter.join();
  EXPECT_TRUE(got);
}

TEST(LockManagerTest, DoubleReleaseTolerated) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireWrite(100, 1).ok());
  lm.ReleaseWrite(100, 1);
  lm.ReleaseWrite(100, 1);  // No-op.
  lm.ReleaseRead(100, 1);   // No-op.
  lm.ReleaseWrite(999, 5);  // Unknown key: no-op.
}

TEST(LockManagerTest, ReleaseByWrongTxidIgnored) {
  LockManager lm(ShortTimeout());
  ASSERT_TRUE(lm.AcquireWrite(100, 1).ok());
  lm.ReleaseWrite(100, 2);  // Wrong owner.
  EXPECT_TRUE(lm.IsWriteLocked(100));
  lm.ReleaseWrite(100, 1);
}

TEST(LockManagerTest, StatsCountBlockedAcquires) {
  LockManager lm(ShortTimeout());
  ASSERT_TRUE(lm.AcquireWrite(100, 1).ok());
  (void)lm.AcquireWrite(100, 2);  // Times out.
  LockStats s = lm.stats();
  EXPECT_EQ(s.write_acquires, 2u);
  EXPECT_EQ(s.blocked_acquires, 1u);
  EXPECT_EQ(s.timeouts, 1u);
  EXPECT_GT(s.total_block_ns, 0u);
  lm.ReleaseWrite(100, 1);
}

TEST(LockManagerTest, ManyThreadsSameKeySerialize) {
  LockManager lm;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const uint64_t txid = static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i) + 1;
        ASSERT_TRUE(lm.AcquireWrite(42, txid).ok());
        ++counter;  // Protected by the lock under test.
        lm.ReleaseWrite(42, txid);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, 1600);
}

}  // namespace
}  // namespace kamino::txn
