#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/common/cacheline.h"
#include "src/common/checksum.h"
#include "src/common/random.h"
#include "src/common/spinlock.h"
#include "src/common/status.h"

namespace kamino {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: key 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (uint8_t c = 0; c <= static_cast<uint8_t>(StatusCode::kNotSupported); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfMemory("x"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfMemory);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    KAMINO_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(CachelineTest, FloorCeil) {
  EXPECT_EQ(CacheLineFloor(0), 0u);
  EXPECT_EQ(CacheLineFloor(63), 0u);
  EXPECT_EQ(CacheLineFloor(64), 64u);
  EXPECT_EQ(CacheLineCeil(1), 64u);
  EXPECT_EQ(CacheLineCeil(64), 64u);
  EXPECT_EQ(CacheLineCeil(65), 128u);
}

TEST(CachelineTest, AlignUp) {
  EXPECT_EQ(AlignUp(0, 4096), 0u);
  EXPECT_EQ(AlignUp(1, 4096), 4096u);
  EXPECT_EQ(AlignUp(4096, 4096), 4096u);
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(96));
}

TEST(ChecksumTest, Crc32cKnownVector) {
  // "123456789" -> 0xE3069283 is the standard CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(ChecksumTest, Crc64Properties) {
  const char a[] = "kamino";
  const char b[] = "kaminO";
  EXPECT_NE(Crc64(a, sizeof(a)), Crc64(b, sizeof(b)));
  EXPECT_EQ(Crc64(a, sizeof(a)), Crc64(a, sizeof(a)));
  EXPECT_EQ(Crc64(nullptr, 0), 0u);
}

TEST(ChecksumTest, DetectsSingleBitFlip) {
  std::vector<uint8_t> buf(256);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 31);
  }
  const uint64_t base = Crc64(buf.data(), buf.size());
  for (size_t i = 0; i < buf.size(); i += 17) {
    buf[i] ^= 1;
    EXPECT_NE(Crc64(buf.data(), buf.size()), base) << "flip at " << i;
    buf[i] ^= 1;
  }
}

TEST(RandomTest, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, BoundedStaysInBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(11);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 80000; ++i) {
    ++counts[rng.NextBounded(8)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 600);
  }
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 80000);
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SharedSpinLockTest, ReadersShareWritersExclude) {
  SharedSpinLock lock;
  lock.lock_shared();
  EXPECT_TRUE(lock.try_lock_shared());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock_shared();
  lock.unlock_shared();
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock_shared());
  lock.unlock();
}

TEST(SharedSpinLockTest, ConcurrentCounter) {
  SharedSpinLock lock;
  int64_t counter = 0;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
        lock.lock_shared();
        if (counter < 0) {
          mismatch = true;
        }
        lock.unlock_shared();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 20000);
  EXPECT_FALSE(mismatch);
}

}  // namespace
}  // namespace kamino
