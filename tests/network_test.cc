#include "src/net/network.h"

#include <gtest/gtest.h>

#include <thread>

namespace kamino::net {
namespace {

TEST(NetworkTest, SendReceiveRoundTrip) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  Message msg;
  msg.type = 7;
  msg.payload = {1, 2, 3};
  ASSERT_TRUE(a->Send(2, std::move(msg)).ok());
  auto got = b->Receive(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 7u);
  EXPECT_EQ(got->src, 1u);
  EXPECT_EQ(got->dst, 2u);
  EXPECT_EQ(got->payload, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(NetworkTest, FifoPerSender) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  for (uint64_t i = 0; i < 100; ++i) {
    Message m;
    m.type = i;
    ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  }
  for (uint64_t i = 0; i < 100; ++i) {
    auto got = b->Receive(1000);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, i);
  }
}

TEST(NetworkTest, UnknownDestinationFails) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Message m;
  EXPECT_EQ(a->Send(99, std::move(m)).code(), StatusCode::kNotFound);
}

TEST(NetworkTest, ReceiveTimesOut) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(a->Receive(50).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(45));
}

TEST(NetworkTest, LatencyIsApplied) {
  NetworkOptions opts;
  opts.one_way_latency_us = 20'000;  // 20 ms, measurable.
  Network net(opts);
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  const auto start = std::chrono::steady_clock::now();
  Message m;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  auto got = b->Receive(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(18));
}

TEST(NetworkTest, DownNodeDropsTraffic) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  net.SetNodeDown(2, true);
  Message m;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());  // Silently dropped.
  EXPECT_FALSE(b->Receive(50).has_value());
  net.SetNodeDown(2, false);
  Message m2;
  m2.type = 5;
  ASSERT_TRUE(a->Send(2, std::move(m2)).ok());
  auto got = b->Receive(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 5u);
}

TEST(NetworkTest, CutLinkDropsBothDirections) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  net.CutLink(1, 2, true);
  Message m;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  EXPECT_FALSE(b->Receive(50).has_value());
  Message m2;
  ASSERT_TRUE(b->Send(1, std::move(m2)).ok());
  EXPECT_FALSE(a->Receive(50).has_value());
  net.CutLink(1, 2, false);
  Message m3;
  ASSERT_TRUE(a->Send(2, std::move(m3)).ok());
  EXPECT_TRUE(b->Receive(1000).has_value());
}

TEST(NetworkTest, ManySendersOneReceiver) {
  Network net;
  Endpoint* sink = net.CreateEndpoint(100);
  std::vector<std::thread> threads;
  for (uint64_t s = 1; s <= 8; ++s) {
    net.CreateEndpoint(s);
  }
  for (uint64_t s = 1; s <= 8; ++s) {
    threads.emplace_back([&net, s] {
      Endpoint* ep = net.CreateEndpoint(s);
      for (int i = 0; i < 100; ++i) {
        Message m;
        m.type = s;
        ASSERT_TRUE(ep->Send(100, std::move(m)).ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  int got = 0;
  while (got < 800) {
    auto m = sink->Receive(1000);
    ASSERT_TRUE(m.has_value());
    ++got;
  }
  EXPECT_EQ(sink->messages_received(), 800u);
}

}  // namespace
}  // namespace kamino::net
