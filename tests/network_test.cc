#include "src/net/network.h"

#include <gtest/gtest.h>

#include <thread>

namespace kamino::net {
namespace {

TEST(NetworkTest, SendReceiveRoundTrip) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  Message msg;
  msg.type = 7;
  msg.payload = {1, 2, 3};
  ASSERT_TRUE(a->Send(2, std::move(msg)).ok());
  auto got = b->Receive(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 7u);
  EXPECT_EQ(got->src, 1u);
  EXPECT_EQ(got->dst, 2u);
  EXPECT_EQ(got->payload, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(NetworkTest, FifoPerSender) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  for (uint64_t i = 0; i < 100; ++i) {
    Message m;
    m.type = i;
    ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  }
  for (uint64_t i = 0; i < 100; ++i) {
    auto got = b->Receive(1000);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, i);
  }
}

TEST(NetworkTest, UnknownDestinationFails) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Message m;
  EXPECT_EQ(a->Send(99, std::move(m)).code(), StatusCode::kNotFound);
}

TEST(NetworkTest, ReceiveTimesOut) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(a->Receive(50).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(45));
}

TEST(NetworkTest, LatencyIsApplied) {
  NetworkOptions opts;
  opts.one_way_latency_us = 20'000;  // 20 ms, measurable.
  Network net(opts);
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  const auto start = std::chrono::steady_clock::now();
  Message m;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  auto got = b->Receive(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(18));
}

TEST(NetworkTest, DownNodeDropsTraffic) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  net.SetNodeDown(2, true);
  Message m;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());  // Silently dropped.
  EXPECT_FALSE(b->Receive(50).has_value());
  net.SetNodeDown(2, false);
  Message m2;
  m2.type = 5;
  ASSERT_TRUE(a->Send(2, std::move(m2)).ok());
  auto got = b->Receive(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 5u);
}

TEST(NetworkTest, CutLinkDropsBothDirections) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  net.CutLink(1, 2, true);
  Message m;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  EXPECT_FALSE(b->Receive(50).has_value());
  Message m2;
  ASSERT_TRUE(b->Send(1, std::move(m2)).ok());
  EXPECT_FALSE(a->Receive(50).has_value());
  net.CutLink(1, 2, false);
  Message m3;
  ASSERT_TRUE(a->Send(2, std::move(m3)).ok());
  EXPECT_TRUE(b->Receive(1000).has_value());
}

TEST(NetworkTest, CutLinkSymmetricRegardlessOfArgumentOrder) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  // Cut as (2, 1): both directions must drop, including 1 -> 2.
  net.CutLink(2, 1, true);
  Message m;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  EXPECT_FALSE(b->Receive(50).has_value());
  Message m2;
  ASSERT_TRUE(b->Send(1, std::move(m2)).ok());
  EXPECT_FALSE(a->Receive(50).has_value());
  // Heal with the opposite argument order: same link.
  net.CutLink(1, 2, false);
  Message m3;
  ASSERT_TRUE(a->Send(2, std::move(m3)).ok());
  EXPECT_TRUE(b->Receive(1000).has_value());
  Message m4;
  ASSERT_TRUE(b->Send(1, std::move(m4)).ok());
  EXPECT_TRUE(a->Receive(1000).has_value());
}

TEST(NetworkTest, InFlightMessagesLostWhenLinkCut) {
  // The cut is re-checked at delivery time: a message already "on the wire"
  // when the cable is yanked never arrives, and healing the link does not
  // resurrect it.
  NetworkOptions opts;
  opts.one_way_latency_us = 50'000;  // 50 ms: wide in-flight window.
  Network net(opts);
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  Message m;
  m.type = 1;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());  // In flight for ~50 ms.
  net.CutLink(1, 2, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  net.CutLink(1, 2, false);
  EXPECT_FALSE(b->Receive(50).has_value());
  EXPECT_EQ(net.StatsFor(1).dropped, 1u);
  EXPECT_EQ(net.StatsFor(2).delivered, 0u);
}

TEST(NetworkTest, InFlightMessagesLostWhenDestinationGoesDown) {
  // Same rule for SetNodeDown: a crashed machine loses its NIC queues, so a
  // message submitted before the crash still disappears.
  NetworkOptions opts;
  opts.one_way_latency_us = 50'000;
  Network net(opts);
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  Message m;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  net.SetNodeDown(2, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  net.SetNodeDown(2, false);
  EXPECT_FALSE(b->Receive(50).has_value());
  EXPECT_EQ(net.StatsFor(1).dropped, 1u);
}

TEST(NetworkTest, TransientCutHealsItself) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  net.CutLinkFor(1, 2, 80);
  Message m;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  EXPECT_FALSE(b->Receive(40).has_value());  // Still partitioned.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Message m2;
  m2.type = 9;
  ASSERT_TRUE(a->Send(2, std::move(m2)).ok());
  auto got = b->Receive(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 9u);
}

TEST(NetworkTest, SendAssignsMonotonicSeq) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  for (int i = 0; i < 5; ++i) {
    Message m;
    ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  }
  uint64_t prev = 0;
  for (int i = 0; i < 5; ++i) {
    auto got = b->Receive(1000);
    ASSERT_TRUE(got.has_value());
    EXPECT_GT(got->seq, prev);
    prev = got->seq;
  }
  // Restart (reboot) must NOT reset the sequence counter, or receivers'
  // dedup windows would discard the rebooted node's fresh traffic.
  a->Shutdown();
  a->Restart();
  Message m;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  auto got = b->Receive(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_GT(got->seq, prev);
}

TEST(NetworkTest, DropFaultLosesMessagesAndCountsThem) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  LinkFaults faults;
  faults.drop_probability = 1.0;
  net.SetLinkFaults(1, 2, faults);
  for (int i = 0; i < 10; ++i) {
    Message m;
    ASSERT_TRUE(a->Send(2, std::move(m)).ok());  // Silently eaten.
  }
  EXPECT_FALSE(b->Receive(50).has_value());
  EXPECT_EQ(net.StatsFor(1).sent, 10u);
  EXPECT_EQ(net.StatsFor(1).dropped, 10u);
  net.ClearFaults();
  Message m;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  EXPECT_TRUE(b->Receive(1000).has_value());
}

TEST(NetworkTest, DuplicateFaultDeliversCopiesWithSameSeq) {
  Network net;
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  LinkFaults faults;
  faults.duplicate_probability = 1.0;
  net.SetLinkFaults(1, 2, faults);
  Message m;
  m.type = 3;
  ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  auto first = b->Receive(1000);
  auto second = b->Receive(1000);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // The duplicate is byte-identical, same seq: receivers can dedup on it.
  EXPECT_EQ(first->seq, second->seq);
  EXPECT_EQ(first->type, second->type);
  EXPECT_EQ(net.StatsFor(1).duplicated, 1u);
}

TEST(NetworkTest, ReorderFaultShufflesDelivery) {
  NetworkOptions opts;
  opts.one_way_latency_us = 10;
  Network net(opts);
  Endpoint* a = net.CreateEndpoint(1);
  Endpoint* b = net.CreateEndpoint(2);
  LinkFaults faults;
  faults.reorder_probability = 0.5;
  faults.reorder_window_us = 20'000;  // Huge vs the 10 us base latency.
  net.SetLinkFaults(1, 2, faults);
  constexpr int kN = 40;
  for (int i = 0; i < kN; ++i) {
    Message m;
    ASSERT_TRUE(a->Send(2, std::move(m)).ok());
  }
  std::vector<uint64_t> order;
  for (int i = 0; i < kN; ++i) {
    auto got = b->Receive(1000);
    ASSERT_TRUE(got.has_value());
    order.push_back(got->seq);
  }
  bool inverted = false;
  for (size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) {
      inverted = true;
    }
  }
  EXPECT_TRUE(inverted) << "reorder fault produced FIFO delivery";
  EXPECT_GT(net.StatsFor(1).reordered, 0u);
}

TEST(NetworkTest, FaultScheduleIsDeterministicForSeed) {
  // Same seed + same send order => the same messages are dropped.
  auto run = [](uint64_t seed) {
    NetworkOptions opts;
    opts.fault_seed = seed;
    Network net(opts);
    Endpoint* a = net.CreateEndpoint(1);
    Endpoint* b = net.CreateEndpoint(2);
    LinkFaults faults;
    faults.drop_probability = 0.5;
    net.SetLinkFaults(1, 2, faults);
    for (int i = 0; i < 50; ++i) {
      Message m;
      EXPECT_TRUE(a->Send(2, std::move(m)).ok());
    }
    std::vector<uint64_t> seqs;
    while (auto got = b->Receive(100)) {
      seqs.push_back(got->seq);
    }
    return seqs;
  };
  const std::vector<uint64_t> first = run(1234);
  const std::vector<uint64_t> second = run(1234);
  EXPECT_EQ(first, second);
  EXPECT_LT(first.size(), 50u);  // Some messages actually dropped.
  EXPECT_GT(first.size(), 0u);
}

TEST(NetworkTest, ManySendersOneReceiver) {
  Network net;
  Endpoint* sink = net.CreateEndpoint(100);
  std::vector<std::thread> threads;
  for (uint64_t s = 1; s <= 8; ++s) {
    net.CreateEndpoint(s);
  }
  for (uint64_t s = 1; s <= 8; ++s) {
    threads.emplace_back([&net, s] {
      Endpoint* ep = net.CreateEndpoint(s);
      for (int i = 0; i < 100; ++i) {
        Message m;
        m.type = s;
        ASSERT_TRUE(ep->Send(100, std::move(m)).ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  int got = 0;
  while (got < 800) {
    auto m = sink->Receive(1000);
    ASSERT_TRUE(m.has_value());
    ++got;
  }
  EXPECT_EQ(sink->messages_received(), 800u);
}

}  // namespace
}  // namespace kamino::net
