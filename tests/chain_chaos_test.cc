// Chaos and robustness tests for the self-healing chain (DESIGN.md §9):
// lossy links (drop/duplicate/reorder), transient partitions, fail-stop
// crashes repaired by the heartbeat failure detector, and exactly-once
// client retries. The soak test at the end drives all of them at once under
// a seeded, reproducible fault schedule.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/chain/chain.h"

// ThreadSanitizer slows promotion/state-transfer by up to an order of
// magnitude; stretch the failure-detector timeouts so a slow-but-alive
// replica is not excised mid-promotion (a real deployment tunes the
// suspicion timeout to its environment for exactly the same reason).
#if defined(__SANITIZE_THREAD__)
#define KAMINO_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KAMINO_TSAN 1
#endif
#endif

namespace kamino::chain {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

#ifdef KAMINO_TSAN
constexpr uint32_t kSuspicionMs = 2'000;
#else
constexpr uint32_t kSuspicionMs = 300;
#endif

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return (s && *s) ? std::strtoull(s, nullptr, 0) : fallback;
}

ChainOptions BaseOpts() {
  ChainOptions o;
  o.kamino = true;
  o.f = 2;  // f+2 = 4 replicas.
  o.pool_size = 16ull << 20;
  o.log_region_size = 4ull << 20;
  o.one_way_latency_us = 5;
  o.client_timeout_ms = 10'000;
  o.client_retry_base_ms = 150;
  return o;
}

// Polls until `pred` holds or `timeout_ms` passes; true iff it held.
template <typename Pred>
bool WaitFor(Pred pred, uint64_t timeout_ms) {
  const auto deadline = steady_clock::now() + milliseconds(timeout_ms);
  while (!pred()) {
    if (steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(milliseconds(5));
  }
  return true;
}

// --- Quiesce under partition (satellite: bounded, not hanging) -------------

TEST(ChainChaosTest, QuiesceTimesOutWhenChainPartitioned) {
  ChainOptions o = BaseOpts();
  o.retx_base_ms = 30;
  o.retx_cap_ms = 200;
  auto chain = Chain::Create(o).value();
  ASSERT_TRUE(chain->Upsert(1, "pre").ok());
  ASSERT_TRUE(chain->Quiesce().ok());

  // Cut the head from its successor: an admitted write can be applied at the
  // head but never propagate, so the chain cannot drain.
  const View v = chain->current_view();
  chain->network()->CutLink(v.nodes[0], v.nodes[1], true);

  std::thread writer([&] { EXPECT_TRUE(chain->Upsert(2, "stall").ok()); });
  Replica* head = chain->replica_by_id(v.nodes[0]);
  ASSERT_TRUE(WaitFor([&] { return head->in_flight_size() > 0; }, 2'000));

  const auto t0 = steady_clock::now();
  Status st = chain->Quiesce(/*timeout_ms=*/300);
  const auto elapsed = std::chrono::duration_cast<milliseconds>(steady_clock::now() - t0);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.message();
  EXPECT_LT(elapsed.count(), 2'000) << "Quiesce must time out promptly, not hang";

  // Heal: retransmission pushes the stalled op through and the writer's
  // pending wait (same request id, no re-execution) completes.
  chain->network()->CutLink(v.nodes[0], v.nodes[1], false);
  writer.join();
  ASSERT_TRUE(chain->Quiesce().ok());
  EXPECT_EQ(chain->Read(2).value(), "stall");
}

// --- Commit learned through cleanup acks (lost tail->head ack) -------------

TEST(ChainChaosTest, LostTailAckRecoveredThroughCleanupPath) {
  // Sever the direct tail->head link. Op forwards still flow down the chain
  // hop by hop, and the tail's cleanup acks still hop upstream — the head
  // must accept those as commit evidence instead of waiting forever for the
  // (dead) direct ack.
  auto chain = Chain::Create(BaseOpts()).value();
  const View v = chain->current_view();
  ASSERT_EQ(v.nodes.size(), 4u);
  chain->network()->CutLink(v.head(), v.tail(), true);

  const auto t0 = steady_clock::now();
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "via-cleanup").ok()) << k;
  }
  const auto elapsed = std::chrono::duration_cast<milliseconds>(steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 8'000) << "commits should not need the retry deadline";
  EXPECT_GT(chain->NetworkStats().net.dropped, 0u) << "the cut must actually drop acks";

  chain->network()->CutLink(v.head(), v.tail(), false);
  ASSERT_TRUE(chain->Quiesce().ok());
  EXPECT_EQ(chain->Read(3).value(), "via-cleanup");
}

// --- Exactly-once client retries -------------------------------------------

TEST(ChainChaosTest, RetriedRequestIsNotReexecuted) {
  auto chain = Chain::Create(BaseOpts()).value();
  Replica* head = chain->head();

  Op op;
  op.kind = OpKind::kUpsert;
  op.req_id = 7'777;
  op.pairs = {{42, "once"}};
  ASSERT_TRUE(head->ClientWrite(op).ok());
  ASSERT_TRUE(chain->Quiesce().ok());
  const uint64_t watermark = head->last_applied();

  // The same request arriving again (a client retry after a lost ack) must
  // not execute a second time: the ticket resolves to the original op.
  Replica::WriteTicket t = head->AdmitWrite(op);
  ASSERT_TRUE(t.admitted) << t.status.message();
  EXPECT_TRUE(head->WaitWrite(t).ok());
  EXPECT_EQ(head->last_applied(), watermark) << "retry must not advance the watermark";
  EXPECT_EQ(head->protocol_stats().req_dedup_hits, 1u);
  EXPECT_EQ(chain->Read(42).value(), "once");
}

TEST(ChainChaosTest, RetryDedupSurvivesHeadChange) {
  // Every replica maintains the request table as ops apply, so a head
  // promoted mid-request still recognises the retry.
  auto chain = Chain::Create(BaseOpts()).value();
  Op op;
  op.kind = OpKind::kUpsert;
  op.req_id = 4'242;
  op.pairs = {{9, "first"}};
  ASSERT_TRUE(chain->head()->ClientWrite(op).ok());
  ASSERT_TRUE(chain->Quiesce().ok());

  ASSERT_TRUE(chain->KillReplica(chain->current_view().head()).ok());
  Replica* new_head = chain->head();
  ASSERT_NE(new_head, nullptr);
  const uint64_t watermark = new_head->last_applied();

  Replica::WriteTicket t = new_head->AdmitWrite(op);
  ASSERT_TRUE(t.admitted) << t.status.message();
  EXPECT_TRUE(new_head->WaitWrite(t).ok());
  EXPECT_EQ(new_head->last_applied(), watermark);
  EXPECT_EQ(new_head->protocol_stats().req_dedup_hits, 1u);
  EXPECT_EQ(chain->Read(9).value(), "first");
}

// --- Detector-driven view changes (KillReplica not involved) ---------------

TEST(ChainChaosTest, DetectorExcisesSilentTail) {
  ChainOptions o = BaseOpts();
  o.heartbeat_interval_ms = 20;
  o.suspicion_timeout_ms = kSuspicionMs;
  auto chain = Chain::Create(o).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "pre").ok());
    model[k] = "pre";
  }
  ASSERT_TRUE(chain->Quiesce().ok());

  // Fail-stop the tail WITHOUT telling the orchestrator: the heartbeat
  // detector at its predecessor must notice the silence, the membership
  // manager must excise it, and the repair thread must re-wire the chain.
  const uint64_t victim = chain->current_view().tail();
  chain->replica_by_id(victim)->CrashStop();
  ASSERT_TRUE(WaitFor([&] { return !chain->current_view().Contains(victim); }, 10'000))
      << "detector never excised the dead tail";
  EXPECT_GE(chain->membership()->suspicion_view_changes(), 1u);

  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "post").ok()) << k;
    model[k] = "post";
  }
  ASSERT_TRUE(chain->Quiesce().ok());
  EXPECT_EQ(chain->Read(4).value(), "post");
  EXPECT_EQ(chain->current_view().nodes.size(), 3u);
}

TEST(ChainChaosTest, DetectorPromotesNewHeadAfterSilentHeadDeath) {
  ChainOptions o = BaseOpts();
  o.heartbeat_interval_ms = 20;
  o.suspicion_timeout_ms = kSuspicionMs;
  auto chain = Chain::Create(o).value();
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "pre").ok());
  }
  ASSERT_TRUE(chain->Quiesce().ok());

  const View before = chain->current_view();
  const uint64_t old_head = before.head();
  const uint64_t expected_head = before.nodes[1];
  chain->replica_by_id(old_head)->CrashStop();
  ASSERT_TRUE(WaitFor([&] { return !chain->current_view().Contains(old_head); }, 10'000))
      << "detector never excised the dead head";
  EXPECT_EQ(chain->current_view().head(), expected_head);
  EXPECT_GE(chain->membership()->suspicion_view_changes(), 1u);

  // Clients keep working against the promoted head (the retry loop rides
  // over the repair window).
  ASSERT_TRUE(chain->Upsert(3, "after-promotion").ok());
  ASSERT_TRUE(chain->Quiesce().ok());
  EXPECT_EQ(chain->Read(3).value(), "after-promotion");
  EXPECT_TRUE(chain->head()->is_head());
}

// --- Join retransmission (lost kStateReq is retried, not fatal) -------------

TEST(ChainChaosTest, JoinRetransmitsStateReqThroughTransientPartition) {
  ChainOptions o = BaseOpts();
  auto chain = Chain::Create(o).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "pre-join").ok());
    model[k] = "pre-join";
  }
  ASSERT_TRUE(chain->Quiesce().ok());

  const size_t full_strength = chain->current_view().nodes.size();
  ASSERT_TRUE(chain->KillReplica(chain->current_view().tail()).ok());
  ASSERT_TRUE(chain->Quiesce().ok());
  const uint64_t pred = chain->current_view().tail();

  // The joiner's first kStateReq (and the first few retries) vanish into a
  // transient partition of the joiner<->predecessor link; the bounded
  // exponential backoff must ride it out instead of burning the whole
  // recovery deadline on one lost datagram.
  const uint64_t jid = chain->PrepareJoiningReplica().value();
  chain->network()->CutLinkFor(jid, pred, 300);
  ASSERT_TRUE(chain->CompleteJoin(jid).ok());
  EXPECT_GE(chain->NetworkStats().state_req_retransmits, 1u)
      << "join survived the cut without retransmitting? (cut too short)";

  ASSERT_TRUE(chain->Quiesce().ok());
  EXPECT_EQ(chain->current_view().nodes.size(), full_strength);
  ASSERT_TRUE(chain->Upsert(100, "post-join").ok());
  EXPECT_EQ(chain->Read(100).value(), "post-join");
}

// --- The soak: everything at once ------------------------------------------

TEST(ChainChaosTest, LossyNetworkSoak) {
  // Knobs for CI vs local runs; the schedule is deterministic for a fixed
  // seed (the network PRNG is seeded — thread interleaving still varies, and
  // the assertions only rely on protocol invariants, never on timing).
  const uint64_t seed = EnvU64("KAMINO_CHAOS_SEED", 0x6b616d696e6f);
  const int ops_per_thread = static_cast<int>(EnvU64("KAMINO_CHAOS_OPS", 60));

  ChainOptions o = BaseOpts();
  o.client_timeout_ms = 30'000;
  o.client_retry_base_ms = 100;
  o.heartbeat_interval_ms = 15;
  o.suspicion_timeout_ms = std::max<uint32_t>(500, kSuspicionMs);
  o.retx_base_ms = 20;
  o.retx_cap_ms = 200;
  o.fault_seed = seed;
  auto chain = Chain::Create(o).value();

  // Lossy everywhere: drops, duplicates, and a reorder window two orders of
  // magnitude above the one-way latency.
  net::LinkFaults faults;
  faults.drop_probability = 0.05;
  faults.duplicate_probability = 0.03;
  faults.reorder_probability = 0.20;
  faults.reorder_window_us = 1'500;
  chain->network()->SetDefaultFaults(faults);

  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 8;
  struct KeyRecord {
    uint64_t last_acked = 0;      // Highest version the chain acknowledged.
    uint64_t last_attempted = 0;  // Highest version ever submitted.
  };
  // Disjoint key spaces per thread, so per-key version sequences are
  // strictly increasing and the final state is exactly checkable.
  std::vector<std::map<uint64_t, KeyRecord>> tracked(kThreads);
  std::atomic<uint64_t> acked{0};
  std::atomic<uint64_t> gave_up{0};

  auto value_for = [](int t, uint64_t ver) {
    return "t" + std::to_string(t) + "-v" + std::to_string(ver);
  };

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const uint64_t base = 1'000ull * (t + 1);
      for (int i = 1; i <= ops_per_thread; ++i) {
        const uint64_t ver = static_cast<uint64_t>(i);
        const uint64_t k1 = base + (i % kKeysPerThread);
        Status st;
        if (i % 5 == 0) {
          // Atomic multi-key write inside this thread's key space.
          const uint64_t k2 = base + ((i + 3) % kKeysPerThread);
          tracked[t][k1].last_attempted = ver;
          tracked[t][k2].last_attempted = ver;
          st = chain->MultiUpsert({{k1, value_for(t, ver)}, {k2, value_for(t, ver)}});
          if (st.ok()) {
            tracked[t][k1].last_acked = ver;
            tracked[t][k2].last_acked = ver;
          }
        } else {
          tracked[t][k1].last_attempted = ver;
          st = chain->Upsert(k1, value_for(t, ver));
          if (st.ok()) {
            tracked[t][k1].last_acked = ver;
          }
        }
        if (st.ok()) {
          acked.fetch_add(1, std::memory_order_relaxed);
        } else {
          // A typed, bounded failure is acceptable under chaos; hanging or
          // an unexpected code is not.
          gave_up.fetch_add(1, std::memory_order_relaxed);
          EXPECT_TRUE(st.code() == StatusCode::kDegraded ||
                      st.code() == StatusCode::kUnavailable)
              << st.message();
        }
      }
    });
  }

  // Scripted fault schedule, layered on top of the always-on lossy links.
  // 1) Transient partition between head and tail (non-adjacent: no false
  //    suspicion, but the direct commit-ack path disappears for a while).
  std::this_thread::sleep_for(milliseconds(300));
  const View v0 = chain->current_view();
  chain->network()->CutLinkFor(v0.head(), v0.tail(), 400);

  // 2) Fail-stop the head, telling nobody: only the failure detector may
  //    repair this (KillReplica is deliberately not called).
  std::this_thread::sleep_for(milliseconds(600));
  const uint64_t victim = chain->current_view().head();
  chain->replica_by_id(victim)->CrashStop();
  ASSERT_TRUE(WaitFor([&] { return !chain->current_view().Contains(victim); }, 20'000))
      << "detector-driven view change never happened";

  for (std::thread& w : workers) {
    w.join();
  }

  // Heal, drain, and repair back to full strength.
  chain->network()->ClearFaults();
  ASSERT_TRUE(chain->Quiesce(20'000).ok());
  while (chain->current_view().nodes.size() < 4) {
    ASSERT_TRUE(chain->AddReplica().ok());
  }
  ASSERT_TRUE(chain->Quiesce(10'000).ok());

  const View vf = chain->current_view();
  EXPECT_EQ(vf.nodes.size(), 4u);
  EXPECT_GE(chain->membership()->suspicion_view_changes(), 1u);
  EXPECT_GT(acked.load(), 0u) << "the chain made no progress at all under chaos";

  // No lost acked commit, no duplicate/aberrant apply: each key must hold a
  // value written by its owning thread with version between the last ACKED
  // and the last ATTEMPTED write (a timed-out write may still have landed —
  // that is allowed; regressing below an acked version is not).
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& [key, rec] : tracked[t]) {
      Result<std::string> got = chain->Read(key);
      if (rec.last_acked > 0) {
        ASSERT_TRUE(got.ok()) << "acked write lost: key " << key;
      }
      if (!got.ok()) {
        continue;  // Never-acked key that also never landed.
      }
      const std::string prefix = "t" + std::to_string(t) + "-v";
      ASSERT_EQ(got->compare(0, prefix.size(), prefix), 0)
          << "key " << key << " holds foreign value " << *got;
      const uint64_t ver = std::strtoull(got->c_str() + prefix.size(), nullptr, 10);
      EXPECT_GE(ver, rec.last_acked) << "key " << key << " regressed below an acked write";
      EXPECT_LE(ver, rec.last_attempted) << "key " << key << " holds a never-written version";
    }
  }

  // Replica convergence: every member of the final view (including the
  // freshly joined tail) has identical contents and an intact tree.
  Replica* head = chain->head();
  ASSERT_NE(head, nullptr);
  const uint64_t head_watermark = head->last_applied();
  for (uint64_t id : vf.nodes) {
    Replica* r = chain->replica_by_id(id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->last_applied(), head_watermark) << "replica " << id;
    ASSERT_TRUE(r->tree()->Validate().ok()) << "replica " << id;
    for (int t = 0; t < kThreads; ++t) {
      for (const auto& [key, rec] : tracked[t]) {
        Result<std::string> at_head = head->tree()->Get(key);
        Result<std::string> here = r->tree()->Get(key);
        ASSERT_EQ(at_head.ok(), here.ok()) << "replica " << id << " key " << key;
        if (at_head.ok()) {
          EXPECT_EQ(*at_head, *here) << "replica " << id << " key " << key;
        }
      }
    }
  }

  // Deletes ride the same exactly-once retry machinery.
  for (int t = 0; t < kThreads; ++t) {
    const uint64_t key = 1'000ull * (t + 1);
    ASSERT_TRUE(chain->Delete(key).ok());
    EXPECT_EQ(chain->Read(key).status().code(), StatusCode::kNotFound);
  }

  // The run must actually have exercised the recovery machinery.
  ChainNetworkStats stats = chain->NetworkStats();
  EXPECT_GT(stats.net.dropped, 0u);
  EXPECT_GT(stats.net.duplicated, 0u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_GT(stats.heartbeats_sent, 0u);
  RecordProperty("acked", static_cast<int>(acked.load()));
  RecordProperty("gave_up", static_cast<int>(gave_up.load()));
  RecordProperty("dropped", static_cast<int>(stats.net.dropped));
  RecordProperty("retransmits", static_cast<int>(stats.retransmits));
}

}  // namespace
}  // namespace kamino::chain
