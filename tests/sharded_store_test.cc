// ShardedStore: routing invariants, stats isolation, scan merge, restart
// stability, topology enforcement, cross-shard MultiUpdate and partial open.

#include "src/shard/sharded_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/nvm/pool.h"

namespace kamino {
namespace {

using shard::ShardedStore;
using shard::ShardedStoreOptions;

// A sharded store whose pools outlive the store, so tests can tear it down
// and re-open ("restart the process") or corrupt a shard in between.
struct ShardedSystem {
  std::vector<std::unique_ptr<nvm::Pool>> mains;
  std::vector<std::unique_ptr<nvm::Pool>> backups;
  ShardedStoreOptions opts;
  std::unique_ptr<ShardedStore> store;

  static ShardedSystem Create(int num_shards, uint64_t pool_size = 32ull << 20) {
    ShardedSystem sys;
    sys.opts.num_shards = num_shards;
    sys.opts.log_region_size = 4ull << 20;
    sys.opts.lock.timeout_ms = 2000;
    for (int i = 0; i < num_shards; ++i) {
      nvm::PoolOptions popts;
      popts.size = pool_size;
      popts.crash_sim = true;
      popts.site_prefix = "shard" + std::to_string(i);
      sys.mains.push_back(std::move(nvm::Pool::Create(popts).value()));
      sys.backups.push_back(std::move(nvm::Pool::Create(popts).value()));
      sys.opts.external_pools.push_back(
          {sys.mains.back().get(), sys.backups.back().get()});
    }
    sys.store = std::move(ShardedStore::Create(sys.opts).value());
    return sys;
  }

  // Clean restart: quiesce, drop the store, re-open on the same pools.
  void Restart() {
    store->WaitIdle();
    store.reset();
    Result<std::unique_ptr<ShardedStore>> reopened = ShardedStore::Open(opts);
    ASSERT_TRUE(reopened.ok()) << reopened.status().message();
    store = std::move(*reopened);
  }
};

uint64_t KeyOnShard(const ShardedStore& store, size_t shard, uint64_t from = 0) {
  for (uint64_t k = from;; ++k) {
    if (store.ShardOf(k) == shard) {
      return k;
    }
  }
}

TEST(ShardedStoreTest, CrudRoutesAcrossAllShards) {
  ShardedSystem sys = ShardedSystem::Create(4);
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(sys.store->Insert(k, "v" + std::to_string(k)).ok());
  }
  // splitmix64 routing spreads dense keys over every shard.
  std::set<size_t> hit;
  for (uint64_t k = 0; k < 200; ++k) {
    hit.insert(sys.store->ShardOf(k));
  }
  EXPECT_EQ(hit.size(), 4u);

  for (uint64_t k = 0; k < 200; ++k) {
    Result<std::string> v = sys.store->Read(k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "v" + std::to_string(k));
  }
  ASSERT_TRUE(sys.store->Update(7, "updated").ok());
  EXPECT_EQ(*sys.store->Read(7), "updated");
  ASSERT_TRUE(sys.store->Delete(8).ok());
  EXPECT_FALSE(sys.store->Read(8).ok());
  EXPECT_FALSE(sys.store->Insert(7, "dup").ok());
  ASSERT_TRUE(sys.store->Upsert(8, "back").ok());
  EXPECT_EQ(*sys.store->Read(8), "back");
}

TEST(ShardedStoreTest, SingleKeyOpsTouchOnlyTheirShard) {
  ShardedSystem sys = ShardedSystem::Create(4);
  const uint64_t key = KeyOnShard(*sys.store, 2);
  std::vector<uint64_t> before;
  for (int i = 0; i < 4; ++i) {
    before.push_back(sys.store->ShardStats(i).committed);
  }
  ASSERT_TRUE(sys.store->Insert(key, "x").ok());
  ASSERT_TRUE(sys.store->Update(key, "y").ok());
  ASSERT_TRUE(sys.store->Read(key).ok());
  for (int i = 0; i < 4; ++i) {
    const uint64_t delta = sys.store->ShardStats(i).committed - before[i];
    if (i == 2) {
      EXPECT_GT(delta, 0u) << "owning shard saw no transactions";
    } else {
      EXPECT_EQ(delta, 0u) << "shard " << i << " touched by another shard's op";
    }
  }
}

TEST(ShardedStoreTest, ScanMergesGloballySorted) {
  ShardedSystem sys = ShardedSystem::Create(4);
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(sys.store->Insert(k * 3, "s" + std::to_string(k * 3)).ok());
  }
  Result<std::vector<std::pair<uint64_t, std::string>>> scan = sys.store->Scan(30, 20);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 20u);
  for (size_t i = 0; i < scan->size(); ++i) {
    EXPECT_EQ((*scan)[i].first, 30 + 3 * i);
    EXPECT_EQ((*scan)[i].second, "s" + std::to_string(30 + 3 * i));
  }
  // Tail truncation: ask past the end.
  Result<std::vector<std::pair<uint64_t, std::string>>> tail = sys.store->Scan(3 * 95, 50);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 5u);
}

TEST(ShardedStoreTest, RestartKeepsRoutingAndData) {
  ShardedSystem sys = ShardedSystem::Create(3);
  std::vector<size_t> route_before;
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(sys.store->Insert(k, "r" + std::to_string(k)).ok());
    route_before.push_back(sys.store->ShardOf(k));
  }
  sys.Restart();
  for (uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(sys.store->ShardOf(k), route_before[k]) << "routing changed across restart";
    Result<std::string> v = sys.store->Read(k);
    ASSERT_TRUE(v.ok()) << v.status().message();
    EXPECT_EQ(*v, "r" + std::to_string(k));
  }
}

TEST(ShardedStoreTest, RefusesShardCountMismatch) {
  ShardedSystem sys = ShardedSystem::Create(4);
  ASSERT_TRUE(sys.store->Insert(1, "x").ok());
  sys.store->WaitIdle();
  sys.store.reset();

  // Same pools, wrong topology: the persisted anchors say 4 shards.
  ShardedStoreOptions wrong = sys.opts;
  wrong.num_shards = 2;
  wrong.external_pools = {sys.opts.external_pools[0], sys.opts.external_pools[1]};
  Result<std::unique_ptr<ShardedStore>> reopened = ShardedStore::Open(wrong);
  EXPECT_FALSE(reopened.ok());

  // Pools permuted: each anchor records its shard index.
  ShardedStoreOptions swapped = sys.opts;
  std::swap(swapped.external_pools[0], swapped.external_pools[3]);
  reopened = ShardedStore::Open(swapped);
  EXPECT_FALSE(reopened.ok());

  // Unchanged topology still opens.
  reopened = ShardedStore::Open(sys.opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(*(*reopened)->Read(1), "x");
}

TEST(ShardedStoreTest, MultiUpdateSingleShardSkips2pc) {
  ShardedSystem sys = ShardedSystem::Create(4);
  const uint64_t a = KeyOnShard(*sys.store, 1);
  const uint64_t b = KeyOnShard(*sys.store, 1, a + 1);
  ASSERT_TRUE(sys.store->Insert(a, "0").ok());
  ASSERT_TRUE(sys.store->Insert(b, "0").ok());
  ASSERT_TRUE(sys.store->MultiUpdate({{a, "1"}, {b, "1"}}).ok());
  EXPECT_EQ(*sys.store->Read(a), "1");
  EXPECT_EQ(*sys.store->Read(b), "1");
  const ShardedStore::CrossShardStats stats = sys.store->cross_shard_stats();
  EXPECT_EQ(stats.single_shard_multi_updates, 1u);
  EXPECT_EQ(stats.cross_shard_commits, 0u);
}

TEST(ShardedStoreTest, MultiUpdateCrossShardCommitsAtomically) {
  ShardedSystem sys = ShardedSystem::Create(4);
  const uint64_t a = KeyOnShard(*sys.store, 0);
  const uint64_t b = KeyOnShard(*sys.store, 2);
  const uint64_t c = KeyOnShard(*sys.store, 3);
  for (uint64_t k : {a, b, c}) {
    ASSERT_TRUE(sys.store->Insert(k, "init").ok());
  }
  ASSERT_TRUE(sys.store->MultiUpdate({{a, "gen1"}, {b, "gen1"}, {c, "gen1"}}).ok());
  for (uint64_t k : {a, b, c}) {
    EXPECT_EQ(*sys.store->Read(k), "gen1");
  }
  EXPECT_EQ(sys.store->cross_shard_stats().cross_shard_commits, 1u);

  // A missing key aborts the whole batch on every shard.
  Status st = sys.store->MultiUpdate({{a, "gen2"}, {999999, "gen2"}});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(*sys.store->Read(a), "gen1");

  // And the data survives a restart (prepared slots fully resolved).
  sys.Restart();
  for (uint64_t k : {a, b, c}) {
    EXPECT_EQ(*sys.store->Read(k), "gen1");
  }
}

TEST(ShardedStoreTest, ConcurrentCrossShardMultiUpdates) {
  ShardedSystem sys = ShardedSystem::Create(4);
  constexpr int kThreads = 4;
  constexpr int kIters = 40;
  // Each thread owns a disjoint triple of keys spanning >= 2 shards and
  // atomically writes the same generation string to all three.
  std::vector<std::vector<uint64_t>> keys(kThreads);
  uint64_t next = 0;
  for (int t = 0; t < kThreads; ++t) {
    keys[t].push_back(KeyOnShard(*sys.store, 0, next));
    keys[t].push_back(KeyOnShard(*sys.store, 1, keys[t][0] + 1));
    keys[t].push_back(KeyOnShard(*sys.store, 2, keys[t][1] + 1));
    next = keys[t][2] + 1;
    for (uint64_t k : keys[t]) {
      ASSERT_TRUE(sys.store->Insert(k, "g0").ok());
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 1; i <= kIters; ++i) {
        const std::string gen = "g" + std::to_string(i);
        Status st = sys.store->MultiUpdate(
            {{keys[t][0], gen}, {keys[t][1], gen}, {keys[t][2], gen}});
        ASSERT_TRUE(st.ok()) << st.message();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const std::string want = "g" + std::to_string(kIters);
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t k : keys[t]) {
      EXPECT_EQ(*sys.store->Read(k), want);
    }
  }
  EXPECT_GE(sys.store->cross_shard_stats().cross_shard_commits,
            static_cast<uint64_t>(kThreads * kIters));
}

TEST(ShardedStoreTest, SnapshotScanReturnsPerShardEpochVector) {
  ShardedSystem sys = ShardedSystem::Create(3);
  for (uint64_t k = 0; k < 120; ++k) {
    ASSERT_TRUE(sys.store->Insert(k, "v" + std::to_string(k)).ok());
  }
  sys.store->WaitIdle();
  std::vector<uint64_t> epochs;
  Result<std::vector<std::pair<uint64_t, std::string>>> snap =
      sys.store->SnapshotScan(0, 120, &epochs);
  ASSERT_TRUE(snap.ok()) << snap.status().message();
  ASSERT_EQ(epochs.size(), 3u);
  for (uint64_t e : epochs) {
    EXPECT_GT(e, 0u);  // Every shard took writes (splitmix64 routing).
  }
  Result<std::vector<std::pair<uint64_t, std::string>>> main =
      sys.store->Scan(0, 120);
  ASSERT_TRUE(main.ok());
  EXPECT_EQ(*snap, *main);
}

// Scan routes through the per-shard epoch cut when every shard supports it:
// a pair of keys on the SAME shard, always written atomically in one
// transaction, can never show up torn in a concurrent global scan.
TEST(ShardedStoreTest, ScanNeverObservesTornSameShardPair) {
  ShardedSystem sys = ShardedSystem::Create(2);
  constexpr int kPairsPerShard = 8;
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  uint64_t next = 0;
  for (int s = 0; s < 2; ++s) {
    for (int p = 0; p < kPairsPerShard; ++p) {
      const uint64_t a = KeyOnShard(*sys.store, s, next);
      const uint64_t b = KeyOnShard(*sys.store, s, a + 1);
      next = b + 1;
      pairs.emplace_back(a, b);
      ASSERT_TRUE(sys.store->Insert(a, "g0").ok());
      ASSERT_TRUE(sys.store->Insert(b, "g0").ok());
    }
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t gen = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& [a, b] : pairs) {
        const std::string v = "g" + std::to_string(gen);
        ASSERT_TRUE(sys.store->MultiUpdate({{a, v}, {b, v}}).ok());
      }
      ++gen;
    }
  });
  for (int round = 0; round < 25; ++round) {
    Result<std::vector<std::pair<uint64_t, std::string>>> rows =
        sys.store->Scan(0, 4 * kPairsPerShard);
    ASSERT_TRUE(rows.ok()) << rows.status().message();
    std::map<uint64_t, std::string> by_key(rows->begin(), rows->end());
    for (const auto& [a, b] : pairs) {
      ASSERT_TRUE(by_key.count(a) && by_key.count(b));
      EXPECT_EQ(by_key[a], by_key[b]) << "torn pair (" << a << "," << b << ")";
    }
  }
  stop.store(true);
  writer.join();
}

TEST(ShardedStoreTest, PartialOpenSurvivesOneBadShard) {
  ShardedSystem sys = ShardedSystem::Create(3);
  std::vector<uint64_t> keys;
  for (int s = 0; s < 3; ++s) {
    keys.push_back(KeyOnShard(*sys.store, s));
    ASSERT_TRUE(sys.store->Insert(keys.back(), "p" + std::to_string(s)).ok());
  }
  sys.store->WaitIdle();
  sys.store.reset();

  // Smash shard 1's heap superblock magic; its attach must fail.
  nvm::Pool* bad = sys.mains[1].get();
  *static_cast<uint64_t*>(bad->At(0)) = 0xDEADBEEFDEADBEEFull;
  bad->Persist(bad->At(0), sizeof(uint64_t));

  // Strict open fails outright...
  EXPECT_FALSE(ShardedStore::Open(sys.opts).ok());

  // ...partial open serves the healthy shards and fences the broken one.
  ShardedStoreOptions partial = sys.opts;
  partial.allow_partial_open = true;
  Result<std::unique_ptr<ShardedStore>> reopened = ShardedStore::Open(partial);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  ShardedStore* store = reopened->get();
  EXPECT_TRUE(store->shard_available(0));
  EXPECT_FALSE(store->shard_available(1));
  EXPECT_TRUE(store->shard_available(2));
  EXPECT_FALSE(store->shard_status(1).ok());

  EXPECT_EQ(*store->Read(keys[0]), "p0");
  EXPECT_EQ(*store->Read(keys[2]), "p2");
  Result<std::string> gone = store->Read(keys[1]);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kUnavailable);
  // Global reads refuse to silently drop a shard.
  EXPECT_FALSE(store->Scan(0, 10).ok());
  // Writes to healthy shards still work.
  EXPECT_TRUE(store->Update(keys[0], "p0b").ok());
}

}  // namespace
}  // namespace kamino
