#include "src/txn/backup_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

namespace kamino::txn {
namespace {

std::unique_ptr<nvm::Pool> MakePool(uint64_t size, bool crash_sim = true) {
  nvm::PoolOptions o;
  o.size = size;
  o.crash_sim = crash_sim;
  return std::move(nvm::Pool::Create(o).value());
}

void StampMain(nvm::Pool* main, uint64_t off, uint8_t byte, uint64_t size) {
  std::memset(main->At(off), byte, size);
  main->Persist(main->At(off), size);
}

// --- FullBackupStore ---------------------------------------------------------

TEST(FullBackupStoreTest, ApplyThenRestoreRoundTrip) {
  auto main = MakePool(1 << 20);
  auto backup = MakePool(1 << 20);
  FullBackupStore store(main.get(), backup.get());

  StampMain(main.get(), 4096, 0xAA, 256);
  ASSERT_TRUE(store.ApplyFromMain(4096, 256).ok());

  StampMain(main.get(), 4096, 0xBB, 256);  // "Transaction" modifies main.
  ASSERT_TRUE(store.RestoreToMain(4096, 256).ok());
  EXPECT_EQ(static_cast<uint8_t*>(main->At(4096))[0], 0xAA);
  EXPECT_EQ(static_cast<uint8_t*>(main->At(4096))[255], 0xAA);
}

TEST(FullBackupStoreTest, ApplyPersistsBackup) {
  auto main = MakePool(1 << 20);
  auto backup = MakePool(1 << 20);
  FullBackupStore store(main.get(), backup.get());
  StampMain(main.get(), 0, 0x11, 64);
  ASSERT_TRUE(store.ApplyFromMain(0, 64).ok());
  ASSERT_TRUE(backup->Crash().ok());
  EXPECT_EQ(static_cast<uint8_t*>(backup->At(0))[0], 0x11);
}

TEST(FullBackupStoreTest, EnsureIsFreeAndCountsNothing) {
  auto main = MakePool(1 << 20);
  auto backup = MakePool(1 << 20);
  FullBackupStore store(main.get(), backup.get());
  EXPECT_TRUE(store.EnsureBackupCopy(0, 64, true).ok());
  EXPECT_EQ(store.stats().ensure_misses, 0u);
  EXPECT_EQ(store.backup_bytes(), backup->size());
}

TEST(FullBackupStoreTest, SyncAllMirrorsEverything) {
  auto main = MakePool(1 << 20);
  auto backup = MakePool(1 << 20);
  FullBackupStore store(main.get(), backup.get());
  StampMain(main.get(), 1000, 0x77, 128);
  store.SyncAll();
  EXPECT_EQ(std::memcmp(backup->At(1000), main->At(1000), 128), 0);
}

// --- DynamicBackupStore ------------------------------------------------------

class DynamicBackupStoreTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kBuckets = 1 << 10;

  void SetUp() override { Build(8ull << 20); }

  void Build(uint64_t budget) {
    main_ = MakePool(64ull << 20);
    backup_ = MakePool(DynamicBackupStore::RequiredPoolSize(budget, kBuckets));
    DynamicBackupOptions opts;
    opts.lookup_buckets = kBuckets;
    opts.budget_bytes = budget;
    store_ = std::move(DynamicBackupStore::Create(main_.get(), backup_.get(), opts).value());
  }

  std::unique_ptr<nvm::Pool> main_;
  std::unique_ptr<nvm::Pool> backup_;
  std::unique_ptr<DynamicBackupStore> store_;
};

TEST_F(DynamicBackupStoreTest, MissThenHit) {
  StampMain(main_.get(), 4096, 0xAA, 1024);
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 1024).ok());
  EXPECT_EQ(store_->stats().ensure_misses, 1u);
  EXPECT_TRUE(store_->HasCopy(4096));

  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 1024).ok());
  EXPECT_EQ(store_->stats().ensure_hits, 1u);
  EXPECT_EQ(store_->stats().ensure_misses, 1u);
}

TEST_F(DynamicBackupStoreTest, RestoreReturnsPreTxValue) {
  StampMain(main_.get(), 4096, 0xAA, 1024);
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 1024).ok());
  StampMain(main_.get(), 4096, 0xBB, 1024);  // In-place edit.
  ASSERT_TRUE(store_->RestoreToMain(4096, 1024).ok());
  EXPECT_EQ(static_cast<uint8_t*>(main_->At(4096))[500], 0xAA);
}

TEST_F(DynamicBackupStoreTest, RestoreWithoutCopyIsCorruption) {
  EXPECT_EQ(store_->RestoreToMain(4096, 64).code(), StatusCode::kCorruption);
}

TEST_F(DynamicBackupStoreTest, ApplyCreatesCopyOnMiss) {
  StampMain(main_.get(), 8192, 0x42, 128);
  ASSERT_TRUE(store_->ApplyFromMain(8192, 128).ok());
  EXPECT_TRUE(store_->HasCopy(8192));
  StampMain(main_.get(), 8192, 0x43, 128);
  ASSERT_TRUE(store_->RestoreToMain(8192, 128).ok());
  EXPECT_EQ(static_cast<uint8_t*>(main_->At(8192))[0], 0x42);
}

TEST_F(DynamicBackupStoreTest, InvalidateForgetsCopy) {
  StampMain(main_.get(), 4096, 0xAA, 64);
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 64).ok());
  store_->Invalidate(4096);
  EXPECT_FALSE(store_->HasCopy(4096));
  EXPECT_EQ(store_->RestoreToMain(4096, 64).code(), StatusCode::kCorruption);
}

TEST_F(DynamicBackupStoreTest, EvictsLruWhenFull) {
  Build(2ull << 20);  // Small budget: ~2 MiB of copies.
  // Insert 64 KiB objects until evictions kick in.
  const uint64_t kObj = 64 * 1024;
  for (uint64_t i = 0; i < 64; ++i) {
    const uint64_t off = 1 * (1ull << 20) + i * kObj;
    StampMain(main_.get(), off, static_cast<uint8_t>(i + 1), kObj);
    ASSERT_TRUE(store_->EnsureBackupCopy(off, kObj).ok()) << i;
  }
  EXPECT_GT(store_->stats().evictions, 0u);
  // The oldest entries were evicted; the newest survive.
  EXPECT_FALSE(store_->HasCopy(1ull << 20));
  EXPECT_TRUE(store_->HasCopy((1ull << 20) + 63 * kObj));
}

TEST_F(DynamicBackupStoreTest, PinnedEntriesSurviveEvictionPressure) {
  Build(2ull << 20);
  const uint64_t kObj = 64 * 1024;
  const uint64_t pinned_off = 1ull << 20;
  StampMain(main_.get(), pinned_off, 0x99, kObj);
  ASSERT_TRUE(store_->EnsureBackupCopy(pinned_off, kObj, /*pin=*/true).ok());
  for (uint64_t i = 1; i < 64; ++i) {
    const uint64_t off = (1ull << 20) + i * kObj;
    StampMain(main_.get(), off, static_cast<uint8_t>(i), kObj);
    ASSERT_TRUE(store_->EnsureBackupCopy(off, kObj).ok());
  }
  EXPECT_TRUE(store_->HasCopy(pinned_off));
  store_->Unpin(pinned_off);
}

TEST_F(DynamicBackupStoreTest, AllPinnedReportsOutOfMemory) {
  Build(2ull << 20);
  const uint64_t kObj = 64 * 1024;
  uint64_t i = 0;
  Status st = Status::Ok();
  for (; i < 256; ++i) {
    const uint64_t off = (1ull << 20) + i * kObj;
    StampMain(main_.get(), off, 1, kObj);
    st = store_->EnsureBackupCopy(off, kObj, /*pin=*/true);
    if (!st.ok()) {
      break;
    }
  }
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
  for (uint64_t j = 0; j < i; ++j) {
    store_->Unpin((1ull << 20) + j * kObj);
  }
}

TEST_F(DynamicBackupStoreTest, LruOrderRespectsTouches) {
  Build(2ull << 20);
  const uint64_t kObj = 64 * 1024;
  const uint64_t first = 1ull << 20;
  StampMain(main_.get(), first, 1, kObj);
  ASSERT_TRUE(store_->EnsureBackupCopy(first, kObj).ok());
  // Fill close to budget, touching `first` after every insert.
  for (uint64_t i = 1; i < 40; ++i) {
    const uint64_t off = first + i * kObj;
    StampMain(main_.get(), off, static_cast<uint8_t>(i), kObj);
    ASSERT_TRUE(store_->EnsureBackupCopy(off, kObj).ok());
    ASSERT_TRUE(store_->EnsureBackupCopy(first, kObj).ok());  // Touch.
  }
  EXPECT_TRUE(store_->HasCopy(first)) << "frequently-touched copy was evicted";
}

TEST_F(DynamicBackupStoreTest, SurvivesCrashAndReopen) {
  StampMain(main_.get(), 4096, 0xAA, 1024);
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 1024).ok());
  StampMain(main_.get(), 4096, 0xBB, 1024);  // Uncommitted in-place edit.

  store_.reset();
  ASSERT_TRUE(backup_->Crash().ok());
  store_ = std::move(DynamicBackupStore::Open(main_.get(), backup_.get()).value());

  EXPECT_TRUE(store_->HasCopy(4096));
  ASSERT_TRUE(store_->RestoreToMain(4096, 1024).ok());
  EXPECT_EQ(static_cast<uint8_t*>(main_->At(4096))[0], 0xAA);
}

TEST_F(DynamicBackupStoreTest, ReopenDropsTornEntries) {
  // Write an entry, then crash with eviction randomness so the entry line
  // itself may be torn relative to the slot content. Open() must either see
  // a valid entry or drop it — never corruption.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    auto main = MakePool(8ull << 20);
    auto backup = MakePool(DynamicBackupStore::RequiredPoolSize(2ull << 20, 1 << 10));
    DynamicBackupOptions opts;
    opts.lookup_buckets = 1 << 10;
    auto store = std::move(DynamicBackupStore::Create(main.get(), backup.get(), opts).value());
    StampMain(main.get(), 4096, 0x12, 256);
    ASSERT_TRUE(store->EnsureBackupCopy(4096, 256).ok());
    store.reset();
    ASSERT_TRUE(backup->Crash(nvm::CrashMode::kEvictRandomly, seed, 0.5).ok());
    auto reopened = DynamicBackupStore::Open(main.get(), backup.get());
    ASSERT_TRUE(reopened.ok()) << reopened.status();
  }
}

// --- Pin balance across copy replacement (DESIGN.md §12 audit) --------------
// EnsureBackupCopy's grow-replace path and the applier's grow path both
// remove + reinsert the copy; the owner's pin must ride along or a later
// Unpin underflows / an eviction frees a pre-image a live transaction still
// needs for rollback.

TEST_F(DynamicBackupStoreTest, EnsureGrowReplaceCarriesPins) {
  StampMain(main_.get(), 4096, 0xAA, 8);
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 8, /*pin=*/true).ok());
  ASSERT_EQ(store_->PinCount(4096), 1u);

  // Another (unpinned) ensure for a grown range replaces the copy; the
  // original owner's pin must survive the replacement.
  StampMain(main_.get(), 4096, 0xBB, 64);
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 64, /*pin=*/false).ok());
  EXPECT_EQ(store_->PinCount(4096), 1u);

  // And a pinned re-ensure stacks on top of the carried pin.
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 64, /*pin=*/true).ok());
  EXPECT_EQ(store_->PinCount(4096), 2u);
  store_->Unpin(4096);
  store_->Unpin(4096);
  EXPECT_EQ(store_->PinCount(4096), 0u);
}

TEST_F(DynamicBackupStoreTest, ApplyGrowCarriesPins) {
  StampMain(main_.get(), 8192, 0x11, 8);
  ASSERT_TRUE(store_->EnsureBackupCopy(8192, 8, /*pin=*/true).ok());
  ASSERT_EQ(store_->PinCount(8192), 1u);

  // The applier sees a grown committed range for the same object (e.g. a
  // blob rewritten larger in place): replace must keep the pin.
  StampMain(main_.get(), 8192, 0x22, 128);
  ASSERT_TRUE(store_->ApplyFromMain(8192, 128).ok());
  EXPECT_EQ(store_->PinCount(8192), 1u);
  store_->Unpin(8192);
  EXPECT_EQ(store_->PinCount(8192), 0u);
}

TEST_F(DynamicBackupStoreTest, FailedGrowReplaceLeavesNoPhantomPins) {
  Build(2ull << 20);
  const uint64_t kObj = 64 * 1024;
  // Fill the budget with pinned copies so any new insert must fail.
  uint64_t filled = 0;
  for (;; ++filled) {
    const uint64_t off = (4ull << 20) + filled * kObj;
    StampMain(main_.get(), off, 1, kObj);
    if (!store_->EnsureBackupCopy(off, kObj, /*pin=*/true).ok()) {
      break;
    }
  }
  ASSERT_GT(filled, 0u);

  // Growing the first pinned copy needs a bigger slab; the insert fails with
  // everything pinned, and the old copy (with its pins) is already gone.
  // The owner's later Unpin must degrade to a no-op, not corrupt another
  // entry's pin count.
  const uint64_t victim = 4ull << 20;
  StampMain(main_.get(), victim, 2, 2 * kObj);
  Status st = store_->EnsureBackupCopy(victim, 2 * kObj, /*pin=*/false);
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
  EXPECT_FALSE(store_->HasCopy(victim));
  EXPECT_EQ(store_->PinCount(victim), 0u);
  store_->Unpin(victim);  // Owner releases; must be a safe no-op.
  EXPECT_EQ(store_->PinCount(victim), 0u);

  for (uint64_t j = 1; j < filled; ++j) {
    store_->Unpin((4ull << 20) + j * kObj);
  }
}

// --- Snapshot reads at the store level ---------------------------------------

TEST(FullBackupStoreTest, ReadAtServesAppliedBytesAndChecksBounds) {
  auto main = MakePool(1 << 20);
  auto backup = MakePool(1 << 20);
  FullBackupStore store(main.get(), backup.get());
  StampMain(main.get(), 2048, 0xCD, 64);
  ASSERT_TRUE(store.ApplyFromMain(2048, 64).ok());
  StampMain(main.get(), 2048, 0xEF, 64);  // In-flight write dirties main.

  uint8_t buf[64];
  ASSERT_TRUE(store.ReadAt(2048, 64, buf).ok());
  EXPECT_EQ(buf[0], 0xCD);  // Backup still holds the applied (cut) bytes.
  EXPECT_EQ(buf[63], 0xCD);
  EXPECT_EQ(store.ReadAt(main->size() - 8, 64, buf).code(),
            StatusCode::kInvalidArgument);
  EXPECT_GT(store.stats().read_hits, 0u);
}

TEST_F(DynamicBackupStoreTest, ReadAtHitMissAndTailSemantics) {
  StampMain(main_.get(), 4096, 0xAA, 128);
  ASSERT_TRUE(store_->ApplyFromMain(4096, 128).ok());
  StampMain(main_.get(), 4096, 0xBB, 128);  // Dirty main after the cut.

  uint8_t buf[256];
  // Hit: resident copy serves the applied bytes, not the dirty main bytes.
  ASSERT_TRUE(store_->ReadAt(4096, 128, buf).ok());
  EXPECT_EQ(buf[0], 0xAA);
  EXPECT_EQ(buf[127], 0xAA);
  // Reading past the copied range falls through to main for the tail (bytes
  // outside any declared write range are never dirty under the gate).
  StampMain(main_.get(), 4096 + 128, 0x55, 128);
  ASSERT_TRUE(store_->ReadAt(4096, 256, buf).ok());
  EXPECT_EQ(buf[127], 0xAA);
  EXPECT_EQ(buf[128], 0x55);
  // Miss: no copy resident, epoch-checked fallback reads main directly.
  StampMain(main_.get(), 32768, 0x77, 64);
  ASSERT_TRUE(store_->ReadAt(32768, 64, buf).ok());
  EXPECT_EQ(buf[0], 0x77);
  const BackupStats s = store_->stats();
  EXPECT_GE(s.read_hits, 2u);
  EXPECT_GE(s.read_misses, 1u);
  EXPECT_EQ(store_->ReadAt(main_->size(), 8, buf).code(),
            StatusCode::kInvalidArgument);
}

// The cut gate: readers and appliers exclude each other, and a snapshot view
// pins the published epoch for its lifetime.
TEST(FullBackupStoreTest, SnapshotViewPinsEpochAndGatesAppliers) {
  auto main = MakePool(1 << 20);
  auto backup = MakePool(1 << 20);
  FullBackupStore store(main.get(), backup.get());
  ASSERT_TRUE(store.supports_snapshot_reads());
  store.PublishCutEpoch(41);
  store.PublishCutEpoch(7);  // Stale publish must not move the cut backward.

  auto view = store.OpenSnapshot();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->epoch(), 41u);

  // An applier entering the cut must block until the reader releases.
  std::atomic<bool> applied{false};
  std::thread applier([&] {
    store.EnterApplyCut();
    applied.store(true);
    store.ExitApplyCut();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(applied.load());
  view->Release();
  applier.join();
  EXPECT_TRUE(applied.load());
  const BackupStats s = store.stats();
  EXPECT_EQ(s.snapshot_views, 1u);
  EXPECT_EQ(s.apply_fence_waits, 1u);
  EXPECT_EQ(s.cuts, 1u);
}

TEST_F(DynamicBackupStoreTest, GrowingRangeReplacesCopy) {
  StampMain(main_.get(), 4096, 0xAA, 64);
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 64).ok());
  StampMain(main_.get(), 4096, 0xCC, 256);
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 256).ok());  // Larger range.
  StampMain(main_.get(), 4096, 0xDD, 256);
  ASSERT_TRUE(store_->RestoreToMain(4096, 256).ok());
  EXPECT_EQ(static_cast<uint8_t*>(main_->At(4096))[200], 0xCC);
}

TEST_F(DynamicBackupStoreTest, ResidentCountTracksInsertsAndInvalidates) {
  EXPECT_EQ(store_->resident_copies(), 0u);
  StampMain(main_.get(), 4096, 1, 64);
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 64).ok());
  StampMain(main_.get(), 8192, 1, 64);
  ASSERT_TRUE(store_->EnsureBackupCopy(8192, 64).ok());
  EXPECT_EQ(store_->resident_copies(), 2u);
  store_->Invalidate(4096);
  EXPECT_EQ(store_->resident_copies(), 1u);
}

}  // namespace
}  // namespace kamino::txn

namespace kamino::txn {
namespace {

// (Appended coverage: post-recovery compaction of orphaned backup slots.)
TEST_F(DynamicBackupStoreTest, CompactAfterRecoveryReclaimsOrphans) {
  StampMain(main_.get(), 4096, 0x11, 512);
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 512).ok());
  // Simulate a crash window: the slot allocator holds an allocation that no
  // valid lookup-table entry references (tombstone persisted, replacement
  // entry lost).
  const uint64_t live_before = store_->slot_bytes_allocated();
  store_->Invalidate(4096);  // Entry gone...
  ASSERT_TRUE(store_->EnsureBackupCopy(4096, 512).ok());
  const uint64_t live_mid = store_->slot_bytes_allocated();
  EXPECT_EQ(live_mid, live_before);  // Slot was recycled, sanity.

  // Manufacture an orphan directly in the slot allocator via a second copy
  // whose entry we then tombstone by hand through Invalidate + re-ensure of
  // a DIFFERENT key reusing nothing.
  StampMain(main_.get(), 8192, 0x22, 512);
  ASSERT_TRUE(store_->EnsureBackupCopy(8192, 512).ok());
  store_.reset();
  ASSERT_TRUE(backup_->Crash().ok());
  store_ = std::move(DynamicBackupStore::Open(main_.get(), backup_.get()).value());
  // Whatever survived, compaction must leave exactly the referenced bytes.
  store_->CompactAfterRecovery();
  uint64_t referenced = 0;
  if (store_->HasCopy(4096)) {
    referenced += 512;
  }
  if (store_->HasCopy(8192)) {
    referenced += 512;
  }
  EXPECT_EQ(store_->slot_bytes_allocated(), referenced);
}

}  // namespace
}  // namespace kamino::txn
