#include "src/pds/hash_map.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/common/random.h"
#include "tests/test_util.h"

namespace kamino::pds {
namespace {

using test::CrashableSystem;

class HashMapTest : public ::testing::TestWithParam<txn::EngineType> {
 protected:
  void SetUp() override {
    sys_ = CrashableSystem::Create(GetParam());
    map_ = std::move(HashMap::Create(sys_.mgr.get(), 256).value());
  }

  CrashableSystem sys_;
  std::unique_ptr<HashMap> map_;
};

TEST_P(HashMapTest, PutGetRoundTrip) {
  ASSERT_TRUE(map_->Put(1, "one").ok());
  EXPECT_EQ(map_->Get(1).value(), "one");
  EXPECT_TRUE(map_->Contains(1));
  EXPECT_FALSE(map_->Contains(2));
}

TEST_P(HashMapTest, PutReplaces) {
  ASSERT_TRUE(map_->Put(1, "one").ok());
  ASSERT_TRUE(map_->Put(1, "uno").ok());
  EXPECT_EQ(map_->Get(1).value(), "uno");
  EXPECT_EQ(map_->CountSlow(), 1u);
}

TEST_P(HashMapTest, InsertOnlyRejectsDuplicates) {
  ASSERT_TRUE(map_->Insert(1, "one").ok());
  EXPECT_EQ(map_->Insert(1, "uno").code(), StatusCode::kAlreadyExists);
}

TEST_P(HashMapTest, PutGrowingValueReplacesNode) {
  ASSERT_TRUE(map_->Put(1, "x").ok());
  const std::string big(500, 'y');
  ASSERT_TRUE(map_->Put(1, big).ok());
  EXPECT_EQ(map_->Get(1).value(), big);
  sys_.mgr->WaitIdle();
  EXPECT_TRUE(map_->Validate().ok());
}

TEST_P(HashMapTest, EraseUnlinksFromChain) {
  // Load enough keys that several share chains (256 buckets, 1000 keys).
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(map_->Put(k, "v" + std::to_string(k)).ok());
  }
  for (uint64_t k = 0; k < 1000; k += 3) {
    ASSERT_TRUE(map_->Erase(k).ok()) << k;
  }
  sys_.mgr->WaitIdle();
  EXPECT_TRUE(map_->Validate().ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    if (k % 3 == 0) {
      EXPECT_FALSE(map_->Contains(k)) << k;
    } else {
      EXPECT_EQ(map_->Get(k).value(), "v" + std::to_string(k)) << k;
    }
  }
}

TEST_P(HashMapTest, EraseMissingIsNotFound) {
  EXPECT_EQ(map_->Erase(404).code(), StatusCode::kNotFound);
}

TEST_P(HashMapTest, RandomOpsAgainstModel) {
  std::map<uint64_t, std::string> model;
  Xoshiro256 rng(99);
  for (int op = 0; op < 3000; ++op) {
    const uint64_t key = rng.NextBounded(300);
    const double dice = rng.NextDouble();
    if (dice < 0.5) {
      const std::string v = "v" + std::to_string(op);
      ASSERT_TRUE(map_->Put(key, v).ok());
      model[key] = v;
    } else if (dice < 0.75) {
      Status st = map_->Erase(key);
      if (model.count(key)) {
        ASSERT_TRUE(st.ok());
        model.erase(key);
      } else {
        ASSERT_EQ(st.code(), StatusCode::kNotFound);
      }
    } else {
      Result<std::string> v = map_->Get(key);
      if (model.count(key)) {
        ASSERT_TRUE(v.ok());
        ASSERT_EQ(*v, model[key]);
      } else {
        ASSERT_EQ(v.status().code(), StatusCode::kNotFound);
      }
    }
  }
  sys_.mgr->WaitIdle();
  ASSERT_TRUE(map_->Validate().ok());
  ASSERT_EQ(map_->CountSlow(), model.size());
}

TEST_P(HashMapTest, ConcurrentWritersOnDistinctKeys) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 500;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * 100'000 + i;
        if (!map_->Put(key, std::to_string(key)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(map_->CountSlow(), kThreads * kPerThread);
  ASSERT_TRUE(map_->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Engines, HashMapTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic,
                                           txn::EngineType::kUndoLog, txn::EngineType::kCow,
                                           txn::EngineType::kNoLogging),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           switch (info.param) {
                             case txn::EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case txn::EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case txn::EngineType::kUndoLog:
                               return "UndoLog";
                             case txn::EngineType::kCow:
                               return "Cow";
                             case txn::EngineType::kNoLogging:
                               return "NoLogging";
                             default:
                               return "Unknown";
                           }
                         });

TEST(HashMapCrashTest, InterruptedPutInvisibleAfterRecovery) {
  for (txn::EngineType engine :
       {txn::EngineType::kKaminoSimple, txn::EngineType::kKaminoDynamic,
        txn::EngineType::kUndoLog, txn::EngineType::kCow}) {
    CrashableSystem sys = CrashableSystem::Create(engine);
    uint64_t anchor = 0;
    {
      auto map = HashMap::Create(sys.mgr.get(), 64).value();
      anchor = map->anchor();
      for (uint64_t k = 0; k < 200; ++k) {
        ASSERT_TRUE(map->Put(k, "stable").ok());
      }
      sys.mgr->WaitIdle();
      // A Put left in flight (intent declared, bucket word rewired in the
      // working image, never committed).
      Result<txn::Tx> tx = sys.mgr->Begin();
      ASSERT_TRUE(tx.ok());
      // Use the map's own transactional body via a manual splice: simply
      // leak after the intent-heavy part of a Put for key 777.
      // (Reusing DoPut is private; a fresh put through a leaked tx.)
      uint64_t node = tx->Alloc(64).value();
      (void)node;
      tx->LeakForCrashTest();
    }
    sys.CrashAndRecover();
    auto map = HashMap::Attach(sys.mgr.get(), anchor).value();
    ASSERT_TRUE(map->Validate().ok()) << txn::EngineTypeName(engine);
    EXPECT_EQ(map->CountSlow(), 200u);
    EXPECT_FALSE(map->Contains(777));
    ASSERT_TRUE(map->Put(777, "alive").ok());
    EXPECT_EQ(map->Get(777).value(), "alive");
  }
}

}  // namespace
}  // namespace kamino::pds
