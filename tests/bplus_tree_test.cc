#include "src/pds/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>

#include "src/common/random.h"
#include "tests/test_util.h"

namespace kamino::pds {
namespace {

using test::CrashableSystem;

class BPlusTreeTest : public ::testing::TestWithParam<txn::EngineType> {
 protected:
  void SetUp() override {
    sys_ = CrashableSystem::Create(GetParam(), 256ull << 20);
    tree_ = std::move(BPlusTree::Create(sys_.mgr.get()).value());
  }

  std::string ValueFor(uint64_t key) { return "value-" + std::to_string(key); }

  CrashableSystem sys_;
  std::unique_ptr<BPlusTree> tree_;
};

TEST_P(BPlusTreeTest, EmptyTreeBehaves) {
  EXPECT_EQ(tree_->Get(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(tree_->Delete(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree_->Update(1, "x").code(), StatusCode::kNotFound);
  EXPECT_EQ(tree_->CountSlow(), 0u);
  EXPECT_TRUE(tree_->Validate().ok());
}

TEST_P(BPlusTreeTest, InsertGetRoundTrip) {
  ASSERT_TRUE(tree_->Insert(42, "hello").ok());
  EXPECT_EQ(tree_->Get(42).value(), "hello");
  EXPECT_EQ(tree_->Insert(42, "again").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(tree_->Validate().ok());
}

TEST_P(BPlusTreeTest, SequentialInsertionsSplit) {
  constexpr uint64_t kN = 2000;  // Forces multiple levels.
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree_->Insert(k, ValueFor(k)).ok()) << k;
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(tree_->CountSlow(), kN);
  ASSERT_TRUE(tree_->Validate().ok());
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_EQ(tree_->Get(k).value(), ValueFor(k)) << k;
  }
}

TEST_P(BPlusTreeTest, ReverseInsertions) {
  for (uint64_t k = 1500; k > 0; --k) {
    ASSERT_TRUE(tree_->Insert(k, ValueFor(k)).ok()) << k;
  }
  sys_.mgr->WaitIdle();
  ASSERT_TRUE(tree_->Validate().ok());
  EXPECT_EQ(tree_->CountSlow(), 1500u);
  EXPECT_EQ(tree_->Get(1).value(), ValueFor(1));
  EXPECT_EQ(tree_->Get(1500).value(), ValueFor(1500));
}

TEST_P(BPlusTreeTest, RandomInsertLookupDeleteAgainstModel) {
  std::map<uint64_t, std::string> model;
  Xoshiro256 rng(2024);
  for (int op = 0; op < 4000; ++op) {
    const uint64_t key = rng.NextBounded(500);
    const double dice = rng.NextDouble();
    if (dice < 0.5) {
      const std::string v = ValueFor(key) + "-" + std::to_string(op);
      Status st = tree_->Upsert(key, v);
      ASSERT_TRUE(st.ok()) << st;
      model[key] = v;
    } else if (dice < 0.75) {
      Status st = tree_->Delete(key);
      if (model.count(key)) {
        ASSERT_TRUE(st.ok()) << st;
        model.erase(key);
      } else {
        ASSERT_EQ(st.code(), StatusCode::kNotFound);
      }
    } else {
      Result<std::string> v = tree_->Get(key);
      if (model.count(key)) {
        ASSERT_TRUE(v.ok());
        ASSERT_EQ(*v, model[key]);
      } else {
        ASSERT_EQ(v.status().code(), StatusCode::kNotFound);
      }
    }
    if (op % 500 == 0) {
      sys_.mgr->WaitIdle();
      ASSERT_TRUE(tree_->Validate().ok()) << "op " << op;
      ASSERT_EQ(tree_->CountSlow(), model.size());
    }
  }
  sys_.mgr->WaitIdle();
  ASSERT_TRUE(tree_->Validate().ok());
  ASSERT_EQ(tree_->CountSlow(), model.size());
}

TEST_P(BPlusTreeTest, DeleteEverythingCollapsesTree) {
  constexpr uint64_t kN = 1200;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree_->Insert(k, ValueFor(k)).ok());
  }
  // Delete in an interleaved order to exercise borrows and merges.
  for (uint64_t k = 0; k < kN; k += 2) {
    ASSERT_TRUE(tree_->Delete(k).ok()) << k;
  }
  for (uint64_t k = 1; k < kN; k += 2) {
    ASSERT_TRUE(tree_->Delete(k).ok()) << k;
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(tree_->CountSlow(), 0u);
  ASSERT_TRUE(tree_->Validate().ok());
  // The tree remains usable.
  ASSERT_TRUE(tree_->Insert(5, "after").ok());
  EXPECT_EQ(tree_->Get(5).value(), "after");
}

TEST_P(BPlusTreeTest, UpdateInPlace) {
  ASSERT_TRUE(tree_->Insert(7, "original").ok());
  ASSERT_TRUE(tree_->Update(7, "modified").ok());
  EXPECT_EQ(tree_->Get(7).value(), "modified");
  // Same-size update (the YCSB hot path).
  ASSERT_TRUE(tree_->Update(7, "MODIFIED").ok());
  EXPECT_EQ(tree_->Get(7).value(), "MODIFIED");
}

TEST_P(BPlusTreeTest, UpdateGrowsBlobViaReallocPath) {
  ASSERT_TRUE(tree_->Insert(7, "tiny").ok());
  const std::string big(5000, 'x');  // Larger than the original blob class.
  ASSERT_TRUE(tree_->Update(7, big).ok());
  EXPECT_EQ(tree_->Get(7).value(), big);
  sys_.mgr->WaitIdle();
  ASSERT_TRUE(tree_->Validate().ok());
}

TEST_P(BPlusTreeTest, ReadModifyWrite) {
  ASSERT_TRUE(tree_->Insert(1, "count=0").ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(tree_->ReadModifyWrite(1, [&](std::string& v) {
      v = "count=" + std::to_string(i);
    }).ok());
  }
  EXPECT_EQ(tree_->Get(1).value(), "count=5");
}

TEST_P(BPlusTreeTest, ReadModifyWriteGrowPath) {
  ASSERT_TRUE(tree_->Insert(1, "x").ok());
  ASSERT_TRUE(tree_->ReadModifyWrite(1, [](std::string& v) { v.append(4000, 'y'); }).ok());
  EXPECT_EQ(tree_->Get(1).value().size(), 4001u);
  sys_.mgr->WaitIdle();
  ASSERT_TRUE(tree_->Validate().ok());
}

TEST_P(BPlusTreeTest, ScanReturnsSortedRange) {
  for (uint64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(tree_->Insert(k * 10, ValueFor(k * 10)).ok());
  }
  auto rows = tree_->Scan(995, 20).value();
  ASSERT_EQ(rows.size(), 20u);
  EXPECT_EQ(rows[0].first, 1000u);
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    EXPECT_LT(rows[i].first, rows[i + 1].first);
  }
  EXPECT_EQ(rows[0].second, ValueFor(1000));
  // Scan past the end truncates.
  auto tail = tree_->Scan(2950, 100).value();
  EXPECT_EQ(tail.size(), 5u);
}

TEST_P(BPlusTreeTest, AbortedInsertLeavesNoTrace) {
  if (GetParam() == txn::EngineType::kNoLogging) {
    GTEST_SKIP() << "no-logging cannot roll back";
  }
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree_->Insert(k, ValueFor(k)).ok());
  }
  sys_.mgr->WaitIdle();
  // Run the insert transaction but force an abort after the tree work.
  {
    auto guard = tree_->LockExclusive();
    Status st = sys_.mgr->Run([&](txn::Tx& tx) -> Status {
      KAMINO_RETURN_IF_ERROR(tree_->InsertInTx(tx, 1000, "doomed"));
      return Status::Internal("force abort");
    });
    EXPECT_FALSE(st.ok());
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(tree_->Get(1000).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(tree_->Validate().ok());
  EXPECT_EQ(tree_->CountSlow(), 100u);
}

TEST_P(BPlusTreeTest, MultiOpTransactionIsAtomic) {
  if (GetParam() == txn::EngineType::kNoLogging) {
    GTEST_SKIP() << "no-logging cannot roll back";
  }
  ASSERT_TRUE(tree_->Insert(1, "one").ok());
  ASSERT_TRUE(tree_->Insert(2, "two").ok());
  sys_.mgr->WaitIdle();
  // Transfer-like transaction: delete 1, update 2, insert 3 — aborted.
  {
    auto guard = tree_->LockExclusive();
    Status st = sys_.mgr->Run([&](txn::Tx& tx) -> Status {
      KAMINO_RETURN_IF_ERROR(tree_->DeleteInTx(tx, 1));
      KAMINO_RETURN_IF_ERROR(tree_->UpsertInTx(tx, 2, "two!"));
      KAMINO_RETURN_IF_ERROR(tree_->InsertInTx(tx, 3, "three"));
      return Status::Internal("abort");
    });
    EXPECT_FALSE(st.ok());
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(tree_->Get(1).value(), "one");
  EXPECT_EQ(tree_->Get(2).value(), "two");
  EXPECT_EQ(tree_->Get(3).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(tree_->Validate().ok());

  // Same transaction committed applies all three.
  {
    auto guard = tree_->LockExclusive();
    ASSERT_TRUE(sys_.mgr
                    ->Run([&](txn::Tx& tx) -> Status {
                      KAMINO_RETURN_IF_ERROR(tree_->DeleteInTx(tx, 1));
                      KAMINO_RETURN_IF_ERROR(tree_->UpsertInTx(tx, 2, "two!"));
                      KAMINO_RETURN_IF_ERROR(tree_->InsertInTx(tx, 3, "three"));
                      return Status::Ok();
                    })
                    .ok());
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(tree_->Get(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(tree_->Get(2).value(), "two!");
  EXPECT_EQ(tree_->Get(3).value(), "three");
}

TEST_P(BPlusTreeTest, ConcurrentDisjointWriters) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 400;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * 1'000'000 + i;
        if (!tree_->Insert(key, ValueFor(key)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(tree_->CountSlow(), kThreads * kPerThread);
  ASSERT_TRUE(tree_->Validate().ok());
}

TEST_P(BPlusTreeTest, ConcurrentReadersAndUpdaters) {
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(tree_->Insert(k, "v-00000").ok());
  }
  sys_.mgr->WaitIdle();
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread updater([&] {
    Xoshiro256 rng(1);
    for (int i = 0; i < 1500; ++i) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "v-%05d", i);
      if (!tree_->Update(rng.NextBounded(500), buf).ok()) {
        ++failures;
      }
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<uint64_t>(t) + 100);
      while (!stop) {
        Result<std::string> v = tree_->Get(rng.NextBounded(500));
        if (!v.ok() || v->size() != 7 || (*v)[0] != 'v') {
          ++failures;
          return;
        }
      }
    });
  }
  updater.join();
  for (auto& th : readers) {
    th.join();
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(failures, 0);
  ASSERT_TRUE(tree_->Validate().ok());
}

TEST_P(BPlusTreeTest, AttachFindsExistingTree) {
  ASSERT_TRUE(tree_->Insert(11, "persist").ok());
  sys_.mgr->WaitIdle();
  auto again = BPlusTree::Attach(sys_.mgr.get(), tree_->anchor()).value();
  EXPECT_EQ(again->Get(11).value(), "persist");
}

INSTANTIATE_TEST_SUITE_P(Engines, BPlusTreeTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic,
                                           txn::EngineType::kUndoLog, txn::EngineType::kCow,
                                           txn::EngineType::kRedoLog,
                                           txn::EngineType::kNoLogging),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           switch (info.param) {
                             case txn::EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case txn::EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case txn::EngineType::kUndoLog:
                               return "UndoLog";
                             case txn::EngineType::kCow:
                               return "Cow";
                             case txn::EngineType::kRedoLog:
                               return "RedoLog";
                             case txn::EngineType::kNoLogging:
                               return "NoLogging";
                             default:
                               return "Unknown";
                           }
                         });

// Crash recovery through the full stack: KV-style tree over crash-sim pools.
class BPlusTreeCrashTest : public ::testing::TestWithParam<txn::EngineType> {};

TEST_P(BPlusTreeCrashTest, TreeSurvivesMidTransactionCrash) {
  CrashableSystem sys = CrashableSystem::Create(GetParam(), 128ull << 20);
  uint64_t anchor = 0;
  {
    auto tree = BPlusTree::Create(sys.mgr.get()).value();
    anchor = tree->anchor();
    for (uint64_t k = 0; k < 800; ++k) {
      ASSERT_TRUE(tree->Insert(k, "stable-" + std::to_string(k)).ok());
    }
    sys.mgr->WaitIdle();
    // Begin a structural insert and die before committing.
    Result<txn::Tx> tx = sys.mgr->Begin();
    ASSERT_TRUE(tx.ok());
    ASSERT_TRUE(tree->InsertInTx(*tx, 5000, "doomed").ok());
    tx->LeakForCrashTest();
  }
  sys.CrashAndRecover();
  auto tree = BPlusTree::Attach(sys.mgr.get(), anchor).value();
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->CountSlow(), 800u);
  EXPECT_EQ(tree->Get(5000).status().code(), StatusCode::kNotFound);
  for (uint64_t k = 0; k < 800; k += 97) {
    EXPECT_EQ(tree->Get(k).value(), "stable-" + std::to_string(k));
  }
  // Still writable.
  EXPECT_TRUE(tree->Insert(5000, "alive").ok());
  EXPECT_EQ(tree->Get(5000).value(), "alive");
}

TEST_P(BPlusTreeCrashTest, RandomCrashSweepKeepsInvariants) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    CrashableSystem sys = CrashableSystem::Create(GetParam(), 128ull << 20);
    uint64_t anchor = 0;
    {
      auto tree = BPlusTree::Create(sys.mgr.get()).value();
      anchor = tree->anchor();
      for (uint64_t k = 0; k < 300; ++k) {
        ASSERT_TRUE(tree->Insert(k * 3, std::to_string(k)).ok());
      }
      sys.mgr->WaitIdle();
      Result<txn::Tx> tx = sys.mgr->Begin();
      ASSERT_TRUE(tx.ok());
      // A delete (merge-heavy) left incomplete.
      ASSERT_TRUE(tree->DeleteInTx(*tx, 150).ok());
      ASSERT_TRUE(tree->DeleteInTx(*tx, 153).ok());
      tx->LeakForCrashTest();
    }
    sys.CrashAndRecover(nvm::CrashMode::kEvictRandomly, seed * 31);
    auto tree = BPlusTree::Attach(sys.mgr.get(), anchor).value();
    ASSERT_TRUE(tree->Validate().ok()) << "seed " << seed;
    EXPECT_EQ(tree->CountSlow(), 300u);
    EXPECT_TRUE(tree->Get(150).ok());
    EXPECT_TRUE(tree->Get(153).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, BPlusTreeCrashTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic,
                                           txn::EngineType::kUndoLog, txn::EngineType::kCow,
                                           txn::EngineType::kRedoLog),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           switch (info.param) {
                             case txn::EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case txn::EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case txn::EngineType::kUndoLog:
                               return "UndoLog";
                             case txn::EngineType::kCow:
                               return "Cow";
                             case txn::EngineType::kRedoLog:
                               return "RedoLog";
                             default:
                               return "Unknown";
                           }
                         });

}  // namespace
}  // namespace kamino::pds
