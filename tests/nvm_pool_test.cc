#include "src/nvm/pool.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>

namespace kamino::nvm {
namespace {

PoolOptions CrashSimOptions(uint64_t size = 1 << 20) {
  PoolOptions o;
  o.size = size;
  o.crash_sim = true;
  return o;
}

TEST(PoolTest, CreateZeroed) {
  auto pool = Pool::Create(CrashSimOptions()).value();
  const uint8_t* p = pool->base();
  for (uint64_t i = 0; i < pool->size(); i += 4096) {
    EXPECT_EQ(p[i], 0);
  }
}

TEST(PoolTest, RejectsZeroSize) {
  PoolOptions o;
  o.size = 0;
  EXPECT_FALSE(Pool::Create(o).ok());
}

TEST(PoolTest, OffsetPointerRoundTrip) {
  auto pool = Pool::Create(CrashSimOptions()).value();
  void* p = pool->At(12345);
  EXPECT_EQ(pool->OffsetOf(p), 12345u);
  EXPECT_TRUE(pool->Contains(p));
  int on_stack = 0;
  EXPECT_FALSE(pool->Contains(&on_stack));
}

TEST(PoolTest, UnflushedStoreIsNotPersisted) {
  auto pool = Pool::Create(CrashSimOptions()).value();
  auto* x = static_cast<uint64_t*>(pool->At(128));
  *x = 0xDEADBEEF;
  EXPECT_FALSE(pool->IsPersisted(128, 8));
  ASSERT_TRUE(pool->Crash().ok());
  EXPECT_EQ(*static_cast<uint64_t*>(pool->At(128)), 0u);
}

TEST(PoolTest, FlushWithoutDrainIsNotDurable) {
  auto pool = Pool::Create(CrashSimOptions()).value();
  auto* x = static_cast<uint64_t*>(pool->At(128));
  *x = 1;
  pool->Flush(x, 8);
  // No fence: a crash may lose the line (our model is adversarial).
  ASSERT_TRUE(pool->Crash().ok());
  EXPECT_EQ(*static_cast<uint64_t*>(pool->At(128)), 0u);
}

TEST(PoolTest, PersistSurvivesCrash) {
  auto pool = Pool::Create(CrashSimOptions()).value();
  auto* x = static_cast<uint64_t*>(pool->At(128));
  *x = 77;
  pool->Persist(x, 8);
  EXPECT_TRUE(pool->IsPersisted(128, 8));
  ASSERT_TRUE(pool->Crash().ok());
  EXPECT_EQ(*static_cast<uint64_t*>(pool->At(128)), 77u);
}

TEST(PoolTest, FlushSnapshotsAtFlushTime) {
  auto pool = Pool::Create(CrashSimOptions()).value();
  auto* x = static_cast<uint64_t*>(pool->At(256));
  *x = 1;
  pool->Flush(x, 8);
  *x = 2;  // Dirty again after the flush snapshot.
  pool->Drain();
  ASSERT_TRUE(pool->Crash().ok());
  // The drained value is the snapshot (1); the post-flush store was lost.
  EXPECT_EQ(*static_cast<uint64_t*>(pool->At(256)), 1u);
}

TEST(PoolTest, CrashPreservesOtherPersistedData) {
  auto pool = Pool::Create(CrashSimOptions()).value();
  for (uint64_t i = 0; i < 100; ++i) {
    auto* p = static_cast<uint64_t*>(pool->At(i * 64));
    *p = i + 1;
    pool->Persist(p, 8);
  }
  auto* dirty = static_cast<uint64_t*>(pool->At(100 * 64));
  *dirty = 999;
  ASSERT_TRUE(pool->Crash().ok());
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(*static_cast<uint64_t*>(pool->At(i * 64)), i + 1);
  }
  EXPECT_EQ(*static_cast<uint64_t*>(pool->At(100 * 64)), 0u);
}

TEST(PoolTest, EvictRandomlyEitherKeepsOrDrops) {
  // With survive_prob 1.0 every dirty line survives; with 0.0 none do.
  auto keep = Pool::Create(CrashSimOptions()).value();
  auto* k = static_cast<uint64_t*>(keep->At(0));
  *k = 5;
  ASSERT_TRUE(keep->Crash(CrashMode::kEvictRandomly, 1, 1.0).ok());
  EXPECT_EQ(*static_cast<uint64_t*>(keep->At(0)), 5u);

  auto drop = Pool::Create(CrashSimOptions()).value();
  auto* d = static_cast<uint64_t*>(drop->At(0));
  *d = 5;
  ASSERT_TRUE(drop->Crash(CrashMode::kEvictRandomly, 1, 0.0).ok());
  EXPECT_EQ(*static_cast<uint64_t*>(drop->At(0)), 0u);
}

TEST(PoolTest, EvictRandomlyIsPerLine) {
  auto pool = Pool::Create(CrashSimOptions()).value();
  const int kLines = 512;
  for (int i = 0; i < kLines; ++i) {
    *static_cast<uint64_t*>(pool->At(static_cast<uint64_t>(i) * 64)) = 1;
  }
  ASSERT_TRUE(pool->Crash(CrashMode::kEvictRandomly, 42, 0.5).ok());
  int survived = 0;
  for (int i = 0; i < kLines; ++i) {
    survived += *static_cast<uint64_t*>(pool->At(static_cast<uint64_t>(i) * 64)) == 1 ? 1 : 0;
  }
  EXPECT_GT(survived, kLines / 4);
  EXPECT_LT(survived, 3 * kLines / 4);
}

TEST(PoolTest, CrashRequiresCrashSim) {
  PoolOptions o;
  o.size = 1 << 20;
  auto pool = Pool::Create(o).value();
  EXPECT_EQ(pool->Crash().code(), StatusCode::kNotSupported);
  // IsPersisted degenerates to true without a shadow image.
  EXPECT_TRUE(pool->IsPersisted(0, 64));
}

TEST(PoolTest, StatsCountFlushesAndDrains) {
  auto pool = Pool::Create(CrashSimOptions()).value();
  pool->ResetStats();
  auto* p = static_cast<uint8_t*>(pool->At(0));
  std::memset(p, 1, 200);
  pool->Flush(p, 200);  // 200 bytes @ offset 0 -> 4 lines.
  pool->Drain();
  PoolStats s = pool->stats();
  EXPECT_EQ(s.flush_calls, 1u);
  EXPECT_EQ(s.lines_flushed, 4u);
  EXPECT_EQ(s.drain_calls, 1u);
  EXPECT_EQ(s.bytes_persisted, 4 * 64u);
}

TEST(PoolTest, FlushSpanningLineBoundary) {
  auto pool = Pool::Create(CrashSimOptions()).value();
  // Write 16 bytes straddling a line boundary; persist only via one call.
  auto* p = static_cast<uint8_t*>(pool->At(56));
  std::memset(p, 0xAB, 16);
  pool->Persist(p, 16);
  ASSERT_TRUE(pool->Crash().ok());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(static_cast<uint8_t*>(pool->At(56))[i], 0xAB);
  }
}

TEST(PoolTest, FileBackedPool) {
  PoolOptions o;
  o.size = 1 << 20;
  o.path = "/tmp/kamino_pool_test.pool";
  auto pool = Pool::Create(o).value();
  auto* x = static_cast<uint64_t*>(pool->At(0));
  *x = 42;
  pool->Persist(x, 8);
  EXPECT_EQ(*static_cast<uint64_t*>(pool->At(0)), 42u);
  ::unlink(o.path.c_str());
}

TEST(PoolTest, SizeRoundedToCacheLine) {
  PoolOptions o;
  o.size = 100;  // Not a multiple of 64.
  o.crash_sim = true;
  auto pool = Pool::Create(o).value();
  EXPECT_EQ(pool->size() % 64, 0u);
  EXPECT_GE(pool->size(), 100u);
}

TEST(PoolTest, TrackStatsOffSkipsAccounting) {
  PoolOptions o;
  o.size = 1 << 20;
  o.track_stats = false;
  auto pool = Pool::Create(o).value();
  auto* x = static_cast<uint64_t*>(pool->At(0));
  *x = 7;
  pool->Persist(x, 8);
  pool->Flush(x, 8);
  pool->Drain();
  const PoolStats s = pool->stats();
  EXPECT_EQ(s.flush_calls, 0u);
  EXPECT_EQ(s.lines_flushed, 0u);
  EXPECT_EQ(s.drain_calls, 0u);
}

}  // namespace
}  // namespace kamino::nvm
