// TxManager / Tx API surface tests: handle lifecycle, lazy slots, error
// paths, retries, footprint accounting, and the engine-shared log region.

#include "src/txn/tx_manager.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace kamino::txn {
namespace {

using test::CrashableSystem;

TEST(TxManagerTest, RejectsNullHeap) {
  TxManagerOptions opts;
  EXPECT_FALSE(TxManager::Create(nullptr, opts).ok());
  EXPECT_FALSE(TxManager::Open(nullptr, opts).ok());
}

TEST(TxManagerTest, OperationsOnInactiveTxFail) {
  auto sys = CrashableSystem::Create(EngineType::kUndoLog);
  Result<Tx> tx = sys.mgr->Begin();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_FALSE(tx->active());
  EXPECT_FALSE(tx->OpenWrite(64, 8).ok());
  EXPECT_FALSE(tx->Alloc(64).ok());
  EXPECT_FALSE(tx->Free(64).ok());
  EXPECT_FALSE(tx->ReadLock(64).ok());
  EXPECT_FALSE(tx->Commit().ok());
  EXPECT_FALSE(tx->Abort().ok());
  EXPECT_EQ(tx->OpenedPointer(64), nullptr);
}

TEST(TxManagerTest, ReadOnlyTransactionsSkipTheLog) {
  auto sys = CrashableSystem::Create(EngineType::kKaminoSimple);
  uint64_t off = 0;
  ASSERT_TRUE(sys.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(64).value();
                    return Status::Ok();
                  })
                  .ok());
  sys.mgr->WaitIdle();
  const uint64_t applied_before = sys.mgr->engine()->stats().applied;
  // A thousand read-only transactions: no slot, no applier involvement.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(sys.mgr->Run([&](Tx& tx) { return tx.ReadLock(off); }).ok());
  }
  sys.mgr->WaitIdle();
  EXPECT_EQ(sys.mgr->engine()->stats().applied, applied_before);
  EXPECT_EQ(sys.mgr->engine()->stats().committed, 1001u);
}

TEST(TxManagerTest, MoveTransfersOwnership) {
  auto sys = CrashableSystem::Create(EngineType::kUndoLog);
  Result<Tx> a = sys.mgr->Begin();
  ASSERT_TRUE(a.ok());
  const uint64_t txid = a->txid();
  Tx b = std::move(*a);
  EXPECT_TRUE(b.active());
  EXPECT_EQ(b.txid(), txid);
  ASSERT_TRUE(b.Commit().ok());
}

TEST(TxManagerTest, MoveAssignAbortsPreviousTransaction) {
  auto sys = CrashableSystem::Create(EngineType::kUndoLog);
  uint64_t off = 0;
  ASSERT_TRUE(sys.mgr
                  ->Run([&](Tx& tx) -> Status {
                    off = tx.Alloc(64).value();
                    std::memset(tx.OpenWrite(off, 64).value(), 1, 64);
                    return Status::Ok();
                  })
                  .ok());
  Tx first = std::move(sys.mgr->Begin().value());
  std::memset(first.OpenWrite(off, 64).value(), 9, 64);
  first = std::move(sys.mgr->Begin().value());  // Old tx auto-aborts.
  EXPECT_EQ(static_cast<uint8_t*>(sys.main_pool->At(off))[0], 1);
  ASSERT_TRUE(first.Abort().ok());
  EXPECT_EQ(sys.mgr->engine()->stats().aborted, 2u);
}

TEST(TxManagerTest, RunCommitsOnOkAbortsOnError) {
  auto sys = CrashableSystem::Create(EngineType::kUndoLog);
  EXPECT_TRUE(sys.mgr->Run([](Tx&) { return Status::Ok(); }).ok());
  EXPECT_EQ(sys.mgr->Run([](Tx&) { return Status::NotFound("x"); }).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(sys.mgr->engine()->stats().committed, 1u);
  EXPECT_EQ(sys.mgr->engine()->stats().aborted, 1u);
}

TEST(TxManagerTest, RunHonorsExplicitCommitInBody) {
  auto sys = CrashableSystem::Create(EngineType::kUndoLog);
  Status st = sys.mgr->Run([](Tx& tx) -> Status {
    KAMINO_RETURN_IF_ERROR(tx.Commit());
    return Status::Internal("already committed; Run must not abort");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);  // Body's status is returned...
  EXPECT_EQ(sys.mgr->engine()->stats().committed, 1u);  // ...but the commit stood.
  EXPECT_EQ(sys.mgr->engine()->stats().aborted, 0u);
}

TEST(TxManagerTest, RunWithRetriesRetriesOnlyConflicts) {
  auto sys = CrashableSystem::Create(EngineType::kUndoLog);
  int calls = 0;
  Status st = sys.mgr->RunWithRetries(
      [&](Tx&) {
        ++calls;
        return Status::TxConflict("always");
      },
      3);
  EXPECT_EQ(st.code(), StatusCode::kTxConflict);
  EXPECT_EQ(calls, 3);

  calls = 0;
  st = sys.mgr->RunWithRetries(
      [&](Tx&) {
        ++calls;
        return Status::NotFound("no retry");
      },
      3);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);
}

TEST(TxManagerTest, FootprintMatchesScheme) {
  auto simple = CrashableSystem::Create(EngineType::kKaminoSimple);
  auto fp = simple.mgr->footprint();
  EXPECT_EQ(fp.backup_bytes, fp.main_bytes);  // 2 x dataSize.

  auto undo = CrashableSystem::Create(EngineType::kUndoLog);
  EXPECT_EQ(undo.mgr->footprint().backup_bytes, 0u);

  auto dynamic = CrashableSystem::Create(EngineType::kKaminoDynamic, 64ull << 20, 0.25);
  const auto dfp = dynamic.mgr->footprint();
  EXPECT_GT(dfp.backup_bytes, 0u);
  EXPECT_LT(dfp.backup_bytes, dfp.main_bytes);  // (1 + alpha) x dataSize.
}

TEST(TxManagerTest, IntentLogCapacityAborted) {
  // More OpenWrites than the slot holds records: the op fails, the
  // transaction aborts cleanly, and prior objects are rolled back.
  auto sys = CrashableSystem::Create(EngineType::kUndoLog);
  std::vector<uint64_t> offs;
  for (int batch = 0; batch < 4; ++batch) {  // 4 x 50 allocs per transaction.
    ASSERT_TRUE(sys.mgr
                    ->Run([&](Tx& tx) -> Status {
                      for (int i = 0; i < 50; ++i) {
                        offs.push_back(tx.Alloc(64).value());
                      }
                      return Status::Ok();
                    })
                    .ok());
  }
  sys.mgr->WaitIdle();

  Status st = sys.mgr->Run([&](Tx& tx) -> Status {
    for (uint64_t off : offs) {  // 200 > default max_records of 128.
      Result<void*> p = tx.OpenWrite(off, 64);
      if (!p.ok()) {
        return p.status();
      }
      std::memset(*p, 0xAB, 64);
    }
    return Status::Ok();
  });
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
  sys.mgr->WaitIdle();
  for (uint64_t off : offs) {
    EXPECT_EQ(static_cast<uint8_t*>(sys.main_pool->At(off))[0], 0) << off;
  }
}

TEST(TxManagerTest, UndoPayloadCapacityAborted) {
  // Undo snapshots exceed the slot's payload area: clean abort, no torn data.
  auto sys = CrashableSystem::Create(EngineType::kUndoLog);
  std::vector<uint64_t> offs;
  ASSERT_TRUE(sys.mgr
                  ->Run([&](Tx& tx) -> Status {
                    for (int i = 0; i < 2; ++i) {
                      offs.push_back(tx.Alloc(48 * 1024, /*zero=*/false).value());
                    }
                    return Status::Ok();
                  })
                  .ok());
  Status st = sys.mgr->Run([&](Tx& tx) -> Status {
    for (uint64_t off : offs) {  // 2 x 48K snapshots > 56K payload area.
      Result<void*> p = tx.OpenWrite(off, 48 * 1024);
      if (!p.ok()) {
        return p.status();
      }
    }
    return Status::Ok();
  });
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
}

TEST(TxManagerTest, OpenWriteOfUnknownOffsetNeedsSize) {
  auto sys = CrashableSystem::Create(EngineType::kUndoLog);
  Status st = sys.mgr->Run([&](Tx& tx) -> Status {
    // Offset inside the log region is not an allocation: size 0 must fail.
    Result<void*> p = tx.OpenWrite(sys.heap->log_region_offset() + 999, 0);
    return p.status();
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kamino::txn
