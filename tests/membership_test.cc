#include "src/chain/membership.h"

#include <gtest/gtest.h>

namespace kamino::chain {
namespace {

TEST(MembershipTest, InitialView) {
  MembershipManager mm({1, 2, 3});
  View v = mm.current();
  EXPECT_EQ(v.view_id, 1u);
  EXPECT_EQ(v.head(), 1u);
  EXPECT_EQ(v.tail(), 3u);
  EXPECT_TRUE(v.Contains(2));
  EXPECT_FALSE(v.Contains(4));
}

TEST(MembershipTest, NeighbourLookup) {
  MembershipManager mm({1, 2, 3});
  View v = mm.current();
  EXPECT_EQ(v.PredecessorOf(1), 0u);
  EXPECT_EQ(v.PredecessorOf(2), 1u);
  EXPECT_EQ(v.SuccessorOf(2), 3u);
  EXPECT_EQ(v.SuccessorOf(3), 0u);
  EXPECT_EQ(v.PredecessorOf(99), 0u);
}

TEST(MembershipTest, FailureBumpsView) {
  MembershipManager mm({1, 2, 3});
  View v = mm.ReportFailure(2);
  EXPECT_EQ(v.view_id, 2u);
  EXPECT_EQ(v.nodes, (std::vector<uint64_t>{1, 3}));
  EXPECT_EQ(v.SuccessorOf(1), 3u);
  // Unknown node: view unchanged.
  View same = mm.ReportFailure(42);
  EXPECT_EQ(same.view_id, 2u);
}

TEST(MembershipTest, HeadFailurePromotesSecond) {
  MembershipManager mm({1, 2, 3});
  View v = mm.ReportFailure(1);
  EXPECT_EQ(v.head(), 2u);
}

TEST(MembershipTest, AddTail) {
  MembershipManager mm({1, 2});
  View v = mm.AddTail(9);
  EXPECT_EQ(v.view_id, 2u);
  EXPECT_EQ(v.tail(), 9u);
  // Idempotent.
  View same = mm.AddTail(9);
  EXPECT_EQ(same.view_id, 2u);
}

TEST(MembershipTest, RejoinOnlyForMembers) {
  MembershipManager mm({1, 2, 3});
  mm.ReportFailure(2);
  EXPECT_TRUE(mm.RequestRejoin(3, 1).ok());
  EXPECT_EQ(mm.RequestRejoin(2, 1).status().code(), StatusCode::kNotFound);
}

TEST(MembershipTest, SuspicionExcisesSuspectAndBumpsView) {
  MembershipManager mm({1, 2, 3});
  Result<View> v = mm.ReportSuspicion(/*reporter=*/1, /*suspect=*/2, /*view_id=*/1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->view_id, 2u);
  EXPECT_EQ(v->nodes, (std::vector<uint64_t>{1, 3}));
  EXPECT_EQ(mm.suspicion_view_changes(), 1u);
}

TEST(MembershipTest, StaleSuspicionIsRejected) {
  // Both neighbours of a dead node will suspect it; only the first report
  // (carrying the current view id) may change the view. The second carries a
  // stale view id and must be a no-op.
  MembershipManager mm({1, 2, 3});
  ASSERT_TRUE(mm.ReportSuspicion(1, 2, 1).ok());
  Result<View> again = mm.ReportSuspicion(3, 2, 1);
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mm.current().view_id, 2u);
  EXPECT_EQ(mm.suspicion_view_changes(), 1u);
}

TEST(MembershipTest, SuspicionFromOrAboutNonMemberIsRejected) {
  MembershipManager mm({1, 2, 3});
  mm.ReportFailure(2);  // view 2: {1, 3}
  // A fenced node (no longer a member) cannot excise the survivors.
  EXPECT_EQ(mm.ReportSuspicion(2, 1, 2).status().code(), StatusCode::kInvalidArgument);
  // Suspecting someone already removed is a no-op.
  EXPECT_EQ(mm.ReportSuspicion(1, 2, 2).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mm.current().view_id, 2u);
}

TEST(MembershipTest, ListenerFiresOncePerAcceptedSuspicion) {
  MembershipManager mm({1, 2, 3});
  int calls = 0;
  uint64_t failed = 0;
  uint64_t old_view_id = 0;
  mm.SetViewChangeListener([&](const View& nv, uint64_t f, const View& ov) {
    ++calls;
    failed = f;
    old_view_id = ov.view_id;
    EXPECT_EQ(nv.view_id, ov.view_id + 1);
  });
  ASSERT_TRUE(mm.ReportSuspicion(1, 2, 1).ok());
  (void)mm.ReportSuspicion(3, 2, 1);  // Stale: must not fire the listener.
  mm.ReportFailure(3);                // Orchestrator path: must not fire it either.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(failed, 2u);
  EXPECT_EQ(old_view_id, 1u);
}

}  // namespace
}  // namespace kamino::chain
