#include "src/chain/membership.h"

#include <gtest/gtest.h>

namespace kamino::chain {
namespace {

TEST(MembershipTest, InitialView) {
  MembershipManager mm({1, 2, 3});
  View v = mm.current();
  EXPECT_EQ(v.view_id, 1u);
  EXPECT_EQ(v.head(), 1u);
  EXPECT_EQ(v.tail(), 3u);
  EXPECT_TRUE(v.Contains(2));
  EXPECT_FALSE(v.Contains(4));
}

TEST(MembershipTest, NeighbourLookup) {
  MembershipManager mm({1, 2, 3});
  View v = mm.current();
  EXPECT_EQ(v.PredecessorOf(1), 0u);
  EXPECT_EQ(v.PredecessorOf(2), 1u);
  EXPECT_EQ(v.SuccessorOf(2), 3u);
  EXPECT_EQ(v.SuccessorOf(3), 0u);
  EXPECT_EQ(v.PredecessorOf(99), 0u);
}

TEST(MembershipTest, FailureBumpsView) {
  MembershipManager mm({1, 2, 3});
  View v = mm.ReportFailure(2);
  EXPECT_EQ(v.view_id, 2u);
  EXPECT_EQ(v.nodes, (std::vector<uint64_t>{1, 3}));
  EXPECT_EQ(v.SuccessorOf(1), 3u);
  // Unknown node: view unchanged.
  View same = mm.ReportFailure(42);
  EXPECT_EQ(same.view_id, 2u);
}

TEST(MembershipTest, HeadFailurePromotesSecond) {
  MembershipManager mm({1, 2, 3});
  View v = mm.ReportFailure(1);
  EXPECT_EQ(v.head(), 2u);
}

TEST(MembershipTest, AddTail) {
  MembershipManager mm({1, 2});
  View v = mm.AddTail(9);
  EXPECT_EQ(v.view_id, 2u);
  EXPECT_EQ(v.tail(), 9u);
  // Idempotent.
  View same = mm.AddTail(9);
  EXPECT_EQ(same.view_id, 2u);
}

TEST(MembershipTest, RejoinOnlyForMembers) {
  MembershipManager mm({1, 2, 3});
  mm.ReportFailure(2);
  EXPECT_TRUE(mm.RequestRejoin(3, 1).ok());
  EXPECT_EQ(mm.RequestRejoin(2, 1).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace kamino::chain
