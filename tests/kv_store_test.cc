#include "src/kv/kv_store.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/common/random.h"
#include "tests/test_util.h"

namespace kamino::kv {
namespace {

using test::CrashableSystem;

class KvStoreTest : public ::testing::TestWithParam<txn::EngineType> {
 protected:
  void SetUp() override {
    sys_ = CrashableSystem::Create(GetParam(), 256ull << 20);
    store_ = std::move(KvStore::Create(sys_.mgr.get()).value());
  }

  static std::string Value(uint64_t key, int version = 0) {
    std::string v = "record-" + std::to_string(key) + "-v" + std::to_string(version);
    v.resize(128, '.');
    return v;
  }

  CrashableSystem sys_;
  std::unique_ptr<KvStore> store_;
};

TEST_P(KvStoreTest, BasicCrud) {
  ASSERT_TRUE(store_->Insert(1, Value(1)).ok());
  EXPECT_EQ(store_->Read(1).value(), Value(1));
  ASSERT_TRUE(store_->Update(1, Value(1, 2)).ok());
  EXPECT_EQ(store_->Read(1).value(), Value(1, 2));
  ASSERT_TRUE(store_->Delete(1).ok());
  EXPECT_EQ(store_->Read(1).status().code(), StatusCode::kNotFound);
}

TEST_P(KvStoreTest, UpdateMissingKeyFails) {
  EXPECT_EQ(store_->Update(404, "x").code(), StatusCode::kNotFound);
}

TEST_P(KvStoreTest, ReadModifyWrite) {
  ASSERT_TRUE(store_->Insert(5, Value(5)).ok());
  ASSERT_TRUE(store_->ReadModifyWrite(5, [](std::string& v) { v[0] = 'R'; }).ok());
  EXPECT_EQ(store_->Read(5).value()[0], 'R');
}

TEST_P(KvStoreTest, ScanRange) {
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(store_->Insert(k, Value(k)).ok());
  }
  auto rows = store_->Scan(50, 10).value();
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows.front().first, 50u);
  EXPECT_EQ(rows.back().first, 59u);
}

TEST_P(KvStoreTest, BulkLoadAndVerify) {
  constexpr uint64_t kN = 3000;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(store_->Upsert(k, Value(k)).ok()) << k;
  }
  sys_.mgr->WaitIdle();
  ASSERT_TRUE(store_->tree()->Validate().ok());
  for (uint64_t k = 0; k < kN; k += 131) {
    EXPECT_EQ(store_->Read(k).value(), Value(k));
  }
}

TEST_P(KvStoreTest, MixedConcurrentWorkload) {
  constexpr uint64_t kKeys = 1000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(store_->Insert(k, Value(k)).ok());
  }
  sys_.mgr->WaitIdle();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      kamino::Xoshiro256 rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 500; ++i) {
        const uint64_t key = rng.NextBounded(kKeys);
        if (rng.NextDouble() < 0.5) {
          if (!store_->Read(key).ok()) {
            ++failures;
          }
        } else {
          if (!store_->Update(key, Value(key, i)).ok()) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(failures, 0);
  ASSERT_TRUE(store_->tree()->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Engines, KvStoreTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic,
                                           txn::EngineType::kUndoLog, txn::EngineType::kCow,
                                           txn::EngineType::kNoLogging),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           switch (info.param) {
                             case txn::EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case txn::EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case txn::EngineType::kUndoLog:
                               return "UndoLog";
                             case txn::EngineType::kCow:
                               return "Cow";
                             case txn::EngineType::kNoLogging:
                               return "NoLogging";
                             default:
                               return "Unknown";
                           }
                         });

// Full-stack crash: the store reopens from the heap root and recovers.
TEST(KvStoreCrashTest, StoreReopensAfterCrash) {
  for (txn::EngineType engine :
       {txn::EngineType::kKaminoSimple, txn::EngineType::kKaminoDynamic,
        txn::EngineType::kUndoLog, txn::EngineType::kCow}) {
    CrashableSystem sys = CrashableSystem::Create(engine, 128ull << 20);
    {
      auto store = KvStore::Create(sys.mgr.get()).value();
      for (uint64_t k = 0; k < 500; ++k) {
        ASSERT_TRUE(store->Insert(k, "value-" + std::to_string(k)).ok());
      }
      sys.mgr->WaitIdle();
    }
    sys.CrashAndRecover();
    auto store = KvStore::Open(sys.mgr.get()).value();
    ASSERT_TRUE(store->tree()->Validate().ok()) << txn::EngineTypeName(engine);
    EXPECT_EQ(store->tree()->CountSlow(), 500u);
    EXPECT_EQ(store->Read(123).value(), "value-123");
    // Usable post-recovery.
    ASSERT_TRUE(store->Insert(9999, "post-crash").ok());
    EXPECT_EQ(store->Read(9999).value(), "post-crash");
  }
}

}  // namespace
}  // namespace kamino::kv
