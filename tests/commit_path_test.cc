// Commit critical-path tests (DESIGN.md §8): slot backpressure under
// exhaustion, leader-based group-commit coalescing, and the headline safety
// property — a crash inside a coalesced drain window never loses a commit
// that was acknowledged to a client.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/nvm/persist_hook.h"
#include "src/txn/log_manager.h"
#include "tests/test_util.h"

namespace kamino::txn {
namespace {

// ---------------------------------------------------------------------------
// Raw LogManager: slot exhaustion.

std::unique_ptr<LogManager> MakeLog(nvm::Pool* pool, uint64_t num_slots,
                                    uint64_t group_commit_window_ns = 0) {
  LogOptions lopts;
  lopts.num_slots = num_slots;
  lopts.slot_size = 16 * 1024;
  lopts.max_records = 32;
  lopts.group_commit_window_ns = group_commit_window_ns;
  return std::move(LogManager::Create(pool, 0, pool->size(), lopts).value());
}

std::unique_ptr<nvm::Pool> MakePool() {
  nvm::PoolOptions popts;
  popts.size = 32ull << 20;
  return std::move(nvm::Pool::Create(popts).value());
}

// Far more concurrent transactions than slots: every thread must still make
// progress (acquirers block on the freelists and are woken by releases), and
// every transaction must complete.
TEST(CommitPathTest, SlotExhaustionForwardProgress) {
  auto pool = MakePool();
  auto log = MakeLog(pool.get(), /*num_slots=*/4);

  constexpr int kThreads = 16;
  constexpr int kTxnsPerThread = 50;
  std::atomic<uint64_t> next_txid{1};
  std::atomic<uint64_t> completed{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const uint64_t txid = next_txid.fetch_add(1, std::memory_order_relaxed);
        SlotHandle s = log->AcquireSlot(txid).value();
        ASSERT_TRUE(log->AppendRecord(s, IntentKind::kWrite, 64 * txid, 64).ok());
        log->SetState(s, TxState::kCommitted);
        log->ReleaseSlot(s);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(completed.load(), static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  // Every slot must have been returned: the next four acquisitions cannot block.
  std::vector<SlotHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(log->AcquireSlot(1'000'000 + i).value());
  }
  for (auto& h : handles) {
    log->ReleaseSlot(h);
  }
}

// Deterministic backpressure accounting: with every slot held, one more
// acquirer must take the blocked slow path and have its wait time recorded.
TEST(CommitPathTest, BlockedAcquireIsCounted) {
  auto pool = MakePool();
  auto log = MakeLog(pool.get(), /*num_slots=*/4);

  std::vector<SlotHandle> held;
  for (int i = 0; i < 4; ++i) {
    held.push_back(log->AcquireSlot(1 + i).value());
  }
  EXPECT_EQ(log->stats().blocked_acquires, 0u);

  std::thread blocked([&] {
    SlotHandle s = log->AcquireSlot(99).value();
    log->ReleaseSlot(s);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  log->ReleaseSlot(held[0]);
  blocked.join();

  const LogStats stats = log->stats();
  EXPECT_GE(stats.blocked_acquires, 1u);
  EXPECT_GT(stats.blocked_wait_ns, 0u);

  for (size_t i = 1; i < held.size(); ++i) {
    log->ReleaseSlot(held[i]);
  }
}

// ---------------------------------------------------------------------------
// Group commit: coalescing actually happens, and the log is clean afterwards.

TEST(CommitPathTest, GroupCommitCoalescesLeaderDrains) {
  auto pool = MakePool();
  // A generous window so concurrent committers reliably share a leader.
  auto log = MakeLog(pool.get(), /*num_slots=*/64, /*group_commit_window_ns=*/200'000);

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 50;
  std::atomic<uint64_t> next_txid{1};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const uint64_t txid = next_txid.fetch_add(1, std::memory_order_relaxed);
        SlotHandle s = log->AcquireSlot(txid).value();
        ASSERT_TRUE(log->AppendRecord(s, IntentKind::kWrite, 64 * txid, 64).ok());
        log->SetState(s, TxState::kCommitted);
        log->ReleaseSlot(s);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  const LogStats stats = log->stats();
  // Every commit goes through the group-drain protocol exactly once.
  EXPECT_EQ(stats.group_commit_commits,
            static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  // Coalescing: with 8 threads inside a 200us window, leaders must have
  // drained on behalf of more than one request at least once.
  EXPECT_LT(stats.group_commit_leader_drains, stats.group_commit_commits);
  // Releases were durable: a fresh scan sees no leftover transactions.
  EXPECT_TRUE(log->ScanForRecovery().empty());
}

// ---------------------------------------------------------------------------
// Crash inside the coalesced drain window.

// Freezes durability from persistence event `freeze_at` (1-based) onward —
// the machine "loses power" there while execution continues on cached data.
// At the moment of the first vetoed event it snapshots the acknowledged
// counter for every key, under the same mutex the ack recorder uses, so the
// snapshot is exactly "what clients had been told was durable at the freeze".
class FreezeObserver : public nvm::PersistenceObserver {
 public:
  FreezeObserver(uint64_t freeze_at, std::vector<uint64_t>* acked)
      : freeze_at_(freeze_at), acked_(acked) {}

  bool OnPersistEvent(const nvm::PersistEvent&) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (disarmed_) {
      return true;
    }
    if (++ordinal_ < freeze_at_) {
      return true;
    }
    if (snapshot_.empty()) {
      snapshot_ = *acked_;  // First vetoed event: freeze the acked view.
    }
    return false;
  }

  void RecordAck(uint64_t key, uint64_t n) {
    std::lock_guard<std::mutex> lk(mu_);
    (*acked_)[key] = n;
  }

  void Disarm() {
    std::lock_guard<std::mutex> lk(mu_);
    disarmed_ = true;
  }

  std::vector<uint64_t> snapshot() {
    std::lock_guard<std::mutex> lk(mu_);
    return snapshot_.empty() ? *acked_ : snapshot_;
  }

 private:
  std::mutex mu_;
  uint64_t ordinal_ = 0;
  const uint64_t freeze_at_;
  bool disarmed_ = false;
  std::vector<uint64_t>* acked_;
  std::vector<uint64_t> snapshot_;
};

std::string ValueFor(uint64_t key, uint64_t n) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "k%04llu-n%08llu",
                static_cast<unsigned long long>(key), static_cast<unsigned long long>(n));
  return std::string(buf);
}

uint64_t ParseN(const std::string& value) {
  unsigned long long key = 0;
  unsigned long long n = 0;
  if (std::sscanf(value.c_str(), "k%4llu-n%8llu", &key, &n) != 2) {
    return ~0ull;
  }
  return n;
}

// K threads commit concurrently through the coalesced drain path while the
// power fails at an arbitrary persistence event. No commit that was
// acknowledged before the failure may be missing after recovery — even though
// the drain that made it durable was issued by another thread (the group
// leader). Each thread owns its keys and bumps a per-key counter, so the
// recovered counter must be >= the acked one (durability) and at most one
// ahead of it (the single in-flight update whose drain beat the freeze but
// whose ack was not yet recorded).
TEST(CommitPathTest, GroupCommitCrashNeverLosesAckedCommit) {
  constexpr int kThreads = 4;
  constexpr uint64_t kKeysPerThread = 8;
  constexpr uint64_t kKeys = kThreads * kKeysPerThread;
  constexpr uint64_t kOpsPerThread = 24;

  for (uint64_t freeze_at : {30ull, 75ull, 150ull, 300ull}) {
    SCOPED_TRACE("freeze_at=" + std::to_string(freeze_at));
    auto sys = test::CrashableSystem::Create(EngineType::kKaminoSimple, 64ull << 20,
                                             /*alpha=*/0.25, /*applier_threads=*/2);
    auto store = std::move(kv::KvStore::Create(sys.mgr.get()).value());
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(store->Insert(k, ValueFor(k, 0)).ok());
    }
    sys.mgr->WaitIdle();

    std::vector<uint64_t> acked(kKeys, 0);
    FreezeObserver observer(freeze_at, &acked);
    sys.main_pool->SetPersistenceObserver(&observer);
    if (sys.backup_pool) {
      sys.backup_pool->SetPersistenceObserver(&observer);
    }

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (uint64_t i = 0; i < kOpsPerThread; ++i) {
          const uint64_t key = t * kKeysPerThread + (i % kKeysPerThread);
          const uint64_t n = i / kKeysPerThread + 1;
          ASSERT_TRUE(store->Update(key, ValueFor(key, n)).ok());
          // Update returned: the commit record was durably drained (possibly
          // by a group leader) — this is the client-visible acknowledgement.
          observer.RecordAck(key, n);
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }

    const std::vector<uint64_t> must_survive = observer.snapshot();
    store.reset();
    sys.mgr->WaitIdle();
    observer.Disarm();
    sys.main_pool->SetPersistenceObserver(nullptr);
    if (sys.backup_pool) {
      sys.backup_pool->SetPersistenceObserver(nullptr);
    }
    sys.CrashAndRecover(nvm::CrashMode::kDropUnflushed);

    auto recovered_store = std::move(kv::KvStore::Open(sys.mgr.get()).value());
    for (uint64_t k = 0; k < kKeys; ++k) {
      const std::string value = recovered_store->Read(k).value();
      const uint64_t n = ParseN(value);
      ASSERT_NE(n, ~0ull) << "key " << k << " recovered garbage: " << value;
      // Durability: nothing acknowledged before the freeze may be lost.
      EXPECT_GE(n, must_survive[k]) << "key " << k << " lost an acked commit";
      // Sanity: at most the one in-flight update past the acked counter can
      // have become durable.
      EXPECT_LE(n, must_survive[k] + 1) << "key " << k << " impossible value";
    }
  }
}

// ---------------------------------------------------------------------------
// Epoch/persist-behind commit (LogOptions::epoch_commit): the ack-vs-persist
// window. The acknowledgement point moves from Update's return to
// WaitCommitDurable's return, and the safety contract splits in two: an
// acknowledged commit survives any power failure, and an unacknowledged
// DRAM-committed transaction may roll back wholesale but never half-applies.

LogOptions EpochLog() {
  LogOptions lopts;
  lopts.epoch_commit = true;
  return lopts;
}

// The epoch analogue of GroupCommitCrashNeverLosesAckedCommit, with the
// client running persist-behind: each thread keeps a small window of
// outstanding CommitAcks and only records an ack after WaitCommitDurable —
// the epoch-mode client-visible acknowledgement. Threads cycle through more
// keys than the window holds, so each key has at most one unacked update in
// flight: the recovered counter must be >= the acked one (an acked commit
// survived) and at most one ahead (the unacked in-flight update either
// became durable whole or rolled back whole).
TEST(CommitPathTest, EpochCrashNeverLosesAckedCommit) {
  constexpr int kThreads = 4;
  constexpr uint64_t kKeysPerThread = 8;
  constexpr uint64_t kKeys = kThreads * kKeysPerThread;
  constexpr uint64_t kOpsPerThread = 24;
  constexpr size_t kAckWindow = 4;  // < kKeysPerThread: one unacked op per key.

  for (uint64_t freeze_at : {30ull, 75ull, 150ull, 300ull}) {
    SCOPED_TRACE("freeze_at=" + std::to_string(freeze_at));
    auto sys = test::CrashableSystem::Create(EngineType::kKaminoSimple, 64ull << 20,
                                             /*alpha=*/0.25, /*applier_threads=*/2,
                                             EpochLog());
    auto store = std::move(kv::KvStore::Create(sys.mgr.get()).value());
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(store->Insert(k, ValueFor(k, 0)).ok());
    }
    sys.mgr->WaitIdle();

    std::vector<uint64_t> acked(kKeys, 0);
    FreezeObserver observer(freeze_at, &acked);
    sys.main_pool->SetPersistenceObserver(&observer);
    if (sys.backup_pool) {
      sys.backup_pool->SetPersistenceObserver(&observer);
    }

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        struct Pending {
          CommitAck ack;
          uint64_t key;
          uint64_t n;
        };
        std::deque<Pending> pending;
        auto settle_oldest = [&] {
          Pending p = pending.front();
          pending.pop_front();
          sys.mgr->WaitCommitDurable(p.ack);
          // Durability fence passed: only now may the client be told.
          observer.RecordAck(p.key, p.n);
        };
        for (uint64_t i = 0; i < kOpsPerThread; ++i) {
          const uint64_t key = t * kKeysPerThread + (i % kKeysPerThread);
          const uint64_t n = i / kKeysPerThread + 1;
          CommitAck ack;
          ASSERT_TRUE(store->UpdateAsync(key, ValueFor(key, n), &ack).ok());
          pending.push_back({ack, key, n});
          while (pending.size() > kAckWindow) {
            settle_oldest();
          }
        }
        while (!pending.empty()) {
          settle_oldest();
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }

    const std::vector<uint64_t> must_survive = observer.snapshot();
    store.reset();
    sys.mgr->WaitIdle();
    observer.Disarm();
    sys.main_pool->SetPersistenceObserver(nullptr);
    if (sys.backup_pool) {
      sys.backup_pool->SetPersistenceObserver(nullptr);
    }
    sys.CrashAndRecover(nvm::CrashMode::kDropUnflushed);

    auto recovered_store = std::move(kv::KvStore::Open(sys.mgr.get()).value());
    for (uint64_t k = 0; k < kKeys; ++k) {
      const std::string value = recovered_store->Read(k).value();
      const uint64_t n = ParseN(value);
      ASSERT_NE(n, ~0ull) << "key " << k << " recovered garbage: " << value;
      EXPECT_GE(n, must_survive[k]) << "key " << k << " lost an acked commit";
      EXPECT_LE(n, must_survive[k] + 1) << "key " << k << " impossible value";
    }
  }
}

// The other half of the contract: a DRAM-committed but unacknowledged
// transaction may vanish in a crash — but only wholesale. Power fails while
// the update's epoch is still open, with random cache-line eviction, so the
// main heap can hold any torn mix of old and new lines next to a possibly-
// evicted commit record. Recovery's CRC recomputation must resolve every such
// transaction to exactly the old or exactly the new value; a hybrid is the
// half-apply the checked commit record exists to prevent.
TEST(CommitPathTest, EpochUnackedCommitNeverHalfApplies) {
  constexpr uint64_t kKey = 7;
  const std::string v0 = ValueFor(kKey, 1);

  for (uint64_t freeze_at = 1; freeze_at <= 12; ++freeze_at) {
    SCOPED_TRACE("freeze_at=" + std::to_string(freeze_at));
    auto sys = test::CrashableSystem::Create(EngineType::kKaminoSimple, 64ull << 20,
                                             /*alpha=*/0.25, /*applier_threads=*/1,
                                             EpochLog());
    auto store = std::move(kv::KvStore::Create(sys.mgr.get()).value());
    ASSERT_TRUE(store->Insert(kKey, v0).ok());
    sys.mgr->WaitIdle();

    std::vector<uint64_t> acked(1, 0);
    FreezeObserver observer(freeze_at, &acked);
    sys.main_pool->SetPersistenceObserver(&observer);
    if (sys.backup_pool) {
      sys.backup_pool->SetPersistenceObserver(&observer);
    }

    // DRAM-commit only: the ack (WaitCommitDurable) is deliberately never
    // issued, so this update is allowed to roll back after the crash.
    const std::string v1 = ValueFor(kKey, 2);
    CommitAck ack;
    ASSERT_TRUE(store->UpdateAsync(kKey, v1, &ack).ok());

    store.reset();
    sys.mgr->WaitIdle();
    observer.Disarm();
    sys.main_pool->SetPersistenceObserver(nullptr);
    if (sys.backup_pool) {
      sys.backup_pool->SetPersistenceObserver(nullptr);
    }
    sys.CrashAndRecover(nvm::CrashMode::kEvictRandomly);

    auto recovered_store = std::move(kv::KvStore::Open(sys.mgr.get()).value());
    const std::string value = recovered_store->Read(kKey).value();
    EXPECT_TRUE(value == v0 || value == v1)
        << "half-applied value after crash: " << value;
  }
}

// Dependent transactions gate on the epoch ticket: in epoch mode the write
// lock is held past UpdateAsync's return, until the commit's epoch is durable
// and the applier has synced the backup. A dependent reader must therefore
// (a) observe the fully committed value, never the pre-image, and (b) get
// unblocked by driving the epoch drain itself via the lock-contention hook —
// long before the lock timeout — even though this thread never waited on the
// ticket.
TEST(CommitPathTest, DependentReadBlocksOnEpochTicketThenSeesCommit) {
  constexpr uint64_t kKey = 3;
  auto sys = test::CrashableSystem::Create(EngineType::kKaminoSimple, 64ull << 20,
                                           /*alpha=*/0.25, /*applier_threads=*/1,
                                           EpochLog());
  auto store = std::move(kv::KvStore::Create(sys.mgr.get()).value());
  ASSERT_TRUE(store->Insert(kKey, ValueFor(kKey, 1)).ok());
  sys.mgr->WaitIdle();

  const std::string v1 = ValueFor(kKey, 2);
  CommitAck ack;
  ASSERT_TRUE(store->UpdateAsync(kKey, v1, &ack).ok());
  EXPECT_NE(ack.ticket, 0u) << "epoch mode must hand back a durability ticket";

  // The dependent read: blocked on the held write lock while the commit sits
  // in the open epoch. The reader's contention hook pays the drain, the
  // durability callback hands the commit to the applier, the applier releases
  // the lock — all well under the 2s lock timeout.
  const auto start = std::chrono::steady_clock::now();
  const std::string value = store->Read(kKey).value();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(value, v1) << "dependent read saw the pre-image";
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1500)
      << "dependent read only unblocked by the lock timeout";

  // The ticket was drained on the reader's behalf: the ack fence is free now.
  sys.mgr->WaitCommitDurable(ack);
}

}  // namespace
}  // namespace kamino::txn
