// Commit critical-path tests (DESIGN.md §8): slot backpressure under
// exhaustion, leader-based group-commit coalescing, and the headline safety
// property — a crash inside a coalesced drain window never loses a commit
// that was acknowledged to a client.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/nvm/persist_hook.h"
#include "src/txn/log_manager.h"
#include "tests/test_util.h"

namespace kamino::txn {
namespace {

// ---------------------------------------------------------------------------
// Raw LogManager: slot exhaustion.

std::unique_ptr<LogManager> MakeLog(nvm::Pool* pool, uint64_t num_slots,
                                    uint64_t group_commit_window_ns = 0) {
  LogOptions lopts;
  lopts.num_slots = num_slots;
  lopts.slot_size = 16 * 1024;
  lopts.max_records = 32;
  lopts.group_commit_window_ns = group_commit_window_ns;
  return std::move(LogManager::Create(pool, 0, pool->size(), lopts).value());
}

std::unique_ptr<nvm::Pool> MakePool() {
  nvm::PoolOptions popts;
  popts.size = 32ull << 20;
  return std::move(nvm::Pool::Create(popts).value());
}

// Far more concurrent transactions than slots: every thread must still make
// progress (acquirers block on the freelists and are woken by releases), and
// every transaction must complete.
TEST(CommitPathTest, SlotExhaustionForwardProgress) {
  auto pool = MakePool();
  auto log = MakeLog(pool.get(), /*num_slots=*/4);

  constexpr int kThreads = 16;
  constexpr int kTxnsPerThread = 50;
  std::atomic<uint64_t> next_txid{1};
  std::atomic<uint64_t> completed{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const uint64_t txid = next_txid.fetch_add(1, std::memory_order_relaxed);
        SlotHandle s = log->AcquireSlot(txid).value();
        ASSERT_TRUE(log->AppendRecord(s, IntentKind::kWrite, 64 * txid, 64).ok());
        log->SetState(s, TxState::kCommitted);
        log->ReleaseSlot(s);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(completed.load(), static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  // Every slot must have been returned: the next four acquisitions cannot block.
  std::vector<SlotHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(log->AcquireSlot(1'000'000 + i).value());
  }
  for (auto& h : handles) {
    log->ReleaseSlot(h);
  }
}

// Deterministic backpressure accounting: with every slot held, one more
// acquirer must take the blocked slow path and have its wait time recorded.
TEST(CommitPathTest, BlockedAcquireIsCounted) {
  auto pool = MakePool();
  auto log = MakeLog(pool.get(), /*num_slots=*/4);

  std::vector<SlotHandle> held;
  for (int i = 0; i < 4; ++i) {
    held.push_back(log->AcquireSlot(1 + i).value());
  }
  EXPECT_EQ(log->stats().blocked_acquires, 0u);

  std::thread blocked([&] {
    SlotHandle s = log->AcquireSlot(99).value();
    log->ReleaseSlot(s);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  log->ReleaseSlot(held[0]);
  blocked.join();

  const LogStats stats = log->stats();
  EXPECT_GE(stats.blocked_acquires, 1u);
  EXPECT_GT(stats.blocked_wait_ns, 0u);

  for (size_t i = 1; i < held.size(); ++i) {
    log->ReleaseSlot(held[i]);
  }
}

// ---------------------------------------------------------------------------
// Group commit: coalescing actually happens, and the log is clean afterwards.

TEST(CommitPathTest, GroupCommitCoalescesLeaderDrains) {
  auto pool = MakePool();
  // A generous window so concurrent committers reliably share a leader.
  auto log = MakeLog(pool.get(), /*num_slots=*/64, /*group_commit_window_ns=*/200'000);

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 50;
  std::atomic<uint64_t> next_txid{1};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const uint64_t txid = next_txid.fetch_add(1, std::memory_order_relaxed);
        SlotHandle s = log->AcquireSlot(txid).value();
        ASSERT_TRUE(log->AppendRecord(s, IntentKind::kWrite, 64 * txid, 64).ok());
        log->SetState(s, TxState::kCommitted);
        log->ReleaseSlot(s);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  const LogStats stats = log->stats();
  // Every commit goes through the group-drain protocol exactly once.
  EXPECT_EQ(stats.group_commit_commits,
            static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  // Coalescing: with 8 threads inside a 200us window, leaders must have
  // drained on behalf of more than one request at least once.
  EXPECT_LT(stats.group_commit_leader_drains, stats.group_commit_commits);
  // Releases were durable: a fresh scan sees no leftover transactions.
  EXPECT_TRUE(log->ScanForRecovery().empty());
}

// ---------------------------------------------------------------------------
// Crash inside the coalesced drain window.

// Freezes durability from persistence event `freeze_at` (1-based) onward —
// the machine "loses power" there while execution continues on cached data.
// At the moment of the first vetoed event it snapshots the acknowledged
// counter for every key, under the same mutex the ack recorder uses, so the
// snapshot is exactly "what clients had been told was durable at the freeze".
class FreezeObserver : public nvm::PersistenceObserver {
 public:
  FreezeObserver(uint64_t freeze_at, std::vector<uint64_t>* acked)
      : freeze_at_(freeze_at), acked_(acked) {}

  bool OnPersistEvent(const nvm::PersistEvent&) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (disarmed_) {
      return true;
    }
    if (++ordinal_ < freeze_at_) {
      return true;
    }
    if (snapshot_.empty()) {
      snapshot_ = *acked_;  // First vetoed event: freeze the acked view.
    }
    return false;
  }

  void RecordAck(uint64_t key, uint64_t n) {
    std::lock_guard<std::mutex> lk(mu_);
    (*acked_)[key] = n;
  }

  void Disarm() {
    std::lock_guard<std::mutex> lk(mu_);
    disarmed_ = true;
  }

  std::vector<uint64_t> snapshot() {
    std::lock_guard<std::mutex> lk(mu_);
    return snapshot_.empty() ? *acked_ : snapshot_;
  }

 private:
  std::mutex mu_;
  uint64_t ordinal_ = 0;
  const uint64_t freeze_at_;
  bool disarmed_ = false;
  std::vector<uint64_t>* acked_;
  std::vector<uint64_t> snapshot_;
};

std::string ValueFor(uint64_t key, uint64_t n) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "k%04llu-n%08llu",
                static_cast<unsigned long long>(key), static_cast<unsigned long long>(n));
  return std::string(buf);
}

uint64_t ParseN(const std::string& value) {
  unsigned long long key = 0;
  unsigned long long n = 0;
  if (std::sscanf(value.c_str(), "k%4llu-n%8llu", &key, &n) != 2) {
    return ~0ull;
  }
  return n;
}

// K threads commit concurrently through the coalesced drain path while the
// power fails at an arbitrary persistence event. No commit that was
// acknowledged before the failure may be missing after recovery — even though
// the drain that made it durable was issued by another thread (the group
// leader). Each thread owns its keys and bumps a per-key counter, so the
// recovered counter must be >= the acked one (durability) and at most one
// ahead of it (the single in-flight update whose drain beat the freeze but
// whose ack was not yet recorded).
TEST(CommitPathTest, GroupCommitCrashNeverLosesAckedCommit) {
  constexpr int kThreads = 4;
  constexpr uint64_t kKeysPerThread = 8;
  constexpr uint64_t kKeys = kThreads * kKeysPerThread;
  constexpr uint64_t kOpsPerThread = 24;

  for (uint64_t freeze_at : {30ull, 75ull, 150ull, 300ull}) {
    SCOPED_TRACE("freeze_at=" + std::to_string(freeze_at));
    auto sys = test::CrashableSystem::Create(EngineType::kKaminoSimple, 64ull << 20,
                                             /*alpha=*/0.25, /*applier_threads=*/2);
    auto store = std::move(kv::KvStore::Create(sys.mgr.get()).value());
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(store->Insert(k, ValueFor(k, 0)).ok());
    }
    sys.mgr->WaitIdle();

    std::vector<uint64_t> acked(kKeys, 0);
    FreezeObserver observer(freeze_at, &acked);
    sys.main_pool->SetPersistenceObserver(&observer);
    if (sys.backup_pool) {
      sys.backup_pool->SetPersistenceObserver(&observer);
    }

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (uint64_t i = 0; i < kOpsPerThread; ++i) {
          const uint64_t key = t * kKeysPerThread + (i % kKeysPerThread);
          const uint64_t n = i / kKeysPerThread + 1;
          ASSERT_TRUE(store->Update(key, ValueFor(key, n)).ok());
          // Update returned: the commit record was durably drained (possibly
          // by a group leader) — this is the client-visible acknowledgement.
          observer.RecordAck(key, n);
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }

    const std::vector<uint64_t> must_survive = observer.snapshot();
    store.reset();
    sys.mgr->WaitIdle();
    observer.Disarm();
    sys.main_pool->SetPersistenceObserver(nullptr);
    if (sys.backup_pool) {
      sys.backup_pool->SetPersistenceObserver(nullptr);
    }
    sys.CrashAndRecover(nvm::CrashMode::kDropUnflushed);

    auto recovered_store = std::move(kv::KvStore::Open(sys.mgr.get()).value());
    for (uint64_t k = 0; k < kKeys; ++k) {
      const std::string value = recovered_store->Read(k).value();
      const uint64_t n = ParseN(value);
      ASSERT_NE(n, ~0ull) << "key " << k << " recovered garbage: " << value;
      // Durability: nothing acknowledged before the freeze may be lost.
      EXPECT_GE(n, must_survive[k]) << "key " << k << " lost an acked commit";
      // Sanity: at most the one in-flight update past the acked counter can
      // have become durable.
      EXPECT_LE(n, must_survive[k] + 1) << "key " << k << " impossible value";
    }
  }
}

}  // namespace
}  // namespace kamino::txn
