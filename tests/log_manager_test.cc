#include "src/txn/log_manager.h"

#include <gtest/gtest.h>

#include <thread>

namespace kamino::txn {
namespace {

class LogManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::PoolOptions popts;
    popts.size = 32ull << 20;
    popts.crash_sim = true;
    pool_ = std::move(nvm::Pool::Create(popts).value());
    LogOptions lopts;
    lopts.num_slots = 8;
    lopts.slot_size = 16 * 1024;
    lopts.max_records = 32;
    log_ = std::move(LogManager::Create(pool_.get(), 0, pool_->size(), lopts).value());
  }

  std::unique_ptr<nvm::Pool> pool_;
  std::unique_ptr<LogManager> log_;
};

TEST_F(LogManagerTest, AcquireAppendRelease) {
  SlotHandle s = log_->AcquireSlot(1).value();
  ASSERT_TRUE(log_->AppendRecord(s, IntentKind::kWrite, 1000, 64).ok());
  ASSERT_TRUE(log_->AppendRecord(s, IntentKind::kAlloc, 2000, 128).ok());
  EXPECT_EQ(s.num_records, 2u);
  log_->SetState(s, TxState::kCommitted);
  log_->ReleaseSlot(s);
  EXPECT_FALSE(s.valid());
}

TEST_F(LogManagerTest, RecordCapacityEnforced) {
  SlotHandle s = log_->AcquireSlot(1).value();
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(log_->AppendRecord(s, IntentKind::kWrite, 64u * i, 64).ok());
  }
  EXPECT_EQ(log_->AppendRecord(s, IntentKind::kWrite, 9999, 64).code(),
            StatusCode::kOutOfMemory);
  log_->ReleaseSlot(s);
}

TEST_F(LogManagerTest, PayloadReservation) {
  SlotHandle s = log_->AcquireSlot(1).value();
  uint64_t p1 = log_->ReservePayload(s, 100).value();
  uint64_t p2 = log_->ReservePayload(s, 100).value();
  EXPECT_GE(p2, p1 + 100);
  EXPECT_EQ(p1 % 64, 0u);  // Cache-line aligned.
  // Exhaust the payload area.
  Result<uint64_t> big = log_->ReservePayload(s, 1 << 20);
  EXPECT_EQ(big.status().code(), StatusCode::kOutOfMemory);
  log_->ReleaseSlot(s);
}

TEST_F(LogManagerTest, ScanRecoversCommittedAndRunning) {
  SlotHandle a = log_->AcquireSlot(10).value();
  ASSERT_TRUE(log_->AppendRecord(a, IntentKind::kWrite, 111, 64).ok());
  log_->SetState(a, TxState::kCommitted);

  SlotHandle b = log_->AcquireSlot(11).value();
  ASSERT_TRUE(log_->AppendRecord(b, IntentKind::kWrite, 222, 64, 777).ok());
  ASSERT_TRUE(log_->AppendRecord(b, IntentKind::kFree, 333, 128).ok());

  auto txs = log_->ScanForRecovery();
  ASSERT_EQ(txs.size(), 2u);
  EXPECT_EQ(txs[0].txid, 10u);
  EXPECT_EQ(txs[0].state, TxState::kCommitted);
  ASSERT_EQ(txs[0].intents.size(), 1u);
  EXPECT_EQ(txs[0].intents[0].offset, 111u);

  EXPECT_EQ(txs[1].txid, 11u);
  EXPECT_EQ(txs[1].state, TxState::kRunning);
  ASSERT_EQ(txs[1].intents.size(), 2u);
  EXPECT_EQ(txs[1].intents[0].aux, 777u);
  EXPECT_EQ(txs[1].intents[1].kind, IntentKind::kFree);
  log_->ReleaseSlot(a);
  log_->ReleaseSlot(b);
}

TEST_F(LogManagerTest, StaleRecordsFromPreviousOccupantIgnored) {
  SlotHandle a = log_->AcquireSlot(1).value();
  const uint64_t slot_index = a.slot_index;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log_->AppendRecord(a, IntentKind::kWrite, 64u * i, 64).ok());
  }
  log_->ReleaseSlot(a);

  // Free list is LIFO: the next acquire reuses the same slot.
  SlotHandle b = log_->AcquireSlot(2).value();
  ASSERT_EQ(b.slot_index, slot_index);
  ASSERT_TRUE(log_->AppendRecord(b, IntentKind::kWrite, 5000, 64).ok());

  auto txs = log_->ScanForRecovery();
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_EQ(txs[0].intents.size(), 1u) << "old records must not be visible";
  EXPECT_EQ(txs[0].intents[0].offset, 5000u);
  log_->ReleaseSlot(b);
}

TEST_F(LogManagerTest, SurvivesCrashAndReopen) {
  SlotHandle a = log_->AcquireSlot(42).value();
  ASSERT_TRUE(log_->AppendRecord(a, IntentKind::kWrite, 4096, 256).ok());
  log_->SetState(a, TxState::kCommitted);

  ASSERT_TRUE(pool_->Crash().ok());
  log_ = std::move(LogManager::Open(pool_.get(), 0).value());
  EXPECT_EQ(log_->max_recovered_txid(), 42u);

  auto txs = log_->ScanForRecovery();
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_EQ(txs[0].txid, 42u);
  EXPECT_EQ(txs[0].state, TxState::kCommitted);
  ASSERT_EQ(txs[0].intents.size(), 1u);
  EXPECT_EQ(txs[0].intents[0].offset, 4096u);
  EXPECT_EQ(txs[0].intents[0].size, 256u);
}

TEST_F(LogManagerTest, UnpersistedRecordDroppedByCrash) {
  SlotHandle a = log_->AcquireSlot(7).value();
  ASSERT_TRUE(log_->AppendRecord(a, IntentKind::kWrite, 100, 64).ok());
  // Append a record but crash before its drain: use drain=false.
  ASSERT_TRUE(log_->AppendRecord(a, IntentKind::kWrite, 200, 64, 0, /*drain=*/false).ok());

  ASSERT_TRUE(pool_->Crash().ok());
  log_ = std::move(LogManager::Open(pool_.get(), 0).value());
  auto txs = log_->ScanForRecovery();
  ASSERT_EQ(txs.size(), 1u);
  ASSERT_EQ(txs[0].intents.size(), 1u);
  EXPECT_EQ(txs[0].intents[0].offset, 100u);
}

TEST_F(LogManagerTest, SlotsBlockWhenExhaustedAndWake) {
  std::vector<SlotHandle> held;
  for (int i = 0; i < 8; ++i) {
    held.push_back(log_->AcquireSlot(100 + static_cast<uint64_t>(i)).value());
  }
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    SlotHandle s = log_->AcquireSlot(999).value();
    acquired = true;
    log_->ReleaseSlot(s);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired);
  log_->ReleaseSlot(held[0]);
  waiter.join();
  EXPECT_TRUE(acquired);
  for (size_t i = 1; i < held.size(); ++i) {
    log_->ReleaseSlot(held[i]);
  }
}

TEST_F(LogManagerTest, OpenRejectsGarbage) {
  nvm::PoolOptions popts;
  popts.size = 1 << 20;
  auto pool = std::move(nvm::Pool::Create(popts).value());
  EXPECT_EQ(LogManager::Open(pool.get(), 0).status().code(), StatusCode::kCorruption);
}

TEST_F(LogManagerTest, RejectsBadGeometry) {
  nvm::PoolOptions popts;
  popts.size = 1 << 20;
  auto pool = std::move(nvm::Pool::Create(popts).value());
  LogOptions lopts;
  lopts.num_slots = 1000;
  lopts.slot_size = 64 * 1024;  // 64 MB needed, 1 MB available.
  EXPECT_FALSE(LogManager::Create(pool.get(), 0, pool->size(), lopts).ok());

  lopts.num_slots = 1;
  lopts.slot_size = 128;  // Too small for 32 records.
  lopts.max_records = 32;
  EXPECT_FALSE(LogManager::Create(pool.get(), 0, pool->size(), lopts).ok());
}

}  // namespace
}  // namespace kamino::txn
