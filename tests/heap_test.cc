#include "src/heap/heap.h"

#include <gtest/gtest.h>

#include <cstring>

namespace kamino::heap {
namespace {

struct Node {
  uint64_t value;
  PPtr<Node> next;
};

TEST(HeapTest, CreateAndAllocate) {
  HeapOptions opts;
  opts.pool_size = 64ull << 20;
  auto heap = Heap::Create(opts).value();
  uint64_t off = heap->allocator()->AllocRaw(sizeof(Node)).value();
  EXPECT_GT(off, heap->log_region_offset() + heap->log_region_size());
  EXPECT_EQ(heap->ObjectSize(off), 64u);
}

TEST(HeapTest, PoolTooSmallRejected) {
  HeapOptions opts;
  opts.pool_size = 1 << 20;
  opts.log_region_size = 16ull << 20;  // Log alone exceeds the pool.
  EXPECT_FALSE(Heap::Create(opts).ok());
}

TEST(HeapTest, RootRoundTrip) {
  HeapOptions opts;
  opts.pool_size = 64ull << 20;
  auto heap = Heap::Create(opts).value();
  EXPECT_EQ(heap->root(), 0u);
  heap->set_root(4242);
  EXPECT_EQ(heap->root(), 4242u);
}

TEST(HeapTest, PPtrDeref) {
  HeapOptions opts;
  opts.pool_size = 64ull << 20;
  auto heap = Heap::Create(opts).value();
  uint64_t off = heap->allocator()->AllocRaw(sizeof(Node)).value();
  PPtr<Node> p(off);
  Node* n = p.get(*heap);
  n->value = 99;
  n->next = PPtr<Node>::Null();
  EXPECT_EQ(heap->Deref(p)->value, 99u);
  EXPECT_TRUE(n->next.IsNull());
  EXPECT_FALSE(p.IsNull());
  EXPECT_EQ(heap->OffsetOf(n), off);
}

TEST(HeapTest, NullPPtrDerefsToNullptr) {
  HeapOptions opts;
  opts.pool_size = 64ull << 20;
  auto heap = Heap::Create(opts).value();
  PPtr<Node> null;
  EXPECT_EQ(heap->Deref(null), nullptr);
  EXPECT_FALSE(static_cast<bool>(null));
}

TEST(HeapTest, AttachRecoversStructure) {
  nvm::PoolOptions popts;
  popts.size = 64ull << 20;
  popts.crash_sim = true;
  auto pool = std::move(nvm::Pool::Create(popts).value());

  uint64_t off;
  {
    auto heap = Heap::CreateOn(pool.get(), 8ull << 20).value();
    off = heap->allocator()->AllocRaw(sizeof(Node)).value();
    auto* n = static_cast<Node*>(pool->At(off));
    n->value = 1234;
    pool->Persist(n, sizeof(Node));
    heap->set_root(off);
  }
  ASSERT_TRUE(pool->Crash().ok());

  auto heap = Heap::Attach(pool.get()).value();
  EXPECT_EQ(heap->root(), off);
  EXPECT_TRUE(heap->allocator()->IsAllocated(off));
  EXPECT_EQ(static_cast<Node*>(pool->At(off))->value, 1234u);
}

TEST(HeapTest, AttachRejectsUnformattedPool) {
  nvm::PoolOptions popts;
  popts.size = 8ull << 20;
  auto pool = std::move(nvm::Pool::Create(popts).value());
  EXPECT_EQ(Heap::Attach(pool.get()).status().code(), StatusCode::kCorruption);
}

TEST(HeapTest, PPtrComparisons) {
  PPtr<Node> a(64), b(64), c(128);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace kamino::heap
