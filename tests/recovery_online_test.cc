// Online recovery (DESIGN.md §10): parallel replay, applier handoff of
// committed-but-unapplied transactions, background backup reconciliation
// behind the dirty-map fence, and the continue-and-aggregate contract of
// KaminoEngine::Recover() when individual transactions fail to replay.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/txn/kamino_engine.h"
#include "src/txn/tx_manager.h"
#include "tests/test_util.h"

namespace kamino::txn {
namespace {

constexpr uint64_t kObjectSize = 256;

// Allocates `n` objects filled with `fill`, committed and fully applied.
std::vector<uint64_t> AllocPatterned(test::CrashableSystem& sys, int n, char fill) {
  std::vector<uint64_t> offs;
  Status st = sys.mgr->Run([&](Tx& tx) -> Status {
    for (int i = 0; i < n; ++i) {
      Result<uint64_t> off = tx.Alloc(kObjectSize);
      if (!off.ok()) {
        return off.status();
      }
      Result<void*> p = tx.OpenWrite(*off, kObjectSize);
      if (!p.ok()) {
        return p.status();
      }
      std::memset(*p, fill, kObjectSize);
      offs.push_back(*off);
    }
    return Status::Ok();
  });
  ASSERT_CRASH(st.ok());
  sys.mgr->WaitIdle();
  return offs;
}

// Overwrites one object with `fill` in its own committed transaction.
Status OverwriteOne(test::CrashableSystem& sys, uint64_t off, char fill) {
  return sys.mgr->Run([&](Tx& tx) -> Status {
    Result<void*> p = tx.OpenWrite(off, kObjectSize);
    if (!p.ok()) {
      return p.status();
    }
    std::memset(*p, fill, kObjectSize);
    return Status::Ok();
  });
}

bool AllBytesAre(const void* p, char expect) {
  const char* bytes = static_cast<const char*>(p);
  for (uint64_t i = 0; i < kObjectSize; ++i) {
    if (bytes[i] != expect) {
      return false;
    }
  }
  return true;
}

// "Machine dies": volatile state goes away, both pools drop unflushed lines.
void CrashMachine(test::CrashableSystem& sys) {
  sys.mgr.reset();
  sys.heap.reset();
  ASSERT_CRASH(sys.main_pool->Crash(nvm::CrashMode::kDropUnflushed).ok());
  if (sys.backup_pool) {
    ASSERT_CRASH(sys.backup_pool->Crash(nvm::CrashMode::kDropUnflushed).ok());
  }
}

void Reopen(test::CrashableSystem& sys) {
  sys.heap = std::move(heap::Heap::Attach(sys.main_pool.get()).value());
  sys.mgr = std::move(txn::TxManager::Open(sys.heap.get(), sys.options).value());
}

// Regression (ISSUE satellite 1): Recover() used to return at the FIRST
// failed transaction, leaving every later committed transaction un-replayed
// and its slot pinned. On a chain replica the rollback of an in-flight
// transaction always fails (no local backup to restore pre-images from), and
// the in-flight transaction holds the lowest txid here — the old early
// return would have dropped both committed transactions on the floor.
TEST(RecoverAggregation, FailedRollbackDoesNotStarveCommittedReplay) {
  test::CrashableSystem sys = test::CrashableSystem::Create(EngineType::kChainReplica);
  std::vector<uint64_t> offs = AllocPatterned(sys, 3, 'A');

  // Lowest staged txid: an in-flight transaction dies mid-scribble.
  {
    Result<Tx> tx = sys.mgr->Begin();
    ASSERT_TRUE(tx.ok());
    Result<void*> p = tx->OpenWrite(offs[0], kObjectSize);
    ASSERT_TRUE(p.ok());
    std::memset(*p, 'x', kObjectSize);
    tx->LeakForCrashTest();
  }
  // Then two committed transactions frozen in the applier queue.
  auto* engine = static_cast<KaminoEngine*>(sys.mgr->engine());
  engine->PauseApplier(true);
  ASSERT_TRUE(OverwriteOne(sys, offs[1], 'B').ok());
  ASSERT_TRUE(OverwriteOne(sys, offs[2], 'B').ok());

  CrashMachine(sys);
  sys.options.skip_recovery = true;  // Drive Recover() by hand, like the chain layer.
  Reopen(sys);

  // Recovery must fail (the rollback needs a neighbour) but still roll both
  // committed transactions forward and release their slots.
  Status first = sys.mgr->engine()->Recover();
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(sys.mgr->engine()->stats().recovered_forward, 2u);
  EXPECT_TRUE(AllBytesAre(sys.main_pool->At(offs[1]), 'B'));
  EXPECT_TRUE(AllBytesAre(sys.main_pool->At(offs[2]), 'B'));

  // Retry-safe: a second Recover() sees only the still-failing in-flight
  // transaction (the committed slots are gone) and fails the same way
  // without double-applying anything.
  Status second = sys.mgr->engine()->Recover();
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(sys.mgr->engine()->stats().recovered_forward, 2u);
}

// Online recovery hands committed-but-unapplied transactions to the applier
// pool and opens immediately; the handed-off writes are visible, new
// transactions run while the backup catches up, and WaitForRecovery drains
// everything to a mirror-consistent state.
TEST(OnlineRecovery, ServesTrafficWhileHandoffsDrain) {
  test::CrashableSystem sys =
      test::CrashableSystem::Create(EngineType::kKaminoSimple, 64ull << 20, 0.25,
                                    /*applier_threads=*/2);
  std::vector<uint64_t> offs = AllocPatterned(sys, 4, 'A');

  static_cast<KaminoEngine*>(sys.mgr->engine())->PauseApplier(true);
  for (uint64_t off : offs) {
    ASSERT_TRUE(OverwriteOne(sys, off, 'B').ok());
  }

  CrashMachine(sys);
  sys.options.recovery.online = true;
  sys.options.recovery.workers = 2;
  Reopen(sys);

  // The engine is open: handed-off writes are already in main (roll-forward
  // re-applies main -> backup), and a new transaction on a recovered object
  // works immediately — it just waits for that object's handoff to sync.
  EXPECT_TRUE(AllBytesAre(sys.main_pool->At(offs[1]), 'B'));
  ASSERT_TRUE(OverwriteOne(sys, offs[0], 'C').ok());

  sys.mgr->WaitForRecovery();
  sys.mgr->WaitIdle();

  const EngineStats stats = sys.mgr->engine()->stats();
  EXPECT_EQ(stats.recovered_forward, 4u);
  EXPECT_GT(stats.recovery_replay_ns, 0u);

  // Backup mirror converged with main on every object.
  EXPECT_TRUE(AllBytesAre(sys.main_pool->At(offs[0]), 'C'));
  for (uint64_t off : offs) {
    EXPECT_EQ(std::memcmp(sys.main_pool->At(off), sys.backup_pool->At(off), kObjectSize), 0);
  }
}

// Untrusted-backup restart: reconcile_backup re-copies every allocated chunk
// main -> backup behind the dirty-map fence. A deliberately corrupted backup
// must come back mirror-consistent, and ops issued while the sweep runs must
// see fenced (already-clean) ranges only.
TEST(OnlineRecovery, ReconcileHealsCorruptedBackupWhileServing) {
  test::CrashableSystem sys =
      test::CrashableSystem::Create(EngineType::kKaminoSimple, 64ull << 20);
  std::vector<uint64_t> offs = AllocPatterned(sys, 8, 'A');

  // The backup is stale/corrupt after e.g. a chain promotion: scribble it.
  for (uint64_t off : offs) {
    void* p = sys.backup_pool->At(off);
    std::memset(p, 'z', kObjectSize);
    sys.backup_pool->Flush(p, kObjectSize);
  }
  sys.backup_pool->Drain();

  CrashMachine(sys);
  sys.options.recovery.online = true;
  sys.options.recovery.reconcile_backup = true;
  sys.options.recovery.reconcile_workers = 2;
  sys.options.recovery.reconcile_chunk_bytes = 1ull << 16;  // Many chunks.
  Reopen(sys);

  // Serve traffic immediately: the fence reconciles this op's range on
  // demand (or waits for a background worker) before the write proceeds.
  ASSERT_TRUE(OverwriteOne(sys, offs[0], 'C').ok());

  sys.mgr->WaitForRecovery();
  sys.mgr->WaitIdle();

  const EngineStats stats = sys.mgr->engine()->stats();
  EXPECT_GT(stats.recovery_dirty_chunks, 0u);
  EXPECT_EQ(stats.recovery_dirty_chunks_left, 0u);
  EXPECT_GT(stats.recovery_reconciled_bytes, 0u);

  EXPECT_TRUE(AllBytesAre(sys.main_pool->At(offs[0]), 'C'));
  for (uint64_t off : offs) {
    EXPECT_EQ(std::memcmp(sys.main_pool->At(off), sys.backup_pool->At(off), kObjectSize), 0)
        << "backup not healed at offset " << off;
  }
}

// Offline reconcile: same healing contract, but the sweep completes before
// Open() returns — no fence waits are ever observable.
TEST(OfflineRecovery, ReconcileHealsCorruptedBackupBeforeOpen) {
  test::CrashableSystem sys =
      test::CrashableSystem::Create(EngineType::kKaminoSimple, 64ull << 20);
  std::vector<uint64_t> offs = AllocPatterned(sys, 4, 'A');

  for (uint64_t off : offs) {
    void* p = sys.backup_pool->At(off);
    std::memset(p, 'z', kObjectSize);
    sys.backup_pool->Flush(p, kObjectSize);
  }
  sys.backup_pool->Drain();

  CrashMachine(sys);
  sys.options.recovery.reconcile_backup = true;  // online stays false.
  Reopen(sys);

  const EngineStats stats = sys.mgr->engine()->stats();
  EXPECT_GT(stats.recovery_dirty_chunks, 0u);
  EXPECT_EQ(stats.recovery_dirty_chunks_left, 0u);
  EXPECT_EQ(stats.recovery_fence_waits, 0u);
  for (uint64_t off : offs) {
    EXPECT_EQ(std::memcmp(sys.main_pool->At(off), sys.backup_pool->At(off), kObjectSize), 0);
  }
}

// Parallel replay must preserve exactly-once semantics: many disjoint
// committed-unapplied transactions replayed by four workers land with every
// write intact and the mirror consistent.
TEST(ParallelReplay, FourWorkersReplayDisjointTransactions) {
  test::CrashableSystem sys =
      test::CrashableSystem::Create(EngineType::kKaminoSimple, 64ull << 20);
  std::vector<uint64_t> offs = AllocPatterned(sys, 16, 'A');

  static_cast<KaminoEngine*>(sys.mgr->engine())->PauseApplier(true);
  for (uint64_t off : offs) {
    ASSERT_TRUE(OverwriteOne(sys, off, 'B').ok());
  }

  CrashMachine(sys);
  sys.options.recovery.workers = 4;
  Reopen(sys);
  sys.mgr->WaitForRecovery();
  sys.mgr->WaitIdle();

  EXPECT_EQ(sys.mgr->engine()->stats().recovered_forward, 16u);
  for (uint64_t off : offs) {
    EXPECT_TRUE(AllBytesAre(sys.main_pool->At(off), 'B'));
    EXPECT_EQ(std::memcmp(sys.main_pool->At(off), sys.backup_pool->At(off), kObjectSize), 0);
  }
}

}  // namespace
}  // namespace kamino::txn
