#include "src/pds/dlist.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "tests/test_util.h"

namespace kamino::pds {
namespace {

using test::CrashableSystem;

class DListTest : public ::testing::TestWithParam<txn::EngineType> {
 protected:
  void SetUp() override {
    sys_ = CrashableSystem::Create(GetParam());
    list_ = std::move(DList::Create(sys_.mgr.get()).value());
  }

  CrashableSystem sys_;
  std::unique_ptr<DList> list_;
};

TEST_P(DListTest, EmptyList) {
  EXPECT_EQ(list_->size(), 0u);
  EXPECT_EQ(list_->Lookup(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(list_->Erase(1).code(), StatusCode::kNotFound);
  EXPECT_TRUE(list_->Validate().ok());
}

TEST_P(DListTest, InsertKeepsSortedOrder) {
  for (uint64_t k : {50u, 10u, 30u, 20u, 40u}) {
    ASSERT_TRUE(list_->Insert(k, k * 1.5).ok());
  }
  sys_.mgr->WaitIdle();
  auto items = list_->Items();
  ASSERT_EQ(items.size(), 5u);
  for (size_t i = 0; i + 1 < items.size(); ++i) {
    EXPECT_LT(items[i].first, items[i + 1].first);
  }
  EXPECT_TRUE(list_->Validate().ok());
  EXPECT_EQ(list_->Lookup(30).value(), 45.0);
}

TEST_P(DListTest, DuplicateRejected) {
  ASSERT_TRUE(list_->Insert(5, 1.0).ok());
  EXPECT_EQ(list_->Insert(5, 2.0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(list_->size(), 1u);
}

TEST_P(DListTest, EraseHeadMiddleTail) {
  for (uint64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(list_->Insert(k, static_cast<double>(k)).ok());
  }
  ASSERT_TRUE(list_->Erase(1).ok());  // Head.
  ASSERT_TRUE(list_->Erase(3).ok());  // Middle.
  ASSERT_TRUE(list_->Erase(5).ok());  // Tail.
  sys_.mgr->WaitIdle();
  auto items = list_->Items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, 2u);
  EXPECT_EQ(items[1].first, 4u);
  EXPECT_TRUE(list_->Validate().ok());
}

TEST_P(DListTest, EraseOnlyElement) {
  ASSERT_TRUE(list_->Insert(9, 9.0).ok());
  ASSERT_TRUE(list_->Erase(9).ok());
  sys_.mgr->WaitIdle();
  EXPECT_EQ(list_->size(), 0u);
  EXPECT_TRUE(list_->Validate().ok());
  // Reusable afterwards.
  ASSERT_TRUE(list_->Insert(1, 1.0).ok());
  EXPECT_EQ(list_->size(), 1u);
}

TEST_P(DListTest, UpdateValue) {
  ASSERT_TRUE(list_->Insert(3, 1.0).ok());
  ASSERT_TRUE(list_->Update(3, 99.5).ok());
  EXPECT_EQ(list_->Lookup(3).value(), 99.5);
  EXPECT_EQ(list_->Update(4, 1.0).code(), StatusCode::kNotFound);
}

TEST_P(DListTest, RandomOpsAgainstModel) {
  std::map<uint64_t, double> model;
  Xoshiro256 rng(7);
  for (int op = 0; op < 1500; ++op) {
    const uint64_t key = rng.NextBounded(60);
    const double dice = rng.NextDouble();
    if (dice < 0.4) {
      Status st = list_->Insert(key, static_cast<double>(op));
      if (model.count(key)) {
        ASSERT_EQ(st.code(), StatusCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(st.ok());
        model[key] = static_cast<double>(op);
      }
    } else if (dice < 0.65) {
      Status st = list_->Erase(key);
      if (model.count(key)) {
        ASSERT_TRUE(st.ok());
        model.erase(key);
      } else {
        ASSERT_EQ(st.code(), StatusCode::kNotFound);
      }
    } else if (dice < 0.8) {
      Status st = list_->Update(key, static_cast<double>(op) + 0.5);
      if (model.count(key)) {
        ASSERT_TRUE(st.ok());
        model[key] = static_cast<double>(op) + 0.5;
      } else {
        ASSERT_EQ(st.code(), StatusCode::kNotFound);
      }
    } else {
      Result<double> v = list_->Lookup(key);
      if (model.count(key)) {
        ASSERT_TRUE(v.ok());
        ASSERT_EQ(*v, model[key]);
      } else {
        ASSERT_EQ(v.status().code(), StatusCode::kNotFound);
      }
    }
  }
  sys_.mgr->WaitIdle();
  ASSERT_TRUE(list_->Validate().ok());
  ASSERT_EQ(list_->size(), model.size());
}

TEST_P(DListTest, AbortedSpliceRestoresNeighbours) {
  if (GetParam() == txn::EngineType::kNoLogging) {
    GTEST_SKIP() << "no-logging cannot roll back";
  }
  for (uint64_t k : {10u, 20u, 30u}) {
    ASSERT_TRUE(list_->Insert(k, static_cast<double>(k)).ok());
  }
  sys_.mgr->WaitIdle();
  // Mid-list crash-free abort: leak a transaction doing a splice by hand is
  // covered in crash tests; here we verify Erase's rollback via Run.
  Status st = sys_.mgr->Run([&](txn::Tx&) -> Status {
    // Splice 20 out manually (what Erase does), then abort.
    auto items = list_->Items();
    (void)items;
    return Status::Internal("abort before touching");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(list_->Validate().ok());
  EXPECT_EQ(list_->size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Engines, DListTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic,
                                           txn::EngineType::kUndoLog, txn::EngineType::kCow,
                                           txn::EngineType::kNoLogging),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           switch (info.param) {
                             case txn::EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case txn::EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case txn::EngineType::kUndoLog:
                               return "UndoLog";
                             case txn::EngineType::kCow:
                               return "Cow";
                             case txn::EngineType::kNoLogging:
                               return "NoLogging";
                             default:
                               return "Unknown";
                           }
                         });

// Crash: an in-flight insert must not be visible after recovery (paper
// Figure 4's TxInsert interrupted by power failure).
TEST(DListCrashTest, InterruptedInsertRollsBack) {
  for (txn::EngineType engine :
       {txn::EngineType::kKaminoSimple, txn::EngineType::kKaminoDynamic,
        txn::EngineType::kUndoLog, txn::EngineType::kCow}) {
    CrashableSystem sys = CrashableSystem::Create(engine);
    uint64_t anchor = 0;
    {
      auto list = DList::Create(sys.mgr.get()).value();
      anchor = list->anchor();
      for (uint64_t k : {10u, 30u}) {
        ASSERT_TRUE(list->Insert(k, static_cast<double>(k)).ok());
      }
      sys.mgr->WaitIdle();
      // Start the Figure 4 splice by hand and die mid-way, with the partial
      // pointers persisted.
      Result<txn::Tx> tx = sys.mgr->Begin();
      ASSERT_TRUE(tx.ok());
      uint64_t node_off = tx->Alloc(sizeof(DList::Entry)).value();
      const auto* a = static_cast<const DList::Anchor*>(sys.main_pool->At(anchor));
      const uint64_t head = a->head;  // Key 10.
      auto* node = static_cast<DList::Entry*>(tx->OpenWrite(node_off, 0).value());
      node->key = 20;
      node->value = 20.0;
      node->prev = head;
      node->next = static_cast<const DList::Entry*>(sys.main_pool->At(head))->next;
      auto* head_node = static_cast<DList::Entry*>(tx->OpenWrite(head, 0).value());
      head_node->next = node_off;  // Half the splice done...
      sys.main_pool->Persist(head_node, sizeof(DList::Entry));
      tx->LeakForCrashTest();  // ...and the process dies.
    }
    sys.CrashAndRecover();
    auto list = DList::Attach(sys.mgr.get(), anchor).value();
    ASSERT_TRUE(list->Validate().ok()) << txn::EngineTypeName(engine);
    EXPECT_EQ(list->size(), 2u);
    EXPECT_EQ(list->Lookup(20).status().code(), StatusCode::kNotFound);
  }
}

}  // namespace
}  // namespace kamino::pds
