// Quick-reboot protocols per chain position (paper §5.3, Figure 9): the
// rebooting node rolls forward from its predecessor (non-head), recovers
// from its local backup (head), or rolls back from its successor (promoted
// head) — then rejoins and the chain stays consistent.

#include "src/chain/chain.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

namespace kamino::chain {
namespace {

ChainOptions Opts(bool kamino) {
  ChainOptions o;
  o.kamino = kamino;
  o.f = 2;
  o.pool_size = 32ull << 20;
  o.log_region_size = 4ull << 20;
  o.one_way_latency_us = 5;
  o.client_timeout_ms = 5'000;
  return o;
}

void ExpectConverged(Chain* chain, const std::map<uint64_t, std::string>& expect) {
  ASSERT_TRUE(chain->Quiesce().ok());
  for (uint64_t id : chain->current_view().nodes) {
    Replica* r = chain->replica_by_id(id);
    ASSERT_NE(r, nullptr);
    ASSERT_TRUE(r->tree()->Validate().ok()) << "replica " << id;
    EXPECT_EQ(r->tree()->CountSlow(), expect.size()) << "replica " << id;
    for (const auto& [k, v] : expect) {
      EXPECT_EQ(r->tree()->Get(k).value(), v) << "replica " << id << " key " << k;
    }
  }
}

class ChainRebootTest : public ::testing::TestWithParam<bool> {};

TEST_P(ChainRebootTest, HeadQuickRebootRecoversFromLocalBackup) {
  auto chain = Chain::Create(Opts(GetParam())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 15; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "v").ok());
    model[k] = "v";
  }
  ASSERT_TRUE(chain->Quiesce().ok());
  ASSERT_TRUE(chain->RebootReplica(chain->current_view().head()).ok());

  for (uint64_t k = 0; k < 15; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "w").ok()) << k;
    model[k] = "w";
  }
  EXPECT_EQ(chain->Read(3).value(), "w");
  ExpectConverged(chain.get(), model);
}

TEST_P(ChainRebootTest, TailQuickRebootReplaysFromPredecessor) {
  auto chain = Chain::Create(Opts(GetParam())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 15; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "v").ok());
    model[k] = "v";
  }
  ASSERT_TRUE(chain->Quiesce().ok());
  ASSERT_TRUE(chain->RebootReplica(chain->current_view().tail()).ok());

  for (uint64_t k = 5; k < 25; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "w").ok());
    model[k] = "w";
  }
  ExpectConverged(chain.get(), model);
}

TEST_P(ChainRebootTest, EveryPositionSurvivesSequentialReboots) {
  auto chain = Chain::Create(Opts(GetParam())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "base").ok());
    model[k] = "base";
  }
  ASSERT_TRUE(chain->Quiesce().ok());

  // Reboot every node in turn, writing between reboots.
  int round = 0;
  for (uint64_t id : chain->current_view().nodes) {
    ASSERT_TRUE(chain->Quiesce().ok());
    ASSERT_TRUE(chain->RebootReplica(id).ok()) << "node " << id;
    const std::string v = "round-" + std::to_string(round++);
    for (uint64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(chain->Upsert(k, v).ok());
      model[k] = v;
    }
  }
  ExpectConverged(chain.get(), model);
}

TEST_P(ChainRebootTest, MidApplyCrashAtTail) {
  // The fault fires at the TAIL: the op is applied everywhere upstream but
  // never acknowledged; the rebooted tail rolls forward from its predecessor
  // and acks, releasing the blocked client.
  auto chain = Chain::Create(Opts(GetParam())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "pre").ok());
    model[k] = "pre";
  }
  ASSERT_TRUE(chain->Quiesce().ok());

  Replica* tail = chain->replica_by_id(chain->current_view().tail());
  tail->ArmCrashDuringNextApply();
  std::thread writer([&] { ASSERT_TRUE(chain->Upsert(3, "post").ok()); });
  for (int i = 0; i < 200 && tail->alive(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(tail->alive()) << "fault never fired";
  ASSERT_TRUE(chain->RebootReplica(tail->node_id()).ok());
  writer.join();
  model[3] = "post";
  EXPECT_EQ(chain->Read(3).value(), "post");
  ExpectConverged(chain.get(), model);
}

TEST_P(ChainRebootTest, MidApplyCrashAtMiddleRollsForward) {
  // The combination Chain::RebootReplica actually ships (see its header
  // comment): RebootReplica itself injects no fault — to exercise a
  // mid-apply power failure the test arms ArmCrashDuringNextApply first and
  // drives one more write. Here the fault fires at a MIDDLE replica: the op
  // is applied at the head but swallowed before the tail, the rebooted
  // middle rolls forward from its predecessor (paper Figure 9), and the
  // blocked client is released by the resumed pipeline.
  auto chain = Chain::Create(Opts(GetParam())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "pre").ok());
    model[k] = "pre";
  }
  ASSERT_TRUE(chain->Quiesce().ok());

  const View v = chain->current_view();
  ASSERT_GE(v.nodes.size(), 3u);
  Replica* middle = chain->replica_by_id(v.nodes[1]);
  middle->ArmCrashDuringNextApply();
  std::thread writer([&] { ASSERT_TRUE(chain->Upsert(7, "post").ok()); });
  for (int i = 0; i < 200 && middle->alive(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(middle->alive()) << "fault never fired";
  ASSERT_TRUE(chain->RebootReplica(middle->node_id()).ok());
  writer.join();
  model[7] = "post";
  EXPECT_EQ(chain->Read(7).value(), "post");
  ExpectConverged(chain.get(), model);
}

TEST_P(ChainRebootTest, RebootAloneInjectsNoFault) {
  // RebootReplica without a previously armed fault is a plain quick reboot:
  // no operation is lost, nothing crashes mid-apply, and writes race the
  // reboot safely (the client retry path covers the down window).
  auto chain = Chain::Create(Opts(GetParam())).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "v").ok());
    model[k] = "v";
  }
  ASSERT_TRUE(chain->Quiesce().ok());
  const uint64_t middle = chain->current_view().nodes[1];
  ASSERT_TRUE(chain->RebootReplica(middle).ok());
  Replica* r = chain->replica_by_id(middle);
  EXPECT_TRUE(r->alive());
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(chain->Upsert(k, "w").ok());
    model[k] = "w";
  }
  ExpectConverged(chain.get(), model);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ChainRebootTest, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "KaminoChain" : "TraditionalChain";
                         });

}  // namespace
}  // namespace kamino::chain
