// Integration tests: several persistent data structures sharing one heap and
// one atomicity engine, cross-structure transactions, and whole-system crash
// recovery through the combined object graph.

#include <gtest/gtest.h>

#include "src/pds/bplus_tree.h"
#include "src/pds/dlist.h"
#include "src/pds/hash_map.h"
#include "src/pds/pqueue.h"
#include "src/workload/tpcc_lite.h"
#include "tests/test_util.h"

namespace kamino {
namespace {

using test::CrashableSystem;

class IntegrationTest : public ::testing::TestWithParam<txn::EngineType> {
 protected:
  void SetUp() override { sys_ = CrashableSystem::Create(GetParam(), 128ull << 20); }
  CrashableSystem sys_;
};

TEST_P(IntegrationTest, FourStructuresShareOneHeap) {
  auto tree = pds::BPlusTree::Create(sys_.mgr.get()).value();
  auto list = pds::DList::Create(sys_.mgr.get()).value();
  auto map = pds::HashMap::Create(sys_.mgr.get(), 64).value();
  auto queue = pds::PQueue::Create(sys_.mgr.get()).value();

  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(tree->Insert(k, "t" + std::to_string(k)).ok());
    ASSERT_TRUE(map->Put(k, "m" + std::to_string(k)).ok());
    if (k < 50) {
      ASSERT_TRUE(list->Insert(k, static_cast<double>(k)).ok());
      ASSERT_TRUE(queue->PushBack("q" + std::to_string(k)).ok());
    }
  }
  sys_.mgr->WaitIdle();
  EXPECT_TRUE(tree->Validate().ok());
  EXPECT_TRUE(list->Validate().ok());
  EXPECT_TRUE(map->Validate().ok());
  EXPECT_TRUE(queue->Validate().ok());
  EXPECT_EQ(tree->CountSlow(), 200u);
  EXPECT_EQ(map->CountSlow(), 200u);
  EXPECT_EQ(list->size(), 50u);
  EXPECT_EQ(queue->size(), 50u);
}

TEST_P(IntegrationTest, CrossStructureTransactionIsAtomic) {
  if (GetParam() == txn::EngineType::kNoLogging) {
    GTEST_SKIP() << "no-logging cannot roll back";
  }
  auto tree = pds::BPlusTree::Create(sys_.mgr.get()).value();
  auto map = pds::HashMap::Create(sys_.mgr.get(), 64).value();
  ASSERT_TRUE(tree->Insert(1, "tree-old").ok());
  ASSERT_TRUE(map->Put(1, "map-old").ok());
  sys_.mgr->WaitIdle();

  // Move a record from the map into the tree atomically — aborted.
  {
    auto guard = tree->LockExclusive();
    Status st = sys_.mgr->Run([&](txn::Tx& tx) -> Status {
      KAMINO_RETURN_IF_ERROR(tree->UpsertInTx(tx, 1, "tree-new"));
      KAMINO_RETURN_IF_ERROR(tree->InsertInTx(tx, 2, "moved"));
      return Status::Internal("abort");
    });
    EXPECT_FALSE(st.ok());
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(tree->Get(1).value(), "tree-old");
  EXPECT_EQ(tree->Get(2).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(map->Get(1).value(), "map-old");

  // Same transaction committed.
  {
    auto guard = tree->LockExclusive();
    ASSERT_TRUE(sys_.mgr
                    ->Run([&](txn::Tx& tx) -> Status {
                      KAMINO_RETURN_IF_ERROR(tree->UpsertInTx(tx, 1, "tree-new"));
                      KAMINO_RETURN_IF_ERROR(tree->InsertInTx(tx, 2, "moved"));
                      return Status::Ok();
                    })
                    .ok());
  }
  sys_.mgr->WaitIdle();
  EXPECT_EQ(tree->Get(1).value(), "tree-new");
  EXPECT_EQ(tree->Get(2).value(), "moved");
}

TEST_P(IntegrationTest, WholeSystemCrashRecovery) {
  if (GetParam() == txn::EngineType::kNoLogging) {
    GTEST_SKIP() << "no-logging has no recovery";
  }
  uint64_t tree_anchor = 0, map_anchor = 0, queue_anchor = 0;
  {
    auto tree = pds::BPlusTree::Create(sys_.mgr.get()).value();
    auto map = pds::HashMap::Create(sys_.mgr.get(), 64).value();
    auto queue = pds::PQueue::Create(sys_.mgr.get()).value();
    tree_anchor = tree->anchor();
    map_anchor = map->anchor();
    queue_anchor = queue->anchor();
    for (uint64_t k = 0; k < 120; ++k) {
      ASSERT_TRUE(tree->Insert(k, "v" + std::to_string(k)).ok());
      ASSERT_TRUE(map->Put(k, "w" + std::to_string(k)).ok());
      ASSERT_TRUE(queue->PushBack("x" + std::to_string(k)).ok());
    }
    sys_.mgr->WaitIdle();
    // One in-flight transaction across the tree dies with the machine.
    Result<txn::Tx> tx = sys_.mgr->Begin();
    ASSERT_TRUE(tx.ok());
    ASSERT_TRUE(tree->UpsertInTx(*tx, 5, "doomed").ok());
    tx->LeakForCrashTest();
  }
  sys_.CrashAndRecover();

  auto tree = pds::BPlusTree::Attach(sys_.mgr.get(), tree_anchor).value();
  auto map = pds::HashMap::Attach(sys_.mgr.get(), map_anchor).value();
  auto queue = pds::PQueue::Attach(sys_.mgr.get(), queue_anchor).value();
  ASSERT_TRUE(tree->Validate().ok());
  ASSERT_TRUE(map->Validate().ok());
  ASSERT_TRUE(queue->Validate().ok());
  EXPECT_EQ(tree->CountSlow(), 120u);
  EXPECT_EQ(tree->Get(5).value(), "v5");
  EXPECT_EQ(map->CountSlow(), 120u);
  EXPECT_EQ(queue->size(), 120u);
  EXPECT_EQ(queue->Front().value(), "x0");
}

INSTANTIATE_TEST_SUITE_P(Engines, IntegrationTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic,
                                           txn::EngineType::kUndoLog, txn::EngineType::kCow,
                                           txn::EngineType::kRedoLog,
                                           txn::EngineType::kNoLogging),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           switch (info.param) {
                             case txn::EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case txn::EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case txn::EngineType::kUndoLog:
                               return "UndoLog";
                             case txn::EngineType::kCow:
                               return "Cow";
                             case txn::EngineType::kRedoLog:
                               return "RedoLog";
                             case txn::EngineType::kNoLogging:
                               return "NoLogging";
                             default:
                               return "Unknown";
                           }
                         });

// TPC-C-lite survives a mid-transaction crash with all invariants intact.
TEST(TpccCrashTest, MidNewOrderCrashRecovers) {
  CrashableSystem sys = CrashableSystem::Create(txn::EngineType::kKaminoSimple, 256ull << 20);
  workload::TpccLite::Options topts;
  topts.items = 100;
  topts.customers = 20;
  auto tpcc = workload::TpccLite::Create(sys.mgr.get(), topts).value();
  ASSERT_TRUE(tpcc->Load().ok());
  Xoshiro256 rng(3);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(tpcc->RunOne(rng).ok());
  }
  sys.mgr->WaitIdle();
  // The heap crashes with no transaction in flight (TpccLite holds its own
  // tree handles which die with it); the persistent state must reopen clean.
  sys.CrashAndRecover();
  auto log_txs = sys.mgr->log()->ScanForRecovery();
  EXPECT_TRUE(log_txs.empty()) << "recovery left unresolved transactions";
}

}  // namespace
}  // namespace kamino
