// Systematic crash-point enumeration over every atomicity engine, plus the
// negative control: a deliberately-broken engine variant (write-set flush
// suppressed) must be caught with a replayable trace.
//
// KAMINO_CRASH_POINT_STRIDE=N (env) tests every N-th crash point instead of
// all of them — the CI smoke mode. Default is full enumeration.

#include <gtest/gtest.h>

#include <cstdlib>

#include "tests/crash_points/crash_point_harness.h"

namespace kamino::testing {
namespace {

uint64_t StrideFromEnv() {
  const char* s = std::getenv("KAMINO_CRASH_POINT_STRIDE");
  if (s == nullptr) {
    return 1;
  }
  const long v = std::atol(s);
  return v > 1 ? static_cast<uint64_t>(v) : 1;
}

class CrashPointEnumTest : public ::testing::TestWithParam<txn::EngineType> {};

TEST_P(CrashPointEnumTest, EveryCrashPointRecoversConsistently) {
  CrashPointOptions options;
  options.engine = GetParam();
  options.num_ops = 6;
  options.stride = StrideFromEnv();
  CrashPointReport report = EnumerateCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_GT(report.points_tested, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Engines, CrashPointEnumTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic,
                                           txn::EngineType::kUndoLog, txn::EngineType::kCow,
                                           txn::EngineType::kRedoLog),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           switch (info.param) {
                             case txn::EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case txn::EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case txn::EngineType::kUndoLog:
                               return "UndoLog";
                             case txn::EngineType::kCow:
                               return "Cow";
                             case txn::EngineType::kRedoLog:
                               return "RedoLog";
                             default:
                               return "Unknown";
                           }
                         });

// Multi-applier enumeration under per-site coordinates: with two applier
// threads the global ordinal stream is nondeterministic, so crash points are
// named (kind, site, occurrence) instead. Recovery, structural and atomicity
// invariants still hold at every coordinate; stream-equality checks are
// skipped by design.
TEST(CrashPointPerSite, MultiApplierSweepRecoversAtEveryCoordinate) {
  CrashPointOptions options;
  options.engine = txn::EngineType::kKaminoSimple;
  options.num_ops = 6;
  options.applier_threads = 2;
  options.per_site = true;
  options.stride = StrideFromEnv();
  CrashPointReport report = EnumerateCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_GT(report.points_tested, 0u);
  // Most coordinates must actually fire; a benign interleave may starve a
  // few, and those are recorded as skipped rather than failed.
  EXPECT_GT(report.points_fired, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(CrashPointPerSite, DynamicEngineMultiApplierSweep) {
  CrashPointOptions options;
  options.engine = txn::EngineType::kKaminoDynamic;
  options.num_ops = 4;
  options.applier_threads = 2;
  options.per_site = true;
  options.stride = StrideFromEnv() * 2;  // Budgeted: this config is slower.
  CrashPointReport report = EnumerateCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_GT(report.points_fired, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// NoLogging provides no atomicity by design: it is swept at the weak tier
// (recovery machinery must still come back up; data checks are skipped).
TEST(CrashPointWeakTier, NoLoggingSurvivesEveryCrashPointStructurally) {
  CrashPointOptions options;
  options.engine = txn::EngineType::kNoLogging;
  options.num_ops = 6;
  options.stride = StrideFromEnv();
  options.check_data = false;
  CrashPointReport report = EnumerateCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Negative control: suppress the write-set flush at commit (as if the engine
// forgot its data-persistence barrier). Commit records still persist, so an
// acknowledged operation's data can vanish in a crash — the sweep must catch
// that as a durability violation and emit a replayable trace.
TEST(CrashPointDetection, MissingWriteSetFlushIsCaughtWithReplayableTrace) {
  CrashPointOptions options;
  options.engine = txn::EngineType::kUndoLog;
  options.num_ops = 4;
  options.suppress_site = "engine/flush-write-set";
  options.suppress_kind = nvm::PersistEventKind::kFlush;
  CrashPointReport report = EnumerateCrashPoints(options);
  ASSERT_FALSE(report.ok()) << "broken variant passed the sweep: " << report.Summary();
  bool durability_caught = false;
  for (const CrashPointFailure& f : report.failures) {
    EXPECT_NE(f.message.find("replay:"), std::string::npos) << f.message;
    EXPECT_GT(f.crash_ordinal, 0u);
    if (f.message.find("durability lost") != std::string::npos) {
      durability_caught = true;
    }
  }
  EXPECT_TRUE(durability_caught) << report.Summary();
}

// The count pass alone, with no injection, must leave the system bit-exact
// with a run that never had an observer installed (observers that change
// behavior would invalidate the whole methodology).
TEST(CrashPointScheduler, CountingPassIsTransparent) {
  CrashPointOptions options;
  options.engine = txn::EngineType::kKaminoSimple;
  options.num_ops = 4;
  options.start = 1;
  options.max_points = 1;  // One injection at k=1: crash before anything persists.
  CrashPointReport report = EnumerateCrashPoints(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.points_tested, 1u);
}

}  // namespace
}  // namespace kamino::testing
