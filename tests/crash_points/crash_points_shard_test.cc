// Crash-point enumeration over the cross-shard 2PC commit (prepare / decide /
// apply window). A 3-shard store runs a fixed single-mutator workload mixing
// single-key updates with cross-shard MultiUpdates; a power failure is
// injected at every persistence-event coordinate and the reopened store must
// sit at exactly one operation-prefix state — in particular, no crash point
// may commit a cross-shard transaction on a strict subset of its shards.
//
// Coordinates are per-site (kind, shard-qualified site, occurrence), not
// global ordinals: each shard's applier drains concurrently with the others,
// so the global interleaving across shards is not deterministic, but every
// per-shard per-site stream is (single mutator; appliers paused during ops
// and drained one batch per op at boundaries).

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/nvm/pool.h"
#include "src/shard/sharded_store.h"
#include "tests/crash_points/crash_scheduler.h"

namespace kamino::testing {
namespace {

using shard::ShardedStore;
using shard::ShardedStoreOptions;

constexpr int kNumShards = 3;

struct ShardedMachine {
  std::vector<std::unique_ptr<nvm::Pool>> pools;  // main0, backup0, main1, ...
  ShardedStoreOptions opts;
  std::unique_ptr<ShardedStore> store;
  // keys[s] routes to shard s.
  std::array<uint64_t, kNumShards> keys{};
};

uint64_t KeyOnShard(const ShardedStore& store, size_t shard, uint64_t from) {
  for (uint64_t k = from;; ++k) {
    if (store.ShardOf(k) == shard) {
      return k;
    }
  }
}

// Builds a fresh 3-shard store on crash-sim pools and loads one key per
// shard (value "g0"), fully applied. The observer is NOT yet installed:
// setup events are outside the swept window.
ShardedMachine BuildMachine() {
  ShardedMachine m;
  m.opts.num_shards = kNumShards;
  m.opts.pool_size = 8ull << 20;
  m.opts.log_region_size = 2ull << 20;
  m.opts.lock.timeout_ms = 2000;
  for (int i = 0; i < kNumShards; ++i) {
    nvm::PoolOptions popts;
    popts.size = 8ull << 20;
    popts.crash_sim = true;
    popts.site_prefix = "shard" + std::to_string(i);
    for (int p = 0; p < 2; ++p) {
      m.pools.push_back(std::move(nvm::Pool::Create(popts).value()));
    }
    m.opts.external_pools.push_back(
        {m.pools[2 * i].get(), m.pools[2 * i + 1].get()});
  }
  m.store = std::move(ShardedStore::Create(m.opts).value());
  uint64_t from = 0;
  for (int s = 0; s < kNumShards; ++s) {
    m.keys[s] = KeyOnShard(*m.store, static_cast<size_t>(s), from);
    from = m.keys[s] + 1;
    EXPECT_TRUE(m.store->Insert(m.keys[s], "g0").ok());
  }
  m.store->WaitIdle();
  return m;
}

void InstallObserver(ShardedMachine& m, CrashScheduler* scheduler) {
  for (auto& pool : m.pools) {
    pool->SetPersistenceObserver(scheduler);
  }
}

// The fixed workload: 4 ops, each fully drained (one applier batch per
// shard) before the next. Stops at the first op boundary after the crash
// point fires. Appliers are paused while the mutator runs so every
// commit-path event comes from this thread, and unpaused once per boundary
// so each shard's applier sees exactly one batch — that makes every
// per-shard per-site event stream deterministic.
void RunOps(ShardedMachine& m, CrashScheduler* scheduler) {
  const uint64_t a = m.keys[0];
  const uint64_t b = m.keys[1];
  const uint64_t c = m.keys[2];
  const std::vector<std::function<Status()>> ops = {
      [&] { return m.store->Update(a, "s1"); },
      [&] { return m.store->MultiUpdate({{a, "g1"}, {b, "g1"}, {c, "g1"}}); },
      [&] { return m.store->Update(b, "s2"); },
      [&] { return m.store->MultiUpdate({{a, "g2"}, {b, "g2"}, {c, "g2"}}); },
  };
  m.store->PauseAppliers(true);
  for (const auto& op : ops) {
    ASSERT_TRUE(op().ok());
    m.store->PauseAppliers(false);
    m.store->WaitIdle();
    m.store->PauseAppliers(true);
    if (scheduler->crashed()) {
      break;
    }
  }
  m.store->PauseAppliers(false);
}

// Kills the machine (shutdown persists still vetoed by the armed scheduler),
// drops unflushed lines in all six pools, and reopens through the sharded
// recovery path (in-doubt resolution + per-shard replay).
void CrashAndReopen(ShardedMachine& m, CrashScheduler* scheduler) {
  m.store.reset();
  scheduler->Disarm();
  for (auto& pool : m.pools) {
    pool->SetPersistenceObserver(nullptr);
    ASSERT_TRUE(pool->Crash(nvm::CrashMode::kDropUnflushed).ok());
  }
  Result<std::unique_ptr<ShardedStore>> reopened = ShardedStore::Open(m.opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  m.store = std::move(*reopened);
}

// The recovered store must sit at exactly one op-prefix state. Anything
// else — above all a mixed generation, i.e. a cross-shard MultiUpdate
// applied on some shards but not others — is an atomicity violation.
void VerifyPrefixState(ShardedMachine& m, const std::string& context) {
  static const std::vector<std::array<const char*, 3>> kAllowed = {
      {"g0", "g0", "g0"},  // setup
      {"s1", "g0", "g0"},  // after op 1
      {"g1", "g1", "g1"},  // after op 2 (cross-shard)
      {"g1", "s2", "g1"},  // after op 3
      {"g2", "g2", "g2"},  // after op 4 (cross-shard)
  };
  std::array<std::string, 3> got;
  for (int s = 0; s < kNumShards; ++s) {
    Result<std::string> v = m.store->Read(m.keys[s]);
    ASSERT_TRUE(v.ok()) << context << ": key on shard " << s << ": "
                        << v.status().message();
    got[s] = *v;
  }
  bool allowed = false;
  for (const auto& state : kAllowed) {
    if (got[0] == state[0] && got[1] == state[1] && got[2] == state[2]) {
      allowed = true;
      break;
    }
  }
  EXPECT_TRUE(allowed) << context << ": recovered state (" << got[0] << ", " << got[1]
                       << ", " << got[2]
                       << ") is not an op-prefix — cross-shard atomicity violated";
  // Structural invariants and liveness on every shard.
  for (int s = 0; s < kNumShards; ++s) {
    ASSERT_TRUE(m.store->shard_store(s)->tree()->Validate().ok())
        << context << ": shard " << s << " tree invalid";
    ASSERT_TRUE(m.store->Update(m.keys[s], "post").ok())
        << context << ": shard " << s << " not writable after recovery";
    EXPECT_EQ(*m.store->Read(m.keys[s]), "post");
  }
}

// One injection at a per-site coordinate; returns whether it fired.
bool RunInjectionAt(const CrashScheduler::EventRecord& target, const std::string& context) {
  ShardedMachine m = BuildMachine();
  CrashScheduler scheduler;
  InstallObserver(m, &scheduler);
  scheduler.ArmInjectionAtSite(target.kind, target.site, target.occurrence);
  RunOps(m, &scheduler);
  const bool fired = scheduler.crashed();
  CrashAndReopen(m, &scheduler);
  VerifyPrefixState(m, context);
  return fired;
}

TEST(CrashPointsShardTest, CountPassSeesShardQualifiedSites) {
  ShardedMachine m = BuildMachine();
  CrashScheduler scheduler;
  InstallObserver(m, &scheduler);
  scheduler.ArmCounting();
  RunOps(m, &scheduler);
  scheduler.Disarm();
  for (auto& pool : m.pools) {
    pool->SetPersistenceObserver(nullptr);
  }
  const std::vector<CrashScheduler::EventRecord> trace = scheduler.trace();
  ASSERT_FALSE(trace.empty());
  std::set<std::string> sites;
  for (const auto& rec : trace) {
    sites.insert(rec.site);
  }
  // Every shard attributes its events, and the full 2PC window is visible:
  // prepared records on all three shards, the decision on the coordinator
  // (always shard 0 here — the lowest participant), commit records on the
  // participants.
  for (int s = 0; s < kNumShards; ++s) {
    const std::string prefix = "shard" + std::to_string(s) + "/";
    EXPECT_TRUE(std::any_of(sites.begin(), sites.end(),
                            [&](const std::string& x) { return x.rfind(prefix, 0) == 0; }))
        << "no events attributed to " << prefix;
    EXPECT_TRUE(sites.count(prefix + "log/prepare-record"))
        << "missing prepare record on " << prefix;
  }
  EXPECT_TRUE(sites.count("shard0/log/decide-record"));
  EXPECT_TRUE(sites.count("shard1/log/commit-record"));
  EXPECT_TRUE(sites.count("shard2/log/commit-record"));
}

TEST(CrashPointsShardTest, GlobTargetsOneShardsSites) {
  ShardedMachine m = BuildMachine();
  CrashScheduler scheduler;
  InstallObserver(m, &scheduler);
  // Third drain anywhere on shard 1, no matter how shard 0/2 events
  // interleave around it in the global stream.
  scheduler.ArmInjectionAtSite(nvm::PersistEventKind::kDrain, "shard1/*", 3);
  RunOps(m, &scheduler);
  ASSERT_TRUE(scheduler.crashed());
  const std::vector<CrashScheduler::EventRecord> trace = scheduler.trace();
  const uint64_t at = scheduler.crashed_at_ordinal();
  ASSERT_GE(at, 1u);
  EXPECT_EQ(trace[at - 1].site.rfind("shard1/", 0), 0u)
      << "glob injection fired at " << trace[at - 1].site;
  CrashAndReopen(m, &scheduler);
  VerifyPrefixState(m, "glob shard1 crash");
}

TEST(CrashPointsShardTest, CrashAtDecisionRecordAborts) {
  // The decision drain itself is vetoed, so the decision never becomes
  // durable: recovery must presume abort on every shard — the state is
  // exactly the pre-MultiUpdate prefix.
  ShardedMachine m = BuildMachine();
  CrashScheduler scheduler;
  InstallObserver(m, &scheduler);
  scheduler.ArmInjectionAtSite(nvm::PersistEventKind::kDrain, "shard0/log/decide-record", 1);
  RunOps(m, &scheduler);
  ASSERT_TRUE(scheduler.crashed());
  CrashAndReopen(m, &scheduler);
  EXPECT_EQ(*m.store->Read(m.keys[0]), "s1");
  EXPECT_EQ(*m.store->Read(m.keys[1]), "g0");
  EXPECT_EQ(*m.store->Read(m.keys[2]), "g0");
}

TEST(CrashPointsShardTest, CrashAfterDecisionRecordCommits) {
  // The first participant commit-record drain happens strictly after the
  // decision drained: the transaction IS committed, and recovery must roll
  // every shard forward even though two of three commit records are lost.
  ShardedMachine m = BuildMachine();
  CrashScheduler scheduler;
  InstallObserver(m, &scheduler);
  scheduler.ArmInjectionAtSite(nvm::PersistEventKind::kDrain, "shard2/log/commit-record", 1);
  RunOps(m, &scheduler);
  ASSERT_TRUE(scheduler.crashed());
  CrashAndReopen(m, &scheduler);
  EXPECT_EQ(*m.store->Read(m.keys[0]), "g1");
  EXPECT_EQ(*m.store->Read(m.keys[1]), "g1");
  EXPECT_EQ(*m.store->Read(m.keys[2]), "g1");
}

TEST(CrashPointsShardTest, SweepWholeCommitWindow) {
  // Count pass: discover every (kind, shard-qualified site, occurrence)
  // coordinate the workload produces.
  std::vector<CrashScheduler::EventRecord> trace;
  {
    ShardedMachine m = BuildMachine();
    CrashScheduler scheduler;
    InstallObserver(m, &scheduler);
    scheduler.ArmCounting();
    RunOps(m, &scheduler);
    scheduler.Disarm();
    for (auto& pool : m.pools) {
      pool->SetPersistenceObserver(nullptr);
    }
    trace = scheduler.trace();
  }
  ASSERT_FALSE(trace.empty());

  // Sweep every coordinate, strided to a bounded point count. Drains are
  // never strided past: they are the durability boundaries, so they define
  // the distinct persistent images (a vetoed flush is indistinguishable from
  // vetoing its group's drain under kDropUnflushed).
  const char* env = std::getenv("KAMINO_SHARD_SWEEP_MAX");
  const size_t max_points = env != nullptr ? static_cast<size_t>(std::stoul(env)) : 120;
  size_t flush_budget = 0;
  size_t drains = 0;
  for (const auto& rec : trace) {
    if (rec.kind == nvm::PersistEventKind::kDrain) {
      ++drains;
    }
  }
  flush_budget = max_points > drains ? max_points - drains : 0;
  const size_t flushes = trace.size() - drains;
  const size_t flush_stride =
      flush_budget == 0 ? trace.size() + 1 : std::max<size_t>(1, flushes / flush_budget);

  size_t tested = 0;
  size_t fired = 0;
  size_t flush_seen = 0;
  for (size_t k = 0; k < trace.size(); ++k) {
    const bool is_drain = trace[k].kind == nvm::PersistEventKind::kDrain;
    if (!is_drain && (flush_seen++ % flush_stride) != 0) {
      continue;
    }
    ++tested;
    if (RunInjectionAt(trace[k], "event " + std::to_string(k + 1) + " (" + trace[k].site +
                                     " occ " + std::to_string(trace[k].occurrence) + ")")) {
      ++fired;
    }
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  // Every drain coordinate must actually have fired (per-site streams are
  // deterministic); flush coordinates equally, but asserting on the total
  // keeps the failure message simple.
  EXPECT_EQ(fired, tested) << "some injection coordinates never fired: "
                              "per-site streams were not deterministic";
  RecordProperty("points_tested", static_cast<int>(tested));
  RecordProperty("total_events", static_cast<int>(trace.size()));
}

}  // namespace
}  // namespace kamino::testing
