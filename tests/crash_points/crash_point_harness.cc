#include "tests/crash_points/crash_point_harness.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "src/pds/bplus_tree.h"
#include "tests/test_util.h"

namespace kamino::testing {
namespace {

// The marker lives far above every workload key so sweeps never collide.
constexpr uint64_t kProgressKey = 1'000'000;

using Model = std::map<uint64_t, std::string>;

struct WorkloadOp {
  bool is_delete = false;
  uint64_t key = 0;
  std::string value;
};

// The fixed, deterministic workload: upserts over a 10-key space with a
// delete every fourth op (when the victim exists). Values are padded past a
// cache line so the write set spans several flush events.
std::vector<WorkloadOp> BuildWorkload(uint64_t num_ops) {
  std::vector<WorkloadOp> ops;
  ops.reserve(num_ops);
  Model scratch;
  for (uint64_t i = 0; i < num_ops; ++i) {
    WorkloadOp op;
    op.key = 1 + (i * 7) % 10;
    if (i % 4 == 3 && scratch.count(op.key) != 0) {
      op.is_delete = true;
      scratch.erase(op.key);
    } else {
      op.value = "v" + std::to_string(i) +
                 std::string(72, static_cast<char>('a' + static_cast<char>(i % 26)));
      scratch[op.key] = op.value;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

// models[j] is the expected tree content after the first j ops committed
// (progress marker included).
std::vector<Model> BuildModels(const std::vector<WorkloadOp>& ops) {
  std::vector<Model> models;
  models.reserve(ops.size() + 1);
  models.emplace_back();
  Model cur;
  for (uint64_t i = 0; i < ops.size(); ++i) {
    if (ops[i].is_delete) {
      cur.erase(ops[i].key);
    } else {
      cur[ops[i].key] = ops[i].value;
    }
    cur[kProgressKey] = std::to_string(i + 1);
    models.push_back(cur);
  }
  return models;
}

struct LiveSystem {
  test::CrashableSystem sys;
  std::unique_ptr<pds::BPlusTree> tree;
  uint64_t anchor = 0;
};

Result<LiveSystem> StartSystem(const CrashPointOptions& options) {
  LiveSystem live;
  live.sys = test::CrashableSystem::Create(options.engine, options.pool_size,
                                           /*alpha=*/0.25, options.applier_threads);
  Result<std::unique_ptr<pds::BPlusTree>> tree = pds::BPlusTree::Create(live.sys.mgr.get());
  if (!tree.ok()) {
    return tree.status();
  }
  live.tree = std::move(*tree);
  live.anchor = live.tree->anchor();
  live.sys.mgr->WaitIdle();
  return live;
}

void InstallObserver(LiveSystem& live, CrashScheduler* scheduler) {
  live.sys.main_pool->SetPersistenceObserver(scheduler);
  if (live.sys.backup_pool != nullptr) {
    live.sys.backup_pool->SetPersistenceObserver(scheduler);
  }
}

void UninstallObserver(LiveSystem& live) {
  live.sys.main_pool->SetPersistenceObserver(nullptr);
  if (live.sys.backup_pool != nullptr) {
    live.sys.backup_pool->SetPersistenceObserver(nullptr);
  }
}

// Executes ops in order, one transaction each (op + progress marker),
// waiting for the applier after every op so the event stream is serial.
// Stops at the first op boundary after the scheduler's crash point fires.
// Returns the per-op event-count boundaries: boundaries[i] = events observed
// once op i-1 is fully durable (boundaries[0] = 0).
Result<std::vector<uint64_t>> RunOps(LiveSystem& live, const std::vector<WorkloadOp>& ops,
                                     CrashScheduler* scheduler) {
  std::vector<uint64_t> boundaries;
  boundaries.push_back(0);
  for (uint64_t i = 0; i < ops.size(); ++i) {
    const WorkloadOp& op = ops[i];
    auto guard = live.tree->LockExclusive();
    Status st = live.sys.mgr->Run([&](txn::Tx& tx) -> Status {
      if (op.is_delete) {
        KAMINO_RETURN_IF_ERROR(live.tree->DeleteInTx(tx, op.key));
      } else {
        KAMINO_RETURN_IF_ERROR(live.tree->UpsertInTx(tx, op.key, op.value));
      }
      return live.tree->UpsertInTx(tx, kProgressKey, std::to_string(i + 1));
    });
    if (!st.ok()) {
      return st;
    }
    live.sys.mgr->WaitIdle();
    boundaries.push_back(scheduler->event_count());
    if (scheduler->crashed()) {
      break;  // The machine is dead; stop at the op boundary.
    }
  }
  return boundaries;
}

// "Power-cycles" the machine: volatile state dies, both pools lose unflushed
// lines, then heap + manager reattach through the recovery path. The
// scheduler is disarmed first so recovery's own persistence takes effect.
Status CrashAndRecover(LiveSystem& live, CrashScheduler* scheduler) {
  live.tree.reset();
  live.sys.mgr.reset();  // Appliers drain; their persists are still vetoed.
  live.sys.heap.reset();
  scheduler->Disarm();
  UninstallObserver(live);
  KAMINO_RETURN_IF_ERROR(live.sys.main_pool->Crash(nvm::CrashMode::kDropUnflushed));
  if (live.sys.backup_pool != nullptr) {
    KAMINO_RETURN_IF_ERROR(live.sys.backup_pool->Crash(nvm::CrashMode::kDropUnflushed));
  }
  Result<std::unique_ptr<heap::Heap>> h = heap::Heap::Attach(live.sys.main_pool.get());
  if (!h.ok()) {
    return h.status();
  }
  live.sys.heap = std::move(*h);
  Result<std::unique_ptr<txn::TxManager>> m =
      txn::TxManager::Open(live.sys.heap.get(), live.sys.options);
  if (!m.ok()) {
    return m.status();
  }
  live.sys.mgr = std::move(*m);
  return Status::Ok();
}

std::string ReplayHint(const CrashPointOptions& options, uint64_t k) {
  std::ostringstream os;
  os << " [replay: engine=" << EngineName(options.engine) << " num_ops=" << options.num_ops
     << " pool_mb=" << (options.pool_size >> 20) << " crash_ordinal=" << k;
  if (!options.suppress_site.empty()) {
    os << " suppress_site=" << options.suppress_site
       << " suppress_kind=" << nvm::PersistEventKindName(options.suppress_kind);
  }
  os << "]";
  return os.str();
}

// Runs one injection at crash point k and appends any failure to `report`.
void RunInjection(const CrashPointOptions& options, uint64_t k,
                  const std::vector<WorkloadOp>& ops, const std::vector<Model>& models,
                  const std::vector<CrashScheduler::EventRecord>& count_trace,
                  const std::vector<uint64_t>& count_boundaries, CrashPointReport* report) {
  const std::string fatal_site =
      k >= 1 && k <= count_trace.size() ? count_trace[k - 1].site : "unknown";
  auto fail = [&](const std::string& what) {
    CrashPointFailure f;
    f.crash_ordinal = k;
    f.site = fatal_site;
    f.message = what + ReplayHint(options, k);
    report->failures.push_back(std::move(f));
  };

  Result<LiveSystem> started = StartSystem(options);
  if (!started.ok()) {
    fail("system setup failed: " + started.status().ToString());
    return;
  }
  LiveSystem live = std::move(*started);
  CrashScheduler scheduler;
  InstallObserver(live, &scheduler);
  scheduler.ArmInjection(k);
  if (!options.suppress_site.empty()) {
    scheduler.SuppressSite(options.suppress_site, options.suppress_kind);
  }
  Result<std::vector<uint64_t>> run = RunOps(live, ops, &scheduler);
  if (!run.ok()) {
    scheduler.Disarm();
    UninstallObserver(live);
    fail("workload op failed before the crash point: " + run.status().ToString());
    return;
  }

  const std::vector<CrashScheduler::EventRecord> inj_trace = scheduler.trace();
  Status rec = CrashAndRecover(live, &scheduler);
  if (!rec.ok()) {
    fail("recovery failed: " + rec.ToString());
    return;
  }

  // Determinism: the pre-crash prefix must replay the count pass exactly.
  const size_t prefix = std::min<size_t>(k - 1, std::min(inj_trace.size(), count_trace.size()));
  for (size_t i = 0; i < prefix; ++i) {
    if (inj_trace[i].kind != count_trace[i].kind || inj_trace[i].site != count_trace[i].site) {
      std::ostringstream os;
      os << "nondeterministic event stream: event " << (i + 1) << " was "
         << nvm::PersistEventKindName(count_trace[i].kind) << "@" << count_trace[i].site
         << " in the count pass but " << nvm::PersistEventKindName(inj_trace[i].kind) << "@"
         << inj_trace[i].site << " in the injection run";
      fail(os.str());
      return;
    }
  }

  if (!options.check_data) {
    return;  // Weak tier: recovery + determinism only.
  }

  Result<std::unique_ptr<pds::BPlusTree>> attached =
      pds::BPlusTree::Attach(live.sys.mgr.get(), live.anchor);
  if (!attached.ok()) {
    fail("tree attach failed after recovery: " + attached.status().ToString());
    return;
  }
  std::unique_ptr<pds::BPlusTree> tree = std::move(*attached);
  Status valid = tree->Validate();
  if (!valid.ok()) {
    fail("tree invariants violated after recovery: " + valid.ToString());
    return;
  }

  // The progress marker names the committed prefix j.
  uint64_t j = 0;
  Result<std::string> marker = tree->Get(kProgressKey);
  if (marker.ok()) {
    for (char c : *marker) {
      if (c < '0' || c > '9') {
        fail("progress marker is not a number: \"" + *marker + "\"");
        return;
      }
      j = j * 10 + static_cast<uint64_t>(c - '0');
    }
  } else if (marker.status().code() != StatusCode::kNotFound) {
    fail("progress marker read failed: " + marker.status().ToString());
    return;
  }
  if (j > ops.size()) {
    fail("progress marker " + std::to_string(j) + " exceeds workload size");
    return;
  }

  // Durability: every op whose final persistence event precedes k survived.
  uint64_t ops_durable = 0;
  while (ops_durable + 1 < count_boundaries.size() && count_boundaries[ops_durable + 1] <= k - 1) {
    ++ops_durable;
  }
  if (j < ops_durable) {
    std::ostringstream os;
    os << "durability lost: op " << ops_durable << " finished persisting before the crash"
       << " but recovery reports only " << j << " ops committed";
    fail(os.str());
    return;
  }

  // Atomicity: recovered contents equal the model after op j exactly.
  const Model& expect = models[j];
  const uint64_t count = tree->CountSlow();
  if (count != expect.size()) {
    std::ostringstream os;
    os << "committed prefix mismatch: recovered tree has " << count << " keys but model after op "
       << j << " has " << expect.size();
    fail(os.str());
    return;
  }
  for (const auto& [key, value] : expect) {
    Result<std::string> got = tree->Get(key);
    if (!got.ok() || *got != value) {
      std::ostringstream os;
      os << "committed data mismatch at key " << key << " after op " << j << ": expected \""
         << value.substr(0, 16) << "...\" got "
         << (got.ok() ? "\"" + got->substr(0, 16) + "...\"" : got.status().ToString());
      fail(os.str());
      return;
    }
  }
}

}  // namespace

const char* EngineName(txn::EngineType engine) {
  switch (engine) {
    case txn::EngineType::kKaminoSimple:
      return "kamino-simple";
    case txn::EngineType::kKaminoDynamic:
      return "kamino-dynamic";
    case txn::EngineType::kUndoLog:
      return "undo";
    case txn::EngineType::kCow:
      return "cow";
    case txn::EngineType::kRedoLog:
      return "redo";
    case txn::EngineType::kNoLogging:
      return "nolog";
    case txn::EngineType::kChainReplica:
      return "chain-replica";
  }
  return "unknown";
}

std::string CrashPointReport::Summary() const {
  std::ostringstream os;
  os << "crash-point sweep: " << points_tested << "/" << total_events << " points tested, "
     << failures.size() << " failure(s)";
  for (const CrashPointFailure& f : failures) {
    os << "\n  ordinal " << f.crash_ordinal << " (" << f.site << "): " << f.message;
  }
  return os.str();
}

CrashPointReport EnumerateCrashPoints(const CrashPointOptions& options) {
  CrashPointReport report;
  const std::vector<WorkloadOp> ops = BuildWorkload(options.num_ops);
  const std::vector<Model> models = BuildModels(ops);

  // --- Count pass: discover the event space and the per-op boundaries. ------
  std::vector<CrashScheduler::EventRecord> count_trace;
  std::vector<uint64_t> count_boundaries;
  {
    Result<LiveSystem> started = StartSystem(options);
    if (!started.ok()) {
      CrashPointFailure f;
      f.message = "count pass setup failed: " + started.status().ToString();
      report.failures.push_back(std::move(f));
      return report;
    }
    LiveSystem live = std::move(*started);
    CrashScheduler scheduler;
    InstallObserver(live, &scheduler);
    scheduler.ArmCounting();
    if (!options.suppress_site.empty()) {
      scheduler.SuppressSite(options.suppress_site, options.suppress_kind);
    }
    Result<std::vector<uint64_t>> boundaries = RunOps(live, ops, &scheduler);
    scheduler.Disarm();
    UninstallObserver(live);
    if (!boundaries.ok()) {
      CrashPointFailure f;
      f.message = "count pass workload failed: " + boundaries.status().ToString();
      report.failures.push_back(std::move(f));
      return report;
    }
    count_boundaries = std::move(*boundaries);
    count_trace = scheduler.trace();
    report.total_events = scheduler.event_count();
  }
  if (report.total_events == 0) {
    CrashPointFailure f;
    f.message = "count pass observed no persistence events; hook not wired?";
    report.failures.push_back(std::move(f));
    return report;
  }

  // --- Injection sweep. -----------------------------------------------------
  for (uint64_t k = options.start; k <= report.total_events; k += options.stride) {
    if (options.max_points != 0 && report.points_tested >= options.max_points) {
      break;
    }
    ++report.points_tested;
    RunInjection(options, k, ops, models, count_trace, count_boundaries, &report);
  }
  return report;
}

}  // namespace kamino::testing
