#include "tests/crash_points/crash_point_harness.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "src/pds/bplus_tree.h"
#include "src/txn/kamino_engine.h"
#include "tests/test_util.h"

namespace kamino::testing {
namespace {

// The marker lives far above every workload key so sweeps never collide.
constexpr uint64_t kProgressKey = 1'000'000;

using Model = std::map<uint64_t, std::string>;

struct WorkloadOp {
  bool is_delete = false;
  uint64_t key = 0;
  std::string value;
};

// The fixed, deterministic workload: upserts over a 10-key space with a
// delete every fourth op (when the victim exists). Values are padded past a
// cache line so the write set spans several flush events.
std::vector<WorkloadOp> BuildWorkload(uint64_t num_ops) {
  std::vector<WorkloadOp> ops;
  ops.reserve(num_ops);
  Model scratch;
  for (uint64_t i = 0; i < num_ops; ++i) {
    WorkloadOp op;
    op.key = 1 + (i * 7) % 10;
    if (i % 4 == 3 && scratch.count(op.key) != 0) {
      op.is_delete = true;
      scratch.erase(op.key);
    } else {
      op.value = "v" + std::to_string(i) +
                 std::string(72, static_cast<char>('a' + static_cast<char>(i % 26)));
      scratch[op.key] = op.value;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

// models[j] is the expected tree content after the first j ops committed
// (progress marker included).
std::vector<Model> BuildModels(const std::vector<WorkloadOp>& ops) {
  std::vector<Model> models;
  models.reserve(ops.size() + 1);
  models.emplace_back();
  Model cur;
  for (uint64_t i = 0; i < ops.size(); ++i) {
    if (ops[i].is_delete) {
      cur.erase(ops[i].key);
    } else {
      cur[ops[i].key] = ops[i].value;
    }
    cur[kProgressKey] = std::to_string(i + 1);
    models.push_back(cur);
  }
  return models;
}

struct LiveSystem {
  test::CrashableSystem sys;
  std::unique_ptr<pds::BPlusTree> tree;
  uint64_t anchor = 0;
};

Result<LiveSystem> StartSystem(const CrashPointOptions& options) {
  LiveSystem live;
  live.sys = test::CrashableSystem::Create(options.engine, options.pool_size,
                                           /*alpha=*/0.25, options.applier_threads,
                                           options.log);
  Result<std::unique_ptr<pds::BPlusTree>> tree = pds::BPlusTree::Create(live.sys.mgr.get());
  if (!tree.ok()) {
    return tree.status();
  }
  live.tree = std::move(*tree);
  live.anchor = live.tree->anchor();
  live.sys.mgr->WaitIdle();
  return live;
}

void InstallObserver(LiveSystem& live, CrashScheduler* scheduler) {
  live.sys.main_pool->SetPersistenceObserver(scheduler);
  if (live.sys.backup_pool != nullptr) {
    live.sys.backup_pool->SetPersistenceObserver(scheduler);
  }
}

void UninstallObserver(LiveSystem& live) {
  live.sys.main_pool->SetPersistenceObserver(nullptr);
  if (live.sys.backup_pool != nullptr) {
    live.sys.backup_pool->SetPersistenceObserver(nullptr);
  }
}

// Executes ops in order, one transaction each (op + progress marker),
// waiting for the applier after every op so the event stream is serial.
// Stops at the first op boundary after the scheduler's crash point fires.
// Returns the per-op event-count boundaries: boundaries[i] = events observed
// once op i-1 is fully durable (boundaries[0] = 0).
Result<std::vector<uint64_t>> RunOps(LiveSystem& live, const std::vector<WorkloadOp>& ops,
                                     CrashScheduler* scheduler) {
  std::vector<uint64_t> boundaries;
  boundaries.push_back(0);
  for (uint64_t i = 0; i < ops.size(); ++i) {
    const WorkloadOp& op = ops[i];
    auto guard = live.tree->LockExclusive();
    Status st = live.sys.mgr->Run([&](txn::Tx& tx) -> Status {
      if (op.is_delete) {
        KAMINO_RETURN_IF_ERROR(live.tree->DeleteInTx(tx, op.key));
      } else {
        KAMINO_RETURN_IF_ERROR(live.tree->UpsertInTx(tx, op.key, op.value));
      }
      return live.tree->UpsertInTx(tx, kProgressKey, std::to_string(i + 1));
    });
    if (!st.ok()) {
      return st;
    }
    live.sys.mgr->WaitIdle();
    boundaries.push_back(scheduler->event_count());
    if (scheduler->crashed()) {
      break;  // The machine is dead; stop at the op boundary.
    }
  }
  return boundaries;
}

// "Power-cycles" the machine: volatile state dies, both pools lose unflushed
// lines, then heap + manager reattach through the recovery path. The
// scheduler is disarmed first so recovery's own persistence takes effect.
Status CrashAndRecover(LiveSystem& live, CrashScheduler* scheduler) {
  live.tree.reset();
  live.sys.mgr.reset();  // Appliers drain; their persists are still vetoed.
  live.sys.heap.reset();
  scheduler->Disarm();
  UninstallObserver(live);
  KAMINO_RETURN_IF_ERROR(live.sys.main_pool->Crash(nvm::CrashMode::kDropUnflushed));
  if (live.sys.backup_pool != nullptr) {
    KAMINO_RETURN_IF_ERROR(live.sys.backup_pool->Crash(nvm::CrashMode::kDropUnflushed));
  }
  Result<std::unique_ptr<heap::Heap>> h = heap::Heap::Attach(live.sys.main_pool.get());
  if (!h.ok()) {
    return h.status();
  }
  live.sys.heap = std::move(*h);
  Result<std::unique_ptr<txn::TxManager>> m =
      txn::TxManager::Open(live.sys.heap.get(), live.sys.options);
  if (!m.ok()) {
    return m.status();
  }
  live.sys.mgr = std::move(*m);
  return Status::Ok();
}

std::string ReplayHint(const CrashPointOptions& options, uint64_t k) {
  std::ostringstream os;
  os << " [replay: engine=" << EngineName(options.engine) << " num_ops=" << options.num_ops
     << " pool_mb=" << (options.pool_size >> 20) << " crash_ordinal=" << k;
  if (!options.suppress_site.empty()) {
    os << " suppress_site=" << options.suppress_site
       << " suppress_kind=" << nvm::PersistEventKindName(options.suppress_kind);
  }
  os << "]";
  return os.str();
}

// Runs one injection at crash point k and appends any failure to `report`.
void RunInjection(const CrashPointOptions& options, uint64_t k,
                  const std::vector<WorkloadOp>& ops, const std::vector<Model>& models,
                  const std::vector<CrashScheduler::EventRecord>& count_trace,
                  const std::vector<uint64_t>& count_boundaries, CrashPointReport* report) {
  const std::string fatal_site =
      k >= 1 && k <= count_trace.size() ? count_trace[k - 1].site : "unknown";
  auto fail = [&](const std::string& what) {
    CrashPointFailure f;
    f.crash_ordinal = k;
    f.site = fatal_site;
    f.message = what + ReplayHint(options, k);
    report->failures.push_back(std::move(f));
  };

  Result<LiveSystem> started = StartSystem(options);
  if (!started.ok()) {
    fail("system setup failed: " + started.status().ToString());
    return;
  }
  LiveSystem live = std::move(*started);
  CrashScheduler scheduler;
  InstallObserver(live, &scheduler);
  if (options.per_site) {
    const CrashScheduler::EventRecord& target = count_trace[k - 1];
    scheduler.ArmInjectionAtSite(target.kind, target.site, target.occurrence);
  } else {
    scheduler.ArmInjection(k);
  }
  if (!options.suppress_site.empty()) {
    scheduler.SuppressSite(options.suppress_site, options.suppress_kind);
  }
  Result<std::vector<uint64_t>> run = RunOps(live, ops, &scheduler);
  if (!run.ok()) {
    scheduler.Disarm();
    UninstallObserver(live);
    fail("workload op failed before the crash point: " + run.status().ToString());
    return;
  }

  const std::vector<CrashScheduler::EventRecord> inj_trace = scheduler.trace();
  const bool fired = scheduler.crashed();
  if (fired) {
    ++report->points_fired;
  }
  Status rec = CrashAndRecover(live, &scheduler);
  if (!rec.ok()) {
    fail("recovery failed: " + rec.ToString());
    return;
  }

  if (!options.per_site) {
    // Determinism: the pre-crash prefix must replay the count pass exactly.
    // (Per-site sweeps run with applier_threads > 1, where the global stream
    // legitimately interleaves differently run to run.)
    const size_t prefix =
        std::min<size_t>(k - 1, std::min(inj_trace.size(), count_trace.size()));
    for (size_t i = 0; i < prefix; ++i) {
      if (inj_trace[i].kind != count_trace[i].kind || inj_trace[i].site != count_trace[i].site) {
        std::ostringstream os;
        os << "nondeterministic event stream: event " << (i + 1) << " was "
           << nvm::PersistEventKindName(count_trace[i].kind) << "@" << count_trace[i].site
           << " in the count pass but " << nvm::PersistEventKindName(inj_trace[i].kind) << "@"
           << inj_trace[i].site << " in the injection run";
        fail(os.str());
        return;
      }
    }
  }

  if (!options.check_data) {
    return;  // Weak tier: recovery + determinism only.
  }

  Result<std::unique_ptr<pds::BPlusTree>> attached =
      pds::BPlusTree::Attach(live.sys.mgr.get(), live.anchor);
  if (!attached.ok()) {
    fail("tree attach failed after recovery: " + attached.status().ToString());
    return;
  }
  std::unique_ptr<pds::BPlusTree> tree = std::move(*attached);
  Status valid = tree->Validate();
  if (!valid.ok()) {
    fail("tree invariants violated after recovery: " + valid.ToString());
    return;
  }

  // The progress marker names the committed prefix j.
  uint64_t j = 0;
  Result<std::string> marker = tree->Get(kProgressKey);
  if (marker.ok()) {
    for (char c : *marker) {
      if (c < '0' || c > '9') {
        fail("progress marker is not a number: \"" + *marker + "\"");
        return;
      }
      j = j * 10 + static_cast<uint64_t>(c - '0');
    }
  } else if (marker.status().code() != StatusCode::kNotFound) {
    fail("progress marker read failed: " + marker.status().ToString());
    return;
  }
  if (j > ops.size()) {
    fail("progress marker " + std::to_string(j) + " exceeds workload size");
    return;
  }

  // Durability: every op whose final persistence event precedes k survived.
  // Defined over the global ordinal stream, so only checkable when the
  // injection run replays the count pass (not in per-site mode).
  if (!options.per_site) {
    uint64_t ops_durable = 0;
    while (ops_durable + 1 < count_boundaries.size() &&
           count_boundaries[ops_durable + 1] <= k - 1) {
      ++ops_durable;
    }
    if (j < ops_durable) {
      std::ostringstream os;
      os << "durability lost: op " << ops_durable << " finished persisting before the crash"
         << " but recovery reports only " << j << " ops committed";
      fail(os.str());
      return;
    }
  }

  // Atomicity: recovered contents equal the model after op j exactly.
  const Model& expect = models[j];
  const uint64_t count = tree->CountSlow();
  if (count != expect.size()) {
    std::ostringstream os;
    os << "committed prefix mismatch: recovered tree has " << count << " keys but model after op "
       << j << " has " << expect.size();
    fail(os.str());
    return;
  }
  for (const auto& [key, value] : expect) {
    Result<std::string> got = tree->Get(key);
    if (!got.ok() || *got != value) {
      std::ostringstream os;
      os << "committed data mismatch at key " << key << " after op " << j << ": expected \""
         << value.substr(0, 16) << "...\" got "
         << (got.ok() ? "\"" + got->substr(0, 16) + "...\"" : got.status().ToString());
      fail(os.str());
      return;
    }
  }
}

// --- Crash-during-recovery enumeration ---------------------------------------

// The staged recovery work that is not plain tree ops lives in standalone
// heap objects, one per transaction: Kamino holds write locks until the
// backup applier syncs, so with the applier paused any two staged
// transactions MUST have disjoint write sets (they could not both touch the
// tree's shared nodes or the progress marker). That is exactly the
// disjoint-write-set invariant parallel replay relies on (DESIGN.md §6).
constexpr uint64_t kStagedObjectSize = 128;
constexpr char kCommittedByte = 'A';   // Objects' initial committed pattern.
constexpr char kUnappliedByte = 'B';   // Committed-unapplied overwrite.

struct StagedRecovery {
  test::CrashableSystem sys;  // mgr/heap dead, pools crashed, image staged.
  uint64_t anchor = 0;
  Model expected;  // The one tree state every recovery must converge to.
  uint64_t leaked_offset = 0;  // Object a leaked in-flight tx scribbled on.
  // Objects overwritten by committed-but-unapplied transactions; recovery
  // must roll them forward to kUnappliedByte.
  std::vector<uint64_t> unapplied_offsets;
};

// Builds the staged crash image: applied ops, committed-but-unapplied ops
// (Kamino engines, behind PauseApplier), one leaked mid-write transaction,
// then a machine crash. Deterministic: same image every call.
Result<StagedRecovery> StageRecoveryWork(const RecoveryCrashOptions& options,
                                         const std::vector<WorkloadOp>& ops) {
  CrashPointOptions base;
  base.engine = options.engine;
  base.pool_size = options.pool_size;
  base.applier_threads = options.applier_threads;
  Result<LiveSystem> started = StartSystem(base);
  if (!started.ok()) {
    return started.status();
  }
  LiveSystem live = std::move(*started);

  auto run_op = [&](const WorkloadOp& op, uint64_t index) -> Status {
    auto guard = live.tree->LockExclusive();
    return live.sys.mgr->Run([&](txn::Tx& tx) -> Status {
      if (op.is_delete) {
        KAMINO_RETURN_IF_ERROR(live.tree->DeleteInTx(tx, op.key));
      } else {
        KAMINO_RETURN_IF_ERROR(live.tree->UpsertInTx(tx, op.key, op.value));
      }
      return live.tree->UpsertInTx(tx, kProgressKey, std::to_string(index + 1));
    });
  };

  for (uint64_t i = 0; i < options.num_ops && i < ops.size(); ++i) {
    KAMINO_RETURN_IF_ERROR(run_op(ops[i], i));
  }

  // Commit the standalone objects with a known pattern, fully applied.
  std::vector<uint64_t> objects;  // [0] = leaked target, rest = unapplied.
  const uint64_t num_objects = 1 + options.unapplied_ops;
  KAMINO_RETURN_IF_ERROR(live.sys.mgr->Run([&](txn::Tx& tx) -> Status {
    for (uint64_t i = 0; i < num_objects; ++i) {
      Result<uint64_t> off = tx.Alloc(kStagedObjectSize);
      if (!off.ok()) {
        return off.status();
      }
      Result<void*> p = tx.OpenWrite(*off, kStagedObjectSize);
      if (!p.ok()) {
        return p.status();
      }
      std::memset(*p, kCommittedByte, kStagedObjectSize);
      objects.push_back(*off);
    }
    return Status::Ok();
  }));
  live.sys.mgr->WaitIdle();

  // Scribble over object 0 in a transaction that dies mid-write — recovery
  // must roll it back to the committed pattern.
  {
    Result<txn::Tx> tx = live.sys.mgr->Begin();
    if (!tx.ok()) {
      return tx.status();
    }
    Result<void*> p = tx->OpenWrite(objects[0], kStagedObjectSize);
    if (!p.ok()) {
      return p.status();
    }
    std::memset(*p, 'x', kStagedObjectSize);
    if (*p == live.sys.main_pool->At(objects[0])) {
      // In-place engines: make sure the torn write actually reaches NVM, so
      // recovery has real damage to undo (a shadow write needs no flush —
      // main was never touched).
      live.sys.main_pool->Flush(*p, kStagedObjectSize);
    }
    tx->LeakForCrashTest();
  }

  // Freeze the applier (Kamino engines only — inline engines resolve
  // everything at commit) and commit the overwrite transactions: under a
  // paused applier they stay committed-but-unapplied, and recovery must roll
  // them forward. One object per transaction keeps the staged write sets
  // pairwise disjoint — which they must be, since each holds its write locks
  // until the (paused) applier syncs it.
  if (options.engine == txn::EngineType::kKaminoSimple ||
      options.engine == txn::EngineType::kKaminoDynamic) {
    static_cast<txn::KaminoEngine*>(live.sys.mgr->engine())->PauseApplier(true);
  }
  for (uint64_t i = 1; i < num_objects; ++i) {
    KAMINO_RETURN_IF_ERROR(live.sys.mgr->Run([&](txn::Tx& tx) -> Status {
      Result<void*> p = tx.OpenWrite(objects[i], kStagedObjectSize);
      if (!p.ok()) {
        return p.status();
      }
      std::memset(*p, kUnappliedByte, kStagedObjectSize);
      return Status::Ok();
    }));
  }

  StagedRecovery out;
  out.anchor = live.anchor;
  out.expected = BuildModels(ops)[std::min<uint64_t>(options.num_ops, ops.size())];
  out.leaked_offset = objects[0];
  out.unapplied_offsets.assign(objects.begin() + 1, objects.end());

  live.tree.reset();
  live.sys.mgr.reset();  // Paused appliers exit without draining their queues.
  live.sys.heap.reset();
  KAMINO_RETURN_IF_ERROR(live.sys.main_pool->Crash(nvm::CrashMode::kDropUnflushed));
  if (live.sys.backup_pool != nullptr) {
    KAMINO_RETURN_IF_ERROR(live.sys.backup_pool->Crash(nvm::CrashMode::kDropUnflushed));
  }
  out.sys = std::move(live.sys);
  return out;
}

// One full recovery of the staged image under the configured pipeline shape:
// attach, open (replay + reconcile), then drain both the reconcile workers
// and the applier pool so every recovery-owned persist lands inside the
// observed window.
Status RecoverStaged(StagedRecovery& staged, const RecoveryCrashOptions& options) {
  Result<std::unique_ptr<heap::Heap>> h = heap::Heap::Attach(staged.sys.main_pool.get());
  if (!h.ok()) {
    return h.status();
  }
  staged.sys.heap = std::move(*h);
  staged.sys.options.recovery = options.recovery;
  Result<std::unique_ptr<txn::TxManager>> m =
      txn::TxManager::Open(staged.sys.heap.get(), staged.sys.options);
  if (!m.ok()) {
    return m.status();
  }
  staged.sys.mgr = std::move(*m);
  staged.sys.mgr->WaitForRecovery();
  staged.sys.mgr->WaitIdle();
  return Status::Ok();
}

void InstallObserverOn(test::CrashableSystem& sys, CrashScheduler* scheduler) {
  sys.main_pool->SetPersistenceObserver(scheduler);
  if (sys.backup_pool != nullptr) {
    sys.backup_pool->SetPersistenceObserver(scheduler);
  }
}

// Asserts the recovered system equals the staged expectation exactly.
Status VerifyConverged(StagedRecovery& staged) {
  Result<std::unique_ptr<pds::BPlusTree>> attached =
      pds::BPlusTree::Attach(staged.sys.mgr.get(), staged.anchor);
  if (!attached.ok()) {
    return attached.status();
  }
  std::unique_ptr<pds::BPlusTree> tree = std::move(*attached);
  KAMINO_RETURN_IF_ERROR(tree->Validate());
  const uint64_t count = tree->CountSlow();
  if (count != staged.expected.size()) {
    return Status::Internal("recovered tree has " + std::to_string(count) +
                            " keys; expected " + std::to_string(staged.expected.size()));
  }
  for (const auto& [key, value] : staged.expected) {
    Result<std::string> got = tree->Get(key);
    if (!got.ok()) {
      return Status::Internal("key " + std::to_string(key) +
                              " missing after recovery: " + got.status().ToString());
    }
    if (*got != value) {
      return Status::Internal("key " + std::to_string(key) + " has wrong value after recovery");
    }
  }
  // The leaked in-flight write must be gone: its object reads the committed
  // pattern again (in-place scribbles rolled back from pre-images, shadow
  // scribbles discarded with their slot).
  const char* bytes = static_cast<const char*>(staged.sys.main_pool->At(staged.leaked_offset));
  for (uint64_t i = 0; i < kStagedObjectSize; ++i) {
    if (bytes[i] != kCommittedByte) {
      return Status::Internal("leaked in-flight write survived recovery at byte " +
                              std::to_string(i));
    }
  }
  // Every committed-but-unapplied transaction must have been rolled forward.
  for (uint64_t off : staged.unapplied_offsets) {
    const char* obj = static_cast<const char*>(staged.sys.main_pool->At(off));
    for (uint64_t i = 0; i < kStagedObjectSize; ++i) {
      if (obj[i] != kUnappliedByte) {
        return Status::Internal("committed-but-unapplied write lost at offset " +
                                std::to_string(off) + " byte " + std::to_string(i));
      }
    }
  }
  return Status::Ok();
}

std::string RecoveryReplayHint(const RecoveryCrashOptions& options, uint64_t k) {
  std::ostringstream os;
  os << " [replay: engine=" << EngineName(options.engine) << " num_ops=" << options.num_ops
     << " unapplied=" << options.unapplied_ops << " workers=" << options.recovery.workers
     << " online=" << (options.recovery.online ? 1 : 0)
     << " reconcile=" << (options.recovery.reconcile_backup ? 1 : 0)
     << " crash_ordinal=" << k << "]";
  return os.str();
}

}  // namespace

const char* EngineName(txn::EngineType engine) {
  switch (engine) {
    case txn::EngineType::kKaminoSimple:
      return "kamino-simple";
    case txn::EngineType::kKaminoDynamic:
      return "kamino-dynamic";
    case txn::EngineType::kUndoLog:
      return "undo";
    case txn::EngineType::kCow:
      return "cow";
    case txn::EngineType::kRedoLog:
      return "redo";
    case txn::EngineType::kNoLogging:
      return "nolog";
    case txn::EngineType::kChainReplica:
      return "chain-replica";
  }
  return "unknown";
}

std::string CrashPointReport::Summary() const {
  std::ostringstream os;
  os << "crash-point sweep: " << points_tested << "/" << total_events << " points tested ("
     << points_fired << " fired), " << failures.size() << " failure(s)";
  for (const CrashPointFailure& f : failures) {
    os << "\n  ordinal " << f.crash_ordinal << " (" << f.site << "): " << f.message;
  }
  return os.str();
}

CrashPointReport EnumerateCrashPoints(const CrashPointOptions& options) {
  CrashPointReport report;
  const std::vector<WorkloadOp> ops = BuildWorkload(options.num_ops);
  const std::vector<Model> models = BuildModels(ops);

  // --- Count pass: discover the event space and the per-op boundaries. ------
  std::vector<CrashScheduler::EventRecord> count_trace;
  std::vector<uint64_t> count_boundaries;
  {
    Result<LiveSystem> started = StartSystem(options);
    if (!started.ok()) {
      CrashPointFailure f;
      f.message = "count pass setup failed: " + started.status().ToString();
      report.failures.push_back(std::move(f));
      return report;
    }
    LiveSystem live = std::move(*started);
    CrashScheduler scheduler;
    InstallObserver(live, &scheduler);
    scheduler.ArmCounting();
    if (!options.suppress_site.empty()) {
      scheduler.SuppressSite(options.suppress_site, options.suppress_kind);
    }
    Result<std::vector<uint64_t>> boundaries = RunOps(live, ops, &scheduler);
    scheduler.Disarm();
    UninstallObserver(live);
    if (!boundaries.ok()) {
      CrashPointFailure f;
      f.message = "count pass workload failed: " + boundaries.status().ToString();
      report.failures.push_back(std::move(f));
      return report;
    }
    count_boundaries = std::move(*boundaries);
    count_trace = scheduler.trace();
    report.total_events = scheduler.event_count();
  }
  if (report.total_events == 0) {
    CrashPointFailure f;
    f.message = "count pass observed no persistence events; hook not wired?";
    report.failures.push_back(std::move(f));
    return report;
  }

  // --- Injection sweep. -----------------------------------------------------
  for (uint64_t k = options.start; k <= report.total_events; k += options.stride) {
    if (options.max_points != 0 && report.points_tested >= options.max_points) {
      break;
    }
    ++report.points_tested;
    RunInjection(options, k, ops, models, count_trace, count_boundaries, &report);
  }
  return report;
}

CrashPointReport EnumerateRecoveryCrashPoints(const RecoveryCrashOptions& options) {
  CrashPointReport report;
  const std::vector<WorkloadOp> ops = BuildWorkload(options.num_ops);

  auto top_fail = [&](const std::string& what) {
    CrashPointFailure f;
    f.message = what;
    report.failures.push_back(std::move(f));
  };

  // --- Count pass: discover recovery's own persistence-event space. ---------
  std::vector<CrashScheduler::EventRecord> count_trace;
  {
    Result<StagedRecovery> staged = StageRecoveryWork(options, ops);
    if (!staged.ok()) {
      top_fail("recovery staging failed: " + staged.status().ToString());
      return report;
    }
    CrashScheduler scheduler;
    InstallObserverOn(staged->sys, &scheduler);
    scheduler.ArmCounting();
    Status rec = RecoverStaged(*staged, options);
    scheduler.Disarm();
    InstallObserverOn(staged->sys, nullptr);
    if (!rec.ok()) {
      top_fail("count-pass recovery failed: " + rec.ToString());
      return report;
    }
    count_trace = scheduler.trace();
    report.total_events = scheduler.event_count();
    // The staged image must itself recover to the expected model before any
    // crash is injected — otherwise every injection failure is noise.
    Status converged = VerifyConverged(*staged);
    if (!converged.ok()) {
      top_fail("count-pass recovery did not converge: " + converged.ToString());
      return report;
    }
  }
  if (report.total_events == 0) {
    top_fail("recovery produced no persistence events; hook not wired?");
    return report;
  }

  // --- Injection sweep: kill recovery at event k, then recover cleanly. -----
  for (uint64_t k = options.start; k <= report.total_events; k += options.stride) {
    if (options.max_points != 0 && report.points_tested >= options.max_points) {
      break;
    }
    ++report.points_tested;
    const std::string fatal_site =
        k <= count_trace.size() ? count_trace[k - 1].site : "unknown";
    auto fail = [&](const std::string& what) {
      CrashPointFailure f;
      f.crash_ordinal = k;
      f.site = fatal_site;
      f.message = what + RecoveryReplayHint(options, k);
      report.failures.push_back(std::move(f));
    };

    Result<StagedRecovery> staged = StageRecoveryWork(options, ops);
    if (!staged.ok()) {
      fail("recovery staging failed: " + staged.status().ToString());
      continue;
    }
    CrashScheduler scheduler;
    InstallObserverOn(staged->sys, &scheduler);
    scheduler.ArmInjection(k);

    // Attempt #1: recovery dies at event k. An error status here is a
    // legitimate outcome — the machine lost power mid-recovery — so it is
    // recorded, not failed. Nondeterministic shapes (workers > 1, online) may
    // place ordinal k at a different logical moment than the count pass did;
    // that is still a valid power cut of *this* run.
    Status first = RecoverStaged(*staged, options);
    (void)first;
    if (scheduler.crashed()) {
      ++report.points_fired;
    }
    // The machine is dead: volatile state goes away under the armed observer
    // (shutdown-time persists are vetoed too), then both pools drop
    // unflushed lines.
    staged->sys.mgr.reset();
    staged->sys.heap.reset();
    scheduler.Disarm();
    InstallObserverOn(staged->sys, nullptr);
    Status crashed = staged->sys.main_pool->Crash(nvm::CrashMode::kDropUnflushed);
    if (crashed.ok() && staged->sys.backup_pool != nullptr) {
      crashed = staged->sys.backup_pool->Crash(nvm::CrashMode::kDropUnflushed);
    }
    if (!crashed.ok()) {
      fail("pool crash failed: " + crashed.ToString());
      continue;
    }

    // Attempt #2: a clean second recovery must succeed and converge to the
    // one expected state — crash-idempotence of every recovery persist site.
    Status second = RecoverStaged(*staged, options);
    if (!second.ok()) {
      fail("second recovery failed after crash at event " + std::to_string(k) + ": " +
           second.ToString());
      continue;
    }
    Status converged = VerifyConverged(*staged);
    if (!converged.ok()) {
      fail("recovery not idempotent: " + converged.ToString());
      continue;
    }
  }
  return report;
}

}  // namespace kamino::testing
