// Systematic crash-point enumeration (the counterpart of the randomized
// fuzz_crash_test): run a deterministic workload once to discover its
// persistence-event space, then re-run it once per event k, power-failing the
// machine exactly at event k, recovering, and checking invariants.
//
// Workload: N single-transaction operations against one persistent B+Tree.
// Every operation's transaction also upserts a progress-marker key with the
// operation's 1-based index, so the marker is atomic with the operation. The
// post-recovery marker value j therefore names the exact committed prefix,
// and atomicity demands the recovered tree equal the model after op j —
// nothing more, nothing less.
//
// Checked invariants per crash point k (strong tier; `check_data` true):
//   1. Recovery succeeds (heap attach + engine recovery).
//   2. Determinism: events 1..k-1 of the injection run carry the same
//      (kind, site) sequence as the count pass — otherwise ordinals would
//      name different moments in different runs and the sweep proves nothing.
//   3. Tree structural invariants hold (Validate()).
//   4. Atomicity: recovered contents == model state after op j.
//   5. Durability: j >= the number of operations whose final persistence
//      event precedes k (an acknowledged op may not be lost).
//
// Weak tier (`check_data` false; the NoLogging engine, which provides no
// atomicity by design): only invariants 1 and 2.
//
// Failures carry a replayable trace: engine, workload size, crash ordinal,
// and the site tag of the fatal event.

#ifndef TESTS_CRASH_POINTS_CRASH_POINT_HARNESS_H_
#define TESTS_CRASH_POINTS_CRASH_POINT_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/txn/engine.h"
#include "tests/crash_points/crash_scheduler.h"

namespace kamino::testing {

struct CrashPointOptions {
  txn::EngineType engine = txn::EngineType::kKaminoSimple;

  // Number of workload operations. Keep small: the sweep runs one full
  // system lifecycle per persistence event.
  uint64_t num_ops = 6;

  // Sweep every `stride`-th crash point starting at `start` (budgeted mode
  // for CI smoke runs; stride 1 = full enumeration).
  uint64_t start = 1;
  uint64_t stride = 1;
  // Upper bound on injection runs; 0 = unlimited.
  uint64_t max_points = 0;

  uint64_t pool_size = 24ull << 20;
  // With the default global-ordinal coordinates, >1 breaks event-stream
  // determinism; set `per_site` to sweep multi-applier configurations.
  int applier_threads = 1;

  // Commit-path shape under test (epoch_commit, legacy_fences,
  // group_commit_window_ns). The default reproduces the PR 4 schedule. A
  // solo committer in epoch mode elects itself leader deterministically, so
  // global-ordinal sweeps stay valid with epoch_commit on.
  txn::LogOptions log;

  // Per-site crash coordinates: injection point k crashes at the
  // (kind, site, occurrence) triple of count-pass event k instead of at
  // global ordinal k. Per-site occurrence streams stay meaningful when
  // multiple applier threads interleave unrelated sites nondeterministically,
  // so this unlocks applier_threads > 1 sweeps. The determinism and
  // durability invariants (which are defined over the global ordinal stream)
  // are skipped; recovery, structural and atomicity invariants still hold.
  // A coordinate that never fires in its injection run (a benign interleave
  // gave that site fewer events) is recorded as not fired, not a failure.
  bool per_site = false;

  // Weak tier: skip tree attach / data checks after recovery.
  bool check_data = true;

  // Deliberately-broken variant: veto every event of `suppress_kind` tagged
  // with `suppress_site`, modeling an engine missing that persistence
  // barrier. Empty = disabled.
  std::string suppress_site;
  nvm::PersistEventKind suppress_kind = nvm::PersistEventKind::kFlush;
};

struct CrashPointFailure {
  uint64_t crash_ordinal = 0;
  std::string site;     // Site tag of the fatal event (from the count pass).
  std::string message;  // Diagnosis + replay instructions.
};

struct CrashPointReport {
  uint64_t total_events = 0;   // Size of the event space (count pass).
  uint64_t points_tested = 0;  // Injection runs actually performed.
  uint64_t points_fired = 0;   // Runs where the crash point actually hit.
  std::vector<CrashPointFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

// Runs the count pass + injection sweep described above.
CrashPointReport EnumerateCrashPoints(const CrashPointOptions& options);

// --- Crash-during-recovery enumeration (DESIGN.md §10) -----------------------
//
// Stages a crashed system with real recovery work pending — committed-and-
// applied transactions, committed-but-unapplied ones (Kamino engines, via
// PauseApplier), and one in-flight transaction leaked mid-write — then
// enumerates power failures *inside recovery itself*: a count pass over
// Attach + Open + WaitForRecovery + WaitIdle discovers recovery's own
// persistence-event space, and each injection run kills the machine at
// event k of a fresh recovery, recovers again cleanly, and asserts the
// second recovery converges to the exact same state (progress markers, tree
// contents, structural invariants). This is the crash-idempotence contract:
// every persist site reached during recovery ("engine/recover/*",
// "backup/reconcile/*", and the log/backup sites recovery calls into) must
// be safe to lose.
struct RecoveryCrashOptions {
  txn::EngineType engine = txn::EngineType::kKaminoSimple;

  // Staged work: `num_ops` fully applied ops, then `unapplied_ops` committed
  // ops frozen before the applier ran (Kamino engines only — inline engines
  // have no committed-unapplied window), then one leaked running
  // transaction.
  uint64_t num_ops = 4;
  uint64_t unapplied_ops = 2;

  uint64_t pool_size = 24ull << 20;
  int applier_threads = 1;

  // Recovery pipeline shape under test (workers, online, reconcile_backup).
  // Nondeterministic shapes (workers > 1, online) are still sound to sweep:
  // an ordinal-k power cut is a legitimate crash of *that* run, and the
  // invariant checked is convergence, not event-stream equality.
  txn::RecoveryOptions recovery;

  // Sweep budget, as in CrashPointOptions.
  uint64_t start = 1;
  uint64_t stride = 1;
  uint64_t max_points = 0;
};

CrashPointReport EnumerateRecoveryCrashPoints(const RecoveryCrashOptions& options);

const char* EngineName(txn::EngineType engine);

}  // namespace kamino::testing

#endif  // TESTS_CRASH_POINTS_CRASH_POINT_HARNESS_H_
