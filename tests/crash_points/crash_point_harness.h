// Systematic crash-point enumeration (the counterpart of the randomized
// fuzz_crash_test): run a deterministic workload once to discover its
// persistence-event space, then re-run it once per event k, power-failing the
// machine exactly at event k, recovering, and checking invariants.
//
// Workload: N single-transaction operations against one persistent B+Tree.
// Every operation's transaction also upserts a progress-marker key with the
// operation's 1-based index, so the marker is atomic with the operation. The
// post-recovery marker value j therefore names the exact committed prefix,
// and atomicity demands the recovered tree equal the model after op j —
// nothing more, nothing less.
//
// Checked invariants per crash point k (strong tier; `check_data` true):
//   1. Recovery succeeds (heap attach + engine recovery).
//   2. Determinism: events 1..k-1 of the injection run carry the same
//      (kind, site) sequence as the count pass — otherwise ordinals would
//      name different moments in different runs and the sweep proves nothing.
//   3. Tree structural invariants hold (Validate()).
//   4. Atomicity: recovered contents == model state after op j.
//   5. Durability: j >= the number of operations whose final persistence
//      event precedes k (an acknowledged op may not be lost).
//
// Weak tier (`check_data` false; the NoLogging engine, which provides no
// atomicity by design): only invariants 1 and 2.
//
// Failures carry a replayable trace: engine, workload size, crash ordinal,
// and the site tag of the fatal event.

#ifndef TESTS_CRASH_POINTS_CRASH_POINT_HARNESS_H_
#define TESTS_CRASH_POINTS_CRASH_POINT_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/txn/engine.h"
#include "tests/crash_points/crash_scheduler.h"

namespace kamino::testing {

struct CrashPointOptions {
  txn::EngineType engine = txn::EngineType::kKaminoSimple;

  // Number of workload operations. Keep small: the sweep runs one full
  // system lifecycle per persistence event.
  uint64_t num_ops = 6;

  // Sweep every `stride`-th crash point starting at `start` (budgeted mode
  // for CI smoke runs; stride 1 = full enumeration).
  uint64_t start = 1;
  uint64_t stride = 1;
  // Upper bound on injection runs; 0 = unlimited.
  uint64_t max_points = 0;

  uint64_t pool_size = 24ull << 20;
  int applier_threads = 1;  // >1 breaks event-stream determinism.

  // Weak tier: skip tree attach / data checks after recovery.
  bool check_data = true;

  // Deliberately-broken variant: veto every event of `suppress_kind` tagged
  // with `suppress_site`, modeling an engine missing that persistence
  // barrier. Empty = disabled.
  std::string suppress_site;
  nvm::PersistEventKind suppress_kind = nvm::PersistEventKind::kFlush;
};

struct CrashPointFailure {
  uint64_t crash_ordinal = 0;
  std::string site;     // Site tag of the fatal event (from the count pass).
  std::string message;  // Diagnosis + replay instructions.
};

struct CrashPointReport {
  uint64_t total_events = 0;   // Size of the event space (count pass).
  uint64_t points_tested = 0;  // Injection runs actually performed.
  std::vector<CrashPointFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

// Runs the count pass + injection sweep described above.
CrashPointReport EnumerateCrashPoints(const CrashPointOptions& options);

const char* EngineName(txn::EngineType engine);

}  // namespace kamino::testing

#endif  // TESTS_CRASH_POINTS_CRASH_POINT_HARNESS_H_
