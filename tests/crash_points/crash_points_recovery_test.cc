// Crash-during-recovery enumeration (DESIGN.md §10): recovery itself is a
// sequence of persistence events ("engine/recover/*", "backup/reconcile/*",
// and the log/backup sites it calls into), and a machine can lose power at
// any of them. Each sweep stages real recovery work (applied ops, committed-
// but-unapplied ops, one leaked in-flight transaction), kills a fresh
// recovery at event k, recovers again cleanly, and asserts the second
// recovery converges to the exact same state — the crash-idempotence
// contract of ISSUE satellite 4, across all five engines and across the new
// recovery pipeline shapes (parallel replay, online backup reconciliation).
//
// KAMINO_CRASH_POINT_STRIDE=N (env) tests every N-th crash point instead of
// all of them — the CI smoke mode. Default is full enumeration.

#include <gtest/gtest.h>

#include <cstdlib>

#include "tests/crash_points/crash_point_harness.h"

namespace kamino::testing {
namespace {

uint64_t StrideFromEnv() {
  const char* s = std::getenv("KAMINO_CRASH_POINT_STRIDE");
  if (s == nullptr) {
    return 1;
  }
  const long v = std::atol(s);
  return v > 1 ? static_cast<uint64_t>(v) : 1;
}

class RecoveryCrashEnumTest : public ::testing::TestWithParam<txn::EngineType> {};

// Baseline shape: offline recovery, one replay worker — the classic
// single-threaded recovery event stream every engine supports.
TEST_P(RecoveryCrashEnumTest, CrashAtEveryRecoveryEventConverges) {
  RecoveryCrashOptions options;
  options.engine = GetParam();
  options.stride = StrideFromEnv();
  CrashPointReport report = EnumerateRecoveryCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_GT(report.points_tested, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Engines, RecoveryCrashEnumTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic,
                                           txn::EngineType::kUndoLog, txn::EngineType::kCow,
                                           txn::EngineType::kRedoLog),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           switch (info.param) {
                             case txn::EngineType::kKaminoSimple:
                               return "KaminoSimple";
                             case txn::EngineType::kKaminoDynamic:
                               return "KaminoDynamic";
                             case txn::EngineType::kUndoLog:
                               return "UndoLog";
                             case txn::EngineType::kCow:
                               return "Cow";
                             case txn::EngineType::kRedoLog:
                               return "RedoLog";
                             default:
                               return "Unknown";
                           }
                         });

// Parallel replay: four workers partitioned by lock stripe. The ordinal-k
// power cut lands at a nondeterministic logical moment run to run, but every
// cut of every run must still converge.
TEST(RecoveryCrashShapes, ParallelReplayConvergesAtEveryCut) {
  RecoveryCrashOptions options;
  options.engine = txn::EngineType::kKaminoSimple;
  options.unapplied_ops = 4;  // More roll-forward work to spread over workers.
  options.recovery.workers = 4;
  options.stride = StrideFromEnv();
  CrashPointReport report = EnumerateRecoveryCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Offline backup reconciliation: the full-mirror engine re-copies every
// allocated chunk main→backup before opening, persisting the reconcile
// cursor ("engine/recover/cursor") as it goes. A crash between any two
// cursor advances must resume or restart reconciliation harmlessly.
TEST(RecoveryCrashShapes, OfflineReconcileConvergesAtEveryCut) {
  RecoveryCrashOptions options;
  options.engine = txn::EngineType::kKaminoSimple;
  options.recovery.reconcile_backup = true;
  options.stride = StrideFromEnv();
  CrashPointReport report = EnumerateRecoveryCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Online recovery: the engine opens right after replay while background
// reconcilers drain the dirty map ("backup/reconcile/*"). The sweep's
// recovery window spans WaitForRecovery, so reconcile-worker persists are in
// the enumerated space; cuts inside them must also converge.
TEST(RecoveryCrashShapes, OnlineReconcileConvergesAtEveryCut) {
  RecoveryCrashOptions options;
  options.engine = txn::EngineType::kKaminoSimple;
  options.recovery.online = true;
  options.recovery.reconcile_backup = true;
  options.recovery.workers = 2;
  options.recovery.reconcile_workers = 2;
  options.stride = StrideFromEnv();
  CrashPointReport report = EnumerateRecoveryCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Online recovery for the dynamic-backup engine: no mirror to reconcile
// (reconcile_backup stays false — DynamicBackupStore copies are made on
// demand), but handed-off roll-forward work drains through the applier after
// the engine opens.
TEST(RecoveryCrashShapes, DynamicOnlineConvergesAtEveryCut) {
  RecoveryCrashOptions options;
  options.engine = txn::EngineType::kKaminoDynamic;
  options.recovery.online = true;
  options.recovery.workers = 2;
  options.stride = StrideFromEnv();
  CrashPointReport report = EnumerateRecoveryCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace kamino::testing
