// Crash-point sweep over the chain head (paper §5.2): power-fail the head at
// a strided set of persistence events, fail-stop it, and require that every
// operation the tail acknowledged survives the promotion — for every crash
// point, not just hand-picked ones.
//
// The observer is installed on the head's pools only (main + backup): the
// experiment is a head machine losing power, not a cluster-wide outage. The
// head keeps executing volatile after the injection point — exactly a CPU
// outliving its NVDIMM — so the tail keeps acknowledging; those acks are the
// durability obligation the surviving replicas must honor.
//
// Unlike the single-machine sweep, no event-stream determinism is asserted:
// network threads interleave, so ordinals name slightly different moments per
// run. Each run's check is self-contained (acked ops vs recovered chain), so
// that nondeterminism costs coverage precision, not soundness.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/chain/chain.h"
#include "tests/crash_points/crash_scheduler.h"

namespace kamino::testing {
namespace {

chain::ChainOptions Opts() {
  chain::ChainOptions o;
  o.kamino = true;
  o.f = 1;  // Three replicas: head + middle + tail.
  o.pool_size = 24ull << 20;
  o.log_region_size = 4ull << 20;
  o.one_way_latency_us = 5;
  o.client_timeout_ms = 5'000;
  return o;
}

void InstallOnHead(chain::Chain* chain, nvm::PersistenceObserver* obs) {
  chain::Replica* head = chain->head();
  ASSERT_NE(head, nullptr);
  ASSERT_NE(head->pool(), nullptr);
  head->pool()->SetPersistenceObserver(obs);
  if (head->backup_pool() != nullptr) {
    head->backup_pool()->SetPersistenceObserver(obs);
  }
}

void UninstallFromHead(chain::Chain* chain, uint64_t head_id) {
  chain::Replica* head = chain->replica_by_id(head_id);
  ASSERT_NE(head, nullptr);
  head->pool()->SetPersistenceObserver(nullptr);
  if (head->backup_pool() != nullptr) {
    head->backup_pool()->SetPersistenceObserver(nullptr);
  }
}

void ExpectConverged(chain::Chain* chain, const std::map<uint64_t, std::string>& expect) {
  ASSERT_TRUE(chain->Quiesce().ok());
  for (uint64_t id : chain->current_view().nodes) {
    chain::Replica* r = chain->replica_by_id(id);
    ASSERT_NE(r, nullptr);
    ASSERT_TRUE(r->tree()->Validate().ok()) << "replica " << id;
    EXPECT_EQ(r->tree()->CountSlow(), expect.size()) << "replica " << id;
    for (const auto& [k, v] : expect) {
      EXPECT_EQ(r->tree()->Get(k).value(), v) << "replica " << id << " key " << k;
    }
  }
}

constexpr uint64_t kNumOps = 8;

// Runs the workload, quiescing after every op so head persistence events
// settle at op boundaries. Stops early once the scheduler has fired. Returns
// the model of every acknowledged op.
std::map<uint64_t, std::string> RunWorkload(chain::Chain* chain, CrashScheduler* sched) {
  std::map<uint64_t, std::string> model;
  for (uint64_t i = 0; i < kNumOps; ++i) {
    const uint64_t key = 1 + (i * 7) % 5;
    const std::string value = "op-" + std::to_string(i);
    EXPECT_TRUE(chain->Upsert(key, value).ok()) << "op " << i;
    model[key] = value;
    EXPECT_TRUE(chain->Quiesce().ok());
    if (sched->crashed()) {
      break;
    }
  }
  return model;
}

TEST(CrashPointChain, HeadPowerFailureAtEveryStridedPointSurvivesPromotion) {
  CrashScheduler scheduler;

  // Count pass: discover the head's persistence-event space for this workload.
  uint64_t total_events = 0;
  {
    auto chain = chain::Chain::Create(Opts()).value();
    InstallOnHead(chain.get(), &scheduler);
    scheduler.ArmCounting();
    RunWorkload(chain.get(), &scheduler);
    scheduler.Disarm();
    total_events = scheduler.event_count();
    UninstallFromHead(chain.get(), chain->current_view().head());
  }
  ASSERT_GT(total_events, 0u) << "persistence hook not wired into head pools?";

  // Sweep ~5 points spread across the event space (promotion resyncs the new
  // head's backup, which is expensive on the crash-sim pool — keep it small).
  const uint64_t kPoints = 5;
  const uint64_t stride = total_events / kPoints > 0 ? total_events / kPoints : 1;
  for (uint64_t k = 1; k <= total_events; k += stride) {
    SCOPED_TRACE("crash_ordinal=" + std::to_string(k) + " of " + std::to_string(total_events));
    auto chain = chain::Chain::Create(Opts()).value();
    const uint64_t head_id = chain->current_view().head();
    InstallOnHead(chain.get(), &scheduler);
    scheduler.ArmInjection(k);

    std::map<uint64_t, std::string> model = RunWorkload(chain.get(), &scheduler);

    // Power is gone at the head; fail-stop it and let the chain promote.
    scheduler.Disarm();
    UninstallFromHead(chain.get(), head_id);
    ASSERT_TRUE(chain->KillReplica(head_id).ok());

    // Every tail-acknowledged op must have survived the head's power loss.
    ExpectConverged(chain.get(), model);

    // The promoted chain must still accept writes.
    ASSERT_TRUE(chain->Upsert(100, "post-promotion").ok());
    model[100] = "post-promotion";
    ExpectConverged(chain.get(), model);
  }
}

}  // namespace
}  // namespace kamino::testing
