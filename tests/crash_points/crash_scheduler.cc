#include "tests/crash_points/crash_scheduler.h"

namespace kamino::testing {

void CrashScheduler::ArmCounting() {
  std::lock_guard<std::mutex> lk(mu_);
  mode_ = Mode::kCounting;
  next_ordinal_ = 0;
  crash_at_ = 0;
  crashed_ = false;
  suppress_enabled_ = false;
  trace_.clear();
}

void CrashScheduler::ArmInjection(uint64_t crash_at) {
  std::lock_guard<std::mutex> lk(mu_);
  mode_ = Mode::kInjection;
  next_ordinal_ = 0;
  crash_at_ = crash_at;
  crashed_ = false;
  suppress_enabled_ = false;
  trace_.clear();
}

void CrashScheduler::SuppressSite(std::string site, nvm::PersistEventKind kind) {
  std::lock_guard<std::mutex> lk(mu_);
  suppress_site_ = std::move(site);
  suppress_kind_ = kind;
  suppress_enabled_ = true;
}

void CrashScheduler::Disarm() {
  std::lock_guard<std::mutex> lk(mu_);
  mode_ = Mode::kDisarmed;
  crash_at_ = 0;
  suppress_enabled_ = false;
}

bool CrashScheduler::OnPersistEvent(const nvm::PersistEvent& event) {
  std::lock_guard<std::mutex> lk(mu_);
  if (mode_ == Mode::kDisarmed) {
    return true;
  }
  const uint64_t ordinal = ++next_ordinal_;
  EventRecord rec;
  rec.kind = event.kind;
  rec.site = event.site;

  bool allow = true;
  if (mode_ == Mode::kInjection && crash_at_ != 0 && ordinal >= crash_at_) {
    // The machine lost power at event crash_at_; nothing after it persists.
    crashed_ = true;
    allow = false;
  }
  if (allow && suppress_enabled_ && event.kind == suppress_kind_ &&
      suppress_site_ == event.site) {
    allow = false;
  }
  rec.suppressed = !allow;
  trace_.push_back(std::move(rec));
  return allow;
}

uint64_t CrashScheduler::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_ordinal_;
}

bool CrashScheduler::crashed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return crashed_;
}

std::vector<CrashScheduler::EventRecord> CrashScheduler::trace() const {
  std::lock_guard<std::mutex> lk(mu_);
  return trace_;
}

}  // namespace kamino::testing
