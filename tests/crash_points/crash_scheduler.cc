#include "tests/crash_points/crash_scheduler.h"

namespace kamino::testing {

namespace {

// Glob match where '*' matches any (possibly empty) substring; every other
// character matches literally. Iterative with single-star backtracking.
bool SiteMatches(const std::string& pattern, const std::string& site) {
  const char* pat = pattern.c_str();
  const char* str = site.c_str();
  const char* star = nullptr;
  const char* backtrack = nullptr;
  while (*str != '\0') {
    if (*pat == *str) {
      ++pat;
      ++str;
    } else if (*pat == '*') {
      star = pat++;
      backtrack = str;
    } else if (star != nullptr) {
      pat = star + 1;
      str = ++backtrack;
    } else {
      return false;
    }
  }
  while (*pat == '*') {
    ++pat;
  }
  return *pat == '\0';
}

}  // namespace

void CrashScheduler::ResetLocked() {
  next_ordinal_ = 0;
  crash_at_ = 0;
  crashed_ = false;
  crashed_at_ordinal_ = 0;
  crash_site_.clear();
  crash_site_occurrence_ = 0;
  crash_site_matches_ = 0;
  occurrences_.clear();
  suppress_enabled_ = false;
  trace_.clear();
}

void CrashScheduler::ArmCounting() {
  std::lock_guard<std::mutex> lk(mu_);
  mode_ = Mode::kCounting;
  ResetLocked();
}

void CrashScheduler::ArmInjection(uint64_t crash_at) {
  std::lock_guard<std::mutex> lk(mu_);
  mode_ = Mode::kInjection;
  ResetLocked();
  crash_at_ = crash_at;
}

void CrashScheduler::ArmInjectionAtSite(nvm::PersistEventKind kind, std::string site,
                                        uint64_t occurrence) {
  std::lock_guard<std::mutex> lk(mu_);
  mode_ = Mode::kInjection;
  ResetLocked();
  crash_site_kind_ = kind;
  crash_site_ = std::move(site);
  crash_site_occurrence_ = occurrence;
}

void CrashScheduler::SuppressSite(std::string site, nvm::PersistEventKind kind) {
  std::lock_guard<std::mutex> lk(mu_);
  suppress_site_ = std::move(site);
  suppress_kind_ = kind;
  suppress_enabled_ = true;
}

void CrashScheduler::Disarm() {
  std::lock_guard<std::mutex> lk(mu_);
  mode_ = Mode::kDisarmed;
  crash_at_ = 0;
  crash_site_.clear();
  crash_site_occurrence_ = 0;
  crash_site_matches_ = 0;
  suppress_enabled_ = false;
}

bool CrashScheduler::OnPersistEvent(const nvm::PersistEvent& event) {
  std::lock_guard<std::mutex> lk(mu_);
  if (mode_ == Mode::kDisarmed) {
    return true;
  }
  const uint64_t ordinal = ++next_ordinal_;
  EventRecord rec;
  rec.kind = event.kind;
  // Record the shard-qualified site: pools carrying a site_prefix attribute
  // their events per shard, so coordinates and traces distinguish
  // "shard0/log/commit-record" from "shard1/log/commit-record".
  if (event.shard != nullptr && event.shard[0] != '\0') {
    rec.site.reserve(std::char_traits<char>::length(event.shard) + 1 +
                     std::char_traits<char>::length(event.site));
    rec.site.append(event.shard);
    rec.site.push_back('/');
    rec.site.append(event.site);
  } else {
    rec.site = event.site;
  }
  rec.occurrence = ++occurrences_[{static_cast<int>(event.kind), rec.site}];

  bool allow = true;
  if (mode_ == Mode::kInjection) {
    if (!crashed_) {
      bool site_hit = false;
      if (!crash_site_.empty() && event.kind == crash_site_kind_ &&
          SiteMatches(crash_site_, rec.site)) {
        site_hit = ++crash_site_matches_ >= crash_site_occurrence_;
      }
      if ((crash_at_ != 0 && ordinal >= crash_at_) || site_hit) {
        crashed_ = true;
        crashed_at_ordinal_ = ordinal;
      }
    }
    // The machine lost power at the injection point; nothing after persists.
    if (crashed_) {
      allow = false;
    }
  }
  if (allow && suppress_enabled_ && event.kind == suppress_kind_ &&
      SiteMatches(suppress_site_, rec.site)) {
    allow = false;
  }
  rec.suppressed = !allow;
  trace_.push_back(std::move(rec));
  return allow;
}

uint64_t CrashScheduler::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_ordinal_;
}

bool CrashScheduler::crashed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return crashed_;
}

uint64_t CrashScheduler::crashed_at_ordinal() const {
  std::lock_guard<std::mutex> lk(mu_);
  return crashed_at_ordinal_;
}

std::vector<CrashScheduler::EventRecord> CrashScheduler::trace() const {
  std::lock_guard<std::mutex> lk(mu_);
  return trace_;
}

}  // namespace kamino::testing
