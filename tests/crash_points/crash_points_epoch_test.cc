// Crash-point enumeration over the epoch/persist-behind commit pipeline
// (LogOptions::epoch_commit, DESIGN.md §8): the ack-vs-persist window adds
// new persistence shapes — intent appends riding the shared epoch drain,
// CRC-checked commit records that flush without draining, and the covering
// "log/epoch-drain" itself — and every one of those moments must be a safe
// place to lose power.
//
// The harness's workload acknowledges each operation synchronously (a commit
// with no ack pointer waits on its epoch ticket), so the durability invariant
// means exactly the PR 8 acceptance sentence: an acknowledged commit survives
// every power-fail point. Atomicity at every point means a transaction caught
// inside the window (commit record staged but epoch not drained) either
// rolls forward whole — the CRC over the main heap matches — or rolls back
// whole; it never half-applies.
//
// KAMINO_CRASH_POINT_STRIDE=N (env) tests every N-th crash point, as in
// crash_points_test.cc.

#include <gtest/gtest.h>

#include <cstdlib>

#include "tests/crash_points/crash_point_harness.h"

namespace kamino::testing {
namespace {

uint64_t StrideFromEnv() {
  const char* s = std::getenv("KAMINO_CRASH_POINT_STRIDE");
  if (s == nullptr) {
    return 1;
  }
  const long v = std::atol(s);
  return v > 1 ? static_cast<uint64_t>(v) : 1;
}

class EpochCrashPointTest : public ::testing::TestWithParam<txn::EngineType> {};

// A solo committer in epoch mode elects itself epoch leader deterministically,
// so the global-ordinal sweep (with its event-stream determinism invariant)
// stays valid with the pipeline on.
TEST_P(EpochCrashPointTest, EveryCrashPointRecoversConsistently) {
  CrashPointOptions options;
  options.engine = GetParam();
  options.num_ops = 6;
  options.stride = StrideFromEnv();
  options.log.epoch_commit = true;
  CrashPointReport report = EnumerateCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_GT(report.points_tested, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Engines, EpochCrashPointTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           return info.param == txn::EngineType::kKaminoSimple
                                      ? "KaminoSimple"
                                      : "KaminoDynamic";
                         });

// Multi-applier epoch sweep under per-site coordinates: durability-gated
// applier handoff (commits reach the shards only through their epoch's
// durability callback) must hold up when two appliers interleave the
// release-slot and backup traffic nondeterministically.
TEST(EpochCrashPointPerSite, MultiApplierSweepRecoversAtEveryCoordinate) {
  CrashPointOptions options;
  options.engine = txn::EngineType::kKaminoSimple;
  options.num_ops = 6;
  options.applier_threads = 2;
  options.per_site = true;
  options.stride = StrideFromEnv();
  options.log.epoch_commit = true;
  CrashPointReport report = EnumerateCrashPoints(options);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_GT(report.points_fired, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Negative control: the covering epoch drain is the only barrier between an
// acknowledgement and lost state. Suppress every drain at "log/epoch-drain"
// (as if the sequencer forgot its barrier) and the sweep must fail with
// replayable traces. The first invariant to trip varies by ordinal — with
// the covering drain gone, post-commit work (slot release, applier
// roll-forward) runs against log state that a crash then rewinds, which
// recovery surfaces as corruption or atomicity/durability violations — but
// every caught point must name its crash ordinal and replay line.
TEST(EpochCrashPointDetection, MissingEpochDrainIsCaughtWithReplayableTrace) {
  CrashPointOptions options;
  options.engine = txn::EngineType::kKaminoSimple;
  options.num_ops = 4;
  options.log.epoch_commit = true;
  options.suppress_site = "log/epoch-drain";
  options.suppress_kind = nvm::PersistEventKind::kDrain;
  CrashPointReport report = EnumerateCrashPoints(options);
  ASSERT_FALSE(report.ok()) << "suppressed epoch drain passed the sweep: "
                            << report.Summary();
  for (const CrashPointFailure& f : report.failures) {
    EXPECT_NE(f.message.find("replay:"), std::string::npos) << f.message;
    EXPECT_GT(f.crash_ordinal, 0u);
  }
}

}  // namespace
}  // namespace kamino::testing
