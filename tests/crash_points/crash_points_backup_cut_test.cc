// Crash-point sweep over the backup-epoch stamp ("backup/cut", DESIGN.md
// §12): a power failure at every persistence event of the stamp site — and
// at every other durability boundary of a stamped workload — must leave a
// recovered store whose snapshot reads are still transaction-consistent.
//
// The invariant swept here is the safe-floor contract of the durable stamp:
// the stamp is persisted strictly AFTER the log slots of the counted
// transactions are released, so a crash can only lose stamp increments,
// never manufacture them. Concretely, with a single key updated by
// sequential transactions v1..vN, the recovered machine must satisfy
//
//     (recovered durable stamp - setup stamp)  <=  j
//
// where v_j is the committed value recovery converged to — i.e. the store
// never claims a cut epoch ahead of the transactions it actually retained.
// And once recovery is idle, a snapshot read must equal the main-path read
// (the re-seeded cut epoch covers every re-applied transaction).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/pds/bplus_tree.h"
#include "src/txn/kamino_engine.h"
#include "tests/crash_points/crash_scheduler.h"
#include "tests/test_util.h"

namespace kamino::testing {
namespace {

constexpr uint64_t kKey = 1;
constexpr uint64_t kOps = 8;

std::string Value(uint64_t i) {
  std::string v = "v" + std::to_string(i);
  v.resize(80, '.');
  return v;
}

// Recovers the committed-prefix index j from the value v_j found on the key.
uint64_t IndexOfValue(const std::string& v) {
  return std::stoull(v.substr(1, v.find('.') - 1));
}

struct Machine {
  test::CrashableSystem sys;
  std::unique_ptr<pds::BPlusTree> tree;
  uint64_t anchor = 0;
  uint64_t setup_epoch = 0;  // Durable stamp once setup is idle.
};

Machine Build(txn::EngineType engine) {
  Machine m;
  m.sys = test::CrashableSystem::Create(engine, 24ull << 20, /*alpha=*/0.25,
                                        /*applier_threads=*/1);
  m.tree = std::move(pds::BPlusTree::Create(m.sys.mgr.get()).value());
  m.anchor = m.tree->anchor();
  {
    auto guard = m.tree->LockExclusive();
    EXPECT_TRUE(m.sys.mgr
                    ->Run([&](txn::Tx& tx) -> Status {
                      return m.tree->UpsertInTx(tx, kKey, Value(0));
                    })
                    .ok());
  }
  m.sys.mgr->WaitIdle();
  m.setup_epoch = m.sys.mgr->engine()->stats().backup_epoch;
  return m;
}

void InstallObserver(Machine& m, CrashScheduler* scheduler) {
  m.sys.main_pool->SetPersistenceObserver(scheduler);
  if (m.sys.backup_pool != nullptr) {
    m.sys.backup_pool->SetPersistenceObserver(scheduler);
  }
}

// Sequential committed updates v1..vN on one key, each fully drained before
// the next, so apply order equals commit order and the value index IS the
// per-key transaction count. Stops at the op boundary after the crash fires.
void RunOps(Machine& m, CrashScheduler* scheduler) {
  for (uint64_t i = 1; i <= kOps; ++i) {
    auto guard = m.tree->LockExclusive();
    ASSERT_TRUE(m.sys.mgr
                    ->Run([&](txn::Tx& tx) -> Status {
                      return m.tree->UpsertInTx(tx, kKey, Value(i));
                    })
                    .ok());
    guard.unlock();
    m.sys.mgr->WaitIdle();
    if (scheduler->crashed()) {
      break;
    }
  }
}

void CrashAndRecover(Machine& m, CrashScheduler* scheduler) {
  m.tree.reset();
  m.sys.mgr.reset();
  m.sys.heap.reset();
  scheduler->Disarm();
  m.sys.main_pool->SetPersistenceObserver(nullptr);
  if (m.sys.backup_pool != nullptr) {
    m.sys.backup_pool->SetPersistenceObserver(nullptr);
    ASSERT_TRUE(m.sys.backup_pool->Crash(nvm::CrashMode::kDropUnflushed).ok());
  }
  ASSERT_TRUE(m.sys.main_pool->Crash(nvm::CrashMode::kDropUnflushed).ok());
  m.sys.heap = std::move(heap::Heap::Attach(m.sys.main_pool.get()).value());
  Result<std::unique_ptr<txn::TxManager>> mgr =
      txn::TxManager::Open(m.sys.heap.get(), m.sys.options);
  ASSERT_TRUE(mgr.ok()) << mgr.status().message();
  m.sys.mgr = std::move(*mgr);
  m.sys.mgr->WaitForRecovery();
  m.sys.mgr->WaitIdle();
  m.tree = std::move(pds::BPlusTree::Attach(m.sys.mgr.get(), m.anchor).value());
}

// The post-crash contract checked at every injection coordinate.
void VerifyRecovered(Machine& m, const std::string& context) {
  // Recovery converged to exactly one committed value v_j.
  Result<std::string> main_read = m.tree->Get(kKey);
  ASSERT_TRUE(main_read.ok()) << context;
  const uint64_t j = IndexOfValue(*main_read);

  // Safe floor: the durable stamp never runs ahead of the transactions the
  // recovered image retained. (Losing the stamp persist is fine — it only
  // undercounts; overcounting would let a snapshot claim an epoch whose
  // transactions recovery re-rolled or never kept.)
  const txn::EngineStats stats = m.sys.mgr->engine()->stats();
  EXPECT_GE(stats.backup_epoch, m.setup_epoch) << context;
  EXPECT_LE(stats.backup_epoch - m.setup_epoch, j)
      << context << ": durable cut stamp claims more applied transactions "
      << "than the recovered image holds (served v" << j << ")";

  // Idle after recovery: the snapshot path and the main path must agree.
  txn::BackupStore* bs = m.sys.mgr->backup_store();
  ASSERT_NE(bs, nullptr) << context;
  Result<txn::BackupStore::SnapshotView> view = bs->OpenSnapshot();
  ASSERT_TRUE(view.ok()) << context << ": " << view.status().message();
  EXPECT_GE(view->epoch(), stats.backup_epoch) << context;
  Result<std::string> snap = m.tree->SnapshotGet(*view, kKey);
  ASSERT_TRUE(snap.ok()) << context << ": " << snap.status().message();
  EXPECT_EQ(*snap, *main_read) << context;
  view->Release();

  // The machine stays live: one more committed write moves both paths.
  {
    auto guard = m.tree->LockExclusive();
    ASSERT_TRUE(m.sys.mgr
                    ->Run([&](txn::Tx& tx) -> Status {
                      return m.tree->UpsertInTx(tx, kKey, Value(j + 1));
                    })
                    .ok())
        << context;
  }
  m.sys.mgr->WaitIdle();
  Result<txn::BackupStore::SnapshotView> after = bs->OpenSnapshot();
  ASSERT_TRUE(after.ok()) << context;
  EXPECT_EQ(m.tree->SnapshotGet(*after, kKey).value(), Value(j + 1)) << context;
  after->Release();
}

class BackupCutCrashTest : public ::testing::TestWithParam<txn::EngineType> {};

// Count pass: the stamped workload must actually exercise the stamp site.
TEST_P(BackupCutCrashTest, WorkloadReachesTheStampSite) {
  Machine m = Build(GetParam());
  CrashScheduler scheduler;
  InstallObserver(m, &scheduler);
  scheduler.ArmCounting();
  RunOps(m, &scheduler);
  scheduler.Disarm();
  m.sys.main_pool->SetPersistenceObserver(nullptr);
  if (m.sys.backup_pool != nullptr) {
    m.sys.backup_pool->SetPersistenceObserver(nullptr);
  }
  uint64_t cut_events = 0;
  for (const CrashScheduler::EventRecord& rec : scheduler.trace()) {
    if (rec.site == "backup/cut") {
      ++cut_events;
    }
  }
  EXPECT_GT(cut_events, 0u) << "no persistence events tagged backup/cut; "
                               "the stamp is not reaching the pool";
}

// The sweep: crash at EVERY (kind, occurrence) coordinate of "backup/cut"
// the workload produces, plus every drain anywhere in the stamped run (the
// durability boundaries around the stamp), and verify the recovered-machine
// contract at each.
TEST_P(BackupCutCrashTest, EveryCutCrashLeavesAConsistentSnapshotStore) {
  std::vector<CrashScheduler::EventRecord> targets;
  {
    Machine m = Build(GetParam());
    CrashScheduler scheduler;
    InstallObserver(m, &scheduler);
    scheduler.ArmCounting();
    RunOps(m, &scheduler);
    scheduler.Disarm();
    m.sys.main_pool->SetPersistenceObserver(nullptr);
    if (m.sys.backup_pool != nullptr) {
      m.sys.backup_pool->SetPersistenceObserver(nullptr);
    }
    for (const CrashScheduler::EventRecord& rec : scheduler.trace()) {
      if (rec.site == "backup/cut" ||
          rec.kind == nvm::PersistEventKind::kDrain) {
        targets.push_back(rec);
      }
    }
  }
  ASSERT_FALSE(targets.empty());

  // Budgeted like the shard sweep: KAMINO_CUT_SWEEP_MAX bounds the number of
  // injection runs; backup/cut coordinates are never strided past.
  const char* env = std::getenv("KAMINO_CUT_SWEEP_MAX");
  const size_t max_points =
      env != nullptr ? static_cast<size_t>(std::stoul(env)) : 80;
  size_t cut_count = 0;
  for (const auto& rec : targets) {
    if (rec.site == "backup/cut") {
      ++cut_count;
    }
  }
  const size_t others = targets.size() - cut_count;
  const size_t other_budget = max_points > cut_count ? max_points - cut_count : 0;
  const size_t stride =
      other_budget == 0 ? targets.size() + 1 : std::max<size_t>(1, others / other_budget);

  size_t tested = 0;
  size_t fired = 0;
  size_t other_seen = 0;
  for (const CrashScheduler::EventRecord& target : targets) {
    if (target.site != "backup/cut" && (other_seen++ % stride) != 0) {
      continue;
    }
    ++tested;
    const std::string context = "crash at " + target.site + " occ " +
                                std::to_string(target.occurrence);
    Machine m = Build(GetParam());
    CrashScheduler scheduler;
    InstallObserver(m, &scheduler);
    scheduler.ArmInjectionAtSite(target.kind, target.site, target.occurrence);
    RunOps(m, &scheduler);
    if (scheduler.crashed()) {
      ++fired;
    }
    CrashAndRecover(m, &scheduler);
    VerifyRecovered(m, context);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  EXPECT_EQ(fired, tested)
      << "some injection coordinates never fired: the stamped event stream "
         "was not deterministic";
  RecordProperty("points_tested", static_cast<int>(tested));
  RecordProperty("cut_points", static_cast<int>(cut_count));
}

INSTANTIATE_TEST_SUITE_P(Engines, BackupCutCrashTest,
                         ::testing::Values(txn::EngineType::kKaminoSimple,
                                           txn::EngineType::kKaminoDynamic),
                         [](const ::testing::TestParamInfo<txn::EngineType>& info) {
                           return info.param == txn::EngineType::kKaminoSimple
                                      ? "KaminoSimple"
                                      : "KaminoDynamic";
                         });

}  // namespace
}  // namespace kamino::testing
