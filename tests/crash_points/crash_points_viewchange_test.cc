// Crash-point sweep over the chain's VIEW CHANGES (DESIGN.md §13): power-fail
// the node that is *executing* a promotion, join, or neighbour resolution at
// every persistence event of the view change itself, reboot it, re-run the
// view change, and require that the chain converges with zero acked-op loss
// and exactly-once replay — for every crash point, not just hand-picked ones.
//
// Staging differs from crash_points_chain_test: there the observer watches
// the dying head; here it watches the SURVIVOR doing recovery work (the
// promoting candidate or the joining tail), because the hazard under test is
// a power failure in the middle of the recovery protocol, not in the middle
// of the workload. Workloads are quiesced before arming so the per-site
// occurrence streams of the view change are deterministic (the persists come
// from one caller thread), which makes (kind, site, occurrence) a stable
// crash coordinate across runs.
//
// Veto semantics (crash_scheduler.h): once the coordinate fires, every later
// persist is vetoed but control flow continues — the CPU outlives the
// NVDIMM, so the view change "succeeds" volatile. The test then power-cycles
// the node (QuickReboot / RejoinAsTail crash-sim the pools back to the
// durable prefix) and requires the re-run view change to finish the job.
//
// Sweep budget: KAMINO_CRASH_POINT_STRIDE=N sweeps every Nth coordinate
// (default 1 = exhaustive; the event spaces here are small and bounded).
//
// Negative controls at the end: suppressing the promotion-cursor persist or
// the backup SyncAll persist must be *detected* (missing trust attestation /
// main-vs-backup divergence), proving the sweep's assertions have teeth.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/chain/anchor.h"
#include "src/chain/chain.h"
#include "tests/crash_points/crash_scheduler.h"

namespace kamino::testing {
namespace {

chain::ChainOptions Opts(bool kamino) {
  chain::ChainOptions o;
  o.kamino = kamino;
  // Three replicas either way: head + middle + tail, so both a promotion
  // (middle becomes head) and a join (fresh tail) leave a real chain behind.
  o.f = kamino ? 1 : 2;
  o.pool_size = 24ull << 20;
  o.log_region_size = 4ull << 20;
  o.one_way_latency_us = 5;
  o.client_timeout_ms = 5'000;
  return o;
}

uint64_t EnvStride() {
  const char* s = std::getenv("KAMINO_CRASH_POINT_STRIDE");
  if (s == nullptr || *s == '\0') {
    return 1;
  }
  const uint64_t v = std::strtoull(s, nullptr, 10);
  return v == 0 ? 1 : v;
}

void InstallOn(chain::Replica* r, nvm::PersistenceObserver* obs) {
  ASSERT_NE(r, nullptr);
  ASSERT_NE(r->pool(), nullptr);
  r->pool()->SetPersistenceObserver(obs);
  if (r->backup_pool() != nullptr) {
    r->backup_pool()->SetPersistenceObserver(obs);
  }
}

void UninstallFrom(chain::Replica* r) {
  ASSERT_NE(r, nullptr);
  if (r->pool() != nullptr) {
    r->pool()->SetPersistenceObserver(nullptr);
  }
  if (r->backup_pool() != nullptr) {
    r->backup_pool()->SetPersistenceObserver(nullptr);
  }
}

void ExpectConverged(chain::Chain* chain, const std::map<uint64_t, std::string>& expect) {
  ASSERT_TRUE(chain->Quiesce().ok());
  for (uint64_t id : chain->current_view().nodes) {
    chain::Replica* r = chain->replica_by_id(id);
    ASSERT_NE(r, nullptr);
    ASSERT_TRUE(r->tree()->Validate().ok()) << "replica " << id;
    EXPECT_EQ(r->tree()->CountSlow(), expect.size()) << "replica " << id;
    for (const auto& [k, v] : expect) {
      EXPECT_EQ(r->tree()->Get(k).value(), v) << "replica " << id << " key " << k;
    }
  }
}

// Quiesced workload: every op is acknowledged and fully settled before the
// next, so the model is exactly the acked set and no persistence event of
// the workload bleeds into the armed view-change window.
std::map<uint64_t, std::string> RunWorkload(chain::Chain* chain) {
  std::map<uint64_t, std::string> model;
  for (uint64_t i = 0; i < 8; ++i) {
    const uint64_t key = 1 + (i * 7) % 5;
    const std::string value = "op-" + std::to_string(i);
    EXPECT_TRUE(chain->Upsert(key, value).ok()) << "op " << i;
    model[key] = value;
    EXPECT_TRUE(chain->Quiesce().ok());
  }
  return model;
}

std::set<std::string> SitesIn(const std::vector<CrashScheduler::EventRecord>& trace) {
  std::set<std::string> sites;
  for (const auto& ev : trace) {
    sites.insert(ev.site);
  }
  return sites;
}

// --- Promotion sweep --------------------------------------------------------
//
// Power-fail the promoting candidate (the middle that becomes head after the
// head fail-stops) at every persistence event of PromoteToHead, then reboot
// it. QuickReboot must observe the durable promotion cursor short of
// HeadComplete and resume the takeover; every step is idempotent, so the
// chain converges on the acked model regardless of which site lost power.

void SweepPromotion(bool kamino) {
  CrashScheduler scheduler;
  const uint64_t stride = EnvStride();

  // Count pass: discover the promotion's persistence-event space.
  std::vector<CrashScheduler::EventRecord> coords;
  {
    auto chain = chain::Chain::Create(Opts(kamino)).value();
    const uint64_t head_id = chain->current_view().head();
    const uint64_t cand_id = chain->current_view().nodes[1];
    RunWorkload(chain.get());
    chain::Replica* cand = chain->replica_by_id(cand_id);
    if (kamino) {
      // Pre-create the full-size backup pool the promotion will populate, so
      // the observer sees its persists too (EnsureBackupPool is idempotent —
      // CompletePromotion keeps a pre-sized pool).
      ASSERT_TRUE(cand->EnsureBackupPool(/*force_full=*/true).ok());
    }
    InstallOn(cand, &scheduler);
    scheduler.ArmCounting();
    ASSERT_TRUE(chain->KillReplica(head_id).ok());
    scheduler.Disarm();
    coords = scheduler.trace();
    UninstallFrom(cand);
  }
  ASSERT_FALSE(coords.empty()) << "promotion produced no persistence events?";
  const std::set<std::string> sites = SitesIn(coords);
  // The durable-cursor protocol must actually be in the event stream.
  EXPECT_TRUE(sites.count("chain/promote-cursor")) << "promotion cursor not persisted";
  if (kamino) {
    EXPECT_TRUE(sites.count("backup/sync-all")) << "head backup never synced";
  }

  for (uint64_t i = 0; i < coords.size(); i += stride) {
    const auto& c = coords[i];
    SCOPED_TRACE("coordinate " + std::to_string(i + 1) + "/" +
                 std::to_string(coords.size()) + ": " +
                 std::string(nvm::PersistEventKindName(c.kind)) + " @" + c.site +
                 " occurrence " + std::to_string(c.occurrence));

    auto chain = chain::Chain::Create(Opts(kamino)).value();
    const uint64_t head_id = chain->current_view().head();
    const uint64_t cand_id = chain->current_view().nodes[1];
    std::map<uint64_t, std::string> model = RunWorkload(chain.get());
    chain::Replica* cand = chain->replica_by_id(cand_id);
    if (kamino) {
      ASSERT_TRUE(cand->EnsureBackupPool(/*force_full=*/true).ok());
    }
    InstallOn(cand, &scheduler);
    scheduler.ArmInjectionAtSite(c.kind, c.site, c.occurrence);

    // The promotion "succeeds" volatile: vetoed persists do not change
    // control flow (the CPU outlives the NVDIMM).
    ASSERT_TRUE(chain->KillReplica(head_id).ok());
    EXPECT_TRUE(scheduler.crashed()) << "count-pass coordinate did not fire";

    scheduler.Disarm();
    UninstallFrom(cand);

    // Power-cycle the candidate: volatile state gone, pools rewound to the
    // durable prefix. QuickReboot sees cursor != HeadComplete and re-runs
    // the takeover (or, if the crash landed after the HeadComplete stamp
    // drained, recovers engine-locally from the now-trusted backup).
    ASSERT_TRUE(chain->RebootReplica(cand_id).ok());
    EXPECT_EQ(cand->view_cursor(), chain::kViewCursorHeadComplete);

    // Zero acked-op loss, exactly-once: every acked op present once, on
    // every surviving replica.
    ExpectConverged(chain.get(), model);

    // The re-promoted chain must still accept writes.
    ASSERT_TRUE(chain->Upsert(100, "post-viewchange").ok());
    model[100] = "post-viewchange";
    ExpectConverged(chain.get(), model);
  }
}

TEST(CrashPointViewChange, PromotionPowerFailureAtEverySiteKamino) {
  SweepPromotion(/*kamino=*/true);
}

TEST(CrashPointViewChange, PromotionPowerFailureAtEverySiteUndoLog) {
  SweepPromotion(/*kamino=*/false);
}

// --- Join sweep -------------------------------------------------------------
//
// Power-fail the joining tail at every persistence event of the state
// transfer (invalidate -> body -> superblock commit), then power-cycle it and
// RetryJoin. Until the superblock page persists the transferred image is
// unattachable by construction, so a retry always restarts from a clean
// re-transfer; after it persists the image is complete and the retry is a
// no-op transfer of the same bytes. Either way: full-strength chain, zero
// acked-op loss.

void SweepJoin(bool kamino) {
  CrashScheduler scheduler;
  const uint64_t stride = EnvStride();
  const size_t full_strength = 3;

  // Count pass.
  std::vector<CrashScheduler::EventRecord> coords;
  {
    auto chain = chain::Chain::Create(Opts(kamino)).value();
    RunWorkload(chain.get());
    const uint64_t tail_id = chain->current_view().nodes.back();
    ASSERT_TRUE(chain->KillReplica(tail_id).ok());
    ASSERT_TRUE(chain->Quiesce().ok());
    const uint64_t jid = chain->PrepareJoiningReplica().value();
    InstallOn(chain->replica_by_id(jid), &scheduler);
    scheduler.ArmCounting();
    ASSERT_TRUE(chain->CompleteJoin(jid).ok());
    scheduler.Disarm();
    coords = scheduler.trace();
    UninstallFrom(chain->replica_by_id(jid));
  }
  ASSERT_FALSE(coords.empty()) << "join produced no persistence events?";
  const std::set<std::string> sites = SitesIn(coords);
  EXPECT_TRUE(sites.count("chain/join-invalidate")) << "stale image never fenced";
  EXPECT_TRUE(sites.count("chain/state-transfer")) << "transfer body not persisted";
  EXPECT_TRUE(sites.count("chain/join-commit")) << "join has no commit point";

  for (uint64_t i = 0; i < coords.size(); i += stride) {
    const auto& c = coords[i];
    SCOPED_TRACE("coordinate " + std::to_string(i + 1) + "/" +
                 std::to_string(coords.size()) + ": " +
                 std::string(nvm::PersistEventKindName(c.kind)) + " @" + c.site +
                 " occurrence " + std::to_string(c.occurrence));

    auto chain = chain::Chain::Create(Opts(kamino)).value();
    std::map<uint64_t, std::string> model = RunWorkload(chain.get());
    const uint64_t tail_id = chain->current_view().nodes.back();
    ASSERT_TRUE(chain->KillReplica(tail_id).ok());
    ASSERT_TRUE(chain->Quiesce().ok());

    const uint64_t jid = chain->PrepareJoiningReplica().value();
    chain::Replica* joiner = chain->replica_by_id(jid);
    InstallOn(joiner, &scheduler);
    scheduler.ArmInjectionAtSite(c.kind, c.site, c.occurrence);

    // The join "succeeds" volatile past the crash point.
    ASSERT_TRUE(chain->CompleteJoin(jid).ok());
    EXPECT_TRUE(scheduler.crashed()) << "count-pass coordinate did not fire";
    scheduler.Disarm();

    // Power-cycle the joiner and re-run the join from scratch.
    ASSERT_TRUE(chain->RetryJoin(jid).ok());
    UninstallFrom(joiner);

    EXPECT_EQ(chain->current_view().nodes.size(), full_strength);
    ExpectConverged(chain.get(), model);
    ASSERT_TRUE(chain->Upsert(100, "post-join").ok());
    model[100] = "post-join";
    ExpectConverged(chain.get(), model);
  }
}

TEST(CrashPointViewChange, JoinPowerFailureAtEverySiteKamino) {
  SweepJoin(/*kamino=*/true);
}

TEST(CrashPointViewChange, JoinPowerFailureAtEverySiteUndoLog) {
  SweepJoin(/*kamino=*/false);
}

// --- Promotion with an incomplete transaction (neighbour roll-back) ---------
//
// Figure 9's "new head" case: the candidate itself lost power mid-apply, so
// its resumed promotion finds an incomplete transaction in the log and must
// roll it back from the successor's older object state before building the
// backup. Sweep power failures across THAT resolution too: the first reboot's
// promotion is power-failed at each site, and a second reboot must finish.
//
// The victim op is never acknowledged (the client times out while the
// candidate is fenced), so exactly-once here means: the op's key is absent
// on every replica after convergence.

TEST(CrashPointViewChange, PromotionWithIncompleteTxnPowerFailureAtEverySite) {
  CrashScheduler scheduler;
  const uint64_t stride = EnvStride();

  chain::ChainOptions opts = Opts(/*kamino=*/true);
  // The staging write must fail fast: the candidate is fenced mid-apply, so
  // the client can only time out.
  opts.client_timeout_ms = 1'000;
  opts.client_retry_base_ms = 250;

  // Stages the scenario up to the point where the candidate is a powered-off
  // mid-apply casualty and the old head is fenced out of the view. Returns
  // the model of acked ops (the stuck op is NOT in it).
  auto stage = [&](chain::Chain* chain, uint64_t* cand_id_out)
      -> std::map<uint64_t, std::string> {
    std::map<uint64_t, std::string> model = RunWorkload(chain);
    const uint64_t head_id = chain->current_view().head();
    const uint64_t cand_id = chain->current_view().nodes[1];
    chain::Replica* cand = chain->replica_by_id(cand_id);
    EXPECT_TRUE(cand->EnsureBackupPool(/*force_full=*/true).ok());

    // One more write dies inside the candidate's apply: the commit marker
    // may be durable but the transaction is incomplete, and the node drops
    // off the network (CPU halt) so the op is never acknowledged.
    cand->ArmCrashDuringNextApply();
    EXPECT_FALSE(chain->Upsert(9, "never-acked").ok());

    // The head fails too. Excise it from the view and fence it; the
    // candidate is down, so the promotion can only happen when it reboots.
    chain->membership()->ReportFailure(head_id);
    chain->replica_by_id(head_id)->CrashStop();
    *cand_id_out = cand_id;
    return model;
  };

  // Count pass: the first reboot resumes into a promotion that must resolve
  // the incomplete transaction from the successor.
  std::vector<CrashScheduler::EventRecord> coords;
  {
    auto chain = chain::Chain::Create(opts).value();
    uint64_t cand_id = 0;
    std::map<uint64_t, std::string> model = stage(chain.get(), &cand_id);
    chain::Replica* cand = chain->replica_by_id(cand_id);
    InstallOn(cand, &scheduler);
    scheduler.ArmCounting();
    ASSERT_TRUE(chain->RebootReplica(cand_id).ok());
    scheduler.Disarm();
    coords = scheduler.trace();
    UninstallFrom(cand);
    // Sanity: this really was the incomplete-txn path.
    EXPECT_TRUE(SitesIn(coords).count("chain/neighbour-repair"))
        << "staging did not reach neighbour resolution";
    EXPECT_EQ(cand->view_cursor(), chain::kViewCursorHeadComplete);
    ExpectConverged(chain.get(), model);
    // Exactly-once for the unacked op: rolled back everywhere (already
    // implied by CountSlow == model.size(), stated explicitly here).
    for (uint64_t id : chain->current_view().nodes) {
      EXPECT_FALSE(chain->replica_by_id(id)->tree()->Get(9).ok()) << "replica " << id;
    }
  }
  ASSERT_FALSE(coords.empty());

  for (uint64_t i = 0; i < coords.size(); i += stride) {
    const auto& c = coords[i];
    SCOPED_TRACE("coordinate " + std::to_string(i + 1) + "/" +
                 std::to_string(coords.size()) + ": " +
                 std::string(nvm::PersistEventKindName(c.kind)) + " @" + c.site +
                 " occurrence " + std::to_string(c.occurrence));

    auto chain = chain::Chain::Create(opts).value();
    uint64_t cand_id = 0;
    std::map<uint64_t, std::string> model = stage(chain.get(), &cand_id);
    chain::Replica* cand = chain->replica_by_id(cand_id);
    InstallOn(cand, &scheduler);
    scheduler.ArmInjectionAtSite(c.kind, c.site, c.occurrence);

    // First reboot: resumes the promotion and loses power again at the
    // coordinate (volatile success past it).
    ASSERT_TRUE(chain->RebootReplica(cand_id).ok());
    EXPECT_TRUE(scheduler.crashed()) << "count-pass coordinate did not fire";
    scheduler.Disarm();
    UninstallFrom(cand);

    // Second reboot finishes whatever durably remains of the takeover.
    ASSERT_TRUE(chain->RebootReplica(cand_id).ok());
    EXPECT_EQ(cand->view_cursor(), chain::kViewCursorHeadComplete);

    ExpectConverged(chain.get(), model);
    for (uint64_t id : chain->current_view().nodes) {
      EXPECT_FALSE(chain->replica_by_id(id)->tree()->Get(9).ok()) << "replica " << id;
    }
    ASSERT_TRUE(chain->Upsert(100, "post-rollback").ok());
    model[100] = "post-rollback";
    ExpectConverged(chain.get(), model);
  }
}

// --- Negative controls ------------------------------------------------------
//
// The sweep's guarantees rest on two persists actually happening; a broken
// engine that "forgets" either must be caught. Site suppression models the
// missing barrier without touching production code.

// (a) Promotion cursor never persisted: after a power cycle the durable
// cursor still reads its pre-promotion value, i.e. the trust attestation is
// missing and the node correctly refuses to trust its half-built backup —
// the violation is DETECTED, and a reboot re-runs the promotion wholesale.
TEST(CrashPointViewChange, SuppressedPromoteCursorPersistIsDetected) {
  CrashScheduler scheduler;
  auto chain = chain::Chain::Create(Opts(/*kamino=*/true)).value();
  const uint64_t head_id = chain->current_view().head();
  const uint64_t cand_id = chain->current_view().nodes[1];
  std::map<uint64_t, std::string> model = RunWorkload(chain.get());
  chain::Replica* cand = chain->replica_by_id(cand_id);
  ASSERT_TRUE(cand->EnsureBackupPool(/*force_full=*/true).ok());
  InstallOn(cand, &scheduler);

  scheduler.ArmCounting();
  scheduler.SuppressSite("chain/promote-cursor", nvm::PersistEventKind::kFlush);
  ASSERT_TRUE(chain->KillReplica(head_id).ok());
  scheduler.Disarm();
  bool saw_suppressed = false;
  for (const auto& ev : scheduler.trace()) {
    saw_suppressed |= ev.suppressed && ev.site == "chain/promote-cursor";
  }
  ASSERT_TRUE(saw_suppressed) << "suppression never matched the cursor persist";
  UninstallFrom(cand);

  // Power cycle: the volatile promotion is gone; without the cursor persist
  // the durable image carries NO trust attestation. That is the detection:
  // a fresh boot would re-run the takeover instead of trusting the backup.
  cand->CrashStop();
  ASSERT_TRUE(cand->pool()->Crash().ok());
  ASSERT_TRUE(cand->backup_pool()->Crash().ok());
  EXPECT_NE(cand->view_cursor(), chain::kViewCursorHeadComplete)
      << "durability violation went undetected: cursor persisted despite "
         "the suppressed barrier";

  // And the re-run takeover completes the job.
  ASSERT_TRUE(chain->RebootReplica(cand_id).ok());
  EXPECT_EQ(cand->view_cursor(), chain::kViewCursorHeadComplete);
  ExpectConverged(chain.get(), model);

  // Positive twin: with the barrier intact, the attestation survives the
  // same power cycle.
  {
    auto chain2 = chain::Chain::Create(Opts(/*kamino=*/true)).value();
    const uint64_t head2 = chain2->current_view().head();
    const uint64_t cand2_id = chain2->current_view().nodes[1];
    RunWorkload(chain2.get());
    chain::Replica* cand2 = chain2->replica_by_id(cand2_id);
    ASSERT_TRUE(chain2->KillReplica(head2).ok());
    cand2->CrashStop();
    ASSERT_TRUE(cand2->pool()->Crash().ok());
    if (cand2->backup_pool() != nullptr) {
      ASSERT_TRUE(cand2->backup_pool()->Crash().ok());
    }
    EXPECT_EQ(cand2->view_cursor(), chain::kViewCursorHeadComplete);
  }
}

// (b) Backup SyncAll never persisted while the cursor still stamps
// HeadComplete: the durable state now LIES — the cursor attests a built
// backup whose bytes are not there. An offline audit comparing the main and
// backup data regions exposes the divergence; the positive twin shows the
// same audit is clean when the barrier is honoured.

// Byte-compares the data regions (everything past the intent log) of a
// replica's main and backup pools, ignoring the 8-byte view-cursor word
// (main reads HeadComplete; the backup's copy was synced while the cursor
// still read Promoting). Returns the number of differing bytes.
uint64_t DataRegionDivergence(chain::Replica* r) {
  const uint64_t begin = r->heap()->log_region_offset() + r->heap()->log_region_size();
  const uint64_t end = r->pool()->size();
  const uint64_t cursor_off =
      r->heap()->root() + offsetof(chain::ChainAnchor, view_cursor);
  const uint8_t* main = r->pool()->base();
  const uint8_t* backup = r->backup_pool()->base();
  uint64_t diff = 0;
  for (uint64_t off = begin; off < end; ++off) {
    if (off >= cursor_off && off < cursor_off + sizeof(uint64_t)) {
      continue;
    }
    diff += main[off] != backup[off];
  }
  return diff;
}

TEST(CrashPointViewChange, SuppressedBackupSyncPersistViolatesTrustContract) {
  CrashScheduler scheduler;

  auto run = [&](bool suppress) -> uint64_t {
    auto chain = chain::Chain::Create(Opts(/*kamino=*/true)).value();
    const uint64_t head_id = chain->current_view().head();
    const uint64_t cand_id = chain->current_view().nodes[1];
    RunWorkload(chain.get());
    chain::Replica* cand = chain->replica_by_id(cand_id);
    EXPECT_TRUE(cand->EnsureBackupPool(/*force_full=*/true).ok());
    InstallOn(cand, &scheduler);
    scheduler.ArmCounting();
    if (suppress) {
      scheduler.SuppressSite("backup/sync-all", nvm::PersistEventKind::kFlush);
    }
    EXPECT_TRUE(chain->KillReplica(head_id).ok());
    scheduler.Disarm();
    UninstallFrom(cand);

    // Power cycle, then audit what the durable image claims vs holds.
    cand->CrashStop();
    EXPECT_TRUE(cand->pool()->Crash().ok());
    EXPECT_TRUE(cand->backup_pool()->Crash().ok());
    EXPECT_EQ(cand->view_cursor(), chain::kViewCursorHeadComplete)
        << "cursor should persist either way: only SyncAll was suppressed";
    return DataRegionDivergence(cand);
  };

  const uint64_t clean = run(/*suppress=*/false);
  EXPECT_EQ(clean, 0u) << "honest promotion: backup must mirror main";

  const uint64_t broken = run(/*suppress=*/true);
  EXPECT_GT(broken, 0u)
      << "trust-contract violation went undetected: cursor attests a backup "
         "whose bytes never persisted";
}

// --- Committed-only log promotion (regression) ------------------------------
//
// A rebooting sole survivor whose log holds only COMMITTED transactions must
// promote without a neighbour: committed slots resolve locally (deferred
// frees + release). The old code routed ANY non-empty scan through the
// neighbour fetch, which cannot work when no successor remains.
TEST(CrashPointViewChange, CommittedOnlyLogPromotionResolvesLocally) {
  CrashScheduler scheduler;

  chain::ChainOptions opts = Opts(/*kamino=*/true);
  opts.f = 0;  // Two replicas: head + tail. Killing the head leaves ONE node.
  auto chain = chain::Chain::Create(opts).value();
  const uint64_t head_id = chain->current_view().head();
  const uint64_t tail_id = chain->current_view().nodes.back();
  chain::Replica* tail = chain->replica_by_id(tail_id);

  // Suppress the tail's slot releases for the whole workload: every op
  // commits durably but its release never persists, so the power-cycled log
  // is full of committed (never incomplete) transactions.
  InstallOn(tail, &scheduler);
  scheduler.ArmCounting();
  scheduler.SuppressSite("log/release-slot", nvm::PersistEventKind::kFlush);
  std::map<uint64_t, std::string> model = RunWorkload(chain.get());
  scheduler.Disarm();
  UninstallFrom(tail);

  // Head dies; the tail is the sole survivor and reboots into a resumed
  // promotion with no successor to lean on.
  chain->membership()->ReportFailure(head_id);
  chain->replica_by_id(head_id)->CrashStop();
  ASSERT_TRUE(chain->RebootReplica(tail_id).ok())
      << "committed-only log must resolve locally, not demand a neighbour";
  EXPECT_EQ(tail->view_cursor(), chain::kViewCursorHeadComplete);

  ExpectConverged(chain.get(), model);
  ASSERT_TRUE(chain->Upsert(100, "post-solo-promotion").ok());
  model[100] = "post-solo-promotion";
  ExpectConverged(chain.get(), model);
}

// --- Inherited-trust drop on join -------------------------------------------
//
// A tail joining behind a HEAD (two-node chain) receives a state-transfer
// image carrying the head's HeadComplete cursor. The joiner has no backup,
// so it must durably drop that inherited attestation: a later promotion
// crash on the joiner must never trust a backup it never built.
TEST(CrashPointViewChange, JoinDropsInheritedPromotionCursor) {
  chain::ChainOptions opts = Opts(/*kamino=*/true);
  opts.f = 0;  // Head + tail; the joiner's transfer source is the head.
  auto chain = chain::Chain::Create(opts).value();
  std::map<uint64_t, std::string> model = RunWorkload(chain.get());

  const uint64_t tail_id = chain->current_view().nodes.back();
  ASSERT_TRUE(chain->KillReplica(tail_id).ok());
  ASSERT_TRUE(chain->Quiesce().ok());

  const uint64_t jid = chain->PrepareJoiningReplica().value();
  ASSERT_TRUE(chain->CompleteJoin(jid).ok());
  chain::Replica* joiner = chain->replica_by_id(jid);

  // The transfer source (the head) stamps HeadComplete; the joined image
  // must not carry it.
  EXPECT_EQ(joiner->view_cursor(), chain::kViewCursorNone)
      << "joiner inherited the predecessor's backup-trust attestation";
  ExpectConverged(chain.get(), model);
}

}  // namespace
}  // namespace kamino::testing
