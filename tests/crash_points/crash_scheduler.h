// Deterministic crash-point scheduler: a PersistenceObserver that numbers
// every flush/drain across one or more pools and can simulate a whole-machine
// power failure at an exact persistence event.
//
// Modes (composable):
//   - Counting: record every event (ordinal, kind, site) and let it through.
//     A first "count pass" over a workload discovers the event space.
//   - Injection (`crash_at` = k): events 1..k-1 pass; event k and everything
//     after it is vetoed. A veto suppresses the durability effect only — the
//     workload keeps executing on the working image, exactly as a CPU keeps
//     running on cached data after its NVDIMM stops accepting write-backs.
//     The harness stops at the next operation boundary and power-cycles the
//     pools, so the persistent image is precisely "all durability up to
//     event k-1".
//   - Site suppression: veto every event whose site tag matches. Models an
//     engine that forgot a persistence barrier at that boundary (the
//     deliberately-broken-variant tests), without touching production code.
//
// One scheduler is installed on *all* of a machine's pools (main + backup):
// a power failure takes the machine down as a whole, so the ordinal stream is
// global across pools. Vetoed events still receive ordinals — suppression
// does not change control flow, so the event stream is identical with and
// without it, which keeps count-pass ordinals valid for injection runs.
//
// Thread safety: OnPersistEvent takes an internal mutex; concurrent flushes
// from applier threads serialize through it. Determinism of the *order* is
// the harness's job (single mutator + WaitIdle at every op boundary).

#ifndef TESTS_CRASH_POINTS_CRASH_SCHEDULER_H_
#define TESTS_CRASH_POINTS_CRASH_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/nvm/persist_hook.h"

namespace kamino::testing {

class CrashScheduler : public nvm::PersistenceObserver {
 public:
  struct EventRecord {
    nvm::PersistEventKind kind;
    std::string site;
    // 1-based occurrence index of this (kind, site) pair — the per-site crash
    // coordinate. Unlike the global ordinal, it is stable under benign
    // cross-thread interleaving (multi-applier runs): the k-th
    // "log/release-slot" drain is the same logical event no matter how
    // unrelated sites interleave around it.
    uint64_t occurrence = 0;
    bool suppressed = false;  // Vetoed by injection or site suppression.
  };

  CrashScheduler() = default;
  CrashScheduler(const CrashScheduler&) = delete;
  CrashScheduler& operator=(const CrashScheduler&) = delete;

  // Record events and let them through (count pass). Resets all state.
  void ArmCounting();

  // Crash at persistence event `crash_at` (1-based): that event and every
  // later one is vetoed. Resets all state; site suppression survives only if
  // re-set afterwards.
  void ArmInjection(uint64_t crash_at);

  // Crash at the `occurrence`-th event matching (kind, site) — the per-site
  // coordinate. From that event on, everything is vetoed (power is gone for
  // the whole machine, not just that site). Use when the global ordinal
  // stream is not deterministic (applier_threads > 1) but per-site streams
  // are (each site's events come from one logical actor in order).
  //
  // `site` may contain '*' wildcards (each matches any substring) and is
  // matched against the *recorded* site, which for pools carrying a
  // PoolOptions::site_prefix is shard-qualified ("shard3/log/commit-record").
  // A multi-shard sweep can therefore target one shard's sites
  // ("shard1/log/*") without depending on the racy global ordinal stream.
  // With a wildcard pattern, `occurrence` counts events matching the pattern.
  void ArmInjectionAtSite(nvm::PersistEventKind kind, std::string site, uint64_t occurrence);

  // Additionally veto every event of `kind` whose (shard-qualified) site tag
  // matches `site` ('*' wildcards allowed). Composes with either mode; set
  // after Arm*().
  void SuppressSite(std::string site, nvm::PersistEventKind kind);

  // Stop vetoing and stop recording; subsequent events pass untouched.
  // Must be called before recovery so recovery's persists take effect.
  void Disarm();

  bool OnPersistEvent(const nvm::PersistEvent& event) override;

  // Total events observed since the last Arm*() (including vetoed ones).
  uint64_t event_count() const;

  // True once the injection point has fired.
  bool crashed() const;

  // Global ordinal at which the injection fired (0 if it has not). For
  // per-site injections this reports where in the global stream the
  // coordinate landed.
  uint64_t crashed_at_ordinal() const;

  // Events observed since the last Arm*(), in ordinal order (index 0 is
  // ordinal 1).
  std::vector<EventRecord> trace() const;

 private:
  enum class Mode { kDisarmed, kCounting, kInjection };

  void ResetLocked();

  mutable std::mutex mu_;
  Mode mode_ = Mode::kDisarmed;
  uint64_t next_ordinal_ = 0;
  uint64_t crash_at_ = 0;
  bool crashed_ = false;
  uint64_t crashed_at_ordinal_ = 0;
  // Per-site injection coordinate (crash_site_ empty = ordinal mode).
  std::string crash_site_;
  nvm::PersistEventKind crash_site_kind_ = nvm::PersistEventKind::kFlush;
  uint64_t crash_site_occurrence_ = 0;
  // Events so far matching (crash_site_kind_, crash_site_); for an exact
  // site this equals its occurrence counter, for a wildcard pattern it counts
  // across every matching site.
  uint64_t crash_site_matches_ = 0;
  // Running per-(kind, site) occurrence counters since the last Arm*().
  std::map<std::pair<int, std::string>, uint64_t> occurrences_;
  std::string suppress_site_;
  nvm::PersistEventKind suppress_kind_ = nvm::PersistEventKind::kFlush;
  bool suppress_enabled_ = false;
  std::vector<EventRecord> trace_;
};

}  // namespace kamino::testing

#endif  // TESTS_CRASH_POINTS_CRASH_SCHEDULER_H_
