# Empty compiler generated dependencies file for kv_store_ycsb.
# This may be replaced when dependencies are built.
