file(REMOVE_RECURSE
  "CMakeFiles/kv_store_ycsb.dir/kv_store_ycsb.cpp.o"
  "CMakeFiles/kv_store_ycsb.dir/kv_store_ycsb.cpp.o.d"
  "kv_store_ycsb"
  "kv_store_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_store_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
