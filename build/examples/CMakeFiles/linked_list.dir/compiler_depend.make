# Empty compiler generated dependencies file for linked_list.
# This may be replaced when dependencies are built.
