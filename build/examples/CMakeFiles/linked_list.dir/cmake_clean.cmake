file(REMOVE_RECURSE
  "CMakeFiles/linked_list.dir/linked_list.cpp.o"
  "CMakeFiles/linked_list.dir/linked_list.cpp.o.d"
  "linked_list"
  "linked_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linked_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
