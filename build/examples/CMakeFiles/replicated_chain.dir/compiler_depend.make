# Empty compiler generated dependencies file for replicated_chain.
# This may be replaced when dependencies are built.
