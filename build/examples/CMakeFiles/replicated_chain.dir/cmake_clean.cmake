file(REMOVE_RECURSE
  "CMakeFiles/replicated_chain.dir/replicated_chain.cpp.o"
  "CMakeFiles/replicated_chain.dir/replicated_chain.cpp.o.d"
  "replicated_chain"
  "replicated_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
