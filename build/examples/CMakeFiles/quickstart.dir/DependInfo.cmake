
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/kamino_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kamino_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/kamino_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kamino_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/kamino_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/pds/CMakeFiles/kamino_pds.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/kamino_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/kamino_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/kamino_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/kamino_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kamino_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
