# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nvm_pool_test[1]_include.cmake")
include("/root/repo/build/tests/allocator_test[1]_include.cmake")
include("/root/repo/build/tests/heap_test[1]_include.cmake")
include("/root/repo/build/tests/log_manager_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/backup_store_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/tx_manager_test[1]_include.cmake")
include("/root/repo/build/tests/crash_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/bplus_tree_test[1]_include.cmake")
include("/root/repo/build/tests/dlist_test[1]_include.cmake")
include("/root/repo/build/tests/hash_map_test[1]_include.cmake")
include("/root/repo/build/tests/kv_store_test[1]_include.cmake")
include("/root/repo/build/tests/pqueue_test[1]_include.cmake")
include("/root/repo/build/tests/durability_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_crash_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/membership_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/chain_reboot_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
