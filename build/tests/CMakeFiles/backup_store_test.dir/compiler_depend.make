# Empty compiler generated dependencies file for backup_store_test.
# This may be replaced when dependencies are built.
