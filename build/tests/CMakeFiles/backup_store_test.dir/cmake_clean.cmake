file(REMOVE_RECURSE
  "CMakeFiles/backup_store_test.dir/backup_store_test.cc.o"
  "CMakeFiles/backup_store_test.dir/backup_store_test.cc.o.d"
  "backup_store_test"
  "backup_store_test.pdb"
  "backup_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
