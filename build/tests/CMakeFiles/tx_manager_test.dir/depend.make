# Empty dependencies file for tx_manager_test.
# This may be replaced when dependencies are built.
