file(REMOVE_RECURSE
  "CMakeFiles/tx_manager_test.dir/tx_manager_test.cc.o"
  "CMakeFiles/tx_manager_test.dir/tx_manager_test.cc.o.d"
  "tx_manager_test"
  "tx_manager_test.pdb"
  "tx_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
