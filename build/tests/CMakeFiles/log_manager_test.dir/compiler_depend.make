# Empty compiler generated dependencies file for log_manager_test.
# This may be replaced when dependencies are built.
