# Empty dependencies file for log_manager_test.
# This may be replaced when dependencies are built.
