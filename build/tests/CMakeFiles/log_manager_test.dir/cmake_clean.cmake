file(REMOVE_RECURSE
  "CMakeFiles/log_manager_test.dir/log_manager_test.cc.o"
  "CMakeFiles/log_manager_test.dir/log_manager_test.cc.o.d"
  "log_manager_test"
  "log_manager_test.pdb"
  "log_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
