# Empty compiler generated dependencies file for chain_reboot_test.
# This may be replaced when dependencies are built.
