file(REMOVE_RECURSE
  "CMakeFiles/chain_reboot_test.dir/chain_reboot_test.cc.o"
  "CMakeFiles/chain_reboot_test.dir/chain_reboot_test.cc.o.d"
  "chain_reboot_test"
  "chain_reboot_test.pdb"
  "chain_reboot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_reboot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
