file(REMOVE_RECURSE
  "CMakeFiles/dlist_test.dir/dlist_test.cc.o"
  "CMakeFiles/dlist_test.dir/dlist_test.cc.o.d"
  "dlist_test"
  "dlist_test.pdb"
  "dlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
