# Empty compiler generated dependencies file for dlist_test.
# This may be replaced when dependencies are built.
