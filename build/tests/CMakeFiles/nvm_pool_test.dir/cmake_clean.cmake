file(REMOVE_RECURSE
  "CMakeFiles/nvm_pool_test.dir/nvm_pool_test.cc.o"
  "CMakeFiles/nvm_pool_test.dir/nvm_pool_test.cc.o.d"
  "nvm_pool_test"
  "nvm_pool_test.pdb"
  "nvm_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
