# Empty dependencies file for nvm_pool_test.
# This may be replaced when dependencies are built.
