
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/heap_test.cc" "tests/CMakeFiles/heap_test.dir/heap_test.cc.o" "gcc" "tests/CMakeFiles/heap_test.dir/heap_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/kamino_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/kamino_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/kamino_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/kamino_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kamino_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
