# Empty compiler generated dependencies file for pqueue_test.
# This may be replaced when dependencies are built.
