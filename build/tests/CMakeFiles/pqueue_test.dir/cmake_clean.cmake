file(REMOVE_RECURSE
  "CMakeFiles/pqueue_test.dir/pqueue_test.cc.o"
  "CMakeFiles/pqueue_test.dir/pqueue_test.cc.o.d"
  "pqueue_test"
  "pqueue_test.pdb"
  "pqueue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
