file(REMOVE_RECURSE
  "CMakeFiles/hash_map_test.dir/hash_map_test.cc.o"
  "CMakeFiles/hash_map_test.dir/hash_map_test.cc.o.d"
  "hash_map_test"
  "hash_map_test.pdb"
  "hash_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
