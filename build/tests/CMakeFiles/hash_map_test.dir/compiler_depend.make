# Empty compiler generated dependencies file for hash_map_test.
# This may be replaced when dependencies are built.
