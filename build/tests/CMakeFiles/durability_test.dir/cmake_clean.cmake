file(REMOVE_RECURSE
  "CMakeFiles/durability_test.dir/durability_test.cc.o"
  "CMakeFiles/durability_test.dir/durability_test.cc.o.d"
  "durability_test"
  "durability_test.pdb"
  "durability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
