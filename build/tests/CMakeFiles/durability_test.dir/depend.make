# Empty dependencies file for durability_test.
# This may be replaced when dependencies are built.
