file(REMOVE_RECURSE
  "CMakeFiles/fuzz_crash_test.dir/fuzz_crash_test.cc.o"
  "CMakeFiles/fuzz_crash_test.dir/fuzz_crash_test.cc.o.d"
  "fuzz_crash_test"
  "fuzz_crash_test.pdb"
  "fuzz_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
