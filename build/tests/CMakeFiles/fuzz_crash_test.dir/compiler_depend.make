# Empty compiler generated dependencies file for fuzz_crash_test.
# This may be replaced when dependencies are built.
