file(REMOVE_RECURSE
  "CMakeFiles/fig13_ycsb_latency.dir/fig13_ycsb_latency.cc.o"
  "CMakeFiles/fig13_ycsb_latency.dir/fig13_ycsb_latency.cc.o.d"
  "fig13_ycsb_latency"
  "fig13_ycsb_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ycsb_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
