# Empty dependencies file for fig13_ycsb_latency.
# This may be replaced when dependencies are built.
