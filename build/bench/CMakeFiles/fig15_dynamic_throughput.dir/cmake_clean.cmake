file(REMOVE_RECURSE
  "CMakeFiles/fig15_dynamic_throughput.dir/fig15_dynamic_throughput.cc.o"
  "CMakeFiles/fig15_dynamic_throughput.dir/fig15_dynamic_throughput.cc.o.d"
  "fig15_dynamic_throughput"
  "fig15_dynamic_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_dynamic_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
