# Empty compiler generated dependencies file for fig15_dynamic_throughput.
# This may be replaced when dependencies are built.
