file(REMOVE_RECURSE
  "CMakeFiles/fig14_dynamic_latency.dir/fig14_dynamic_latency.cc.o"
  "CMakeFiles/fig14_dynamic_latency.dir/fig14_dynamic_latency.cc.o.d"
  "fig14_dynamic_latency"
  "fig14_dynamic_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dynamic_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
