# Empty dependencies file for fig14_dynamic_latency.
# This may be replaced when dependencies are built.
