file(REMOVE_RECURSE
  "CMakeFiles/fig01_logging_overhead.dir/fig01_logging_overhead.cc.o"
  "CMakeFiles/fig01_logging_overhead.dir/fig01_logging_overhead.cc.o.d"
  "fig01_logging_overhead"
  "fig01_logging_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_logging_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
