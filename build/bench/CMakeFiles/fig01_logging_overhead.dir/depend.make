# Empty dependencies file for fig01_logging_overhead.
# This may be replaced when dependencies are built.
