# Empty compiler generated dependencies file for dep_txn_latency.
# This may be replaced when dependencies are built.
