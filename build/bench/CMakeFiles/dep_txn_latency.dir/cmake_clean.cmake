file(REMOVE_RECURSE
  "CMakeFiles/dep_txn_latency.dir/dep_txn_latency.cc.o"
  "CMakeFiles/dep_txn_latency.dir/dep_txn_latency.cc.o.d"
  "dep_txn_latency"
  "dep_txn_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dep_txn_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
