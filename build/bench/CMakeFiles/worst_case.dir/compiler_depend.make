# Empty compiler generated dependencies file for worst_case.
# This may be replaced when dependencies are built.
