file(REMOVE_RECURSE
  "CMakeFiles/worst_case.dir/worst_case.cc.o"
  "CMakeFiles/worst_case.dir/worst_case.cc.o.d"
  "worst_case"
  "worst_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worst_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
