file(REMOVE_RECURSE
  "CMakeFiles/fig17_chain_latency.dir/fig17_chain_latency.cc.o"
  "CMakeFiles/fig17_chain_latency.dir/fig17_chain_latency.cc.o.d"
  "fig17_chain_latency"
  "fig17_chain_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_chain_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
