# Empty dependencies file for ablation_nvm_latency.
# This may be replaced when dependencies are built.
