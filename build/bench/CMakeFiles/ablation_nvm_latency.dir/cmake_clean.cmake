file(REMOVE_RECURSE
  "CMakeFiles/ablation_nvm_latency.dir/ablation_nvm_latency.cc.o"
  "CMakeFiles/ablation_nvm_latency.dir/ablation_nvm_latency.cc.o.d"
  "ablation_nvm_latency"
  "ablation_nvm_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nvm_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
