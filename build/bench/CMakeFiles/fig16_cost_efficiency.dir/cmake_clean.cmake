file(REMOVE_RECURSE
  "CMakeFiles/fig16_cost_efficiency.dir/fig16_cost_efficiency.cc.o"
  "CMakeFiles/fig16_cost_efficiency.dir/fig16_cost_efficiency.cc.o.d"
  "fig16_cost_efficiency"
  "fig16_cost_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cost_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
