# Empty dependencies file for fig16_cost_efficiency.
# This may be replaced when dependencies are built.
