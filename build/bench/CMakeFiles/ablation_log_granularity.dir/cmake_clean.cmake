file(REMOVE_RECURSE
  "CMakeFiles/ablation_log_granularity.dir/ablation_log_granularity.cc.o"
  "CMakeFiles/ablation_log_granularity.dir/ablation_log_granularity.cc.o.d"
  "ablation_log_granularity"
  "ablation_log_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_log_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
