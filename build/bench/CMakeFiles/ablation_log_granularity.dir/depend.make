# Empty dependencies file for ablation_log_granularity.
# This may be replaced when dependencies are built.
