file(REMOVE_RECURSE
  "CMakeFiles/fig18_chain_throughput.dir/fig18_chain_throughput.cc.o"
  "CMakeFiles/fig18_chain_throughput.dir/fig18_chain_throughput.cc.o.d"
  "fig18_chain_throughput"
  "fig18_chain_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_chain_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
