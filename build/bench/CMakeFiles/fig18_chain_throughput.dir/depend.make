# Empty dependencies file for fig18_chain_throughput.
# This may be replaced when dependencies are built.
