file(REMOVE_RECURSE
  "CMakeFiles/table1_storage_latency.dir/table1_storage_latency.cc.o"
  "CMakeFiles/table1_storage_latency.dir/table1_storage_latency.cc.o.d"
  "table1_storage_latency"
  "table1_storage_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_storage_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
