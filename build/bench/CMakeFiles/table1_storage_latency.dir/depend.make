# Empty dependencies file for table1_storage_latency.
# This may be replaced when dependencies are built.
