# Empty dependencies file for fig12_ycsb_throughput.
# This may be replaced when dependencies are built.
