file(REMOVE_RECURSE
  "CMakeFiles/fig12_ycsb_throughput.dir/fig12_ycsb_throughput.cc.o"
  "CMakeFiles/fig12_ycsb_throughput.dir/fig12_ycsb_throughput.cc.o.d"
  "fig12_ycsb_throughput"
  "fig12_ycsb_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ycsb_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
