file(REMOVE_RECURSE
  "libkamino_txn.a"
)
