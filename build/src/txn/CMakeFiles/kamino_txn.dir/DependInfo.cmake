
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/backup_store.cc" "src/txn/CMakeFiles/kamino_txn.dir/backup_store.cc.o" "gcc" "src/txn/CMakeFiles/kamino_txn.dir/backup_store.cc.o.d"
  "/root/repo/src/txn/cow_engine.cc" "src/txn/CMakeFiles/kamino_txn.dir/cow_engine.cc.o" "gcc" "src/txn/CMakeFiles/kamino_txn.dir/cow_engine.cc.o.d"
  "/root/repo/src/txn/kamino_engine.cc" "src/txn/CMakeFiles/kamino_txn.dir/kamino_engine.cc.o" "gcc" "src/txn/CMakeFiles/kamino_txn.dir/kamino_engine.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/txn/CMakeFiles/kamino_txn.dir/lock_manager.cc.o" "gcc" "src/txn/CMakeFiles/kamino_txn.dir/lock_manager.cc.o.d"
  "/root/repo/src/txn/log_manager.cc" "src/txn/CMakeFiles/kamino_txn.dir/log_manager.cc.o" "gcc" "src/txn/CMakeFiles/kamino_txn.dir/log_manager.cc.o.d"
  "/root/repo/src/txn/nolog_engine.cc" "src/txn/CMakeFiles/kamino_txn.dir/nolog_engine.cc.o" "gcc" "src/txn/CMakeFiles/kamino_txn.dir/nolog_engine.cc.o.d"
  "/root/repo/src/txn/redo_engine.cc" "src/txn/CMakeFiles/kamino_txn.dir/redo_engine.cc.o" "gcc" "src/txn/CMakeFiles/kamino_txn.dir/redo_engine.cc.o.d"
  "/root/repo/src/txn/tx_manager.cc" "src/txn/CMakeFiles/kamino_txn.dir/tx_manager.cc.o" "gcc" "src/txn/CMakeFiles/kamino_txn.dir/tx_manager.cc.o.d"
  "/root/repo/src/txn/undo_engine.cc" "src/txn/CMakeFiles/kamino_txn.dir/undo_engine.cc.o" "gcc" "src/txn/CMakeFiles/kamino_txn.dir/undo_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kamino_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/kamino_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/kamino_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/kamino_heap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
