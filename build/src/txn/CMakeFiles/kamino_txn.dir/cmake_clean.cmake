file(REMOVE_RECURSE
  "CMakeFiles/kamino_txn.dir/backup_store.cc.o"
  "CMakeFiles/kamino_txn.dir/backup_store.cc.o.d"
  "CMakeFiles/kamino_txn.dir/cow_engine.cc.o"
  "CMakeFiles/kamino_txn.dir/cow_engine.cc.o.d"
  "CMakeFiles/kamino_txn.dir/kamino_engine.cc.o"
  "CMakeFiles/kamino_txn.dir/kamino_engine.cc.o.d"
  "CMakeFiles/kamino_txn.dir/lock_manager.cc.o"
  "CMakeFiles/kamino_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/kamino_txn.dir/log_manager.cc.o"
  "CMakeFiles/kamino_txn.dir/log_manager.cc.o.d"
  "CMakeFiles/kamino_txn.dir/nolog_engine.cc.o"
  "CMakeFiles/kamino_txn.dir/nolog_engine.cc.o.d"
  "CMakeFiles/kamino_txn.dir/redo_engine.cc.o"
  "CMakeFiles/kamino_txn.dir/redo_engine.cc.o.d"
  "CMakeFiles/kamino_txn.dir/tx_manager.cc.o"
  "CMakeFiles/kamino_txn.dir/tx_manager.cc.o.d"
  "CMakeFiles/kamino_txn.dir/undo_engine.cc.o"
  "CMakeFiles/kamino_txn.dir/undo_engine.cc.o.d"
  "libkamino_txn.a"
  "libkamino_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
