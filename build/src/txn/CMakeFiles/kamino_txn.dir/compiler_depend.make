# Empty compiler generated dependencies file for kamino_txn.
# This may be replaced when dependencies are built.
