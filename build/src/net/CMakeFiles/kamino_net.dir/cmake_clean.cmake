file(REMOVE_RECURSE
  "CMakeFiles/kamino_net.dir/network.cc.o"
  "CMakeFiles/kamino_net.dir/network.cc.o.d"
  "libkamino_net.a"
  "libkamino_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
