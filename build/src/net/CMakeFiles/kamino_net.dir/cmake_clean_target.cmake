file(REMOVE_RECURSE
  "libkamino_net.a"
)
