# Empty dependencies file for kamino_net.
# This may be replaced when dependencies are built.
