# Empty compiler generated dependencies file for kamino_kv.
# This may be replaced when dependencies are built.
