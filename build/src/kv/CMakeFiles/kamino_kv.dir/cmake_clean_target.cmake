file(REMOVE_RECURSE
  "libkamino_kv.a"
)
