file(REMOVE_RECURSE
  "CMakeFiles/kamino_kv.dir/kv_store.cc.o"
  "CMakeFiles/kamino_kv.dir/kv_store.cc.o.d"
  "libkamino_kv.a"
  "libkamino_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
