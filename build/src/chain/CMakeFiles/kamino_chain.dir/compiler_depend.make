# Empty compiler generated dependencies file for kamino_chain.
# This may be replaced when dependencies are built.
