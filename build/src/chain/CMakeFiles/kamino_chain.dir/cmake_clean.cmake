file(REMOVE_RECURSE
  "CMakeFiles/kamino_chain.dir/chain.cc.o"
  "CMakeFiles/kamino_chain.dir/chain.cc.o.d"
  "CMakeFiles/kamino_chain.dir/membership.cc.o"
  "CMakeFiles/kamino_chain.dir/membership.cc.o.d"
  "CMakeFiles/kamino_chain.dir/replica.cc.o"
  "CMakeFiles/kamino_chain.dir/replica.cc.o.d"
  "libkamino_chain.a"
  "libkamino_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
