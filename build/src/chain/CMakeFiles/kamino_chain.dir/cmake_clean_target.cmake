file(REMOVE_RECURSE
  "libkamino_chain.a"
)
