# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("nvm")
subdirs("alloc")
subdirs("heap")
subdirs("txn")
subdirs("pds")
subdirs("kv")
subdirs("net")
subdirs("chain")
subdirs("workload")
subdirs("stats")
