file(REMOVE_RECURSE
  "CMakeFiles/kamino_alloc.dir/allocator.cc.o"
  "CMakeFiles/kamino_alloc.dir/allocator.cc.o.d"
  "libkamino_alloc.a"
  "libkamino_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
