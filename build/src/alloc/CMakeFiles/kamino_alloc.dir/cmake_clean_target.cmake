file(REMOVE_RECURSE
  "libkamino_alloc.a"
)
