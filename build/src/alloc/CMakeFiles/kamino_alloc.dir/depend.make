# Empty dependencies file for kamino_alloc.
# This may be replaced when dependencies are built.
