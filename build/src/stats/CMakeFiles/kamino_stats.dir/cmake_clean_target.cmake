file(REMOVE_RECURSE
  "libkamino_stats.a"
)
