file(REMOVE_RECURSE
  "CMakeFiles/kamino_stats.dir/histogram.cc.o"
  "CMakeFiles/kamino_stats.dir/histogram.cc.o.d"
  "libkamino_stats.a"
  "libkamino_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
