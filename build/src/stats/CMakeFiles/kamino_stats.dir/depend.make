# Empty dependencies file for kamino_stats.
# This may be replaced when dependencies are built.
