# Empty compiler generated dependencies file for kamino_workload.
# This may be replaced when dependencies are built.
