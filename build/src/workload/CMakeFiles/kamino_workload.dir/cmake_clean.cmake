file(REMOVE_RECURSE
  "CMakeFiles/kamino_workload.dir/tpcc_lite.cc.o"
  "CMakeFiles/kamino_workload.dir/tpcc_lite.cc.o.d"
  "CMakeFiles/kamino_workload.dir/ycsb.cc.o"
  "CMakeFiles/kamino_workload.dir/ycsb.cc.o.d"
  "libkamino_workload.a"
  "libkamino_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
