file(REMOVE_RECURSE
  "libkamino_workload.a"
)
