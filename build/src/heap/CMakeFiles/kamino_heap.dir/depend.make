# Empty dependencies file for kamino_heap.
# This may be replaced when dependencies are built.
