file(REMOVE_RECURSE
  "CMakeFiles/kamino_heap.dir/heap.cc.o"
  "CMakeFiles/kamino_heap.dir/heap.cc.o.d"
  "libkamino_heap.a"
  "libkamino_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
