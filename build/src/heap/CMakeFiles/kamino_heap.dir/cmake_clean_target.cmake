file(REMOVE_RECURSE
  "libkamino_heap.a"
)
