# Empty compiler generated dependencies file for kamino_pds.
# This may be replaced when dependencies are built.
