file(REMOVE_RECURSE
  "libkamino_pds.a"
)
