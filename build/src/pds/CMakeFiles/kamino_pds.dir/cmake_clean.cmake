file(REMOVE_RECURSE
  "CMakeFiles/kamino_pds.dir/bplus_tree.cc.o"
  "CMakeFiles/kamino_pds.dir/bplus_tree.cc.o.d"
  "CMakeFiles/kamino_pds.dir/dlist.cc.o"
  "CMakeFiles/kamino_pds.dir/dlist.cc.o.d"
  "CMakeFiles/kamino_pds.dir/hash_map.cc.o"
  "CMakeFiles/kamino_pds.dir/hash_map.cc.o.d"
  "CMakeFiles/kamino_pds.dir/pqueue.cc.o"
  "CMakeFiles/kamino_pds.dir/pqueue.cc.o.d"
  "libkamino_pds.a"
  "libkamino_pds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_pds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
