file(REMOVE_RECURSE
  "CMakeFiles/kamino_nvm.dir/pool.cc.o"
  "CMakeFiles/kamino_nvm.dir/pool.cc.o.d"
  "libkamino_nvm.a"
  "libkamino_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
