file(REMOVE_RECURSE
  "libkamino_nvm.a"
)
