# Empty compiler generated dependencies file for kamino_nvm.
# This may be replaced when dependencies are built.
