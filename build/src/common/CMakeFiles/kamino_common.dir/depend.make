# Empty dependencies file for kamino_common.
# This may be replaced when dependencies are built.
