file(REMOVE_RECURSE
  "libkamino_common.a"
)
