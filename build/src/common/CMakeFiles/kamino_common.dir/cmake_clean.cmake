file(REMOVE_RECURSE
  "CMakeFiles/kamino_common.dir/checksum.cc.o"
  "CMakeFiles/kamino_common.dir/checksum.cc.o.d"
  "CMakeFiles/kamino_common.dir/status.cc.o"
  "CMakeFiles/kamino_common.dir/status.cc.o.d"
  "libkamino_common.a"
  "libkamino_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
