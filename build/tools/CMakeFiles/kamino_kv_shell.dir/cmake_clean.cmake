file(REMOVE_RECURSE
  "CMakeFiles/kamino_kv_shell.dir/kamino_kv_shell.cc.o"
  "CMakeFiles/kamino_kv_shell.dir/kamino_kv_shell.cc.o.d"
  "kamino_kv_shell"
  "kamino_kv_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_kv_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
