# Empty compiler generated dependencies file for kamino_kv_shell.
# This may be replaced when dependencies are built.
