file(REMOVE_RECURSE
  "CMakeFiles/kamino_inspect.dir/kamino_inspect.cc.o"
  "CMakeFiles/kamino_inspect.dir/kamino_inspect.cc.o.d"
  "kamino_inspect"
  "kamino_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamino_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
