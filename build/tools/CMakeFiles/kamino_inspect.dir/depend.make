# Empty dependencies file for kamino_inspect.
# This may be replaced when dependencies are built.
