// The paper's evaluation in miniature: the persistent-B+Tree KV store run
// under YCSB-A (write-heavy) and YCSB-C (read-only) across all atomicity
// engines, printing throughput, latency and — hardware-independently — how
// many NVM cache lines each engine writes back on the critical path per
// operation.
//
// Build & run:  ./build/examples/kv_store_ycsb

#include <cstdio>

#include "src/kv/kv_store.h"
#include "src/stats/histogram.h"
#include "src/workload/ycsb.h"

using namespace kamino;

namespace {

constexpr uint64_t kKeys = 5'000;
constexpr uint64_t kOps = 8'000;
constexpr size_t kValueSize = 1024;  // The paper's record size.

void RunOne(txn::EngineType engine, workload::YcsbWorkload w) {
  heap::HeapOptions hopts;
  hopts.pool_size = 128ull << 20;
  hopts.flush_latency_ns = 150;  // NVDIMM-class write-back cost.
  auto heap = heap::Heap::Create(hopts).value();
  txn::TxManagerOptions mopts;
  mopts.engine = engine;
  auto mgr = txn::TxManager::Create(heap.get(), mopts).value();
  auto store = kv::KvStore::Create(mgr.get()).value();

  for (uint64_t k = 0; k < kKeys; ++k) {
    (void)store->Upsert(k, workload::YcsbValue(k, kValueSize));
  }
  mgr->WaitIdle();
  heap->pool()->ResetStats();

  std::atomic<uint64_t> count{kKeys};
  workload::YcsbGenerator gen(w, kKeys, &count, 7);
  stats::LatencyHistogram hist;
  const std::string value = workload::YcsbValue(1, kValueSize);
  const uint64_t start = stats::NowNanos();
  for (uint64_t i = 0; i < kOps; ++i) {
    const auto req = gen.Next();
    stats::ScopedLatency timer(&hist);
    switch (req.op) {
      case workload::YcsbOp::kRead:
        (void)store->Read(req.key);
        break;
      case workload::YcsbOp::kUpdate:
        (void)store->Update(req.key, value);
        break;
      case workload::YcsbOp::kInsert:
        (void)store->Upsert(req.key, value);
        break;
      case workload::YcsbOp::kReadModifyWrite:
        (void)store->ReadModifyWrite(req.key, [](std::string& v) { ++v[0]; });
        break;
    }
  }
  const double secs = static_cast<double>(stats::NowNanos() - start) / 1e9;
  mgr->WaitIdle();
  const nvm::PoolStats ps = heap->pool()->stats();
  std::printf("  %-16s %8.0f ops/s   mean %6.2f us   p99 %6.2f us   "
              "critical-path lines/op %5.1f\n",
              txn::EngineTypeName(engine), static_cast<double>(kOps) / secs,
              hist.MeanNs() / 1000.0, static_cast<double>(hist.PercentileNs(99)) / 1000.0,
              static_cast<double>(ps.lines_flushed) / static_cast<double>(kOps));
}

}  // namespace

int main() {
  std::printf("KV store, %llu x %zuB records, %llu ops per run\n\n",
              static_cast<unsigned long long>(kKeys), kValueSize,
              static_cast<unsigned long long>(kOps));
  for (workload::YcsbWorkload w : {workload::YcsbWorkload::kA, workload::YcsbWorkload::kC}) {
    std::printf("%s:\n", workload::YcsbWorkloadName(w));
    RunOne(txn::EngineType::kKaminoSimple, w);
    RunOne(txn::EngineType::kKaminoDynamic, w);
    RunOne(txn::EngineType::kUndoLog, w);
    RunOne(txn::EngineType::kCow, w);
    RunOne(txn::EngineType::kNoLogging, w);
    std::printf("\n");
  }
  return 0;
}
