// The paper's evaluation in miniature: the persistent-B+Tree KV store run
// under YCSB-A (write-heavy) and YCSB-C (read-only) across all atomicity
// engines, printing throughput, latency and — hardware-independently — how
// many NVM cache lines each engine writes back on the critical path per
// operation.
//
// Build & run:  ./build/examples/kv_store_ycsb [--shards=N]
//
// With --shards=N each workload additionally runs against a ShardedStore
// (N kamino-simple engine instances behind the router), so the table shows
// what key-space sharding adds on top of the single-engine rows.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/kv/kv_store.h"
#include "src/shard/sharded_store.h"
#include "src/stats/histogram.h"
#include "src/workload/ycsb.h"

using namespace kamino;

namespace {

constexpr uint64_t kKeys = 5'000;
constexpr uint64_t kOps = 8'000;
constexpr size_t kValueSize = 1024;  // The paper's record size.

void RunOne(txn::EngineType engine, workload::YcsbWorkload w) {
  heap::HeapOptions hopts;
  hopts.pool_size = 128ull << 20;
  hopts.flush_latency_ns = 150;  // NVDIMM-class write-back cost.
  auto heap = heap::Heap::Create(hopts).value();
  txn::TxManagerOptions mopts;
  mopts.engine = engine;
  auto mgr = txn::TxManager::Create(heap.get(), mopts).value();
  auto store = kv::KvStore::Create(mgr.get()).value();

  for (uint64_t k = 0; k < kKeys; ++k) {
    (void)store->Upsert(k, workload::YcsbValue(k, kValueSize));
  }
  mgr->WaitIdle();
  heap->pool()->ResetStats();

  std::atomic<uint64_t> count{kKeys};
  workload::YcsbGenerator gen(w, kKeys, &count, 7);
  stats::LatencyHistogram hist;
  const std::string value = workload::YcsbValue(1, kValueSize);
  const uint64_t start = stats::NowNanos();
  for (uint64_t i = 0; i < kOps; ++i) {
    const auto req = gen.Next();
    stats::ScopedLatency timer(&hist);
    switch (req.op) {
      case workload::YcsbOp::kRead:
        (void)store->Read(req.key);
        break;
      case workload::YcsbOp::kUpdate:
        (void)store->Update(req.key, value);
        break;
      case workload::YcsbOp::kInsert:
        (void)store->Upsert(req.key, value);
        break;
      case workload::YcsbOp::kReadModifyWrite:
        (void)store->ReadModifyWrite(req.key, [](std::string& v) { ++v[0]; });
        break;
    }
  }
  const double secs = static_cast<double>(stats::NowNanos() - start) / 1e9;
  mgr->WaitIdle();
  const nvm::PoolStats ps = heap->pool()->stats();
  std::printf("  %-16s %8.0f ops/s   mean %6.2f us   p99 %6.2f us   "
              "critical-path lines/op %5.1f\n",
              txn::EngineTypeName(engine), static_cast<double>(kOps) / secs,
              hist.MeanNs() / 1000.0, static_cast<double>(hist.PercentileNs(99)) / 1000.0,
              static_cast<double>(ps.lines_flushed) / static_cast<double>(kOps));
}

void RunSharded(int shards, workload::YcsbWorkload w) {
  shard::ShardedStoreOptions sopts;
  sopts.num_shards = shards;
  sopts.pool_size = 64ull << 20;
  sopts.flush_latency_ns = 150;  // Matches the single-engine rows.
  auto store = shard::ShardedStore::Create(sopts).value();

  for (uint64_t k = 0; k < kKeys; ++k) {
    (void)store->Upsert(k, workload::YcsbValue(k, kValueSize));
  }
  store->WaitIdle();
  for (int s = 0; s < shards; ++s) {
    store->shard_manager(s)->heap()->pool()->ResetStats();
  }

  std::atomic<uint64_t> count{kKeys};
  workload::YcsbGenerator gen(w, kKeys, &count, 7);
  stats::LatencyHistogram hist;
  const std::string value = workload::YcsbValue(1, kValueSize);
  const uint64_t start = stats::NowNanos();
  for (uint64_t i = 0; i < kOps; ++i) {
    const auto req = gen.Next();
    stats::ScopedLatency timer(&hist);
    switch (req.op) {
      case workload::YcsbOp::kRead:
        (void)store->Read(req.key);
        break;
      case workload::YcsbOp::kUpdate:
        (void)store->Update(req.key, value);
        break;
      case workload::YcsbOp::kInsert:
        (void)store->Upsert(req.key, value);
        break;
      case workload::YcsbOp::kReadModifyWrite:
        (void)store->ReadModifyWrite(req.key, [](std::string& v) { ++v[0]; });
        break;
    }
  }
  const double secs = static_cast<double>(stats::NowNanos() - start) / 1e9;
  store->WaitIdle();
  uint64_t lines = 0;
  for (int s = 0; s < shards; ++s) {
    lines += store->shard_manager(s)->heap()->pool()->stats().lines_flushed;
  }
  char label[32];
  std::snprintf(label, sizeof(label), "kamino x%d shards", shards);
  std::printf("  %-16s %8.0f ops/s   mean %6.2f us   p99 %6.2f us   "
              "critical-path lines/op %5.1f\n",
              label, static_cast<double>(kOps) / secs, hist.MeanNs() / 1000.0,
              static_cast<double>(hist.PercentileNs(99)) / 1000.0,
              static_cast<double>(lines) / static_cast<double>(kOps));
}

}  // namespace

int main(int argc, char** argv) {
  int shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    }
  }
  std::printf("KV store, %llu x %zuB records, %llu ops per run\n\n",
              static_cast<unsigned long long>(kKeys), kValueSize,
              static_cast<unsigned long long>(kOps));
  for (workload::YcsbWorkload w : {workload::YcsbWorkload::kA, workload::YcsbWorkload::kC}) {
    std::printf("%s:\n", workload::YcsbWorkloadName(w));
    RunOne(txn::EngineType::kKaminoSimple, w);
    RunOne(txn::EngineType::kKaminoDynamic, w);
    RunOne(txn::EngineType::kUndoLog, w);
    RunOne(txn::EngineType::kCow, w);
    RunOne(txn::EngineType::kNoLogging, w);
    if (shards > 0) {
      RunSharded(shards, w);
    }
    std::printf("\n");
  }
  return 0;
}
