// Power-failure demo: a bank whose invariant (total balance) must survive a
// crash in the middle of a transfer. Uses the crash-simulating NVM pool:
// unflushed stores are lost exactly as in a real power cut, then the heap is
// re-attached and the engine's recovery rolls the incomplete transaction
// back from the backup copy (paper §3's Safety 1 & 2).
//
// Build & run:  ./build/examples/crash_recovery

#include <cstdio>

#include "src/heap/heap.h"
#include "src/txn/tx_manager.h"

using namespace kamino;

namespace {
constexpr int kAccounts = 8;
constexpr int64_t kInitialBalance = 1000;

int64_t TotalBalance(nvm::Pool* pool, const uint64_t* offsets) {
  int64_t total = 0;
  for (int i = 0; i < kAccounts; ++i) {
    total += *static_cast<const int64_t*>(pool->At(offsets[i]));
  }
  return total;
}
}  // namespace

int main() {
  // Pools created explicitly so they survive the simulated "machine" (heap +
  // manager) across the crash.
  nvm::PoolOptions popts;
  popts.size = 64ull << 20;
  popts.crash_sim = true;
  auto main_pool = nvm::Pool::Create(popts).value();
  auto backup_pool = nvm::Pool::Create(popts).value();

  uint64_t offsets[kAccounts];

  txn::TxManagerOptions mopts;
  mopts.engine = txn::EngineType::kKaminoSimple;
  mopts.external_backup_pool = backup_pool.get();

  {
    auto heap = heap::Heap::CreateOn(main_pool.get(), 16ull << 20).value();
    auto mgr = txn::TxManager::Create(heap.get(), mopts).value();

    // Open accounts.
    Status st = mgr->Run([&](txn::Tx& tx) -> Status {
      for (auto& off : offsets) {
        off = tx.Alloc(sizeof(int64_t)).value();
        *static_cast<int64_t*>(tx.OpenWrite(off, sizeof(int64_t)).value()) =
            kInitialBalance;
      }
      return Status::Ok();
    });
    mgr->WaitIdle();
    std::printf("setup: %s, total = %lld\n", st.ToString().c_str(),
                static_cast<long long>(TotalBalance(main_pool.get(), offsets)));

    // Begin a transfer and "lose power" halfway: the debit is persisted, the
    // credit never happens, and no commit record is written.
    {
      txn::Tx tx = std::move(mgr->Begin().value());
      auto* from = static_cast<int64_t*>(tx.OpenWrite(offsets[0], sizeof(int64_t)).value());
      *from -= 700;
      main_pool->Persist(from, sizeof(int64_t));  // The debit reached NVM!
      std::printf("mid-transfer: account[0]=%lld (debited, tx not committed)\n",
                  static_cast<long long>(*from));
      tx.LeakForCrashTest();  // The process dies here.
    }
  }
  // ---- POWER FAILURE ----
  (void)main_pool->Crash();
  (void)backup_pool->Crash();
  std::printf("\n*** power failure ***\n\n");

  // Restart: attach the heap, and let TxManager::Open run recovery — the
  // incomplete transaction is treated as aborted and rolled back from the
  // backup.
  auto heap = heap::Heap::Attach(main_pool.get()).value();
  auto mgr = txn::TxManager::Open(heap.get(), mopts).value();
  const txn::EngineStats es = mgr->engine()->stats();
  std::printf("recovery: rolled forward %llu, rolled back %llu transaction(s)\n",
              static_cast<unsigned long long>(es.recovered_forward),
              static_cast<unsigned long long>(es.recovered_back));

  const int64_t total = TotalBalance(main_pool.get(), offsets);
  std::printf("account[0]=%lld, total=%lld (%s)\n",
              static_cast<long long>(
                  *static_cast<const int64_t*>(main_pool->At(offsets[0]))),
              static_cast<long long>(total),
              total == kAccounts * kInitialBalance ? "invariant holds" : "CORRUPT");

  // The store keeps working after recovery.
  Status st = mgr->Run([&](txn::Tx& tx) -> Status {
    auto* a = static_cast<int64_t*>(tx.OpenWrite(offsets[0], sizeof(int64_t)).value());
    auto* b = static_cast<int64_t*>(tx.OpenWrite(offsets[1], sizeof(int64_t)).value());
    *a -= 700;
    *b += 700;
    return Status::Ok();
  });
  mgr->WaitIdle();
  std::printf("retried transfer: %s, total=%lld\n", st.ToString().c_str(),
              static_cast<long long>(TotalBalance(main_pool.get(), offsets)));
  return total == kAccounts * kInitialBalance ? 0 : 1;
}
