// Quickstart: the Kamino-Tx transactional persistent heap in ~80 lines.
//
// Creates a persistent heap, runs transactions over it with the Kamino-Tx
// engine (in-place updates, asynchronous backup), shows rollback on abort,
// and prints what the engine did. See examples/crash_recovery.cpp for the
// power-failure story and examples/kv_store_ycsb.cpp for the full stack.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <cstring>

#include "src/heap/heap.h"
#include "src/txn/tx_manager.h"

using namespace kamino;

// A persistent object: plain data plus persistent pointers (offsets).
struct Account {
  char owner[24];
  int64_t balance;
};

int main() {
  // 1. A persistent heap (file-backed in production: set HeapOptions::path).
  heap::HeapOptions hopts;
  hopts.pool_size = 64ull << 20;
  auto heap = heap::Heap::Create(hopts).value();

  // 2. A transaction manager with the Kamino-Tx engine. Swap `engine` for
  //    kUndoLog / kCow / kNoLogging to run the same code on the baselines.
  txn::TxManagerOptions mopts;
  mopts.engine = txn::EngineType::kKaminoSimple;
  auto mgr = txn::TxManager::Create(heap.get(), mopts).value();

  // 3. Allocate two accounts in a transaction and anchor them at the root.
  heap::PPtr<Account> alice, bob;
  Status st = mgr->Run([&](txn::Tx& tx) -> Status {
    alice = tx.AllocObject<Account>().value();
    bob = tx.AllocObject<Account>().value();
    Account* a = tx.OpenWrite(alice).value();
    std::strcpy(a->owner, "alice");
    a->balance = 100;
    Account* b = tx.OpenWrite(bob).value();
    std::strcpy(b->owner, "bob");
    b->balance = 50;
    return Status::Ok();
  });
  std::printf("setup: %s\n", st.ToString().c_str());
  heap->set_root(alice.offset);

  // 4. A multi-object transaction: transfer money atomically. No data is
  //    copied in the critical path — the engine records only the two object
  //    addresses in its intent log and edits in place.
  st = mgr->Run([&](txn::Tx& tx) -> Status {
    Account* a = tx.OpenWrite(alice).value();
    Account* b = tx.OpenWrite(bob).value();
    a->balance -= 30;
    b->balance += 30;
    return Status::Ok();
  });
  std::printf("transfer: %s  (alice=%lld bob=%lld)\n", st.ToString().c_str(),
              static_cast<long long>(heap->Deref(alice)->balance),
              static_cast<long long>(heap->Deref(bob)->balance));

  // 5. Abort: the in-place edits are rolled back from the backup copy.
  st = mgr->Run([&](txn::Tx& tx) -> Status {
    Account* a = tx.OpenWrite(alice).value();
    a->balance = -999'999;
    return Status::Internal("changed my mind");
  });
  std::printf("aborted tx: %s  (alice=%lld — unchanged)\n", st.ToString().c_str(),
              static_cast<long long>(heap->Deref(alice)->balance));

  // 6. What happened under the hood.
  mgr->WaitIdle();
  const txn::EngineStats es = mgr->engine()->stats();
  std::printf("engine: %llu committed, %llu aborted, %llu applied to backup\n",
              static_cast<unsigned long long>(es.committed),
              static_cast<unsigned long long>(es.aborted),
              static_cast<unsigned long long>(es.applied));
  const auto fp = mgr->footprint();
  std::printf("NVM: main=%llu MiB backup=%llu MiB\n",
              static_cast<unsigned long long>(fp.main_bytes >> 20),
              static_cast<unsigned long long>(fp.backup_bytes >> 20));
  return 0;
}
