// Kamino-Tx-Chain demo (paper §5): a replicated KV chain tolerating two
// failures with in-place updates at every replica and a backup only at the
// head — then a live failover: kill the head, promote, keep serving.
//
// Build & run:  ./build/examples/replicated_chain

#include <cstdio>

#include "src/chain/chain.h"

using namespace kamino;

int main() {
  chain::ChainOptions copts;
  copts.kamino = true;
  copts.f = 2;  // f+2 = 4 replicas (Table 1's amortized scheme).
  copts.pool_size = 32ull << 20;
  copts.log_region_size = 4ull << 20;
  copts.one_way_latency_us = 10;
  auto ch = chain::Chain::Create(copts).value();

  const chain::View v0 = ch->current_view();
  std::printf("chain up: %zu replicas, head=node%llu tail=node%llu, "
              "total NVM = %llu MiB (pool is %llu MiB)\n",
              ch->num_replicas(), static_cast<unsigned long long>(v0.head()),
              static_cast<unsigned long long>(v0.tail()),
              static_cast<unsigned long long>(ch->total_nvm_bytes() >> 20),
              static_cast<unsigned long long>(copts.pool_size >> 20));

  // Writes flow head -> middle -> middle -> tail; the tail acknowledges.
  for (uint64_t k = 0; k < 50; ++k) {
    Status st = ch->Upsert(k, "value-" + std::to_string(k));
    if (!st.ok()) {
      std::printf("write %llu failed: %s\n", static_cast<unsigned long long>(k),
                  st.ToString().c_str());
      return 1;
    }
  }
  // A multi-object transaction replicates atomically too.
  (void)ch->MultiUpsert({{100, "all"}, {101, "or"}, {102, "nothing"}});
  std::printf("wrote 53 keys; read(100) = \"%s\"\n", ch->Read(100).value().c_str());

  // Every replica converged to the same state.
  (void)ch->Quiesce();
  for (uint64_t id : ch->current_view().nodes) {
    chain::Replica* r = ch->replica_by_id(id);
    std::printf("  node%llu: %llu keys, last_applied=%llu%s\n",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(r->tree()->CountSlow()),
                static_cast<unsigned long long>(r->last_applied()),
                r->is_head() ? "  (head, holds the backup)" : "");
  }

  // ---- Fail-stop the HEAD ----
  const uint64_t old_head = ch->current_view().head();
  std::printf("\nkilling head node%llu ...\n", static_cast<unsigned long long>(old_head));
  Status st = ch->KillReplica(old_head);
  const chain::View v1 = ch->current_view();
  std::printf("repair: %s — new head=node%llu (built its own backup, view %llu)\n",
              st.ToString().c_str(), static_cast<unsigned long long>(v1.head()),
              static_cast<unsigned long long>(v1.view_id));

  // The chain still serves reads and accepts writes.
  std::printf("read(1) after failover = \"%s\"\n", ch->Read(1).value().c_str());
  st = ch->Upsert(1, "updated-after-failover");
  std::printf("write after failover: %s, read(1) = \"%s\"\n", st.ToString().c_str(),
              ch->Read(1).value().c_str());

  // Restore full strength with a fresh tail (state transfer + catch-up).
  st = ch->AddReplica();
  std::printf("added replacement tail: %s — %zu replicas in view %llu\n",
              st.ToString().c_str(), ch->current_view().nodes.size(),
              static_cast<unsigned long long>(ch->current_view().view_id));
  (void)ch->Quiesce();
  chain::Replica* new_tail = ch->replica_by_id(ch->current_view().tail());
  std::printf("new tail holds %llu keys\n",
              static_cast<unsigned long long>(new_tail->tree()->CountSlow()));
  return 0;
}
