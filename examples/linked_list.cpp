// The paper's running example (Figure 4): a persistent doubly-linked list
// whose TxInsert / TxDelete / TxLookup / TxUpdate operations atomically
// modify several persistent objects at a time — over every atomicity engine.
//
// Build & run:  ./build/examples/linked_list

#include <cstdio>

#include "src/pds/dlist.h"

using namespace kamino;

namespace {

void Demo(txn::EngineType engine) {
  std::printf("--- engine: %s ---\n", txn::EngineTypeName(engine));

  heap::HeapOptions hopts;
  hopts.pool_size = 64ull << 20;
  auto heap = heap::Heap::Create(hopts).value();
  txn::TxManagerOptions mopts;
  mopts.engine = engine;
  auto mgr = txn::TxManager::Create(heap.get(), mopts).value();

  auto list = pds::DList::Create(mgr.get()).value();

  // TxInsert: the four-pointer splice (new node, prev->next, next->prev,
  // anchor) commits atomically.
  for (uint64_t key : {30u, 10u, 20u, 50u, 40u}) {
    Status st = list->Insert(key, static_cast<double>(key) * 1.5);
    std::printf("TxInsert(%llu) -> %s\n", static_cast<unsigned long long>(key),
                st.ToString().c_str());
  }

  // TxLookup / TxUpdate.
  std::printf("TxLookup(20) = %.1f\n", list->Lookup(20).value());
  (void)list->Update(20, 99.0);
  std::printf("after TxUpdate(20, 99): %.1f\n", list->Lookup(20).value());

  // TxDelete middle / head / tail.
  (void)list->Erase(30);
  (void)list->Erase(10);
  (void)list->Erase(50);
  std::printf("after deletes, %llu entries:",
              static_cast<unsigned long long>(list->size()));
  for (const auto& [k, v] : list->Items()) {
    std::printf("  (%llu -> %.1f)", static_cast<unsigned long long>(k), v);
  }
  std::printf("\n");

  mgr->WaitIdle();
  Status valid = list->Validate();
  std::printf("invariants: %s\n\n", valid.ToString().c_str());
}

}  // namespace

int main() {
  Demo(txn::EngineType::kKaminoSimple);
  Demo(txn::EngineType::kKaminoDynamic);
  Demo(txn::EngineType::kUndoLog);
  Demo(txn::EngineType::kCow);
  return 0;
}
