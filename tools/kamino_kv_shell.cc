// kamino_kv_shell — an interactive shell over a file-backed, durable KV
// store. Data written here survives process restarts: re-run the shell on
// the same file and the store re-opens through the recovery path.
//
//   ./build/tools/kamino_kv_shell /tmp/demo.pool [engine] [--shards=N]
//
//   > put 1 hello         engine: kamino | dynamic | undo | cow | redo
//   > get 1
//   > del 1
//   > scan 0 10
//   > mput 1 a 2 b        (sharded mode: one atomic cross-shard commit)
//   > stats
//   > quit
//
// With --shards=N the shell runs a ShardedStore over N engine instances;
// shard i lives in <pool-file>.shard<i> (+ .backup), `get` reports the
// owning shard, `mput` updates several keys in one atomic (2PC when
// cross-shard) transaction, and `stats` prints one line per shard.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/nvm/pool.h"
#include "src/shard/sharded_store.h"

using namespace kamino;

namespace {

txn::EngineType ParseEngine(const char* name) {
  if (std::strcmp(name, "undo") == 0) {
    return txn::EngineType::kUndoLog;
  }
  if (std::strcmp(name, "cow") == 0) {
    return txn::EngineType::kCow;
  }
  if (std::strcmp(name, "redo") == 0) {
    return txn::EngineType::kRedoLog;
  }
  if (std::strcmp(name, "dynamic") == 0) {
    return txn::EngineType::kKaminoDynamic;
  }
  return txn::EngineType::kKaminoSimple;
}

int RunSharded(const char* path, int num_shards, txn::EngineType engine) {
  if (engine != txn::EngineType::kKaminoSimple &&
      engine != txn::EngineType::kKaminoDynamic) {
    std::fprintf(stderr, "--shards requires a kamino engine (kamino|dynamic)\n");
    return 2;
  }
  constexpr uint64_t kShardPoolSize = 128ull << 20;
  shard::ShardedStoreOptions sopts;
  sopts.num_shards = num_shards;
  sopts.engine = engine;

  // Shard i lives in <path>.shard<i> (+ .backup). The first shard's main
  // pool decides create-vs-open for the whole set.
  std::vector<std::unique_ptr<nvm::Pool>> keepers;
  bool existing = false;
  for (int i = 0; i < num_shards; ++i) {
    const std::string main_path = std::string(path) + ".shard" + std::to_string(i);
    const std::string backup_path = main_path + ".backup";
    nvm::PoolOptions main_opts, backup_opts;
    main_opts.path = main_path;
    backup_opts.path = backup_path;
    if (i == 0) {
      existing = nvm::Pool::OpenFile(main_opts).ok();
    }
    if (!existing) {
      main_opts.size = kShardPoolSize;
      backup_opts.size = kShardPoolSize;
    }
    Result<std::unique_ptr<nvm::Pool>> main_pool =
        existing ? nvm::Pool::OpenFile(main_opts) : nvm::Pool::Create(main_opts);
    Result<std::unique_ptr<nvm::Pool>> backup_pool =
        existing ? nvm::Pool::OpenFile(backup_opts) : nvm::Pool::Create(backup_opts);
    if (!main_pool.ok() || !backup_pool.ok()) {
      std::fprintf(stderr, "shard %d pools unavailable: %s\n", i,
                   (!main_pool.ok() ? main_pool.status() : backup_pool.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    sopts.external_pools.push_back({main_pool->get(), backup_pool->get()});
    keepers.push_back(std::move(*main_pool));
    keepers.push_back(std::move(*backup_pool));
  }

  Result<std::unique_ptr<shard::ShardedStore>> opened =
      existing ? shard::ShardedStore::Open(sopts) : shard::ShardedStore::Create(sopts);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", existing ? "open" : "create",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<shard::ShardedStore> store = std::move(*opened);
  std::printf("%s %s (%d shards, engine %s)\n", existing ? "reopened" : "created", path,
              num_shards, txn::EngineTypeName(engine));

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "put") {
      uint64_t key = 0;
      std::string value;
      in >> key;
      std::getline(in, value);
      if (!value.empty() && value.front() == ' ') {
        value.erase(0, 1);
      }
      std::printf("%s\n", store->Upsert(key, value).ToString().c_str());
    } else if (cmd == "get") {
      uint64_t key = 0;
      in >> key;
      Result<std::string> v = store->Read(key);
      if (v.ok()) {
        std::printf("%s  (shard %zu)\n", v->c_str(), store->ShardOf(key));
      } else {
        std::printf("%s\n", v.status().ToString().c_str());
      }
    } else if (cmd == "del") {
      uint64_t key = 0;
      in >> key;
      std::printf("%s\n", store->Delete(key).ToString().c_str());
    } else if (cmd == "scan") {
      uint64_t start = 0, n = 10;
      in >> start >> n;
      Result<std::vector<std::pair<uint64_t, std::string>>> rows =
          store->Scan(start, static_cast<size_t>(n));
      if (!rows.ok()) {
        std::printf("%s\n", rows.status().ToString().c_str());
      } else {
        for (const auto& [k, v] : *rows) {
          std::printf("  %" PRIu64 " -> %s  (shard %zu)\n", k, v.c_str(), store->ShardOf(k));
        }
        std::printf("(%zu rows)\n", rows->size());
      }
    } else if (cmd == "mput") {
      std::vector<std::pair<uint64_t, std::string>> writes;
      uint64_t key = 0;
      std::string value;
      while (in >> key >> value) {
        writes.emplace_back(key, value);
      }
      if (writes.empty()) {
        std::printf("usage: mput <k> <v> [<k> <v> ...]  — keys must already exist\n");
      } else {
        std::printf("%s\n", store->MultiUpdate(writes).ToString().c_str());
      }
    } else if (cmd == "stats") {
      store->WaitIdle();
      for (int s = 0; s < store->num_shards(); ++s) {
        const txn::EngineStats es = store->ShardStats(s);
        std::printf("shard %d: committed=%" PRIu64 " aborted=%" PRIu64 " applied=%" PRIu64
                    " keys=%" PRIu64 " queue=%" PRIu64 "\n",
                    s, es.committed, es.aborted, es.applied,
                    store->shard_store(static_cast<size_t>(s))->tree()->CountSlow(),
                    es.applier_queue_depth);
      }
      const auto cs = store->cross_shard_stats();
      std::printf("cross-shard: commits=%" PRIu64 " aborts=%" PRIu64
                  " single-shard multi-updates=%" PRIu64 "\n",
                  cs.cross_shard_commits, cs.cross_shard_aborts,
                  cs.single_shard_multi_updates);
    } else if (!cmd.empty()) {
      std::printf("commands: put <k> <v> | get <k> | del <k> | scan <start> <n> | "
                  "mput <k> <v> [...] | stats | quit\n");
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  store->WaitIdle();
  std::printf("bye\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  const char* engine_name = nullptr;
  int shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
      if (shards < 1) {
        std::fprintf(stderr, "--shards=N requires N >= 1\n");
        return 2;
      }
    } else if (path == nullptr) {
      path = argv[i];
    } else if (engine_name == nullptr) {
      engine_name = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s <pool-file> [kamino|dynamic|undo|cow|redo] [--shards=N]\n",
                 argv[0]);
    return 2;
  }
  txn::EngineType engine =
      engine_name != nullptr ? ParseEngine(engine_name) : txn::EngineType::kKaminoSimple;
  if (shards > 0) {
    return RunSharded(path, shards, engine);
  }

  // Open the pool if it exists, create it otherwise.
  std::unique_ptr<nvm::Pool> pool;
  std::unique_ptr<heap::Heap> heap;
  std::unique_ptr<txn::TxManager> mgr;
  std::unique_ptr<kv::KvStore> store;

  nvm::PoolOptions popts;
  popts.path = path;
  Result<std::unique_ptr<nvm::Pool>> existing = nvm::Pool::OpenFile(popts);
  txn::TxManagerOptions mopts;
  mopts.engine = engine;
  mopts.backup_path = std::string(path) + ".backup";

  if (existing.ok()) {
    pool = std::move(*existing);
    heap = std::move(heap::Heap::Attach(pool.get()).value());
    if (engine == txn::EngineType::kKaminoSimple ||
        engine == txn::EngineType::kKaminoDynamic) {
      nvm::PoolOptions bopts;
      bopts.path = mopts.backup_path;
      Result<std::unique_ptr<nvm::Pool>> backup = nvm::Pool::OpenFile(bopts);
      if (!backup.ok()) {
        std::fprintf(stderr, "backup pool missing: %s\n",
                     backup.status().ToString().c_str());
        return 1;
      }
      mopts.external_backup_pool = backup->get();
      // Keep the backup alive for the session.
      static std::unique_ptr<nvm::Pool> backup_keeper;
      backup_keeper = std::move(*backup);
      mopts.external_backup_pool = backup_keeper.get();
    }
    Result<std::unique_ptr<txn::TxManager>> m = txn::TxManager::Open(heap.get(), mopts);
    if (!m.ok()) {
      std::fprintf(stderr, "open failed: %s\n", m.status().ToString().c_str());
      return 1;
    }
    mgr = std::move(*m);
    const txn::EngineStats es = mgr->engine()->stats();
    std::printf("reopened %s (recovery: %" PRIu64 " forward, %" PRIu64 " back)\n", path,
                es.recovered_forward, es.recovered_back);
    store = std::move(kv::KvStore::Open(mgr.get()).value());
  } else {
    popts.size = 256ull << 20;
    pool = std::move(nvm::Pool::Create(popts).value());
    heap = std::move(heap::Heap::CreateOn(pool.get(), 16ull << 20).value());
    Result<std::unique_ptr<txn::TxManager>> m = txn::TxManager::Create(heap.get(), mopts);
    if (!m.ok()) {
      std::fprintf(stderr, "create failed: %s\n", m.status().ToString().c_str());
      return 1;
    }
    mgr = std::move(*m);
    store = std::move(kv::KvStore::Create(mgr.get()).value());
    std::printf("created %s (256 MiB, engine %s)\n", path, txn::EngineTypeName(engine));
  }

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "put") {
      uint64_t key = 0;
      std::string value;
      in >> key;
      std::getline(in, value);
      if (!value.empty() && value.front() == ' ') {
        value.erase(0, 1);
      }
      std::printf("%s\n", store->Upsert(key, value).ToString().c_str());
    } else if (cmd == "get") {
      uint64_t key = 0;
      in >> key;
      Result<std::string> v = store->Read(key);
      std::printf("%s\n", v.ok() ? v->c_str() : v.status().ToString().c_str());
    } else if (cmd == "del") {
      uint64_t key = 0;
      in >> key;
      std::printf("%s\n", store->Delete(key).ToString().c_str());
    } else if (cmd == "scan") {
      uint64_t start = 0, n = 10;
      in >> start >> n;
      Result<std::vector<std::pair<uint64_t, std::string>>> rows =
          store->Scan(start, static_cast<size_t>(n));
      if (!rows.ok()) {
        std::printf("%s\n", rows.status().ToString().c_str());
      } else {
        for (const auto& [k, v] : *rows) {
          std::printf("  %" PRIu64 " -> %s\n", k, v.c_str());
        }
        std::printf("(%zu rows)\n", rows->size());
      }
    } else if (cmd == "stats") {
      mgr->WaitIdle();
      const txn::EngineStats es = mgr->engine()->stats();
      const auto fp = mgr->footprint();
      std::printf("engine=%s committed=%" PRIu64 " aborted=%" PRIu64 " applied=%" PRIu64
                  " keys=%" PRIu64 " main=%" PRIu64 "MiB backup=%" PRIu64 "MiB\n",
                  txn::EngineTypeName(engine), es.committed, es.aborted, es.applied,
                  store->tree()->CountSlow(), fp.main_bytes >> 20, fp.backup_bytes >> 20);
    } else if (!cmd.empty()) {
      std::printf("commands: put <k> <v> | get <k> | del <k> | scan <start> <n> | "
                  "stats | quit\n");
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  mgr->WaitIdle();
  std::printf("bye\n");
  return 0;
}
