// kamino_kv_shell — an interactive shell over a file-backed, durable KV
// store. Data written here survives process restarts: re-run the shell on
// the same file and the store re-opens through the recovery path.
//
//   ./build/tools/kamino_kv_shell /tmp/demo.pool [engine]
//
//   > put 1 hello         engine: kamino | dynamic | undo | cow | redo
//   > get 1
//   > del 1
//   > scan 0 10
//   > stats
//   > quit

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>

#include "src/kv/kv_store.h"
#include "src/nvm/pool.h"

using namespace kamino;

namespace {

txn::EngineType ParseEngine(const char* name) {
  if (std::strcmp(name, "undo") == 0) {
    return txn::EngineType::kUndoLog;
  }
  if (std::strcmp(name, "cow") == 0) {
    return txn::EngineType::kCow;
  }
  if (std::strcmp(name, "redo") == 0) {
    return txn::EngineType::kRedoLog;
  }
  if (std::strcmp(name, "dynamic") == 0) {
    return txn::EngineType::kKaminoDynamic;
  }
  return txn::EngineType::kKaminoSimple;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <pool-file> [kamino|dynamic|undo|cow|redo]\n", argv[0]);
    return 2;
  }
  const char* path = argv[1];
  txn::EngineType engine = argc > 2 ? ParseEngine(argv[2]) : txn::EngineType::kKaminoSimple;

  // Open the pool if it exists, create it otherwise.
  std::unique_ptr<nvm::Pool> pool;
  std::unique_ptr<heap::Heap> heap;
  std::unique_ptr<txn::TxManager> mgr;
  std::unique_ptr<kv::KvStore> store;

  nvm::PoolOptions popts;
  popts.path = path;
  Result<std::unique_ptr<nvm::Pool>> existing = nvm::Pool::OpenFile(popts);
  txn::TxManagerOptions mopts;
  mopts.engine = engine;
  mopts.backup_path = std::string(path) + ".backup";

  if (existing.ok()) {
    pool = std::move(*existing);
    heap = std::move(heap::Heap::Attach(pool.get()).value());
    if (engine == txn::EngineType::kKaminoSimple ||
        engine == txn::EngineType::kKaminoDynamic) {
      nvm::PoolOptions bopts;
      bopts.path = mopts.backup_path;
      Result<std::unique_ptr<nvm::Pool>> backup = nvm::Pool::OpenFile(bopts);
      if (!backup.ok()) {
        std::fprintf(stderr, "backup pool missing: %s\n",
                     backup.status().ToString().c_str());
        return 1;
      }
      mopts.external_backup_pool = backup->get();
      // Keep the backup alive for the session.
      static std::unique_ptr<nvm::Pool> backup_keeper;
      backup_keeper = std::move(*backup);
      mopts.external_backup_pool = backup_keeper.get();
    }
    Result<std::unique_ptr<txn::TxManager>> m = txn::TxManager::Open(heap.get(), mopts);
    if (!m.ok()) {
      std::fprintf(stderr, "open failed: %s\n", m.status().ToString().c_str());
      return 1;
    }
    mgr = std::move(*m);
    const txn::EngineStats es = mgr->engine()->stats();
    std::printf("reopened %s (recovery: %" PRIu64 " forward, %" PRIu64 " back)\n", path,
                es.recovered_forward, es.recovered_back);
    store = std::move(kv::KvStore::Open(mgr.get()).value());
  } else {
    popts.size = 256ull << 20;
    pool = std::move(nvm::Pool::Create(popts).value());
    heap = std::move(heap::Heap::CreateOn(pool.get(), 16ull << 20).value());
    Result<std::unique_ptr<txn::TxManager>> m = txn::TxManager::Create(heap.get(), mopts);
    if (!m.ok()) {
      std::fprintf(stderr, "create failed: %s\n", m.status().ToString().c_str());
      return 1;
    }
    mgr = std::move(*m);
    store = std::move(kv::KvStore::Create(mgr.get()).value());
    std::printf("created %s (256 MiB, engine %s)\n", path, txn::EngineTypeName(engine));
  }

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "put") {
      uint64_t key = 0;
      std::string value;
      in >> key;
      std::getline(in, value);
      if (!value.empty() && value.front() == ' ') {
        value.erase(0, 1);
      }
      std::printf("%s\n", store->Upsert(key, value).ToString().c_str());
    } else if (cmd == "get") {
      uint64_t key = 0;
      in >> key;
      Result<std::string> v = store->Read(key);
      std::printf("%s\n", v.ok() ? v->c_str() : v.status().ToString().c_str());
    } else if (cmd == "del") {
      uint64_t key = 0;
      in >> key;
      std::printf("%s\n", store->Delete(key).ToString().c_str());
    } else if (cmd == "scan") {
      uint64_t start = 0, n = 10;
      in >> start >> n;
      Result<std::vector<std::pair<uint64_t, std::string>>> rows =
          store->Scan(start, static_cast<size_t>(n));
      if (!rows.ok()) {
        std::printf("%s\n", rows.status().ToString().c_str());
      } else {
        for (const auto& [k, v] : *rows) {
          std::printf("  %" PRIu64 " -> %s\n", k, v.c_str());
        }
        std::printf("(%zu rows)\n", rows->size());
      }
    } else if (cmd == "stats") {
      mgr->WaitIdle();
      const txn::EngineStats es = mgr->engine()->stats();
      const auto fp = mgr->footprint();
      std::printf("engine=%s committed=%" PRIu64 " aborted=%" PRIu64 " applied=%" PRIu64
                  " keys=%" PRIu64 " main=%" PRIu64 "MiB backup=%" PRIu64 "MiB\n",
                  txn::EngineTypeName(engine), es.committed, es.aborted, es.applied,
                  store->tree()->CountSlow(), fp.main_bytes >> 20, fp.backup_bytes >> 20);
    } else if (!cmd.empty()) {
      std::printf("commands: put <k> <v> | get <k> | del <k> | scan <start> <n> | "
                  "stats | quit\n");
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  mgr->WaitIdle();
  std::printf("bye\n");
  return 0;
}
