#!/usr/bin/env python3
"""Compare bench runs against their committed baselines.

Accepts one or more --baseline/--candidate pairs (repeat both flags; they are
zipped in order) and dispatches on each JSON's top-level "bench" field:

  applier_scaling:  sweep points matched by applier_threads; a point fails if
      commit_to_applied_ops_per_sec dropped by more than --threshold
      (fraction) relative to the baseline. Faster is never an error.

  commit_path:      rows matched by (engine, fences, clients); a row fails if
      drains_per_txn *rose* by more than --threshold (fewer fences is the
      point of the bench). Additionally, both files' internal summaries must
      uphold the acceptance gates: kamino drains/txn at 8 clients reduced by
      >= 30% vs the legacy-fence rows, and the update p50 improved.

Both benches are latency-injection bound (the injected drains *sleep*), so
the metrics are mostly machine-independent and a quick-mode run (fewer
keys/ops) is comparable against the full baseline; the threshold absorbs the
residual noise.

Usage:
  tools/check_bench_regression.py \
      --baseline BENCH_applier_scaling.json \
      --candidate build/bench/BENCH_applier_scaling.json \
      --baseline BENCH_commit_path.json \
      --candidate build/bench/BENCH_commit_path.json \
      --threshold 0.25

Stdlib only by design: CI runners and the dev container have no pip.
"""

import argparse
import json
import sys

MIN_DRAINS_REDUCTION = 0.30


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def check_applier_scaling(baseline, candidate, threshold):
    """Throughput per applier_threads; lower candidate is a regression."""
    metric = "commit_to_applied_ops_per_sec"

    def points(doc, path):
        out = {int(p["applier_threads"]): float(p[metric]) for p in doc.get("results", [])}
        if not out:
            sys.exit(f"error: {path} has no sweep points under 'results'")
        return out

    base = points(*baseline)
    cand = points(*candidate)
    failures = []
    print(f"{'appliers':>8} {'baseline':>12} {'candidate':>12} {'ratio':>7}")
    for threads in sorted(base):
        if threads not in cand:
            print(f"{threads:>8} {base[threads]:>12.1f} {'missing':>12} {'-':>7}")
            continue
        ratio = cand[threads] / base[threads] if base[threads] > 0 else 1.0
        flag = ""
        if ratio < 1.0 - threshold:
            failures.append(f"{threads} appliers at {ratio:.2f}x baseline")
            flag = "  << REGRESSION"
        print(f"{threads:>8} {base[threads]:>12.1f} {cand[threads]:>12.1f} "
              f"{ratio:>7.2f}{flag}")
    return failures


def check_commit_path(baseline, candidate, threshold):
    """Drains per txn per (engine, fences, clients); higher candidate is a
    regression. Also enforces each file's internal acceptance gates."""

    def rows(doc, path):
        out = {}
        for r in doc.get("results", []):
            out[(r["engine"], r["fences"], int(r["clients"]))] = float(r["drains_per_txn"])
        if not out:
            sys.exit(f"error: {path} has no rows under 'results'")
        return out

    failures = []
    for doc, path in (baseline, candidate):
        s = doc.get("summary", {})
        reduction = float(s.get("drains_reduction", 0.0))
        p50_legacy = float(s.get("kamino_update_p50_legacy_8c_us", 0.0))
        p50_new = float(s.get("kamino_update_p50_new_8c_us", 0.0))
        print(f"{path}: drains_reduction {reduction:.1%}, "
              f"update p50 legacy {p50_legacy:.1f}us -> new {p50_new:.1f}us")
        if reduction < MIN_DRAINS_REDUCTION:
            failures.append(f"{path}: drains_reduction {reduction:.1%} "
                            f"< {MIN_DRAINS_REDUCTION:.0%}")
        if not p50_new < p50_legacy:
            failures.append(f"{path}: update p50 did not improve "
                            f"({p50_legacy:.1f}us -> {p50_new:.1f}us)")

    base = rows(*baseline)
    cand = rows(*candidate)
    print(f"{'engine/fences/clients':>32} {'baseline':>9} {'candidate':>10} {'ratio':>7}")
    for key in sorted(base):
        label = f"{key[0]}/{key[1]}/{key[2]}"
        if key not in cand:
            print(f"{label:>32} {base[key]:>9.3f} {'missing':>10} {'-':>7}")
            continue
        ratio = cand[key] / base[key] if base[key] > 0 else 1.0
        flag = ""
        if ratio > 1.0 + threshold:
            failures.append(f"{label} drains/txn at {ratio:.2f}x baseline")
            flag = "  << REGRESSION"
        print(f"{label:>32} {base[key]:>9.3f} {cand[key]:>10.3f} {ratio:>7.2f}{flag}")
    return failures


MAX_EPOCH_DRAINS_PER_TXN = 1.5
MAX_EPOCH_P50_VS_NOLOG = 1.5


def check_epoch(baseline, candidate, threshold):
    """Epoch/persist-behind acceptance gates (DESIGN.md §8) over commit_path
    JSONs; select with --checker epoch. Absolute gates, enforced on both
    files so a stale committed baseline cannot mask a regression: kamino
    drains/txn at 8 clients with epochs on <= 1.5 main-pool drains, and the
    epoch-mode update p50 (measured at DRAM-commit return, acks settled
    against the bounded outstanding window) <= 1.5x the no-logging engine.
    Per-row drift between the files still fails past --threshold."""

    def rows(doc, path):
        out = {}
        for r in doc.get("results", []):
            if r["fences"] != "epoch":
                continue
            out[(r["engine"], int(r["clients"]))] = float(r["drains_per_txn"])
        if not out:
            sys.exit(f"error: {path} has no epoch-fence rows under 'results'")
        return out

    failures = []
    for doc, path in (baseline, candidate):
        s = doc.get("summary", {})
        drains = float(s.get("kamino_drains_per_txn_epoch_8c", 0.0))
        ratio = float(s.get("epoch_p50_vs_nolog", 0.0))
        p50 = float(s.get("kamino_update_p50_epoch_8c_us", 0.0))
        nolog = float(s.get("nolog_update_p50_8c_us", 0.0))
        print(f"{path}: epoch drains/txn 8c {drains:.3f}, "
              f"epoch p50 {p50:.1f}us = {ratio:.2f}x no-logging ({nolog:.1f}us)")
        if not drains or not ratio:
            failures.append(f"{path}: missing epoch summary metrics "
                            "(kamino_drains_per_txn_epoch_8c / epoch_p50_vs_nolog)")
            continue
        if drains > MAX_EPOCH_DRAINS_PER_TXN:
            failures.append(f"{path}: epoch drains/txn at 8 clients {drains:.3f} "
                            f"> {MAX_EPOCH_DRAINS_PER_TXN:.1f}")
        if ratio > MAX_EPOCH_P50_VS_NOLOG:
            failures.append(f"{path}: epoch update p50 {ratio:.2f}x no-logging "
                            f"> {MAX_EPOCH_P50_VS_NOLOG:.1f}x at 8 clients")

    base = rows(*baseline)
    cand = rows(*candidate)
    print(f"{'engine/epoch/clients':>28} {'baseline':>9} {'candidate':>10} {'ratio':>7}")
    for key in sorted(base):
        label = f"{key[0]}/epoch/{key[1]}"
        if key not in cand:
            failures.append(f"{label}: epoch row missing from candidate")
            print(f"{label:>28} {base[key]:>9.3f} {'missing':>10} {'-':>7}")
            continue
        ratio = cand[key] / base[key] if base[key] > 0 else 1.0
        flag = ""
        if ratio > 1.0 + threshold:
            failures.append(f"{label} drains/txn at {ratio:.2f}x baseline")
            flag = "  << REGRESSION"
        print(f"{label:>28} {base[key]:>9.3f} {cand[key]:>10.3f} {ratio:>7.2f}{flag}")
    return failures


MIN_REPLAY_SPEEDUP = 2.0
MAX_ONLINE_FIRST_OP_SPREAD = 3.0
MIN_OFFLINE_FIRST_OP_SPREAD = 1.5


def check_recovery(baseline, candidate, threshold):
    """Restart latency per sweep point; higher candidate is a regression.
    Also enforces each file's internal acceptance gates: parallel replay must
    speed up >= 2x from 1 to 4 workers, online restart-to-first-op must stay
    roughly flat across heap sizes (bounded by the dirty set, not the heap),
    and offline restart-to-first-op must visibly grow with the heap (it pays
    the whole reconcile sweep up front — that contrast is the point)."""

    def rows(doc, path):
        out = {}
        for r in doc.get("results", []):
            key = (r["sweep"], r["engine"], r["mode"], int(r["heap_mb"]),
                   int(r["dirty_txs"]), int(r["workers"]))
            out[key] = float(r["restart_to_full_ms"])
        if not out:
            sys.exit(f"error: {path} has no sweep points under 'results'")
        return out

    failures = []
    for doc, path in (baseline, candidate):
        s = doc.get("summary", {})
        speedup = float(s.get("replay_speedup_1_to_4", 0.0))
        online = float(s.get("online_first_op_spread", 0.0))
        offline = float(s.get("offline_first_op_spread", 0.0))
        print(f"{path}: replay speedup 1->4 {speedup:.2f}x, first-op spread "
              f"online {online:.2f}x / offline {offline:.2f}x")
        if speedup < MIN_REPLAY_SPEEDUP:
            failures.append(f"{path}: replay speedup {speedup:.2f}x "
                            f"< {MIN_REPLAY_SPEEDUP:.1f}x (1 -> 4 workers)")
        if online > MAX_ONLINE_FIRST_OP_SPREAD:
            failures.append(f"{path}: online first-op spread {online:.2f}x "
                            f"> {MAX_ONLINE_FIRST_OP_SPREAD:.1f}x across heap sizes")
        if offline < MIN_OFFLINE_FIRST_OP_SPREAD:
            failures.append(f"{path}: offline first-op spread {offline:.2f}x "
                            f"< {MIN_OFFLINE_FIRST_OP_SPREAD:.1f}x — the offline/online "
                            "contrast vanished")

    base = rows(*baseline)
    cand = rows(*candidate)
    print(f"{'sweep point':>44} {'baseline':>9} {'candidate':>10} {'ratio':>7}")
    for key in sorted(base):
        label = f"{key[0]}/{key[1]}/{key[2]}/{key[3]}MB/d{key[4]}/w{key[5]}"
        if key not in cand:
            print(f"{label:>44} {base[key]:>9.1f} {'missing':>10} {'-':>7}")
            continue
        ratio = cand[key] / base[key] if base[key] > 0 else 1.0
        flag = ""
        if ratio > 1.0 + threshold:
            failures.append(f"{label} restart_to_full at {ratio:.2f}x baseline")
            flag = "  << REGRESSION"
        print(f"{label:>44} {base[key]:>9.1f} {cand[key]:>10.1f} {ratio:>7.2f}{flag}")
    return failures


MIN_SHARD_SPEEDUP = 2.5
MAX_CROSS_SHARD_PENALTY = 3.0


def check_sharding(baseline, candidate, threshold):
    """Throughput per (shards, cross_shard_pct); lower candidate is a
    regression. Also enforces each file's internal acceptance gates: going
    from 1 to 4 shards at 0% cross-shard must speed throughput up >= 2.5x
    (the point of sharding the commit front-end), and a 20% cross-shard mix
    at 4 shards must cost no more than 3x vs the 0% mix (the 2PC tax stays
    bounded)."""

    def points(doc, path):
        out = {}
        for p in doc.get("results", []):
            out[(int(p["shards"]), int(p["cross_shard_pct"]))] = float(p["ops_per_sec"])
        if not out:
            sys.exit(f"error: {path} has no sweep points under 'results'")
        return out

    failures = []
    for doc, path in (baseline, candidate):
        speedup = float(doc.get("speedup_1_to_4_shards", 0.0))
        penalty = float(doc.get("cross_shard_penalty_20pct", 0.0))
        print(f"{path}: 1->4 shard speedup {speedup:.2f}x, "
              f"20% cross-shard penalty {penalty:.2f}x")
        if speedup < MIN_SHARD_SPEEDUP:
            failures.append(f"{path}: shard speedup {speedup:.2f}x "
                            f"< {MIN_SHARD_SPEEDUP:.1f}x (1 -> 4 shards, 0% cross)")
        if penalty > MAX_CROSS_SHARD_PENALTY:
            failures.append(f"{path}: 20% cross-shard penalty {penalty:.2f}x "
                            f"> {MAX_CROSS_SHARD_PENALTY:.1f}x at 4 shards")

    base = points(*baseline)
    cand = points(*candidate)
    print(f"{'shards/cross%':>14} {'baseline':>12} {'candidate':>12} {'ratio':>7}")
    for key in sorted(base):
        label = f"{key[0]}/{key[1]}%"
        if key not in cand:
            print(f"{label:>14} {base[key]:>12.1f} {'missing':>12} {'-':>7}")
            continue
        ratio = cand[key] / base[key] if base[key] > 0 else 1.0
        flag = ""
        if ratio < 1.0 - threshold:
            failures.append(f"{label} ops/sec at {ratio:.2f}x baseline")
            flag = "  << REGRESSION"
        print(f"{label:>14} {base[key]:>12.1f} {cand[key]:>12.1f} {ratio:>7.2f}{flag}")
    return failures


MAX_BACKUP_SCAN_P50_INFLATION = 1.3
MIN_STALE_VS_HEAD = 1.8


def check_backup_reads(baseline, candidate, threshold):
    """Backup-epoch read-path acceptance gates (DESIGN.md §12). Absolute
    gates, enforced on both files so a stale committed baseline cannot mask
    a regression: a concurrent full-keyspace scan through the backup path
    (SnapshotScanChunked) inflates the writers' update p50 by at most 1.3x
    of the no-scan baseline AND by no more than the main-path (lock-taking)
    scan does; at 3 replicas, round-robined stale reads deliver >= 1.8x the
    throughput of the linearizable head-path reads. Per-phase p50 drift
    between the files still fails past --threshold."""

    failures = []
    for doc, path in (baseline, candidate):
        phases = doc.get("interference", {})
        backup = phases.get("backup_scan", {})
        main = phases.get("main_scan", {})
        backup_infl = float(backup.get("p50_inflation", 0.0))
        main_infl = float(main.get("p50_inflation", 0.0))
        stale = float(doc.get("chain", {}).get("replicas_3", {})
                      .get("stale_vs_head", 0.0))
        views = int(backup.get("snapshot_views", 0))
        errors = int(backup.get("scan_errors", 0)) + int(main.get("scan_errors", 0))
        print(f"{path}: backup-scan p50 inflation {backup_infl:.2f}x "
              f"(main-path {main_infl:.2f}x), stale-vs-head at 3 replicas "
              f"{stale:.2f}x, {views} snapshot views")
        if not backup_infl or not main_infl or not stale:
            failures.append(f"{path}: missing backup_reads metrics "
                            "(interference p50_inflation / chain stale_vs_head)")
            continue
        if backup_infl > MAX_BACKUP_SCAN_P50_INFLATION:
            failures.append(f"{path}: backup-scan update p50 inflation "
                            f"{backup_infl:.2f}x > "
                            f"{MAX_BACKUP_SCAN_P50_INFLATION:.1f}x baseline")
        if backup_infl > main_infl:
            failures.append(f"{path}: backup-scan p50 inflation {backup_infl:.2f}x "
                            f"exceeds the main-path scan's {main_infl:.2f}x — "
                            "the contention-free path contends more than 2PL")
        if stale < MIN_STALE_VS_HEAD:
            failures.append(f"{path}: stale reads at 3 replicas {stale:.2f}x "
                            f"head-path < {MIN_STALE_VS_HEAD:.1f}x")
        if views == 0:
            failures.append(f"{path}: backup_scan phase opened no snapshot "
                            "views — the scan never took the backup path")
        if errors:
            failures.append(f"{path}: {errors} scan errors during interference "
                            "phases")

    # Phase-level p50 drift between the two files. The main_scan row is
    # informational only: it measures 2PL lock-wait latency under a scanner,
    # which is wildly run-to-run noisy on small hosts, and its only gating
    # role — an upper bound the backup path must beat — is already enforced
    # absolutely above (backup_infl <= main_infl).
    base_doc, base_path = baseline
    cand_doc, cand_path = candidate
    print(f"{'phase':>14} {'baseline':>10} {'candidate':>10} {'ratio':>7}")
    for phase in ("baseline", "main_scan", "backup_scan"):
        b = float(base_doc.get("interference", {}).get(phase, {})
                  .get("update_p50_us", 0.0))
        c = float(cand_doc.get("interference", {}).get(phase, {})
                  .get("update_p50_us", 0.0))
        if b <= 0 or c <= 0:
            print(f"{phase:>14} {b:>10.1f} {'missing' if c <= 0 else c:>10} {'-':>7}")
            continue
        ratio = c / b
        flag = ""
        if ratio > 1.0 + threshold and phase != "main_scan":
            failures.append(f"{phase} update p50 at {ratio:.2f}x baseline")
            flag = "  << REGRESSION"
        elif ratio > 1.0 + threshold:
            flag = "  (informational)"
        print(f"{phase:>14} {b:>10.1f} {c:>10.1f} {ratio:>7.2f}{flag}")
    return failures


CHECKERS = {
    "applier_scaling": check_applier_scaling,
    "backup_reads": check_backup_reads,
    "commit_path": check_commit_path,
    "epoch": check_epoch,
    "recovery": check_recovery,
    "sharding": check_sharding,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, action="append",
                    help="committed baseline JSON (repeatable)")
    ap.add_argument("--candidate", required=True, action="append",
                    help="freshly produced JSON (repeatable, zipped with --baseline)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max allowed fractional change per point (default 0.25)")
    ap.add_argument("--checker", choices=sorted(CHECKERS),
                    help="run this checker for every pair instead of "
                         "dispatching on the JSON 'bench' field (e.g. the "
                         "epoch gates reuse commit_path files)")
    args = ap.parse_args()

    if len(args.baseline) != len(args.candidate):
        sys.exit("error: --baseline and --candidate must be given the same "
                 f"number of times ({len(args.baseline)} vs {len(args.candidate)})")

    failures = []
    for base_path, cand_path in zip(args.baseline, args.candidate):
        base = load(base_path)
        cand = load(cand_path)
        bench = base.get("bench", "")
        if cand.get("bench", "") != bench:
            sys.exit(f"error: bench mismatch: {base_path} is '{bench}', "
                     f"{cand_path} is '{cand.get('bench', '')}'")
        name = args.checker if args.checker else bench
        checker = CHECKERS.get(name)
        if checker is None:
            sys.exit(f"error: {base_path}: unknown bench '{name}' "
                     f"(known: {', '.join(sorted(CHECKERS))})")
        print(f"== {name}: {cand_path} vs {base_path}")
        failures += checker((base, base_path), (cand, cand_path), args.threshold)
        print()

    if failures:
        print(f"FAIL: {len(failures)} check(s) failed:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"OK: no metric regressed more than {args.threshold:.0%}; "
          "all internal gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
