#!/usr/bin/env python3
"""Compare an applier_scaling bench run against the committed baseline.

Matches sweep points by applier_threads and fails (exit 1) if any point's
commit_to_applied_ops_per_sec dropped by more than --threshold (fraction)
relative to the baseline. Faster-than-baseline is never an error.

The bench is latency-injection bound (the backup drain *sleeps*), so
commit->applied throughput is mostly machine-independent and a quick-mode run
(fewer keys/ops) is comparable against the full baseline; the threshold
absorbs the residual noise.

Usage:
  tools/check_bench_regression.py --baseline BENCH_applier_scaling.json \
      --candidate build/bench/BENCH_applier_scaling.json --threshold 0.25

Stdlib only by design: CI runners and the dev container have no pip.
"""

import argparse
import json
import sys

METRIC = "commit_to_applied_ops_per_sec"


def load_points(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    points = {}
    for p in doc.get("results", []):
        points[int(p["applier_threads"])] = float(p[METRIC])
    if not points:
        sys.exit(f"error: {path} has no sweep points under 'results'")
    return points


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--candidate", required=True, help="freshly produced JSON")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max allowed fractional drop per point (default 0.25)")
    args = ap.parse_args()

    baseline = load_points(args.baseline)
    candidate = load_points(args.candidate)

    regressions = []
    print(f"{'appliers':>8} {'baseline':>12} {'candidate':>12} {'ratio':>7}")
    for threads in sorted(baseline):
        if threads not in candidate:
            print(f"{threads:>8} {baseline[threads]:>12.1f} {'missing':>12} {'-':>7}")
            continue
        ratio = candidate[threads] / baseline[threads] if baseline[threads] > 0 else 1.0
        flag = ""
        if ratio < 1.0 - args.threshold:
            regressions.append((threads, ratio))
            flag = "  << REGRESSION"
        print(f"{threads:>8} {baseline[threads]:>12.1f} {candidate[threads]:>12.1f} "
              f"{ratio:>7.2f}{flag}")

    if regressions:
        worst = min(regressions, key=lambda r: r[1])
        print(f"\nFAIL: {len(regressions)} point(s) regressed more than "
              f"{args.threshold:.0%} (worst: {worst[0]} appliers at "
              f"{worst[1]:.2f}x baseline)")
        return 1
    print(f"\nOK: no point regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
