// kamino_inspect — offline inspector for file-backed Kamino-Tx heaps.
//
// Dumps the heap superblock, allocator occupancy, intent-log state (slot
// states + intent records, i.e. what recovery would see), and — when the
// heap root anchors a KV store or a shard anchor — the B+Tree's shape.
// Accepts several pools at once, so a sharded store's shards can be dumped
// in one invocation; prepared (in-doubt) slots print their gtxid and the
// coordinator shard whose slot decides them. Intended for debugging pools
// left behind by crashed processes:
//
//   ./build/tools/kamino_inspect /path/to/heap.pool [shard1.pool ...] [--verify]

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "src/chain/anchor.h"
#include "src/kv/kv_store.h"
#include "src/nvm/pool.h"
#include "src/shard/sharded_store.h"
#include "src/txn/tx_manager.h"

using namespace kamino;

namespace {

const char* StateName(txn::TxState s) {
  switch (s) {
    case txn::TxState::kFree:
      return "FREE";
    case txn::TxState::kRunning:
      return "RUNNING";
    case txn::TxState::kCommitted:
      return "COMMITTED";
    case txn::TxState::kAborted:
      return "ABORTED";
    case txn::TxState::kPrepared:
      return "PREPARED";
    case txn::TxState::kEpochCommitted:
      return "EPOCH-COMMITTED";
  }
  return "?";
}

const char* KindName(txn::IntentKind k) {
  switch (k) {
    case txn::IntentKind::kWrite:
      return "write";
    case txn::IntentKind::kAlloc:
      return "alloc";
    case txn::IntentKind::kFree:
      return "free";
    case txn::IntentKind::kCowWrite:
      return "cow-shadow";
    case txn::IntentKind::kRedoWrite:
      return "redo-staging";
    default:
      return "?";
  }
}

int Run(const char* path, bool verify) {
  nvm::PoolOptions popts;
  popts.path = path;
  Result<std::unique_ptr<nvm::Pool>> pool = nvm::Pool::OpenFile(popts);
  if (!pool.ok()) {
    std::fprintf(stderr, "cannot open pool: %s\n", pool.status().ToString().c_str());
    return 1;
  }
  std::printf("pool: %s (%" PRIu64 " MiB)\n", path, (*pool)->size() >> 20);

  Result<std::unique_ptr<heap::Heap>> heap = heap::Heap::Attach(pool->get());
  if (!heap.ok()) {
    std::fprintf(stderr, "not a Kamino-Tx heap: %s\n", heap.status().ToString().c_str());
    return 1;
  }
  std::printf("heap: log region @%" PRIu64 " (%" PRIu64 " MiB), root=%" PRIu64 "\n",
              (*heap)->log_region_offset(), (*heap)->log_region_size() >> 20,
              (*heap)->root());

  const alloc::AllocatorStats as = (*heap)->allocator()->stats();
  std::printf("allocator: %.1f MiB live / %.1f MiB reserved / %.1f MiB capacity "
              "(%" PRIu64 " allocs, %" PRIu64 " frees)\n",
              static_cast<double>(as.bytes_allocated) / (1 << 20),
              static_cast<double>(as.bytes_reserved) / (1 << 20),
              static_cast<double>(as.capacity) / (1 << 20), as.alloc_calls, as.free_calls);

  Result<std::unique_ptr<txn::LogManager>> log =
      txn::LogManager::Open(pool->get(), (*heap)->log_region_offset());
  if (!log.ok()) {
    std::fprintf(stderr, "log region unreadable: %s\n", log.status().ToString().c_str());
    return 1;
  }
  std::printf("intent log: %" PRIu64 " slots x %" PRIu64 " KiB, max txid %" PRIu64 "\n",
              (*log)->num_slots(), (*log)->slot_size() >> 10, (*log)->max_recovered_txid());
  // The durable backup-read cut stamp (DESIGN.md §12): a safe floor on the
  // transactions whose effects the backup copy provably covers. Zero on
  // pre-snapshot-read pools and non-Kamino engines.
  std::printf("backup epoch: %" PRIu64
              " applied transaction(s) durably stamped at the cut\n",
              (*log)->backup_epoch());
  const auto txs = (*log)->ScanForRecovery();
  if (txs.empty()) {
    std::printf("  all slots free — clean shutdown, nothing for recovery to do\n");
  }
  for (const txn::RecoveredTx& tx : txs) {
    if (tx.state == txn::TxState::kPrepared) {
      // In doubt: this shard voted yes in a cross-shard commit and crashed
      // before learning the outcome. Only the coordinator's slot decides —
      // sharded recovery commits iff that slot (same txid as our gtxid) is
      // durably COMMITTED, and presumes abort otherwise.
      std::printf("  slot %" PRIu64 ": txid=%" PRIu64 " state=%s gtxid=%" PRIu64
                  " coord_shard=%" PRIu64 ", %zu intent(s)"
                  "  [recovery: IN DOUBT — decided by coordinator shard %" PRIu64 "]\n",
                  tx.slot_index, tx.txid, StateName(tx.state), tx.gtxid, tx.coord_shard,
                  tx.intents.size(), tx.coord_shard);
    } else {
      std::printf("  slot %" PRIu64 ": txid=%" PRIu64 " state=%s, %zu intent(s)%s\n",
                  tx.slot_index, tx.txid, StateName(tx.state), tx.intents.size(),
                  tx.state == txn::TxState::kCommitted ? "  [recovery: roll forward]"
                                                       : "  [recovery: roll back]");
    }
    for (const txn::Intent& in : tx.intents) {
      std::printf("    %-12s off=%-12" PRIu64 " size=%-8" PRIu64 " aux=%" PRIu64 "\n",
                  KindName(in.kind), in.offset, in.size, in.aux);
    }
  }

  // The root either anchors a KV store's B+Tree directly, or — for a pool
  // that is one shard of a ShardedStore — a shard anchor pointing at it, or
  // — for a chain replica's pool — a chain anchor (promotion cursor + marker
  // ring + tree anchor).
  uint64_t tree_root = (*heap)->root();
  if (tree_root != 0 &&
      tree_root + sizeof(shard::ShardAnchor) <= (*pool)->size()) {
    const auto* anchor =
        static_cast<const shard::ShardAnchor*>((*pool)->At(tree_root));
    if (anchor->magic == shard::kShardAnchorMagic) {
      std::printf("shard anchor: shard %" PRIu64 " of %" PRIu64 " (version %" PRIu64
                  "), tree @%" PRIu64 "\n",
                  anchor->shard_index, anchor->num_shards, anchor->version,
                  anchor->tree_anchor);
      tree_root = anchor->tree_anchor;
    }
  }
  if (tree_root != 0 && tree_root == (*heap)->root() &&
      tree_root + sizeof(chain::ChainAnchor) <= (*pool)->size()) {
    const auto* anchor =
        static_cast<const chain::ChainAnchor*>((*pool)->At(tree_root));
    if (anchor->magic == chain::kChainAnchorMagic) {
      // The marker-ring maximum is the replica's durable applied watermark —
      // what a reboot would resume from.
      uint64_t high_water = 0;
      for (uint64_t slot : anchor->ring) {
        high_water = std::max(high_water, slot);
      }
      std::printf("chain anchor: promotion cursor %" PRIu64 " = %s\n",
                  anchor->view_cursor, chain::ViewCursorName(anchor->view_cursor));
      std::printf("  applied watermark (marker-ring max): op %" PRIu64
                  ", tree @%" PRIu64 "\n",
                  high_water, anchor->tree_anchor);
      tree_root = anchor->tree_anchor;
    }
  }

  if (verify && tree_root != 0) {
    // Heuristic: the root may anchor a KV store's B+Tree. Attach read-only
    // machinery (no recovery — we are inspecting, not repairing).
    txn::TxManagerOptions mopts;
    mopts.engine = txn::EngineType::kNoLogging;
    mopts.skip_recovery = true;
    Result<std::unique_ptr<txn::TxManager>> mgr = txn::TxManager::Open(heap->get(), mopts);
    if (mgr.ok()) {
      Result<std::unique_ptr<pds::BPlusTree>> tree =
          pds::BPlusTree::Attach(mgr->get(), tree_root);
      if (tree.ok()) {
        const Status v = (*tree)->Validate();
        const pds::BPlusTree::TreeStats ts = (*tree)->Stats();
        std::printf("b+tree @root: %" PRIu64 " keys, height %" PRIu64 ", %" PRIu64
                    " inner + %" PRIu64 " leaf nodes, %.0f%% leaf fill, invariants: %s\n",
                    ts.keys, ts.height, ts.inner_nodes, ts.leaf_nodes,
                    ts.avg_leaf_fill * 100.0, v.ToString().c_str());
      } else {
        std::printf("root does not anchor a B+Tree (%s)\n",
                    tree.status().ToString().c_str());
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <pool-file> [pool-file ...] [--verify]\n", argv[0]);
    return 2;
  }
  bool verify = false;
  int rc = 0, pools = 0;
  for (int i = 1; i < argc; ++i) {
    verify = verify || std::strcmp(argv[i], "--verify") == 0;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) {
      continue;
    }
    if (pools++ > 0) {
      std::printf("\n");
    }
    rc = std::max(rc, Run(argv[i], verify));
  }
  if (pools == 0) {
    std::fprintf(stderr, "usage: %s <pool-file> [pool-file ...] [--verify]\n", argv[0]);
    return 2;
  }
  return rc;
}
