// kamino_inspect — offline inspector for file-backed Kamino-Tx heaps.
//
// Dumps the heap superblock, allocator occupancy, intent-log state (slot
// states + intent records, i.e. what recovery would see), and — when the
// heap root anchors a KV store — the B+Tree's shape. Intended for debugging
// pools left behind by crashed processes:
//
//   ./build/tools/kamino_inspect /path/to/heap.pool [--verify]

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "src/kv/kv_store.h"
#include "src/nvm/pool.h"
#include "src/txn/tx_manager.h"

using namespace kamino;

namespace {

const char* StateName(txn::TxState s) {
  switch (s) {
    case txn::TxState::kFree:
      return "FREE";
    case txn::TxState::kRunning:
      return "RUNNING";
    case txn::TxState::kCommitted:
      return "COMMITTED";
    case txn::TxState::kAborted:
      return "ABORTED";
  }
  return "?";
}

const char* KindName(txn::IntentKind k) {
  switch (k) {
    case txn::IntentKind::kWrite:
      return "write";
    case txn::IntentKind::kAlloc:
      return "alloc";
    case txn::IntentKind::kFree:
      return "free";
    case txn::IntentKind::kCowWrite:
      return "cow-shadow";
    case txn::IntentKind::kRedoWrite:
      return "redo-staging";
    default:
      return "?";
  }
}

int Run(const char* path, bool verify) {
  nvm::PoolOptions popts;
  popts.path = path;
  Result<std::unique_ptr<nvm::Pool>> pool = nvm::Pool::OpenFile(popts);
  if (!pool.ok()) {
    std::fprintf(stderr, "cannot open pool: %s\n", pool.status().ToString().c_str());
    return 1;
  }
  std::printf("pool: %s (%" PRIu64 " MiB)\n", path, (*pool)->size() >> 20);

  Result<std::unique_ptr<heap::Heap>> heap = heap::Heap::Attach(pool->get());
  if (!heap.ok()) {
    std::fprintf(stderr, "not a Kamino-Tx heap: %s\n", heap.status().ToString().c_str());
    return 1;
  }
  std::printf("heap: log region @%" PRIu64 " (%" PRIu64 " MiB), root=%" PRIu64 "\n",
              (*heap)->log_region_offset(), (*heap)->log_region_size() >> 20,
              (*heap)->root());

  const alloc::AllocatorStats as = (*heap)->allocator()->stats();
  std::printf("allocator: %.1f MiB live / %.1f MiB reserved / %.1f MiB capacity "
              "(%" PRIu64 " allocs, %" PRIu64 " frees)\n",
              static_cast<double>(as.bytes_allocated) / (1 << 20),
              static_cast<double>(as.bytes_reserved) / (1 << 20),
              static_cast<double>(as.capacity) / (1 << 20), as.alloc_calls, as.free_calls);

  Result<std::unique_ptr<txn::LogManager>> log =
      txn::LogManager::Open(pool->get(), (*heap)->log_region_offset());
  if (!log.ok()) {
    std::fprintf(stderr, "log region unreadable: %s\n", log.status().ToString().c_str());
    return 1;
  }
  std::printf("intent log: %" PRIu64 " slots x %" PRIu64 " KiB, max txid %" PRIu64 "\n",
              (*log)->num_slots(), (*log)->slot_size() >> 10, (*log)->max_recovered_txid());
  const auto txs = (*log)->ScanForRecovery();
  if (txs.empty()) {
    std::printf("  all slots free — clean shutdown, nothing for recovery to do\n");
  }
  for (const txn::RecoveredTx& tx : txs) {
    std::printf("  slot %" PRIu64 ": txid=%" PRIu64 " state=%s, %zu intent(s)%s\n",
                tx.slot_index, tx.txid, StateName(tx.state), tx.intents.size(),
                tx.state == txn::TxState::kCommitted ? "  [recovery: roll forward]"
                                                     : "  [recovery: roll back]");
    for (const txn::Intent& in : tx.intents) {
      std::printf("    %-12s off=%-12" PRIu64 " size=%-8" PRIu64 " aux=%" PRIu64 "\n",
                  KindName(in.kind), in.offset, in.size, in.aux);
    }
  }

  if (verify && (*heap)->root() != 0) {
    // Heuristic: the root may anchor a KV store's B+Tree. Attach read-only
    // machinery (no recovery — we are inspecting, not repairing).
    txn::TxManagerOptions mopts;
    mopts.engine = txn::EngineType::kNoLogging;
    mopts.skip_recovery = true;
    Result<std::unique_ptr<txn::TxManager>> mgr = txn::TxManager::Open(heap->get(), mopts);
    if (mgr.ok()) {
      Result<std::unique_ptr<pds::BPlusTree>> tree =
          pds::BPlusTree::Attach(mgr->get(), (*heap)->root());
      if (tree.ok()) {
        const Status v = (*tree)->Validate();
        const pds::BPlusTree::TreeStats ts = (*tree)->Stats();
        std::printf("b+tree @root: %" PRIu64 " keys, height %" PRIu64 ", %" PRIu64
                    " inner + %" PRIu64 " leaf nodes, %.0f%% leaf fill, invariants: %s\n",
                    ts.keys, ts.height, ts.inner_nodes, ts.leaf_nodes,
                    ts.avg_leaf_fill * 100.0, v.ToString().c_str());
      } else {
        std::printf("root does not anchor a B+Tree (%s)\n",
                    tree.status().ToString().c_str());
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <pool-file> [--verify]\n", argv[0]);
    return 2;
  }
  const bool verify = argc > 2 && std::strcmp(argv[2], "--verify") == 0;
  return Run(argv[1], verify);
}
