#include "src/pds/pqueue.h"

#include <cstring>

namespace kamino::pds {

Result<std::unique_ptr<PQueue>> PQueue::Create(txn::TxManager* mgr) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  uint64_t anchor_off = 0;
  Status st = mgr->Run([&](txn::Tx& tx) -> Status {
    Result<uint64_t> off = tx.Alloc(sizeof(Anchor));  // Zeroed.
    if (!off.ok()) {
      return off.status();
    }
    anchor_off = *off;
    return Status::Ok();
  });
  if (!st.ok()) {
    return st;
  }
  mgr->WaitIdle();
  return std::unique_ptr<PQueue>(new PQueue(mgr, anchor_off));
}

Result<std::unique_ptr<PQueue>> PQueue::Attach(txn::TxManager* mgr, uint64_t anchor_offset) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  if (mgr->heap()->ObjectSize(anchor_offset) < sizeof(Anchor)) {
    return Status::InvalidArgument("anchor offset is not a live queue anchor");
  }
  return std::unique_ptr<PQueue>(new PQueue(mgr, anchor_offset));
}

Result<uint64_t> PQueue::PushBack(std::string_view value) {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t seq = 0;
  Status st = mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    const Anchor* a = anchor_view();
    const uint64_t old_tail = a->tail;

    const uint64_t bytes = offsetof(Node, data) + value.size();
    Result<uint64_t> noff = tx.Alloc(bytes, /*zero=*/false);
    if (!noff.ok()) {
      return noff.status();
    }
    Result<void*> nw = tx.OpenWrite(*noff, bytes);
    if (!nw.ok()) {
      return nw.status();
    }
    Result<void*> aw = tx.OpenWrite(anchor_off_, sizeof(Anchor));
    if (!aw.ok()) {
      return aw.status();
    }
    auto* anchor_w = static_cast<Anchor*>(*aw);
    auto* node = static_cast<Node*>(*nw);
    node->next = 0;
    node->seq = anchor_w->next_seq;
    node->vsize = static_cast<uint32_t>(value.size());
    std::memcpy(node->data, value.data(), value.size());

    if (old_tail != 0) {
      Result<void*> tw = tx.OpenWrite(old_tail, 0);
      if (!tw.ok()) {
        return tw.status();
      }
      static_cast<Node*>(*tw)->next = *noff;
    } else {
      anchor_w->head = *noff;
    }
    anchor_w->tail = *noff;
    ++anchor_w->size;
    seq = anchor_w->next_seq++;
    return Status::Ok();
  });
  if (!st.ok()) {
    return st;
  }
  return seq;
}

Result<std::string> PQueue::PopFront() {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out;
  Status st = mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    const Anchor* a = anchor_view();
    if (a->head == 0) {
      return Status::NotFound("queue empty");
    }
    const uint64_t victim = a->head;
    const Node* node = NodeAt(victim);
    out.assign(reinterpret_cast<const char*>(node->data), node->vsize);

    Result<void*> aw = tx.OpenWrite(anchor_off_, sizeof(Anchor));
    if (!aw.ok()) {
      return aw.status();
    }
    auto* anchor_w = static_cast<Anchor*>(*aw);
    anchor_w->head = node->next;
    if (anchor_w->head == 0) {
      anchor_w->tail = 0;
    }
    --anchor_w->size;
    return tx.Free(victim);
  });
  if (!st.ok()) {
    return st;
  }
  return out;
}

Result<std::string> PQueue::Front() const {
  std::lock_guard<std::mutex> guard(mu_);
  const Anchor* a = anchor_view();
  if (a->head == 0) {
    return Status::NotFound("queue empty");
  }
  const Node* node = NodeAt(a->head);
  return std::string(reinterpret_cast<const char*>(node->data), node->vsize);
}

uint64_t PQueue::size() const {
  std::lock_guard<std::mutex> guard(mu_);
  return anchor_view()->size;
}

std::vector<std::string> PQueue::Items() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::string> out;
  for (uint64_t cur = anchor_view()->head; cur != 0; cur = NodeAt(cur)->next) {
    const Node* n = NodeAt(cur);
    out.emplace_back(reinterpret_cast<const char*>(n->data), n->vsize);
  }
  return out;
}

Status PQueue::Validate() const {
  std::lock_guard<std::mutex> guard(mu_);
  const Anchor* a = anchor_view();
  uint64_t count = 0;
  uint64_t last = 0;
  uint64_t prev_seq = 0;
  for (uint64_t cur = a->head; cur != 0; cur = NodeAt(cur)->next) {
    const Node* n = NodeAt(cur);
    if (heap_->ObjectSize(cur) < offsetof(Node, data) + n->vsize) {
      return Status::Corruption("node not a live allocation of sufficient size");
    }
    if (count > 0 && n->seq <= prev_seq) {
      return Status::Corruption("sequence numbers not increasing");
    }
    prev_seq = n->seq;
    last = cur;
    if (++count > a->size + 1) {
      return Status::Corruption("chain longer than size (cycle?)");
    }
  }
  if (count != a->size) {
    return Status::Corruption("size field mismatch");
  }
  if (last != a->tail) {
    return Status::Corruption("tail mismatch");
  }
  return Status::Ok();
}

}  // namespace kamino::pds
