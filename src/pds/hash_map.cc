#include "src/pds/hash_map.h"

#include <cstring>

#include "src/common/cacheline.h"

namespace kamino::pds {

namespace {
uint64_t Mix(uint64_t key) {
  key ^= key >> 33;
  key *= 0xFF51AFD7ED558CCDull;
  key ^= key >> 33;
  key *= 0xC4CEB9FE1A85EC53ull;
  key ^= key >> 33;
  return key;
}
}  // namespace

Result<std::unique_ptr<HashMap>> HashMap::Create(txn::TxManager* mgr, uint64_t num_buckets) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  if (!IsPowerOfTwo(num_buckets)) {
    return Status::InvalidArgument("num_buckets must be a power of two");
  }
  uint64_t anchor_off = 0;
  Status st = mgr->Run([&](txn::Tx& tx) -> Status {
    Result<uint64_t> buckets = tx.Alloc(num_buckets * sizeof(uint64_t));  // Zeroed.
    if (!buckets.ok()) {
      return buckets.status();
    }
    Result<uint64_t> aoff = tx.Alloc(sizeof(Anchor));
    if (!aoff.ok()) {
      return aoff.status();
    }
    Result<void*> aw = tx.OpenWrite(*aoff, sizeof(Anchor));
    if (!aw.ok()) {
      return aw.status();
    }
    auto* anchor = static_cast<Anchor*>(*aw);
    anchor->buckets_off = *buckets;
    anchor->num_buckets = num_buckets;
    anchor_off = *aoff;
    return Status::Ok();
  });
  if (!st.ok()) {
    return st;
  }
  mgr->WaitIdle();
  return std::unique_ptr<HashMap>(new HashMap(mgr, anchor_off));
}

Result<std::unique_ptr<HashMap>> HashMap::Attach(txn::TxManager* mgr, uint64_t anchor_offset) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  if (mgr->heap()->ObjectSize(anchor_offset) < sizeof(Anchor)) {
    return Status::InvalidArgument("anchor offset is not a live map anchor");
  }
  return std::unique_ptr<HashMap>(new HashMap(mgr, anchor_offset));
}

uint64_t HashMap::BucketWordOffset(uint64_t key) const {
  const Anchor* a = anchor_view();
  return a->buckets_off + (Mix(key) & (a->num_buckets - 1)) * sizeof(uint64_t);
}

Result<uint64_t> HashMap::MakeNode(txn::Tx& tx, uint64_t key, std::string_view value,
                                   uint64_t next) {
  const uint64_t bytes = offsetof(Node, data) + value.size();
  Result<uint64_t> off = tx.Alloc(bytes, /*zero=*/false);
  if (!off.ok()) {
    return off.status();
  }
  Result<void*> w = tx.OpenWrite(*off, bytes);
  if (!w.ok()) {
    return w.status();
  }
  auto* node = static_cast<Node*>(*w);
  node->key = key;
  node->next = next;
  node->vsize = static_cast<uint32_t>(value.size());
  std::memcpy(node->data, value.data(), value.size());
  return *off;
}

Status HashMap::DoPut(txn::Tx& tx, uint64_t key, std::string_view value, bool replace) {
  // Declaring write intent on the bucket head is also the bucket lock; the
  // chain is stable for the rest of the transaction.
  const uint64_t word_off = BucketWordOffset(key);
  Result<void*> hw = tx.OpenWrite(word_off, sizeof(uint64_t));
  if (!hw.ok()) {
    return hw.status();
  }
  auto* head = static_cast<uint64_t*>(*hw);

  // Walk the chain looking for the key; remember the predecessor.
  uint64_t prev = 0;
  uint64_t cur = *head;
  while (cur != 0) {
    const Node* n = NodeAt(cur);
    if (n->key == key) {
      break;
    }
    prev = cur;
    cur = n->next;
  }

  if (cur != 0) {
    if (!replace) {
      return Status::AlreadyExists("key present");
    }
    const Node* old = NodeAt(cur);
    const uint64_t capacity = heap_->ObjectSize(cur);
    if (capacity >= offsetof(Node, data) + value.size()) {
      // Overwrite in place (whole-node intent).
      Result<void*> nw = tx.OpenWrite(cur, 0);
      if (!nw.ok()) {
        return nw.status();
      }
      auto* node = static_cast<Node*>(*nw);
      node->vsize = static_cast<uint32_t>(value.size());
      std::memcpy(node->data, value.data(), value.size());
      return Status::Ok();
    }
    // Replace the node: splice a fresh one in at the same position.
    Result<uint64_t> fresh = MakeNode(tx, key, value, old->next);
    if (!fresh.ok()) {
      return fresh.status();
    }
    if (prev == 0) {
      *head = *fresh;
    } else {
      Result<void*> pw = tx.OpenWrite(prev, 0);
      if (!pw.ok()) {
        return pw.status();
      }
      static_cast<Node*>(*pw)->next = *fresh;
    }
    return tx.Free(cur);
  }

  // Insert at head.
  Result<uint64_t> fresh = MakeNode(tx, key, value, *head);
  if (!fresh.ok()) {
    return fresh.status();
  }
  *head = *fresh;
  return Status::Ok();
}

Status HashMap::Put(uint64_t key, std::string_view value) {
  return mgr_->RunWithRetries(
      [&](txn::Tx& tx) { return DoPut(tx, key, value, /*replace=*/true); });
}

Status HashMap::Insert(uint64_t key, std::string_view value) {
  return mgr_->RunWithRetries(
      [&](txn::Tx& tx) { return DoPut(tx, key, value, /*replace=*/false); });
}

Result<std::string> HashMap::Get(uint64_t key) {
  std::string out;
  Status st = mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    const uint64_t word_off = BucketWordOffset(key);
    // Dependent read on the bucket: wait out pending writers of this chain.
    KAMINO_RETURN_IF_ERROR(tx.ReadLock(word_off));
    uint64_t cur = *static_cast<const uint64_t*>(heap_->pool()->At(word_off));
    while (cur != 0) {
      const Node* n = NodeAt(cur);
      if (n->key == key) {
        KAMINO_RETURN_IF_ERROR(tx.ReadLock(cur));
        out.assign(reinterpret_cast<const char*>(n->data), n->vsize);
        return Status::Ok();
      }
      cur = n->next;
    }
    return Status::NotFound("key absent");
  });
  if (!st.ok()) {
    return st;
  }
  return out;
}

bool HashMap::Contains(uint64_t key) {
  return Get(key).ok();
}

Status HashMap::Erase(uint64_t key) {
  return mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    const uint64_t word_off = BucketWordOffset(key);
    Result<void*> hw = tx.OpenWrite(word_off, sizeof(uint64_t));
    if (!hw.ok()) {
      return hw.status();
    }
    auto* head = static_cast<uint64_t*>(*hw);
    uint64_t prev = 0;
    uint64_t cur = *head;
    while (cur != 0) {
      const Node* n = NodeAt(cur);
      if (n->key == key) {
        break;
      }
      prev = cur;
      cur = n->next;
    }
    if (cur == 0) {
      return Status::NotFound("key absent");
    }
    const uint64_t next = NodeAt(cur)->next;
    if (prev == 0) {
      *head = next;
    } else {
      Result<void*> pw = tx.OpenWrite(prev, 0);
      if (!pw.ok()) {
        return pw.status();
      }
      static_cast<Node*>(*pw)->next = next;
    }
    return tx.Free(cur);
  });
}

std::vector<std::pair<uint64_t, std::string>> HashMap::Items() const {
  std::vector<std::pair<uint64_t, std::string>> out;
  const Anchor* a = anchor_view();
  for (uint64_t b = 0; b < a->num_buckets; ++b) {
    uint64_t cur = *static_cast<const uint64_t*>(
        heap_->pool()->At(a->buckets_off + b * sizeof(uint64_t)));
    while (cur != 0) {
      const Node* n = NodeAt(cur);
      out.emplace_back(n->key, std::string(reinterpret_cast<const char*>(n->data), n->vsize));
      cur = n->next;
    }
  }
  return out;
}

uint64_t HashMap::CountSlow() const { return Items().size(); }

Status HashMap::Validate() const {
  const Anchor* a = anchor_view();
  std::vector<uint64_t> seen;
  for (uint64_t b = 0; b < a->num_buckets; ++b) {
    uint64_t cur = *static_cast<const uint64_t*>(
        heap_->pool()->At(a->buckets_off + b * sizeof(uint64_t)));
    uint64_t hops = 0;
    while (cur != 0) {
      const Node* n = NodeAt(cur);
      if (heap_->ObjectSize(cur) < offsetof(Node, data) + n->vsize) {
        return Status::Corruption("node not a live allocation of sufficient size");
      }
      if ((Mix(n->key) & (a->num_buckets - 1)) != b) {
        return Status::Corruption("node on wrong chain");
      }
      seen.push_back(n->key);
      cur = n->next;
      if (++hops > 1u << 20) {
        return Status::Corruption("chain cycle");
      }
    }
  }
  std::sort(seen.begin(), seen.end());
  if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) {
    return Status::Corruption("duplicate key");
  }
  return Status::Ok();
}

}  // namespace kamino::pds
