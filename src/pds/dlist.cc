#include "src/pds/dlist.h"

namespace kamino::pds {

Result<std::unique_ptr<DList>> DList::Create(txn::TxManager* mgr) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  uint64_t anchor_off = 0;
  Status st = mgr->Run([&](txn::Tx& tx) -> Status {
    Result<uint64_t> off = tx.Alloc(sizeof(Anchor));
    if (!off.ok()) {
      return off.status();
    }
    anchor_off = *off;  // Alloc zeroes: head = tail = size = 0.
    return Status::Ok();
  });
  if (!st.ok()) {
    return st;
  }
  mgr->WaitIdle();
  return std::unique_ptr<DList>(new DList(mgr, anchor_off));
}

Result<std::unique_ptr<DList>> DList::Attach(txn::TxManager* mgr, uint64_t anchor_offset) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  if (mgr->heap()->ObjectSize(anchor_offset) < sizeof(Anchor)) {
    return Status::InvalidArgument("anchor offset is not a live list anchor");
  }
  return std::unique_ptr<DList>(new DList(mgr, anchor_offset));
}

Status DList::Insert(uint64_t key, double value) {
  std::lock_guard<std::mutex> guard(mu_);
  return mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    // Find the first node with a key >= `key` (its predecessor is `prev`).
    const Anchor* a = anchor_view();
    uint64_t cur = a->head;
    uint64_t prev = 0;
    while (cur != 0 && EntryAt(cur)->key < key) {
      prev = cur;
      cur = EntryAt(cur)->next;
    }
    if (cur != 0 && EntryAt(cur)->key == key) {
      return Status::AlreadyExists("key present");
    }

    // Figure 4's four-pointer splice, all inside one transaction.
    Result<uint64_t> noff = tx.Alloc(sizeof(Entry));
    if (!noff.ok()) {
      return noff.status();
    }
    Result<void*> nw = tx.OpenWrite(*noff, sizeof(Entry));
    if (!nw.ok()) {
      return nw.status();
    }
    auto* node = static_cast<Entry*>(*nw);
    node->type = 1;
    node->key = key;
    node->value = value;
    node->next = cur;
    node->prev = prev;

    Result<void*> aw = tx.OpenWrite(anchor_off_, sizeof(Anchor));
    if (!aw.ok()) {
      return aw.status();
    }
    auto* anchor_w = static_cast<Anchor*>(*aw);

    if (prev != 0) {
      Result<void*> pw = tx.OpenWrite(prev, sizeof(Entry));
      if (!pw.ok()) {
        return pw.status();
      }
      static_cast<Entry*>(*pw)->next = *noff;
    } else {
      anchor_w->head = *noff;
    }
    if (cur != 0) {
      Result<void*> cw = tx.OpenWrite(cur, sizeof(Entry));
      if (!cw.ok()) {
        return cw.status();
      }
      static_cast<Entry*>(*cw)->prev = *noff;
    } else {
      anchor_w->tail = *noff;
    }
    ++anchor_w->size;
    return Status::Ok();
  });
}

Status DList::Erase(uint64_t key) {
  std::lock_guard<std::mutex> guard(mu_);
  return mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    const Anchor* a = anchor_view();
    uint64_t cur = a->head;
    while (cur != 0 && EntryAt(cur)->key < key) {
      cur = EntryAt(cur)->next;
    }
    if (cur == 0 || EntryAt(cur)->key != key) {
      return Status::NotFound("key absent");
    }
    const Entry* victim = EntryAt(cur);
    const uint64_t prev = victim->prev;
    const uint64_t next = victim->next;

    Result<void*> aw = tx.OpenWrite(anchor_off_, sizeof(Anchor));
    if (!aw.ok()) {
      return aw.status();
    }
    auto* anchor_w = static_cast<Anchor*>(*aw);

    if (prev != 0) {
      Result<void*> pw = tx.OpenWrite(prev, sizeof(Entry));
      if (!pw.ok()) {
        return pw.status();
      }
      static_cast<Entry*>(*pw)->next = next;
    } else {
      anchor_w->head = next;
    }
    if (next != 0) {
      Result<void*> nw = tx.OpenWrite(next, sizeof(Entry));
      if (!nw.ok()) {
        return nw.status();
      }
      static_cast<Entry*>(*nw)->prev = prev;
    } else {
      anchor_w->tail = prev;
    }
    --anchor_w->size;
    return tx.Free(cur);
  });
}

Status DList::Update(uint64_t key, double value) {
  std::lock_guard<std::mutex> guard(mu_);
  return mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    uint64_t cur = anchor_view()->head;
    while (cur != 0 && EntryAt(cur)->key < key) {
      cur = EntryAt(cur)->next;
    }
    if (cur == 0 || EntryAt(cur)->key != key) {
      return Status::NotFound("key absent");
    }
    Result<void*> w = tx.OpenWrite(cur, sizeof(Entry));
    if (!w.ok()) {
      return w.status();
    }
    static_cast<Entry*>(*w)->value = value;
    return Status::Ok();
  });
}

Result<double> DList::Lookup(uint64_t key) {
  std::lock_guard<std::mutex> guard(mu_);
  double out = 0;
  Status st = mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    uint64_t cur = anchor_view()->head;
    while (cur != 0 && EntryAt(cur)->key < key) {
      cur = EntryAt(cur)->next;
    }
    if (cur == 0 || EntryAt(cur)->key != key) {
      return Status::NotFound("key absent");
    }
    // Dependent read on the node.
    KAMINO_RETURN_IF_ERROR(tx.ReadLock(cur));
    out = EntryAt(cur)->value;
    return Status::Ok();
  });
  if (!st.ok()) {
    return st;
  }
  return out;
}

std::vector<std::pair<uint64_t, double>> DList::Items() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::pair<uint64_t, double>> out;
  for (uint64_t cur = anchor_view()->head; cur != 0; cur = EntryAt(cur)->next) {
    const Entry* e = EntryAt(cur);
    out.emplace_back(e->key, e->value);
  }
  return out;
}

uint64_t DList::size() const { return anchor_view()->size; }

Status DList::Validate() const {
  std::lock_guard<std::mutex> guard(mu_);
  const Anchor* a = anchor_view();
  uint64_t count = 0;
  uint64_t prev = 0;
  uint64_t cur = a->head;
  uint64_t last_key = 0;
  while (cur != 0) {
    const Entry* e = EntryAt(cur);
    if (heap_->ObjectSize(cur) < sizeof(Entry)) {
      return Status::Corruption("node is not a live allocation");
    }
    if (e->prev != prev) {
      return Status::Corruption("prev pointer mismatch");
    }
    if (count > 0 && e->key <= last_key) {
      return Status::Corruption("keys out of order");
    }
    last_key = e->key;
    prev = cur;
    cur = e->next;
    ++count;
  }
  if (prev != a->tail) {
    return Status::Corruption("tail mismatch");
  }
  if (count != a->size) {
    return Status::Corruption("size field mismatch");
  }
  return Status::Ok();
}

}  // namespace kamino::pds
