// Transactional persistent doubly-linked list — the paper's running example
// (Figure 4: "Structure of the heap and the format of transactions in
// Kamino-Tx... a persistent doubly linked list").
//
// Each element is a persistent object holding a key, a value, and persistent
// prev/next pointers. Insert/erase atomically modify up to three objects
// (the new/victim node and its two neighbours), exactly the multi-object
// transaction shape the paper motivates.
//
// Operations are transactional and engine-agnostic. The list is sorted by
// key (making lookups meaningful) and keeps head/tail in a persistent
// anchor. A volatile mutex serializes structural operations — the object
// locks underneath still enforce the dependent-transaction semantics this
// library is about.

#ifndef SRC_PDS_DLIST_H_
#define SRC_PDS_DLIST_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/heap/heap.h"
#include "src/txn/tx_manager.h"

namespace kamino::pds {

class DList {
 public:
  // Paper Figure 4's node: native fields plus persistent pointers.
  struct Entry {
    int64_t type;
    uint64_t key;
    double value;
    uint64_t next;  // Offset; 0 = end.
    uint64_t prev;
  };

  struct Anchor {
    uint64_t head;
    uint64_t tail;
    uint64_t size;
  };

  // Creates an empty list; anchor() is its persistent offset.
  static Result<std::unique_ptr<DList>> Create(txn::TxManager* mgr);
  static Result<std::unique_ptr<DList>> Attach(txn::TxManager* mgr, uint64_t anchor_offset);

  uint64_t anchor() const { return anchor_off_; }

  // Inserts (key, value) keeping the list sorted ascending by key; duplicate
  // keys rejected with kAlreadyExists. Figure 4's TxInsert.
  Status Insert(uint64_t key, double value);

  // Figure 4's TxDelete.
  Status Erase(uint64_t key);

  // Figure 4's TxUpdate: overwrite the value of an existing key.
  Status Update(uint64_t key, double value);

  // Figure 4's TxLookup.
  Result<double> Lookup(uint64_t key);

  // Snapshot of all (key, value) pairs in order (test/diagnostic).
  std::vector<std::pair<uint64_t, double>> Items() const;

  uint64_t size() const;

  // Invariants: forward/backward consistency, sortedness, size field.
  Status Validate() const;

 private:
  DList(txn::TxManager* mgr, uint64_t anchor_off)
      : mgr_(mgr), heap_(mgr->heap()), anchor_off_(anchor_off) {}

  const Anchor* anchor_view() const {
    return static_cast<const Anchor*>(heap_->pool()->At(anchor_off_));
  }
  const Entry* EntryAt(uint64_t off) const {
    return static_cast<const Entry*>(heap_->pool()->At(off));
  }

  txn::TxManager* mgr_;
  heap::Heap* heap_;
  uint64_t anchor_off_;
  mutable std::mutex mu_;  // Serializes structural transactions.
};

}  // namespace kamino::pds

#endif  // SRC_PDS_DLIST_H_
