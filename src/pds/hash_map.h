// Transactional persistent chained hash map.
//
// A fixed bucket array (one large persistent allocation) holds chain heads;
// nodes are separate persistent objects with inline values. Unlike the
// B+Tree and DList, this structure needs no volatile structure lock at all:
// every writer's first action is to declare write intent on its bucket's
// head word, so the engines' object locks serialize all work per bucket —
// including the dependent-transaction wait on Kamino's pending objects —
// while operations on different buckets run fully in parallel.
//
// Lock-granularity discipline (important): bucket head words are always
// opened as 8-byte ranges at their own offset; chain nodes are always opened
// whole. Mixing granularities for the same data would defeat the object
// locks.

#ifndef SRC_PDS_HASH_MAP_H_
#define SRC_PDS_HASH_MAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/heap/heap.h"
#include "src/txn/tx_manager.h"

namespace kamino::pds {

class HashMap {
 public:
  struct Anchor {
    uint64_t buckets_off;  // Offset of the bucket array (num_buckets u64s).
    uint64_t num_buckets;  // Power of two.
  };

  // Creates a map with a fixed bucket count (power of two).
  static Result<std::unique_ptr<HashMap>> Create(txn::TxManager* mgr, uint64_t num_buckets);
  static Result<std::unique_ptr<HashMap>> Attach(txn::TxManager* mgr, uint64_t anchor_offset);

  uint64_t anchor() const { return anchor_off_; }

  // Insert-or-replace.
  Status Put(uint64_t key, std::string_view value);
  // Insert-only; kAlreadyExists if present.
  Status Insert(uint64_t key, std::string_view value);
  Result<std::string> Get(uint64_t key);
  Status Erase(uint64_t key);
  bool Contains(uint64_t key);

  // Full scan (diagnostic; not isolated against concurrent writers).
  std::vector<std::pair<uint64_t, std::string>> Items() const;
  uint64_t CountSlow() const;

  // Invariants: every node hashes to the chain it is on, nodes are live
  // allocations, no duplicate keys.
  Status Validate() const;

 private:
  struct Node {
    uint64_t key;
    uint64_t next;
    uint32_t vsize;
    uint8_t data[4];  // Flexible-array idiom.
  };

  HashMap(txn::TxManager* mgr, uint64_t anchor_off)
      : mgr_(mgr), heap_(mgr->heap()), anchor_off_(anchor_off) {}

  const Anchor* anchor_view() const {
    return static_cast<const Anchor*>(heap_->pool()->At(anchor_off_));
  }
  const Node* NodeAt(uint64_t off) const {
    return static_cast<const Node*>(heap_->pool()->At(off));
  }
  uint64_t BucketWordOffset(uint64_t key) const;

  Result<uint64_t> MakeNode(txn::Tx& tx, uint64_t key, std::string_view value, uint64_t next);

  Status DoPut(txn::Tx& tx, uint64_t key, std::string_view value, bool replace);

  txn::TxManager* mgr_;
  heap::Heap* heap_;
  uint64_t anchor_off_;
};

}  // namespace kamino::pds

#endif  // SRC_PDS_HASH_MAP_H_
