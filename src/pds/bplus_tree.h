// Transactional persistent B+Tree (the paper's KV-store substrate, §7: "a
// key-value store that uses a NVML based persistent B+Tree that we
// implement").
//
// Keys are uint64; values are variable-length byte strings stored in
// separate persistent blobs referenced from the leaves. All structural and
// value modifications go through the NVML-shaped transactional API, so the
// tree works identically over every atomicity engine — and OpenWrite is
// declared at node granularity, reproducing the paper's observation that
// "an entire C structure is typically logged ... even though only a few
// fields are typically modified".
//
// Concurrency model (paper §3: object-granularity read/write locks):
//   - A volatile tree-level reader/writer lock protects *descent* against
//     structural changes: lookups/updates hold it shared; inserts and
//     deletes (which may split/merge) hold it exclusive for the duration of
//     their transaction.
//   - Leaf nodes and value blobs are additionally protected by the engines'
//     object locks: writers take write intents; readers take read locks, so
//     dependent reads wait for pending backup syncs exactly as in the paper.
//
// Every public operation runs its own transaction (with conflict retries).
// *_InTx variants compose into a caller-managed transaction; the caller must
// hold the tree lock via LockShared()/LockExclusive() RAII guards.

#ifndef SRC_PDS_BPLUS_TREE_H_
#define SRC_PDS_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/heap/heap.h"
#include "src/txn/backup_store.h"
#include "src/txn/tx_manager.h"

namespace kamino::pds {

class BPlusTree {
 public:
  // Node geometry: a node is exactly 512 bytes (one size class), half the
  // payload of the paper's 1 KB values — so undo-logging a node costs about
  // as much as logging half a value.
  static constexpr uint32_t kMaxKeys = 30;
  // An inner split of a full node yields (kMaxKeys-1)/2 keys on the right
  // (one key moves up), so that is the minimum fill of any non-root node.
  static constexpr uint32_t kMinKeys = (kMaxKeys - 1) / 2;

  // Persistent anchor for a tree. Store its offset wherever your object
  // graph roots it (e.g. heap root).
  struct Header {
    uint64_t root;    // Node offset.
    uint64_t height;  // 1 = root is a leaf.
  };

  // Creates a new empty tree (allocates header + root leaf in a transaction)
  // and returns a handle. The header offset is at `anchor()`.
  static Result<std::unique_ptr<BPlusTree>> Create(txn::TxManager* mgr);

  // Attaches to an existing tree whose header lives at `header_offset`.
  static Result<std::unique_ptr<BPlusTree>> Attach(txn::TxManager* mgr,
                                                   uint64_t header_offset);

  uint64_t anchor() const { return header_off_; }

  // --- Self-contained operations (one transaction each, with retries) ------

  // Inserts; fails with kAlreadyExists if the key is present.
  Status Insert(uint64_t key, std::string_view value);
  // Overwrites an existing key's value; kNotFound if absent.
  Status Update(uint64_t key, std::string_view value);
  // Persist-behind Update (LogOptions::epoch_commit, DESIGN.md §8): returns
  // at DRAM-commit with `ack` carrying the epoch durability ticket; the
  // caller acknowledges via TxManager::WaitCommitDurable(*ack). The rare
  // structural retry (blob regrow) stays synchronous and returns ticket 0.
  Status UpdateAsync(uint64_t key, std::string_view value, txn::CommitAck* ack);
  // Insert-or-update.
  Status Upsert(uint64_t key, std::string_view value);
  // Point lookup.
  Result<std::string> Get(uint64_t key);
  // Removes a key (and frees its blob); kNotFound if absent.
  Status Delete(uint64_t key);
  // Read-modify-write in a single transaction. Write intent on the blob is
  // declared *before* the value is read (the supported same-object RMW
  // pattern — read-lock-then-write-lock within one transaction deadlocks).
  Status ReadModifyWrite(uint64_t key, const std::function<void(std::string&)>& mutate);
  // Ascending scan of up to `limit` pairs starting at the first key >= start.
  Result<std::vector<std::pair<uint64_t, std::string>>> Scan(uint64_t start, size_t limit);

  // --- Backup-snapshot reads (DESIGN.md §12) -------------------------------
  // Read-only descent served entirely from the engine's backup copy through
  // an open SnapshotView: no transaction, no object locks, no tree lock —
  // zero main-heap lock acquisition. Node and blob bytes are fetched with
  // view.Read into local buffers. Results are the transaction-consistent
  // state at view.epoch(). Valid only while `view` stays open; a chunked
  // caller must re-descend by key under each new view (leaf `next` offsets
  // may be freed and reused across view boundaries).
  Result<std::string> SnapshotGet(txn::BackupStore::SnapshotView& view, uint64_t key) const;
  // Up to `limit` pairs with key >= start, following the leaf chain inside
  // the one consistent view.
  Result<std::vector<std::pair<uint64_t, std::string>>> SnapshotScan(
      txn::BackupStore::SnapshotView& view, uint64_t start, size_t limit) const;

  // --- Composable operations (caller-managed transaction + tree lock) ------

  Status InsertInTx(txn::Tx& tx, uint64_t key, std::string_view value);
  Status UpdateInTx(txn::Tx& tx, uint64_t key, std::string_view value);
  Status ReadModifyWriteInTx(txn::Tx& tx, uint64_t key,
                             const std::function<void(std::string&)>& mutate);
  Status UpsertInTx(txn::Tx& tx, uint64_t key, std::string_view value);
  Result<std::string> GetInTx(txn::Tx& tx, uint64_t key);
  Status DeleteInTx(txn::Tx& tx, uint64_t key);
  Result<std::vector<std::pair<uint64_t, std::string>>> ScanInTx(txn::Tx& tx, uint64_t start,
                                                                 size_t limit);

  // First (key, value) with key >= start, read WITHOUT object read locks.
  // Safe only while the caller holds the exclusive tree guard (which keeps
  // all writers of this tree out); needed when the same transaction will
  // subsequently open the containing leaf for write — taking a read lock
  // first would self-deadlock (no lock upgrades). kNotFound past the end.
  Result<std::pair<uint64_t, std::string>> FirstAtLeastInTx(txn::Tx& tx, uint64_t start);

  // Tree-level lock guards for composed transactions. Insert/Delete/Upsert
  // require exclusive; Update/Get/Scan require at least shared.
  std::shared_lock<std::shared_mutex> LockShared() {
    return std::shared_lock<std::shared_mutex>(tree_mu_);
  }
  std::unique_lock<std::shared_mutex> LockExclusive() {
    return std::unique_lock<std::shared_mutex>(tree_mu_);
  }

  // Number of keys (walks the leaf chain; test/diagnostic use).
  uint64_t CountSlow() const;

  // Structural statistics (diagnostic; used by tools/kamino_inspect).
  struct TreeStats {
    uint64_t height = 0;
    uint64_t inner_nodes = 0;
    uint64_t leaf_nodes = 0;
    uint64_t keys = 0;
    double avg_leaf_fill = 0;  // Fraction of kMaxKeys, averaged over leaves.
  };
  TreeStats Stats() const;

  // Structural invariant check: key ordering, fanout bounds, uniform height,
  // leaf-chain consistency, blob liveness. Test hook.
  Status Validate() const;

  txn::TxManager* manager() { return mgr_; }

 private:
  struct Node {
    uint32_t is_leaf;
    uint32_t num_keys;
    uint64_t next;  // Leaf chain (0 for inner nodes / last leaf).
    uint64_t keys[kMaxKeys];
    // Inner: child node offsets (num_keys + 1 used).
    // Leaf: value blob offsets (num_keys used).
    uint64_t slots[kMaxKeys + 1];
  };
  static_assert(sizeof(Node) == 16 + kMaxKeys * 8 + (kMaxKeys + 1) * 8);

  // Value blob: [u32 size][bytes...].
  struct Blob {
    uint32_t size;
    uint8_t data[4];  // Flexible-array idiom.
  };

  BPlusTree(txn::TxManager* mgr, uint64_t header_off)
      : mgr_(mgr), heap_(mgr->heap()), header_off_(header_off) {}

  const Node* NodeAt(uint64_t off) const {
    return static_cast<const Node*>(heap_->pool()->At(off));
  }
  const Header* header() const {
    return static_cast<const Header*>(heap_->pool()->At(header_off_));
  }
  // Reads that must observe this transaction's own earlier writes (a CoW
  // shadow is invisible at the main offset until commit).
  const Node* NodeView(txn::Tx& tx, uint64_t off) const {
    const void* p = tx.OpenedPointer(off);
    return p != nullptr ? static_cast<const Node*>(p) : NodeAt(off);
  }
  const Header* HeaderView(txn::Tx& tx) const {
    const void* p = tx.OpenedPointer(header_off_);
    return p != nullptr ? static_cast<const Header*>(p) : header();
  }

  Result<uint64_t> WriteBlob(txn::Tx& tx, std::string_view value);
  Result<std::string> ReadBlobLocked(txn::Tx& tx, uint64_t blob_off);
  // Snapshot-path blob read. Both view.Read calls start at the blob's object
  // offset: the dynamic store's cut protocol keys pre-image copies by object
  // start, so an interior-offset read would miss the index and observe a
  // writer's torn in-place bytes on the main heap.
  Result<std::string> SnapshotReadBlob(txn::BackupStore::SnapshotView& view,
                                       uint64_t blob_off) const;

  // Splits full child `child_idx` of `parent` (both already open for write).
  // Returns the new right sibling's offset.
  Result<uint64_t> SplitChild(txn::Tx& tx, Node* parent, uint32_t child_idx);

  // Ensures the child at `child_idx` of `parent` has > kMinKeys before the
  // deletion descends into it (borrow from a sibling or merge).
  // `parent` is open for write. Returns the (possibly new) child offset to
  // descend into for `key`.
  Result<uint64_t> FixChildForDelete(txn::Tx& tx, Node* parent, uint32_t child_idx,
                                     uint64_t key);

  Status DoInsert(txn::Tx& tx, uint64_t key, std::string_view value, bool allow_update,
                  bool require_existing);
  Status DoDelete(txn::Tx& tx, uint64_t key);

  // Finds the index of the first key >= key (lower bound) in `node`.
  static uint32_t LowerBound(const Node* node, uint64_t key);
  // Child index to descend into for `key` in inner `node`.
  static uint32_t ChildIndex(const Node* node, uint64_t key);

  Status ValidateNode(uint64_t off, uint64_t depth, uint64_t height, uint64_t* leaf_count,
                      uint64_t min_key, uint64_t max_key, bool has_min, bool has_max) const;

  txn::TxManager* mgr_;
  heap::Heap* heap_;
  uint64_t header_off_;
  mutable std::shared_mutex tree_mu_;
};

}  // namespace kamino::pds

#endif  // SRC_PDS_BPLUS_TREE_H_
