#include "src/pds/bplus_tree.h"

#include <algorithm>
#include <cstring>

namespace kamino::pds {

namespace {
// Sentinel used internally: an in-place update could not fit and the caller
// must retry on the exclusive (structural) path.
Status NeedsRealloc() { return Status::NotSupported("blob realloc required"); }
}  // namespace

// --- Construction -------------------------------------------------------------

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(txn::TxManager* mgr) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  uint64_t header_off = 0;
  Status st = mgr->Run([&](txn::Tx& tx) -> Status {
    Result<uint64_t> hoff = tx.Alloc(sizeof(Header));
    if (!hoff.ok()) {
      return hoff.status();
    }
    Result<uint64_t> roff = tx.Alloc(sizeof(Node));
    if (!roff.ok()) {
      return roff.status();
    }
    Result<void*> rw = tx.OpenWrite(*roff, sizeof(Node));
    if (!rw.ok()) {
      return rw.status();
    }
    auto* root = static_cast<Node*>(*rw);
    root->is_leaf = 1;
    root->num_keys = 0;
    root->next = 0;

    Result<void*> hw = tx.OpenWrite(*hoff, sizeof(Header));
    if (!hw.ok()) {
      return hw.status();
    }
    auto* hdr = static_cast<Header*>(*hw);
    hdr->root = *roff;
    hdr->height = 1;
    header_off = *hoff;
    return Status::Ok();
  });
  if (!st.ok()) {
    return st;
  }
  mgr->WaitIdle();
  return std::unique_ptr<BPlusTree>(new BPlusTree(mgr, header_off));
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Attach(txn::TxManager* mgr,
                                                     uint64_t header_offset) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  if (mgr->heap()->ObjectSize(header_offset) < sizeof(Header)) {
    return Status::InvalidArgument("header offset is not a live tree header");
  }
  return std::unique_ptr<BPlusTree>(new BPlusTree(mgr, header_offset));
}

// --- Small helpers -------------------------------------------------------------

uint32_t BPlusTree::LowerBound(const Node* node, uint64_t key) {
  const uint64_t* begin = node->keys;
  const uint64_t* end = node->keys + node->num_keys;
  return static_cast<uint32_t>(std::lower_bound(begin, end, key) - begin);
}

uint32_t BPlusTree::ChildIndex(const Node* node, uint64_t key) {
  // Child i covers [k_{i-1}, k_i): keys equal to a separator descend right,
  // matching leaf splits where the separator is the right sibling's first
  // key.
  const uint64_t* begin = node->keys;
  const uint64_t* end = node->keys + node->num_keys;
  return static_cast<uint32_t>(std::upper_bound(begin, end, key) - begin);
}

Result<uint64_t> BPlusTree::WriteBlob(txn::Tx& tx, std::string_view value) {
  const uint64_t bytes = sizeof(uint32_t) + value.size();
  Result<uint64_t> off = tx.Alloc(bytes, /*zero=*/false);
  if (!off.ok()) {
    return off.status();
  }
  Result<void*> w = tx.OpenWrite(*off, bytes);
  if (!w.ok()) {
    return w.status();
  }
  auto* blob = static_cast<Blob*>(*w);
  blob->size = static_cast<uint32_t>(value.size());
  std::memcpy(blob->data, value.data(), value.size());
  return *off;
}

Result<std::string> BPlusTree::ReadBlobLocked(txn::Tx& tx, uint64_t blob_off) {
  // Dependent read: wait for any pending writer of this blob.
  KAMINO_RETURN_IF_ERROR(tx.ReadLock(blob_off));
  const void* p = tx.OpenedPointer(blob_off);
  if (p == nullptr) {
    p = heap_->pool()->At(blob_off);
  }
  const auto* blob = static_cast<const Blob*>(p);
  return std::string(reinterpret_cast<const char*>(blob->data), blob->size);
}

// --- Insert -------------------------------------------------------------------

Result<uint64_t> BPlusTree::SplitChild(txn::Tx& tx, Node* parent, uint32_t child_idx) {
  const uint64_t child_off = parent->slots[child_idx];
  Result<void*> cw = tx.OpenWrite(child_off, sizeof(Node));
  if (!cw.ok()) {
    return cw.status();
  }
  auto* child = static_cast<Node*>(*cw);

  Result<uint64_t> right_off = tx.Alloc(sizeof(Node), /*zero=*/false);
  if (!right_off.ok()) {
    return right_off.status();
  }
  Result<void*> rw = tx.OpenWrite(*right_off, sizeof(Node));
  if (!rw.ok()) {
    return rw.status();
  }
  auto* right = static_cast<Node*>(*rw);

  uint64_t separator;
  if (child->is_leaf) {
    // Leaf split: left keeps the lower half, right gets the upper half; the
    // separator is copied up (it stays in the right leaf).
    const uint32_t keep = kMaxKeys / 2;
    const uint32_t move = kMaxKeys - keep;
    right->is_leaf = 1;
    right->num_keys = move;
    std::memcpy(right->keys, child->keys + keep, move * sizeof(uint64_t));
    std::memcpy(right->slots, child->slots + keep, move * sizeof(uint64_t));
    right->next = child->next;
    child->next = *right_off;
    child->num_keys = keep;
    separator = right->keys[0];
  } else {
    // Inner split: the middle key moves up.
    const uint32_t mid = kMaxKeys / 2;
    const uint32_t move = kMaxKeys - mid - 1;
    right->is_leaf = 0;
    right->next = 0;
    right->num_keys = move;
    std::memcpy(right->keys, child->keys + mid + 1, move * sizeof(uint64_t));
    std::memcpy(right->slots, child->slots + mid + 1, (move + 1) * sizeof(uint64_t));
    separator = child->keys[mid];
    child->num_keys = mid;
  }

  // Make room in the parent at child_idx.
  for (uint32_t i = parent->num_keys; i > child_idx; --i) {
    parent->keys[i] = parent->keys[i - 1];
    parent->slots[i + 1] = parent->slots[i];
  }
  parent->keys[child_idx] = separator;
  parent->slots[child_idx + 1] = *right_off;
  ++parent->num_keys;
  return *right_off;
}

Status BPlusTree::DoInsert(txn::Tx& tx, uint64_t key, std::string_view value,
                           bool allow_update, bool require_existing) {
  const Header* hdr = HeaderView(tx);
  uint64_t cur_off = hdr->root;

  // Preemptive root split keeps the descent single-pass.
  if (NodeView(tx, cur_off)->num_keys == kMaxKeys) {
    Result<uint64_t> new_root_off = tx.Alloc(sizeof(Node), /*zero=*/false);
    if (!new_root_off.ok()) {
      return new_root_off.status();
    }
    Result<void*> nrw = tx.OpenWrite(*new_root_off, sizeof(Node));
    if (!nrw.ok()) {
      return nrw.status();
    }
    auto* new_root = static_cast<Node*>(*nrw);
    new_root->is_leaf = 0;
    new_root->num_keys = 0;
    new_root->next = 0;
    new_root->slots[0] = cur_off;
    Result<uint64_t> right = SplitChild(tx, new_root, 0);
    if (!right.ok()) {
      return right.status();
    }
    Result<void*> hw = tx.OpenWrite(header_off_, sizeof(Header));
    if (!hw.ok()) {
      return hw.status();
    }
    auto* hdr_w = static_cast<Header*>(*hw);
    hdr_w->root = *new_root_off;
    ++hdr_w->height;
    cur_off = *new_root_off;
  }

  for (;;) {
    // Nodes touched by this transaction (fresh splits) must be re-read
    // through their write pointers; untouched nodes read in place.
    const Node* cur = NodeView(tx, cur_off);
    if (cur->is_leaf) {
      const uint32_t pos = LowerBound(cur, key);
      const bool exists = pos < cur->num_keys && cur->keys[pos] == key;
      if (exists && !allow_update) {
        return Status::AlreadyExists("key present");
      }
      if (!exists && require_existing) {
        return Status::NotFound("key absent");
      }
      Result<void*> lw = tx.OpenWrite(cur_off, sizeof(Node));
      if (!lw.ok()) {
        return lw.status();
      }
      auto* leaf = static_cast<Node*>(*lw);
      if (exists) {
        // Replace the blob (exclusive path: slot rewrite is safe).
        Result<uint64_t> blob = WriteBlob(tx, value);
        if (!blob.ok()) {
          return blob.status();
        }
        KAMINO_RETURN_IF_ERROR(tx.Free(leaf->slots[pos]));
        leaf->slots[pos] = *blob;
        return Status::Ok();
      }
      Result<uint64_t> blob = WriteBlob(tx, value);
      if (!blob.ok()) {
        return blob.status();
      }
      for (uint32_t i = leaf->num_keys; i > pos; --i) {
        leaf->keys[i] = leaf->keys[i - 1];
        leaf->slots[i] = leaf->slots[i - 1];
      }
      leaf->keys[pos] = key;
      leaf->slots[pos] = *blob;
      ++leaf->num_keys;
      return Status::Ok();
    }

    uint32_t ci = ChildIndex(cur, key);
    uint64_t child_off = cur->slots[ci];
    const Node* child = NodeView(tx, child_off);
    if (child->num_keys == kMaxKeys) {
      Result<void*> cw = tx.OpenWrite(cur_off, sizeof(Node));
      if (!cw.ok()) {
        return cw.status();
      }
      auto* cur_w = static_cast<Node*>(*cw);
      Result<uint64_t> right = SplitChild(tx, cur_w, ci);
      if (!right.ok()) {
        return right.status();
      }
      ci = ChildIndex(cur_w, key);
      child_off = cur_w->slots[ci];
    }
    cur_off = child_off;
  }
}

// --- Delete -------------------------------------------------------------------

Result<uint64_t> BPlusTree::FixChildForDelete(txn::Tx& tx, Node* parent, uint32_t child_idx,
                                              uint64_t key) {
  const uint64_t child_off = parent->slots[child_idx];

  const Node* left_view = nullptr;
  const Node* right_view = nullptr;
  uint64_t left_off = 0, right_off = 0;
  if (child_idx > 0) {
    left_off = parent->slots[child_idx - 1];
    left_view = NodeView(tx, left_off);
  }
  if (child_idx < parent->num_keys) {
    right_off = parent->slots[child_idx + 1];
    right_view = NodeView(tx, right_off);
  }

  // Every rebalance touches the child plus exactly one sibling; open the pair
  // as one batch so both intent records share a single drain.
  auto open_pair = [&tx](uint64_t first, uint64_t second, Node** a, Node** b) -> Status {
    txn::WriteSpan spans[2];
    spans[0].offset = first;
    spans[0].size = sizeof(Node);
    spans[1].offset = second;
    spans[1].size = sizeof(Node);
    void* ptrs[2] = {nullptr, nullptr};
    Status st = tx.OpenWriteBatch(spans, 2, ptrs);
    if (!st.ok()) {
      return st;
    }
    *a = static_cast<Node*>(ptrs[0]);
    *b = static_cast<Node*>(ptrs[1]);
    return Status::Ok();
  };

  // Borrow from the left sibling.
  if (left_view != nullptr && left_view->num_keys > kMinKeys) {
    Node* child;
    Node* left;
    KAMINO_RETURN_IF_ERROR(open_pair(child_off, left_off, &child, &left));
    if (child->is_leaf) {
      for (uint32_t i = child->num_keys; i > 0; --i) {
        child->keys[i] = child->keys[i - 1];
        child->slots[i] = child->slots[i - 1];
      }
      child->keys[0] = left->keys[left->num_keys - 1];
      child->slots[0] = left->slots[left->num_keys - 1];
      ++child->num_keys;
      --left->num_keys;
      parent->keys[child_idx - 1] = child->keys[0];
    } else {
      for (uint32_t i = child->num_keys; i > 0; --i) {
        child->keys[i] = child->keys[i - 1];
      }
      for (uint32_t i = child->num_keys + 1; i > 0; --i) {
        child->slots[i] = child->slots[i - 1];
      }
      child->keys[0] = parent->keys[child_idx - 1];
      child->slots[0] = left->slots[left->num_keys];
      parent->keys[child_idx - 1] = left->keys[left->num_keys - 1];
      ++child->num_keys;
      --left->num_keys;
    }
    return child_off;
  }

  // Borrow from the right sibling.
  if (right_view != nullptr && right_view->num_keys > kMinKeys) {
    Node* child;
    Node* right;
    KAMINO_RETURN_IF_ERROR(open_pair(child_off, right_off, &child, &right));
    if (child->is_leaf) {
      child->keys[child->num_keys] = right->keys[0];
      child->slots[child->num_keys] = right->slots[0];
      ++child->num_keys;
      for (uint32_t i = 0; i + 1 < right->num_keys; ++i) {
        right->keys[i] = right->keys[i + 1];
        right->slots[i] = right->slots[i + 1];
      }
      --right->num_keys;
      parent->keys[child_idx] = right->keys[0];
    } else {
      child->keys[child->num_keys] = parent->keys[child_idx];
      child->slots[child->num_keys + 1] = right->slots[0];
      ++child->num_keys;
      parent->keys[child_idx] = right->keys[0];
      for (uint32_t i = 0; i + 1 < right->num_keys; ++i) {
        right->keys[i] = right->keys[i + 1];
      }
      for (uint32_t i = 0; i < right->num_keys; ++i) {
        right->slots[i] = right->slots[i + 1];
      }
      --right->num_keys;
    }
    return child_off;
  }

  // Merge. Prefer merging into the left sibling; otherwise pull the right
  // sibling into the child. Either way one node is freed and the separator
  // leaves the parent.
  Node* dst;
  const Node* src_view;
  uint64_t dst_off, src_off;
  uint32_t sep_idx;
  if (left_view != nullptr) {
    Node* child;
    Node* left;
    KAMINO_RETURN_IF_ERROR(open_pair(child_off, left_off, &child, &left));
    dst = left;
    dst_off = left_off;
    src_view = child;
    src_off = child_off;
    sep_idx = child_idx - 1;
  } else {
    Node* child;
    Node* right;
    KAMINO_RETURN_IF_ERROR(open_pair(child_off, right_off, &child, &right));
    dst = child;
    dst_off = child_off;
    src_view = right;
    src_off = right_off;
    sep_idx = child_idx;
  }

  if (dst->is_leaf) {
    std::memcpy(dst->keys + dst->num_keys, src_view->keys,
                src_view->num_keys * sizeof(uint64_t));
    std::memcpy(dst->slots + dst->num_keys, src_view->slots,
                src_view->num_keys * sizeof(uint64_t));
    dst->num_keys += src_view->num_keys;
    dst->next = src_view->next;
  } else {
    dst->keys[dst->num_keys] = parent->keys[sep_idx];
    std::memcpy(dst->keys + dst->num_keys + 1, src_view->keys,
                src_view->num_keys * sizeof(uint64_t));
    std::memcpy(dst->slots + dst->num_keys + 1, src_view->slots,
                (src_view->num_keys + 1) * sizeof(uint64_t));
    dst->num_keys += src_view->num_keys + 1;
  }

  // Remove separator + source slot from the parent.
  for (uint32_t i = sep_idx; i + 1 < parent->num_keys; ++i) {
    parent->keys[i] = parent->keys[i + 1];
  }
  for (uint32_t i = sep_idx + 1; i < parent->num_keys; ++i) {
    parent->slots[i] = parent->slots[i + 1];
  }
  --parent->num_keys;
  KAMINO_RETURN_IF_ERROR(tx.Free(src_off));
  (void)key;
  return dst_off;
}

Status BPlusTree::DoDelete(txn::Tx& tx, uint64_t key) {
  const Header* hdr = HeaderView(tx);
  uint64_t cur_off = hdr->root;

  for (;;) {
    const Node* cur = NodeView(tx, cur_off);
    if (cur->is_leaf) {
      const uint32_t pos = LowerBound(cur, key);
      if (pos >= cur->num_keys || cur->keys[pos] != key) {
        return Status::NotFound("key absent");
      }
      Result<void*> lw = tx.OpenWrite(cur_off, sizeof(Node));
      if (!lw.ok()) {
        return lw.status();
      }
      auto* leaf = static_cast<Node*>(*lw);
      KAMINO_RETURN_IF_ERROR(tx.Free(leaf->slots[pos]));
      for (uint32_t i = pos; i + 1 < leaf->num_keys; ++i) {
        leaf->keys[i] = leaf->keys[i + 1];
        leaf->slots[i] = leaf->slots[i + 1];
      }
      --leaf->num_keys;
      return Status::Ok();
    }

    const uint32_t ci = ChildIndex(cur, key);
    uint64_t child_off = cur->slots[ci];
    const Node* child = NodeView(tx, child_off);
    if (child->num_keys <= kMinKeys) {
      Result<void*> cw = tx.OpenWrite(cur_off, sizeof(Node));
      if (!cw.ok()) {
        return cw.status();
      }
      auto* cur_w = static_cast<Node*>(*cw);
      Result<uint64_t> fixed = FixChildForDelete(tx, cur_w, ci, key);
      if (!fixed.ok()) {
        return fixed.status();
      }
      child_off = *fixed;
      // Root collapse: an inner root left with zero keys has a single child.
      if (cur_off == HeaderView(tx)->root && cur_w->num_keys == 0) {
        Result<void*> hw = tx.OpenWrite(header_off_, sizeof(Header));
        if (!hw.ok()) {
          return hw.status();
        }
        auto* hdr_w = static_cast<Header*>(*hw);
        hdr_w->root = child_off;
        --hdr_w->height;
        KAMINO_RETURN_IF_ERROR(tx.Free(cur_off));
      }
    }
    cur_off = child_off;
  }
}

// --- Read paths ---------------------------------------------------------------

Result<std::string> BPlusTree::GetInTx(txn::Tx& tx, uint64_t key) {
  const Header* hdr = HeaderView(tx);
  uint64_t cur_off = hdr->root;
  for (;;) {
    const Node* cur = NodeView(tx, cur_off);
    if (cur->is_leaf) {
      // Dependent read: a pending writer of this leaf blocks us here.
      KAMINO_RETURN_IF_ERROR(tx.ReadLock(cur_off));
      cur = NodeView(tx, cur_off);  // Re-read under the lock.
      const uint32_t pos = LowerBound(cur, key);
      if (pos >= cur->num_keys || cur->keys[pos] != key) {
        return Status::NotFound("key absent");
      }
      return ReadBlobLocked(tx, cur->slots[pos]);
    }
    cur_off = cur->slots[ChildIndex(cur, key)];
  }
}

Result<std::vector<std::pair<uint64_t, std::string>>> BPlusTree::ScanInTx(txn::Tx& tx,
                                                                          uint64_t start,
                                                                          size_t limit) {
  std::vector<std::pair<uint64_t, std::string>> out;
  const Header* hdr = HeaderView(tx);
  uint64_t cur_off = hdr->root;
  const Node* cur = NodeView(tx, cur_off);
  while (!cur->is_leaf) {
    cur_off = cur->slots[ChildIndex(cur, start)];
    cur = NodeView(tx, cur_off);
  }
  while (out.size() < limit && cur_off != 0) {
    KAMINO_RETURN_IF_ERROR(tx.ReadLock(cur_off));
    cur = NodeView(tx, cur_off);
    for (uint32_t i = LowerBound(cur, start); i < cur->num_keys && out.size() < limit; ++i) {
      Result<std::string> v = ReadBlobLocked(tx, cur->slots[i]);
      if (!v.ok()) {
        return v.status();
      }
      out.emplace_back(cur->keys[i], std::move(*v));
    }
    cur_off = cur->next;
  }
  return out;
}

Result<std::pair<uint64_t, std::string>> BPlusTree::FirstAtLeastInTx(txn::Tx& tx,
                                                                     uint64_t start) {
  const Header* hdr = HeaderView(tx);
  uint64_t cur_off = hdr->root;
  const Node* cur = NodeView(tx, cur_off);
  while (!cur->is_leaf) {
    cur_off = cur->slots[ChildIndex(cur, start)];
    cur = NodeView(tx, cur_off);
  }
  while (cur_off != 0) {
    cur = NodeView(tx, cur_off);
    const uint32_t pos = LowerBound(cur, start);
    if (pos < cur->num_keys) {
      const uint64_t blob_off = cur->slots[pos];
      const void* p = tx.OpenedPointer(blob_off);
      if (p == nullptr) {
        p = heap_->pool()->At(blob_off);
      }
      const auto* blob = static_cast<const Blob*>(p);
      return std::make_pair(cur->keys[pos],
                            std::string(reinterpret_cast<const char*>(blob->data), blob->size));
    }
    cur_off = cur->next;
  }
  return Status::NotFound("no key at or above start");
}

Status BPlusTree::UpdateInTx(txn::Tx& tx, uint64_t key, std::string_view value) {
  const Header* hdr = HeaderView(tx);
  uint64_t cur_off = hdr->root;
  for (;;) {
    const Node* cur = NodeView(tx, cur_off);
    if (cur->is_leaf) {
      KAMINO_RETURN_IF_ERROR(tx.ReadLock(cur_off));
      cur = NodeView(tx, cur_off);
      const uint32_t pos = LowerBound(cur, key);
      if (pos >= cur->num_keys || cur->keys[pos] != key) {
        return Status::NotFound("key absent");
      }
      const uint64_t blob_off = cur->slots[pos];
      const uint64_t capacity = heap_->ObjectSize(blob_off);
      if (capacity < sizeof(uint32_t) + value.size()) {
        return NeedsRealloc();  // Outer layer retries on the exclusive path.
      }
      // Exact modified range, not the blob's whole size class: this is what
      // gets snapshotted (undo), shadowed (CoW) and flushed at commit.
      Result<void*> bw = tx.OpenWrite(blob_off, sizeof(uint32_t) + value.size());
      if (!bw.ok()) {
        return bw.status();
      }
      auto* blob = static_cast<Blob*>(*bw);
      blob->size = static_cast<uint32_t>(value.size());
      std::memcpy(blob->data, value.data(), value.size());
      return Status::Ok();
    }
    cur_off = cur->slots[ChildIndex(cur, key)];
  }
}

Status BPlusTree::ReadModifyWriteInTx(txn::Tx& tx, uint64_t key,
                                      const std::function<void(std::string&)>& mutate) {
  const Header* hdr = HeaderView(tx);
  uint64_t cur_off = hdr->root;
  for (;;) {
    const Node* cur = NodeView(tx, cur_off);
    if (cur->is_leaf) {
      KAMINO_RETURN_IF_ERROR(tx.ReadLock(cur_off));
      cur = NodeView(tx, cur_off);
      const uint32_t pos = LowerBound(cur, key);
      if (pos >= cur->num_keys || cur->keys[pos] != key) {
        return Status::NotFound("key absent");
      }
      const uint64_t blob_off = cur->slots[pos];
      // Declare write intent FIRST, then read through the write pointer.
      Result<void*> bw = tx.OpenWrite(blob_off, 0);
      if (!bw.ok()) {
        return bw.status();
      }
      auto* blob = static_cast<Blob*>(*bw);
      std::string value(reinterpret_cast<const char*>(blob->data), blob->size);
      mutate(value);
      const uint64_t capacity = heap_->ObjectSize(blob_off);
      if (capacity < sizeof(uint32_t) + value.size()) {
        return NeedsRealloc();
      }
      blob->size = static_cast<uint32_t>(value.size());
      std::memcpy(blob->data, value.data(), value.size());
      return Status::Ok();
    }
    cur_off = cur->slots[ChildIndex(cur, key)];
  }
}

Status BPlusTree::ReadModifyWrite(uint64_t key,
                                  const std::function<void(std::string&)>& mutate) {
  {
    auto guard = LockShared();
    Status st =
        mgr_->RunWithRetries([&](txn::Tx& tx) { return ReadModifyWriteInTx(tx, key, mutate); });
    if (st.code() != StatusCode::kNotSupported) {
      return st;
    }
  }
  // The mutated value outgrew the blob: redo on the structural path. The
  // old value is read through a write intent (not a read lock) so the
  // replace path's Free of the blob re-enters the same lock.
  auto guard = LockExclusive();
  return mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    const Header* hdr = HeaderView(tx);
    uint64_t cur_off = hdr->root;
    const Node* cur = NodeView(tx, cur_off);
    while (!cur->is_leaf) {
      cur_off = cur->slots[ChildIndex(cur, key)];
      cur = NodeView(tx, cur_off);
    }
    const uint32_t pos = LowerBound(cur, key);
    if (pos >= cur->num_keys || cur->keys[pos] != key) {
      return Status::NotFound("key absent");
    }
    Result<void*> bw = tx.OpenWrite(cur->slots[pos], 0);
    if (!bw.ok()) {
      return bw.status();
    }
    const auto* blob = static_cast<const Blob*>(*bw);
    std::string value(reinterpret_cast<const char*>(blob->data), blob->size);
    mutate(value);
    return DoInsert(tx, key, value, /*allow_update=*/true, /*require_existing=*/true);
  });
}

Status BPlusTree::InsertInTx(txn::Tx& tx, uint64_t key, std::string_view value) {
  return DoInsert(tx, key, value, /*allow_update=*/false, /*require_existing=*/false);
}

Status BPlusTree::UpsertInTx(txn::Tx& tx, uint64_t key, std::string_view value) {
  return DoInsert(tx, key, value, /*allow_update=*/true, /*require_existing=*/false);
}

Status BPlusTree::DeleteInTx(txn::Tx& tx, uint64_t key) { return DoDelete(tx, key); }

// --- Self-contained wrappers ---------------------------------------------------

Status BPlusTree::Insert(uint64_t key, std::string_view value) {
  auto guard = LockExclusive();
  return mgr_->RunWithRetries([&](txn::Tx& tx) { return InsertInTx(tx, key, value); });
}

Status BPlusTree::Upsert(uint64_t key, std::string_view value) {
  auto guard = LockExclusive();
  return mgr_->RunWithRetries([&](txn::Tx& tx) { return UpsertInTx(tx, key, value); });
}

Status BPlusTree::Update(uint64_t key, std::string_view value) {
  {
    auto guard = LockShared();
    Status st =
        mgr_->RunWithRetries([&](txn::Tx& tx) { return UpdateInTx(tx, key, value); });
    if (st.code() != StatusCode::kNotSupported) {
      return st;
    }
  }
  // Blob must grow: retry on the structural path (exclusive lock, leaf slot
  // rewrite via upsert-with-existing-required semantics).
  auto guard = LockExclusive();
  return mgr_->RunWithRetries([&](txn::Tx& tx) {
    return DoInsert(tx, key, value, /*allow_update=*/true, /*require_existing=*/true);
  });
}

Status BPlusTree::UpdateAsync(uint64_t key, std::string_view value, txn::CommitAck* ack) {
  if (ack != nullptr) {
    ack->ticket = 0;
  }
  {
    auto guard = LockShared();
    Status st = mgr_->RunWithRetriesAsync(
        [&](txn::Tx& tx) { return UpdateInTx(tx, key, value); }, ack);
    if (st.code() != StatusCode::kNotSupported) {
      return st;
    }
  }
  // Structural path: synchronous (durable on return, ticket 0) — regrows are
  // rare enough that pipelining them buys nothing.
  if (ack != nullptr) {
    ack->ticket = 0;
  }
  auto guard = LockExclusive();
  return mgr_->RunWithRetries([&](txn::Tx& tx) {
    return DoInsert(tx, key, value, /*allow_update=*/true, /*require_existing=*/true);
  });
}

Result<std::string> BPlusTree::Get(uint64_t key) {
  auto guard = LockShared();
  std::string out;
  Status st = mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    Result<std::string> v = GetInTx(tx, key);
    if (!v.ok()) {
      return v.status();
    }
    out = std::move(*v);
    return Status::Ok();
  });
  if (!st.ok()) {
    return st;
  }
  return out;
}

Status BPlusTree::Delete(uint64_t key) {
  auto guard = LockExclusive();
  return mgr_->RunWithRetries([&](txn::Tx& tx) { return DeleteInTx(tx, key); });
}

Result<std::vector<std::pair<uint64_t, std::string>>> BPlusTree::Scan(uint64_t start,
                                                                      size_t limit) {
  auto guard = LockShared();
  std::vector<std::pair<uint64_t, std::string>> out;
  Status st = mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    Result<std::vector<std::pair<uint64_t, std::string>>> r = ScanInTx(tx, start, limit);
    if (!r.ok()) {
      return r.status();
    }
    out = std::move(*r);
    return Status::Ok();
  });
  if (!st.ok()) {
    return st;
  }
  return out;
}

// --- Backup-snapshot reads (DESIGN.md §12) ------------------------------------

Result<std::string> BPlusTree::SnapshotReadBlob(txn::BackupStore::SnapshotView& view,
                                                uint64_t blob_off) const {
  // Two object-start reads: first the size prefix, then the whole blob. Both
  // yield cut-state bytes even if a writer slips between them (a pre-image
  // inserted in the window still holds the cut content), so the size and the
  // payload are mutually consistent.
  uint32_t size = 0;
  KAMINO_RETURN_IF_ERROR(view.Read(blob_off, sizeof(uint32_t), &size));
  if (size == 0) {
    return std::string();
  }
  std::vector<uint8_t> buf(sizeof(uint32_t) + size);
  KAMINO_RETURN_IF_ERROR(view.Read(blob_off, buf.size(), buf.data()));
  return std::string(reinterpret_cast<const char*>(buf.data()) + sizeof(uint32_t), size);
}

Result<std::string> BPlusTree::SnapshotGet(txn::BackupStore::SnapshotView& view,
                                           uint64_t key) const {
  if (!view.valid()) {
    return Status::InvalidArgument("snapshot view is not open");
  }
  Header hdr;
  KAMINO_RETURN_IF_ERROR(view.Read(header_off_, sizeof(Header), &hdr));
  Node node;
  uint64_t off = hdr.root;
  for (uint64_t depth = 1;; ++depth) {
    if (depth > hdr.height) {
      return Status::Corruption("snapshot descent exceeded tree height");
    }
    KAMINO_RETURN_IF_ERROR(view.Read(off, sizeof(Node), &node));
    if (node.is_leaf != 0) {
      break;
    }
    off = node.slots[ChildIndex(&node, key)];
  }
  const uint32_t idx = LowerBound(&node, key);
  if (idx >= node.num_keys || node.keys[idx] != key) {
    return Status::NotFound("key not in store");
  }
  return SnapshotReadBlob(view, node.slots[idx]);
}

Result<std::vector<std::pair<uint64_t, std::string>>> BPlusTree::SnapshotScan(
    txn::BackupStore::SnapshotView& view, uint64_t start, size_t limit) const {
  std::vector<std::pair<uint64_t, std::string>> out;
  if (!view.valid()) {
    return Status::InvalidArgument("snapshot view is not open");
  }
  if (limit == 0) {
    return out;
  }
  Header hdr;
  KAMINO_RETURN_IF_ERROR(view.Read(header_off_, sizeof(Header), &hdr));
  Node node;
  uint64_t off = hdr.root;
  for (uint64_t depth = 1;; ++depth) {
    if (depth > hdr.height) {
      return Status::Corruption("snapshot descent exceeded tree height");
    }
    KAMINO_RETURN_IF_ERROR(view.Read(off, sizeof(Node), &node));
    if (node.is_leaf != 0) {
      break;
    }
    off = node.slots[ChildIndex(&node, start)];
  }
  // Leaf-chain walk: `next` offsets are stable for the lifetime of this view
  // (frees are deferred to the gated apply), so following them is safe here —
  // but never across views.
  uint32_t idx = LowerBound(&node, start);
  for (;;) {
    for (; idx < node.num_keys && out.size() < limit; ++idx) {
      Result<std::string> v = SnapshotReadBlob(view, node.slots[idx]);
      if (!v.ok()) {
        return v.status();
      }
      out.emplace_back(node.keys[idx], std::move(*v));
    }
    if (out.size() >= limit || node.next == 0) {
      break;
    }
    KAMINO_RETURN_IF_ERROR(view.Read(node.next, sizeof(Node), &node));
    idx = 0;
  }
  return out;
}

// --- Diagnostics ----------------------------------------------------------------

uint64_t BPlusTree::CountSlow() const {
  const Header* hdr = header();
  uint64_t off = hdr->root;
  const Node* n = NodeAt(off);
  while (!n->is_leaf) {
    off = n->slots[0];
    n = NodeAt(off);
  }
  uint64_t count = 0;
  while (off != 0) {
    n = NodeAt(off);
    count += n->num_keys;
    off = n->next;
  }
  return count;
}

BPlusTree::TreeStats BPlusTree::Stats() const {
  TreeStats s;
  const Header* hdr = header();
  s.height = hdr->height;
  // Inner nodes via depth-first walk; leaves via the chain.
  std::vector<uint64_t> stack;
  if (hdr->height > 1) {
    stack.push_back(hdr->root);
  }
  while (!stack.empty()) {
    const Node* n = NodeAt(stack.back());
    stack.pop_back();
    ++s.inner_nodes;
    for (uint32_t i = 0; i <= n->num_keys; ++i) {
      if (!NodeAt(n->slots[i])->is_leaf) {
        stack.push_back(n->slots[i]);
      }
    }
  }
  uint64_t off = hdr->root;
  const Node* n = NodeAt(off);
  while (!n->is_leaf) {
    off = n->slots[0];
    n = NodeAt(off);
  }
  while (off != 0) {
    n = NodeAt(off);
    ++s.leaf_nodes;
    s.keys += n->num_keys;
    off = n->next;
  }
  if (s.leaf_nodes > 0) {
    s.avg_leaf_fill = static_cast<double>(s.keys) /
                      static_cast<double>(s.leaf_nodes * kMaxKeys);
  }
  return s;
}

Status BPlusTree::ValidateNode(uint64_t off, uint64_t depth, uint64_t height,
                               uint64_t* leaf_count, uint64_t min_key, uint64_t max_key,
                               bool has_min, bool has_max) const {
  const Node* n = NodeAt(off);
  if (heap_->ObjectSize(off) < sizeof(Node)) {
    return Status::Corruption("node offset not a live allocation");
  }
  const bool is_root = (depth == 1);
  if (!is_root && n->num_keys < kMinKeys) {
    return Status::Corruption("underfull non-root node");
  }
  if (n->num_keys > kMaxKeys) {
    return Status::Corruption("overfull node");
  }
  for (uint32_t i = 0; i + 1 < n->num_keys; ++i) {
    if (n->keys[i] >= n->keys[i + 1]) {
      return Status::Corruption("keys not strictly sorted");
    }
  }
  for (uint32_t i = 0; i < n->num_keys; ++i) {
    if (has_min && n->keys[i] < min_key) {
      return Status::Corruption("key below subtree bound");
    }
    if (has_max && n->keys[i] >= max_key) {
      return Status::Corruption("key above subtree bound");
    }
  }
  if (n->is_leaf) {
    if (depth != height) {
      return Status::Corruption("leaf at wrong depth");
    }
    for (uint32_t i = 0; i < n->num_keys; ++i) {
      if (heap_->ObjectSize(n->slots[i]) == 0) {
        return Status::Corruption("leaf references dead blob");
      }
    }
    *leaf_count += n->num_keys;
    return Status::Ok();
  }
  if (is_root && n->num_keys == 0) {
    return Status::Corruption("inner root with zero keys");
  }
  for (uint32_t i = 0; i <= n->num_keys; ++i) {
    const bool cmin = (i > 0) || has_min;
    const uint64_t nmin = (i > 0) ? n->keys[i - 1] : min_key;
    const bool cmax = (i < n->num_keys) || has_max;
    const uint64_t nmax = (i < n->num_keys) ? n->keys[i] : max_key;
    KAMINO_RETURN_IF_ERROR(
        ValidateNode(n->slots[i], depth + 1, height, leaf_count, nmin, nmax, cmin, cmax));
  }
  return Status::Ok();
}

Status BPlusTree::Validate() const {
  const Header* hdr = header();
  uint64_t leaf_count = 0;
  KAMINO_RETURN_IF_ERROR(
      ValidateNode(hdr->root, 1, hdr->height, &leaf_count, 0, 0, false, false));
  // Leaf chain must visit exactly the counted keys, in order.
  uint64_t off = hdr->root;
  const Node* n = NodeAt(off);
  while (!n->is_leaf) {
    off = n->slots[0];
    n = NodeAt(off);
  }
  uint64_t chained = 0;
  uint64_t prev_key = 0;
  bool first = true;
  while (off != 0) {
    n = NodeAt(off);
    for (uint32_t i = 0; i < n->num_keys; ++i) {
      if (!first && n->keys[i] <= prev_key) {
        return Status::Corruption("leaf chain out of order");
      }
      prev_key = n->keys[i];
      first = false;
      ++chained;
    }
    off = n->next;
  }
  if (chained != leaf_count) {
    return Status::Corruption("leaf chain count mismatch");
  }
  return Status::Ok();
}

}  // namespace kamino::pds
