// Transactional persistent FIFO queue.
//
// The paper's chain replicas buffer forwarded operations "in persistent
// operation queues" (§5); this is that structure as a reusable PDS: a
// singly-linked list of persistent nodes with head/tail anchors, where push,
// pop and the contained payload commit atomically under any engine.

#ifndef SRC_PDS_PQUEUE_H_
#define SRC_PDS_PQUEUE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/heap/heap.h"
#include "src/txn/tx_manager.h"

namespace kamino::pds {

class PQueue {
 public:
  struct Anchor {
    uint64_t head;  // Oldest node (0 = empty).
    uint64_t tail;  // Newest node.
    uint64_t size;
    uint64_t next_seq;  // Monotonic id assigned to pushes.
  };

  static Result<std::unique_ptr<PQueue>> Create(txn::TxManager* mgr);
  static Result<std::unique_ptr<PQueue>> Attach(txn::TxManager* mgr, uint64_t anchor_offset);

  uint64_t anchor() const { return anchor_off_; }

  // Appends `value`; returns the item's sequence number.
  Result<uint64_t> PushBack(std::string_view value);

  // Removes and returns the oldest item; kNotFound when empty.
  Result<std::string> PopFront();

  // Reads the oldest item without removing it; kNotFound when empty.
  Result<std::string> Front() const;

  uint64_t size() const;
  bool empty() const { return size() == 0; }

  // All items oldest-first (diagnostic).
  std::vector<std::string> Items() const;

  // Invariants: chain length == size field, tail reachable, nodes live.
  Status Validate() const;

 private:
  struct Node {
    uint64_t next;
    uint64_t seq;
    uint32_t vsize;
    uint8_t data[4];  // Flexible-array idiom.
  };

  PQueue(txn::TxManager* mgr, uint64_t anchor_off)
      : mgr_(mgr), heap_(mgr->heap()), anchor_off_(anchor_off) {}

  const Anchor* anchor_view() const {
    return static_cast<const Anchor*>(heap_->pool()->At(anchor_off_));
  }
  const Node* NodeAt(uint64_t off) const {
    return static_cast<const Node*>(heap_->pool()->At(off));
  }

  txn::TxManager* mgr_;
  heap::Heap* heap_;
  uint64_t anchor_off_;
  mutable std::mutex mu_;  // Serializes structural transactions.
};

}  // namespace kamino::pds

#endif  // SRC_PDS_PQUEUE_H_
