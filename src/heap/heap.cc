#include "src/heap/heap.h"

#include "src/common/cacheline.h"
#include "src/common/checksum.h"

namespace kamino::heap {

Result<std::unique_ptr<Heap>> Heap::Create(const HeapOptions& options) {
  nvm::PoolOptions popts;
  popts.size = options.pool_size;
  popts.path = options.path;
  popts.crash_sim = options.crash_sim;
  popts.flush_latency_ns = options.flush_latency_ns;
  popts.drain_latency_ns = options.drain_latency_ns;
  popts.track_stats = options.track_stats;
  popts.sleep_latency = options.sleep_latency;
  popts.site_prefix = options.site_prefix;
  Result<std::unique_ptr<nvm::Pool>> pool = nvm::Pool::Create(popts);
  if (!pool.ok()) {
    return pool.status();
  }
  auto heap = std::unique_ptr<Heap>(new Heap());
  heap->owned_pool_ = std::move(*pool);
  Status st = heap->Format(heap->owned_pool_.get(), options.log_region_size);
  if (!st.ok()) {
    return st;
  }
  return heap;
}

Result<std::unique_ptr<Heap>> Heap::CreateOn(nvm::Pool* pool, uint64_t log_region_size) {
  if (pool == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  auto heap = std::unique_ptr<Heap>(new Heap());
  Status st = heap->Format(pool, log_region_size);
  if (!st.ok()) {
    return st;
  }
  return heap;
}

Result<std::unique_ptr<Heap>> Heap::Attach(nvm::Pool* pool) {
  if (pool == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  auto heap = std::unique_ptr<Heap>(new Heap());
  Status st = heap->DoAttach(pool);
  if (!st.ok()) {
    return st;
  }
  return heap;
}

Status Heap::Format(nvm::Pool* pool, uint64_t log_region_size) {
  pool_ = pool;
  const uint64_t sb_end = AlignUp(sizeof(Superblock), 4096);
  log_region_offset_ = sb_end;
  log_region_size_ = AlignUp(log_region_size, 4096);

  const uint64_t alloc_offset = log_region_offset_ + log_region_size_;
  if (alloc_offset + alloc::kChunkSize + 8192 > pool->size()) {
    return Status::InvalidArgument("pool too small for log region + one chunk");
  }
  const uint64_t alloc_size = pool->size() - alloc_offset;

  Result<std::unique_ptr<alloc::Allocator>> a =
      alloc::Allocator::Create(pool, alloc_offset, alloc_size);
  if (!a.ok()) {
    return a.status();
  }
  allocator_ = std::move(*a);

  Superblock* s = sb();
  s->magic = kMagic;
  s->version = 1;
  s->pool_size = pool->size();
  s->log_region_offset = log_region_offset_;
  s->log_region_size = log_region_size_;
  s->alloc_region_offset = alloc_offset;
  s->alloc_region_size = alloc_size;
  s->root_offset = 0;
  s->checksum = Crc64(s, offsetof(Superblock, checksum));  // root_offset excluded.
  pool->Persist(s, sizeof(Superblock));
  return Status::Ok();
}

Status Heap::DoAttach(nvm::Pool* pool) {
  pool_ = pool;
  const Superblock* s = sb();
  if (s->magic != kMagic) {
    return Status::Corruption("heap superblock magic mismatch");
  }
  if (s->checksum != Crc64(s, offsetof(Superblock, checksum))) {
    return Status::Corruption("heap superblock checksum mismatch");
  }
  if (s->pool_size != pool->size()) {
    return Status::Corruption("heap formatted for a different pool size");
  }
  log_region_offset_ = s->log_region_offset;
  log_region_size_ = s->log_region_size;

  Result<std::unique_ptr<alloc::Allocator>> a =
      alloc::Allocator::Open(pool, s->alloc_region_offset);
  if (!a.ok()) {
    return a.status();
  }
  allocator_ = std::move(*a);
  return Status::Ok();
}

uint64_t Heap::root() const { return sb()->root_offset; }

void Heap::set_root(uint64_t offset) {
  Superblock* s = sb();
  s->root_offset = offset;
  pool_->PersistU64(&s->root_offset);
}

uint64_t Heap::root_field_offset() const { return offsetof(Superblock, root_offset); }

}  // namespace kamino::heap
