// Persistent object heap (the paper's "persistent heap manager", Figure 3).
//
// A Heap formats a pool as:
//
//   [ HeapSuperblock | log region (intent logs) | allocator region (objects) ]
//
// Objects are reached through `PPtr<T>` persistent pointers — 64-bit pool
// offsets that remain valid across crashes and re-opens (raw pointers do
// not). A designated *root* offset in the superblock anchors the object
// graph, exactly as in NVML's pmemobj root object.
//
// The Heap itself performs no atomicity: transactional modification is the
// job of `txn::TxManager`, which layers one of the five atomicity engines on
// top (Kamino-Tx-Simple / -Dynamic, undo-logging, copy-on-write, no-logging).

#ifndef SRC_HEAP_HEAP_H_
#define SRC_HEAP_HEAP_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/alloc/allocator.h"
#include "src/common/status.h"
#include "src/nvm/pool.h"

namespace kamino::heap {

class Heap;

// Persistent pointer: a pool offset. 0 is the null value (offset 0 is always
// the superblock, never an object).
template <typename T>
struct PPtr {
  uint64_t offset = 0;

  PPtr() = default;
  explicit PPtr(uint64_t off) : offset(off) {}

  bool IsNull() const { return offset == 0; }
  explicit operator bool() const { return !IsNull(); }

  static PPtr Null() { return PPtr(); }

  bool operator==(const PPtr& other) const { return offset == other.offset; }
  bool operator!=(const PPtr& other) const { return offset != other.offset; }

  // Dereference against a heap (defined after Heap below).
  T* get(Heap& heap) const;
  const T* get(const Heap& heap) const;
};

struct HeapOptions {
  // Total pool size (superblock + log region + object space).
  uint64_t pool_size = 256ull << 20;

  // Backing file; empty = anonymous memory.
  std::string path;

  // Forwarded to nvm::PoolOptions.
  bool crash_sim = false;
  uint32_t flush_latency_ns = 0;
  uint32_t drain_latency_ns = 0;
  bool track_stats = true;
  bool sleep_latency = false;
  std::string site_prefix;

  // Intent-log region size (shared by all engines' log managers).
  uint64_t log_region_size = 16ull << 20;
};

class Heap {
 public:
  // Creates a pool per `options` and formats it. The heap owns the pool.
  static Result<std::unique_ptr<Heap>> Create(const HeapOptions& options);

  // Formats a caller-owned pool as a fresh heap.
  static Result<std::unique_ptr<Heap>> CreateOn(nvm::Pool* pool, uint64_t log_region_size);

  // Attaches to an already-formatted caller-owned pool — the restart /
  // post-crash path. Rebuilds the allocator's volatile indexes; the caller
  // must then run txn::TxManager::Recover() before using the heap.
  static Result<std::unique_ptr<Heap>> Attach(nvm::Pool* pool);

  nvm::Pool* pool() { return pool_; }
  const nvm::Pool* pool() const { return pool_; }
  alloc::Allocator* allocator() { return allocator_.get(); }

  uint64_t log_region_offset() const { return log_region_offset_; }
  uint64_t log_region_size() const { return log_region_size_; }

  // Root object anchor. `set_root` is failure-atomic (8-byte store+persist);
  // transactional code should instead update the root *inside* a transaction
  // via Tx::OpenWrite(root_field_offset(), 8).
  uint64_t root() const;
  void set_root(uint64_t offset);
  uint64_t root_field_offset() const;

  template <typename T>
  T* Deref(PPtr<T> p) {
    return p.IsNull() ? nullptr : static_cast<T*>(pool_->At(p.offset));
  }
  template <typename T>
  const T* Deref(PPtr<T> p) const {
    return p.IsNull() ? nullptr : static_cast<const T*>(pool_->At(p.offset));
  }

  // Offset of a live pointer inside the pool.
  uint64_t OffsetOf(const void* p) const { return pool_->OffsetOf(p); }

  // Size of the object (allocation) starting at `offset`; 0 if none.
  uint64_t ObjectSize(uint64_t offset) const { return allocator_->UsableSize(offset); }

 private:
  struct Superblock {
    uint64_t magic;
    uint64_t version;
    uint64_t pool_size;
    uint64_t log_region_offset;
    uint64_t log_region_size;
    uint64_t alloc_region_offset;
    uint64_t alloc_region_size;
    uint64_t checksum;    // Over all preceding (immutable) fields.
    uint64_t root_offset; // Mutable; updated via failure-atomic 8-byte store.
  };
  static constexpr uint64_t kMagic = 0x4B414D494E4F4850ull;  // "KAMINOHP"

  Heap() = default;

  Status Format(nvm::Pool* pool, uint64_t log_region_size);
  Status DoAttach(nvm::Pool* pool);

  Superblock* sb() { return static_cast<Superblock*>(pool_->At(0)); }
  const Superblock* sb() const { return static_cast<const Superblock*>(pool_->At(0)); }

  std::unique_ptr<nvm::Pool> owned_pool_;
  nvm::Pool* pool_ = nullptr;
  std::unique_ptr<alloc::Allocator> allocator_;
  uint64_t log_region_offset_ = 0;
  uint64_t log_region_size_ = 0;
};

template <typename T>
T* PPtr<T>::get(Heap& heap) const {
  return heap.Deref(*this);
}
template <typename T>
const T* PPtr<T>::get(const Heap& heap) const {
  return heap.Deref(*this);
}

}  // namespace kamino::heap

#endif  // SRC_HEAP_HEAP_H_
