#include "src/txn/cow_engine.h"

#include <cstring>

namespace kamino::txn {

Status CowEngine::Begin(TxContext* ctx) {
  (void)ctx;  // The slot is acquired lazily on the first write intent.
  return Status::Ok();
}

Result<void*> CowEngine::OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) {
  auto existing = ctx->open_ranges.find(offset);
  if (existing != ctx->open_ranges.end()) {
    const Intent& in = ctx->intents[existing->second];
    if (in.kind == IntentKind::kCowWrite) {
      return pool()->At(in.aux);  // Shadow already exists.
    }
    return pool()->At(offset);  // Allocated in this transaction: edit directly.
  }
  Result<uint64_t> resolved = ResolveSize(offset, size);
  if (!resolved.ok()) {
    return resolved.status();
  }
  size = *resolved;

  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));

  // Critical-path shadow: allocate, record (so recovery can find or discard
  // it), then copy the current contents in.
  Result<alloc::Reservation> resv = heap_->allocator()->PrepareAlloc(size);
  if (!resv.ok()) {
    return resv.status();
  }
  Status st = log_->AppendRecord(ctx->slot, IntentKind::kCowWrite, offset, size, resv->offset);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  heap_->allocator()->CommitAlloc(*resv);
  std::memcpy(pool()->At(resv->offset), pool()->At(offset), size);

  ctx->open_ranges.emplace(offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kCowWrite, offset, size, resv->offset});
  return pool()->At(resv->offset);
}

Status CowEngine::OpenWriteBatch(TxContext* ctx, const WriteSpan* spans, size_t count,
                                 void** out) {
  // Two phases so the existing crash-ordering invariant (shadow record
  // durable before any persistent allocator metadata changes) holds for the
  // whole batch with a single drain: first reserve + flush every record,
  // drain once, then commit the allocations and populate the shadows.
  struct PendingSpan {
    size_t span_index;
    alloc::Reservation resv;
    uint64_t size;
  };
  std::vector<PendingSpan> pending;
  pending.reserve(count);
  auto cancel_pending = [&] {
    for (const PendingSpan& p : pending) {
      heap_->allocator()->CancelAlloc(p.resv);
    }
  };
  for (size_t i = 0; i < count; ++i) {
    const uint64_t offset = spans[i].offset;
    if (ctx->open_ranges.find(offset) != ctx->open_ranges.end()) {
      continue;
    }
    Result<uint64_t> resolved = ResolveSize(offset, spans[i].size);
    if (!resolved.ok()) {
      cancel_pending();
      return resolved.status();
    }
    const uint64_t size = *resolved;
    Status st = EnsureSlot(ctx);
    if (st.ok()) {
      st = LockWrite(ctx, offset);
    }
    if (!st.ok()) {
      cancel_pending();
      return st;
    }
    Result<alloc::Reservation> resv = heap_->allocator()->PrepareAlloc(size);
    if (!resv.ok()) {
      cancel_pending();
      return resv.status();
    }
    st = log_->AppendRecord(ctx->slot, IntentKind::kCowWrite, offset, size, resv->offset,
                            /*drain=*/false);
    if (!st.ok()) {
      heap_->allocator()->CancelAlloc(*resv);
      cancel_pending();
      return st;
    }
    pending.push_back(PendingSpan{i, *resv, size});
  }
  if (!pending.empty()) {
    log_->DrainAppends();
  }
  for (const PendingSpan& p : pending) {
    heap_->allocator()->CommitAlloc(p.resv);
    const uint64_t offset = spans[p.span_index].offset;
    std::memcpy(pool()->At(p.resv.offset), pool()->At(offset), p.size);
    ctx->open_ranges.emplace(offset, ctx->intents.size());
    ctx->intents.push_back(Intent{IntentKind::kCowWrite, offset, p.size, p.resv.offset});
  }
  for (size_t i = 0; i < count; ++i) {
    const Intent& in = ctx->intents[ctx->open_ranges.at(spans[i].offset)];
    out[i] = in.kind == IntentKind::kCowWrite ? pool()->At(in.aux) : pool()->At(in.offset);
  }
  return Status::Ok();
}

Result<uint64_t> CowEngine::Alloc(TxContext* ctx, uint64_t size) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<alloc::Reservation> resv = heap_->allocator()->PrepareAlloc(size);
  if (!resv.ok()) {
    return resv.status();
  }
  Status st = LockWrite(ctx, resv->offset);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  st = log_->AppendRecord(ctx->slot, IntentKind::kAlloc, resv->offset, resv->size);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  heap_->allocator()->CommitAlloc(*resv);
  ctx->open_ranges.emplace(resv->offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kAlloc, resv->offset, resv->size, 0});
  return resv->offset;
}

Status CowEngine::Free(TxContext* ctx, uint64_t offset) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<uint64_t> size = ResolveSize(offset, 0);
  if (!size.ok()) {
    return size.status();
  }
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
  // drain=false: deferred free — see KaminoEngine::Free and DESIGN.md §8.
  KAMINO_RETURN_IF_ERROR(log_->AppendRecord(ctx->slot, IntentKind::kFree, offset, *size, 0,
                                            /*drain=*/false));
  ctx->intents.push_back(Intent{IntentKind::kFree, offset, *size, 0});
  return Status::Ok();
}

Status CowEngine::Commit(std::unique_ptr<TxContext> ctx) {
  if (!ctx->slot.valid()) {
    ReleaseWriteLocks(ctx.get());
    committed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  // 1. Persist the shadows and any objects allocated in this transaction.
  {
    nvm::PersistSiteScope site("cow/persist-shadows");
    bool flushed = false;
    for (const Intent& in : ctx->intents) {
      if (in.kind == IntentKind::kCowWrite) {
        pool()->Flush(pool()->At(in.aux), in.size);
        flushed = true;
      } else if (in.kind == IntentKind::kAlloc) {
        pool()->Flush(pool()->At(in.offset), in.size);
        flushed = true;
      }
    }
    if (flushed) {
      pool()->Drain();
    }
  }
  // 2. Durable commit point.
  log_->SetState(ctx->slot, TxState::kCommitted);
  // 3. Install shadows over the originals (redo; replayed by recovery if we
  //    crash mid-install).
  {
    nvm::PersistSiteScope site("cow/install");
    bool installed = false;
    for (const Intent& in : ctx->intents) {
      if (in.kind == IntentKind::kCowWrite) {
        std::memcpy(pool()->At(in.offset), pool()->At(in.aux), in.size);
        pool()->Flush(pool()->At(in.offset), in.size);
        installed = true;
      }
    }
    if (installed) {
      pool()->Drain();
    }
  }
  // 4. Cleanup: delete shadows, execute deferred frees, release.
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kCowWrite) {
      KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.aux));
    } else if (in.kind == IntentKind::kFree) {
      KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRawKeepReserved(in.offset));
    }
  }
  log_->ReleaseSlot(ctx->slot);
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kFree) {
      heap_->allocator()->ReleaseReservation(in.offset);
    }
  }
  ReleaseWriteLocks(ctx.get());
  committed_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status CowEngine::Abort(TxContext* ctx) {
  if (!ctx->slot.valid()) {
    ReleaseWriteLocks(ctx);
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  log_->SetState(ctx->slot, TxState::kAborted);
  for (auto it = ctx->intents.rbegin(); it != ctx->intents.rend(); ++it) {
    switch (it->kind) {
      case IntentKind::kCowWrite:
        KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(it->aux));
        break;
      case IntentKind::kAlloc:
        KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(it->offset));
        break;
      case IntentKind::kFree:
        break;
      default:
        break;
    }
  }
  log_->ReleaseSlot(ctx->slot);
  ReleaseWriteLocks(ctx);
  aborted_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status CowEngine::Recover() {
  nvm::PersistSiteScope site("engine/recover");
  std::vector<RecoveredTx> txs = log_->ScanForRecovery();
  for (const RecoveredTx& tx : txs) {
    SlotHandle handle = log_->HandleForRecovered(tx);
    if (tx.state == TxState::kCommitted) {
      // Redo the install from the durable shadows, then clean up.
      for (const Intent& in : tx.intents) {
        if (in.kind == IntentKind::kCowWrite) {
          std::memcpy(pool()->At(in.offset), pool()->At(in.aux), in.size);
          pool()->Persist(pool()->At(in.offset), in.size);
          KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.aux));
        } else if (in.kind == IntentKind::kFree) {
          KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
        }
      }
      recovered_forward_.fetch_add(1, std::memory_order_relaxed);
    } else {
      for (const Intent& in : tx.intents) {
        if (in.kind == IntentKind::kCowWrite) {
          KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.aux));
        } else if (in.kind == IntentKind::kAlloc) {
          KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
        }
      }
      recovered_back_.fetch_add(1, std::memory_order_relaxed);
    }
    log_->ReleaseSlot(handle);
  }
  return Status::Ok();
}

}  // namespace kamino::txn
