// Public transactional API over a persistent heap (paper Table 2).
//
// A TxManager binds a heap to one of the five atomicity engines and owns the
// log manager, the lock manager and (for the Kamino engines) the backup
// store + pool. The per-transaction handle `Tx` mirrors NVML's macros:
//
//   NVML                      Kamino-Tx library
//   ------------------------  -----------------------------
//   TX_BEGIN(pop)             Tx tx = mgr->Begin();
//   TX_ADD(obj) + D_RW(obj)   T* p = tx.OpenWrite(pptr);
//   TX_ZALLOC(size)           tx.Alloc(size) / tx.AllocObject<T>()
//   TX_FREE(obj)              tx.Free(offset)
//   TX_COMMIT                 tx.Commit()
//   TX_ABORT                  tx.Abort()
//
// Usage:
//   auto mgr = txn::TxManager::Create(heap.get(), options).value();
//   Status st = mgr->Run([&](txn::Tx& tx) -> Status {
//     auto node = tx.OpenWrite(node_ptr);
//     if (!node.ok()) return node.status();
//     (*node)->value = 42;
//     return Status::Ok();
//   });

#ifndef SRC_TXN_TX_MANAGER_H_
#define SRC_TXN_TX_MANAGER_H_

#include <atomic>
#include <cstring>
#include <functional>
#include <memory>

#include "src/heap/heap.h"
#include "src/txn/backup_store.h"
#include "src/txn/engine.h"
#include "src/txn/lock_manager.h"
#include "src/txn/log_manager.h"

namespace kamino::txn {

struct TxManagerOptions {
  EngineType engine = EngineType::kKaminoSimple;
  LogOptions log;
  LockOptions lock;

  // Kamino applier threads (background Transaction Coordinator workers).
  int applier_threads = 1;

  // Kamino-Tx-Dynamic: backup copy budget as a fraction of the heap's object
  // capacity (the paper's α), plus the lookup-table geometry.
  double alpha = 0.2;
  uint64_t dynamic_lookup_buckets = 1 << 16;

  // Backup pool placement. If `external_backup_pool` is set the manager
  // borrows it (required for crash/restart tests, where the pool must
  // outlive the manager); otherwise a pool is created and owned internally.
  nvm::Pool* external_backup_pool = nullptr;
  std::string backup_path;  // Backing file for an internally created pool.
  bool backup_crash_sim = false;
  uint32_t backup_flush_latency_ns = 0;
  uint32_t backup_drain_latency_ns = 0;
  // Forwarded to the backup pool: disable stats atomics in benchmark pools,
  // make injected latency sleep (overlappable) instead of spin. See
  // nvm::PoolOptions.
  bool backup_track_stats = true;
  bool backup_sleep_latency = false;
  // Forwarded to an internally created backup pool's PoolOptions::site_prefix
  // so a sharded store's backup events are shard-attributed like the main
  // pool's (external pools carry their own prefix).
  std::string site_prefix;

  // Open() only: attach without running engine recovery. Used by chain
  // replicas, whose recovery needs a neighbour's state (paper §5.3) and is
  // driven by the chain layer instead.
  bool skip_recovery = false;

  // Recovery pipeline shape (parallel replay, online backup reconcile).
  // Defaults reproduce the classic offline single-threaded recovery.
  RecoveryOptions recovery;
};

class TxManager;

// Move-only transaction handle. Destroying an active transaction aborts it.
class Tx {
 public:
  Tx(Tx&& other) noexcept = default;
  Tx& operator=(Tx&& other) noexcept;
  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;
  ~Tx();

  // Declares write intent on [offset, offset+size) and returns the pointer
  // to write through (main copy, or CoW shadow). size == 0 means "the whole
  // object starting at offset". May block on dependent transactions.
  Result<void*> OpenWrite(uint64_t offset, uint64_t size = 0);

  template <typename T>
  Result<T*> OpenWrite(heap::PPtr<T> p) {
    Result<void*> r = OpenWrite(p.offset, sizeof(T));
    if (!r.ok()) {
      return r.status();
    }
    return static_cast<T*>(*r);
  }

  // Declares write intent on `count` spans at once (the engine batches the
  // intent-record fences: N flushes, one drain). out[i] receives span i's
  // write-through pointer. Spans already open in this transaction are
  // allowed and resolve to their existing pointer.
  Status OpenWriteBatch(const WriteSpan* spans, size_t count, void** out);

  // Takes a read lock on the object at `offset` for the duration of the
  // transaction — this is what makes reads of pending objects dependent.
  Status ReadLock(uint64_t offset);

  // If this transaction already opened `offset` for write, returns the
  // pointer writes must go through (the CoW shadow, or the in-place
  // location); nullptr otherwise. Lets data-structure code re-read objects
  // it has modified earlier in the same transaction without knowing which
  // engine is underneath.
  void* OpenedPointer(uint64_t offset);

  // Transactionally allocates `size` bytes (zeroed by default, like NVML's
  // TX_ZALLOC). Rolled back if the transaction does not commit.
  Result<uint64_t> Alloc(uint64_t size, bool zero = true);

  template <typename T>
  Result<heap::PPtr<T>> AllocObject() {
    Result<uint64_t> off = Alloc(sizeof(T), /*zero=*/true);
    if (!off.ok()) {
      return off.status();
    }
    return heap::PPtr<T>(*off);
  }

  // Transactionally frees the object at `offset` (takes effect at commit).
  Status Free(uint64_t offset);

  Status Commit();
  // Epoch-pipeline commit (LogOptions::epoch_commit, DESIGN.md §8): returns
  // at DRAM-commit; `ack` carries the epoch durability ticket. The commit
  // must not be acknowledged to any external party before
  // TxManager::WaitCommitDurable(*ack) returns. Outside epoch mode (or for
  // read-only transactions) the commit is durable on return and the ticket
  // is 0. Identical to Commit() when `ack` is nullptr.
  Status CommitAsync(CommitAck* ack);
  Status Abort();

  // --- Cross-shard 2PC (driven by shard::ShardedStore; DESIGN.md §11) -------
  // Prepare durably votes yes: the write set is flushed and a prepared record
  // (carrying the cross-shard txid and the coordinator's shard index) is
  // persisted in place of a commit record. The handle stays alive in the
  // prepared state — it must be resolved with FinishPrepared. On failure the
  // transaction returns to the active state and may be aborted normally.
  Status Prepare(uint64_t gtxid, uint64_t coord_shard);
  // Coordinator only: durably persist the commit decision on this prepared
  // transaction's slot (the cross-shard commit point) without releasing it.
  Status PersistDecision();
  // Resolves a prepared transaction: commit hands it to the applier, abort
  // rolls it back. Consumes the handle.
  Status FinishPrepared(bool commit);
  bool prepared() const { return ctx_ != nullptr && ctx_->prepared; }

  bool active() const { return ctx_ != nullptr && ctx_->active; }
  uint64_t txid() const { return ctx_ ? ctx_->txid : 0; }

  // Test-only: drops the transaction WITHOUT aborting — no rollback, no lock
  // release, the log slot stays Running. Models a process dying
  // mid-transaction; only meaningful right before a simulated crash.
  void LeakForCrashTest() {
    if (ctx_) {
      ctx_->active = false;
      ctx_.reset();
    }
  }

 private:
  friend class TxManager;
  Tx(TxManager* mgr, std::unique_ptr<TxContext> ctx) : mgr_(mgr), ctx_(std::move(ctx)) {}

  void ReleaseReadLocks();
  // Destructor/move-assign path: resolves a still-owned context — prepared
  // ones via FinishPrepared (commit iff the decision record is durable,
  // presumed abort otherwise), active ones via Abort.
  void ResolveAbandoned();

  TxManager* mgr_ = nullptr;
  std::unique_ptr<TxContext> ctx_;
};

class TxManager {
 public:
  // Formats the heap's log region and builds fresh engine state.
  static Result<std::unique_ptr<TxManager>> Create(heap::Heap* heap,
                                                   const TxManagerOptions& options);

  // Attaches to an existing log region (and backup, for Kamino engines) and
  // runs crash recovery. The post-restart path.
  static Result<std::unique_ptr<TxManager>> Open(heap::Heap* heap,
                                                 const TxManagerOptions& options);

  ~TxManager();

  // Begins a transaction. Fails only if the engine cannot obtain resources.
  Result<Tx> Begin();

  // Runs `body` in a transaction: commits if it returns OK, aborts otherwise
  // (returning the body's error). A body may also call tx.Abort() itself.
  Status Run(const std::function<Status(Tx&)>& body);

  // Like Run, but retries bodies that fail with kTxConflict (lock timeout)
  // up to `max_attempts` times.
  Status RunWithRetries(const std::function<Status(Tx&)>& body, int max_attempts = 8);

  // Persist-behind variants (LogOptions::epoch_commit, DESIGN.md §8): commit
  // via Tx::CommitAsync, returning at DRAM-commit with `ack` carrying the
  // epoch durability ticket. The caller owns the acknowledgement: nothing may
  // be reported durable to an external party before WaitCommitDurable(*ack).
  // A body that commits or aborts explicitly gets ticket 0 (its own call
  // decided durability). Outside epoch mode these are Run/RunWithRetries
  // with ticket 0 — durable on return.
  Status RunAsync(const std::function<Status(Tx&)>& body, CommitAck* ack);
  Status RunWithRetriesAsync(const std::function<Status(Tx&)>& body, CommitAck* ack,
                             int max_attempts = 8);

  // Blocks until all committed transactions are fully applied.
  void WaitIdle() { engine_->WaitIdle(); }

  // Blocks until the epoch drain covering `ack` has completed — the
  // acknowledgement fence of Tx::CommitAsync. The caller may be elected
  // epoch leader and pay the drain itself. Returns immediately for ticket 0
  // (commit was durable on return).
  void WaitCommitDurable(const CommitAck& ack) {
    if (ack.ticket != 0) {
      log_->EpochWait(ack.ticket);
    }
  }

  // Blocks until online recovery (background backup reconcile) has drained.
  // Returns immediately for offline recovery or non-Kamino engines.
  void WaitForRecovery() { engine_->WaitForRecovery(); }

  heap::Heap* heap() { return heap_; }
  AtomicityEngine* engine() { return engine_.get(); }
  LockManager* locks() { return locks_.get(); }
  LogManager* log() { return log_.get(); }
  BackupStore* backup_store() { return backup_store_.get(); }
  // The backup pool (Kamino engines), owned or borrowed; nullptr otherwise.
  nvm::Pool* backup_pool() { return backup_pool_; }

  struct Footprint {
    uint64_t main_bytes = 0;
    uint64_t backup_bytes = 0;
  };
  // NVM storage accounting for Table 1 / Figure 16.
  Footprint footprint() const;

 private:
  friend class Tx;

  TxManager(heap::Heap* heap, const TxManagerOptions& options);

  Status Init(bool attach_existing);

  heap::Heap* heap_;
  TxManagerOptions options_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<nvm::Pool> owned_backup_pool_;
  nvm::Pool* backup_pool_ = nullptr;
  std::unique_ptr<BackupStore> backup_store_;
  std::unique_ptr<AtomicityEngine> engine_;
  std::atomic<uint64_t> next_txid_{1};
};

}  // namespace kamino::txn

#endif  // SRC_TXN_TX_MANAGER_H_
