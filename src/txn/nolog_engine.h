// No-logging engine — the unsafe upper bound used by Figure 1's "No Logging"
// bars. Transactions edit in place with object locks for isolation and a
// single flush+drain at commit for durability, but there is *no* atomicity:
// an abort cannot undo in-place edits and a crash mid-transaction leaves the
// heap inconsistent. Exists purely to measure what atomicity costs.

#ifndef SRC_TXN_NOLOG_ENGINE_H_
#define SRC_TXN_NOLOG_ENGINE_H_

#include "src/txn/engine_base.h"

namespace kamino::txn {

class NoLoggingEngine : public EngineBase {
 public:
  NoLoggingEngine(heap::Heap* heap, LogManager* log, LockManager* locks)
      : EngineBase(heap, log, locks) {}

  EngineType type() const override { return EngineType::kNoLogging; }

  Status Begin(TxContext* ctx) override;
  Result<void*> OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) override;
  Result<uint64_t> Alloc(TxContext* ctx, uint64_t size) override;
  Status Free(TxContext* ctx, uint64_t offset) override;
  Status Commit(std::unique_ptr<TxContext> ctx) override;
  // Releases locks and frees this transaction's allocations, but CANNOT roll
  // back in-place edits — data modified before the abort stays modified.
  Status Abort(TxContext* ctx) override;
  Status Recover() override { return Status::Ok(); }
};

}  // namespace kamino::txn

#endif  // SRC_TXN_NOLOG_ENGINE_H_
