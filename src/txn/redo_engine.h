// Redo-logging engine — the third classical baseline (the NVM-Log scheme of
// Arulraj et al. discussed in the paper's §2).
//
// Writes never touch the main heap before commit: OpenWrite stages a copy of
// the object inside the transaction's log slot and the application edits the
// staging copy. Commit persists the staging data, flips the commit record,
// and *then* applies the new values over the originals (recovery replays
// this redo step for committed transactions). Abort is trivial — the main
// heap was never modified — but, like undo and CoW, a copy of every written
// object is made in the critical path, which is what Kamino-Tx eliminates.

#ifndef SRC_TXN_REDO_ENGINE_H_
#define SRC_TXN_REDO_ENGINE_H_

#include "src/txn/engine_base.h"

namespace kamino::txn {

class RedoLogEngine : public EngineBase {
 public:
  RedoLogEngine(heap::Heap* heap, LogManager* log, LockManager* locks)
      : EngineBase(heap, log, locks) {}

  EngineType type() const override { return EngineType::kRedoLog; }

  Status Begin(TxContext* ctx) override;
  // Returns a pointer to the log-resident staging copy.
  Result<void*> OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) override;
  Status OpenWriteBatch(TxContext* ctx, const WriteSpan* spans, size_t count,
                        void** out) override;
  Result<uint64_t> Alloc(TxContext* ctx, uint64_t size) override;
  Status Free(TxContext* ctx, uint64_t offset) override;
  Status Commit(std::unique_ptr<TxContext> ctx) override;
  Status Abort(TxContext* ctx) override;
  Status Recover() override;
};

}  // namespace kamino::txn

#endif  // SRC_TXN_REDO_ENGINE_H_
