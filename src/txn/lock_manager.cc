#include "src/txn/lock_manager.h"

#include <algorithm>
#include <chrono>

namespace kamino::txn {

LockManager::LockManager(const LockOptions& options) : options_(options) {}

void LockManager::SetContentionHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lk(hook_mu_);
  contention_hook_ = std::move(hook);
}

bool LockManager::BlockedWait(Shard& shard, std::unique_lock<std::mutex>& lk,
                              const std::function<bool()>& ready) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.timeout_ms);
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> hl(hook_mu_);
    hook = contention_hook_;
  }
  if (!hook) {
    return shard.cv.wait_until(lk, deadline, ready);
  }
  // Sliced wait: the hook runs outside shard.mu (it may take the log's
  // sequencer mutex and applier locks), and runs repeatedly because the
  // blocker may commit into a *new* epoch after an earlier slice drained
  // the previous one.
  constexpr auto kSlice = std::chrono::milliseconds(5);
  for (;;) {
    lk.unlock();
    hook();
    lk.lock();
    if (ready()) {
      return true;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return false;
    }
    if (shard.cv.wait_until(lk, std::min(deadline, now + kSlice), ready)) {
      return true;
    }
  }
}

Status LockManager::AcquireWrite(uint64_t key, uint64_t txid) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lk(shard.mu);
  Entry& e = shard.entries[key];
  if (e.writer_txid == txid) {
    return Status::Ok();  // Re-entrant.
  }
  write_acquires_.fetch_add(1, std::memory_order_relaxed);
  if (e.writer_txid == 0 && e.readers == 0) {
    e.writer_txid = txid;
    return Status::Ok();
  }

  // Dependent transaction: wait for the holder (possibly the async applier
  // that has not yet synced the backup) to release.
  blocked_acquires_.fetch_add(1, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  ++e.waiters;
  const bool got = BlockedWait(shard, lk, [&] {
    Entry& cur = shard.entries[key];
    return cur.writer_txid == 0 && cur.readers == 0;
  });
  Entry& cur = shard.entries[key];
  --cur.waiters;
  total_block_ns_.fetch_add(
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count()),
      std::memory_order_relaxed);
  if (!got) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    if (cur.writer_txid == 0 && cur.readers == 0 && cur.waiters == 0) {
      shard.entries.erase(key);
    }
    return Status::TxConflict("write-lock timeout");
  }
  cur.writer_txid = txid;
  return Status::Ok();
}

Status LockManager::AcquireRead(uint64_t key, uint64_t txid) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lk(shard.mu);
  Entry& e = shard.entries[key];
  if (e.writer_txid == txid) {
    return Status::Ok();  // Reader already owns the write lock.
  }
  read_acquires_.fetch_add(1, std::memory_order_relaxed);
  if (e.writer_txid == 0) {
    ++e.readers;
    return Status::Ok();
  }

  blocked_acquires_.fetch_add(1, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  ++e.waiters;
  const bool got = BlockedWait(shard, lk, [&] {
    return shard.entries[key].writer_txid == 0;
  });
  Entry& cur = shard.entries[key];
  --cur.waiters;
  total_block_ns_.fetch_add(
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count()),
      std::memory_order_relaxed);
  if (!got) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    if (cur.writer_txid == 0 && cur.readers == 0 && cur.waiters == 0) {
      shard.entries.erase(key);
    }
    return Status::TxConflict("read-lock timeout");
  }
  ++cur.readers;
  return Status::Ok();
}

void LockManager::ReleaseWrite(uint64_t key, uint64_t txid) {
  Shard& shard = ShardFor(key);
  bool notify = false;
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end() || it->second.writer_txid != txid) {
      return;  // Not held by this txid; tolerate double-release.
    }
    it->second.writer_txid = 0;
    notify = true;
    if (it->second.readers == 0 && it->second.waiters == 0) {
      shard.entries.erase(it);
    }
  }
  if (notify) {
    shard.cv.notify_all();
  }
}

void LockManager::ReleaseRead(uint64_t key, uint64_t txid) {
  Shard& shard = ShardFor(key);
  bool notify = false;
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      return;
    }
    // A txid holding the write lock never incremented readers.
    if (it->second.writer_txid == txid) {
      return;
    }
    if (it->second.readers == 0) {
      return;
    }
    if (--it->second.readers == 0) {
      notify = true;
      if (it->second.writer_txid == 0 && it->second.waiters == 0) {
        shard.entries.erase(it);
      }
    }
  }
  if (notify) {
    shard.cv.notify_all();
  }
}

bool LockManager::IsWriteLocked(uint64_t key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.entries.find(key);
  return it != shard.entries.end() && it->second.writer_txid != 0;
}

LockStats LockManager::stats() const {
  LockStats s;
  s.write_acquires = write_acquires_.load(std::memory_order_relaxed);
  s.read_acquires = read_acquires_.load(std::memory_order_relaxed);
  s.blocked_acquires = blocked_acquires_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.total_block_ns = total_block_ns_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace kamino::txn
