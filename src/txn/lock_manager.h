// Object-granularity reader/writer locks (paper §3, §6.3).
//
// Kamino-Tx declares write intent by taking an object-level lock; the lock is
// *not* released at commit. It stays held until the background Transaction
// Coordinator has made the main and backup versions identical for that
// object, which is exactly how dependent transactions (whose read/write set
// intersects a prior transaction's write set) are made to wait. Locks live in
// volatile memory: after a crash, the write intents in the log are enough to
// reconstruct what was pending (paper §6.2), so nothing here is persistent.
//
// Deadlock handling: acquisition blocks with a timeout; timing out returns
// kTxConflict and the engine aborts the transaction (locks are acquired
// incrementally as intents are declared, so cycles are possible in principle;
// the paper's workloads acquire per-object locks the same way).

#ifndef SRC_TXN_LOCK_MANAGER_H_
#define SRC_TXN_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/common/status.h"

namespace kamino::txn {

struct LockOptions {
  // How long an acquisition may block before the transaction is told to
  // abort with kTxConflict. Also bounds dependent-transaction waits if an
  // applier stalls.
  uint64_t timeout_ms = 10'000;
};

struct LockStats {
  uint64_t write_acquires = 0;
  uint64_t read_acquires = 0;
  uint64_t blocked_acquires = 0;  // Acquisitions that had to wait (dependent).
  uint64_t timeouts = 0;
  uint64_t total_block_ns = 0;    // Time spent waiting across all acquires.
};

class LockManager {
 public:
  explicit LockManager(const LockOptions& options = LockOptions());
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Acquires the write lock on `key` for transaction `txid`. Re-acquisition
  // by the same txid succeeds immediately. Blocks while another transaction
  // holds the lock (in any mode) — including the post-commit window where the
  // applier has not yet synced the backup. Returns kTxConflict on timeout.
  Status AcquireWrite(uint64_t key, uint64_t txid);

  // Acquires a read lock. Blocks while a writer holds or is pending on `key`.
  // A txid that already holds the write lock may read freely.
  Status AcquireRead(uint64_t key, uint64_t txid);

  void ReleaseWrite(uint64_t key, uint64_t txid);
  void ReleaseRead(uint64_t key, uint64_t txid);

  // True if any transaction currently holds the write lock on `key` (test
  // hook; racy by nature).
  bool IsWriteLocked(uint64_t key) const;

  LockStats stats() const;

 private:
  struct Entry {
    uint64_t writer_txid = 0;  // 0 = no writer.
    uint32_t readers = 0;
    uint32_t waiters = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<uint64_t, Entry> entries;
  };

  static constexpr int kNumShards = 64;

  Shard& ShardFor(uint64_t key) { return shards_[(key >> 6) & (kNumShards - 1)]; }
  const Shard& ShardFor(uint64_t key) const { return shards_[(key >> 6) & (kNumShards - 1)]; }

  LockOptions options_;
  Shard shards_[kNumShards];

  std::atomic<uint64_t> write_acquires_{0};
  std::atomic<uint64_t> read_acquires_{0};
  std::atomic<uint64_t> blocked_acquires_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> total_block_ns_{0};
};

}  // namespace kamino::txn

#endif  // SRC_TXN_LOCK_MANAGER_H_
