// Object-granularity reader/writer locks (paper §3, §6.3).
//
// Kamino-Tx declares write intent by taking an object-level lock; the lock is
// *not* released at commit. It stays held until the background Transaction
// Coordinator has made the main and backup versions identical for that
// object, which is exactly how dependent transactions (whose read/write set
// intersects a prior transaction's write set) are made to wait. Locks live in
// volatile memory: after a crash, the write intents in the log are enough to
// reconstruct what was pending (paper §6.2), so nothing here is persistent.
//
// Deadlock handling: acquisition blocks with a timeout; timing out returns
// kTxConflict and the engine aborts the transaction (locks are acquired
// incrementally as intents are declared, so cycles are possible in principle;
// the paper's workloads acquire per-object locks the same way).

#ifndef SRC_TXN_LOCK_MANAGER_H_
#define SRC_TXN_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "src/common/status.h"

namespace kamino::txn {

struct LockOptions {
  // How long an acquisition may block before the transaction is told to
  // abort with kTxConflict. Also bounds dependent-transaction waits if an
  // applier stalls.
  uint64_t timeout_ms = 10'000;
};

struct LockStats {
  uint64_t write_acquires = 0;
  uint64_t read_acquires = 0;
  uint64_t blocked_acquires = 0;  // Acquisitions that had to wait (dependent).
  uint64_t timeouts = 0;
  uint64_t total_block_ns = 0;    // Time spent waiting across all acquires.
};

class LockManager {
 public:
  explicit LockManager(const LockOptions& options = LockOptions());
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Acquires the write lock on `key` for transaction `txid`. Re-acquisition
  // by the same txid succeeds immediately. Blocks while another transaction
  // holds the lock (in any mode) — including the post-commit window where the
  // applier has not yet synced the backup. Returns kTxConflict on timeout.
  Status AcquireWrite(uint64_t key, uint64_t txid);

  // Acquires a read lock. Blocks while a writer holds or is pending on `key`.
  // A txid that already holds the write lock may read freely.
  Status AcquireRead(uint64_t key, uint64_t txid);

  void ReleaseWrite(uint64_t key, uint64_t txid);
  void ReleaseRead(uint64_t key, uint64_t txid);

  // True if any transaction currently holds the write lock on `key` (test
  // hook; racy by nature).
  bool IsWriteLocked(uint64_t key) const;

  // Installs a hook invoked — with no internal mutex held — whenever an
  // acquisition is about to block, and again periodically while it waits.
  // The lock table doubles as the dependency tracker: under the epoch
  // pipeline (LogOptions::epoch_commit) a blocked acquirer is a dependent
  // transaction whose blocker may be parked on the open epoch, so the hook
  // drives LogManager::DrainEpoch — the waiter pays for the drain that
  // releases its dependency instead of deadlocking against other blocked
  // clients until the lock timeout. Install before concurrent use (the
  // engine constructor); pass nullptr to clear.
  void SetContentionHook(std::function<void()> hook);

  LockStats stats() const;

 private:
  struct Entry {
    uint64_t writer_txid = 0;  // 0 = no writer.
    uint32_t readers = 0;
    uint32_t waiters = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<uint64_t, Entry> entries;
  };

  static constexpr int kNumShards = 64;

  Shard& ShardFor(uint64_t key) { return shards_[(key >> 6) & (kNumShards - 1)]; }
  const Shard& ShardFor(uint64_t key) const { return shards_[(key >> 6) & (kNumShards - 1)]; }

  // Waits on `shard.cv` until `ready()` (evaluated under shard.mu) or the
  // lock timeout. With a contention hook installed the wait runs in short
  // slices, dropping shard.mu and invoking the hook between slices; `ready`
  // must re-look-up its Entry each call (the map may rehash while unlocked).
  bool BlockedWait(Shard& shard, std::unique_lock<std::mutex>& lk,
                   const std::function<bool()>& ready);

  LockOptions options_;
  Shard shards_[kNumShards];

  mutable std::mutex hook_mu_;
  std::function<void()> contention_hook_;

  std::atomic<uint64_t> write_acquires_{0};
  std::atomic<uint64_t> read_acquires_{0};
  std::atomic<uint64_t> blocked_acquires_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> total_block_ns_{0};
};

}  // namespace kamino::txn

#endif  // SRC_TXN_LOCK_MANAGER_H_
