// Kamino-Tx atomicity engine (paper §3 "Kamino-Tx-Simple", §4 "-Dynamic").
//
// Transactions edit the main heap *in place*. The only critical-path
// persistence work is the intent log (object addresses — one cache line per
// object) and the final flush of the modified ranges. After the commit
// record is durable the transaction returns; a background Transaction
// Coordinator then copies the modified objects to the backup version and
// only afterwards releases the objects' write locks. Dependent
// transactions — whose read/write set intersects a pending write set — block
// on those locks until main and backup agree (paper's Safety 1 & 2).
//
// The coordinator is sharded: each applier thread owns a private queue
// (mutex + cv) and Commit round-robins committed contexts across them.
// This is safe because write locks are held until apply completes, so any
// two queued transactions have disjoint write sets and their backup applies
// commute — order across shards is irrelevant. See DESIGN.md, "Transaction
// Coordinator pipeline".
//
// Aborts copy the untouched backup values over the main version in the
// aborting thread (aborts are rare; Figure 6). Recovery treats incomplete
// transactions as aborted: committed-but-unapplied transactions are rolled
// forward into the backup, everything else is rolled back from it.
//
// The Simple/Dynamic distinction is entirely inside the BackupStore: a full
// mirror never costs anything at OpenWrite time, while the dynamic (partial)
// store pays one critical-path copy per cold object (paper §4).

#ifndef SRC_TXN_KAMINO_ENGINE_H_
#define SRC_TXN_KAMINO_ENGINE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/stats/histogram.h"
#include "src/txn/backup_store.h"
#include "src/txn/dirty_map.h"
#include "src/txn/engine_base.h"

namespace kamino::txn {

class KaminoEngine : public EngineBase {
 public:
  // `store` outlives the engine; `dynamic` selects the Dynamic flavour
  // (enables pinning + critical-path copies on cold objects).
  KaminoEngine(heap::Heap* heap, LogManager* log, LockManager* locks, BackupStore* store,
               bool dynamic, int applier_threads = 1, RecoveryOptions recovery = {});
  ~KaminoEngine() override;

  EngineType type() const override {
    return dynamic_ ? EngineType::kKaminoDynamic : EngineType::kKaminoSimple;
  }

  Status Begin(TxContext* ctx) override;
  Result<void*> OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) override;
  Status OpenWriteBatch(TxContext* ctx, const WriteSpan* spans, size_t count,
                        void** out) override;
  Result<uint64_t> Alloc(TxContext* ctx, uint64_t size) override;
  Status Free(TxContext* ctx, uint64_t offset) override;
  Status Commit(std::unique_ptr<TxContext> ctx) override;
  // Epoch pipeline (LogOptions::epoch_commit, DESIGN.md §8): returns at
  // DRAM-commit with `ack` carrying the epoch durability ticket. The context
  // reaches the applier only through the epoch's durability callback, so the
  // backup never runs ahead of the log. Without epoch_commit this is Commit.
  Status CommitAsync(std::unique_ptr<TxContext> ctx, CommitAck* ack) override;
  Status Abort(TxContext* ctx) override;
  // Cross-shard 2PC (DESIGN.md §11): Prepare persists a prepared record in
  // place of the commit record; PersistDecision durably flips the
  // coordinator's own slot to Committed without touching the applier;
  // FinishPrepared resolves a prepared context per the decision — commit
  // follows the normal commit tail (hand to applier), abort follows Abort's
  // backup rollback.
  Status Prepare(TxContext* ctx, uint64_t gtxid, uint64_t coord_shard) override;
  Status PersistDecision(TxContext* ctx) override;
  Status FinishPrepared(std::unique_ptr<TxContext> ctx, bool commit) override;
  // Two-phase recovery (DESIGN.md §10): parallel log replay, then backup
  // reconciliation — inline (offline) or in the background behind dirty-map
  // fences (online). Errors are aggregated, never early-returned: every
  // recovered transaction is resolved on its own, failed ones keep their log
  // slot so a retry (or the next recovery) sees them again.
  Status Recover() override;
  void WaitIdle() override;
  void WaitForRecovery() override;
  uint64_t backup_bytes() const override { return store_->backup_bytes(); }

  // Adds the coordinator-pipeline counters (queue depth, commit->applied lag
  // percentiles, batch/coalescing totals) to the base engine stats.
  EngineStats stats() const override;

  BackupStore* store() { return store_; }

  // --- Crash-test hooks -------------------------------------------------
  // Pausing stops appliers from dequeuing new work, freezing committed
  // transactions in the "committed but not applied" window so tests can
  // crash there deterministically.
  void PauseApplier(bool paused);
  // Drops all queued (unapplied) contexts, modelling the process dying
  // before the Transaction Coordinator ran. Locks they held are NOT
  // released — callers are about to throw the whole manager away.
  void DiscardPendingForCrashTest();

 private:
  // One applier thread's private work queue. Sharding removes the single
  // dispatch mutex from the commit path and lets appliers drain
  // independently; correctness rests on the disjoint-write-set invariant
  // noted above.
  struct ApplierShard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::unique_ptr<TxContext>> queue;
  };

  void ApplierLoop(size_t shard_index);
  // Shared Commit/CommitAsync body; `ack == nullptr` means durable-on-return.
  Status CommitImpl(std::unique_ptr<TxContext> ctx, CommitAck* ack);
  // Round-robins a committed context across the applier shards. In epoch
  // mode this runs inside the epoch's durability callback (on the leader
  // thread); in_flight_ was already counted at commit time.
  void EnqueueCommitted(std::unique_ptr<TxContext> ctx);
  // Rolls a committed transaction forward into the backup (one batched
  // apply, at most one drain). The applier loop then releases the whole
  // batch's slots behind one fence and calls FinishApplied per transaction
  // (deferred-free reservations, write locks, stats). Both run on an applier
  // thread.
  void ApplyCommitted(TxContext* ctx);
  void FinishApplied(TxContext* ctx);

  // --- Recovery pipeline (DESIGN.md §10) --------------------------------
  // Replays one partition of the recovered transactions (runs on a recovery
  // worker, or inline when workers == 1). Committed transactions are rolled
  // forward inline, or — online — handed back to the applier pool under
  // re-acquired write locks (appended to `handoff`). Failed transactions
  // keep their slot; first error wins, the loop continues.
  Status ReplayPartition(const std::vector<RecoveredTx>& txs,
                         std::vector<std::unique_ptr<TxContext>>* handoff);
  Status RollForwardRecovered(const RecoveredTx& tx);
  Status RollBackRecovered(const RecoveredTx& tx);
  // Rebuilds an applier-ready context for a recovered committed transaction,
  // re-acquiring its write locks. Fails only on lock timeout (the caller
  // falls back to the inline roll-forward).
  Result<std::unique_ptr<TxContext>> BuildHandoff(const RecoveredTx& tx);

  // Arms the dirty map over the allocator region: snapshots the live
  // allocations per chunk, trusts chunks below a persisted resume cursor,
  // and marks object-free chunks clean. Replay must be complete first.
  void BuildDirtyMap();
  // Copies every snapshotted object of `chunk` main -> backup.
  Status ReconcileChunk(uint64_t chunk);
  // Blocks until every chunk overlapping [offset, size) is clean. No-op
  // unless an online reconcile is active.
  Status FenceDirtyRange(uint64_t offset, uint64_t size);
  void ReconcileLoop();
  // Persists the dirty map's contiguous clean frontier into the log header
  // if it advanced past the last persisted value.
  void MaybePersistCursor();
  void FinishReconcile();

  BackupStore* store_;
  bool dynamic_;
  const RecoveryOptions recovery_;

  std::vector<std::unique_ptr<ApplierShard>> shards_;
  std::atomic<uint64_t> next_shard_{0};
  // Committed-but-not-yet-applied transactions (queued + being applied).
  std::atomic<uint64_t> in_flight_{0};
  // Backup-read cut accounting (DESIGN.md §12): transactions whose backup
  // applies are complete AND whose log slots are durably released. Each
  // applier adds its batch after its own ReleaseSlots fence, then publishes
  // the sum as the epoch stamp; seeded from the durable stamp at open.
  std::atomic<uint64_t> cut_released_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};

  // WaitIdle blocks here; appliers notify after every completed apply.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  // Coordinator observability.
  std::atomic<uint64_t> apply_batches_{0};
  std::atomic<uint64_t> coalesced_ranges_{0};
  stats::LatencyHistogram apply_lag_;  // Commit-enqueue -> fully applied.

  std::vector<std::thread> appliers_;

  // --- Online-reconcile state -------------------------------------------
  // dirty_map_ and chunk_objects_ are built single-threaded in Recover()
  // before reconcile_active_ is published (release) and before any worker
  // or handed-off context exists; they are read-only afterwards.
  std::unique_ptr<DirtyMap> dirty_map_;
  std::vector<std::vector<ApplyRange>> chunk_objects_;  // Keyed by start chunk.
  std::atomic<bool> reconcile_active_{false};
  std::atomic<bool> reconcile_stop_{false};
  std::vector<std::thread> reconcilers_;
  std::atomic<uint64_t> reconciled_bytes_{0};

  // Cursor persistence is serialized (several reconcilers may race to
  // publish the frontier) and monotone.
  std::mutex cursor_mu_;
  uint64_t last_persisted_cursor_ = 0;

  std::mutex reconcile_done_mu_;
  std::condition_variable reconcile_done_cv_;
  bool reconcile_finished_ = false;  // FinishReconcile runs once.

  // Replay-phase wall times; written before/by the (joined) recovery
  // workers, read-only once Recover() returns.
  uint64_t recovery_replay_ns_ = 0;
  std::vector<uint64_t> recovery_worker_ns_;
};

}  // namespace kamino::txn

#endif  // SRC_TXN_KAMINO_ENGINE_H_
