// Log Manager (paper §6.2, Figure 11).
//
// Maintains persistent, fixed-size intent logs: per-transaction slots holding
// a header (state + transaction id) and a sequence of 64-byte, cache-line-
// aligned records. Records are *self-validating* — each carries the owning
// slot's txid and a CRC — so appending a record costs exactly one line flush
// and one drain, with no separate persistent record counter ("fine-grained
// logging of fixed-size write intents with minimum number of cache flushes").
// Stale records from a slot's previous occupant fail validation automatically
// because their txid tag no longer matches.
//
// Kamino-Tx records only object addresses in these logs; the undo and CoW
// baseline engines additionally use each slot's payload area for object
// snapshots (undo) — the copying the paper is eliminating from the critical
// path.

#ifndef SRC_TXN_LOG_MANAGER_H_
#define SRC_TXN_LOG_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/nvm/pool.h"

namespace kamino::txn {

enum class TxState : uint64_t {
  kFree = 0,
  kRunning = 1,
  kCommitted = 2,
  kAborted = 3,
};

enum class IntentKind : uint64_t {
  kNone = 0,
  kWrite = 1,      // In-place modification of [offset, offset+size).
  kAlloc = 2,      // New allocation (also treated as a write at commit).
  kFree = 3,       // Deallocation, deferred to post-commit.
  kCowWrite = 4,   // CoW engine: heap shadow at `aux` for [offset, offset+size).
  kRedoWrite = 5,  // Redo engine: log-resident staging copy at `aux`.
};

// Volatile view of one intent record.
struct Intent {
  IntentKind kind = IntentKind::kNone;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t aux = 0;  // Undo: payload offset in pool; CoW: shadow offset.
};

struct LogOptions {
  uint64_t num_slots = 128;
  uint64_t slot_size = 64 * 1024;  // Header + records + payload area.
  uint64_t max_records = 128;      // 64 B each.
};

// Handle to an acquired slot; owned by a TxContext.
struct SlotHandle {
  uint64_t slot_index = ~0ull;
  uint64_t txid = 0;
  uint64_t num_records = 0;   // Volatile; recovered by scanning.
  uint64_t payload_used = 0;  // Bump offset into the payload area.

  bool valid() const { return slot_index != ~0ull; }
};

// A transaction reconstructed from the log during recovery.
struct RecoveredTx {
  uint64_t slot_index = 0;
  uint64_t txid = 0;
  TxState state = TxState::kFree;
  std::vector<Intent> intents;
};

class LogManager {
 public:
  // Formats the log region [region_offset, region_offset+region_size).
  static Result<std::unique_ptr<LogManager>> Create(nvm::Pool* pool, uint64_t region_offset,
                                                    uint64_t region_size,
                                                    const LogOptions& options);

  // Attaches to an existing log region (recovery path). Slots holding
  // non-free transactions stay unavailable until ScanForRecovery() +
  // ReleaseSlot().
  static Result<std::unique_ptr<LogManager>> Open(nvm::Pool* pool, uint64_t region_offset);

  // Acquires a free slot for `txid` and durably marks it Running. Blocks if
  // all slots are busy (backpressure on the async applier).
  Result<SlotHandle> AcquireSlot(uint64_t txid);

  // Appends one intent record and persists it (one flush; one drain unless
  // `drain` is false, in which case the caller batches the drain).
  Status AppendRecord(SlotHandle& slot, IntentKind kind, uint64_t offset, uint64_t size,
                      uint64_t aux = 0, bool drain = true);

  // Reserves `size` bytes in the slot's payload area (undo snapshots);
  // returns the pool offset of the reservation.
  Result<uint64_t> ReservePayload(SlotHandle& slot, uint64_t size);

  // Durably transitions the slot's state (the commit/abort point).
  void SetState(const SlotHandle& slot, TxState state);

  // Durably frees the slot and returns it to the free list.
  void ReleaseSlot(SlotHandle& slot);

  // Recovery: returns every non-free transaction in the log, sorted by txid.
  // Slots remain held; the engine resolves each and calls ReleaseSlot (via a
  // handle rebuilt with HandleForRecovered).
  std::vector<RecoveredTx> ScanForRecovery();
  SlotHandle HandleForRecovered(const RecoveredTx& tx) const;

  // Largest txid present in the log at Open() time (0 for a fresh log).
  uint64_t max_recovered_txid() const { return max_recovered_txid_; }

  uint64_t num_slots() const { return num_slots_; }
  uint64_t slot_size() const { return slot_size_; }
  uint64_t max_records() const { return max_records_; }

 private:
  // Persistent layouts. kRecordSize == cache line so a record persists with a
  // single line flush and can never be torn across lines.
  static constexpr uint64_t kRecordSize = 64;
  static constexpr uint64_t kSlotHeaderSize = 64;
  static constexpr uint64_t kMagic = 0x4B414D494E4F4C47ull;  // "KAMINOLG"

  struct LogHeader {
    uint64_t magic;
    uint64_t version;
    uint64_t num_slots;
    uint64_t slot_size;
    uint64_t max_records;
    uint64_t checksum;
  };

  struct SlotHeader {
    uint64_t state;  // TxState.
    uint64_t txid;
    uint64_t reserved[6];
  };

  struct Record {
    uint64_t offset;
    uint64_t size;
    uint64_t kind_seq;  // kind << 56 | record index.
    uint64_t aux;
    uint64_t txid_tag;  // Must equal the slot's txid.
    uint64_t crc;       // Crc64 over the 5 fields above.
    uint64_t pad[2];
  };
  static_assert(sizeof(Record) == kRecordSize);

  LogManager(nvm::Pool* pool, uint64_t region_offset);

  Status Format(uint64_t region_size, const LogOptions& options);
  Status Attach();

  uint64_t SlotOffset(uint64_t index) const {
    return region_offset_ + kSlotHeaderSize + index * slot_size_;
  }
  SlotHeader* SlotHeaderAt(uint64_t index) {
    return static_cast<SlotHeader*>(pool_->At(SlotOffset(index)));
  }
  const SlotHeader* SlotHeaderAt(uint64_t index) const {
    return static_cast<const SlotHeader*>(pool_->At(SlotOffset(index)));
  }
  Record* RecordAt(uint64_t slot_index, uint64_t record_index) {
    return static_cast<Record*>(
        pool_->At(SlotOffset(slot_index) + kSlotHeaderSize + record_index * kRecordSize));
  }
  const Record* RecordAt(uint64_t slot_index, uint64_t record_index) const {
    return static_cast<const Record*>(
        pool_->At(SlotOffset(slot_index) + kSlotHeaderSize + record_index * kRecordSize));
  }
  uint64_t PayloadAreaOffset(uint64_t slot_index) const {
    return SlotOffset(slot_index) + kSlotHeaderSize + max_records_ * kRecordSize;
  }
  uint64_t PayloadAreaSize() const {
    return slot_size_ - kSlotHeaderSize - max_records_ * kRecordSize;
  }

  static uint64_t RecordCrc(const Record& r);
  bool RecordValid(const Record& r, uint64_t txid, uint64_t index) const;

  nvm::Pool* pool_;
  uint64_t region_offset_;
  uint64_t num_slots_ = 0;
  uint64_t slot_size_ = 0;
  uint64_t max_records_ = 0;
  uint64_t max_recovered_txid_ = 0;

  std::mutex mu_;
  std::condition_variable slot_available_;
  std::vector<uint64_t> free_slots_;
};

}  // namespace kamino::txn

#endif  // SRC_TXN_LOG_MANAGER_H_
