// Log Manager (paper §6.2, Figure 11).
//
// Maintains persistent, fixed-size intent logs: per-transaction slots holding
// a header (state + transaction id) and a sequence of 64-byte, cache-line-
// aligned records. Records are *self-validating* — each carries the owning
// slot's txid and a CRC — so appending a record costs exactly one line flush
// and one drain, with no separate persistent record counter ("fine-grained
// logging of fixed-size write intents with minimum number of cache flushes").
// Stale records from a slot's previous occupant fail validation automatically
// because their txid tag no longer matches.
//
// Kamino-Tx records only object addresses in these logs; the undo and CoW
// baseline engines additionally use each slot's payload area for object
// snapshots (undo) — the copying the paper is eliminating from the critical
// path.
//
// Commit critical path (see DESIGN.md §8 for the fence-accounting model):
//
//   - Slot acquisition is a per-thread cache over striped lock-free
//     freelists; the global mutex is only taken when every freelist is
//     empty (true backpressure on the async applier). Acquisition *flushes*
//     the slot header but does not drain it: the txid tag self-validation
//     means a header that never became durable simply leaves the slot's
//     prior (durably Free) state behind, which recovery ignores.
//   - AppendRecord(drain=false) lets callers batch N intent flushes behind
//     a single DrainAppends() — the write-set batch path — and lets kFree
//     intents skip the drain entirely (any later drain, including the
//     commit-point drain, covers them; a lost kFree record only ever means
//     the free is not performed, never corruption).
//   - SetState(kCommitted) runs leader-based group commit: each committer
//     flushes its own commit record, then one elected leader drains on
//     behalf of every committer whose flush preceded the drain. A solo
//     committer still pays exactly one flush + one drain at the
//     "log/commit-record" site, so the crash-point enumeration harness sees
//     a deterministic event stream for single-mutator workloads.
//
// Epoch pipeline (`LogOptions::epoch_commit`, DESIGN.md §8): the group-commit
// ticket machinery generalises into an *epoch sequencer* shared by every
// commit-path fence. Committers flush their write set and a CRC-carrying
// kEpochCommitted header (no drains of their own), take a durability ticket,
// and one elected leader pays a single covering drain per epoch at the
// "log/epoch-drain" site — intent appends ride the same drain. Commit is the
// DRAM-side ticket; only the *acknowledgement* (EpochWait) blocks on the
// epoch's drain, and appliers consume a transaction only via its durability
// callback, so the backup never runs ahead of the log. Recovery trusts a
// kEpochCommitted slot only if the write-set CRC recomputed from the main
// heap matches the header — the validation that makes merging the data and
// mark drains sound under random cache eviction (a mark that leaked ahead of
// torn data fails the CRC and rolls back).
//
// `LogOptions::legacy_fences` restores the pre-optimisation behaviour
// (durable slot acquisition, one drain per append, solo commit drains);
// leaving both switches off reproduces the PR 4 schedule. All three fence
// regimes are measurable in one binary.

#ifndef SRC_TXN_LOG_MANAGER_H_
#define SRC_TXN_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/nvm/pool.h"

namespace kamino::txn {

enum class TxState : uint64_t {
  kFree = 0,
  kRunning = 1,
  kCommitted = 2,
  kAborted = 3,
  // Cross-shard 2PC (DESIGN.md §11): the write set is fully logged and the
  // participant votes yes, but the outcome belongs to the coordinator shard's
  // decision record. A kPrepared slot found at recovery is *in doubt* — it
  // must be resolved by consulting the coordinator's log, never unilaterally.
  kPrepared = 4,
  // Epoch pipeline (LogOptions::epoch_commit): committed in DRAM order, with
  // the write-set CRC and range count in the header's reserved words. The
  // mark shares the epoch drain with the data it covers, so recovery trusts
  // it only after recomputing the CRC over the intent ranges — a mismatch
  // (mark persisted ahead of torn data by random eviction) rolls back.
  kEpochCommitted = 5,
};

enum class IntentKind : uint64_t {
  kNone = 0,
  kWrite = 1,      // In-place modification of [offset, offset+size).
  kAlloc = 2,      // New allocation (also treated as a write at commit).
  kFree = 3,       // Deallocation, deferred to post-commit.
  kCowWrite = 4,   // CoW engine: heap shadow at `aux` for [offset, offset+size).
  kRedoWrite = 5,  // Redo engine: log-resident staging copy at `aux`.
};

// Volatile view of one intent record.
struct Intent {
  IntentKind kind = IntentKind::kNone;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t aux = 0;   // Undo: payload offset in pool; CoW: shadow offset.
  uint64_t aux2 = 0;  // Undo: CRC of the payload snapshot (validity gate).
};

struct LogOptions {
  uint64_t num_slots = 128;
  uint64_t slot_size = 64 * 1024;  // Header + records + payload area.
  uint64_t max_records = 128;      // 64 B each.

  // Runtime-only tuning (not persisted; adopted again on Open()).
  //
  // Number of lock-free freelist stripes slot releases/acquires spread
  // over. Clamped to [1, num_slots].
  uint64_t freelist_stripes = 8;
  // Leader-based group commit: how long an elected leader waits for more
  // committers to join before draining on everyone's behalf. 0 keeps
  // coalescing purely opportunistic (the leader drains immediately;
  // committers that flushed before the drain still ride along).
  uint64_t group_commit_window_ns = 0;
  // Pre-optimisation fence behaviour: durable slot acquisition, a drain on
  // every append (batching requests ignored), and solo commit drains.
  bool legacy_fences = false;
  // Epoch/persist-behind commit (see file comment): merge append, commit and
  // write-set drains into one shared epoch drain; commit records carry a
  // write-set CRC and acknowledgements block on the epoch's durability
  // ticket. Off (together with legacy_fences off) reproduces the PR 4
  // schedule in-binary. Ignored when legacy_fences is set.
  bool epoch_commit = false;
};

// Handle to an acquired slot; owned by a TxContext.
struct SlotHandle {
  uint64_t slot_index = ~0ull;
  uint64_t txid = 0;
  uint64_t num_records = 0;   // Volatile; recovered by scanning.
  uint64_t payload_used = 0;  // Bump offset into the payload area.

  bool valid() const { return slot_index != ~0ull; }
};

// A transaction reconstructed from the log during recovery.
struct RecoveredTx {
  uint64_t slot_index = 0;
  uint64_t txid = 0;
  TxState state = TxState::kFree;
  // kPrepared only: the cross-shard transaction id (the coordinator's local
  // txid) and the coordinator's shard index, read back from the slot header.
  uint64_t gtxid = 0;
  uint64_t coord_shard = ~0ull;
  std::vector<Intent> intents;
};

struct LogStats {
  // Slot-acquisition backpressure: how often AcquireSlot had to take the
  // slow path (every freelist empty) and the total time spent blocked.
  uint64_t blocked_acquires = 0;
  uint64_t blocked_wait_ns = 0;
  // Group commit: commits whose drain was performed by a leader on behalf
  // of the group, and how many drains leaders actually issued. The
  // coalescing ratio is group_commit_commits / group_commit_leader_drains.
  uint64_t group_commit_commits = 0;
  uint64_t group_commit_leader_drains = 0;
};

class LogManager {
 public:
  // Formats the log region [region_offset, region_offset+region_size).
  static Result<std::unique_ptr<LogManager>> Create(nvm::Pool* pool, uint64_t region_offset,
                                                    uint64_t region_size,
                                                    const LogOptions& options);

  // Attaches to an existing log region (recovery path). Slots holding
  // non-free transactions stay unavailable until ScanForRecovery() +
  // ReleaseSlot(). `runtime_options`, when given, supplies the non-persisted
  // tuning knobs (stripes, group-commit window, legacy_fences); geometry
  // always comes from the persistent header.
  static Result<std::unique_ptr<LogManager>> Open(nvm::Pool* pool, uint64_t region_offset,
                                                  const LogOptions* runtime_options = nullptr);

  ~LogManager();

  // Acquires a free slot for `txid` and marks it Running (flushed, not yet
  // drained — see file comment). Blocks if all slots are busy (backpressure
  // on the async applier).
  Result<SlotHandle> AcquireSlot(uint64_t txid);

  // Appends one intent record and persists it (one flush; one drain unless
  // `drain` is false, in which case the caller batches the drain via
  // DrainAppends() or relies on a later covering drain — only valid for
  // kFree, see file comment).
  Status AppendRecord(SlotHandle& slot, IntentKind kind, uint64_t offset, uint64_t size,
                      uint64_t aux = 0, bool drain = true, uint64_t aux2 = 0);

  // Drains all outstanding (flushed) appends — the single fence behind a
  // batch of AppendRecord(drain=false) calls. No-op under legacy_fences,
  // where every append already drained.
  void DrainAppends();

  // Reserves `size` bytes in the slot's payload area (undo snapshots);
  // returns the pool offset of the reservation.
  Result<uint64_t> ReservePayload(SlotHandle& slot, uint64_t size);

  // Durably transitions the slot's state (the commit/abort point). Commits
  // go through leader-based group commit unless legacy_fences is set.
  void SetState(const SlotHandle& slot, TxState state);

  // --- Epoch pipeline (LogOptions::epoch_commit; DESIGN.md §8) --------------
  // Writes the epoch commit mark: state = kEpochCommitted plus the write-set
  // CRC and kWrite/kAlloc range count in the header's reserved words, all in
  // one header-line flush at "log/commit-record" — NO drain. The mark becomes
  // durable with the epoch drain covering the write set it validates; until
  // then recovery sees either the prior state or a mark whose CRC check
  // decides roll-forward vs roll-back (see ScanForRecovery).
  void SetCommittedChecked(const SlotHandle& slot, uint64_t write_set_crc,
                           uint64_t range_count);

  // Stages an epoch commit: takes a durability ticket for everything the
  // caller already flushed (intents, write set, commit mark) and parks
  // `on_durable` to run exactly once — on the epoch leader's thread, outside
  // the sequencer lock — after a drain covering the ticket completes. This is
  // how appliers consume only durable epochs: the enqueue lives in the
  // callback, which receives its own ticket (the callback may run — on
  // another committer acting as leader — before this call even returns, so
  // the ticket cannot be delivered through the return value alone). Returns
  // the ticket for EpochWait. Does not block or drain.
  uint64_t RegisterEpochCommit(std::function<void(uint64_t)> on_durable);

  // Blocks until a drain covers `ticket` (the acknowledgement fence). The
  // caller may be elected epoch leader and pay the drain itself, at the
  // "log/epoch-drain" site.
  void EpochWait(uint64_t ticket);

  // Seals the current epoch: drains until every ticket issued so far is
  // covered (and therefore every parked callback has been handed off). Used
  // by WaitIdle/shutdown so unacknowledged commits cannot wedge the applier
  // pipeline. Emits no pool events when the epoch is already durable.
  void DrainEpoch();

  bool epoch_commit() const { return epoch_commit_; }

  // --- Cross-shard 2PC records (DESIGN.md §11) ------------------------------
  // Durably marks the slot Prepared, recording the cross-shard transaction id
  // and the coordinator's shard index in the header's reserved words. One
  // flush + one drain: the 64-byte header carries state, txid, gtxid and
  // coordinator atomically (a cache line cannot tear), so a crash either
  // leaves the slot's prior state or a fully-formed prepared record — never a
  // prepared record with a dangling coordinator pointer. Site
  // "log/prepare-record".
  void SetPrepared(const SlotHandle& slot, uint64_t gtxid, uint64_t coord_shard);

  // The coordinator's commit decision: durably flips its own prepared slot to
  // Committed with a single 8-byte persist (exactly one drain — this is the
  // cross-shard commit point; see DESIGN.md §11 for why it must not be
  // batched or split). Site "log/decide-record".
  void SetDecision(const SlotHandle& slot);

  // Recovery-side resolution of an in-doubt prepared slot: durably converts
  // it to Committed or Aborted once the coordinator's outcome is known, so
  // the shard's ordinary recovery (roll forward / roll back) can proceed and
  // a crash *during* recovery re-finds a resolved slot, not an in-doubt one.
  // Site "log/resolve-in-doubt".
  void ResolvePrepared(const RecoveredTx& tx, bool commit);

  // Durably frees the slot and returns it to the free list. The kFree
  // persist here is load-bearing: without it, recovery would re-roll-forward
  // an already-applied transaction whose post-commit frees already happened.
  void ReleaseSlot(SlotHandle& slot);

  // Batched release: flushes every slot's Free header, pays a single drain,
  // then publishes them all to the freelists. The applier uses this to share
  // one release fence across a whole apply batch. Invalid handles in the
  // span are skipped; all handles are fully reset.
  void ReleaseSlots(SlotHandle* slots, size_t count);

  // Recovery: returns every non-free transaction in the log, sorted by txid.
  // Slots remain held; the engine resolves each and calls ReleaseSlot (via a
  // handle rebuilt with HandleForRecovered). kEpochCommitted slots are
  // resolved here: the write-set CRC is recomputed from the main heap over
  // the slot's kWrite/kAlloc intents and the transaction is presented as
  // kCommitted on a match (the main heap provably holds exactly the
  // committed bytes — roll-forward is safe and atomic) or kAborted on a
  // mismatch (the mark outran its data; roll back from the backup). Engines
  // never see state 5.
  std::vector<RecoveredTx> ScanForRecovery();
  SlotHandle HandleForRecovered(const RecoveredTx& tx) const;

  // Partitions recovered transactions into `queues` disjoint replay queues,
  // keyed by each transaction's first intent offset (its lock-stripe-like
  // identity). The disjoint-write-set invariant — any two non-free slots at
  // crash time hold transactions with pairwise disjoint write sets — makes
  // every partition safe to replay in parallel; this one just balances load
  // while keeping each queue in txid order. Transactions without intents
  // land in queue 0.
  static std::vector<std::vector<RecoveredTx>> PartitionForRecovery(
      std::vector<RecoveredTx> txs, size_t queues);

  // --- Backup-reconcile cursor (online recovery, DESIGN.md §10) -------------
  // Persistent resume point for the post-replay backup reconcile sweep:
  // dirty-map chunks [0, cursor) were already reconciled by an interrupted
  // recovery and stay trusted across the next crash (replay only ever
  // re-applies ranges main -> backup, which preserves mirror equality).
  // kReconcileDone means no sweep is in progress. The field lives in the log
  // header block but outside its checksum, updated failure-atomically with
  // an 8-byte persist at the "engine/recover/cursor" site.
  static constexpr uint64_t kReconcileDone = ~0ull;
  uint64_t reconcile_cursor() const;
  void SetReconcileCursor(uint64_t chunk);

  // --- Backup-epoch stamp (backup-read cut, DESIGN.md §12) ------------------
  // Durable count of transactions whose backup applies are complete AND whose
  // log slots are durably released — the epoch a snapshot reader may be told
  // it is reading at. Monotone ratchet (applier batches retire out of order,
  // like the epoch sequencer's durable frontier); advancing it is a single
  // 8-byte persist at the "backup/cut" site. The stamp is a *floor*: it may
  // lag the true applied count across a crash (a release whose stamp was
  // lost is never re-counted), but it can never lead it — recovery re-rolls
  // exactly the unreleased transactions forward, so counting only released
  // ones keeps stamped epochs durably backed by backup state.
  uint64_t backup_epoch() const;
  void SetBackupEpoch(uint64_t epoch);

  // Largest txid present in the log at Open() time (0 for a fresh log).
  uint64_t max_recovered_txid() const { return max_recovered_txid_; }

  uint64_t num_slots() const { return num_slots_; }
  uint64_t slot_size() const { return slot_size_; }
  uint64_t max_records() const { return max_records_; }
  bool legacy_fences() const { return legacy_fences_; }

  LogStats stats() const;

 private:
  // Persistent layouts. kRecordSize == cache line so a record persists with a
  // single line flush and can never be torn across lines.
  static constexpr uint64_t kRecordSize = 64;
  static constexpr uint64_t kSlotHeaderSize = 64;
  static constexpr uint64_t kMagic = 0x4B414D494E4F4C47ull;  // "KAMINOLG"

  static constexpr uint32_t kNilIndex = 0xFFFFFFFFu;
  static constexpr uint64_t kNoCachedSlot = ~0ull;

  struct LogHeader {
    uint64_t magic;
    uint64_t version;
    uint64_t num_slots;
    uint64_t slot_size;
    uint64_t max_records;
    uint64_t checksum;
    // Not checksum-covered (mutated after format, like Heap's root): the
    // backup-reconcile resume cursor, persisted as a single 8-byte store.
    uint64_t reconcile_cursor;
    // Not checksum-covered: the backup-epoch stamp (see SetBackupEpoch).
    uint64_t backup_epoch;
  };
  static_assert(sizeof(LogHeader) <= kSlotHeaderSize,
                "log header must fit its 64-byte block");

  struct SlotHeader {
    uint64_t state;  // TxState.
    uint64_t txid;
    uint64_t reserved[6];
  };

  struct Record {
    uint64_t offset;
    uint64_t size;
    uint64_t kind_seq;  // kind << 56 | record index.
    uint64_t aux;
    uint64_t txid_tag;  // Must equal the slot's txid.
    uint64_t crc;       // Crc64 over the 5 fields above.
    uint64_t aux2;      // Not CRC-covered; undo payload CRC.
    uint64_t pad;
  };
  static_assert(sizeof(Record) == kRecordSize);

  // One lock-free Treiber-stack freelist. The head packs {aba:32, index:32}
  // so a pop's read of next_[index] is protected against reuse.
  struct alignas(64) Stripe {
    std::atomic<uint64_t> head;
  };

  // Per-thread slot cache cell, owned by the manager (registered in cells_)
  // so blocked acquirers can steal from every thread's cache. A cell holds
  // at most one slot index, or kNoCachedSlot.
  struct alignas(64) CacheCell {
    std::atomic<uint64_t> slot{kNoCachedSlot};
  };

  LogManager(nvm::Pool* pool, uint64_t region_offset);

  Status Format(uint64_t region_size, const LogOptions& options);
  Status Attach();
  void InitFreelists(const LogOptions& options);

  uint64_t SlotOffset(uint64_t index) const {
    return region_offset_ + kSlotHeaderSize + index * slot_size_;
  }
  SlotHeader* SlotHeaderAt(uint64_t index) {
    return static_cast<SlotHeader*>(pool_->At(SlotOffset(index)));
  }
  const SlotHeader* SlotHeaderAt(uint64_t index) const {
    return static_cast<const SlotHeader*>(pool_->At(SlotOffset(index)));
  }
  Record* RecordAt(uint64_t slot_index, uint64_t record_index) {
    return static_cast<Record*>(
        pool_->At(SlotOffset(slot_index) + kSlotHeaderSize + record_index * kRecordSize));
  }
  const Record* RecordAt(uint64_t slot_index, uint64_t record_index) const {
    return static_cast<const Record*>(
        pool_->At(SlotOffset(slot_index) + kSlotHeaderSize + record_index * kRecordSize));
  }
  uint64_t PayloadAreaOffset(uint64_t slot_index) const {
    return SlotOffset(slot_index) + kSlotHeaderSize + max_records_ * kRecordSize;
  }
  uint64_t PayloadAreaSize() const {
    return slot_size_ - kSlotHeaderSize - max_records_ * kRecordSize;
  }

  static uint64_t RecordCrc(const Record& r);
  bool RecordValid(const Record& r, uint64_t txid, uint64_t index) const;

  // Freelist plumbing.
  uint64_t HomeStripe(uint32_t slot) const { return slot % num_stripes_; }
  uint64_t PreferredStripe() const;
  void PushStripe(uint64_t stripe, uint32_t slot);
  bool PopStripe(uint64_t stripe, uint32_t* out);
  bool TryPopAnyStripe(uint32_t* out);
  bool StealFromCells(uint32_t* out);

  // Per-thread cache-cell registry. FindMyCell returns nullptr for threads
  // that never acquired from this manager (e.g. appliers, which only ever
  // release), so released slots flow back to the shared stripes instead of
  // parking in a cache no acquirer owns.
  CacheCell* FindMyCell() const;
  CacheCell* MyCellOrRegister();

  void GroupCommitDrain();
  // Core of the sequencer: blocks until gc_durable_ >= ticket, electing one
  // waiter as leader to pay the covering drain (epoch mode tags it
  // "log/epoch-drain"; otherwise the caller's active site wins) and to run
  // parked epoch callbacks whose tickets the drain covered. gc_mu_ must be
  // held on entry and is held again on return.
  void SequencerWait(std::unique_lock<std::mutex>& lk, uint64_t ticket);
  // Epoch mode: take a ticket for the caller's own flushed lines and wait
  // for a covering drain — the shared ride intent appends use in place of a
  // private drain.
  void EpochRide();
  void PublishFreeSlot(uint32_t index);

  nvm::Pool* pool_;
  uint64_t region_offset_;
  uint64_t num_slots_ = 0;
  uint64_t slot_size_ = 0;
  uint64_t max_records_ = 0;
  uint64_t max_recovered_txid_ = 0;

  // Runtime tuning (see LogOptions).
  uint64_t num_stripes_ = 1;
  uint64_t group_commit_window_ns_ = 0;
  bool legacy_fences_ = false;
  bool epoch_commit_ = false;

  // Striped freelists + per-slot next links.
  std::unique_ptr<Stripe[]> stripes_;
  std::unique_ptr<std::atomic<uint32_t>[]> next_;

  // Registered per-thread cache cells. cells_mu_ orders registration against
  // steal scans; lock order is mu_ -> cells_mu_.
  const uint64_t generation_;
  mutable std::mutex cells_mu_;
  std::vector<std::unique_ptr<CacheCell>> cells_;

  // Slow-path backpressure. waiters_ participates in a store-buffering
  // (Dekker) protocol with releasers via seq_cst fences: a releaser
  // publishes its slot, fences, then checks waiters_; an acquirer bumps
  // waiters_, fences, then scans. At least one side always observes the
  // other.
  std::mutex mu_;
  std::condition_variable slot_available_;
  std::atomic<uint64_t> waiters_{0};
  std::atomic<uint64_t> blocked_acquires_{0};
  std::atomic<uint64_t> blocked_wait_ns_{0};

  // Epoch sequencer / leader-based group commit state (all guarded by gc_mu_
  // except the counters). Tickets are taken under gc_mu_ *after* the caller's
  // own flushes, so a leader that observed cover = gc_ticket_ before draining
  // is guaranteed every covered caller's lines were staged. epoch_callbacks_
  // is ticket-ordered by construction (tickets issue under the same lock);
  // the leader extracts the prefix its drain covered and runs it unlocked.
  // Serializes backup-epoch stamp ratchets (appliers race to publish their
  // batch counts); the persisted value is monotone under this lock.
  mutable std::mutex epoch_stamp_mu_;

  std::mutex gc_mu_;
  std::condition_variable gc_cv_;
  uint64_t gc_ticket_ = 0;
  uint64_t gc_durable_ = 0;
  // In-flight leader drains and the highest ticket any of them will cover.
  // The PR 4 group-commit regime serializes leaders (one drain at a time);
  // the epoch pipeline lets a second leader start the next epoch's drain
  // while the current one is in flight (drains are overlappable device
  // waits), so a rider's wait is one drain, not remaining-plus-one.
  int gc_drains_inflight_ = 0;
  uint64_t gc_cover_pending_ = 0;
  std::deque<std::pair<uint64_t, std::function<void(uint64_t)>>> epoch_callbacks_;
  std::atomic<uint64_t> gc_commits_{0};
  std::atomic<uint64_t> gc_leader_drains_{0};
};

}  // namespace kamino::txn

#endif  // SRC_TXN_LOG_MANAGER_H_
