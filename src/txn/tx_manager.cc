#include "src/txn/tx_manager.h"

#include "src/txn/cow_engine.h"
#include "src/txn/kamino_engine.h"
#include "src/txn/nolog_engine.h"
#include "src/txn/redo_engine.h"
#include "src/txn/undo_engine.h"

namespace kamino::txn {

const char* EngineTypeName(EngineType type) {
  switch (type) {
    case EngineType::kKaminoSimple:
      return "kamino-simple";
    case EngineType::kKaminoDynamic:
      return "kamino-dynamic";
    case EngineType::kUndoLog:
      return "undo-logging";
    case EngineType::kCow:
      return "copy-on-write";
    case EngineType::kRedoLog:
      return "redo-logging";
    case EngineType::kNoLogging:
      return "no-logging";
    case EngineType::kChainReplica:
      return "chain-replica";
  }
  return "unknown";
}

// --- Tx ---------------------------------------------------------------------

void Tx::ResolveAbandoned() {
  if (ctx_ == nullptr) {
    return;
  }
  if (ctx_->prepared) {
    // A dropped prepared handle must still be resolved or its slot and write
    // locks leak. Commit only if the decision record is already durable
    // (coordinator); otherwise presumed abort — the same rule recovery uses.
    const bool commit = ctx_->decided;
    (void)mgr_->engine_->FinishPrepared(std::move(ctx_), commit);
    return;
  }
  if (ctx_->active) {
    (void)Abort();
  }
}

Tx& Tx::operator=(Tx&& other) noexcept {
  if (this != &other) {
    ResolveAbandoned();
    mgr_ = other.mgr_;
    ctx_ = std::move(other.ctx_);
  }
  return *this;
}

Tx::~Tx() { ResolveAbandoned(); }

Result<void*> Tx::OpenWrite(uint64_t offset, uint64_t size) {
  if (!active()) {
    return Status::Internal("transaction not active");
  }
  return mgr_->engine_->OpenWrite(ctx_.get(), offset, size);
}

Status Tx::OpenWriteBatch(const WriteSpan* spans, size_t count, void** out) {
  if (!active()) {
    return Status::Internal("transaction not active");
  }
  return mgr_->engine_->OpenWriteBatch(ctx_.get(), spans, count, out);
}

void* Tx::OpenedPointer(uint64_t offset) {
  if (!active()) {
    return nullptr;
  }
  auto it = ctx_->open_ranges.find(offset);
  if (it == ctx_->open_ranges.end()) {
    return nullptr;
  }
  const Intent& in = ctx_->intents[it->second];
  if (in.kind == IntentKind::kCowWrite || in.kind == IntentKind::kRedoWrite) {
    return mgr_->heap_->pool()->At(in.aux);  // Shadow / staging copy.
  }
  return mgr_->heap_->pool()->At(offset);
}

Status Tx::ReadLock(uint64_t offset) {
  if (!active()) {
    return Status::Internal("transaction not active");
  }
  Status st = mgr_->locks_->AcquireRead(offset, ctx_->txid);
  if (!st.ok()) {
    return st;
  }
  ctx_->read_lock_keys.push_back(offset);
  return Status::Ok();
}

Result<uint64_t> Tx::Alloc(uint64_t size, bool zero) {
  if (!active()) {
    return Status::Internal("transaction not active");
  }
  Result<uint64_t> off = mgr_->engine_->Alloc(ctx_.get(), size);
  if (!off.ok()) {
    return off;
  }
  if (zero) {
    std::memset(mgr_->heap_->pool()->At(*off), 0, size);
  }
  return off;
}

Status Tx::Free(uint64_t offset) {
  if (!active()) {
    return Status::Internal("transaction not active");
  }
  return mgr_->engine_->Free(ctx_.get(), offset);
}

void Tx::ReleaseReadLocks() {
  for (uint64_t key : ctx_->read_lock_keys) {
    mgr_->locks_->ReleaseRead(key, ctx_->txid);
  }
  ctx_->read_lock_keys.clear();
}

Status Tx::Commit() {
  if (!active()) {
    return Status::Internal("transaction not active");
  }
  ReleaseReadLocks();
  ctx_->active = false;
  return mgr_->engine_->Commit(std::move(ctx_));
}

Status Tx::CommitAsync(CommitAck* ack) {
  if (ack == nullptr) {
    return Commit();
  }
  if (!active()) {
    return Status::Internal("transaction not active");
  }
  ReleaseReadLocks();
  ctx_->active = false;
  return mgr_->engine_->CommitAsync(std::move(ctx_), ack);
}

Status Tx::Abort() {
  if (!active()) {
    return Status::Internal("transaction not active");
  }
  ReleaseReadLocks();
  ctx_->active = false;
  Status st = mgr_->engine_->Abort(ctx_.get());
  ctx_.reset();
  return st;
}

Status Tx::Prepare(uint64_t gtxid, uint64_t coord_shard) {
  if (!active()) {
    return Status::Internal("transaction not active");
  }
  ReleaseReadLocks();
  ctx_->active = false;
  Status st = mgr_->engine_->Prepare(ctx_.get(), gtxid, coord_shard);
  if (!st.ok()) {
    ctx_->active = true;  // Nothing durable happened; still abortable.
  }
  return st;
}

Status Tx::PersistDecision() {
  if (ctx_ == nullptr || !ctx_->prepared) {
    return Status::Internal("transaction not prepared");
  }
  return mgr_->engine_->PersistDecision(ctx_.get());
}

Status Tx::FinishPrepared(bool commit) {
  if (ctx_ == nullptr || !ctx_->prepared) {
    return Status::Internal("transaction not prepared");
  }
  return mgr_->engine_->FinishPrepared(std::move(ctx_), commit);
}

// --- TxManager ----------------------------------------------------------------

TxManager::TxManager(heap::Heap* heap, const TxManagerOptions& options)
    : heap_(heap), options_(options) {}

Result<std::unique_ptr<TxManager>> TxManager::Create(heap::Heap* heap,
                                                     const TxManagerOptions& options) {
  if (heap == nullptr) {
    return Status::InvalidArgument("null heap");
  }
  auto mgr = std::unique_ptr<TxManager>(new TxManager(heap, options));
  Status st = mgr->Init(/*attach_existing=*/false);
  if (!st.ok()) {
    return st;
  }
  return mgr;
}

Result<std::unique_ptr<TxManager>> TxManager::Open(heap::Heap* heap,
                                                   const TxManagerOptions& options) {
  if (heap == nullptr) {
    return Status::InvalidArgument("null heap");
  }
  auto mgr = std::unique_ptr<TxManager>(new TxManager(heap, options));
  Status st = mgr->Init(/*attach_existing=*/true);
  if (!st.ok()) {
    return st;
  }
  if (!options.skip_recovery) {
    st = mgr->engine_->Recover();
    if (!st.ok()) {
      return st;
    }
  }
  mgr->next_txid_.store(mgr->log_->max_recovered_txid() + 1, std::memory_order_relaxed);
  return mgr;
}

TxManager::~TxManager() {
  if (engine_ != nullptr) {
    engine_->WaitIdle();
  }
}

Status TxManager::Init(bool attach_existing) {
  // Log manager over the heap's log region.
  if (attach_existing) {
    // Geometry comes from the persistent log header; options_.log supplies
    // the runtime-only knobs (freelist stripes, group-commit window,
    // legacy_fences).
    Result<std::unique_ptr<LogManager>> lm =
        LogManager::Open(heap_->pool(), heap_->log_region_offset(), &options_.log);
    if (!lm.ok()) {
      return lm.status();
    }
    log_ = std::move(*lm);
  } else {
    // Fit the default geometry into whatever log region the heap reserved:
    // shrink the per-slot size (payload area) before giving up.
    LogOptions lopts = options_.log;
    const uint64_t budget = (heap_->log_region_size() - 4096) / lopts.num_slots;
    if (lopts.slot_size > budget) {
      lopts.slot_size = budget & ~uint64_t{4095};
      const uint64_t min_slot = 64 + lopts.max_records * 64;
      if (lopts.slot_size < min_slot) {
        return Status::InvalidArgument("heap log region too small for the intent log");
      }
    }
    Result<std::unique_ptr<LogManager>> lm = LogManager::Create(
        heap_->pool(), heap_->log_region_offset(), heap_->log_region_size(), lopts);
    if (!lm.ok()) {
      return lm.status();
    }
    log_ = std::move(*lm);
  }

  locks_ = std::make_unique<LockManager>(options_.lock);

  const bool is_kamino = options_.engine == EngineType::kKaminoSimple ||
                         options_.engine == EngineType::kKaminoDynamic;
  if (is_kamino) {
    // Backup pool: borrowed or created.
    if (options_.external_backup_pool != nullptr) {
      backup_pool_ = options_.external_backup_pool;
    } else {
      nvm::PoolOptions popts;
      popts.path = options_.backup_path;
      popts.crash_sim = options_.backup_crash_sim;
      popts.flush_latency_ns = options_.backup_flush_latency_ns;
      popts.drain_latency_ns = options_.backup_drain_latency_ns;
      popts.track_stats = options_.backup_track_stats;
      popts.sleep_latency = options_.backup_sleep_latency;
      popts.site_prefix = options_.site_prefix;
      if (options_.engine == EngineType::kKaminoSimple) {
        popts.size = heap_->pool()->size();
      } else {
        const uint64_t budget = static_cast<uint64_t>(
            options_.alpha * static_cast<double>(heap_->allocator()->stats().capacity));
        popts.size =
            DynamicBackupStore::RequiredPoolSize(budget, options_.dynamic_lookup_buckets);
      }
      Result<std::unique_ptr<nvm::Pool>> bp = nvm::Pool::Create(popts);
      if (!bp.ok()) {
        return bp.status();
      }
      owned_backup_pool_ = std::move(*bp);
      backup_pool_ = owned_backup_pool_.get();
    }

    if (options_.engine == EngineType::kKaminoSimple) {
      if (backup_pool_->size() < heap_->pool()->size()) {
        return Status::InvalidArgument("full backup pool smaller than main pool");
      }
      backup_store_ = std::make_unique<FullBackupStore>(heap_->pool(), backup_pool_);
    } else {
      if (attach_existing) {
        Result<std::unique_ptr<DynamicBackupStore>> ds =
            DynamicBackupStore::Open(heap_->pool(), backup_pool_);
        if (!ds.ok()) {
          return ds.status();
        }
        backup_store_ = std::move(*ds);
      } else {
        DynamicBackupOptions dopts;
        dopts.lookup_buckets = options_.dynamic_lookup_buckets;
        dopts.budget_bytes = static_cast<uint64_t>(
            options_.alpha * static_cast<double>(heap_->allocator()->stats().capacity));
        Result<std::unique_ptr<DynamicBackupStore>> ds =
            DynamicBackupStore::Create(heap_->pool(), backup_pool_, dopts);
        if (!ds.ok()) {
          return ds.status();
        }
        backup_store_ = std::move(*ds);
      }
    }
    engine_ = std::make_unique<KaminoEngine>(
        heap_, log_.get(), locks_.get(), backup_store_.get(),
        options_.engine == EngineType::kKaminoDynamic, options_.applier_threads,
        options_.recovery);
    return Status::Ok();
  }

  switch (options_.engine) {
    case EngineType::kChainReplica:
      backup_store_ = std::make_unique<NullBackupStore>();
      engine_ = std::make_unique<KaminoEngine>(heap_, log_.get(), locks_.get(),
                                               backup_store_.get(), /*dynamic=*/false,
                                               options_.applier_threads, options_.recovery);
      return Status::Ok();
    case EngineType::kUndoLog:
      engine_ = std::make_unique<UndoLogEngine>(heap_, log_.get(), locks_.get());
      return Status::Ok();
    case EngineType::kCow:
      engine_ = std::make_unique<CowEngine>(heap_, log_.get(), locks_.get());
      return Status::Ok();
    case EngineType::kRedoLog:
      engine_ = std::make_unique<RedoLogEngine>(heap_, log_.get(), locks_.get());
      return Status::Ok();
    case EngineType::kNoLogging:
      engine_ = std::make_unique<NoLoggingEngine>(heap_, log_.get(), locks_.get());
      return Status::Ok();
    default:
      return Status::InvalidArgument("unknown engine type");
  }
}

Result<Tx> TxManager::Begin() {
  auto ctx = std::make_unique<TxContext>();
  ctx->txid = next_txid_.fetch_add(1, std::memory_order_relaxed);
  Status st = engine_->Begin(ctx.get());
  if (!st.ok()) {
    return st;
  }
  return Tx(this, std::move(ctx));
}

Status TxManager::Run(const std::function<Status(Tx&)>& body) {
  Result<Tx> tx = Begin();
  if (!tx.ok()) {
    return tx.status();
  }
  Status st = body(*tx);
  if (!tx->active()) {
    return st;  // Body committed or aborted explicitly.
  }
  if (st.ok()) {
    return tx->Commit();
  }
  (void)tx->Abort();
  return st;
}

Status TxManager::RunWithRetries(const std::function<Status(Tx&)>& body, int max_attempts) {
  Status st = Status::Internal("RunWithRetries: zero attempts");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    st = Run(body);
    if (st.code() != StatusCode::kTxConflict) {
      return st;
    }
  }
  return st;
}

Status TxManager::RunAsync(const std::function<Status(Tx&)>& body, CommitAck* ack) {
  if (ack != nullptr) {
    ack->ticket = 0;
  }
  Result<Tx> tx = Begin();
  if (!tx.ok()) {
    return tx.status();
  }
  Status st = body(*tx);
  if (!tx->active()) {
    return st;  // Body committed or aborted explicitly; ticket stays 0.
  }
  if (st.ok()) {
    return tx->CommitAsync(ack);
  }
  (void)tx->Abort();
  return st;
}

Status TxManager::RunWithRetriesAsync(const std::function<Status(Tx&)>& body, CommitAck* ack,
                                      int max_attempts) {
  Status st = Status::Internal("RunWithRetriesAsync: zero attempts");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    st = RunAsync(body, ack);
    if (st.code() != StatusCode::kTxConflict) {
      return st;
    }
  }
  return st;
}

TxManager::Footprint TxManager::footprint() const {
  Footprint f;
  f.main_bytes = heap_->pool()->size();
  f.backup_bytes = engine_->backup_bytes();
  return f;
}

}  // namespace kamino::txn
