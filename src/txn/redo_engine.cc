#include "src/txn/redo_engine.h"

#include <cstring>

namespace kamino::txn {

Status RedoLogEngine::Begin(TxContext* ctx) {
  (void)ctx;  // The slot is acquired lazily on the first write intent.
  return Status::Ok();
}

Result<void*> RedoLogEngine::OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) {
  auto existing = ctx->open_ranges.find(offset);
  if (existing != ctx->open_ranges.end()) {
    const Intent& in = ctx->intents[existing->second];
    if (in.kind == IntentKind::kRedoWrite) {
      return pool()->At(in.aux);  // Staging copy already exists.
    }
    return pool()->At(offset);  // Allocated in this transaction: edit directly.
  }
  Result<uint64_t> resolved = ResolveSize(offset, size);
  if (!resolved.ok()) {
    return resolved.status();
  }
  size = *resolved;

  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));

  // Critical-path staging copy inside the log slot (no heap allocation, but
  // still a copy — the cost profile the paper's §2 attributes to NVM-Log).
  Result<uint64_t> staging = log_->ReservePayload(ctx->slot, size);
  if (!staging.ok()) {
    return staging.status();
  }
  std::memcpy(pool()->At(*staging), pool()->At(offset), size);
  KAMINO_RETURN_IF_ERROR(
      log_->AppendRecord(ctx->slot, IntentKind::kRedoWrite, offset, size, *staging));

  ctx->open_ranges.emplace(offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kRedoWrite, offset, size, *staging});
  return pool()->At(*staging);
}

Status RedoLogEngine::OpenWriteBatch(TxContext* ctx, const WriteSpan* spans, size_t count,
                                     void** out) {
  // Batched staging: N staging copies and N records flushed, one drain. The
  // staged values only matter once the commit record is durable, and the
  // commit path drains the whole write set before that, so batching here is
  // crash-order neutral.
  bool appended = false;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t offset = spans[i].offset;
    if (ctx->open_ranges.find(offset) != ctx->open_ranges.end()) {
      continue;
    }
    Result<uint64_t> resolved = ResolveSize(offset, spans[i].size);
    if (!resolved.ok()) {
      return resolved.status();
    }
    const uint64_t size = *resolved;
    KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
    KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
    Result<uint64_t> staging = log_->ReservePayload(ctx->slot, size);
    if (!staging.ok()) {
      return staging.status();
    }
    std::memcpy(pool()->At(*staging), pool()->At(offset), size);
    KAMINO_RETURN_IF_ERROR(log_->AppendRecord(ctx->slot, IntentKind::kRedoWrite, offset, size,
                                              *staging, /*drain=*/false));
    ctx->open_ranges.emplace(offset, ctx->intents.size());
    ctx->intents.push_back(Intent{IntentKind::kRedoWrite, offset, size, *staging});
    appended = true;
  }
  if (appended) {
    log_->DrainAppends();
  }
  for (size_t i = 0; i < count; ++i) {
    const Intent& in = ctx->intents[ctx->open_ranges.at(spans[i].offset)];
    out[i] = in.kind == IntentKind::kRedoWrite ? pool()->At(in.aux) : pool()->At(in.offset);
  }
  return Status::Ok();
}

Result<uint64_t> RedoLogEngine::Alloc(TxContext* ctx, uint64_t size) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<alloc::Reservation> resv = heap_->allocator()->PrepareAlloc(size);
  if (!resv.ok()) {
    return resv.status();
  }
  Status st = LockWrite(ctx, resv->offset);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  st = log_->AppendRecord(ctx->slot, IntentKind::kAlloc, resv->offset, resv->size);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  heap_->allocator()->CommitAlloc(*resv);
  ctx->open_ranges.emplace(resv->offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kAlloc, resv->offset, resv->size, 0});
  return resv->offset;
}

Status RedoLogEngine::Free(TxContext* ctx, uint64_t offset) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<uint64_t> size = ResolveSize(offset, 0);
  if (!size.ok()) {
    return size.status();
  }
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
  // drain=false: deferred free — see KaminoEngine::Free and DESIGN.md §8.
  KAMINO_RETURN_IF_ERROR(log_->AppendRecord(ctx->slot, IntentKind::kFree, offset, *size, 0,
                                            /*drain=*/false));
  ctx->intents.push_back(Intent{IntentKind::kFree, offset, *size, 0});
  return Status::Ok();
}

Status RedoLogEngine::Commit(std::unique_ptr<TxContext> ctx) {
  if (!ctx->slot.valid()) {
    ReleaseWriteLocks(ctx.get());
    committed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  // 1. Persist the staged new values + objects allocated in this txn.
  {
    nvm::PersistSiteScope site("redo/stage-commit");
    bool flushed = false;
    for (const Intent& in : ctx->intents) {
      if (in.kind == IntentKind::kRedoWrite) {
        pool()->Flush(pool()->At(in.aux), in.size);
        flushed = true;
      } else if (in.kind == IntentKind::kAlloc) {
        pool()->Flush(pool()->At(in.offset), in.size);
        flushed = true;
      }
    }
    if (flushed) {
      pool()->Drain();
    }
  }
  // 2. Durable commit point.
  log_->SetState(ctx->slot, TxState::kCommitted);
  // 3. Redo: install the staged values over the originals (replayed by
  //    recovery if we crash mid-install).
  {
    nvm::PersistSiteScope site("redo/install");
    bool installed = false;
    for (const Intent& in : ctx->intents) {
      if (in.kind == IntentKind::kRedoWrite) {
        std::memcpy(pool()->At(in.offset), pool()->At(in.aux), in.size);
        pool()->Flush(pool()->At(in.offset), in.size);
        installed = true;
      }
    }
    if (installed) {
      pool()->Drain();
    }
  }
  // 4. Deferred frees, then release.
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kFree) {
      KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRawKeepReserved(in.offset));
    }
  }
  log_->ReleaseSlot(ctx->slot);
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kFree) {
      heap_->allocator()->ReleaseReservation(in.offset);
    }
  }
  ReleaseWriteLocks(ctx.get());
  committed_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status RedoLogEngine::Abort(TxContext* ctx) {
  if (!ctx->slot.valid()) {
    ReleaseWriteLocks(ctx);
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  log_->SetState(ctx->slot, TxState::kAborted);
  // The main heap was never touched: only compensate allocations.
  for (auto it = ctx->intents.rbegin(); it != ctx->intents.rend(); ++it) {
    if (it->kind == IntentKind::kAlloc) {
      KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(it->offset));
    }
  }
  log_->ReleaseSlot(ctx->slot);
  ReleaseWriteLocks(ctx);
  aborted_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status RedoLogEngine::Recover() {
  nvm::PersistSiteScope site("engine/recover");
  std::vector<RecoveredTx> txs = log_->ScanForRecovery();
  for (const RecoveredTx& tx : txs) {
    SlotHandle handle = log_->HandleForRecovered(tx);
    if (tx.state == TxState::kCommitted) {
      // Replay the redo step from the durable staging copies.
      for (const Intent& in : tx.intents) {
        if (in.kind == IntentKind::kRedoWrite) {
          std::memcpy(pool()->At(in.offset), pool()->At(in.aux), in.size);
          pool()->Persist(pool()->At(in.offset), in.size);
        } else if (in.kind == IntentKind::kFree) {
          KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
        }
      }
      recovered_forward_.fetch_add(1, std::memory_order_relaxed);
    } else {
      for (const Intent& in : tx.intents) {
        if (in.kind == IntentKind::kAlloc) {
          KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
        }
      }
      recovered_back_.fetch_add(1, std::memory_order_relaxed);
    }
    log_->ReleaseSlot(handle);
  }
  return Status::Ok();
}

}  // namespace kamino::txn
