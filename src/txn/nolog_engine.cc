#include "src/txn/nolog_engine.h"

namespace kamino::txn {

Status NoLoggingEngine::Begin(TxContext* ctx) {
  (void)ctx;  // No intent-log slot: nothing is logged.
  return Status::Ok();
}

Result<void*> NoLoggingEngine::OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) {
  auto existing = ctx->open_ranges.find(offset);
  if (existing != ctx->open_ranges.end()) {
    return pool()->At(offset);
  }
  Result<uint64_t> resolved = ResolveSize(offset, size);
  if (!resolved.ok()) {
    return resolved.status();
  }
  size = *resolved;
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
  ctx->open_ranges.emplace(offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kWrite, offset, size, 0});
  return pool()->At(offset);
}

Result<uint64_t> NoLoggingEngine::Alloc(TxContext* ctx, uint64_t size) {
  Result<uint64_t> offset = heap_->allocator()->AllocRaw(size);
  if (!offset.ok()) {
    return offset.status();
  }
  Status st = LockWrite(ctx, *offset);
  if (!st.ok()) {
    (void)heap_->allocator()->FreeRaw(*offset);
    return st;
  }
  ctx->open_ranges.emplace(*offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kAlloc, *offset, size, 0});
  return *offset;
}

Status NoLoggingEngine::Free(TxContext* ctx, uint64_t offset) {
  Result<uint64_t> size = ResolveSize(offset, 0);
  if (!size.ok()) {
    return size.status();
  }
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
  ctx->intents.push_back(Intent{IntentKind::kFree, offset, *size, 0});
  return Status::Ok();
}

Status NoLoggingEngine::Commit(std::unique_ptr<TxContext> ctx) {
  FlushWriteRanges(ctx.get());
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kFree) {
      KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
    }
  }
  ReleaseWriteLocks(ctx.get());
  committed_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status NoLoggingEngine::Abort(TxContext* ctx) {
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kAlloc) {
      (void)heap_->allocator()->FreeRaw(in.offset);
    }
  }
  ReleaseWriteLocks(ctx);
  aborted_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace kamino::txn
