#include "src/txn/backup_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/common/cacheline.h"
#include "src/common/checksum.h"

namespace kamino::txn {

// --- BackupStore (default batched apply) -------------------------------------

Status BackupStore::ApplyBatchFromMain(const std::vector<ApplyRange>& ranges,
                                       uint64_t* coalesced_out) {
  if (coalesced_out != nullptr) {
    *coalesced_out = 0;
  }
  for (const ApplyRange& r : ranges) {
    KAMINO_RETURN_IF_ERROR(ApplyFromMain(r.offset, r.size));
  }
  return Status::Ok();
}

// --- BackupStore cut gate (DESIGN.md §12) ------------------------------------

namespace {
uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}
}  // namespace

void BackupStore::EnterApplyCut() {
  std::unique_lock<std::mutex> lk(cut_mu_);
  ++waiting_appliers_;
  if (active_readers_ > 0 || (waiting_readers_ > 0 && !applier_turn_)) {
    apply_fence_waits_.fetch_add(1, std::memory_order_relaxed);
    cut_cv_.wait(lk, [&] {
      return active_readers_ == 0 && (waiting_readers_ == 0 || applier_turn_);
    });
  }
  --waiting_appliers_;
  ++active_appliers_;
}

void BackupStore::ExitApplyCut() {
  {
    std::lock_guard<std::mutex> lk(cut_mu_);
    --active_appliers_;
    cuts_.fetch_add(1, std::memory_order_relaxed);
    if (active_appliers_ == 0) {
      applier_turn_ = false;  // Hand the gate back to any waiting readers.
    }
  }
  cut_cv_.notify_all();
}

Result<BackupStore::SnapshotView> BackupStore::OpenSnapshot() {
  if (!supports_snapshot_reads()) {
    return Status::NotSupported("backup store has no snapshot read path");
  }
  std::unique_lock<std::mutex> lk(cut_mu_);
  ++waiting_readers_;
  if (active_appliers_ > 0 || (applier_turn_ && waiting_appliers_ > 0)) {
    cut_fence_waits_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t t0 = MonotonicNanos();
    cut_cv_.wait(lk, [&] {
      return active_appliers_ == 0 && (!applier_turn_ || waiting_appliers_ == 0);
    });
    cut_fence_wait_ns_.fetch_add(MonotonicNanos() - t0, std::memory_order_relaxed);
  }
  --waiting_readers_;
  ++active_readers_;
  snapshot_views_.fetch_add(1, std::memory_order_relaxed);
  return SnapshotView(this, cut_epoch_.load(std::memory_order_acquire));
}

void BackupStore::ReleaseSnapshot() {
  {
    std::lock_guard<std::mutex> lk(cut_mu_);
    if (--active_readers_ == 0 && waiting_appliers_ > 0) {
      // Fairness: back-to-back analytics chunks must not starve the applier
      // pipeline (stalled appliers pin log slots, which backpressures every
      // writer) — waiting appliers get the next turn.
      applier_turn_ = true;
    }
  }
  cut_cv_.notify_all();
}

void BackupStore::SnapshotView::Release() {
  if (store_ != nullptr) {
    store_->ReleaseSnapshot();
    store_ = nullptr;
  }
}

void BackupStore::PublishCutEpoch(uint64_t epoch) {
  uint64_t cur = cut_epoch_.load(std::memory_order_relaxed);
  while (cur < epoch &&
         !cut_epoch_.compare_exchange_weak(cur, epoch, std::memory_order_release,
                                           std::memory_order_relaxed)) {
  }
}

void BackupStore::AddCutStats(BackupStats* s) const {
  s->read_hits = read_hits_.load(std::memory_order_relaxed);
  s->read_misses = read_misses_.load(std::memory_order_relaxed);
  s->snapshot_views = snapshot_views_.load(std::memory_order_relaxed);
  s->cut_fence_waits = cut_fence_waits_.load(std::memory_order_relaxed);
  s->cut_fence_wait_ns = cut_fence_wait_ns_.load(std::memory_order_relaxed);
  s->apply_fence_waits = apply_fence_waits_.load(std::memory_order_relaxed);
  s->cuts = cuts_.load(std::memory_order_relaxed);
}

// --- FullBackupStore ---------------------------------------------------------

FullBackupStore::FullBackupStore(nvm::Pool* main, nvm::Pool* backup)
    : main_(main), backup_(backup) {}

Status FullBackupStore::EnsureBackupCopy(uint64_t offset, uint64_t size, bool pin) {
  // The full backup is kept identical to the main version for every object
  // whose writing transaction has been applied; the lock protocol guarantees
  // no transaction reaches here while its range is still pending. Nothing to
  // do — this is the paper's "no copying in the critical path".
  (void)offset;
  (void)size;
  (void)pin;
  return Status::Ok();
}

Status FullBackupStore::ApplyFromMain(uint64_t offset, uint64_t size) {
  nvm::PersistSiteScope site("backup/apply");
  std::memcpy(static_cast<uint8_t*>(backup_->At(offset)), main_->At(offset), size);
  backup_->Persist(backup_->At(offset), size);
  applies_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status FullBackupStore::ApplyBatchFromMain(const std::vector<ApplyRange>& ranges,
                                           uint64_t* coalesced_out) {
  if (coalesced_out != nullptr) {
    *coalesced_out = 0;
  }
  if (ranges.empty()) {
    return Status::Ok();
  }
  batch_applies_.fetch_add(1, std::memory_order_relaxed);
  applies_.fetch_add(ranges.size(), std::memory_order_relaxed);

  // Offsets in the mirror are shared with the main heap, so adjacent and
  // overlapping ranges can be merged into one copy+flush each.
  std::vector<ApplyRange> merged(ranges);
  std::sort(merged.begin(), merged.end(),
            [](const ApplyRange& a, const ApplyRange& b) { return a.offset < b.offset; });
  size_t out = 0;
  for (size_t i = 1; i < merged.size(); ++i) {
    ApplyRange& prev = merged[out];
    const ApplyRange& cur = merged[i];
    if (cur.offset <= prev.offset + prev.size) {
      prev.size = std::max(prev.offset + prev.size, cur.offset + cur.size) - prev.offset;
    } else {
      merged[++out] = cur;
    }
  }
  merged.resize(out + 1);
  if (coalesced_out != nullptr) {
    *coalesced_out = ranges.size() - merged.size();
  }

  nvm::PersistSiteScope site("backup/apply");
  for (const ApplyRange& r : merged) {
    std::memcpy(static_cast<uint8_t*>(backup_->At(r.offset)), main_->At(r.offset), r.size);
    backup_->Flush(backup_->At(r.offset), r.size);
  }
  backup_->Drain();
  return Status::Ok();
}

Status FullBackupStore::RestoreToMain(uint64_t offset, uint64_t size) {
  nvm::PersistSiteScope site("backup/restore");
  std::memcpy(static_cast<uint8_t*>(main_->At(offset)), backup_->At(offset), size);
  main_->Persist(main_->At(offset), size);
  restores_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void FullBackupStore::Invalidate(uint64_t offset) { (void)offset; }

uint64_t FullBackupStore::backup_bytes() const { return backup_->size(); }

Status FullBackupStore::ReadAt(uint64_t offset, uint64_t size, void* out) {
  // The mirror shares offsets with the main heap and holds exactly the applied
  // prefix of the commit order; under the cut gate no apply batch is in flight,
  // so every byte is the cut state. Every read is a hit.
  if (offset > backup_->size() || size > backup_->size() - offset) {
    return Status::InvalidArgument("backup read out of range");
  }
  std::memcpy(out, backup_->At(offset), size);
  read_hits_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

BackupStats FullBackupStore::stats() const {
  BackupStats s;
  s.applies = applies_.load(std::memory_order_relaxed);
  s.restores = restores_.load(std::memory_order_relaxed);
  s.batch_applies = batch_applies_.load(std::memory_order_relaxed);
  AddCutStats(&s);
  return s;
}

void FullBackupStore::SyncAll() {
  nvm::PersistSiteScope site("backup/sync-all");
  std::memcpy(backup_->base(), main_->base(), main_->size());
  backup_->Persist(backup_->base(), main_->size());
}

Result<uint64_t> FullBackupStore::ReconcileRanges(const std::vector<ApplyRange>& ranges) {
  if (ranges.empty()) {
    return uint64_t{0};
  }
  nvm::PersistSiteScope site("backup/reconcile/range");
  uint64_t bytes = 0;
  for (const ApplyRange& r : ranges) {
    std::memcpy(static_cast<uint8_t*>(backup_->At(r.offset)), main_->At(r.offset), r.size);
    backup_->Flush(backup_->At(r.offset), r.size);
    bytes += r.size;
  }
  backup_->Drain();
  return bytes;
}

// --- DynamicBackupStore ------------------------------------------------------

DynamicBackupStore::DynamicBackupStore(nvm::Pool* main, nvm::Pool* backup)
    : main_(main), backup_(backup) {}

uint64_t DynamicBackupStore::RequiredPoolSize(uint64_t data_budget_bytes,
                                              uint64_t lookup_buckets) {
  const uint64_t table = lookup_buckets * sizeof(Entry);
  // Allocator needs headroom for chunk headers and partial chunks.
  const uint64_t alloc_region =
      AlignUp(data_budget_bytes + data_budget_bytes / 8, alloc::kChunkSize) +
      4 * alloc::kChunkSize;
  return AlignUp(4096 + table, 4096) + alloc_region;
}

Result<std::unique_ptr<DynamicBackupStore>> DynamicBackupStore::Create(
    nvm::Pool* main, nvm::Pool* backup, const DynamicBackupOptions& options) {
  if (main == nullptr || backup == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  if (!IsPowerOfTwo(options.lookup_buckets)) {
    return Status::InvalidArgument("lookup_buckets must be a power of two");
  }
  if (options.lookup_buckets < kStripes) {
    return Status::InvalidArgument("lookup_buckets must be >= the stripe count");
  }
  auto store = std::unique_ptr<DynamicBackupStore>(new DynamicBackupStore(main, backup));
  Status st = store->Format(options);
  if (!st.ok()) {
    return st;
  }
  return store;
}

Result<std::unique_ptr<DynamicBackupStore>> DynamicBackupStore::Open(nvm::Pool* main,
                                                                     nvm::Pool* backup) {
  if (main == nullptr || backup == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  auto store = std::unique_ptr<DynamicBackupStore>(new DynamicBackupStore(main, backup));
  Status st = store->Attach();
  if (!st.ok()) {
    return st;
  }
  return store;
}

Status DynamicBackupStore::Format(const DynamicBackupOptions& options) {
  nvm::PersistSiteScope site("backup/format");
  lookup_buckets_ = options.lookup_buckets;
  budget_bytes_ = options.budget_bytes;
  table_offset_ = 4096;
  const uint64_t table_bytes = lookup_buckets_ * sizeof(Entry);
  const uint64_t alloc_offset = AlignUp(table_offset_ + table_bytes, 4096);
  if (alloc_offset + alloc::kChunkSize + 8192 > backup_->size()) {
    return Status::InvalidArgument("backup pool too small for table + one chunk");
  }

  std::memset(backup_->At(table_offset_), 0, table_bytes);
  backup_->Persist(backup_->At(table_offset_), table_bytes);

  Result<std::unique_ptr<alloc::Allocator>> a =
      alloc::Allocator::Create(backup_, alloc_offset, backup_->size() - alloc_offset);
  if (!a.ok()) {
    return a.status();
  }
  slot_alloc_ = std::move(*a);

  auto* sb = static_cast<Superblock*>(backup_->At(0));
  sb->magic = kMagic;
  sb->version = 1;
  sb->lookup_buckets = lookup_buckets_;
  sb->table_offset = table_offset_;
  sb->alloc_offset = alloc_offset;
  sb->budget_bytes = budget_bytes_;
  sb->checksum = Crc64(sb, offsetof(Superblock, checksum));
  backup_->Persist(sb, sizeof(Superblock));
  return Status::Ok();
}

Status DynamicBackupStore::Attach() {
  const auto* sb = static_cast<const Superblock*>(backup_->At(0));
  if (sb->magic != kMagic) {
    return Status::Corruption("dynamic backup superblock magic mismatch");
  }
  if (sb->checksum != Crc64(sb, offsetof(Superblock, checksum))) {
    return Status::Corruption("dynamic backup superblock checksum mismatch");
  }
  lookup_buckets_ = sb->lookup_buckets;
  table_offset_ = sb->table_offset;
  budget_bytes_ = sb->budget_bytes;
  if (lookup_buckets_ < kStripes) {
    return Status::Corruption("dynamic backup table smaller than the stripe count");
  }

  Result<std::unique_ptr<alloc::Allocator>> a =
      alloc::Allocator::Open(backup_, sb->alloc_offset);
  if (!a.ok()) {
    return a.status();
  }
  slot_alloc_ = std::move(*a);

  // Rebuild the volatile index + LRU (arbitrary recency order — the copies
  // are all equally "cold" after a restart). Single-threaded; no locks yet.
  for (uint64_t b = 0; b < lookup_buckets_; ++b) {
    Entry* e = EntryAt(b);
    if (e->state != 1) {
      continue;
    }
    if (e->crc != EntryCrc(*e)) {
      // Torn entry write: the insert never completed; treat as free.
      nvm::PersistSiteScope site("backup/attach-repair");
      e->state = 0;
      backup_->PersistU64(&e->state);
      continue;
    }
    lru_.push_front(e->key);
    VolatileEntry ve;
    ve.bucket = b;
    ve.lru_it = lru_.begin();
    ve.in_lru = true;
    stripes_[StripeFor(e->key)].index.emplace(e->key, ve);
    resident_bytes_.fetch_add(e->size, std::memory_order_relaxed);
  }
  return Status::Ok();
}

uint64_t DynamicBackupStore::EntryCrc(const Entry& e) {
  return Crc64(&e, offsetof(Entry, crc));
}

uint64_t DynamicBackupStore::HashKey(uint64_t key) {
  // Fibonacci hashing; keys are pool offsets with low-bit regularity.
  return (key * 0x9E3779B97F4A7C15ull) >> 13;
}

Result<uint64_t> DynamicBackupStore::FindInsertBucketLocked(uint64_t key) {
  // Probe only within the owning stripe's bucket region so concurrent
  // inserts on different stripes never race on a table Entry.
  const uint64_t per_stripe = lookup_buckets_ / kStripes;
  const uint64_t base = StripeFor(key) * per_stripe;
  uint64_t b = (HashKey(key) / kStripes) & (per_stripe - 1);
  for (uint64_t probe = 0; probe < per_stripe; ++probe, b = (b + 1) & (per_stripe - 1)) {
    const Entry* e = EntryAt(base + b);
    if (e->state != 1) {
      return base + b;  // Free or tombstone.
    }
  }
  return Status::OutOfMemory("dynamic backup lookup table stripe full");
}

void DynamicBackupStore::RemoveEntryLocked(uint64_t key, VolatileEntry& ve) {
  Entry* e = EntryAt(ve.bucket);
  const uint64_t slot_off = e->backup_off;
  resident_bytes_.fetch_sub(e->size, std::memory_order_relaxed);
  e->state = 2;  // Tombstone; 8-byte store is failure-atomic.
  {
    nvm::PersistSiteScope site("backup/tombstone-entry");
    backup_->PersistU64(&e->state);
  }
  (void)slot_alloc_->FreeRaw(slot_off);
  if (ve.in_lru) {
    std::lock_guard<std::mutex> lru_guard(lru_mu_);
    lru_.erase(ve.lru_it);
  }
  stripes_[StripeFor(key)].index.erase(key);
}

bool DynamicBackupStore::EvictOneLocked(uint64_t held_stripe) {
  // Snapshot the LRU oldest-first, then chase candidates stripe by stripe.
  // Victims in other stripes are only try_lock'ed (see the lock-order note in
  // the header); a candidate whose stripe is busy is simply skipped — under
  // contention this approximates LRU, single-threaded it is exact.
  std::vector<uint64_t> candidates;
  {
    std::lock_guard<std::mutex> lru_guard(lru_mu_);
    candidates.assign(lru_.rbegin(), lru_.rend());
  }
  for (uint64_t key : candidates) {
    const uint64_t s = StripeFor(key);
    std::unique_lock<std::mutex> lk;
    if (s != held_stripe) {
      lk = std::unique_lock<std::mutex>(stripes_[s].mu, std::try_to_lock);
      if (!lk.owns_lock()) {
        continue;
      }
    }
    auto idx = stripes_[s].index.find(key);
    if (idx == stripes_[s].index.end()) {
      continue;  // Raced with a concurrent remove.
    }
    if (idx->second.pins != 0) {
      continue;  // Pending objects are never eviction candidates (paper §6.4).
    }
    RemoveEntryLocked(key, idx->second);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Status DynamicBackupStore::InsertCopyLocked(uint64_t key, uint64_t size) {
  const uint64_t held = StripeFor(key);
  // Enforce the α budget first, then allocate a slot (evicting cold copies
  // if the pool itself is the binding constraint).
  if (budget_bytes_ != 0) {
    while (resident_bytes_.load(std::memory_order_relaxed) + size > budget_bytes_) {
      if (!EvictOneLocked(held)) {
        return Status::OutOfMemory("dynamic backup full of pinned copies");
      }
    }
  }
  Result<uint64_t> slot = slot_alloc_->AllocRaw(size);
  while (!slot.ok()) {
    if (!EvictOneLocked(held)) {
      return Status::OutOfMemory("dynamic backup full of pinned copies");
    }
    slot = slot_alloc_->AllocRaw(size);
  }
  Result<uint64_t> bucket = FindInsertBucketLocked(key);
  if (!bucket.ok()) {
    (void)slot_alloc_->FreeRaw(*slot);
    return bucket.status();
  }

  // Content first, then the table entry: a valid entry must never point at a
  // slot whose copy is not durable.
  {
    nvm::PersistSiteScope site("backup/insert-copy");
    std::memcpy(static_cast<uint8_t*>(backup_->At(*slot)), main_->At(key), size);
    backup_->Persist(backup_->At(*slot), size);
  }

  Entry* e = EntryAt(*bucket);
  e->key = key;
  e->backup_off = *slot;
  e->size = size;
  e->state = 1;
  e->crc = EntryCrc(*e);
  {
    nvm::PersistSiteScope site("backup/insert-entry");
    backup_->Persist(e, sizeof(Entry));
  }

  VolatileEntry ve;
  ve.bucket = *bucket;
  {
    std::lock_guard<std::mutex> lru_guard(lru_mu_);
    lru_.push_front(key);
    ve.lru_it = lru_.begin();
  }
  ve.in_lru = true;
  stripes_[held].index.emplace(key, ve);
  resident_bytes_.fetch_add(size, std::memory_order_relaxed);
  return Status::Ok();
}

Status DynamicBackupStore::EnsureBackupCopy(uint64_t offset, uint64_t size, bool pin) {
  Stripe& stripe = stripes_[StripeFor(offset)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  uint32_t carried_pins = 0;
  auto it = stripe.index.find(offset);
  if (it != stripe.index.end()) {
    Entry* e = EntryAt(it->second.bucket);
    if (e->size >= size) {
      ensure_hits_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lru_guard(lru_mu_);
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // Touch.
      }
      if (pin) {
        ++it->second.pins;
      }
      return Status::Ok();
    }
    // Existing copy is too small (range grew): replace it. Carry the pin
    // count across the replacement — dropping it would make the copy
    // eviction-eligible while an owner still depends on it, and would
    // unbalance that owner's eventual Unpin.
    carried_pins = it->second.pins;
    RemoveEntryLocked(offset, it->second);
  }
  ensure_misses_.fetch_add(1, std::memory_order_relaxed);
  Status st = InsertCopyLocked(offset, size);
  if (!st.ok()) {
    // Any carried pins died with the removed copy; Unpin is guarded by an
    // index lookup, so the owners' releases degrade to no-ops rather than
    // corrupting another entry's count.
    return st;
  }
  auto inserted = stripe.index.find(offset);
  inserted->second.pins = carried_pins + (pin ? 1u : 0u);
  return Status::Ok();
}

Status DynamicBackupStore::ApplyRangeLocked(uint64_t key, uint64_t size, bool* flushed) {
  Stripe& stripe = stripes_[StripeFor(key)];
  auto it = stripe.index.find(key);
  if (it == stripe.index.end()) {
    // Freshly allocated object being rolled forward: create its copy now,
    // off the critical path. The insert persists internally.
    return InsertCopyLocked(key, size);
  }
  Entry* e = EntryAt(it->second.bucket);
  if (e->size < size) {
    // Grown object: replace the copy, keeping the pin count — the applying
    // transaction itself holds a pin here, and its Unpin later in the apply
    // must find the count it left.
    const uint32_t carried_pins = it->second.pins;
    RemoveEntryLocked(key, it->second);
    KAMINO_RETURN_IF_ERROR(InsertCopyLocked(key, size));
    auto inserted = stripe.index.find(key);
    inserted->second.pins = carried_pins;
    return Status::Ok();
  }
  std::memcpy(static_cast<uint8_t*>(backup_->At(e->backup_off)), main_->At(key), size);
  {
    nvm::PersistSiteScope site("backup/apply");
    backup_->Flush(backup_->At(e->backup_off), size);
  }
  *flushed = true;
  {
    std::lock_guard<std::mutex> lru_guard(lru_mu_);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  }
  return Status::Ok();
}

Status DynamicBackupStore::ApplyFromMain(uint64_t offset, uint64_t size) {
  Stripe& stripe = stripes_[StripeFor(offset)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  applies_.fetch_add(1, std::memory_order_relaxed);
  bool flushed = false;
  KAMINO_RETURN_IF_ERROR(ApplyRangeLocked(offset, size, &flushed));
  if (flushed) {
    nvm::PersistSiteScope site("backup/apply");
    backup_->Drain();
  }
  return Status::Ok();
}

Status DynamicBackupStore::ApplyBatchFromMain(const std::vector<ApplyRange>& ranges,
                                              uint64_t* coalesced_out) {
  // Copies are keyed by object offset, so ranges arrive per-object (the
  // engine must not merge across object boundaries). The batching win here
  // is the single drain for the whole transaction.
  if (coalesced_out != nullptr) {
    *coalesced_out = 0;
  }
  if (ranges.empty()) {
    return Status::Ok();
  }
  batch_applies_.fetch_add(1, std::memory_order_relaxed);
  bool flushed = false;
  for (const ApplyRange& r : ranges) {
    Stripe& stripe = stripes_[StripeFor(r.offset)];
    std::lock_guard<std::mutex> guard(stripe.mu);
    applies_.fetch_add(1, std::memory_order_relaxed);
    KAMINO_RETURN_IF_ERROR(ApplyRangeLocked(r.offset, r.size, &flushed));
  }
  if (flushed) {
    nvm::PersistSiteScope site("backup/apply");
    backup_->Drain();
  }
  return Status::Ok();
}

Status DynamicBackupStore::RestoreToMain(uint64_t offset, uint64_t size) {
  Stripe& stripe = stripes_[StripeFor(offset)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  restores_.fetch_add(1, std::memory_order_relaxed);
  auto it = stripe.index.find(offset);
  if (it == stripe.index.end()) {
    return Status::Corruption("no backup copy for pending object");
  }
  const Entry* e = EntryAt(it->second.bucket);
  if (e->size < size) {
    return Status::Corruption("backup copy smaller than restore range");
  }
  nvm::PersistSiteScope site("backup/restore");
  std::memcpy(static_cast<uint8_t*>(main_->At(offset)), backup_->At(e->backup_off), size);
  main_->Persist(main_->At(offset), size);
  return Status::Ok();
}

void DynamicBackupStore::Invalidate(uint64_t offset) {
  Stripe& stripe = stripes_[StripeFor(offset)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.index.find(offset);
  if (it == stripe.index.end()) {
    return;
  }
  RemoveEntryLocked(offset, it->second);
}

void DynamicBackupStore::Pin(uint64_t offset) {
  Stripe& stripe = stripes_[StripeFor(offset)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.index.find(offset);
  if (it != stripe.index.end()) {
    ++it->second.pins;
  }
}

void DynamicBackupStore::Unpin(uint64_t offset) {
  Stripe& stripe = stripes_[StripeFor(offset)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.index.find(offset);
  if (it != stripe.index.end() && it->second.pins > 0) {
    --it->second.pins;
  }
}

uint64_t DynamicBackupStore::backup_bytes() const { return backup_->size(); }

Status DynamicBackupStore::ReadAt(uint64_t offset, uint64_t size, void* out) {
  if (offset > main_->size() || size > main_->size() - offset) {
    return Status::InvalidArgument("backup read out of range");
  }
  Stripe& stripe = stripes_[StripeFor(offset)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.index.find(offset);
  if (it == stripe.index.end()) {
    // Miss ⇒ no writer has inserted a pre-image for this object, so no
    // in-place store has begun (EnsureBackupCopy runs under this stripe lock
    // strictly before the writer's first main-heap store) and applies are
    // fenced out by the cut gate — the main heap holds exactly the cut
    // bytes. Holding the stripe lock across the memcpy is what makes this
    // "epoch-checked": a racing writer blocks until our copy completes.
    std::memcpy(out, main_->At(offset), size);
    read_misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  // Hit: the resident copy is either the last applied state (applies refresh
  // it in place, under the gate) or an in-flight writer's pinned pre-image —
  // in both cases the cut state. Bytes past the copied prefix lie outside
  // every writer's declared range and are read from main under the same lock.
  const Entry* e = EntryAt(it->second.bucket);
  const uint64_t copied = std::min(size, e->size);
  std::memcpy(out, backup_->At(e->backup_off), copied);
  if (copied < size) {
    std::memcpy(static_cast<uint8_t*>(out) + copied, main_->At(offset + copied),
                size - copied);
  }
  read_hits_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

BackupStats DynamicBackupStore::stats() const {
  BackupStats s;
  s.ensure_hits = ensure_hits_.load(std::memory_order_relaxed);
  s.ensure_misses = ensure_misses_.load(std::memory_order_relaxed);
  s.applies = applies_.load(std::memory_order_relaxed);
  s.restores = restores_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.batch_applies = batch_applies_.load(std::memory_order_relaxed);
  AddCutStats(&s);
  return s;
}

void DynamicBackupStore::CompactAfterRecovery() {
  // Post-recovery, single-writer context; take every stripe in index order
  // (nothing else blocks on a second stripe, so the order is safe).
  std::vector<std::unique_lock<std::mutex>> guards;
  guards.reserve(kStripes);
  for (Stripe& s : stripes_) {
    guards.emplace_back(s.mu);
  }
  // Slots referenced by valid lookup-table entries are live; anything else
  // in the slot allocator was orphaned by a crash mid-eviction/insert.
  std::unordered_map<uint64_t, bool> referenced;
  for (const Stripe& s : stripes_) {
    for (const auto& [key, ve] : s.index) {
      (void)key;
      referenced.emplace(EntryAt(ve.bucket)->backup_off, true);
    }
  }
  std::vector<uint64_t> orphans;
  slot_alloc_->ForEachAllocation([&](uint64_t off, uint64_t size) {
    (void)size;
    if (referenced.find(off) == referenced.end()) {
      orphans.push_back(off);
    }
  });
  for (uint64_t off : orphans) {
    (void)slot_alloc_->FreeRaw(off);
  }
}

bool DynamicBackupStore::HasCopy(uint64_t offset) const {
  const Stripe& stripe = stripes_[StripeFor(offset)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  return stripe.index.count(offset) != 0;
}

uint64_t DynamicBackupStore::resident_copies() const {
  uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> guard(s.mu);
    total += s.index.size();
  }
  return total;
}

uint32_t DynamicBackupStore::PinCount(uint64_t offset) const {
  const Stripe& stripe = stripes_[StripeFor(offset)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.index.find(offset);
  return it == stripe.index.end() ? 0 : it->second.pins;
}

}  // namespace kamino::txn
