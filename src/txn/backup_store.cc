#include "src/txn/backup_store.h"

#include <cstring>

#include "src/common/cacheline.h"
#include "src/common/checksum.h"

namespace kamino::txn {

// --- FullBackupStore ---------------------------------------------------------

FullBackupStore::FullBackupStore(nvm::Pool* main, nvm::Pool* backup)
    : main_(main), backup_(backup) {}

Status FullBackupStore::EnsureBackupCopy(uint64_t offset, uint64_t size, bool pin) {
  // The full backup is kept identical to the main version for every object
  // whose writing transaction has been applied; the lock protocol guarantees
  // no transaction reaches here while its range is still pending. Nothing to
  // do — this is the paper's "no copying in the critical path".
  (void)offset;
  (void)size;
  (void)pin;
  return Status::Ok();
}

Status FullBackupStore::ApplyFromMain(uint64_t offset, uint64_t size) {
  std::memcpy(static_cast<uint8_t*>(backup_->At(offset)), main_->At(offset), size);
  backup_->Persist(backup_->At(offset), size);
  applies_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status FullBackupStore::RestoreToMain(uint64_t offset, uint64_t size) {
  std::memcpy(static_cast<uint8_t*>(main_->At(offset)), backup_->At(offset), size);
  main_->Persist(main_->At(offset), size);
  restores_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void FullBackupStore::Invalidate(uint64_t offset) { (void)offset; }

uint64_t FullBackupStore::backup_bytes() const { return backup_->size(); }

BackupStats FullBackupStore::stats() const {
  BackupStats s;
  s.applies = applies_.load(std::memory_order_relaxed);
  s.restores = restores_.load(std::memory_order_relaxed);
  return s;
}

void FullBackupStore::SyncAll() {
  std::memcpy(backup_->base(), main_->base(), main_->size());
  backup_->Persist(backup_->base(), main_->size());
}

// --- DynamicBackupStore ------------------------------------------------------

DynamicBackupStore::DynamicBackupStore(nvm::Pool* main, nvm::Pool* backup)
    : main_(main), backup_(backup) {}

uint64_t DynamicBackupStore::RequiredPoolSize(uint64_t data_budget_bytes,
                                              uint64_t lookup_buckets) {
  const uint64_t table = lookup_buckets * sizeof(Entry);
  // Allocator needs headroom for chunk headers and partial chunks.
  const uint64_t alloc_region =
      AlignUp(data_budget_bytes + data_budget_bytes / 8, alloc::kChunkSize) +
      4 * alloc::kChunkSize;
  return AlignUp(4096 + table, 4096) + alloc_region;
}

Result<std::unique_ptr<DynamicBackupStore>> DynamicBackupStore::Create(
    nvm::Pool* main, nvm::Pool* backup, const DynamicBackupOptions& options) {
  if (main == nullptr || backup == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  if (!IsPowerOfTwo(options.lookup_buckets)) {
    return Status::InvalidArgument("lookup_buckets must be a power of two");
  }
  auto store = std::unique_ptr<DynamicBackupStore>(new DynamicBackupStore(main, backup));
  Status st = store->Format(options);
  if (!st.ok()) {
    return st;
  }
  return store;
}

Result<std::unique_ptr<DynamicBackupStore>> DynamicBackupStore::Open(nvm::Pool* main,
                                                                     nvm::Pool* backup) {
  if (main == nullptr || backup == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  auto store = std::unique_ptr<DynamicBackupStore>(new DynamicBackupStore(main, backup));
  Status st = store->Attach();
  if (!st.ok()) {
    return st;
  }
  return store;
}

Status DynamicBackupStore::Format(const DynamicBackupOptions& options) {
  lookup_buckets_ = options.lookup_buckets;
  budget_bytes_ = options.budget_bytes;
  table_offset_ = 4096;
  const uint64_t table_bytes = lookup_buckets_ * sizeof(Entry);
  const uint64_t alloc_offset = AlignUp(table_offset_ + table_bytes, 4096);
  if (alloc_offset + alloc::kChunkSize + 8192 > backup_->size()) {
    return Status::InvalidArgument("backup pool too small for table + one chunk");
  }

  std::memset(backup_->At(table_offset_), 0, table_bytes);
  backup_->Persist(backup_->At(table_offset_), table_bytes);

  Result<std::unique_ptr<alloc::Allocator>> a =
      alloc::Allocator::Create(backup_, alloc_offset, backup_->size() - alloc_offset);
  if (!a.ok()) {
    return a.status();
  }
  slot_alloc_ = std::move(*a);

  auto* sb = static_cast<Superblock*>(backup_->At(0));
  sb->magic = kMagic;
  sb->version = 1;
  sb->lookup_buckets = lookup_buckets_;
  sb->table_offset = table_offset_;
  sb->alloc_offset = alloc_offset;
  sb->budget_bytes = budget_bytes_;
  sb->checksum = Crc64(sb, offsetof(Superblock, checksum));
  backup_->Persist(sb, sizeof(Superblock));
  return Status::Ok();
}

Status DynamicBackupStore::Attach() {
  const auto* sb = static_cast<const Superblock*>(backup_->At(0));
  if (sb->magic != kMagic) {
    return Status::Corruption("dynamic backup superblock magic mismatch");
  }
  if (sb->checksum != Crc64(sb, offsetof(Superblock, checksum))) {
    return Status::Corruption("dynamic backup superblock checksum mismatch");
  }
  lookup_buckets_ = sb->lookup_buckets;
  table_offset_ = sb->table_offset;
  budget_bytes_ = sb->budget_bytes;

  Result<std::unique_ptr<alloc::Allocator>> a =
      alloc::Allocator::Open(backup_, sb->alloc_offset);
  if (!a.ok()) {
    return a.status();
  }
  slot_alloc_ = std::move(*a);

  // Rebuild the volatile index + LRU (arbitrary recency order — the copies
  // are all equally "cold" after a restart).
  for (uint64_t b = 0; b < lookup_buckets_; ++b) {
    Entry* e = EntryAt(b);
    if (e->state != 1) {
      continue;
    }
    if (e->crc != EntryCrc(*e)) {
      // Torn entry write: the insert never completed; treat as free.
      e->state = 0;
      backup_->PersistU64(&e->state);
      continue;
    }
    lru_.push_front(e->key);
    VolatileEntry ve;
    ve.bucket = b;
    ve.lru_it = lru_.begin();
    ve.in_lru = true;
    index_.emplace(e->key, ve);
    resident_bytes_ += e->size;
  }
  return Status::Ok();
}

uint64_t DynamicBackupStore::EntryCrc(const Entry& e) {
  return Crc64(&e, offsetof(Entry, crc));
}

uint64_t DynamicBackupStore::HashKey(uint64_t key) {
  // Fibonacci hashing; keys are pool offsets with low-bit regularity.
  return (key * 0x9E3779B97F4A7C15ull) >> 13;
}

Result<uint64_t> DynamicBackupStore::FindInsertBucketLocked(uint64_t key) {
  const uint64_t mask = lookup_buckets_ - 1;
  uint64_t b = HashKey(key) & mask;
  for (uint64_t probe = 0; probe < lookup_buckets_; ++probe, b = (b + 1) & mask) {
    const Entry* e = EntryAt(b);
    if (e->state != 1) {
      return b;  // Free or tombstone.
    }
  }
  return Status::OutOfMemory("dynamic backup lookup table full");
}

void DynamicBackupStore::RemoveEntryLocked(uint64_t key, VolatileEntry& ve) {
  Entry* e = EntryAt(ve.bucket);
  const uint64_t slot_off = e->backup_off;
  resident_bytes_ -= e->size;
  e->state = 2;  // Tombstone; 8-byte store is failure-atomic.
  backup_->PersistU64(&e->state);
  (void)slot_alloc_->FreeRaw(slot_off);
  if (ve.in_lru) {
    lru_.erase(ve.lru_it);
  }
  index_.erase(key);
}

bool DynamicBackupStore::EvictOneLocked() {
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const uint64_t key = *it;
    auto idx = index_.find(key);
    if (idx == index_.end()) {
      continue;
    }
    if (idx->second.pins != 0) {
      continue;  // Pending objects are never eviction candidates (paper §6.4).
    }
    RemoveEntryLocked(key, idx->second);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Status DynamicBackupStore::InsertCopyLocked(uint64_t key, uint64_t size) {
  // Enforce the α budget first, then allocate a slot (evicting cold copies
  // if the pool itself is the binding constraint).
  if (budget_bytes_ != 0) {
    while (resident_bytes_ + size > budget_bytes_) {
      if (!EvictOneLocked()) {
        return Status::OutOfMemory("dynamic backup full of pinned copies");
      }
    }
  }
  Result<uint64_t> slot = slot_alloc_->AllocRaw(size);
  while (!slot.ok()) {
    if (!EvictOneLocked()) {
      return Status::OutOfMemory("dynamic backup full of pinned copies");
    }
    slot = slot_alloc_->AllocRaw(size);
  }
  Result<uint64_t> bucket = FindInsertBucketLocked(key);
  if (!bucket.ok()) {
    (void)slot_alloc_->FreeRaw(*slot);
    return bucket.status();
  }

  // Content first, then the table entry: a valid entry must never point at a
  // slot whose copy is not durable.
  std::memcpy(static_cast<uint8_t*>(backup_->At(*slot)), main_->At(key), size);
  backup_->Persist(backup_->At(*slot), size);

  Entry* e = EntryAt(*bucket);
  e->key = key;
  e->backup_off = *slot;
  e->size = size;
  e->state = 1;
  e->crc = EntryCrc(*e);
  backup_->Persist(e, sizeof(Entry));

  lru_.push_front(key);
  VolatileEntry ve;
  ve.bucket = *bucket;
  ve.lru_it = lru_.begin();
  ve.in_lru = true;
  index_.emplace(key, ve);
  resident_bytes_ += size;
  return Status::Ok();
}

Status DynamicBackupStore::EnsureBackupCopy(uint64_t offset, uint64_t size, bool pin) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = index_.find(offset);
  if (it != index_.end()) {
    Entry* e = EntryAt(it->second.bucket);
    if (e->size >= size) {
      ensure_hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // Touch.
      if (pin) {
        ++it->second.pins;
      }
      return Status::Ok();
    }
    // Existing copy is too small (range grew): replace it.
    RemoveEntryLocked(offset, it->second);
  }
  ensure_misses_.fetch_add(1, std::memory_order_relaxed);
  Status st = InsertCopyLocked(offset, size);
  if (!st.ok()) {
    return st;
  }
  if (pin) {
    auto inserted = index_.find(offset);
    ++inserted->second.pins;
  }
  return Status::Ok();
}

Status DynamicBackupStore::ApplyFromMain(uint64_t offset, uint64_t size) {
  std::lock_guard<std::mutex> guard(mu_);
  applies_.fetch_add(1, std::memory_order_relaxed);
  auto it = index_.find(offset);
  if (it == index_.end()) {
    // Freshly allocated object being rolled forward: create its copy now,
    // off the critical path.
    return InsertCopyLocked(offset, size);
  }
  Entry* e = EntryAt(it->second.bucket);
  if (e->size < size) {
    RemoveEntryLocked(offset, it->second);
    return InsertCopyLocked(offset, size);
  }
  std::memcpy(static_cast<uint8_t*>(backup_->At(e->backup_off)), main_->At(offset), size);
  backup_->Persist(backup_->At(e->backup_off), size);
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return Status::Ok();
}

Status DynamicBackupStore::RestoreToMain(uint64_t offset, uint64_t size) {
  std::lock_guard<std::mutex> guard(mu_);
  restores_.fetch_add(1, std::memory_order_relaxed);
  auto it = index_.find(offset);
  if (it == index_.end()) {
    return Status::Corruption("no backup copy for pending object");
  }
  const Entry* e = EntryAt(it->second.bucket);
  if (e->size < size) {
    return Status::Corruption("backup copy smaller than restore range");
  }
  std::memcpy(static_cast<uint8_t*>(main_->At(offset)), backup_->At(e->backup_off), size);
  main_->Persist(main_->At(offset), size);
  return Status::Ok();
}

void DynamicBackupStore::Invalidate(uint64_t offset) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = index_.find(offset);
  if (it == index_.end()) {
    return;
  }
  RemoveEntryLocked(offset, it->second);
}

void DynamicBackupStore::Pin(uint64_t offset) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = index_.find(offset);
  if (it != index_.end()) {
    ++it->second.pins;
  }
}

void DynamicBackupStore::Unpin(uint64_t offset) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = index_.find(offset);
  if (it != index_.end() && it->second.pins > 0) {
    --it->second.pins;
  }
}

uint64_t DynamicBackupStore::backup_bytes() const { return backup_->size(); }

BackupStats DynamicBackupStore::stats() const {
  BackupStats s;
  s.ensure_hits = ensure_hits_.load(std::memory_order_relaxed);
  s.ensure_misses = ensure_misses_.load(std::memory_order_relaxed);
  s.applies = applies_.load(std::memory_order_relaxed);
  s.restores = restores_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

void DynamicBackupStore::CompactAfterRecovery() {
  std::lock_guard<std::mutex> guard(mu_);
  // Slots referenced by valid lookup-table entries are live; anything else
  // in the slot allocator was orphaned by a crash mid-eviction/insert.
  std::unordered_map<uint64_t, bool> referenced;
  for (const auto& [key, ve] : index_) {
    referenced.emplace(EntryAt(ve.bucket)->backup_off, true);
  }
  std::vector<uint64_t> orphans;
  slot_alloc_->ForEachAllocation([&](uint64_t off, uint64_t size) {
    (void)size;
    if (referenced.find(off) == referenced.end()) {
      orphans.push_back(off);
    }
  });
  for (uint64_t off : orphans) {
    (void)slot_alloc_->FreeRaw(off);
  }
}

bool DynamicBackupStore::HasCopy(uint64_t offset) const {
  std::lock_guard<std::mutex> guard(mu_);
  return index_.count(offset) != 0;
}

uint64_t DynamicBackupStore::resident_copies() const {
  std::lock_guard<std::mutex> guard(mu_);
  return index_.size();
}

}  // namespace kamino::txn
