#include "src/txn/kamino_engine.h"

#include <cstring>

namespace kamino::txn {

KaminoEngine::KaminoEngine(heap::Heap* heap, LogManager* log, LockManager* locks,
                           BackupStore* store, bool dynamic, int applier_threads)
    : EngineBase(heap, log, locks), store_(store), dynamic_(dynamic) {
  if (applier_threads < 1) {
    applier_threads = 1;
  }
  appliers_.reserve(static_cast<size_t>(applier_threads));
  for (int i = 0; i < applier_threads; ++i) {
    appliers_.emplace_back([this] { ApplierLoop(); });
  }
}

KaminoEngine::~KaminoEngine() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& t : appliers_) {
    t.join();
  }
}

Status KaminoEngine::Begin(TxContext* ctx) {
  (void)ctx;  // The slot is acquired lazily on the first write intent.
  return Status::Ok();
}

Result<void*> KaminoEngine::OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) {
  auto existing = ctx->open_ranges.find(offset);
  if (existing != ctx->open_ranges.end()) {
    // Already open (possibly via Alloc); edits go straight to the main copy.
    return pool()->At(offset);
  }
  Result<uint64_t> resolved = ResolveSize(offset, size);
  if (!resolved.ok()) {
    return resolved.status();
  }
  size = *resolved;

  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  // Declaring write intent = taking the object lock (paper §3). If the
  // object is pending (a prior transaction's backup sync is outstanding)
  // this blocks — the dependent-transaction wait.
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));

  // A consistent pre-transaction copy must exist before the first in-place
  // store. Free for the full backup; a critical-path copy on a dynamic miss.
  KAMINO_RETURN_IF_ERROR(store_->EnsureBackupCopy(offset, size, /*pin=*/true));

  KAMINO_RETURN_IF_ERROR(
      log_->AppendRecord(ctx->slot, IntentKind::kWrite, offset, size));
  ctx->open_ranges.emplace(offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kWrite, offset, size, 0});
  return pool()->At(offset);
}

Result<uint64_t> KaminoEngine::Alloc(TxContext* ctx, uint64_t size) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<alloc::Reservation> resv = heap_->allocator()->PrepareAlloc(size);
  if (!resv.ok()) {
    return resv.status();
  }
  // Lock first (trivially uncontended — the object is not yet reachable),
  // then make the intent durable *before* any persistent allocator metadata
  // changes so recovery can always compensate.
  Status st = LockWrite(ctx, resv->offset);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  st = log_->AppendRecord(ctx->slot, IntentKind::kAlloc, resv->offset, resv->size);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  heap_->allocator()->CommitAlloc(*resv);
  ctx->open_ranges.emplace(resv->offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kAlloc, resv->offset, resv->size, 0});
  return resv->offset;
}

Status KaminoEngine::Free(TxContext* ctx, uint64_t offset) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<uint64_t> size = ResolveSize(offset, 0);
  if (!size.ok()) {
    return size.status();
  }
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
  KAMINO_RETURN_IF_ERROR(log_->AppendRecord(ctx->slot, IntentKind::kFree, offset, *size));
  ctx->intents.push_back(Intent{IntentKind::kFree, offset, *size, 0});
  return Status::Ok();
}

Status KaminoEngine::Commit(std::unique_ptr<TxContext> ctx) {
  if (!ctx->slot.valid()) {
    // Read-only transaction: nothing persistent happened; no applier trip.
    ReleaseWriteLocks(ctx.get());
    committed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  // 1. Make the in-place edits durable (batched: one drain).
  FlushWriteRanges(ctx.get());
  // 2. Durable commit point.
  log_->SetState(ctx->slot, TxState::kCommitted);
  committed_.fetch_add(1, std::memory_order_relaxed);
  // 3. Hand the context to the asynchronous Transaction Coordinator. The
  //    write locks remain held until the backup is in sync — the transaction
  //    itself is done: no data was copied on this thread.
  //
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    queue_.push_back(std::move(ctx));
    ++in_flight_;
  }
  queue_cv_.notify_one();
  return Status::Ok();
}

void KaminoEngine::ApplyCommitted(TxContext* ctx) {
  for (const Intent& in : ctx->intents) {
    switch (in.kind) {
      case IntentKind::kWrite:
        (void)store_->ApplyFromMain(in.offset, in.size);
        store_->Unpin(in.offset);
        break;
      case IntentKind::kAlloc:
        (void)store_->ApplyFromMain(in.offset, in.size);
        break;
      case IntentKind::kFree:
        store_->Invalidate(in.offset);
        (void)heap_->allocator()->FreeRawKeepReserved(in.offset);
        break;
      default:
        break;
    }
  }
  log_->ReleaseSlot(ctx->slot);
  // Freed slots become reusable only after the intent log no longer refers
  // to them (a recovered re-free must never hit a re-allocated object).
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kFree) {
      heap_->allocator()->ReleaseReservation(in.offset);
    }
  }
  ReleaseWriteLocks(ctx);
  applied_.fetch_add(1, std::memory_order_relaxed);
}

void KaminoEngine::ApplierLoop() {
  for (;;) {
    std::unique_ptr<TxContext> ctx;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [&] { return stop_ || (!paused_ && !queue_.empty()); });
      // Drain remaining work on shutdown unless a crash test froze the
      // applier with PauseApplier.
      if (queue_.empty() || paused_) {
        if (stop_) {
          return;
        }
        continue;
      }
      ctx = std::move(queue_.front());
      queue_.pop_front();
    }
    ApplyCommitted(ctx.get());
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

void KaminoEngine::WaitIdle() {
  std::unique_lock<std::mutex> lk(queue_mu_);
  idle_cv_.wait(lk, [&] { return paused_ || (in_flight_ == 0 && queue_.empty()); });
}

void KaminoEngine::PauseApplier(bool paused) {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    paused_ = paused;
  }
  queue_cv_.notify_all();
  idle_cv_.notify_all();
}

void KaminoEngine::DiscardPendingForCrashTest() {
  std::lock_guard<std::mutex> lk(queue_mu_);
  in_flight_ -= queue_.size();
  queue_.clear();
}

Status KaminoEngine::Abort(TxContext* ctx) {
  if (!ctx->slot.valid()) {
    ReleaseWriteLocks(ctx);
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  log_->SetState(ctx->slot, TxState::kAborted);
  // Roll the main version back from the backup, newest intent first.
  for (auto it = ctx->intents.rbegin(); it != ctx->intents.rend(); ++it) {
    switch (it->kind) {
      case IntentKind::kWrite: {
        Status st = store_->RestoreToMain(it->offset, it->size);
        store_->Unpin(it->offset);
        if (!st.ok()) {
          return st;
        }
        break;
      }
      case IntentKind::kAlloc:
        KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(it->offset));
        break;
      case IntentKind::kFree:
        break;  // Deferred; nothing happened.
      default:
        break;
    }
  }
  log_->ReleaseSlot(ctx->slot);
  ReleaseWriteLocks(ctx);
  aborted_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status KaminoEngine::Recover() {
  std::vector<RecoveredTx> txs = log_->ScanForRecovery();
  for (const RecoveredTx& tx : txs) {
    SlotHandle handle = log_->HandleForRecovered(tx);
    if (tx.state == TxState::kCommitted) {
      // Roll forward: the main version carries the committed data; bring the
      // backup (and deferred frees) up to date.
      for (const Intent& in : tx.intents) {
        switch (in.kind) {
          case IntentKind::kWrite:
          case IntentKind::kAlloc:
            KAMINO_RETURN_IF_ERROR(store_->ApplyFromMain(in.offset, in.size));
            break;
          case IntentKind::kFree:
            store_->Invalidate(in.offset);
            KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
            break;
          default:
            break;
        }
      }
      recovered_forward_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Running or aborted: incomplete transactions are treated as aborted
      // (paper §3) — restore the pre-transaction values from the backup.
      for (auto it = tx.intents.rbegin(); it != tx.intents.rend(); ++it) {
        switch (it->kind) {
          case IntentKind::kWrite:
            KAMINO_RETURN_IF_ERROR(store_->RestoreToMain(it->offset, it->size));
            break;
          case IntentKind::kAlloc:
            KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(it->offset));
            break;
          case IntentKind::kFree:
            break;
          default:
            break;
        }
      }
      recovered_back_.fetch_add(1, std::memory_order_relaxed);
    }
    log_->ReleaseSlot(handle);
  }
  store_->CompactAfterRecovery();
  return Status::Ok();
}

}  // namespace kamino::txn
