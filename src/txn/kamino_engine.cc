#include "src/txn/kamino_engine.h"

#include <cstring>

namespace kamino::txn {

KaminoEngine::KaminoEngine(heap::Heap* heap, LogManager* log, LockManager* locks,
                           BackupStore* store, bool dynamic, int applier_threads)
    : EngineBase(heap, log, locks), store_(store), dynamic_(dynamic) {
  if (applier_threads < 1) {
    applier_threads = 1;
  }
  shards_.reserve(static_cast<size_t>(applier_threads));
  appliers_.reserve(static_cast<size_t>(applier_threads));
  for (int i = 0; i < applier_threads; ++i) {
    shards_.push_back(std::make_unique<ApplierShard>());
  }
  for (int i = 0; i < applier_threads; ++i) {
    appliers_.emplace_back([this, i] { ApplierLoop(static_cast<size_t>(i)); });
  }
}

KaminoEngine::~KaminoEngine() {
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
  }
  for (auto& shard : shards_) {
    shard->cv.notify_all();
  }
  for (auto& t : appliers_) {
    t.join();
  }
}

Status KaminoEngine::Begin(TxContext* ctx) {
  (void)ctx;  // The slot is acquired lazily on the first write intent.
  return Status::Ok();
}

Result<void*> KaminoEngine::OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) {
  auto existing = ctx->open_ranges.find(offset);
  if (existing != ctx->open_ranges.end()) {
    // Already open (possibly via Alloc); edits go straight to the main copy.
    return pool()->At(offset);
  }
  Result<uint64_t> resolved = ResolveSize(offset, size);
  if (!resolved.ok()) {
    return resolved.status();
  }
  size = *resolved;

  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  // Declaring write intent = taking the object lock (paper §3). If the
  // object is pending (a prior transaction's backup sync is outstanding)
  // this blocks — the dependent-transaction wait.
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));

  // A consistent pre-transaction copy must exist before the first in-place
  // store. Free for the full backup; a critical-path copy on a dynamic miss.
  KAMINO_RETURN_IF_ERROR(store_->EnsureBackupCopy(offset, size, /*pin=*/true));

  Status st = log_->AppendRecord(ctx->slot, IntentKind::kWrite, offset, size);
  if (!st.ok()) {
    // The intent never existed, so Abort will not unpin this range — drop
    // the pin here or the copy is stuck unevictable forever.
    store_->Unpin(offset);
    return st;
  }
  ctx->open_ranges.emplace(offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kWrite, offset, size, 0});
  return pool()->At(offset);
}

Result<uint64_t> KaminoEngine::Alloc(TxContext* ctx, uint64_t size) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<alloc::Reservation> resv = heap_->allocator()->PrepareAlloc(size);
  if (!resv.ok()) {
    return resv.status();
  }
  // Lock first (trivially uncontended — the object is not yet reachable),
  // then make the intent durable *before* any persistent allocator metadata
  // changes so recovery can always compensate.
  Status st = LockWrite(ctx, resv->offset);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  st = log_->AppendRecord(ctx->slot, IntentKind::kAlloc, resv->offset, resv->size);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  heap_->allocator()->CommitAlloc(*resv);
  ctx->open_ranges.emplace(resv->offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kAlloc, resv->offset, resv->size, 0});
  return resv->offset;
}

Status KaminoEngine::Free(TxContext* ctx, uint64_t offset) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<uint64_t> size = ResolveSize(offset, 0);
  if (!size.ok()) {
    return size.status();
  }
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
  // drain=false: the free is deferred to post-commit, so the record only
  // matters if the transaction commits — and the commit-point drain (or any
  // earlier append's drain) makes it durable by then. A lost kFree record
  // means a never-performed free, never corruption (DESIGN.md §8).
  KAMINO_RETURN_IF_ERROR(log_->AppendRecord(ctx->slot, IntentKind::kFree, offset, *size, 0,
                                            /*drain=*/false));
  ctx->intents.push_back(Intent{IntentKind::kFree, offset, *size, 0});
  return Status::Ok();
}

Status KaminoEngine::OpenWriteBatch(TxContext* ctx, const WriteSpan* spans, size_t count,
                                    void** out) {
  // One intent-record flush per span, a single drain for the whole batch,
  // and only then are the write-through pointers released to the caller —
  // every record is durable before the first in-place store can happen.
  bool appended = false;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t offset = spans[i].offset;
    out[i] = nullptr;
    if (ctx->open_ranges.find(offset) != ctx->open_ranges.end()) {
      continue;  // Already open (possibly via Alloc or an earlier span).
    }
    Result<uint64_t> resolved = ResolveSize(offset, spans[i].size);
    if (!resolved.ok()) {
      return resolved.status();
    }
    const uint64_t size = *resolved;
    KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
    KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
    KAMINO_RETURN_IF_ERROR(store_->EnsureBackupCopy(offset, size, /*pin=*/true));
    Status st = log_->AppendRecord(ctx->slot, IntentKind::kWrite, offset, size, 0,
                                   /*drain=*/false);
    if (!st.ok()) {
      store_->Unpin(offset);
      return st;
    }
    // Record the intent immediately so a failure on a later span leaves
    // every appended span visible to Abort's rollback/unpin.
    ctx->open_ranges.emplace(offset, ctx->intents.size());
    ctx->intents.push_back(Intent{IntentKind::kWrite, offset, size, 0});
    appended = true;
  }
  if (appended) {
    log_->DrainAppends();
  }
  for (size_t i = 0; i < count; ++i) {
    out[i] = pool()->At(spans[i].offset);
  }
  return Status::Ok();
}

Status KaminoEngine::Commit(std::unique_ptr<TxContext> ctx) {
  if (!ctx->slot.valid()) {
    // Read-only transaction: nothing persistent happened; no applier trip.
    ReleaseWriteLocks(ctx.get());
    committed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  // 1. Make the in-place edits durable (batched: one drain).
  FlushWriteRanges(ctx.get());
  // 2. Durable commit point.
  log_->SetState(ctx->slot, TxState::kCommitted);
  committed_.fetch_add(1, std::memory_order_relaxed);
  // 3. Hand the context to the asynchronous Transaction Coordinator. The
  //    write locks remain held until the backup is in sync — the transaction
  //    itself is done: no data was copied on this thread. Round-robin across
  //    applier shards; the disjoint-write-set invariant makes the resulting
  //    cross-shard apply order irrelevant.
  ctx->commit_enqueue_ns = stats::NowNanos();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  ApplierShard& shard =
      *shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size()];
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    shard.queue.push_back(std::move(ctx));
  }
  shard.cv.notify_one();
  return Status::Ok();
}

void KaminoEngine::ApplyCommitted(TxContext* ctx) {
  // Roll the whole write set forward in one batched apply: per-range flushes
  // and a single drain inside the store, instead of a full Persist per
  // object.
  nvm::PersistSiteScope site("applier/roll-forward");
  std::vector<ApplyRange> ranges;
  ranges.reserve(ctx->intents.size());
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kWrite || in.kind == IntentKind::kAlloc) {
      ranges.push_back(ApplyRange{in.offset, in.size});
    }
  }
  if (!ranges.empty()) {
    uint64_t coalesced = 0;
    (void)store_->ApplyBatchFromMain(ranges, &coalesced);
    apply_batches_.fetch_add(1, std::memory_order_relaxed);
    coalesced_ranges_.fetch_add(coalesced, std::memory_order_relaxed);
  }
  for (const Intent& in : ctx->intents) {
    switch (in.kind) {
      case IntentKind::kWrite:
        store_->Unpin(in.offset);
        break;
      case IntentKind::kFree:
        store_->Invalidate(in.offset);
        (void)heap_->allocator()->FreeRawKeepReserved(in.offset);
        break;
      default:
        break;
    }
  }
  // The batch apply has returned, so the backup is durable — the caller may
  // now release the slot (a crash before that re-rolls the transaction
  // forward, which is idempotent). Slot release and the post-release steps
  // live in FinishApplied so the applier loop can share one release fence
  // across a whole batch of transactions (LogManager::ReleaseSlots).
}

void KaminoEngine::FinishApplied(TxContext* ctx) {
  // Freed objects become reusable only after the intent log no longer refers
  // to them (a recovered re-free must never hit a re-allocated object).
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kFree) {
      heap_->allocator()->ReleaseReservation(in.offset);
    }
  }
  ReleaseWriteLocks(ctx);
  applied_.fetch_add(1, std::memory_order_relaxed);
  if (ctx->commit_enqueue_ns != 0) {
    apply_lag_.Record(stats::NowNanos() - ctx->commit_enqueue_ns);
  }
}

void KaminoEngine::ApplierLoop(size_t shard_index) {
  // Bounds how many releases share one fence; also bounds how long write
  // locks of the first transaction in a batch stay held past its apply.
  constexpr size_t kMaxApplyBatch = 32;
  ApplierShard& shard = *shards_[shard_index];
  std::vector<std::unique_ptr<TxContext>> batch;
  std::vector<SlotHandle> slots;
  for (;;) {
    batch.clear();
    slots.clear();
    {
      std::unique_lock<std::mutex> lk(shard.mu);
      shard.cv.wait(lk, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               (!paused_.load(std::memory_order_relaxed) && !shard.queue.empty());
      });
      // Drain remaining work on shutdown unless a crash test froze the
      // applier with PauseApplier.
      if (shard.queue.empty() || paused_.load(std::memory_order_relaxed)) {
        if (stop_.load(std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      while (!shard.queue.empty() && batch.size() < kMaxApplyBatch) {
        batch.push_back(std::move(shard.queue.front()));
        shard.queue.pop_front();
      }
    }
    for (auto& ctx : batch) {
      ApplyCommitted(ctx.get());
      slots.push_back(ctx->slot);
      ctx->slot = SlotHandle{};
    }
    // Every backup apply in the batch is durable; one shared fence frees all
    // the slots (see LogManager::ReleaseSlots for the ordering argument).
    log_->ReleaseSlots(slots.data(), slots.size());
    for (auto& ctx : batch) {
      FinishApplied(ctx.get());
    }
    // The decrement happens under idle_mu_ so a WaitIdle caller that observes
    // in_flight_ == 0 also inherits a happens-before edge from the applier's
    // ReleaseSlots/FinishApplied writes above (e.g. a state-transfer snapshot
    // reading the pool right after WaitIdle returns).
    {
      std::lock_guard<std::mutex> lk(idle_mu_);
      in_flight_.fetch_sub(batch.size(), std::memory_order_relaxed);
    }
    idle_cv_.notify_all();
  }
}

void KaminoEngine::WaitIdle() {
  std::unique_lock<std::mutex> lk(idle_mu_);
  idle_cv_.wait(lk, [&] {
    return paused_.load(std::memory_order_relaxed) ||
           in_flight_.load(std::memory_order_relaxed) == 0;
  });
}

void KaminoEngine::PauseApplier(bool paused) {
  paused_.store(paused, std::memory_order_seq_cst);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
  }
  for (auto& shard : shards_) {
    shard->cv.notify_all();
  }
  { std::lock_guard<std::mutex> lk(idle_mu_); }
  idle_cv_.notify_all();
}

void KaminoEngine::DiscardPendingForCrashTest() {
  uint64_t discarded = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    discarded += shard->queue.size();
    shard->queue.clear();
  }
  // A WaitIdle caller may be blocked on exactly the work just discarded; the
  // decrement goes under idle_mu_ for the same reason as in ApplierLoop.
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    in_flight_.fetch_sub(discarded, std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
}

EngineStats KaminoEngine::stats() const {
  EngineStats s = EngineBase::stats();
  s.applier_queue_depth = in_flight_.load(std::memory_order_relaxed);
  s.apply_batches = apply_batches_.load(std::memory_order_relaxed);
  s.coalesced_ranges = coalesced_ranges_.load(std::memory_order_relaxed);
  if (apply_lag_.count() > 0) {
    s.apply_lag_p50_ns = apply_lag_.PercentileNs(50.0);
    s.apply_lag_p99_ns = apply_lag_.PercentileNs(99.0);
    s.apply_lag_max_ns = apply_lag_.MaxNs();
  }
  return s;
}

Status KaminoEngine::Abort(TxContext* ctx) {
  if (!ctx->slot.valid()) {
    ReleaseWriteLocks(ctx);
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  log_->SetState(ctx->slot, TxState::kAborted);
  nvm::PersistSiteScope site("engine/abort-rollback");
  // Roll the main version back from the backup, newest intent first. A
  // failed restore must not short-circuit the loop: the remaining intents
  // still need their rollback/unpin, and the slot and write locks must be
  // released regardless (an early return here used to leak both, wedging
  // every dependent transaction). Best effort; first error wins.
  Status result = Status::Ok();
  for (auto it = ctx->intents.rbegin(); it != ctx->intents.rend(); ++it) {
    switch (it->kind) {
      case IntentKind::kWrite: {
        Status st = store_->RestoreToMain(it->offset, it->size);
        store_->Unpin(it->offset);
        if (!st.ok() && result.ok()) {
          result = st;
        }
        break;
      }
      case IntentKind::kAlloc: {
        Status st = heap_->allocator()->FreeRaw(it->offset);
        if (!st.ok() && result.ok()) {
          result = st;
        }
        break;
      }
      case IntentKind::kFree:
        break;  // Deferred; nothing happened.
      default:
        break;
    }
  }
  log_->ReleaseSlot(ctx->slot);
  ReleaseWriteLocks(ctx);
  aborted_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

Status KaminoEngine::Recover() {
  nvm::PersistSiteScope site("engine/recover");
  std::vector<RecoveredTx> txs = log_->ScanForRecovery();
  for (const RecoveredTx& tx : txs) {
    SlotHandle handle = log_->HandleForRecovered(tx);
    if (tx.state == TxState::kCommitted) {
      // Roll forward: the main version carries the committed data; bring the
      // backup (and deferred frees) up to date. Single-range applies — the
      // batched path is a throughput optimisation for the hot applier loop,
      // and recovery is cold.
      for (const Intent& in : tx.intents) {
        switch (in.kind) {
          case IntentKind::kWrite:
          case IntentKind::kAlloc:
            KAMINO_RETURN_IF_ERROR(store_->ApplyFromMain(in.offset, in.size));
            break;
          case IntentKind::kFree:
            store_->Invalidate(in.offset);
            KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
            break;
          default:
            break;
        }
      }
      recovered_forward_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Running or aborted: incomplete transactions are treated as aborted
      // (paper §3) — restore the pre-transaction values from the backup.
      for (auto it = tx.intents.rbegin(); it != tx.intents.rend(); ++it) {
        switch (it->kind) {
          case IntentKind::kWrite:
            KAMINO_RETURN_IF_ERROR(store_->RestoreToMain(it->offset, it->size));
            break;
          case IntentKind::kAlloc:
            KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(it->offset));
            break;
          case IntentKind::kFree:
            break;
          default:
            break;
        }
      }
      recovered_back_.fetch_add(1, std::memory_order_relaxed);
    }
    log_->ReleaseSlot(handle);
  }
  store_->CompactAfterRecovery();
  return Status::Ok();
}

}  // namespace kamino::txn
