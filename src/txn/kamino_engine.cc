#include "src/txn/kamino_engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace kamino::txn {

KaminoEngine::KaminoEngine(heap::Heap* heap, LogManager* log, LockManager* locks,
                           BackupStore* store, bool dynamic, int applier_threads,
                           RecoveryOptions recovery)
    : EngineBase(heap, log, locks), store_(store), dynamic_(dynamic), recovery_(recovery) {
  if (applier_threads < 1) {
    applier_threads = 1;
  }
  shards_.reserve(static_cast<size_t>(applier_threads));
  appliers_.reserve(static_cast<size_t>(applier_threads));
  for (int i = 0; i < applier_threads; ++i) {
    shards_.push_back(std::make_unique<ApplierShard>());
  }
  for (int i = 0; i < applier_threads; ++i) {
    appliers_.emplace_back([this, i] { ApplierLoop(static_cast<size_t>(i)); });
  }
  // Persist-behind dependency rule (DESIGN.md §8): write locks are held until
  // the durability-gated backup apply, so a blocked acquirer may be waiting
  // on a commit parked in the open epoch. The lock table is the dependency
  // tracker — have the waiter drive the epoch drain (a no-op once the epoch
  // is durable) rather than idle until the lock timeout: with every client
  // blocked, nobody else would ever seal the epoch.
  if (log_ != nullptr && log_->epoch_commit() && locks_ != nullptr) {
    LogManager* log = log_;
    locks_->SetContentionHook([log] { log->DrainEpoch(); });
  }
  // Seed the backup-read cut from the durable stamp (zero on Create). The
  // appliers advance it from here; Recover() re-seeds it after replay.
  if (store_ != nullptr && log_ != nullptr) {
    const uint64_t seed = log_->backup_epoch();
    store_->InitCutEpoch(seed);
    cut_released_.store(seed, std::memory_order_relaxed);
  }
}

KaminoEngine::~KaminoEngine() {
  // Reconcilers go first: they may still be fencing handed-off contexts
  // through the appliers, so the applier pool must outlive them.
  reconcile_stop_.store(true, std::memory_order_seq_cst);
  for (auto& t : reconcilers_) {
    t.join();
  }
  {
    std::lock_guard<std::mutex> lk(reconcile_done_mu_);
  }
  reconcile_done_cv_.notify_all();

  // Seal any open epoch: parked durability callbacks own committed contexts,
  // and must run before the applier pool shuts down. With the appliers
  // paused the contexts merely land in the shard queues and are freed with
  // them — no leak either way.
  if (log_ != nullptr && log_->epoch_commit()) {
    log_->DrainEpoch();
  }

  stop_.store(true, std::memory_order_seq_cst);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
  }
  for (auto& shard : shards_) {
    shard->cv.notify_all();
  }
  for (auto& t : appliers_) {
    t.join();
  }
  if (locks_ != nullptr) {
    locks_->SetContentionHook(nullptr);
  }
}

Status KaminoEngine::Begin(TxContext* ctx) {
  (void)ctx;  // The slot is acquired lazily on the first write intent.
  return Status::Ok();
}

Result<void*> KaminoEngine::OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) {
  auto existing = ctx->open_ranges.find(offset);
  if (existing != ctx->open_ranges.end()) {
    // Already open (possibly via Alloc); edits go straight to the main copy.
    return pool()->At(offset);
  }
  Result<uint64_t> resolved = ResolveSize(offset, size);
  if (!resolved.ok()) {
    return resolved.status();
  }
  size = *resolved;

  // Online recovery: the range's backup chunks must be reconciled before the
  // pre-image below can be trusted (free once the map has drained).
  KAMINO_RETURN_IF_ERROR(FenceDirtyRange(offset, size));

  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  // Declaring write intent = taking the object lock (paper §3). If the
  // object is pending (a prior transaction's backup sync is outstanding)
  // this blocks — the dependent-transaction wait.
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));

  // A consistent pre-transaction copy must exist before the first in-place
  // store. Free for the full backup; a critical-path copy on a dynamic miss.
  KAMINO_RETURN_IF_ERROR(store_->EnsureBackupCopy(offset, size, /*pin=*/true));

  Status st = log_->AppendRecord(ctx->slot, IntentKind::kWrite, offset, size);
  if (!st.ok()) {
    // The intent never existed, so Abort will not unpin this range — drop
    // the pin here or the copy is stuck unevictable forever.
    store_->Unpin(offset);
    return st;
  }
  ctx->open_ranges.emplace(offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kWrite, offset, size, 0});
  return pool()->At(offset);
}

Result<uint64_t> KaminoEngine::Alloc(TxContext* ctx, uint64_t size) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<alloc::Reservation> resv = heap_->allocator()->PrepareAlloc(size);
  if (!resv.ok()) {
    return resv.status();
  }
  // Online recovery: the new object's chunks must be clean before the caller
  // stores through the returned offset — a background reconcile reading the
  // chunk while the caller writes it would race on the main heap.
  {
    Status st = FenceDirtyRange(resv->offset, resv->size);
    if (!st.ok()) {
      heap_->allocator()->CancelAlloc(*resv);
      return st;
    }
  }
  // Lock first (trivially uncontended — the object is not yet reachable),
  // then make the intent durable *before* any persistent allocator metadata
  // changes so recovery can always compensate.
  Status st = LockWrite(ctx, resv->offset);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  st = log_->AppendRecord(ctx->slot, IntentKind::kAlloc, resv->offset, resv->size);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  heap_->allocator()->CommitAlloc(*resv);
  ctx->open_ranges.emplace(resv->offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kAlloc, resv->offset, resv->size, 0});
  return resv->offset;
}

Status KaminoEngine::Free(TxContext* ctx, uint64_t offset) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<uint64_t> size = ResolveSize(offset, 0);
  if (!size.ok()) {
    return size.status();
  }
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
  // drain=false: the free is deferred to post-commit, so the record only
  // matters if the transaction commits — and the commit-point drain (or any
  // earlier append's drain) makes it durable by then. A lost kFree record
  // means a never-performed free, never corruption (DESIGN.md §8).
  KAMINO_RETURN_IF_ERROR(log_->AppendRecord(ctx->slot, IntentKind::kFree, offset, *size, 0,
                                            /*drain=*/false));
  ctx->intents.push_back(Intent{IntentKind::kFree, offset, *size, 0});
  return Status::Ok();
}

Status KaminoEngine::OpenWriteBatch(TxContext* ctx, const WriteSpan* spans, size_t count,
                                    void** out) {
  // One intent-record flush per span, a single drain for the whole batch,
  // and only then are the write-through pointers released to the caller —
  // every record is durable before the first in-place store can happen.
  bool appended = false;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t offset = spans[i].offset;
    out[i] = nullptr;
    if (ctx->open_ranges.find(offset) != ctx->open_ranges.end()) {
      continue;  // Already open (possibly via Alloc or an earlier span).
    }
    Result<uint64_t> resolved = ResolveSize(offset, spans[i].size);
    if (!resolved.ok()) {
      return resolved.status();
    }
    const uint64_t size = *resolved;
    KAMINO_RETURN_IF_ERROR(FenceDirtyRange(offset, size));
    KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
    KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
    KAMINO_RETURN_IF_ERROR(store_->EnsureBackupCopy(offset, size, /*pin=*/true));
    Status st = log_->AppendRecord(ctx->slot, IntentKind::kWrite, offset, size, 0,
                                   /*drain=*/false);
    if (!st.ok()) {
      store_->Unpin(offset);
      return st;
    }
    // Record the intent immediately so a failure on a later span leaves
    // every appended span visible to Abort's rollback/unpin.
    ctx->open_ranges.emplace(offset, ctx->intents.size());
    ctx->intents.push_back(Intent{IntentKind::kWrite, offset, size, 0});
    appended = true;
  }
  if (appended) {
    log_->DrainAppends();
  }
  for (size_t i = 0; i < count; ++i) {
    out[i] = pool()->At(spans[i].offset);
  }
  return Status::Ok();
}

Status KaminoEngine::Commit(std::unique_ptr<TxContext> ctx) {
  return CommitImpl(std::move(ctx), nullptr);
}

Status KaminoEngine::CommitAsync(std::unique_ptr<TxContext> ctx, CommitAck* ack) {
  return CommitImpl(std::move(ctx), ack);
}

void KaminoEngine::EnqueueCommitted(std::unique_ptr<TxContext> ctx) {
  ApplierShard& shard =
      *shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size()];
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    shard.queue.push_back(std::move(ctx));
  }
  shard.cv.notify_one();
}

Status KaminoEngine::CommitImpl(std::unique_ptr<TxContext> ctx, CommitAck* ack) {
  if (ack != nullptr) {
    ack->ticket = 0;  // Durable-on-return unless the epoch path says otherwise.
  }
  if (!ctx->slot.valid()) {
    // Read-only transaction: nothing persistent happened; no applier trip.
    ReleaseWriteLocks(ctx.get());
    committed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  if (!log_->epoch_commit()) {
    // PR 4 schedule: write-set drain, then the commit record's group-commit
    // drain. Durable before the applier ever sees the context.
    // 1. Make the in-place edits durable (batched: one drain).
    FlushWriteRanges(ctx.get());
    // 2. Durable commit point.
    log_->SetState(ctx->slot, TxState::kCommitted);
    committed_.fetch_add(1, std::memory_order_relaxed);
    // 3. Hand the context to the asynchronous Transaction Coordinator. The
    //    write locks remain held until the backup is in sync — the
    //    transaction itself is done: no data was copied on this thread.
    //    Round-robin across applier shards; the disjoint-write-set invariant
    //    makes the resulting cross-shard apply order irrelevant.
    ctx->commit_enqueue_ns = stats::NowNanos();
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    EnqueueCommitted(std::move(ctx));
    return Status::Ok();
  }
  // Epoch pipeline (DESIGN.md §8): flush everything, drain nothing — the
  // commit is in DRAM order once the checked mark is staged, and exactly one
  // shared epoch drain ("log/epoch-drain") later covers intents, write set
  // and mark together. The mark carries the write-set CRC so recovery can
  // tell a durable commit from a mark that leaked ahead of torn data.
  uint64_t ranges = 0;
  const uint64_t crc = FlushWriteRangesChecked(ctx.get(), &ranges);
  log_->SetCommittedChecked(ctx->slot, crc, ranges);
  committed_.fetch_add(1, std::memory_order_relaxed);
  ctx->commit_enqueue_ns = stats::NowNanos();
  // Counted here, not in the callback: WaitIdle must see this transaction as
  // in flight from the moment it committed, even while its epoch is open.
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  // The applier consumes only durable epochs: the enqueue lives in the
  // durability callback, run by the epoch leader after the covering drain —
  // the backup can never run ahead of the log. The callback owns the context
  // (released to a raw pointer: std::function requires copyable captures)
  // and runs exactly once; WaitIdle/shutdown seal the epoch via DrainEpoch.
  TxContext* raw = ctx.release();
  // The callback may run (on a concurrent leader) before RegisterEpochCommit
  // returns here — `raw` must not be touched after this call, so the ticket
  // reaches the context through the callback argument.
  const uint64_t ticket = log_->RegisterEpochCommit([this, raw](uint64_t t) {
    raw->epoch_ticket = t;
    EnqueueCommitted(std::unique_ptr<TxContext>(raw));
  });
  if (ack != nullptr) {
    // DRAM-commit return: the caller acknowledges only after
    // TxManager::WaitCommitDurable(ack). Dependent transactions are gated
    // structurally — write locks release only after the durability-gated
    // backup apply.
    ack->ticket = ticket;
    return Status::Ok();
  }
  log_->EpochWait(ticket);
  return Status::Ok();
}

Status KaminoEngine::Prepare(TxContext* ctx, uint64_t gtxid, uint64_t coord_shard) {
  ctx->gtxid = gtxid;
  ctx->coord_shard = coord_shard;
  if (ctx->slot.valid()) {
    // Same critical-path persistence as Commit, except the durable mark is a
    // prepared record (carrying the coordinator pointer) instead of a commit
    // record. The write set is already in the log — no data is copied.
    FlushWriteRanges(ctx);
    log_->SetPrepared(ctx->slot, gtxid, coord_shard);
  }
  // Read-only participants have nothing in doubt: no slot, no record — the
  // vote is an implicit yes and FinishPrepared only releases locks.
  ctx->prepared = true;
  return Status::Ok();
}

Status KaminoEngine::PersistDecision(TxContext* ctx) {
  if (!ctx->prepared) {
    return Status::InvalidArgument("decision on an unprepared context");
  }
  if (ctx->slot.valid()) {
    log_->SetDecision(ctx->slot);
  }
  // The context is deliberately NOT handed to the applier here: the
  // coordinator's slot is the decision record every participant's recovery
  // consults, so it must stay occupied (un-releasable) until all participants
  // have durably left kPrepared. The caller enqueues it via FinishPrepared
  // once that holds.
  ctx->decided = true;
  return Status::Ok();
}

Status KaminoEngine::FinishPrepared(std::unique_ptr<TxContext> ctx, bool commit) {
  if (!ctx->prepared) {
    return Status::InvalidArgument("finish on an unprepared context");
  }
  if (!commit) {
    // Prepared-then-aborted rolls back exactly like a live abort: the
    // prepared slot takes a durable Aborted mark, the backup restores the
    // pre-images, locks and slot are released.
    return Abort(ctx.get());
  }
  if (!ctx->slot.valid()) {
    ReleaseWriteLocks(ctx.get());
    committed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  if (!ctx->decided) {
    // Participant: durably convert the prepared record into a commit record
    // so this shard's recovery no longer depends on the coordinator.
    log_->SetState(ctx->slot, TxState::kCommitted);
  }
  // The decision (or the commit record above) is durable: same tail as
  // Commit — count it and hand the context to the Transaction Coordinator.
  committed_.fetch_add(1, std::memory_order_relaxed);
  ctx->commit_enqueue_ns = stats::NowNanos();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  EnqueueCommitted(std::move(ctx));
  return Status::Ok();
}

void KaminoEngine::ApplyCommitted(TxContext* ctx) {
  // Roll the whole write set forward in one batched apply: per-range flushes
  // and a single drain inside the store, instead of a full Persist per
  // object.
  nvm::PersistSiteScope site("applier/roll-forward");
  std::vector<ApplyRange> ranges;
  ranges.reserve(ctx->intents.size());
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kWrite || in.kind == IntentKind::kAlloc) {
      ranges.push_back(ApplyRange{in.offset, in.size});
    }
  }
  if (!ranges.empty()) {
    // Handed-off recovered transactions reach the applier without a fenced
    // OpenWrite, so their ranges may still be dirty: a concurrent background
    // reconcile of the same chunk would race with the apply's backup writes.
    // (Foreground transactions fenced at OpenWrite; this hits the lock-free
    // clean fast path.)
    for (const ApplyRange& r : ranges) {
      (void)FenceDirtyRange(r.offset, r.size);
    }
    uint64_t coalesced = 0;
    (void)store_->ApplyBatchFromMain(ranges, &coalesced);
    apply_batches_.fetch_add(1, std::memory_order_relaxed);
    coalesced_ranges_.fetch_add(coalesced, std::memory_order_relaxed);
  }
  for (const Intent& in : ctx->intents) {
    switch (in.kind) {
      case IntentKind::kWrite:
        store_->Unpin(in.offset);
        break;
      case IntentKind::kFree:
        store_->Invalidate(in.offset);
        (void)heap_->allocator()->FreeRawKeepReserved(in.offset);
        break;
      default:
        break;
    }
  }
  // The batch apply has returned, so the backup is durable — the caller may
  // now release the slot (a crash before that re-rolls the transaction
  // forward, which is idempotent). Slot release and the post-release steps
  // live in FinishApplied so the applier loop can share one release fence
  // across a whole batch of transactions (LogManager::ReleaseSlots).
}

void KaminoEngine::FinishApplied(TxContext* ctx) {
  // Freed objects become reusable only after the intent log no longer refers
  // to them (a recovered re-free must never hit a re-allocated object).
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kFree) {
      heap_->allocator()->ReleaseReservation(in.offset);
    }
  }
  ReleaseWriteLocks(ctx);
  applied_.fetch_add(1, std::memory_order_relaxed);
  if (ctx->commit_enqueue_ns != 0) {
    apply_lag_.Record(stats::NowNanos() - ctx->commit_enqueue_ns);
  }
}

void KaminoEngine::ApplierLoop(size_t shard_index) {
  // Bounds how many releases share one fence; also bounds how long write
  // locks of the first transaction in a batch stay held past its apply.
  constexpr size_t kMaxApplyBatch = 32;
  ApplierShard& shard = *shards_[shard_index];
  std::vector<std::unique_ptr<TxContext>> batch;
  std::vector<SlotHandle> slots;
  for (;;) {
    batch.clear();
    slots.clear();
    {
      std::unique_lock<std::mutex> lk(shard.mu);
      shard.cv.wait(lk, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               (!paused_.load(std::memory_order_relaxed) && !shard.queue.empty());
      });
      // Drain remaining work on shutdown unless a crash test froze the
      // applier with PauseApplier.
      if (shard.queue.empty() || paused_.load(std::memory_order_relaxed)) {
        if (stop_.load(std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      while (!shard.queue.empty() && batch.size() < kMaxApplyBatch) {
        batch.push_back(std::move(shard.queue.front()));
        shard.queue.pop_front();
      }
    }
    // Apply batches run strictly between snapshot views (the BackupStore cut
    // gate), so any state a backup reader observes lies on a transaction
    // boundary — the epoch-cut invariant (DESIGN.md §12).
    store_->EnterApplyCut();
    for (auto& ctx : batch) {
      ApplyCommitted(ctx.get());
      slots.push_back(ctx->slot);
      ctx->slot = SlotHandle{};
    }
    store_->ExitApplyCut();
    // Every backup apply in the batch is durable; one shared fence frees all
    // the slots (see LogManager::ReleaseSlots for the ordering argument).
    log_->ReleaseSlots(slots.data(), slots.size());
    // Stamp the cut only after the slots are durably released: a crash from
    // here on may undercount the stamp (a safe floor — recovery re-rolls
    // exactly the unreleased slots, never anything the stamp counts) but can
    // never overcount it. SetBackupEpoch is a monotone ratchet, so racing
    // applier shards publish in any order without regressing the frontier.
    const uint64_t epoch =
        cut_released_.fetch_add(batch.size(), std::memory_order_acq_rel) + batch.size();
    log_->SetBackupEpoch(epoch);
    store_->PublishCutEpoch(epoch);
    for (auto& ctx : batch) {
      FinishApplied(ctx.get());
    }
    // The decrement happens under idle_mu_ so a WaitIdle caller that observes
    // in_flight_ == 0 also inherits a happens-before edge from the applier's
    // ReleaseSlots/FinishApplied writes above (e.g. a state-transfer snapshot
    // reading the pool right after WaitIdle returns).
    {
      std::lock_guard<std::mutex> lk(idle_mu_);
      in_flight_.fetch_sub(batch.size(), std::memory_order_relaxed);
    }
    idle_cv_.notify_all();
  }
}

void KaminoEngine::WaitIdle() {
  if (log_ != nullptr && log_->epoch_commit()) {
    // Seal the open epoch first: parked durability callbacks hold committed
    // contexts that are already counted in in_flight_ but have not reached
    // the appliers yet — waiting without sealing could block forever.
    log_->DrainEpoch();
  }
  std::unique_lock<std::mutex> lk(idle_mu_);
  idle_cv_.wait(lk, [&] {
    return paused_.load(std::memory_order_relaxed) ||
           in_flight_.load(std::memory_order_relaxed) == 0;
  });
}

void KaminoEngine::PauseApplier(bool paused) {
  paused_.store(paused, std::memory_order_seq_cst);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
  }
  for (auto& shard : shards_) {
    shard->cv.notify_all();
  }
  { std::lock_guard<std::mutex> lk(idle_mu_); }
  idle_cv_.notify_all();
}

void KaminoEngine::DiscardPendingForCrashTest() {
  uint64_t discarded = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    discarded += shard->queue.size();
    shard->queue.clear();
  }
  // A WaitIdle caller may be blocked on exactly the work just discarded; the
  // decrement goes under idle_mu_ for the same reason as in ApplierLoop.
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    in_flight_.fetch_sub(discarded, std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
}

EngineStats KaminoEngine::stats() const {
  EngineStats s = EngineBase::stats();
  s.applier_queue_depth = in_flight_.load(std::memory_order_relaxed);
  s.apply_batches = apply_batches_.load(std::memory_order_relaxed);
  s.coalesced_ranges = coalesced_ranges_.load(std::memory_order_relaxed);
  if (apply_lag_.count() > 0) {
    s.apply_lag_p50_ns = apply_lag_.PercentileNs(50.0);
    s.apply_lag_p99_ns = apply_lag_.PercentileNs(99.0);
    s.apply_lag_max_ns = apply_lag_.MaxNs();
  }
  s.recovery_replay_ns = recovery_replay_ns_;
  s.recovery_worker_ns = recovery_worker_ns_;
  if (dirty_map_ != nullptr) {
    const DirtyMapStats d = dirty_map_->stats();
    s.recovery_dirty_chunks = d.initially_dirty;
    s.recovery_dirty_chunks_left = d.dirty_remaining;
    s.recovery_fence_waits = d.fence_waits;
    s.recovery_fence_wait_ns = d.fence_wait_ns;
    s.recovery_ondemand_reconciles = d.ondemand_reconciles;
  }
  s.recovery_reconciled_bytes = reconciled_bytes_.load(std::memory_order_relaxed);
  if (log_ != nullptr) {
    s.backup_epoch = log_->backup_epoch();
  }
  if (store_ != nullptr) {
    const BackupStats b = store_->stats();
    s.backup_read_hits = b.read_hits;
    s.backup_read_misses = b.read_misses;
    s.backup_snapshot_views = b.snapshot_views;
    s.backup_cut_fence_waits = b.cut_fence_waits;
    s.backup_cut_fence_wait_ns = b.cut_fence_wait_ns;
  }
  return s;
}

Status KaminoEngine::Abort(TxContext* ctx) {
  if (!ctx->slot.valid()) {
    ReleaseWriteLocks(ctx);
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  log_->SetState(ctx->slot, TxState::kAborted);
  nvm::PersistSiteScope site("engine/abort-rollback");
  // Roll the main version back from the backup, newest intent first. A
  // failed restore must not short-circuit the loop: the remaining intents
  // still need their rollback/unpin, and the slot and write locks must be
  // released regardless (an early return here used to leak both, wedging
  // every dependent transaction). Best effort; first error wins.
  Status result = Status::Ok();
  for (auto it = ctx->intents.rbegin(); it != ctx->intents.rend(); ++it) {
    switch (it->kind) {
      case IntentKind::kWrite: {
        Status st = store_->RestoreToMain(it->offset, it->size);
        store_->Unpin(it->offset);
        if (!st.ok() && result.ok()) {
          result = st;
        }
        break;
      }
      case IntentKind::kAlloc: {
        Status st = heap_->allocator()->FreeRaw(it->offset);
        if (!st.ok() && result.ok()) {
          result = st;
        }
        break;
      }
      case IntentKind::kFree:
        break;  // Deferred; nothing happened.
      default:
        break;
    }
  }
  log_->ReleaseSlot(ctx->slot);
  ReleaseWriteLocks(ctx);
  aborted_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

// --- Recovery pipeline (DESIGN.md §10) ---------------------------------------

Status KaminoEngine::RollForwardRecovered(const RecoveredTx& tx) {
  // Roll forward: the main version carries the committed data; bring the
  // backup (and deferred frees) up to date. Single-range applies — the
  // batched path is a throughput optimisation for the hot applier loop, and
  // recovery is cold. Errors do not short-circuit: every intent is resolved
  // on its own so a partial failure leaves as little pending as possible,
  // and both ApplyFromMain and FreeRaw are idempotent for the retry.
  Status result = Status::Ok();
  for (const Intent& in : tx.intents) {
    Status st = Status::Ok();
    switch (in.kind) {
      case IntentKind::kWrite:
      case IntentKind::kAlloc:
        st = store_->ApplyFromMain(in.offset, in.size);
        break;
      case IntentKind::kFree:
        store_->Invalidate(in.offset);
        st = heap_->allocator()->FreeRaw(in.offset);
        break;
      default:
        break;
    }
    if (!st.ok() && result.ok()) {
      result = st;
    }
  }
  return result;
}

Status KaminoEngine::RollBackRecovered(const RecoveredTx& tx) {
  // Running or aborted: incomplete transactions are treated as aborted
  // (paper §3) — restore the pre-transaction values from the backup, newest
  // intent first. Same continue-and-aggregate discipline as Abort().
  Status result = Status::Ok();
  for (auto it = tx.intents.rbegin(); it != tx.intents.rend(); ++it) {
    Status st = Status::Ok();
    switch (it->kind) {
      case IntentKind::kWrite:
        st = store_->RestoreToMain(it->offset, it->size);
        break;
      case IntentKind::kAlloc:
        st = heap_->allocator()->FreeRaw(it->offset);
        break;
      case IntentKind::kFree:
        break;
      default:
        break;
    }
    if (!st.ok() && result.ok()) {
      result = st;
    }
  }
  return result;
}

Result<std::unique_ptr<TxContext>> KaminoEngine::BuildHandoff(const RecoveredTx& tx) {
  auto ctx = std::make_unique<TxContext>();
  ctx->txid = tx.txid;
  ctx->slot = log_->HandleForRecovered(tx);
  ctx->intents = tx.intents;
  // Re-acquire the write locks the transaction held at crash time so
  // dependent transactions block until the applier has synced the backup —
  // exactly the pre-crash protocol. Acquisition is re-entrant per txid, so
  // duplicate offsets across intents are harmless; contention is impossible
  // (recovered write sets are pairwise disjoint and the engine is not yet
  // serving), so a failure here is exceptional.
  for (const Intent& in : tx.intents) {
    Status st = locks_->AcquireWrite(in.offset, tx.txid);
    if (!st.ok()) {
      for (uint64_t key : ctx->write_lock_keys) {
        locks_->ReleaseWrite(key, tx.txid);
      }
      return st;
    }
    ctx->write_lock_keys.push_back(in.offset);
  }
  return ctx;
}

Status KaminoEngine::ReplayPartition(const std::vector<RecoveredTx>& txs,
                                     std::vector<std::unique_ptr<TxContext>>* handoff) {
  Status result = Status::Ok();
  for (const RecoveredTx& tx : txs) {
    if (tx.state == TxState::kPrepared) {
      // In doubt: the outcome lives in the coordinator shard's decision
      // record, which a standalone engine cannot consult — and the main heap
      // holds the transaction's uncommitted in-place data, so neither rolling
      // forward nor back is safe unilaterally. Keep the slot and report;
      // ShardedStore::Open durably resolves every in-doubt slot across all
      // shards *before* running per-shard recovery (DESIGN.md §11).
      if (result.ok()) {
        result = Status::Unavailable(
            "in-doubt prepared transaction requires sharded open to resolve");
      }
      continue;
    }
    if (tx.state == TxState::kCommitted) {
      if (recovery_.online && handoff != nullptr) {
        Result<std::unique_ptr<TxContext>> ctx = BuildHandoff(tx);
        if (ctx.ok()) {
          handoff->push_back(std::move(*ctx));
          recovered_forward_.fetch_add(1, std::memory_order_relaxed);
          continue;  // The applier releases the slot after its backup sync.
        }
        // Lock re-acquisition failed; fall through to the inline path.
      }
      Status st = RollForwardRecovered(tx);
      if (!st.ok()) {
        // Keep the slot: the transaction is still pending, and the next
        // Recover() (or a retry) must see it again. Continue with the rest —
        // their write sets are disjoint, so they are unaffected.
        if (result.ok()) {
          result = st;
        }
        continue;
      }
      recovered_forward_.fetch_add(1, std::memory_order_relaxed);
    } else {
      Status st = RollBackRecovered(tx);
      if (!st.ok()) {
        if (result.ok()) {
          result = st;
        }
        continue;
      }
      recovered_back_.fetch_add(1, std::memory_order_relaxed);
    }
    SlotHandle handle = log_->HandleForRecovered(tx);
    log_->ReleaseSlot(handle);
  }
  return result;
}

void KaminoEngine::BuildDirtyMap() {
  const alloc::Allocator* allocator = heap_->allocator();
  dirty_map_ = std::make_unique<DirtyMap>(allocator->region_offset(), allocator->region_size(),
                                          recovery_.reconcile_chunk_bytes);
  const uint64_t num_chunks = dirty_map_->num_chunks();
  chunk_objects_.assign(num_chunks, {});
  // Snapshot the live allocations *after* replay: rolled-back allocations are
  // gone, recovered frees are applied. The snapshot is what reconcile copies;
  // objects allocated after the engine opens are synced by the normal applier
  // path (their chunks are fenced clean at Alloc time first).
  heap_->allocator()->ForEachAllocation([&](uint64_t offset, uint64_t size) {
    chunk_objects_[dirty_map_->chunk_of(offset)].push_back(ApplyRange{offset, size});
  });

  // Resume from the persisted frontier of an interrupted sweep: chunks below
  // it stayed consistent across the crash (replay only re-applies ranges in
  // ways that preserve mirror equality — see DESIGN.md §10). kReconcileDone
  // means no sweep was in progress; this sweep starts from scratch.
  uint64_t resume = log_->reconcile_cursor();
  if (resume == LogManager::kReconcileDone) {
    resume = 0;
    log_->SetReconcileCursor(0);  // The sweep is now (durably) in progress.
  }
  for (uint64_t c = 0; c < num_chunks; ++c) {
    if (c < resume || chunk_objects_[c].empty()) {
      dirty_map_->MarkCleanInitial(c);
    }
  }
  dirty_map_->Seal();
  {
    std::lock_guard<std::mutex> lk(cursor_mu_);
    last_persisted_cursor_ = resume;
  }
}

Status KaminoEngine::ReconcileChunk(uint64_t chunk) {
  Result<uint64_t> bytes = store_->ReconcileRanges(chunk_objects_[chunk]);
  if (!bytes.ok()) {
    return bytes.status();
  }
  reconciled_bytes_.fetch_add(*bytes, std::memory_order_relaxed);
  return Status::Ok();
}

Status KaminoEngine::FenceDirtyRange(uint64_t offset, uint64_t size) {
  if (!reconcile_active_.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  return dirty_map_->EnsureClean(offset, size,
                                 [this](uint64_t chunk) { return ReconcileChunk(chunk); });
}

void KaminoEngine::MaybePersistCursor() {
  std::lock_guard<std::mutex> lk(cursor_mu_);
  const uint64_t frontier = dirty_map_->clean_frontier();
  if (frontier > last_persisted_cursor_) {
    log_->SetReconcileCursor(frontier);
    last_persisted_cursor_ = frontier;
  }
}

void KaminoEngine::FinishReconcile() {
  {
    std::lock_guard<std::mutex> lk(reconcile_done_mu_);
    if (reconcile_finished_) {
      return;
    }
    reconcile_finished_ = true;
  }
  // Every chunk is clean: the mirror is whole again. Clear the persistent
  // cursor *after* the fact — a crash in between merely re-runs a sweep that
  // finds everything resumable.
  log_->SetReconcileCursor(LogManager::kReconcileDone);
  {
    std::lock_guard<std::mutex> lk(reconcile_done_mu_);
    reconcile_active_.store(false, std::memory_order_release);
  }
  reconcile_done_cv_.notify_all();
}

void KaminoEngine::ReconcileLoop() {
  nvm::PersistSiteScope site("backup/reconcile");
  while (!reconcile_stop_.load(std::memory_order_relaxed)) {
    uint64_t chunk = 0;
    if (dirty_map_->ClaimNext(&chunk)) {
      Status st = ReconcileChunk(chunk);
      dirty_map_->FinishChunk(chunk, st.ok());
      if (st.ok()) {
        MaybePersistCursor();
      } else {
        // The chunk went back to dirty; back off before the wrap-around scan
        // picks it up again so a persistent failure cannot spin.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      continue;
    }
    if (dirty_map_->all_clean()) {
      MaybePersistCursor();
      FinishReconcile();
      return;
    }
    // Remaining dirty chunks are claimed by fencing threads; wait for them.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

Status KaminoEngine::Recover() {
  nvm::PersistSiteScope site("engine/recover");
  const uint64_t fwd_before = recovered_forward_.load(std::memory_order_relaxed);
  std::vector<RecoveredTx> txs = log_->ScanForRecovery();

  // Phase 1: replay. The disjoint-write-set invariant (any two non-free
  // slots at crash time hold transactions with pairwise disjoint write sets,
  // DESIGN.md §6) makes any partition safe to replay in parallel. With one
  // worker the replay runs inline on this thread, reproducing the classic
  // single-threaded event stream exactly.
  const uint64_t replay_start = stats::NowNanos();
  size_t workers = recovery_.workers < 1 ? 1 : static_cast<size_t>(recovery_.workers);
  workers = std::min(workers, txs.empty() ? size_t{1} : txs.size());
  std::vector<std::vector<RecoveredTx>> parts =
      LogManager::PartitionForRecovery(std::move(txs), workers);

  Status result = Status::Ok();
  std::vector<std::unique_ptr<TxContext>> handoff;
  recovery_worker_ns_.assign(workers, 0);
  if (workers == 1) {
    const uint64_t t0 = stats::NowNanos();
    Status st = ReplayPartition(parts[0], &handoff);
    recovery_worker_ns_[0] = stats::NowNanos() - t0;
    if (!st.ok()) {
      result = st;
    }
  } else {
    std::vector<Status> statuses(workers);
    std::vector<std::vector<std::unique_ptr<TxContext>>> handoffs(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([this, w, &parts, &statuses, &handoffs] {
        nvm::PersistSiteScope worker_site("engine/recover");
        const uint64_t t0 = stats::NowNanos();
        statuses[w] = ReplayPartition(parts[w], &handoffs[w]);
        recovery_worker_ns_[w] = stats::NowNanos() - t0;
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    for (size_t w = 0; w < workers; ++w) {
      if (!statuses[w].ok() && result.ok()) {
        result = statuses[w];
      }
      for (auto& ctx : handoffs[w]) {
        handoff.push_back(std::move(ctx));
      }
    }
  }
  recovery_replay_ns_ = stats::NowNanos() - replay_start;
  store_->CompactAfterRecovery();

  // Phase 2: backup reconciliation. Offline it drains here; online the
  // dirty map is armed, workers spawn, and the engine opens immediately —
  // operations fence on the chunks they touch.
  if (recovery_.reconcile_backup) {
    BuildDirtyMap();
    if (recovery_.online) {
      reconcile_active_.store(true, std::memory_order_release);
      const int n = recovery_.reconcile_workers < 1 ? 1 : recovery_.reconcile_workers;
      reconcilers_.reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        reconcilers_.emplace_back([this] { ReconcileLoop(); });
      }
    } else {
      uint64_t chunk = 0;
      while (dirty_map_->ClaimNext(&chunk)) {
        Status st = ReconcileChunk(chunk);
        dirty_map_->FinishChunk(chunk, st.ok());
        if (!st.ok()) {
          if (result.ok()) {
            result = st;
          }
          break;  // Leave the rest dirty; the cursor resumes the sweep.
        }
        MaybePersistCursor();
      }
      if (dirty_map_->all_clean()) {
        log_->SetReconcileCursor(LogManager::kReconcileDone);
        std::lock_guard<std::mutex> lk(reconcile_done_mu_);
        reconcile_finished_ = true;
      }
    }
  }

  // Re-seed the backup-read cut: transactions rolled forward inline during
  // replay released their slots without stamping, so count them on top of
  // the durable pre-crash floor. Handed-off contexts are stamped by the
  // appliers as usual, which is why the seed must land before they enqueue.
  const uint64_t inline_fwd =
      (recovered_forward_.load(std::memory_order_relaxed) - fwd_before) -
      static_cast<uint64_t>(handoff.size());
  const uint64_t cut_seed = log_->backup_epoch() + inline_fwd;
  log_->SetBackupEpoch(cut_seed);
  store_->InitCutEpoch(cut_seed);
  cut_released_.store(cut_seed, std::memory_order_relaxed);

  // Hand the committed-but-unapplied transactions to the applier pool only
  // *after* the dirty map is armed: their applies must fence, or a
  // background reconcile of the same chunk would race with the apply. This
  // happens even if replay reported an error — handed-off contexts are
  // independent of the failed ones (disjoint write sets) and idempotent.
  if (!handoff.empty()) {
    in_flight_.fetch_add(handoff.size(), std::memory_order_relaxed);
    for (auto& ctx : handoff) {
      ApplierShard& shard =
          *shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size()];
      {
        std::lock_guard<std::mutex> lk(shard.mu);
        shard.queue.push_back(std::move(ctx));
      }
      shard.cv.notify_one();
    }
  }
  return result;
}

void KaminoEngine::WaitForRecovery() {
  std::unique_lock<std::mutex> lk(reconcile_done_mu_);
  reconcile_done_cv_.wait(lk, [&] {
    return !reconcile_active_.load(std::memory_order_acquire) ||
           reconcile_stop_.load(std::memory_order_relaxed);
  });
}

}  // namespace kamino::txn
