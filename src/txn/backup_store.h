// Backup version of the heap (paper §3 "backup version", §4 "dynamic backup").
//
// The backup store answers four questions for the Kamino engine:
//   - EnsureBackupCopy: before a transaction is allowed to modify an object
//     in place, a consistent pre-transaction copy must exist ("Kamino-Tx
//     ensures existence of a consistent copy of each persistent object before
//     allowing a program to modify it"). For the full backup this is free;
//     for the dynamic backup a miss costs one critical-path copy (the paper's
//     stated trade-off for α < 1).
//   - ApplyFromMain: roll the backup forward after commit (async applier, or
//     recovery of a committed transaction).
//   - RestoreToMain: roll the main version back (abort, or recovery of an
//     incomplete transaction).
//   - Invalidate: drop the copy of a freed object.
//
// FullBackupStore mirrors the entire pool at identical offsets
// (Kamino-Tx-Simple, storage 2 × dataSize). DynamicBackupStore keeps copies
// of only the hottest objects in a pool of size ≈ α × dataSize, indexed by a
// *persistent* open-addressing hash table (recovery needs it) plus a volatile
// LRU for eviction (paper Figure 7, §6.4). Pinned (pending) objects are never
// evicted.

#ifndef SRC_TXN_BACKUP_STORE_H_
#define SRC_TXN_BACKUP_STORE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/alloc/allocator.h"
#include "src/common/status.h"
#include "src/nvm/pool.h"

namespace kamino::txn {

struct BackupStats {
  uint64_t ensure_hits = 0;
  uint64_t ensure_misses = 0;  // Critical-path copies (dynamic only).
  uint64_t applies = 0;
  uint64_t restores = 0;
  uint64_t evictions = 0;
  uint64_t batch_applies = 0;  // ApplyBatchFromMain calls.

  // Backup-epoch read path (DESIGN.md §12).
  uint64_t read_hits = 0;    // Snapshot object reads served from a backup copy.
  uint64_t read_misses = 0;  // Dynamic only: epoch-checked main-heap fallbacks.
  uint64_t snapshot_views = 0;
  uint64_t cut_fence_waits = 0;     // Readers that waited out an apply batch.
  uint64_t cut_fence_wait_ns = 0;   // Total reader wait at the cut gate.
  uint64_t apply_fence_waits = 0;   // Apply batches that waited on readers.
  uint64_t cuts = 0;                // Apply-cut sections completed.
};

// One main-heap range the applier wants rolled forward into the backup.
struct ApplyRange {
  uint64_t offset = 0;
  uint64_t size = 0;
};

class BackupStore {
 public:
  virtual ~BackupStore() = default;

  // --- Backup-epoch read interface (DESIGN.md §12) ---------------------------
  //
  // The backup is a transaction-consistent image of the heap at a cut between
  // apply batches: write sets of in-flight committed transactions are pairwise
  // disjoint and dependent transactions block on write locks held until apply,
  // so the applied set is causally closed — any state observed *between* (not
  // during) apply batches is a consistent snapshot. The cut gate below is the
  // only mechanism needed: appliers share entry among themselves (their
  // applies commute), snapshot readers share among themselves (reads), and
  // the two groups are mutually exclusive. Fairness alternates turns so a
  // stream of analytics chunks cannot starve appliers (which would exhaust
  // log slots and stall every writer), nor appliers starve readers.
  //
  // A SnapshotView is the reader side of the gate: while held, the backup is
  // frozen at `epoch()` — the durably stamped cut (LogManager::backup_epoch),
  // never a value that could be lost to a crash.
  class SnapshotView {
   public:
    SnapshotView() = default;
    SnapshotView(SnapshotView&& o) noexcept : store_(o.store_), epoch_(o.epoch_) {
      o.store_ = nullptr;
    }
    SnapshotView& operator=(SnapshotView&& o) noexcept {
      if (this != &o) {
        Release();
        store_ = o.store_;
        epoch_ = o.epoch_;
        o.store_ = nullptr;
      }
      return *this;
    }
    SnapshotView(const SnapshotView&) = delete;
    SnapshotView& operator=(const SnapshotView&) = delete;
    ~SnapshotView() { Release(); }

    bool valid() const { return store_ != nullptr; }
    uint64_t epoch() const { return epoch_; }

    // Copies the cut-consistent bytes of [offset, offset+size) into `out`.
    Status Read(uint64_t offset, uint64_t size, void* out) {
      return store_->ReadAt(offset, size, out);
    }

    void Release();

   private:
    friend class BackupStore;
    SnapshotView(BackupStore* store, uint64_t epoch) : store_(store), epoch_(epoch) {}
    BackupStore* store_ = nullptr;
    uint64_t epoch_ = 0;
  };

  virtual bool supports_snapshot_reads() const { return false; }

  // Opens a snapshot view at the current advertised cut. Blocks while an
  // apply batch is mid-flight (bounded by one applier batch). NotSupported
  // for stores without a readable copy (chain replicas).
  Result<SnapshotView> OpenSnapshot();

  // Reads [offset, offset+size) as of the cut into `out`. Requires a
  // SnapshotView held by the calling thread (appliers gated); prefer
  // SnapshotView::Read. Full mirror: direct copy. Dynamic: resident copy
  // (the pre-image of any in-flight writer — exactly the cut state), with an
  // epoch-checked main-heap fallback for misses (see DynamicBackupStore).
  virtual Status ReadAt(uint64_t offset, uint64_t size, void* out) {
    (void)offset;
    (void)size;
    (void)out;
    return Status::NotSupported("backup store has no snapshot read path");
  }

  // Applier side of the cut gate: EnterApplyCut before the first backup
  // mutation of an apply batch (apply/unpin/invalidate), ExitApplyCut after
  // the last. Multiple appliers may hold the apply side concurrently.
  void EnterApplyCut();
  void ExitApplyCut();

  // Publishes a durably stamped epoch to readers (monotone max). The caller
  // must have persisted `epoch` via LogManager::SetBackupEpoch first —
  // readers are only ever told epochs that survive a crash.
  void PublishCutEpoch(uint64_t epoch);
  // Seeds the advertised epoch at create/open/recovery time.
  void InitCutEpoch(uint64_t epoch) { cut_epoch_.store(epoch, std::memory_order_release); }
  uint64_t cut_epoch() const { return cut_epoch_.load(std::memory_order_acquire); }

  // Guarantees a consistent pre-transaction copy of [offset, offset+size)
  // exists. Must be called (and completed) before the range is modified.
  // With `pin`, the copy is atomically pinned against eviction (released via
  // Unpin once the applier has synced it, or on abort).
  virtual Status EnsureBackupCopy(uint64_t offset, uint64_t size, bool pin = false) = 0;

  // Copies main -> backup for the range; creates the copy if absent.
  virtual Status ApplyFromMain(uint64_t offset, uint64_t size) = 0;

  // Rolls a whole transaction's write set forward with batched persistence:
  // implementations flush each range and pay at most one drain for the whole
  // batch (the Marathe-style flush-coalescing discipline), instead of one
  // Persist per object. `coalesced_out`, when non-null, receives the number
  // of input ranges merged away by adjacent/overlap coalescing (0 if the
  // store cannot merge). The default implementation is the unbatched loop.
  //
  // Durability contract: the batch is only guaranteed durable once the call
  // returns; callers must not release the intent-log slot before that.
  virtual Status ApplyBatchFromMain(const std::vector<ApplyRange>& ranges,
                                    uint64_t* coalesced_out = nullptr);

  // Copies backup -> main for the range. Fails with kCorruption if no copy
  // exists (the engine's invariants guarantee one does).
  virtual Status RestoreToMain(uint64_t offset, uint64_t size) = 0;

  // Forgets the copy anchored at `offset` (object freed).
  virtual void Invalidate(uint64_t offset) = 0;

  // Eviction guards for in-flight objects. No-ops for the full backup.
  virtual void Pin(uint64_t offset) { (void)offset; }
  virtual void Unpin(uint64_t offset) { (void)offset; }

  // NVM bytes this store occupies (for Table 1 / Figure 16 accounting).
  virtual uint64_t backup_bytes() const = 0;

  virtual BackupStats stats() const = 0;

  // Post-recovery housekeeping. The dynamic store reclaims backup slots
  // orphaned by a crash between an entry's tombstone and its replacement
  // (a bounded leak otherwise). No-op for other stores.
  virtual void CompactAfterRecovery() {}

  // Online-recovery reconcile (DESIGN.md §10): re-derives the backup copy of
  // each range from the (authoritative, post-replay) main heap. Idempotent —
  // re-running after a crash only repeats work. Returns the number of bytes
  // copied. Stores whose copies are created lazily from main (dynamic) or
  // that keep no copies (null) have nothing to reconcile and return 0.
  virtual Result<uint64_t> ReconcileRanges(const std::vector<ApplyRange>& ranges) {
    (void)ranges;
    return uint64_t{0};
  }

 protected:
  // Merges the cut-gate / snapshot-read counters into `s` (called by derived
  // stats() implementations).
  void AddCutStats(BackupStats* s) const;

  // Bumped by derived ReadAt implementations.
  std::atomic<uint64_t> read_hits_{0};
  std::atomic<uint64_t> read_misses_{0};

 private:
  void ReleaseSnapshot();

  // Two-group cut gate (see the SnapshotView comment). All counts guarded by
  // cut_mu_; applier_turn_ hands the gate to waiting appliers when the last
  // reader leaves, and back when the last applier leaves.
  mutable std::mutex cut_mu_;
  std::condition_variable cut_cv_;
  int active_appliers_ = 0;
  int waiting_appliers_ = 0;
  int active_readers_ = 0;
  int waiting_readers_ = 0;
  bool applier_turn_ = false;

  // Advertised cut epoch: always a durably stamped value (floor semantics).
  std::atomic<uint64_t> cut_epoch_{0};

  std::atomic<uint64_t> snapshot_views_{0};
  std::atomic<uint64_t> cut_fence_waits_{0};
  std::atomic<uint64_t> cut_fence_wait_ns_{0};
  std::atomic<uint64_t> apply_fence_waits_{0};
  std::atomic<uint64_t> cuts_{0};
};

// --- Kamino-Tx-Simple: full mirror -----------------------------------------

class FullBackupStore : public BackupStore {
 public:
  // `backup` must be at least as large as `main`. Offsets are shared.
  FullBackupStore(nvm::Pool* main, nvm::Pool* backup);

  Status EnsureBackupCopy(uint64_t offset, uint64_t size, bool pin = false) override;
  Status ApplyFromMain(uint64_t offset, uint64_t size) override;
  // Coalesces adjacent/overlapping ranges, flushes each merged range, drains
  // once — O(1) drains per transaction regardless of write-set size.
  Status ApplyBatchFromMain(const std::vector<ApplyRange>& ranges,
                            uint64_t* coalesced_out = nullptr) override;
  Status RestoreToMain(uint64_t offset, uint64_t size) override;
  void Invalidate(uint64_t offset) override;
  uint64_t backup_bytes() const override;
  BackupStats stats() const override;

  // The full mirror must actually copy: its backup offsets are read blind at
  // the next recovery, so every live range has to match main again before the
  // dirty map may call the mirror consistent.
  Result<uint64_t> ReconcileRanges(const std::vector<ApplyRange>& ranges) override;

  // Snapshot reads: the mirror shares offsets with main and — under the cut
  // gate — holds exactly the applied (cut) state, so every read hits.
  bool supports_snapshot_reads() const override { return true; }
  Status ReadAt(uint64_t offset, uint64_t size, void* out) override;

  // Bulk main -> backup copy, for non-transactional bulk loads and for
  // building a backup on a new chain head (paper §5.2).
  void SyncAll();

 private:
  nvm::Pool* main_;
  nvm::Pool* backup_;
  std::atomic<uint64_t> applies_{0};
  std::atomic<uint64_t> restores_{0};
  std::atomic<uint64_t> batch_applies_{0};
};

// --- Kamino-Tx-Chain replica: no local backup --------------------------------

// Non-head chain replicas keep no copies at all (paper §5): their neighbours
// in the chain are the backup. Ensure/Apply are free; Restore fails loudly —
// replica recovery fetches object state from a neighbour instead (the
// chain's roll-forward / roll-back protocol, §5.3).
class NullBackupStore : public BackupStore {
 public:
  Status EnsureBackupCopy(uint64_t, uint64_t, bool) override { return Status::Ok(); }
  Status ApplyFromMain(uint64_t, uint64_t) override { return Status::Ok(); }
  Status RestoreToMain(uint64_t, uint64_t) override {
    return Status::Internal("chain replica has no local backup; recover from a neighbour");
  }
  void Invalidate(uint64_t) override {}
  uint64_t backup_bytes() const override { return 0; }
  BackupStats stats() const override { return BackupStats{}; }
};

// --- Kamino-Tx-Dynamic: partial backup --------------------------------------

struct DynamicBackupOptions {
  // Number of persistent lookup-table buckets (power of two). Should be at
  // least ~2x the expected number of resident copies.
  uint64_t lookup_buckets = 1 << 16;

  // Copy budget in bytes (the paper's α × dataSize). Eviction keeps the sum
  // of resident copy sizes at or below this. 0 means "bounded only by the
  // backup pool's capacity".
  uint64_t budget_bytes = 0;
};

class DynamicBackupStore : public BackupStore {
 public:
  // Pool size needed for a copy budget of `data_budget_bytes` (the paper's
  // α × dataSize) with the given table size.
  static uint64_t RequiredPoolSize(uint64_t data_budget_bytes, uint64_t lookup_buckets);

  // Formats `backup` as a fresh dynamic backup region.
  static Result<std::unique_ptr<DynamicBackupStore>> Create(nvm::Pool* main, nvm::Pool* backup,
                                                            const DynamicBackupOptions& options);

  // Reattaches after a restart; rebuilds the volatile index and LRU from the
  // persistent lookup table.
  static Result<std::unique_ptr<DynamicBackupStore>> Open(nvm::Pool* main, nvm::Pool* backup);

  Status EnsureBackupCopy(uint64_t offset, uint64_t size, bool pin = false) override;
  Status ApplyFromMain(uint64_t offset, uint64_t size) override;
  // Per-object ranges only (the caller must NOT merge ranges across object
  // boundaries — copies are keyed by object offset). Resident copies are
  // flushed without draining and a single drain finishes the batch; misses
  // (fresh allocations) fall back to the insert path.
  Status ApplyBatchFromMain(const std::vector<ApplyRange>& ranges,
                            uint64_t* coalesced_out = nullptr) override;
  Status RestoreToMain(uint64_t offset, uint64_t size) override;
  void Invalidate(uint64_t offset) override;
  void Pin(uint64_t offset) override;
  void Unpin(uint64_t offset) override;
  uint64_t backup_bytes() const override;
  BackupStats stats() const override;

  // Snapshot reads for the partial backup (DESIGN.md §12). A resident copy
  // is the pre-image of any in-flight writer — exactly the cut state; the
  // tail of a request past the copy's declared write range comes from main
  // (untouched by that writer). A miss falls back to an epoch-checked main
  // read: both the lookup and the main copy-out happen under the object's
  // stripe lock, which any new writer must take to insert its pre-image
  // *before* its first in-place store — so a miss proves no writer has
  // touched the object since the cut, and main holds the cut bytes.
  bool supports_snapshot_reads() const override { return true; }
  Status ReadAt(uint64_t offset, uint64_t size, void* out) override;

  void CompactAfterRecovery() override;

  // True iff a copy of the object at `offset` is resident (test hook).
  bool HasCopy(uint64_t offset) const;
  uint64_t resident_copies() const;
  // Outstanding pin count on the copy at `offset`, 0 if absent (test hook —
  // lets tests assert that abort/error paths released their pins).
  uint32_t PinCount(uint64_t offset) const;
  // Live bytes in the slot allocator (test hook; includes leaked slots until
  // CompactAfterRecovery runs).
  uint64_t slot_bytes_allocated() const { return slot_alloc_->stats().bytes_allocated; }

 private:
  // Persistent lookup-table entry: one cache line, self-validating. Torn
  // writes are detected by the CRC and treated as free at Open().
  struct Entry {
    uint64_t key;         // Main-heap offset of the object.
    uint64_t backup_off;  // Offset of the copy in the backup pool.
    uint64_t size;
    uint64_t state;       // 0 free, 1 valid, 2 tombstone.
    uint64_t crc;         // Over the four fields above.
    uint64_t pad[3];
  };
  static_assert(sizeof(Entry) == 64);

  struct Superblock {
    uint64_t magic;
    uint64_t version;
    uint64_t lookup_buckets;
    uint64_t table_offset;
    uint64_t alloc_offset;
    uint64_t budget_bytes;
    uint64_t checksum;
  };
  static constexpr uint64_t kMagic = 0x4B414D44594E424Bull;  // "KAMDYNBK"

  struct VolatileEntry {
    uint64_t bucket = 0;
    std::list<uint64_t>::iterator lru_it;
    uint32_t pins = 0;
    bool in_lru = false;
  };

  // --- Lock striping ---------------------------------------------------------
  // The volatile index and the persistent lookup table are partitioned into
  // kStripes independent stripes by key hash, each under its own mutex, so a
  // foreground EnsureBackupCopy runs concurrently with background applies on
  // other objects. The LRU stays global (eviction quality) under its own
  // lock. Lock order: stripe -> lru_mu_; a second stripe (an eviction
  // victim's) is only ever try_lock'ed, so the order cannot deadlock. The
  // persistent table is split into per-stripe bucket regions: insert probing
  // never leaves the owning stripe's region, so no two stripes touch the same
  // Entry. Budget accounting is a global atomic; concurrent inserts may
  // overshoot it transiently by at most one object per stripe.
  static constexpr uint64_t kStripes = 16;

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, VolatileEntry> index;
  };

  DynamicBackupStore(nvm::Pool* main, nvm::Pool* backup);

  Status Format(const DynamicBackupOptions& options);
  Status Attach();

  Entry* EntryAt(uint64_t bucket) {
    return reinterpret_cast<Entry*>(static_cast<uint8_t*>(backup_->At(table_offset_)) +
                                    bucket * sizeof(Entry));
  }
  static uint64_t EntryCrc(const Entry& e);
  static uint64_t HashKey(uint64_t key);
  uint64_t StripeFor(uint64_t key) const { return HashKey(key) & (kStripes - 1); }

  // All helpers below require the stripe lock for `key` held.
  // Inserts a copy of main [key, key+size) — allocates a slot (evicting as
  // needed), copies, persists, and publishes the table entry.
  Status InsertCopyLocked(uint64_t key, uint64_t size);
  // Evicts the least-recently-used unpinned copy anywhere in the store.
  // `held_stripe` is the stripe the caller already holds (victims there are
  // removed under the held lock; other stripes are try_lock'ed). False if
  // nothing was evictable.
  bool EvictOneLocked(uint64_t held_stripe);
  // Requires the victim's stripe lock held (== stripe of `key`).
  void RemoveEntryLocked(uint64_t key, VolatileEntry& ve);
  // Finds a free-or-tombstone bucket for `key` by linear probing inside the
  // owning stripe's bucket region.
  Result<uint64_t> FindInsertBucketLocked(uint64_t key);
  // Flush-only roll-forward of one range under its stripe lock; sets
  // `*flushed` when the caller owes a drain. Insert paths persist internally.
  Status ApplyRangeLocked(uint64_t key, uint64_t size, bool* flushed);

  nvm::Pool* main_;
  nvm::Pool* backup_;
  std::unique_ptr<alloc::Allocator> slot_alloc_;  // Internally synchronized.
  uint64_t lookup_buckets_ = 0;
  uint64_t table_offset_ = 0;
  uint64_t budget_bytes_ = 0;
  std::atomic<uint64_t> resident_bytes_{0};

  std::array<Stripe, kStripes> stripes_;

  mutable std::mutex lru_mu_;
  std::list<uint64_t> lru_;  // Front = most recently used. Values are keys.

  std::atomic<uint64_t> ensure_hits_{0};
  std::atomic<uint64_t> ensure_misses_{0};
  std::atomic<uint64_t> applies_{0};
  std::atomic<uint64_t> restores_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> batch_applies_{0};
};

}  // namespace kamino::txn

#endif  // SRC_TXN_BACKUP_STORE_H_
