#include "src/txn/log_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>

#include "src/common/cacheline.h"
#include "src/common/checksum.h"

namespace kamino::txn {

namespace {

// Generation keys make per-thread cache-cell lookups safe across LogManager
// lifetimes: a thread-local entry from a destroyed manager can never match a
// live manager's generation, so its dangling cell pointer is never followed.
std::atomic<uint64_t> g_next_generation{1};

struct TlsCacheEntry {
  uint64_t generation = 0;
  void* cell = nullptr;
};
// Small per-thread table of (manager generation -> cache cell). Eviction is
// round-robin; an evicted entry's cell stays owned (and steal-scannable) by
// its manager, so no slot is ever lost.
constexpr int kTlsCacheEntries = 8;
thread_local TlsCacheEntry t_cells[kTlsCacheEntries];
thread_local uint32_t t_cells_rr = 0;

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

LogManager::LogManager(nvm::Pool* pool, uint64_t region_offset)
    : pool_(pool),
      region_offset_(region_offset),
      generation_(g_next_generation.fetch_add(1, std::memory_order_relaxed)) {}

LogManager::~LogManager() = default;

Result<std::unique_ptr<LogManager>> LogManager::Create(nvm::Pool* pool, uint64_t region_offset,
                                                       uint64_t region_size,
                                                       const LogOptions& options) {
  if (pool == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  auto lm = std::unique_ptr<LogManager>(new LogManager(pool, region_offset));
  Status st = lm->Format(region_size, options);
  if (!st.ok()) {
    return st;
  }
  return lm;
}

Result<std::unique_ptr<LogManager>> LogManager::Open(nvm::Pool* pool, uint64_t region_offset,
                                                     const LogOptions* runtime_options) {
  if (pool == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  auto lm = std::unique_ptr<LogManager>(new LogManager(pool, region_offset));
  if (runtime_options != nullptr) {
    lm->num_stripes_ = runtime_options->freelist_stripes;
    lm->group_commit_window_ns_ = runtime_options->group_commit_window_ns;
    lm->legacy_fences_ = runtime_options->legacy_fences;
    lm->epoch_commit_ = runtime_options->epoch_commit;
  } else {
    lm->num_stripes_ = LogOptions{}.freelist_stripes;
  }
  Status st = lm->Attach();
  if (!st.ok()) {
    return st;
  }
  return lm;
}

void LogManager::InitFreelists(const LogOptions& options) {
  num_stripes_ = std::max<uint64_t>(1, std::min(options.freelist_stripes, num_slots_));
  group_commit_window_ns_ = options.group_commit_window_ns;
  legacy_fences_ = options.legacy_fences;
  // Legacy wins: the pre-PR4 schedule drained everywhere, so the epoch
  // pipeline (which removes drains) would not reproduce it.
  epoch_commit_ = options.epoch_commit && !options.legacy_fences;
  stripes_ = std::make_unique<Stripe[]>(num_stripes_);
  for (uint64_t s = 0; s < num_stripes_; ++s) {
    stripes_[s].head.store(kNilIndex, std::memory_order_relaxed);
  }
  next_ = std::make_unique<std::atomic<uint32_t>[]>(num_slots_);
  for (uint64_t i = 0; i < num_slots_; ++i) {
    next_[i].store(kNilIndex, std::memory_order_relaxed);
  }
}

Status LogManager::Format(uint64_t region_size, const LogOptions& options) {
  if (options.num_slots == 0 || options.max_records == 0) {
    return Status::InvalidArgument("log options must be non-zero");
  }
  if (options.num_slots >= kNilIndex) {
    return Status::InvalidArgument("num_slots exceeds freelist index width");
  }
  const uint64_t min_slot = kSlotHeaderSize + options.max_records * kRecordSize;
  if (options.slot_size < min_slot) {
    return Status::InvalidArgument("slot_size too small for header + records");
  }
  const uint64_t need = kSlotHeaderSize + options.num_slots * options.slot_size;
  if (need > region_size) {
    return Status::InvalidArgument("log region too small for requested slots");
  }
  num_slots_ = options.num_slots;
  slot_size_ = options.slot_size;
  max_records_ = options.max_records;
  InitFreelists(options);

  nvm::PersistSiteScope site("log/format");
  for (uint64_t i = 0; i < num_slots_; ++i) {
    SlotHeader* h = SlotHeaderAt(i);
    h->state = static_cast<uint64_t>(TxState::kFree);
    h->txid = 0;
    pool_->Flush(h, sizeof(SlotHeader));
    PushStripe(HomeStripe(static_cast<uint32_t>(i)), static_cast<uint32_t>(i));
  }
  pool_->Drain();

  auto* hdr = static_cast<LogHeader*>(pool_->At(region_offset_));
  hdr->magic = kMagic;
  hdr->version = 1;
  hdr->num_slots = num_slots_;
  hdr->slot_size = slot_size_;
  hdr->max_records = max_records_;
  hdr->checksum = Crc64(hdr, offsetof(LogHeader, checksum));
  hdr->reconcile_cursor = kReconcileDone;
  hdr->backup_epoch = 0;
  pool_->Persist(hdr, sizeof(LogHeader));
  return Status::Ok();
}

Status LogManager::Attach() {
  const auto* hdr = static_cast<const LogHeader*>(pool_->At(region_offset_));
  if (hdr->magic != kMagic) {
    return Status::Corruption("log header magic mismatch");
  }
  if (hdr->checksum != Crc64(hdr, offsetof(LogHeader, checksum))) {
    return Status::Corruption("log header checksum mismatch");
  }
  num_slots_ = hdr->num_slots;
  slot_size_ = hdr->slot_size;
  max_records_ = hdr->max_records;
  if (num_slots_ == 0 || num_slots_ >= kNilIndex) {
    return Status::Corruption("log header num_slots out of range");
  }
  {
    LogOptions runtime;
    runtime.freelist_stripes = num_stripes_;
    runtime.group_commit_window_ns = group_commit_window_ns_;
    runtime.legacy_fences = legacy_fences_;
    runtime.epoch_commit = epoch_commit_;
    InitFreelists(runtime);
  }

  for (uint64_t i = 0; i < num_slots_; ++i) {
    const SlotHeader* h = SlotHeaderAt(i);
    max_recovered_txid_ = std::max(max_recovered_txid_, h->txid);
    if (static_cast<TxState>(h->state) == TxState::kFree) {
      PushStripe(HomeStripe(static_cast<uint32_t>(i)), static_cast<uint32_t>(i));
    }
    // Non-free slots stay held until recovery resolves them.
  }
  return Status::Ok();
}

uint64_t LogManager::PreferredStripe() const {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % num_stripes_;
}

void LogManager::PushStripe(uint64_t stripe, uint32_t slot) {
  auto& head = stripes_[stripe].head;
  uint64_t old = head.load(std::memory_order_relaxed);
  for (;;) {
    next_[slot].store(static_cast<uint32_t>(old), std::memory_order_relaxed);
    const uint64_t aba = (old >> 32) + 1;
    const uint64_t desired = (aba << 32) | slot;
    if (head.compare_exchange_weak(old, desired, std::memory_order_release,
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

bool LogManager::PopStripe(uint64_t stripe, uint32_t* out) {
  auto& head = stripes_[stripe].head;
  uint64_t old = head.load(std::memory_order_acquire);
  for (;;) {
    const uint32_t index = static_cast<uint32_t>(old);
    if (index == kNilIndex) {
      return false;
    }
    const uint32_t next = next_[index].load(std::memory_order_relaxed);
    const uint64_t aba = (old >> 32) + 1;
    const uint64_t desired = (aba << 32) | next;
    if (head.compare_exchange_weak(old, desired, std::memory_order_acquire,
                                   std::memory_order_acquire)) {
      *out = index;
      return true;
    }
  }
}

bool LogManager::TryPopAnyStripe(uint32_t* out) {
  const uint64_t preferred = PreferredStripe();
  for (uint64_t i = 0; i < num_stripes_; ++i) {
    if (PopStripe((preferred + i) % num_stripes_, out)) {
      return true;
    }
  }
  return false;
}

bool LogManager::StealFromCells(uint32_t* out) {
  std::lock_guard<std::mutex> lk(cells_mu_);
  for (auto& cell : cells_) {
    const uint64_t v = cell->slot.exchange(kNoCachedSlot, std::memory_order_acq_rel);
    if (v != kNoCachedSlot) {
      *out = static_cast<uint32_t>(v);
      return true;
    }
  }
  return false;
}

LogManager::CacheCell* LogManager::FindMyCell() const {
  for (const auto& e : t_cells) {
    if (e.generation == generation_) {
      return static_cast<CacheCell*>(e.cell);
    }
  }
  return nullptr;
}

LogManager::CacheCell* LogManager::MyCellOrRegister() {
  if (CacheCell* cell = FindMyCell()) {
    return cell;
  }
  auto owned = std::make_unique<CacheCell>();
  CacheCell* cell = owned.get();
  {
    std::lock_guard<std::mutex> lk(cells_mu_);
    cells_.push_back(std::move(owned));
  }
  int victim = -1;
  for (int i = 0; i < kTlsCacheEntries; ++i) {
    if (t_cells[i].generation == 0) {
      victim = i;
      break;
    }
  }
  if (victim < 0) {
    victim = static_cast<int>(t_cells_rr++ % kTlsCacheEntries);
  }
  t_cells[victim] = TlsCacheEntry{generation_, cell};
  return cell;
}

Result<SlotHandle> LogManager::AcquireSlot(uint64_t txid) {
  uint32_t index = kNilIndex;
  CacheCell* cell = MyCellOrRegister();
  const uint64_t cached = cell->slot.exchange(kNoCachedSlot, std::memory_order_acq_rel);
  if (cached != kNoCachedSlot) {
    index = static_cast<uint32_t>(cached);
  } else if (!TryPopAnyStripe(&index)) {
    // Slow path: every freelist looked empty. Announce ourselves as a
    // waiter, then re-scan (including other threads' cache cells) — the
    // seq_cst fence pairs with the one in ReleaseSlot so a concurrent
    // releaser either sees waiters_ > 0 (and publishes + notifies) or its
    // publish is visible to our scan.
    const uint64_t t0 = NowNs();
    std::unique_lock<std::mutex> lk(mu_);
    blocked_acquires_.fetch_add(1, std::memory_order_relaxed);
    waiters_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (;;) {
      if (StealFromCells(&index) || TryPopAnyStripe(&index)) {
        break;
      }
      slot_available_.wait(lk);
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    lk.unlock();
    blocked_wait_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  }

  SlotHeader* h = SlotHeaderAt(index);
  // txid and state share one cache line: a single flush covers both. The
  // new txid also invalidates every record left behind by the slot's previous
  // occupant (their txid_tag no longer matches). The header is flushed but
  // not drained: if it never becomes durable, the slot's durably-Free prior
  // header stands and recovery ignores the slot; any later drain (first
  // append, write-set, or commit) makes it durable before it matters.
  h->txid = txid;
  h->state = static_cast<uint64_t>(TxState::kRunning);
  {
    nvm::PersistSiteScope site("log/acquire-slot");
    if (legacy_fences_) {
      pool_->Persist(h, sizeof(SlotHeader));
    } else {
      pool_->Flush(h, sizeof(SlotHeader));
    }
  }

  SlotHandle s;
  s.slot_index = index;
  s.txid = txid;
  return s;
}

uint64_t LogManager::RecordCrc(const Record& r) {
  return Crc64(&r, offsetof(Record, crc));
}

bool LogManager::RecordValid(const Record& r, uint64_t txid, uint64_t index) const {
  if (r.txid_tag != txid) {
    return false;
  }
  const uint64_t kind = r.kind_seq >> 56;
  const uint64_t seq = r.kind_seq & ((1ull << 56) - 1);
  if (kind == 0 || kind > static_cast<uint64_t>(IntentKind::kRedoWrite) || seq != index) {
    return false;
  }
  return r.crc == RecordCrc(r);
}

Status LogManager::AppendRecord(SlotHandle& slot, IntentKind kind, uint64_t offset,
                                uint64_t size, uint64_t aux, bool drain, uint64_t aux2) {
  if (!slot.valid()) {
    return Status::InvalidArgument("append on invalid (released) slot handle");
  }
  if (slot.num_records >= max_records_) {
    return Status::OutOfMemory("intent log slot record capacity exceeded");
  }
  Record* r = RecordAt(slot.slot_index, slot.num_records);
  r->offset = offset;
  r->size = size;
  r->kind_seq = (static_cast<uint64_t>(kind) << 56) | slot.num_records;
  r->aux = aux;
  r->txid_tag = slot.txid;
  r->crc = RecordCrc(*r);
  r->aux2 = aux2;
  {
    nvm::PersistSiteScope site("log/append-intent");
    pool_->Flush(r, kRecordSize);
    if (legacy_fences_) {
      pool_->Drain();
    } else if (drain) {
      if (epoch_commit_) {
        // The intent must still be durable before the caller's first
        // in-place store (rollback must know every range that may have been
        // touched) — but the fence is shared: ride the epoch drain instead
        // of paying a private one.
        EpochRide();
      } else {
        pool_->Drain();
      }
    }
  }
  ++slot.num_records;
  return Status::Ok();
}

void LogManager::DrainAppends() {
  if (legacy_fences_) {
    return;  // Every append already drained individually.
  }
  nvm::PersistSiteScope site("log/append-intent");
  if (epoch_commit_) {
    EpochRide();  // One shared ride covers the whole flushed batch.
    return;
  }
  pool_->Drain();
}

Result<uint64_t> LogManager::ReservePayload(SlotHandle& slot, uint64_t size) {
  const uint64_t aligned = AlignUp(size, kCacheLineSize);
  if (slot.payload_used + aligned > PayloadAreaSize()) {
    return Status::OutOfMemory("intent log slot payload capacity exceeded");
  }
  const uint64_t off = PayloadAreaOffset(slot.slot_index) + slot.payload_used;
  slot.payload_used += aligned;
  return off;
}

void LogManager::SetState(const SlotHandle& slot, TxState state) {
  SlotHeader* h = SlotHeaderAt(slot.slot_index);
  h->state = static_cast<uint64_t>(state);
  if (state != TxState::kCommitted || legacy_fences_) {
    nvm::PersistSiteScope site(state == TxState::kCommitted ? "log/commit-record"
                                                            : "log/abort-record");
    pool_->PersistU64(&h->state);
    return;
  }
  // Group commit: flush our own record, then let one leader drain for the
  // group. A solo committer still emits exactly one flush + one drain here.
  nvm::PersistSiteScope site("log/commit-record");
  pool_->Flush(&h->state, sizeof(uint64_t));
  GroupCommitDrain();
}

void LogManager::SetPrepared(const SlotHandle& slot, uint64_t gtxid, uint64_t coord_shard) {
  SlotHeader* h = SlotHeaderAt(slot.slot_index);
  h->reserved[0] = gtxid;
  h->reserved[1] = coord_shard;
  h->state = static_cast<uint64_t>(TxState::kPrepared);
  // Whole-header persist (not PersistU64 of state alone): slot acquisition
  // only flushed the txid, so this drain is also what makes the txid — and
  // with it every record's txid_tag validity — durable together with the
  // prepared mark.
  nvm::PersistSiteScope site("log/prepare-record");
  pool_->Persist(h, sizeof(SlotHeader));
}

void LogManager::SetDecision(const SlotHandle& slot) {
  SlotHeader* h = SlotHeaderAt(slot.slot_index);
  h->state = static_cast<uint64_t>(TxState::kCommitted);
  nvm::PersistSiteScope site("log/decide-record");
  pool_->PersistU64(&h->state);
}

void LogManager::ResolvePrepared(const RecoveredTx& tx, bool commit) {
  SlotHeader* h = SlotHeaderAt(tx.slot_index);
  h->state = static_cast<uint64_t>(commit ? TxState::kCommitted : TxState::kAborted);
  nvm::PersistSiteScope site("log/resolve-in-doubt");
  pool_->PersistU64(&h->state);
}

void LogManager::GroupCommitDrain() {
  std::unique_lock<std::mutex> lk(gc_mu_);
  // Ticket taken under gc_mu_ strictly after our commit-record flush: any
  // leader that reads cover >= my after this point drains a pool state that
  // already has our record staged.
  const uint64_t my = ++gc_ticket_;
  SequencerWait(lk, my);
  gc_commits_.fetch_add(1, std::memory_order_relaxed);
}

void LogManager::SequencerWait(std::unique_lock<std::mutex>& lk, uint64_t ticket) {
  // The PR 4 regime serializes leaders; the epoch pipeline overlaps two.
  // Drains are overlappable waits (queue drain, not computation), so while
  // epoch N's drain is in flight a newly arrived ticket may elect itself
  // leader of epoch N+1 and start the covering drain immediately — its wait
  // is one drain, not remaining-of-current plus one. Two in flight is the
  // steady-state maximum useful depth: a third leader's cover would be
  // superseded by the second's before its drain could retire anything new.
  const int max_inflight = epoch_commit_ ? 2 : 1;
  // An overlap leader (electing while a drain is in flight) must see at
  // least this many uncovered tickets. Firing on a single ticket minimizes
  // that rider's wait but shrinks every batch to ~1, inflating drains/txn;
  // waiting for a second uncovered ticket restores coalescing at a latency
  // cost of one ticket inter-arrival. The first leader is exempt, so a solo
  // committer still pays exactly one immediate drain.
  constexpr uint64_t kMinOverlapBacklog = 2;
  for (;;) {
    if (gc_durable_ >= ticket) {
      return;
    }
    const bool can_lead =
        gc_drains_inflight_ < max_inflight && gc_cover_pending_ < ticket &&
        (gc_drains_inflight_ == 0 ||
         gc_ticket_ - gc_cover_pending_ >= kMinOverlapBacklog);
    if (can_lead) {
      ++gc_drains_inflight_;
      if (group_commit_window_ns_ > 0) {
        // Bounded coalescing window: give concurrent committers a chance to
        // flush + ticket before we pay the drain. Spurious wakeups just
        // shorten the window, which is harmless.
        gc_cv_.wait_for(lk, std::chrono::nanoseconds(group_commit_window_ns_));
      }
      const uint64_t cover = gc_ticket_;
      gc_cover_pending_ = std::max(gc_cover_pending_, cover);
      lk.unlock();
      if (epoch_commit_) {
        // The epoch boundary: one drain covers every rider's intents, every
        // committer's write set, and their commit marks. Attributed to its
        // own site so the DESIGN.md §8 ledger can prove which drains moved
        // off the per-transaction path.
        nvm::PersistSiteScope site("log/epoch-drain");
        pool_->Drain();
      } else {
        pool_->Drain();  // Attributed to the caller's active site.
      }
      lk.lock();
      // Overlapped drains may retire out of order; cover is monotone in
      // start order (a later drain's cover is a superset), so max() is the
      // durable frontier either way.
      gc_durable_ = std::max(gc_durable_, cover);
      gc_leader_drains_.fetch_add(1, std::memory_order_relaxed);
      // Extract the callback prefix this drain covered; run it outside the
      // lock (callbacks enqueue applier work and take other mutexes). The
      // extraction happens before the lock is released, so no other thread
      // can ever observe a parked callback whose ticket is already durable.
      std::vector<std::pair<uint64_t, std::function<void(uint64_t)>>> ready;
      while (!epoch_callbacks_.empty() && epoch_callbacks_.front().first <= gc_durable_) {
        ready.push_back(std::move(epoch_callbacks_.front()));
        epoch_callbacks_.pop_front();
      }
      --gc_drains_inflight_;
      gc_cv_.notify_all();
      if (!ready.empty()) {
        lk.unlock();
        for (auto& cb : ready) {
          cb.second(cb.first);
        }
        lk.lock();
      }
      continue;  // gc_durable_ >= ticket now holds; return above.
    }
    gc_cv_.wait(lk, [&] {
      return gc_durable_ >= ticket ||
             (gc_drains_inflight_ < max_inflight && gc_cover_pending_ < ticket &&
              (gc_drains_inflight_ == 0 ||
               gc_ticket_ - gc_cover_pending_ >= kMinOverlapBacklog));
    });
  }
}

void LogManager::EpochRide() {
  std::unique_lock<std::mutex> lk(gc_mu_);
  const uint64_t my = ++gc_ticket_;
  SequencerWait(lk, my);
}

void LogManager::SetCommittedChecked(const SlotHandle& slot, uint64_t write_set_crc,
                                     uint64_t range_count) {
  SlotHeader* h = SlotHeaderAt(slot.slot_index);
  // CRC, range count and state live in one 64-byte header line: the flush
  // stages them atomically (a line cannot tear), so recovery sees either the
  // prior state or a fully-formed checked mark — never a mark without its
  // validation data. reserved[0]/[1] stay untouched (2PC gtxid/coordinator).
  h->reserved[2] = write_set_crc;
  h->reserved[3] = range_count;
  h->state = static_cast<uint64_t>(TxState::kEpochCommitted);
  nvm::PersistSiteScope site("log/commit-record");
  pool_->Flush(h, sizeof(SlotHeader));
}

uint64_t LogManager::RegisterEpochCommit(std::function<void(uint64_t)> on_durable) {
  std::unique_lock<std::mutex> lk(gc_mu_);
  // Ticket strictly after the caller's flushes (same argument as
  // GroupCommitDrain): any covering drain has the write set, intents and
  // checked mark staged.
  const uint64_t my = ++gc_ticket_;
  if (on_durable) {
    epoch_callbacks_.emplace_back(my, std::move(on_durable));
  }
  gc_commits_.fetch_add(1, std::memory_order_relaxed);
  // This registration never waits, but it may have just pushed the uncovered
  // backlog past the overlap-leader threshold — wake sleeping candidates so
  // the next epoch's drain starts now rather than at the current one's end.
  gc_cv_.notify_all();
  return my;
}

void LogManager::EpochWait(uint64_t ticket) {
  std::unique_lock<std::mutex> lk(gc_mu_);
  SequencerWait(lk, ticket);
}

void LogManager::DrainEpoch() {
  std::unique_lock<std::mutex> lk(gc_mu_);
  const uint64_t seal = gc_ticket_;
  SequencerWait(lk, seal);
}

void LogManager::ReleaseSlot(SlotHandle& slot) { ReleaseSlots(&slot, 1); }

void LogManager::ReleaseSlots(SlotHandle* slots, size_t count) {
  // The Free headers must be durable before their slots re-enter the
  // freelists, deliberately: once post-commit work (applier copy-back,
  // deferred frees) has happened, recovery must never see a slot as
  // Committed again or it would repeat roll-forward over reused memory. A
  // batch shares one drain across all of its headers — the applier's main
  // fence saving — while a solo release pays exactly one flush + one drain,
  // the same event stream Persist would emit.
  {
    nvm::PersistSiteScope site("log/release-slot");
    size_t flushed = 0;
    for (size_t i = 0; i < count; ++i) {
      if (!slots[i].valid()) {
        continue;
      }
      SlotHeader* h = SlotHeaderAt(slots[i].slot_index);
      h->state = static_cast<uint64_t>(TxState::kFree);
      if (legacy_fences_) {
        pool_->PersistU64(&h->state);
      } else {
        pool_->Flush(&h->state, sizeof(uint64_t));
        ++flushed;
      }
    }
    if (flushed > 0) {
      pool_->Drain();
    }
  }
  for (size_t i = 0; i < count; ++i) {
    if (!slots[i].valid()) {
      continue;
    }
    PublishFreeSlot(static_cast<uint32_t>(slots[i].slot_index));
    slots[i] = SlotHandle{};  // Full reset, txid included: a released handle is dead.
  }
}

void LogManager::PublishFreeSlot(uint32_t index) {
  // Prefer the releasing thread's own cache cell (same-thread release ->
  // acquire keeps slot reuse LIFO and contention-free). Threads that never
  // acquire (appliers) have no cell and publish straight to the stripes.
  CacheCell* cell = FindMyCell();
  bool cached = false;
  if (cell != nullptr) {
    uint64_t expected = kNoCachedSlot;
    cached = cell->slot.compare_exchange_strong(expected, index, std::memory_order_release,
                                                std::memory_order_relaxed);
  }
  if (!cached) {
    PushStripe(HomeStripe(index), index);
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (waiters_.load(std::memory_order_relaxed) > 0) {
    if (cached) {
      // A waiter may have scanned our cell before the store above became
      // visible; move the slot to the shared stripes and re-publish.
      const uint64_t v = cell->slot.exchange(kNoCachedSlot, std::memory_order_acq_rel);
      if (v != kNoCachedSlot) {
        PushStripe(HomeStripe(static_cast<uint32_t>(v)), static_cast<uint32_t>(v));
        std::atomic_thread_fence(std::memory_order_seq_cst);
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
    }
    slot_available_.notify_all();
  }
}

std::vector<RecoveredTx> LogManager::ScanForRecovery() {
  std::vector<RecoveredTx> out;
  for (uint64_t i = 0; i < num_slots_; ++i) {
    const SlotHeader* h = SlotHeaderAt(i);
    const auto state = static_cast<TxState>(h->state);
    if (state == TxState::kFree) {
      continue;
    }
    RecoveredTx tx;
    tx.slot_index = i;
    tx.txid = h->txid;
    tx.state = state;
    if (state == TxState::kPrepared) {
      tx.gtxid = h->reserved[0];
      tx.coord_shard = h->reserved[1];
    }
    for (uint64_t rix = 0; rix < max_records_; ++rix) {
      const Record* r = RecordAt(i, rix);
      if (!RecordValid(*r, h->txid, rix)) {
        // Skip, don't stop: with batched (fence-elided) appends, random
        // cache eviction can persist record k+1 while record k was lost.
        // Records self-validate and txids are never reused, so holes are
        // safe to step over; a fully-drained log still scans as a prefix.
        continue;
      }
      Intent in;
      in.kind = static_cast<IntentKind>(r->kind_seq >> 56);
      in.offset = r->offset;
      in.size = r->size;
      in.aux = r->aux;
      in.aux2 = r->aux2;
      tx.intents.push_back(in);
    }
    if (state == TxState::kEpochCommitted) {
      // The epoch mark shared its drain with the data it covers, so it is
      // only evidence of commit if the data actually made it: recompute the
      // write-set CRC over the main heap. A match proves the heap holds
      // exactly the committed bytes (kWrite/kAlloc intents were durable
      // before their first store, the ranges stayed write-locked until
      // post-apply, and the slot is durably freed before lock release), so
      // roll-forward is safe and atomic. A mismatch means random eviction
      // persisted the mark ahead of torn data — treat as aborted and roll
      // back from the backup. Engines never see state 5.
      uint64_t crc = 0;
      uint64_t ranges = 0;
      for (const Intent& in : tx.intents) {
        if (in.kind == IntentKind::kWrite || in.kind == IntentKind::kAlloc) {
          crc = Crc64(pool_->At(in.offset), in.size, crc);
          ++ranges;
        }
      }
      const bool intact = ranges == h->reserved[3] && crc == h->reserved[2];
      tx.state = intact ? TxState::kCommitted : TxState::kAborted;
    }
    out.push_back(std::move(tx));
  }
  std::sort(out.begin(), out.end(),
            [](const RecoveredTx& a, const RecoveredTx& b) { return a.txid < b.txid; });
  return out;
}

SlotHandle LogManager::HandleForRecovered(const RecoveredTx& tx) const {
  SlotHandle s;
  s.slot_index = tx.slot_index;
  s.txid = tx.txid;
  s.num_records = tx.intents.size();
  return s;
}

std::vector<std::vector<RecoveredTx>> LogManager::PartitionForRecovery(
    std::vector<RecoveredTx> txs, size_t queues) {
  if (queues == 0) {
    queues = 1;
  }
  std::vector<std::vector<RecoveredTx>> out(queues);
  for (auto& tx : txs) {
    size_t q = 0;
    if (!tx.intents.empty()) {
      // Mix the high bits down so queues don't alias on chunk-aligned
      // allocations; any deterministic function of the tx is safe here
      // (disjoint write sets make every partition valid).
      const uint64_t key = tx.intents.front().offset;
      q = static_cast<size_t>((key ^ (key >> 17) ^ (key >> 31)) % queues);
    }
    out[q].push_back(std::move(tx));
  }
  // ScanForRecovery returned txid order; the single forward pass above
  // preserves it within each queue.
  return out;
}

uint64_t LogManager::reconcile_cursor() const {
  const auto* hdr = static_cast<const LogHeader*>(pool_->At(region_offset_));
  return hdr->reconcile_cursor;
}

void LogManager::SetReconcileCursor(uint64_t chunk) {
  nvm::PersistSiteScope site("engine/recover/cursor");
  auto* hdr = static_cast<LogHeader*>(pool_->At(region_offset_));
  hdr->reconcile_cursor = chunk;
  pool_->PersistU64(&hdr->reconcile_cursor);
}

uint64_t LogManager::backup_epoch() const {
  std::lock_guard<std::mutex> lk(epoch_stamp_mu_);
  const auto* hdr = static_cast<const LogHeader*>(pool_->At(region_offset_));
  return hdr->backup_epoch;
}

void LogManager::SetBackupEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lk(epoch_stamp_mu_);
  auto* hdr = static_cast<LogHeader*>(pool_->At(region_offset_));
  if (epoch <= hdr->backup_epoch) {
    return;  // A faster batch already published a larger frontier.
  }
  nvm::PersistSiteScope site("backup/cut");
  hdr->backup_epoch = epoch;
  pool_->PersistU64(&hdr->backup_epoch);
}

LogStats LogManager::stats() const {
  LogStats s;
  s.blocked_acquires = blocked_acquires_.load(std::memory_order_relaxed);
  s.blocked_wait_ns = blocked_wait_ns_.load(std::memory_order_relaxed);
  s.group_commit_commits = gc_commits_.load(std::memory_order_relaxed);
  s.group_commit_leader_drains = gc_leader_drains_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace kamino::txn
