#include "src/txn/log_manager.h"

#include <algorithm>
#include <cstring>

#include "src/common/cacheline.h"
#include "src/common/checksum.h"

namespace kamino::txn {

LogManager::LogManager(nvm::Pool* pool, uint64_t region_offset)
    : pool_(pool), region_offset_(region_offset) {}

Result<std::unique_ptr<LogManager>> LogManager::Create(nvm::Pool* pool, uint64_t region_offset,
                                                       uint64_t region_size,
                                                       const LogOptions& options) {
  if (pool == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  auto lm = std::unique_ptr<LogManager>(new LogManager(pool, region_offset));
  Status st = lm->Format(region_size, options);
  if (!st.ok()) {
    return st;
  }
  return lm;
}

Result<std::unique_ptr<LogManager>> LogManager::Open(nvm::Pool* pool, uint64_t region_offset) {
  if (pool == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  auto lm = std::unique_ptr<LogManager>(new LogManager(pool, region_offset));
  Status st = lm->Attach();
  if (!st.ok()) {
    return st;
  }
  return lm;
}

Status LogManager::Format(uint64_t region_size, const LogOptions& options) {
  if (options.num_slots == 0 || options.max_records == 0) {
    return Status::InvalidArgument("log options must be non-zero");
  }
  const uint64_t min_slot = kSlotHeaderSize + options.max_records * kRecordSize;
  if (options.slot_size < min_slot) {
    return Status::InvalidArgument("slot_size too small for header + records");
  }
  const uint64_t need = kSlotHeaderSize + options.num_slots * options.slot_size;
  if (need > region_size) {
    return Status::InvalidArgument("log region too small for requested slots");
  }
  num_slots_ = options.num_slots;
  slot_size_ = options.slot_size;
  max_records_ = options.max_records;

  nvm::PersistSiteScope site("log/format");
  for (uint64_t i = 0; i < num_slots_; ++i) {
    SlotHeader* h = SlotHeaderAt(i);
    h->state = static_cast<uint64_t>(TxState::kFree);
    h->txid = 0;
    pool_->Flush(h, sizeof(SlotHeader));
    free_slots_.push_back(i);
  }
  pool_->Drain();

  auto* hdr = static_cast<LogHeader*>(pool_->At(region_offset_));
  hdr->magic = kMagic;
  hdr->version = 1;
  hdr->num_slots = num_slots_;
  hdr->slot_size = slot_size_;
  hdr->max_records = max_records_;
  hdr->checksum = Crc64(hdr, offsetof(LogHeader, checksum));
  pool_->Persist(hdr, sizeof(LogHeader));
  return Status::Ok();
}

Status LogManager::Attach() {
  const auto* hdr = static_cast<const LogHeader*>(pool_->At(region_offset_));
  if (hdr->magic != kMagic) {
    return Status::Corruption("log header magic mismatch");
  }
  if (hdr->checksum != Crc64(hdr, offsetof(LogHeader, checksum))) {
    return Status::Corruption("log header checksum mismatch");
  }
  num_slots_ = hdr->num_slots;
  slot_size_ = hdr->slot_size;
  max_records_ = hdr->max_records;

  for (uint64_t i = 0; i < num_slots_; ++i) {
    const SlotHeader* h = SlotHeaderAt(i);
    max_recovered_txid_ = std::max(max_recovered_txid_, h->txid);
    if (static_cast<TxState>(h->state) == TxState::kFree) {
      free_slots_.push_back(i);
    }
    // Non-free slots stay held until recovery resolves them.
  }
  return Status::Ok();
}

Result<SlotHandle> LogManager::AcquireSlot(uint64_t txid) {
  uint64_t index;
  {
    std::unique_lock<std::mutex> lk(mu_);
    slot_available_.wait(lk, [&] { return !free_slots_.empty(); });
    index = free_slots_.back();
    free_slots_.pop_back();
  }
  SlotHeader* h = SlotHeaderAt(index);
  // txid and state share one cache line: a single persist covers both. The
  // new txid also invalidates every record left behind by the slot's previous
  // occupant (their txid_tag no longer matches).
  h->txid = txid;
  h->state = static_cast<uint64_t>(TxState::kRunning);
  {
    nvm::PersistSiteScope site("log/acquire-slot");
    pool_->Persist(h, sizeof(SlotHeader));
  }

  SlotHandle s;
  s.slot_index = index;
  s.txid = txid;
  return s;
}

uint64_t LogManager::RecordCrc(const Record& r) {
  return Crc64(&r, offsetof(Record, crc));
}

bool LogManager::RecordValid(const Record& r, uint64_t txid, uint64_t index) const {
  if (r.txid_tag != txid) {
    return false;
  }
  const uint64_t kind = r.kind_seq >> 56;
  const uint64_t seq = r.kind_seq & ((1ull << 56) - 1);
  if (kind == 0 || kind > static_cast<uint64_t>(IntentKind::kRedoWrite) || seq != index) {
    return false;
  }
  return r.crc == RecordCrc(r);
}

Status LogManager::AppendRecord(SlotHandle& slot, IntentKind kind, uint64_t offset,
                                uint64_t size, uint64_t aux, bool drain) {
  if (slot.num_records >= max_records_) {
    return Status::OutOfMemory("intent log slot record capacity exceeded");
  }
  Record* r = RecordAt(slot.slot_index, slot.num_records);
  r->offset = offset;
  r->size = size;
  r->kind_seq = (static_cast<uint64_t>(kind) << 56) | slot.num_records;
  r->aux = aux;
  r->txid_tag = slot.txid;
  r->crc = RecordCrc(*r);
  {
    nvm::PersistSiteScope site("log/append-intent");
    pool_->Flush(r, kRecordSize);
    if (drain) {
      pool_->Drain();
    }
  }
  ++slot.num_records;
  return Status::Ok();
}

Result<uint64_t> LogManager::ReservePayload(SlotHandle& slot, uint64_t size) {
  const uint64_t aligned = AlignUp(size, kCacheLineSize);
  if (slot.payload_used + aligned > PayloadAreaSize()) {
    return Status::OutOfMemory("intent log slot payload capacity exceeded");
  }
  const uint64_t off = PayloadAreaOffset(slot.slot_index) + slot.payload_used;
  slot.payload_used += aligned;
  return off;
}

void LogManager::SetState(const SlotHandle& slot, TxState state) {
  SlotHeader* h = SlotHeaderAt(slot.slot_index);
  h->state = static_cast<uint64_t>(state);
  nvm::PersistSiteScope site(state == TxState::kCommitted ? "log/commit-record"
                                                          : "log/abort-record");
  pool_->PersistU64(&h->state);
}

void LogManager::ReleaseSlot(SlotHandle& slot) {
  if (!slot.valid()) {
    return;
  }
  SlotHeader* h = SlotHeaderAt(slot.slot_index);
  h->state = static_cast<uint64_t>(TxState::kFree);
  {
    nvm::PersistSiteScope site("log/release-slot");
    pool_->PersistU64(&h->state);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    free_slots_.push_back(slot.slot_index);
  }
  slot_available_.notify_one();
  slot.slot_index = ~0ull;
  slot.num_records = 0;
  slot.payload_used = 0;
}

std::vector<RecoveredTx> LogManager::ScanForRecovery() {
  std::vector<RecoveredTx> out;
  for (uint64_t i = 0; i < num_slots_; ++i) {
    const SlotHeader* h = SlotHeaderAt(i);
    const auto state = static_cast<TxState>(h->state);
    if (state == TxState::kFree) {
      continue;
    }
    RecoveredTx tx;
    tx.slot_index = i;
    tx.txid = h->txid;
    tx.state = state;
    for (uint64_t rix = 0; rix < max_records_; ++rix) {
      const Record* r = RecordAt(i, rix);
      if (!RecordValid(*r, h->txid, rix)) {
        break;  // First invalid record ends the sequence.
      }
      Intent in;
      in.kind = static_cast<IntentKind>(r->kind_seq >> 56);
      in.offset = r->offset;
      in.size = r->size;
      in.aux = r->aux;
      tx.intents.push_back(in);
    }
    out.push_back(std::move(tx));
  }
  std::sort(out.begin(), out.end(),
            [](const RecoveredTx& a, const RecoveredTx& b) { return a.txid < b.txid; });
  return out;
}

SlotHandle LogManager::HandleForRecovered(const RecoveredTx& tx) const {
  SlotHandle s;
  s.slot_index = tx.slot_index;
  s.txid = tx.txid;
  s.num_records = tx.intents.size();
  return s;
}

}  // namespace kamino::txn
