// Per-transaction volatile state shared between the public Tx API and the
// atomicity engines.

#ifndef SRC_TXN_TX_CONTEXT_H_
#define SRC_TXN_TX_CONTEXT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/txn/log_manager.h"

namespace kamino::txn {

struct TxContext {
  uint64_t txid = 0;

  // Intent-log slot (invalid for the no-logging engine).
  SlotHandle slot;

  // Volatile mirror of the slot's records, in append order.
  std::vector<Intent> intents;

  // Write-lock keys held by this transaction, in acquisition order. For the
  // Kamino engines these are released by the async applier, not at commit.
  std::vector<uint64_t> write_lock_keys;

  // Read-lock keys; always released at commit/abort time.
  std::vector<uint64_t> read_lock_keys;

  // offset -> index into `intents`, for deduplicating repeated OpenWrite /
  // detecting writes to objects allocated in this transaction.
  std::unordered_map<uint64_t, size_t> open_ranges;

  // Set at commit when the context is handed to the Transaction Coordinator;
  // the applier records now - this into the commit->applied lag histogram.
  uint64_t commit_enqueue_ns = 0;

  // Epoch pipeline (LogOptions::epoch_commit): the durability ticket of the
  // epoch whose drain covered this commit, set by the durability callback
  // just before the context is enqueued for apply. 0 = committed outside the
  // epoch pipeline. Observability only — appliers never act on it.
  uint64_t epoch_ticket = 0;

  bool active = true;

  // Cross-shard 2PC (DESIGN.md §11). `prepared` is set once the engine has
  // durably persisted the prepared record; `decided` marks a coordinator
  // context whose slot already carries the durable decision record, so
  // FinishPrepared must not persist a second commit mark for it.
  bool prepared = false;
  bool decided = false;
  uint64_t gtxid = 0;
  uint64_t coord_shard = ~0ull;
};

}  // namespace kamino::txn

#endif  // SRC_TXN_TX_CONTEXT_H_
