#include "src/txn/dirty_map.h"

#include <algorithm>

#include "src/stats/histogram.h"

namespace kamino::txn {

DirtyMap::DirtyMap(uint64_t base, uint64_t size, uint64_t chunk_bytes)
    : base_(base), chunk_bytes_(chunk_bytes == 0 ? 1ull << 20 : chunk_bytes) {
  num_chunks_ = (size + chunk_bytes_ - 1) / chunk_bytes_;
  state_ = std::make_unique<std::atomic<uint8_t>[]>(num_chunks_);
  for (uint64_t i = 0; i < num_chunks_; ++i) {
    state_[i].store(kDirty, std::memory_order_relaxed);
  }
  dirty_remaining_.store(num_chunks_, std::memory_order_relaxed);
}

void DirtyMap::MarkCleanInitial(uint64_t chunk) {
  if (chunk >= num_chunks_ || state_[chunk].load(std::memory_order_relaxed) == kClean) {
    return;
  }
  state_[chunk].store(kClean, std::memory_order_relaxed);
  dirty_remaining_.fetch_sub(1, std::memory_order_relaxed);
}

void DirtyMap::Seal() {
  std::lock_guard<std::mutex> lk(mu_);
  while (frontier_ < num_chunks_ &&
         state_[frontier_].load(std::memory_order_relaxed) == kClean) {
    ++frontier_;
  }
  scan_cursor_ = frontier_;
  initially_dirty_ = dirty_remaining_.load(std::memory_order_relaxed);
}

bool DirtyMap::IsClean(uint64_t offset, uint64_t size) const {
  if (num_chunks_ == 0 || offset < base_ || size == 0) {
    return true;
  }
  const uint64_t first = chunk_of(offset);
  const uint64_t last = std::min(chunk_of(offset + size - 1), num_chunks_ - 1);
  for (uint64_t c = first; c <= last && c < num_chunks_; ++c) {
    if (state_[c].load(std::memory_order_acquire) != kClean) {
      return false;
    }
  }
  return true;
}

Status DirtyMap::ReconcileClaimedLocked(std::unique_lock<std::mutex>& lk, uint64_t chunk,
                                        const ReconcileFn& fn) {
  lk.unlock();
  Status st = fn(chunk);
  lk.lock();
  FinishChunkLocked(chunk, st.ok());
  return st;
}

Status DirtyMap::EnsureClean(uint64_t offset, uint64_t size, const ReconcileFn& fn) {
  if (IsClean(offset, size)) {
    return Status::Ok();
  }
  const uint64_t t0 = stats::NowNanos();
  fence_waits_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t first = offset < base_ ? 0 : chunk_of(offset);
  const uint64_t last = std::min(chunk_of(offset + size - 1), num_chunks_ - 1);
  Status result = Status::Ok();
  std::unique_lock<std::mutex> lk(mu_);
  for (uint64_t c = first; c <= last; ++c) {
    for (;;) {
      const uint8_t s = state_[c].load(std::memory_order_relaxed);
      if (s == kClean) {
        break;
      }
      if (s == kDirty) {
        state_[c].store(kReconciling, std::memory_order_relaxed);
        ondemand_reconciles_.fetch_add(1, std::memory_order_relaxed);
        Status st = ReconcileClaimedLocked(lk, c, fn);
        if (!st.ok()) {
          if (result.ok()) {
            result = st;
          }
          break;  // Left dirty; report rather than spin on a failing chunk.
        }
        continue;  // Re-check: FinishChunkLocked marked it clean.
      }
      // Someone else is reconciling this chunk; wait for the verdict.
      cv_.wait(lk);
    }
  }
  lk.unlock();
  fence_wait_ns_.fetch_add(stats::NowNanos() - t0, std::memory_order_relaxed);
  return result;
}

bool DirtyMap::ClaimNext(uint64_t* chunk) {
  std::lock_guard<std::mutex> lk(mu_);
  for (uint64_t c = scan_cursor_; c < num_chunks_; ++c) {
    if (state_[c].load(std::memory_order_relaxed) == kDirty) {
      state_[c].store(kReconciling, std::memory_order_relaxed);
      scan_cursor_ = c + 1;
      *chunk = c;
      return true;
    }
  }
  // Wrap once: a failed reconcile may have re-dirtied a chunk behind us.
  for (uint64_t c = frontier_; c < scan_cursor_ && c < num_chunks_; ++c) {
    if (state_[c].load(std::memory_order_relaxed) == kDirty) {
      state_[c].store(kReconciling, std::memory_order_relaxed);
      scan_cursor_ = c + 1;
      *chunk = c;
      return true;
    }
  }
  return false;
}

void DirtyMap::FinishChunk(uint64_t chunk, bool ok) {
  std::lock_guard<std::mutex> lk(mu_);
  FinishChunkLocked(chunk, ok);
}

void DirtyMap::FinishChunkLocked(uint64_t chunk, bool ok) {
  // Publish with release so a fencing thread's lock-free IsClean fast path
  // observing kClean also observes the reconciled backup bytes.
  state_[chunk].store(ok ? kClean : kDirty, std::memory_order_release);
  if (ok) {
    dirty_remaining_.fetch_sub(1, std::memory_order_release);
    while (frontier_ < num_chunks_ &&
           state_[frontier_].load(std::memory_order_relaxed) == kClean) {
      ++frontier_;
    }
  }
  cv_.notify_all();
}

uint64_t DirtyMap::clean_frontier() const {
  std::lock_guard<std::mutex> lk(mu_);
  return frontier_;
}

DirtyMapStats DirtyMap::stats() const {
  DirtyMapStats s;
  s.total_chunks = num_chunks_;
  s.initially_dirty = initially_dirty_;
  s.dirty_remaining = dirty_remaining_.load(std::memory_order_relaxed);
  s.fence_waits = fence_waits_.load(std::memory_order_relaxed);
  s.fence_wait_ns = fence_wait_ns_.load(std::memory_order_relaxed);
  s.ondemand_reconciles = ondemand_reconciles_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace kamino::txn
