// Undo-logging engine — a faithful reimplementation of NVML/libpmemobj's
// atomicity scheme (the paper's baseline throughout §7).
//
// TX_ADD copies the object's *entire current payload* into the undo log in
// the critical path, persists the snapshot and its record, and only then
// lets the transaction edit in place. Commit discards the undo data; abort
// (and recovery of incomplete transactions) copies the snapshots back. The
// allocation, indexing, copying and deallocation of these snapshots is
// exactly the overhead Kamino-Tx removes from the critical path (paper §1).

#ifndef SRC_TXN_UNDO_ENGINE_H_
#define SRC_TXN_UNDO_ENGINE_H_

#include "src/txn/engine_base.h"

namespace kamino::txn {

class UndoLogEngine : public EngineBase {
 public:
  UndoLogEngine(heap::Heap* heap, LogManager* log, LockManager* locks)
      : EngineBase(heap, log, locks) {}

  EngineType type() const override { return EngineType::kUndoLog; }

  Status Begin(TxContext* ctx) override;
  Result<void*> OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) override;
  Status OpenWriteBatch(TxContext* ctx, const WriteSpan* spans, size_t count,
                        void** out) override;
  Result<uint64_t> Alloc(TxContext* ctx, uint64_t size) override;
  Status Free(TxContext* ctx, uint64_t offset) override;
  Status Commit(std::unique_ptr<TxContext> ctx) override;
  Status Abort(TxContext* ctx) override;
  Status Recover() override;
};

}  // namespace kamino::txn

#endif  // SRC_TXN_UNDO_ENGINE_H_
