// Copy-on-write engine — the second classical baseline (paper §1, Figure 2
// middle; the NVM-CoW scheme of Arulraj et al. discussed in §2).
//
// TX_ADD allocates a persistent shadow copy in the critical path and returns
// a pointer to it; the transaction edits the shadow. At commit the shadows
// are persisted, the commit record flips, and the shadows are installed over
// the originals (a redo step that recovery can replay). Abort just deletes
// the shadows. The critical-path costs are the shadow allocation + copy —
// again exactly what Kamino-Tx eliminates.

#ifndef SRC_TXN_COW_ENGINE_H_
#define SRC_TXN_COW_ENGINE_H_

#include "src/txn/engine_base.h"

namespace kamino::txn {

class CowEngine : public EngineBase {
 public:
  CowEngine(heap::Heap* heap, LogManager* log, LockManager* locks)
      : EngineBase(heap, log, locks) {}

  EngineType type() const override { return EngineType::kCow; }

  Status Begin(TxContext* ctx) override;
  // Returns a pointer to the *shadow* copy: all edits (and reads of the
  // object within this transaction) must go through it.
  Result<void*> OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) override;
  Status OpenWriteBatch(TxContext* ctx, const WriteSpan* spans, size_t count,
                        void** out) override;
  Result<uint64_t> Alloc(TxContext* ctx, uint64_t size) override;
  Status Free(TxContext* ctx, uint64_t offset) override;
  Status Commit(std::unique_ptr<TxContext> ctx) override;
  Status Abort(TxContext* ctx) override;
  Status Recover() override;
};

}  // namespace kamino::txn

#endif  // SRC_TXN_COW_ENGINE_H_
