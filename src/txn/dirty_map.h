// Dirty map for online backup reconciliation (DESIGN.md §10).
//
// After crash-log replay the engine may open for traffic before the backup
// mirror has been re-verified against the main heap. The dirty map tracks,
// at a fixed chunk granularity over the allocator region, which chunks'
// backup copies are not yet known consistent. Operations about to modify a
// range first fence on it: a clean chunk costs one relaxed atomic load; a
// dirty chunk is reconciled on demand by the fencing thread (or the thread
// waits for the background worker already reconciling it). Chunks only ever
// move dirty -> reconciling -> clean, never back, so the fast path is
// monotone: once an op has seen a chunk clean it stays clean.
//
// The map itself is volatile; crash-resumability comes from the engine
// persisting the contiguous clean frontier (chunks [0, frontier) clean) into
// the log header after every background advance. Chunks reconciled on demand
// beyond the frontier are simply re-reconciled after a crash — reconcile is
// idempotent (main is authoritative), so that only costs work, never
// correctness.

#ifndef SRC_TXN_DIRTY_MAP_H_
#define SRC_TXN_DIRTY_MAP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "src/common/status.h"

namespace kamino::txn {

struct DirtyMapStats {
  uint64_t total_chunks = 0;
  uint64_t initially_dirty = 0;       // Dirty when the map was armed.
  uint64_t dirty_remaining = 0;       // Dirty or reconciling, now.
  uint64_t fence_waits = 0;           // EnsureClean calls that had to block.
  uint64_t fence_wait_ns = 0;         // Total time fenced ops spent blocked.
  uint64_t ondemand_reconciles = 0;   // Chunks reconciled by fencing threads.
};

class DirtyMap {
 public:
  // Reconciles one chunk (index into this map); invoked either by a fencing
  // thread (on demand) or a background worker. Must be idempotent.
  using ReconcileFn = std::function<Status(uint64_t chunk)>;

  // Covers [base, base + size) in chunks of `chunk_bytes` (last one may be
  // partial). All chunks start dirty.
  DirtyMap(uint64_t base, uint64_t size, uint64_t chunk_bytes);

  uint64_t num_chunks() const { return num_chunks_; }
  uint64_t chunk_of(uint64_t offset) const { return (offset - base_) / chunk_bytes_; }

  // Pre-arm only (single-threaded): marks a chunk clean without reconciling
  // it — chunks with no live objects, or below a persisted resume frontier.
  void MarkCleanInitial(uint64_t chunk);
  // Call once pre-arm marking is done; records initially_dirty.
  void Seal();

  // True iff every chunk overlapping [offset, offset+size) is clean. The
  // fast path for fences; lock-free.
  bool IsClean(uint64_t offset, uint64_t size) const;

  // Fences [offset, offset+size): reconciles every overlapping dirty chunk
  // via `fn` (claiming it) or waits for whoever is already reconciling it.
  // Returns the first reconcile error, leaving failed chunks dirty.
  Status EnsureClean(uint64_t offset, uint64_t size, const ReconcileFn& fn);

  // Background drain: claims the lowest-indexed dirty chunk. False if no
  // chunk is claimable (all clean or being reconciled by others).
  bool ClaimNext(uint64_t* chunk);
  // Completes a claimed chunk: clean on ok, back to dirty on failure.
  void FinishChunk(uint64_t chunk, bool ok);

  bool all_clean() const { return dirty_remaining_.load(std::memory_order_acquire) == 0; }
  // Chunks [0, clean_frontier()) are all clean (persistable resume point).
  uint64_t clean_frontier() const;

  DirtyMapStats stats() const;

 private:
  // Chunk lifecycle; transitions happen under mu_, reads may be lock-free.
  enum State : uint8_t { kDirty = 0, kReconciling = 1, kClean = 2 };

  // Reconciles `chunk` (caller has claimed it under mu_, which is held by
  // `lk` and released around fn). Returns fn's status.
  Status ReconcileClaimedLocked(std::unique_lock<std::mutex>& lk, uint64_t chunk,
                                const ReconcileFn& fn);
  void FinishChunkLocked(uint64_t chunk, bool ok);

  const uint64_t base_;
  const uint64_t chunk_bytes_;
  uint64_t num_chunks_ = 0;

  std::unique_ptr<std::atomic<uint8_t>[]> state_;
  std::atomic<uint64_t> dirty_remaining_{0};
  uint64_t initially_dirty_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t frontier_ = 0;     // Chunks [0, frontier_) clean.
  uint64_t scan_cursor_ = 0;  // ClaimNext resumes scanning here.

  std::atomic<uint64_t> fence_waits_{0};
  std::atomic<uint64_t> fence_wait_ns_{0};
  std::atomic<uint64_t> ondemand_reconciles_{0};
};

}  // namespace kamino::txn

#endif  // SRC_TXN_DIRTY_MAP_H_
