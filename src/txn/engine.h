// The atomicity-engine interface.
//
// All five engines sit behind the same NVML-shaped transactional API (paper
// Table 2): they differ only in what declaring a write intent, committing,
// aborting and recovering do. This mirrors the paper's deployment story —
// "any application that works with NVML just needs to be re-linked to work
// with Kamino-Tx" — and keeps baseline comparisons honest: every code path
// outside the atomicity mechanism is identical.
//
//   KaminoSimpleEngine   in-place updates, full asynchronous backup (§3).
//   KaminoDynamicEngine  in-place updates, partial (α) backup (§4).
//   UndoLogEngine        NVML-faithful undo logging: object snapshots copied
//                        into the log in the critical path.
//   CowEngine            copy-on-write: edits go to shadow copies installed
//                        at commit.
//   NoLoggingEngine      no atomicity (Figure 1's "No Logging" bound).

#ifndef SRC_TXN_ENGINE_H_
#define SRC_TXN_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/nvm/pool.h"
#include "src/txn/tx_context.h"

namespace kamino::txn {

enum class EngineType {
  kKaminoSimple,
  kKaminoDynamic,
  kUndoLog,
  kCow,
  kRedoLog,
  kNoLogging,
  // Kamino-Tx-Chain non-head replica (paper §5): in-place updates with
  // intent logging but NO local backup — the chain neighbours serve as the
  // copies to roll forward/back during recovery, so local aborts are not
  // supported (only committed transactions are admitted downstream).
  kChainReplica,
};

const char* EngineTypeName(EngineType type);

// Knobs for the two-phase recovery pipeline (parallel log replay + online
// backup reconciliation). Defaults reproduce the classic behaviour exactly:
// single-threaded replay, fully offline, no backup re-verification — and,
// crucially, the same persistence-event stream, so crash-point ordinals
// recorded against the old recovery remain valid.
struct RecoveryOptions {
  // Recovery workers replaying disjoint partitions of the intent log. The
  // disjoint-write-set invariant (DESIGN.md §6) makes any partition of the
  // recovered transactions safe to replay in parallel. 1 = inline replay on
  // the recovering thread (deterministic event stream).
  int workers = 1;

  // Online recovery: committed-but-unapplied transactions are handed to the
  // applier pool (under re-acquired write locks) instead of rolled forward
  // inline, and backup reconciliation (if any) drains in the background
  // while the engine serves traffic. Operations touching a not-yet-
  // reconciled range block on the dirty map until it is clean.
  bool online = false;

  // Re-verify the full backup mirror against the main heap after replay
  // (main -> backup copy of every allocated object), tracked by a persistent
  // dirty map so the sweep is crash-resumable. This is the untrusted-backup
  // restart model (e.g. a promoted chain head); offline it runs before the
  // engine opens, online it drains in the background behind the dirty-map
  // fence. Meaningful for the full (mirror) backup; the dynamic store's
  // persistent table is already authoritative after replay.
  bool reconcile_backup = false;

  // Background reconcile threads (online mode only).
  int reconcile_workers = 1;

  // Dirty-map granularity over the allocator region.
  uint64_t reconcile_chunk_bytes = 1ull << 20;
};

struct EngineStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t applied = 0;        // Transactions fully synced to the backup.
  uint64_t recovered_forward = 0;
  uint64_t recovered_back = 0;

  // Transaction Coordinator pipeline (Kamino engines only; zero elsewhere).
  uint64_t applier_queue_depth = 0;  // Committed but not yet applied, now.
  uint64_t apply_batches = 0;        // Batched backup applies issued.
  uint64_t coalesced_ranges = 0;     // Ranges merged away inside batches.
  uint64_t apply_lag_p50_ns = 0;     // Commit-enqueue -> fully-applied lag.
  uint64_t apply_lag_p99_ns = 0;
  uint64_t apply_lag_max_ns = 0;

  // Backup-epoch read model (Kamino engines only; zero elsewhere). See
  // DESIGN.md §12.
  uint64_t backup_epoch = 0;             // Durable backup-read cut stamp.
  uint64_t backup_read_hits = 0;         // Snapshot reads served from backup.
  uint64_t backup_read_misses = 0;       // Epoch-checked main-heap fallbacks.
  uint64_t backup_snapshot_views = 0;    // SnapshotViews opened.
  uint64_t backup_cut_fence_waits = 0;   // Views that blocked on an apply batch.
  uint64_t backup_cut_fence_wait_ns = 0; // Total reader time at the cut gate.

  // Commit critical path (engines with an intent log; zero elsewhere).
  uint64_t log_blocked_acquires = 0;   // Slot acquisitions that had to block.
  uint64_t log_blocked_wait_ns = 0;    // Total time blocked on slot backpressure.
  uint64_t group_commit_commits = 0;   // Commits durably covered by a group drain.
  uint64_t group_commit_leader_drains = 0;  // Drains leaders actually issued.

  // Recovery pipeline observability (engines with recovery work; zero
  // elsewhere). See DESIGN.md §10.
  uint64_t recovery_replay_ns = 0;          // Wall time of the replay phase.
  std::vector<uint64_t> recovery_worker_ns; // Per-recovery-worker wall time.
  uint64_t recovery_reconciled_bytes = 0;   // main -> backup bytes re-copied.
  uint64_t recovery_dirty_chunks = 0;       // Dirty-map size at open.
  uint64_t recovery_dirty_chunks_left = 0;  // Not yet reconciled, now.
  uint64_t recovery_fence_waits = 0;        // Ops that blocked on a dirty range.
  uint64_t recovery_fence_wait_ns = 0;      // Total time ops spent fenced.
  uint64_t recovery_ondemand_reconciles = 0;  // Chunks reconciled by fenced ops.

  // Per-PersistSiteScope flush/drain breakdown of the main pool (requires
  // PoolOptions::track_stats). See DESIGN.md §8.
  std::vector<nvm::PoolSiteStats> persist_sites;
};

// One span of a multi-intent write declaration (OpenWriteBatch).
struct WriteSpan {
  uint64_t offset = 0;
  uint64_t size = 0;  // 0 = the whole object at `offset`.
};

// Durability receipt of a CommitAsync (epoch pipeline, DESIGN.md §8): the
// transaction is committed in DRAM order when CommitAsync returns, but its
// acknowledgement — TxManager::WaitCommitDurable(ack) — blocks until the
// epoch drain covering the commit has completed. ticket == 0 means the
// commit was already durable at return (read-only transactions, engines
// without an epoch pipeline, LogOptions::epoch_commit off).
struct CommitAck {
  uint64_t ticket = 0;
};

class AtomicityEngine {
 public:
  virtual ~AtomicityEngine() = default;

  virtual EngineType type() const = 0;

  // Attaches engine resources to a fresh transaction.
  virtual Status Begin(TxContext* ctx) = 0;

  // Declares write intent on [offset, offset+size) and returns the pointer
  // through which the caller must perform the writes (the in-place location
  // for in-place engines; the shadow copy for CoW). Blocks if the range is
  // part of another transaction's pending set (dependent transaction).
  virtual Result<void*> OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) = 0;

  // Declares write intent on `count` spans at once, returning each span's
  // write-through pointer in `out[i]`. Logging engines override this to
  // flush one intent record per span but pay a single drain for the whole
  // batch ("N flushes, one fence") before any in-place store can happen.
  // The default is the unbatched loop.
  virtual Status OpenWriteBatch(TxContext* ctx, const WriteSpan* spans, size_t count,
                                void** out) {
    for (size_t i = 0; i < count; ++i) {
      Result<void*> p = OpenWrite(ctx, spans[i].offset, spans[i].size);
      if (!p.ok()) {
        return p.status();
      }
      out[i] = *p;
    }
    return Status::Ok();
  }

  // Transactionally allocates `size` bytes. The new object is write-locked
  // and rolled back (freed) if the transaction does not commit.
  virtual Result<uint64_t> Alloc(TxContext* ctx, uint64_t size) = 0;

  // Transactionally frees the object at `offset`; takes effect only if the
  // transaction commits.
  virtual Status Free(TxContext* ctx, uint64_t offset) = 0;

  // Commits. Takes ownership of the context: the Kamino engines hand it to
  // the asynchronous applier, which later syncs the backup and releases the
  // write locks; other engines resolve everything inline. Durable on return.
  virtual Status Commit(std::unique_ptr<TxContext> ctx) = 0;

  // Epoch-pipeline commit: returns at DRAM-commit and fills `ack` with the
  // epoch durability ticket; the caller acknowledges only after
  // WaitCommitDurable(ack). Dependent transactions are safe without waiting:
  // write locks release only after the (durability-gated) backup apply, so
  // any txn the lock table marks as reading the write set blocks on the
  // epoch ticket structurally. Engines without an epoch pipeline are fully
  // durable on return and fill ticket 0.
  virtual Status CommitAsync(std::unique_ptr<TxContext> ctx, CommitAck* ack) {
    if (ack != nullptr) {
      ack->ticket = 0;
    }
    return Commit(std::move(ctx));
  }

  // Aborts, rolling back every declared intent, and releases all locks.
  virtual Status Abort(TxContext* ctx) = 0;

  // --- Cross-shard 2PC (Kamino engines only; see DESIGN.md §11) -------------
  // Prepare: flush the write set and durably persist a prepared record
  // carrying (gtxid, coord_shard) instead of a commit record. The context
  // stays owned by the caller; write locks remain held. After a successful
  // Prepare the transaction may only be finished via FinishPrepared.
  virtual Status Prepare(TxContext* ctx, uint64_t gtxid, uint64_t coord_shard) {
    (void)ctx;
    (void)gtxid;
    (void)coord_shard;
    return Status::NotSupported("engine does not support cross-shard prepare");
  }

  // Coordinator only: durably persist the commit decision on the already-
  // prepared context's slot (exactly one drain) WITHOUT handing the context
  // to the applier — the coordinator's slot must stay occupied until every
  // participant is durably committed, or presumed-abort breaks.
  virtual Status PersistDecision(TxContext* ctx) {
    (void)ctx;
    return Status::NotSupported("engine does not support cross-shard decisions");
  }

  // Resolves a prepared transaction per the coordinator's decision: commit
  // hands it to the applier like a normal commit (skipping the commit-record
  // persist when the slot already carries the decision record); abort rolls
  // back from the backup exactly like Abort.
  virtual Status FinishPrepared(std::unique_ptr<TxContext> ctx, bool commit) {
    (void)ctx;
    (void)commit;
    return Status::NotSupported("engine does not support cross-shard finish");
  }

  // Crash recovery: resolves every transaction left in the intent log
  // (incomplete transactions are treated as aborted, paper §3).
  virtual Status Recover() = 0;

  // Blocks until all committed transactions are fully applied (backup in
  // sync, locks released). Used by tests, benchmarks and shutdown.
  virtual void WaitIdle() {}

  // Blocks until online recovery work (background backup reconciliation)
  // has fully drained. No-op for engines without online recovery, and after
  // an offline recovery. Note this does NOT wait for handed-off
  // committed-but-unapplied transactions — that is WaitIdle's job.
  virtual void WaitForRecovery() {}

  // NVM bytes used beyond the main heap (backup pools), for Table 1.
  virtual uint64_t backup_bytes() const { return 0; }

  virtual EngineStats stats() const = 0;
};

}  // namespace kamino::txn

#endif  // SRC_TXN_ENGINE_H_
