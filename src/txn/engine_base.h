// Shared plumbing for the atomicity engines: heap/log/lock access, intent
// bookkeeping, and the batched flush of a transaction's write set.

#ifndef SRC_TXN_ENGINE_BASE_H_
#define SRC_TXN_ENGINE_BASE_H_

#include <atomic>

#include "src/common/checksum.h"
#include "src/heap/heap.h"
#include "src/txn/engine.h"
#include "src/txn/lock_manager.h"
#include "src/txn/log_manager.h"

namespace kamino::txn {

class EngineBase : public AtomicityEngine {
 public:
  EngineStats stats() const override {
    EngineStats s;
    s.committed = committed_.load(std::memory_order_relaxed);
    s.aborted = aborted_.load(std::memory_order_relaxed);
    s.applied = applied_.load(std::memory_order_relaxed);
    s.recovered_forward = recovered_forward_.load(std::memory_order_relaxed);
    s.recovered_back = recovered_back_.load(std::memory_order_relaxed);
    if (log_ != nullptr) {
      const LogStats ls = log_->stats();
      s.log_blocked_acquires = ls.blocked_acquires;
      s.log_blocked_wait_ns = ls.blocked_wait_ns;
      s.group_commit_commits = ls.group_commit_commits;
      s.group_commit_leader_drains = ls.group_commit_leader_drains;
    }
    s.persist_sites = heap_->pool()->site_stats();
    return s;
  }

 protected:
  EngineBase(heap::Heap* heap, LogManager* log, LockManager* locks)
      : heap_(heap), log_(log), locks_(locks) {}

  nvm::Pool* pool() { return heap_->pool(); }

  // Log slots are acquired lazily on the first write intent: read-only
  // transactions (the bulk of YCSB B/C/D) never touch the log at all, as in
  // NVML, and never involve the asynchronous applier.
  Status EnsureSlot(TxContext* ctx) {
    if (ctx->slot.valid()) {
      return Status::Ok();
    }
    Result<SlotHandle> slot = log_->AcquireSlot(ctx->txid);
    if (!slot.ok()) {
      return slot.status();
    }
    ctx->slot = *slot;
    return Status::Ok();
  }

  // Resolves a caller-supplied size: 0 means "the whole object at offset".
  Result<uint64_t> ResolveSize(uint64_t offset, uint64_t size) {
    if (size != 0) {
      return size;
    }
    const uint64_t object = heap_->ObjectSize(offset);
    if (object == 0) {
      return Status::InvalidArgument("offset is not an allocation start; pass a size");
    }
    return object;
  }

  // Acquires the write lock on `key` and records it for release.
  Status LockWrite(TxContext* ctx, uint64_t key) {
    Status st = locks_->AcquireWrite(key, ctx->txid);
    if (!st.ok()) {
      return st;
    }
    ctx->write_lock_keys.push_back(key);
    return Status::Ok();
  }

  void ReleaseWriteLocks(TxContext* ctx) {
    for (uint64_t key : ctx->write_lock_keys) {
      locks_->ReleaseWrite(key, ctx->txid);
    }
    ctx->write_lock_keys.clear();
  }

  // Flushes every kWrite/kAlloc range in the write set, then drains once.
  // This is the only data-persistence work common to all engines' commits.
  void FlushWriteRanges(TxContext* ctx) {
    nvm::PersistSiteScope site("engine/flush-write-set");
    bool flushed = false;
    for (const Intent& in : ctx->intents) {
      if (in.kind == IntentKind::kWrite || in.kind == IntentKind::kAlloc) {
        pool()->Flush(pool()->At(in.offset), in.size);
        flushed = true;
      }
    }
    if (flushed) {
      pool()->Drain();
    }
  }

  // Epoch-commit variant: flushes the write set WITHOUT draining (the epoch
  // drain covers it) and computes the CRC the checked commit record carries
  // — recovery's roll-forward gate. Returns the CRC; `*range_count` gets the
  // number of kWrite/kAlloc ranges, in intent order — the same order
  // ScanForRecovery recomputes in.
  uint64_t FlushWriteRangesChecked(TxContext* ctx, uint64_t* range_count) {
    nvm::PersistSiteScope site("engine/flush-write-set");
    uint64_t crc = 0;
    uint64_t ranges = 0;
    for (const Intent& in : ctx->intents) {
      if (in.kind == IntentKind::kWrite || in.kind == IntentKind::kAlloc) {
        void* p = pool()->At(in.offset);
        pool()->Flush(p, in.size);
        crc = Crc64(p, in.size, crc);
        ++ranges;
      }
    }
    *range_count = ranges;
    return crc;
  }

  heap::Heap* heap_;
  LogManager* log_;
  LockManager* locks_;

  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> recovered_forward_{0};
  std::atomic<uint64_t> recovered_back_{0};
};

}  // namespace kamino::txn

#endif  // SRC_TXN_ENGINE_BASE_H_
