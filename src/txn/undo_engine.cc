#include "src/txn/undo_engine.h"

#include <cstring>

#include "src/common/checksum.h"

namespace kamino::txn {

Status UndoLogEngine::Begin(TxContext* ctx) {
  (void)ctx;  // The slot is acquired lazily on the first write intent.
  return Status::Ok();
}

Result<void*> UndoLogEngine::OpenWrite(TxContext* ctx, uint64_t offset, uint64_t size) {
  auto existing = ctx->open_ranges.find(offset);
  if (existing != ctx->open_ranges.end()) {
    return pool()->At(offset);
  }
  Result<uint64_t> resolved = ResolveSize(offset, size);
  if (!resolved.ok()) {
    return resolved.status();
  }
  size = *resolved;

  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));

  // The critical-path copy: snapshot the old payload into the undo log
  // before any in-place edit (NVML TX_ADD semantics).
  Result<uint64_t> payload = log_->ReservePayload(ctx->slot, size);
  if (!payload.ok()) {
    return payload.status();
  }
  std::memcpy(pool()->At(*payload), pool()->At(offset), size);
  {
    nvm::PersistSiteScope site("undo/snapshot");
    pool()->Flush(pool()->At(*payload), size);
  }
  // Record + snapshot become durable together on this record's drain. The
  // snapshot CRC rides in the record (aux2) so recovery can tell a durable
  // snapshot from one lost to an unlucky cache eviction (the record line
  // surviving without its payload lines) and skip the restore — safe,
  // because an undurable snapshot implies the drain never completed, which
  // implies the in-place store it guards never happened.
  const uint64_t snapshot_crc = Crc64(pool()->At(*payload), size);
  KAMINO_RETURN_IF_ERROR(log_->AppendRecord(ctx->slot, IntentKind::kWrite, offset, size,
                                            *payload, /*drain=*/true, snapshot_crc));

  ctx->open_ranges.emplace(offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kWrite, offset, size, *payload, snapshot_crc});
  return pool()->At(offset);
}

Status UndoLogEngine::OpenWriteBatch(TxContext* ctx, const WriteSpan* spans, size_t count,
                                     void** out) {
  // Batched TX_ADD: N snapshots and N records are flushed, then a single
  // drain covers all of them before any span's write-through pointer is
  // released — one fence instead of N on the critical path.
  bool appended = false;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t offset = spans[i].offset;
    out[i] = nullptr;
    if (ctx->open_ranges.find(offset) != ctx->open_ranges.end()) {
      continue;
    }
    Result<uint64_t> resolved = ResolveSize(offset, spans[i].size);
    if (!resolved.ok()) {
      return resolved.status();
    }
    const uint64_t size = *resolved;
    KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
    KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
    Result<uint64_t> payload = log_->ReservePayload(ctx->slot, size);
    if (!payload.ok()) {
      return payload.status();
    }
    std::memcpy(pool()->At(*payload), pool()->At(offset), size);
    {
      nvm::PersistSiteScope site("undo/snapshot");
      pool()->Flush(pool()->At(*payload), size);
    }
    const uint64_t snapshot_crc = Crc64(pool()->At(*payload), size);
    KAMINO_RETURN_IF_ERROR(log_->AppendRecord(ctx->slot, IntentKind::kWrite, offset, size,
                                              *payload, /*drain=*/false, snapshot_crc));
    ctx->open_ranges.emplace(offset, ctx->intents.size());
    ctx->intents.push_back(Intent{IntentKind::kWrite, offset, size, *payload, snapshot_crc});
    appended = true;
  }
  if (appended) {
    log_->DrainAppends();
  }
  for (size_t i = 0; i < count; ++i) {
    out[i] = pool()->At(spans[i].offset);
  }
  return Status::Ok();
}

Result<uint64_t> UndoLogEngine::Alloc(TxContext* ctx, uint64_t size) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<alloc::Reservation> resv = heap_->allocator()->PrepareAlloc(size);
  if (!resv.ok()) {
    return resv.status();
  }
  Status st = LockWrite(ctx, resv->offset);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  st = log_->AppendRecord(ctx->slot, IntentKind::kAlloc, resv->offset, resv->size);
  if (!st.ok()) {
    heap_->allocator()->CancelAlloc(*resv);
    return st;
  }
  heap_->allocator()->CommitAlloc(*resv);
  ctx->open_ranges.emplace(resv->offset, ctx->intents.size());
  ctx->intents.push_back(Intent{IntentKind::kAlloc, resv->offset, resv->size, 0});
  return resv->offset;
}

Status UndoLogEngine::Free(TxContext* ctx, uint64_t offset) {
  KAMINO_RETURN_IF_ERROR(EnsureSlot(ctx));
  Result<uint64_t> size = ResolveSize(offset, 0);
  if (!size.ok()) {
    return size.status();
  }
  KAMINO_RETURN_IF_ERROR(LockWrite(ctx, offset));
  // drain=false: deferred free — see KaminoEngine::Free and DESIGN.md §8.
  KAMINO_RETURN_IF_ERROR(log_->AppendRecord(ctx->slot, IntentKind::kFree, offset, *size, 0,
                                            /*drain=*/false));
  ctx->intents.push_back(Intent{IntentKind::kFree, offset, *size, 0});
  return Status::Ok();
}

Status UndoLogEngine::Commit(std::unique_ptr<TxContext> ctx) {
  if (!ctx->slot.valid()) {
    ReleaseWriteLocks(ctx.get());
    committed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  // All resolution is inline: this thread persists the data, commits,
  // executes deferred frees, discards the undo data and releases the locks.
  FlushWriteRanges(ctx.get());
  log_->SetState(ctx->slot, TxState::kCommitted);
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kFree) {
      KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRawKeepReserved(in.offset));
    }
  }
  log_->ReleaseSlot(ctx->slot);
  for (const Intent& in : ctx->intents) {
    if (in.kind == IntentKind::kFree) {
      heap_->allocator()->ReleaseReservation(in.offset);
    }
  }
  ReleaseWriteLocks(ctx.get());
  committed_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status UndoLogEngine::Abort(TxContext* ctx) {
  if (!ctx->slot.valid()) {
    ReleaseWriteLocks(ctx);
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  log_->SetState(ctx->slot, TxState::kAborted);
  nvm::PersistSiteScope site("engine/abort-rollback");
  for (auto it = ctx->intents.rbegin(); it != ctx->intents.rend(); ++it) {
    switch (it->kind) {
      case IntentKind::kWrite:
        std::memcpy(pool()->At(it->offset), pool()->At(it->aux), it->size);
        pool()->Persist(pool()->At(it->offset), it->size);
        break;
      case IntentKind::kAlloc:
        KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(it->offset));
        break;
      case IntentKind::kFree:
        break;
      default:
        break;
    }
  }
  log_->ReleaseSlot(ctx->slot);
  ReleaseWriteLocks(ctx);
  aborted_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status UndoLogEngine::Recover() {
  nvm::PersistSiteScope site("engine/recover");
  std::vector<RecoveredTx> txs = log_->ScanForRecovery();
  for (const RecoveredTx& tx : txs) {
    SlotHandle handle = log_->HandleForRecovered(tx);
    if (tx.state == TxState::kCommitted) {
      // Re-execute deferred frees; the in-place data already committed.
      for (const Intent& in : tx.intents) {
        if (in.kind == IntentKind::kFree) {
          KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
        }
      }
      recovered_forward_.fetch_add(1, std::memory_order_relaxed);
    } else {
      for (auto it = tx.intents.rbegin(); it != tx.intents.rend(); ++it) {
        switch (it->kind) {
          case IntentKind::kWrite:
            // Only restore snapshots that are provably intact (aux2 CRC). A
            // mismatch means the record line survived a crash its payload
            // lines did not — possible only if the append's drain never
            // completed, so the guarded in-place store never happened and
            // skipping the restore is the correct (and only safe) choice.
            if (Crc64(pool()->At(it->aux), it->size) != it->aux2) {
              break;
            }
            std::memcpy(pool()->At(it->offset), pool()->At(it->aux), it->size);
            pool()->Persist(pool()->At(it->offset), it->size);
            break;
          case IntentKind::kAlloc:
            KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(it->offset));
            break;
          default:
            break;
        }
      }
      recovered_back_.fetch_add(1, std::memory_order_relaxed);
    }
    log_->ReleaseSlot(handle);
  }
  return Status::Ok();
}

}  // namespace kamino::txn
