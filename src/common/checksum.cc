#include "src/common/checksum.h"

#include <array>

namespace kamino {
namespace {

// Table-driven CRC implementations. Tables are built once at static-init time;
// both polynomials are in "reflected" form.
constexpr uint32_t kCrc32cPoly = 0x82F63B78u;   // Castagnoli, reflected.
constexpr uint64_t kCrc64Poly = 0xC96C5795D7870F42ull;  // ECMA-182, reflected.

std::array<uint32_t, 256> BuildCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kCrc32cPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

std::array<uint64_t, 256> BuildCrc64Table() {
  std::array<uint64_t, 256> table{};
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kCrc64Poly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256> kCrc32cTable = BuildCrc32cTable();
const std::array<uint64_t, 256> kCrc64Table = BuildCrc64Table();

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kCrc32cTable[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

uint64_t Crc64(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kCrc64Table[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace kamino
