// Lightweight error-handling vocabulary used across the Kamino-Tx libraries.
//
// We deliberately avoid exceptions in the hot transaction paths: persistent
// memory code runs in the critical path of every transaction, and the paper's
// engines report failures (aborts, allocation failure, recovery mismatches)
// as values. `Status` carries a code plus a human-readable message; `Result<T>`
// is a value-or-Status sum type.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace kamino {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfMemory,
  kCorruption,
  kTxAborted,
  kTxConflict,
  kUnavailable,
  kInternal,
  kIoError,
  kNotSupported,
  // The service is up but operating below full strength (e.g. a replica
  // chain that lost a member and has not been repaired yet). Callers may
  // retry, but should expect reduced fault tolerance until repair.
  kDegraded,
};

// Returns a stable, human-readable name for `code` (e.g. "OUT_OF_MEMORY").
std::string_view StatusCodeName(StatusCode code);

// A cheap, copyable status value. The common OK case stores no message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code, std::string message = "")
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TxAborted(std::string msg) { return Status(StatusCode::kTxAborted, std::move(msg)); }
  static Status TxConflict(std::string msg) {
    return Status(StatusCode::kTxConflict, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
  static Status IoError(std::string msg) { return Status(StatusCode::kIoError, std::move(msg)); }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Degraded(std::string msg) { return Status(StatusCode::kDegraded, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string s(StatusCodeName(code_));
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

// Value-or-error. `value()` asserts on error in debug builds; callers are
// expected to check `ok()` first (the style used throughout this codebase).
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(v_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace kamino

// Propagates a non-OK Status from an expression. Usable in functions that
// themselves return Status.
#define KAMINO_RETURN_IF_ERROR(expr)       \
  do {                                     \
    ::kamino::Status _st = (expr);         \
    if (!_st.ok()) {                       \
      return _st;                          \
    }                                      \
  } while (0)

#endif  // SRC_COMMON_STATUS_H_
