// Cache-line geometry used by the persistence model.
//
// The Kamino-Tx log manager relies on the x86 guarantee that aligned 8-byte
// stores are failure-atomic and that a cache line is the unit of write-back
// to NVM. These constants are shared by the pool's persistence tracking and
// the intent-log layout (each log record fits inside one line so it can be
// persisted without being torn — paper §6.2).

#ifndef SRC_COMMON_CACHELINE_H_
#define SRC_COMMON_CACHELINE_H_

#include <cstddef>
#include <cstdint>

namespace kamino {

inline constexpr size_t kCacheLineSize = 64;

// Rounds `x` down / up to a cache-line boundary.
inline constexpr uint64_t CacheLineFloor(uint64_t x) { return x & ~(kCacheLineSize - 1); }
inline constexpr uint64_t CacheLineCeil(uint64_t x) {
  return (x + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
}

// Rounds `x` up to the next multiple of `align` (power of two).
inline constexpr uint64_t AlignUp(uint64_t x, uint64_t align) {
  return (x + align - 1) & ~(align - 1);
}

inline constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace kamino

#endif  // SRC_COMMON_CACHELINE_H_
