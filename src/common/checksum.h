// CRC-32C and CRC-64 checksums for persistent metadata integrity.
//
// The log-manager header (paper Figure 11) carries a checksum so recovery can
// detect a torn header write; allocator and heap superblocks reuse the same
// routines.

#ifndef SRC_COMMON_CHECKSUM_H_
#define SRC_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace kamino {

// CRC-32C (Castagnoli). `seed` allows incremental computation.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

// CRC-64 (ECMA-182, as used by XZ). `seed` allows incremental computation.
uint64_t Crc64(const void* data, size_t len, uint64_t seed = 0);

}  // namespace kamino

#endif  // SRC_COMMON_CHECKSUM_H_
