#include "src/common/status.h"

namespace kamino {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfMemory:
      return "OUT_OF_MEMORY";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kTxAborted:
      return "TX_ABORTED";
    case StatusCode::kTxConflict:
      return "TX_CONFLICT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kNotSupported:
      return "NOT_SUPPORTED";
    case StatusCode::kDegraded:
      return "DEGRADED";
  }
  return "UNKNOWN";
}

}  // namespace kamino
