// Fast deterministic PRNGs for workload generation and tests.
//
// Benchmarks need a generator that is (a) cheap enough not to perturb the
// measured path and (b) seedable so runs are reproducible. We use
// xoshiro256** for raw 64-bit output and SplitMix64 for seeding.

#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <array>
#include <cstdint>

namespace kamino {

// SplitMix64: used to expand a single seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// xoshiro256** — public-domain PRNG by Blackman & Vigna.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x853C49E6748FEA9Bull) {
    uint64_t sm = seed;
    for (auto& word : s_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses the widening-multiply trick (Lemire).
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * static_cast<__uint128_t>(bound)) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Satisfies UniformRandomBitGenerator so it can drive <random> adapters.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> s_;
};

}  // namespace kamino

#endif  // SRC_COMMON_RANDOM_H_
