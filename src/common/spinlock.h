// Small synchronization primitives shared across modules.
//
// `SpinLock` protects very short critical sections (free-list pops, LRU
// bumps). `SharedSpinLock` is a reader/writer spin lock used where the
// std::shared_mutex syscall cost would dominate (per-object lock table).

#ifndef SRC_COMMON_SPINLOCK_H_
#define SRC_COMMON_SPINLOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace kamino {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    int spins = 0;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > kSpinsBeforeYield) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  static constexpr int kSpinsBeforeYield = 1024;
  std::atomic<bool> flag_{false};
};

// Reader/writer spin lock. Writer-preferring: once a writer is waiting, new
// readers queue behind it so writers are not starved by a read-heavy stream.
class SharedSpinLock {
 public:
  SharedSpinLock() = default;
  SharedSpinLock(const SharedSpinLock&) = delete;
  SharedSpinLock& operator=(const SharedSpinLock&) = delete;

  void lock() {
    writers_waiting_.fetch_add(1, std::memory_order_relaxed);
    int spins = 0;
    for (;;) {
      uint32_t expected = 0;
      if (state_.compare_exchange_weak(expected, kWriterBit, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        break;
      }
      if (++spins > kSpinsBeforeYield) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    writers_waiting_.fetch_sub(1, std::memory_order_relaxed);
  }

  bool try_lock() {
    uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriterBit, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock() { state_.fetch_and(~kWriterBit, std::memory_order_release); }

  void lock_shared() {
    int spins = 0;
    for (;;) {
      if (writers_waiting_.load(std::memory_order_relaxed) == 0) {
        uint32_t prev = state_.fetch_add(1, std::memory_order_acquire);
        if ((prev & kWriterBit) == 0) {
          return;
        }
        state_.fetch_sub(1, std::memory_order_relaxed);
      }
      if (++spins > kSpinsBeforeYield) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  bool try_lock_shared() {
    if (writers_waiting_.load(std::memory_order_relaxed) != 0) {
      return false;
    }
    uint32_t prev = state_.fetch_add(1, std::memory_order_acquire);
    if ((prev & kWriterBit) == 0) {
      return true;
    }
    state_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }

  void unlock_shared() { state_.fetch_sub(1, std::memory_order_release); }

 private:
  static constexpr uint32_t kWriterBit = 0x80000000u;
  static constexpr int kSpinsBeforeYield = 1024;

  std::atomic<uint32_t> state_{0};            // kWriterBit | reader count.
  std::atomic<uint32_t> writers_waiting_{0};  // Writer-preference gate.
};

}  // namespace kamino

#endif  // SRC_COMMON_SPINLOCK_H_
