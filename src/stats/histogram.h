// Latency histogram with logarithmic buckets (HdrHistogram-style), used by
// the latency benchmarks (Figures 13, 14, 17) to report mean and tail
// percentiles without per-sample storage.

#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace kamino::stats {

class LatencyHistogram {
 public:
  // Buckets: 64 orders of magnitude (powers of two), 16 linear sub-buckets
  // each — ~6% relative error, fixed footprint, lock-free recording.
  LatencyHistogram();

  void Record(uint64_t nanos);
  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double MeanNs() const;
  uint64_t PercentileNs(double p) const;  // p in (0, 100].
  uint64_t MinNs() const { return min_.load(std::memory_order_relaxed); }
  uint64_t MaxNs() const { return max_.load(std::memory_order_relaxed); }

  // "mean=1.2us p50=1.1us p99=3.4us" style summary.
  std::string Summary() const;

 private:
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kBuckets = 64 * kSub;

  static int BucketFor(uint64_t nanos);
  static uint64_t BucketLow(int index);

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ull};
  std::atomic<uint64_t> max_{0};
};

// Convenience RAII timer recording into a histogram.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram* hist);
  ~ScopedLatency();
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  LatencyHistogram* hist_;
  uint64_t start_ns_;
};

uint64_t NowNanos();

}  // namespace kamino::stats

#endif  // SRC_STATS_HISTOGRAM_H_
