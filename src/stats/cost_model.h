// Cost model for Figure 16 ("normalized performance per dollar").
//
// The paper prices configurations with the AWS TCO calculator for Azure
// A9-class machines (16 cores, 112 GB). The figure's point is relative:
// Kamino-Tx-Simple doubles NVM capacity cost for the highest throughput,
// Dynamic-α pays (1+α)×, undo-logging pays 1×. Any monotone per-GB price
// reproduces the crossover, so the model is (base node $ + $/GB × NVM GB)
// per month, with defaults loosely derived from 2016-era A9 pricing.

#ifndef SRC_STATS_COST_MODEL_H_
#define SRC_STATS_COST_MODEL_H_

#include <cstdint>

namespace kamino::stats {

struct CostModelOptions {
  // Monthly cost of a server excluding the NVM (compute, network, ...).
  double node_dollars = 800.0;
  // Monthly cost per GB of NVM (the A9's 112 GB RAM at ~$1.5k/month memory
  // share ≈ $13/GB; rounded).
  double dollars_per_gb = 13.0;
};

class CostModel {
 public:
  explicit CostModel(const CostModelOptions& options = CostModelOptions())
      : options_(options) {}

  // Total monthly cost of `servers` nodes holding `nvm_bytes` of NVM overall.
  double Dollars(int servers, uint64_t nvm_bytes) const {
    return options_.node_dollars * servers +
           options_.dollars_per_gb * (static_cast<double>(nvm_bytes) / (1ull << 30));
  }

  // Figure 16's metric.
  double OpsPerSecPerDollar(double ops_per_sec, int servers, uint64_t nvm_bytes) const {
    const double dollars = Dollars(servers, nvm_bytes);
    return dollars <= 0 ? 0 : ops_per_sec / dollars;
  }

 private:
  CostModelOptions options_;
};

}  // namespace kamino::stats

#endif  // SRC_STATS_COST_MODEL_H_
