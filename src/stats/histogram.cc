#include "src/stats/histogram.h"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace kamino::stats {

uint64_t NowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets) {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

int LatencyHistogram::BucketFor(uint64_t nanos) {
  if (nanos < kSub) {
    return static_cast<int>(nanos);
  }
  // nanos in [2^(e + kSubBits), 2^(e + kSubBits + 1)) lands in super-bucket
  // e+1, linear sub-bucket (nanos >> e) - kSub.
  const int msb = 63 - __builtin_clzll(nanos);
  const int exponent = msb - kSubBits;
  const int sub = static_cast<int>(nanos >> exponent) - kSub;
  const int index = (exponent + 1) * kSub + sub;
  return index < kBuckets ? index : kBuckets - 1;
}

uint64_t LatencyHistogram::BucketLow(int index) {
  if (index < kSub) {
    return static_cast<uint64_t>(index);
  }
  const int exponent = index / kSub - 1;
  const int sub = index % kSub;
  return (uint64_t{kSub} + static_cast<uint64_t>(sub)) << exponent;
}

void LatencyHistogram::Record(uint64_t nanos) {
  buckets_[static_cast<size_t>(BucketFor(nanos))].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t prev = min_.load(std::memory_order_relaxed);
  while (nanos < prev && !min_.compare_exchange_weak(prev, nanos, std::memory_order_relaxed)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (nanos > prev && !max_.compare_exchange_weak(prev, nanos, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<size_t>(i)].fetch_add(
        other.buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  const uint64_t omin = other.min_.load(std::memory_order_relaxed);
  uint64_t prev = min_.load(std::memory_order_relaxed);
  while (omin < prev && !min_.compare_exchange_weak(prev, omin, std::memory_order_relaxed)) {
  }
  const uint64_t omax = other.max_.load(std::memory_order_relaxed);
  prev = max_.load(std::memory_order_relaxed);
  while (omax > prev && !max_.compare_exchange_weak(prev, omax, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double LatencyHistogram::MeanNs() const {
  const uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) / static_cast<double>(n);
}

uint64_t LatencyHistogram::PercentileNs(double p) const {
  const uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  const auto target =
      static_cast<uint64_t>(std::ceil(static_cast<double>(n) * p / 100.0));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (seen >= target) {
      return BucketLow(i);
    }
  }
  return max_.load(std::memory_order_relaxed);
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "mean=%.2fus p50=%.2fus p99=%.2fus max=%.2fus n=%llu",
                MeanNs() / 1000.0, static_cast<double>(PercentileNs(50)) / 1000.0,
                static_cast<double>(PercentileNs(99)) / 1000.0,
                static_cast<double>(MaxNs()) / 1000.0,
                static_cast<unsigned long long>(count()));
  return buf;
}

ScopedLatency::ScopedLatency(LatencyHistogram* hist) : hist_(hist), start_ns_(NowNanos()) {}

ScopedLatency::~ScopedLatency() {
  if (hist_ != nullptr) {
    hist_->Record(NowNanos() - start_ns_);
  }
}

}  // namespace kamino::stats
