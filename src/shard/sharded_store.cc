#include "src/shard/sharded_store.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <thread>

#include "src/txn/kamino_engine.h"

namespace kamino::shard {

namespace {

// splitmix64 finalizer: uniform over shards even for dense sequential keys
// (YCSB's user0..userN), unlike a bare modulo.
uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool IsKaminoEngine(txn::EngineType type) {
  return type == txn::EngineType::kKaminoSimple || type == txn::EngineType::kKaminoDynamic;
}

Status ValidateOptions(const ShardedStoreOptions& options, bool open) {
  if (options.num_shards < 1 || options.num_shards > 1024) {
    return Status::InvalidArgument("num_shards must be in [1, 1024]");
  }
  if (!IsKaminoEngine(options.engine)) {
    // Prepare/PersistDecision/FinishPrepared are implemented by the Kamino
    // engines; the cross-shard commit has no meaning for the baselines.
    return Status::NotSupported("sharded store requires a Kamino engine");
  }
  if (!options.external_pools.empty() &&
      options.external_pools.size() != static_cast<size_t>(options.num_shards)) {
    return Status::InvalidArgument("external_pools size must equal num_shards");
  }
  if (open && options.external_pools.empty()) {
    return Status::InvalidArgument(
        "ShardedStore::Open requires external pools (owned pools are anonymous "
        "and cannot survive a restart)");
  }
  if (!options.external_pools.empty()) {
    for (const auto& p : options.external_pools) {
      if (p.main == nullptr || p.backup == nullptr) {
        return Status::InvalidArgument("external shard pools must be non-null");
      }
    }
  }
  return Status::Ok();
}

Status Combine(const std::vector<Status>& per_shard) {
  std::string msg;
  for (size_t i = 0; i < per_shard.size(); ++i) {
    if (per_shard[i].ok()) {
      continue;
    }
    if (!msg.empty()) {
      msg += "; ";
    }
    msg += "shard" + std::to_string(i) + ": " + std::string(per_shard[i].message());
  }
  return msg.empty() ? Status::Ok() : Status::Unavailable(std::move(msg));
}

}  // namespace

txn::TxManagerOptions ShardedStore::ManagerOptions(const ShardedStoreOptions& options,
                                                   size_t i, nvm::Pool* external_backup,
                                                   bool open) {
  txn::TxManagerOptions mopts;
  mopts.engine = options.engine;
  mopts.log = options.log;
  mopts.lock = options.lock;
  mopts.applier_threads = options.applier_threads;
  mopts.alpha = options.alpha;
  mopts.recovery = options.recovery;
  mopts.external_backup_pool = external_backup;
  mopts.backup_flush_latency_ns = options.backup_flush_latency_ns;
  mopts.backup_drain_latency_ns = options.backup_drain_latency_ns;
  mopts.backup_track_stats = options.track_stats;
  mopts.backup_sleep_latency = options.sleep_latency;
  mopts.site_prefix = "shard" + std::to_string(i);
  // Sharded open always splits attach (phase A) from recovery (phase C):
  // in-doubt resolution must land between them.
  mopts.skip_recovery = open;
  return mopts;
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::Create(const ShardedStoreOptions& options) {
  KAMINO_RETURN_IF_ERROR(ValidateOptions(options, /*open=*/false));
  auto store = std::unique_ptr<ShardedStore>(new ShardedStore());
  store->shards_.resize(static_cast<size_t>(options.num_shards));

  for (size_t i = 0; i < store->shards_.size(); ++i) {
    Shard& shard = store->shards_[i];
    if (options.external_pools.empty()) {
      heap::HeapOptions hopts;
      hopts.pool_size = options.pool_size;
      hopts.log_region_size = options.log_region_size;
      hopts.track_stats = options.track_stats;
      hopts.sleep_latency = options.sleep_latency;
      hopts.flush_latency_ns = options.flush_latency_ns;
      hopts.drain_latency_ns = options.drain_latency_ns;
      hopts.site_prefix = "shard" + std::to_string(i);
      Result<std::unique_ptr<heap::Heap>> heap = heap::Heap::Create(hopts);
      if (!heap.ok()) {
        return heap.status();
      }
      shard.heap = std::move(*heap);
    } else {
      shard.main_pool = options.external_pools[i].main;
      shard.backup_pool = options.external_pools[i].backup;
      Result<std::unique_ptr<heap::Heap>> heap =
          heap::Heap::CreateOn(shard.main_pool, options.log_region_size);
      if (!heap.ok()) {
        return heap.status();
      }
      shard.heap = std::move(*heap);
    }

    Result<std::unique_ptr<txn::TxManager>> mgr = txn::TxManager::Create(
        shard.heap.get(), ManagerOptions(options, i, shard.backup_pool, /*open=*/false));
    if (!mgr.ok()) {
      return mgr.status();
    }
    shard.mgr = std::move(*mgr);

    Result<std::unique_ptr<kv::KvStore>> kv = kv::KvStore::CreateDetached(shard.mgr.get());
    if (!kv.ok()) {
      return kv.status();
    }
    shard.store = std::move(*kv);

    // Persist the anchor transactionally, then publish it at the heap root
    // (failure-atomic 8-byte store). A crash before set_root leaks only the
    // anchor block of a store that was never created.
    uint64_t anchor_off = 0;
    Status st = shard.mgr->Run([&](txn::Tx& tx) -> Status {
      Result<uint64_t> off = tx.Alloc(sizeof(ShardAnchor));
      if (!off.ok()) {
        return off.status();
      }
      Result<void*> p = tx.OpenWrite(*off, sizeof(ShardAnchor));
      if (!p.ok()) {
        return p.status();
      }
      auto* anchor = static_cast<ShardAnchor*>(*p);
      anchor->magic = kShardAnchorMagic;
      anchor->version = kShardAnchorVersion;
      anchor->num_shards = static_cast<uint64_t>(options.num_shards);
      anchor->shard_index = i;
      anchor->tree_anchor = shard.store->anchor();
      anchor_off = *off;
      return Status::Ok();
    });
    if (!st.ok()) {
      return st;
    }
    shard.heap->set_root(anchor_off);
    shard.open_status = Status::Ok();
  }
  return store;
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(const ShardedStoreOptions& options) {
  KAMINO_RETURN_IF_ERROR(ValidateOptions(options, /*open=*/true));
  auto store = std::unique_ptr<ShardedStore>(new ShardedStore());
  const size_t n = static_cast<size_t>(options.num_shards);
  store->shards_.resize(n);
  std::vector<Status> phase_a(n, Status::Ok());
  std::vector<uint64_t> tree_anchor(n, 0);

  // --- Phase A (parallel): attach pools, validate anchors, open managers
  // WITHOUT recovery. Recovery cannot run yet: rolling a committed
  // coordinator slot forward releases it, destroying the decision record
  // in-doubt participants on other shards still need.
  {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers.emplace_back([&, i] {
        Shard& shard = store->shards_[i];
        shard.main_pool = options.external_pools[i].main;
        shard.backup_pool = options.external_pools[i].backup;
        Result<std::unique_ptr<heap::Heap>> heap = heap::Heap::Attach(shard.main_pool);
        if (!heap.ok()) {
          phase_a[i] = heap.status();
          return;
        }
        const uint64_t root = (*heap)->root();
        if (root == 0) {
          phase_a[i] = Status::NotFound("shard heap root holds no anchor");
          return;
        }
        const auto* anchor = static_cast<const ShardAnchor*>(shard.main_pool->At(root));
        if (anchor->magic != kShardAnchorMagic || anchor->version != kShardAnchorVersion) {
          phase_a[i] = Status::Corruption("bad shard anchor magic/version");
          return;
        }
        if (anchor->num_shards != static_cast<uint64_t>(options.num_shards) ||
            anchor->shard_index != i) {
          phase_a[i] = Status::InvalidArgument(
              "shard topology mismatch: pool was formatted as shard " +
              std::to_string(anchor->shard_index) + "/" + std::to_string(anchor->num_shards) +
              ", opened as shard " + std::to_string(i) + "/" +
              std::to_string(options.num_shards));
          return;
        }
        tree_anchor[i] = anchor->tree_anchor;
        shard.heap = std::move(*heap);
        Result<std::unique_ptr<txn::TxManager>> mgr = txn::TxManager::Open(
            shard.heap.get(), ManagerOptions(options, i, shard.backup_pool, /*open=*/true));
        if (!mgr.ok()) {
          phase_a[i] = mgr.status();
          shard.heap.reset();
          return;
        }
        shard.mgr = std::move(*mgr);
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  for (size_t i = 0; i < n; ++i) {
    store->shards_[i].open_status = phase_a[i];
  }
  if (!options.allow_partial_open) {
    Status st = Combine(phase_a);
    if (!st.ok()) {
      return st;
    }
  }

  // --- Phase B (serial): resolve in-doubt prepared slots. A prepared slot
  // commits iff its coordinator shard's slot for the gtxid is durably
  // kCommitted (the decision record); anything else — coordinator slot still
  // kPrepared, or absent — is a presumed abort, which is safe because the
  // coordinator's context is only handed to its applier (and hence its slot
  // only released) after every participant has durably left kPrepared.
  std::vector<std::vector<txn::RecoveredTx>> scans(n);
  for (size_t i = 0; i < n; ++i) {
    if (store->shards_[i].mgr != nullptr) {
      scans[i] = store->shards_[i].mgr->log()->ScanForRecovery();
    }
  }
  for (size_t i = 0; i < n; ++i) {
    Shard& shard = store->shards_[i];
    if (shard.mgr == nullptr) {
      continue;
    }
    for (const txn::RecoveredTx& tx : scans[i]) {
      if (tx.state != txn::TxState::kPrepared) {
        continue;
      }
      if (tx.coord_shard >= n || store->shards_[tx.coord_shard].mgr == nullptr) {
        // The decision record is unreachable (corrupt coordinate, or the
        // coordinator shard failed to open): this shard cannot be recovered
        // correctly, so it joins the failed set rather than guessing.
        shard.open_status = Status::Unavailable(
            "in-doubt transaction depends on unavailable coordinator shard " +
            std::to_string(tx.coord_shard));
        shard.store.reset();
        shard.mgr.reset();
        shard.heap.reset();
        break;
      }
      bool commit = false;
      for (const txn::RecoveredTx& coord_tx : scans[tx.coord_shard]) {
        if (coord_tx.txid == tx.gtxid) {
          commit = coord_tx.state == txn::TxState::kCommitted;
          break;
        }
      }
      shard.mgr->log()->ResolvePrepared(tx, commit);
    }
  }
  if (!options.allow_partial_open) {
    std::vector<Status> phase_b(n, Status::Ok());
    for (size_t i = 0; i < n; ++i) {
      phase_b[i] = store->shards_[i].open_status;
    }
    Status st = Combine(phase_b);
    if (!st.ok()) {
      return st;
    }
  }

  // --- Phase C (parallel): ordinary per-shard recovery, then store attach.
  // Every slot is now kFree/kRunning/kCommitted/kAborted — the single-heap
  // recovery path applies unchanged.
  {
    std::vector<Status> phase_c(n, Status::Ok());
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (store->shards_[i].mgr == nullptr) {
        continue;
      }
      workers.emplace_back([&, i] {
        Shard& shard = store->shards_[i];
        Status st = shard.mgr->engine()->Recover();
        if (!st.ok()) {
          phase_c[i] = st;
          return;
        }
        Result<std::unique_ptr<kv::KvStore>> kv =
            kv::KvStore::Attach(shard.mgr.get(), tree_anchor[i]);
        if (!kv.ok()) {
          phase_c[i] = kv.status();
          return;
        }
        shard.store = std::move(*kv);
      });
    }
    for (auto& w : workers) {
      w.join();
    }
    for (size_t i = 0; i < n; ++i) {
      Shard& shard = store->shards_[i];
      if (shard.mgr != nullptr && !phase_c[i].ok()) {
        shard.open_status = phase_c[i];
        shard.store.reset();
        shard.mgr.reset();
        shard.heap.reset();
      }
    }
    if (!options.allow_partial_open) {
      Status st = Combine(phase_c);
      if (!st.ok()) {
        return st;
      }
    }
  }
  return store;
}

ShardedStore::~ShardedStore() = default;

size_t ShardedStore::ShardOf(uint64_t key) const {
  return static_cast<size_t>(MixKey(key) % shards_.size());
}

Status ShardedStore::CheckShard(uint64_t key, size_t* shard) const {
  *shard = ShardOf(key);
  const Shard& s = shards_[*shard];
  if (s.mgr == nullptr) {
    return Status::Unavailable("shard " + std::to_string(*shard) + " is unavailable (" +
                               std::string(s.open_status.message()) + ")");
  }
  return Status::Ok();
}

Result<std::string> ShardedStore::Read(uint64_t key) {
  size_t s = 0;
  KAMINO_RETURN_IF_ERROR(CheckShard(key, &s));
  return shards_[s].store->Read(key);
}

Status ShardedStore::Update(uint64_t key, std::string_view value) {
  size_t s = 0;
  KAMINO_RETURN_IF_ERROR(CheckShard(key, &s));
  return shards_[s].store->Update(key, value);
}

Status ShardedStore::Insert(uint64_t key, std::string_view value) {
  size_t s = 0;
  KAMINO_RETURN_IF_ERROR(CheckShard(key, &s));
  return shards_[s].store->Insert(key, value);
}

Status ShardedStore::Upsert(uint64_t key, std::string_view value) {
  size_t s = 0;
  KAMINO_RETURN_IF_ERROR(CheckShard(key, &s));
  return shards_[s].store->Upsert(key, value);
}

Status ShardedStore::Delete(uint64_t key) {
  size_t s = 0;
  KAMINO_RETURN_IF_ERROR(CheckShard(key, &s));
  return shards_[s].store->Delete(key);
}

Status ShardedStore::ReadModifyWrite(uint64_t key,
                                     const std::function<void(std::string&)>& mutate) {
  size_t s = 0;
  KAMINO_RETURN_IF_ERROR(CheckShard(key, &s));
  return shards_[s].store->ReadModifyWrite(key, mutate);
}

Result<std::vector<std::pair<uint64_t, std::string>>> ShardedStore::Scan(uint64_t start,
                                                                         size_t limit) {
  // A scan is a global read, so any unavailable shard fails it (a silently
  // partial scan would be wrong).
  bool all_snapshot = true;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].mgr == nullptr) {
      return Status::Unavailable("scan needs all shards; shard " + std::to_string(i) +
                                 " is unavailable");
    }
    txn::BackupStore* bs = shards_[i].mgr->backup_store();
    if (bs == nullptr || !bs->supports_snapshot_reads()) {
      all_snapshot = false;
    }
  }
  // Preferred path: the per-shard epoch-vector cut — each shard contributes
  // a transaction-consistent state instead of the old merged read without a
  // cut, which could observe one key of a multi-key transaction on shard A
  // while missing its sibling write still applying on shard B.
  if (all_snapshot) {
    return SnapshotScan(start, limit, nullptr);
  }
  // Each shard's smallest `limit` keys >= start form a superset of the global
  // smallest `limit`: merge, sort, truncate.
  std::vector<std::pair<uint64_t, std::string>> merged;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Result<std::vector<std::pair<uint64_t, std::string>>> part =
        shards_[i].store->Scan(start, limit);
    if (!part.ok()) {
      return part.status();
    }
    merged.insert(merged.end(), std::make_move_iterator(part->begin()),
                  std::make_move_iterator(part->end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (merged.size() > limit) {
    merged.resize(limit);
  }
  return merged;
}

Result<std::vector<std::pair<uint64_t, std::string>>> ShardedStore::SnapshotScan(
    uint64_t start, size_t limit, std::vector<uint64_t>* epochs_out) {
  // Open every shard's view BEFORE reading any shard: the cut vector is
  // chosen in one tight pass, so the skew between shard epochs is bounded by
  // the open loop rather than by the (much longer) scan itself. Holding
  // several views at once cannot deadlock — the cut gate is per-store, and
  // appliers never wait on another store's gate.
  std::vector<txn::BackupStore::SnapshotView> views;
  views.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].mgr == nullptr) {
      return Status::Unavailable("scan needs all shards; shard " + std::to_string(i) +
                                 " is unavailable");
    }
    txn::BackupStore* bs = shards_[i].mgr->backup_store();
    if (bs == nullptr) {
      return Status::NotSupported("shard engine has no backup store");
    }
    shards_[i].mgr->WaitForRecovery();
    Result<txn::BackupStore::SnapshotView> view = bs->OpenSnapshot();
    if (!view.ok()) {
      return view.status();
    }
    views.push_back(std::move(*view));
  }
  if (epochs_out != nullptr) {
    epochs_out->clear();
    for (const auto& v : views) {
      epochs_out->push_back(v.epoch());
    }
  }
  std::vector<std::pair<uint64_t, std::string>> merged;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Result<std::vector<std::pair<uint64_t, std::string>>> part =
        shards_[i].store->tree()->SnapshotScan(views[i], start, limit);
    if (!part.ok()) {
      return part.status();
    }
    merged.insert(merged.end(), std::make_move_iterator(part->begin()),
                  std::make_move_iterator(part->end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (merged.size() > limit) {
    merged.resize(limit);
  }
  return merged;
}

Status ShardedStore::MultiUpdate(const std::vector<std::pair<uint64_t, std::string>>& writes) {
  if (writes.empty()) {
    return Status::Ok();
  }
  // Group by shard; within a shard the last write to a key wins (map order is
  // irrelevant — the whole batch is atomic).
  std::map<size_t, std::vector<const std::pair<uint64_t, std::string>*>> by_shard;
  for (const auto& w : writes) {
    size_t s = 0;
    KAMINO_RETURN_IF_ERROR(CheckShard(w.first, &s));
    by_shard[s].push_back(&w);
  }

  if (by_shard.size() == 1) {
    // Fully shard-local: one ordinary transaction, no 2PC.
    const size_t s = by_shard.begin()->first;
    pds::BPlusTree* tree = shards_[s].store->tree();
    auto guard = tree->LockShared();
    Status st = shards_[s].mgr->RunWithRetries([&](txn::Tx& tx) -> Status {
      for (const auto* w : by_shard.begin()->second) {
        KAMINO_RETURN_IF_ERROR(tree->UpdateInTx(tx, w->first, w->second));
      }
      return Status::Ok();
    });
    if (st.ok()) {
      single_shard_multi_updates_.fetch_add(1, std::memory_order_relaxed);
    }
    return st;
  }

  // Cross-shard: stage per-shard transactions in ascending shard order (a
  // global acquisition order, so concurrent MultiUpdates cannot deadlock;
  // conflicts degrade to lock timeouts), then run the 2PC commit. The
  // coordinator is the lowest participating shard and the cross-shard txid is
  // its local txid — unique among in-flight transactions on that shard, which
  // is the only namespace recovery resolves it in.
  constexpr int kMaxAttempts = 8;
  Status last = Status::Ok();
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<size_t> shard_ids;
    shard_ids.reserve(by_shard.size());
    for (const auto& [s, unused] : by_shard) {
      shard_ids.push_back(s);
    }
    const size_t coord = shard_ids.front();

    std::vector<std::shared_lock<std::shared_mutex>> guards;
    std::vector<txn::Tx> txs;
    guards.reserve(shard_ids.size());
    txs.reserve(shard_ids.size());

    Status st = Status::Ok();
    for (size_t s : shard_ids) {
      guards.push_back(shards_[s].store->tree()->LockShared());
      Result<txn::Tx> tx = shards_[s].mgr->Begin();
      if (!tx.ok()) {
        st = tx.status();
        break;
      }
      txs.push_back(std::move(*tx));
    }
    if (st.ok()) {
      for (size_t k = 0; k < txs.size() && st.ok(); ++k) {
        pds::BPlusTree* tree = shards_[shard_ids[k]].store->tree();
        for (const auto* w : by_shard[shard_ids[k]]) {
          st = tree->UpdateInTx(txs[k], w->first, w->second);
          if (!st.ok()) {
            break;
          }
        }
      }
    }
    if (st.ok()) {
      // Prepare in ascending order, coordinator first: a durably prepared
      // participant therefore implies the coordinator's slot (the future
      // decision record) durably exists.
      const uint64_t gtxid = txs.front().txid();
      for (size_t k = 0; k < txs.size() && st.ok(); ++k) {
        st = txs[k].Prepare(gtxid, coord);
      }
      if (st.ok()) {
        st = txs.front().PersistDecision();
      }
      if (st.ok()) {
        // The decision record is durable: the transaction IS committed, on
        // every shard, no matter what fails from here on. Convert the
        // participants first; the coordinator goes last so its slot — the
        // record recovery consults — outlives every in-doubt participant.
        for (size_t k = txs.size(); k-- > 1;) {
          (void)txs[k].FinishPrepared(true);
        }
        (void)txs.front().FinishPrepared(true);
        cross_shard_commits_.fetch_add(1, std::memory_order_relaxed);
        return Status::Ok();
      }
    }
    // Failure before the decision record: abort everything still owned.
    // Prepared handles resolve via FinishPrepared(false), active ones via
    // Abort; Tx's destructor applies exactly that rule, so clearing the
    // vector is the abort.
    txs.clear();
    guards.clear();
    cross_shard_aborts_.fetch_add(1, std::memory_order_relaxed);
    last = st;
    if (st.code() != StatusCode::kTxConflict) {
      return st;
    }
  }
  return last;
}

txn::EngineStats ShardedStore::ShardStats(size_t i) const {
  if (shards_[i].mgr == nullptr) {
    return txn::EngineStats{};
  }
  return shards_[i].mgr->engine()->stats();
}

void ShardedStore::WaitIdle() {
  for (auto& shard : shards_) {
    if (shard.mgr != nullptr) {
      shard.mgr->WaitIdle();
    }
  }
}

void ShardedStore::PauseAppliers(bool paused) {
  for (auto& shard : shards_) {
    if (shard.mgr != nullptr) {
      static_cast<txn::KaminoEngine*>(shard.mgr->engine())->PauseApplier(paused);
    }
  }
}

ShardedStore::CrossShardStats ShardedStore::cross_shard_stats() const {
  CrossShardStats s;
  s.cross_shard_commits = cross_shard_commits_.load(std::memory_order_relaxed);
  s.cross_shard_aborts = cross_shard_aborts_.load(std::memory_order_relaxed);
  s.single_shard_multi_updates = single_shard_multi_updates_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace kamino::shard
