// Sharded transactional KV store: N independent Kamino engines behind one
// atomic-transaction API (DESIGN.md §11).
//
// The paper's mechanism is per-heap — intent log + in-place update + async
// backup — so it shards naturally: each shard owns a full vertical slice
// (nvm::Pool, heap, LogManager, lock table, applier pool, backup store) and
// a key is routed to its shard by hash. Single-key transactions run entirely
// shard-local with ZERO shared state on the hot path: no common log, no
// common lock table, no common applier queue. The commit front-end — the
// part BENCH_applier_scaling showed does not scale (one group-commit leader
// drain stream, one lock table) — is multiplied by N.
//
// Multi-key transactions spanning shards get a cross-shard commit that
// reuses the intent log as the 2PC persistence substrate:
//
//   1. Every participating shard (coordinator included, always the lowest
//      shard index) stages its writes in its own log, then persists a
//      *prepared* record — the ordinary slot header re-marked kPrepared with
//      (gtxid, coordinator shard) in its reserved words. The write set is
//      already in the log; preparing copies no data.
//   2. The coordinator persists its commit *decision* by flipping its own
//      prepared slot to kCommitted (one 8-byte persist, exactly one drain).
//      This is the cross-shard commit point.
//   3. Participants durably convert prepared -> committed and hand their
//      contexts to their appliers; the coordinator's context is enqueued
//      LAST, only after every participant has left kPrepared — its slot IS
//      the decision record in-doubt recovery consults, so it must not be
//      releasable earlier.
//
// Recovery resolves in-doubt prepared slots before any per-shard recovery
// runs: commit iff the coordinator shard's slot for the gtxid is durably
// kCommitted, presumed abort otherwise. See ShardedStore::Open.
//
// All persist events carry a per-shard site prefix ("shard3/log/..."), so
// crash-point enumeration can sweep the full prepare/decide/apply window
// per shard (tests/crash_points/crash_points_shard_test.cc).

#ifndef SRC_SHARD_SHARDED_STORE_H_
#define SRC_SHARD_SHARDED_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/kv/kv_store.h"
#include "src/txn/tx_manager.h"

namespace kamino::shard {

// Per-shard persistent anchor, stored at each shard's heap root. Binds the
// shard to its position in the hash space: Open refuses to attach a pool
// whose recorded (num_shards, shard_index) disagree with the requested
// topology, because the router hash would silently re-map keys. Public so
// offline tools (kamino_inspect) can identify shard pools.
struct ShardAnchor {
  uint64_t magic;
  uint64_t version;
  uint64_t num_shards;
  uint64_t shard_index;
  uint64_t tree_anchor;  // KvStore B+Tree header offset.
};
inline constexpr uint64_t kShardAnchorMagic = 0x4B414D494E4F5348ull;  // "KAMINOSH"
inline constexpr uint64_t kShardAnchorVersion = 1;

struct ShardedStoreOptions {
  // Number of independent engine shards. Persisted in every shard's anchor;
  // Open refuses a mismatch (the router hash would silently re-map keys).
  int num_shards = 4;

  // Per-shard engine configuration (each shard gets its own full instance).
  txn::EngineType engine = txn::EngineType::kKaminoSimple;
  txn::LogOptions log;
  txn::LockOptions lock;
  int applier_threads = 1;
  double alpha = 0.25;
  txn::RecoveryOptions recovery;

  // Per-shard pool geometry (owned-pool mode).
  uint64_t pool_size = 64ull << 20;
  uint64_t log_region_size = 8ull << 20;

  // Forwarded to every shard's pools (each additionally gets a "shard<i>"
  // site prefix for per-shard persist-event attribution).
  bool track_stats = true;
  bool sleep_latency = false;
  uint32_t flush_latency_ns = 0;
  uint32_t drain_latency_ns = 0;
  uint32_t backup_flush_latency_ns = 0;
  uint32_t backup_drain_latency_ns = 0;

  // Caller-owned pools, one pair per shard (required for crash/restart
  // tests, where pools must outlive the store; the caller sets crash_sim
  // and site_prefix on them). Empty = the store creates anonymous pools.
  struct ShardPools {
    nvm::Pool* main = nullptr;
    nvm::Pool* backup = nullptr;
  };
  std::vector<ShardPools> external_pools;

  // Open only: shards that fail to attach/recover are marked unavailable
  // (operations routed to them return kUnavailable) instead of failing the
  // whole open. Per-shard outcomes are reported via shard_status().
  bool allow_partial_open = false;
};

// N-shard store exposing the KvStore API plus an atomic multi-key update.
class ShardedStore {
 public:
  // Formats every shard (pool/heap/log/backup/tree + persistent anchor).
  static Result<std::unique_ptr<ShardedStore>> Create(const ShardedStoreOptions& options);

  // Re-attaches after a restart/crash, in three phases:
  //   A (parallel)  per shard: heap attach, anchor validation, manager open
  //                 WITHOUT recovery.
  //   B (serial)    cross-shard in-doubt resolution: every kPrepared slot is
  //                 durably converted to kCommitted/kAborted per its
  //                 coordinator shard's slot state. Must precede phase C —
  //                 per-shard recovery releases coordinator slots.
  //   C (parallel)  per shard: ordinary engine recovery + store attach.
  // Requires external_pools (owned anonymous pools cannot survive a
  // process). Errors are aggregated across shards, not first-fail.
  static Result<std::unique_ptr<ShardedStore>> Open(const ShardedStoreOptions& options);

  ~ShardedStore();

  // --- KvStore API (single-key operations are fully shard-local) ------------
  Result<std::string> Read(uint64_t key);
  Status Update(uint64_t key, std::string_view value);
  Status Insert(uint64_t key, std::string_view value);
  Status Upsert(uint64_t key, std::string_view value);
  Status Delete(uint64_t key);
  Status ReadModifyWrite(uint64_t key, const std::function<void(std::string&)>& mutate);
  // Globally sorted merge of the per-shard scans. When every shard's engine
  // exposes a readable backup, the scan runs at a per-shard epoch vector:
  // all shard views are opened before any shard is read (minimizing cut
  // skew) and each shard contributes its transaction-consistent cut state —
  // no main-heap locks, no writer contention. A cross-shard 2PC transaction
  // mid-apply may still straddle the vector (per-shard consistency, not
  // global serializability; DESIGN.md §12). Engines without a readable
  // backup fall back to the merged locked read.
  Result<std::vector<std::pair<uint64_t, std::string>>> Scan(uint64_t start, size_t limit);
  // The epoch-vector scan, explicitly; *epochs_out (optional) receives every
  // shard's cut epoch. NotSupported if any shard lacks a readable backup.
  Result<std::vector<std::pair<uint64_t, std::string>>> SnapshotScan(
      uint64_t start, size_t limit, std::vector<uint64_t>* epochs_out = nullptr);

  // Atomically updates every (key, value) pair — all keys must exist. Pairs
  // on one shard run as a single shard-local transaction; pairs spanning
  // shards commit via the cross-shard 2PC above. Retries kTxConflict.
  Status MultiUpdate(const std::vector<std::pair<uint64_t, std::string>>& writes);

  // --- Introspection / test hooks -------------------------------------------
  int num_shards() const { return static_cast<int>(shards_.size()); }
  size_t ShardOf(uint64_t key) const;
  bool shard_available(size_t i) const { return shards_[i].mgr != nullptr; }
  // Phase A/B/C outcome for shard i (Ok for healthy shards).
  const Status& shard_status(size_t i) const { return shards_[i].open_status; }
  txn::TxManager* shard_manager(size_t i) { return shards_[i].mgr.get(); }
  kv::KvStore* shard_store(size_t i) { return shards_[i].store.get(); }
  txn::EngineStats ShardStats(size_t i) const;

  // Blocks until every shard's committed transactions are fully applied.
  void WaitIdle();
  // Crash-test hook: pauses/unpauses every shard's applier pool so a single
  // mutator produces a deterministic persist-event stream across shards.
  void PauseAppliers(bool paused);

  // Cross-shard 2PC observability.
  struct CrossShardStats {
    uint64_t cross_shard_commits = 0;
    uint64_t cross_shard_aborts = 0;
    uint64_t single_shard_multi_updates = 0;
  };
  CrossShardStats cross_shard_stats() const;

 private:
  struct Shard {
    std::unique_ptr<heap::Heap> heap;        // Owns the main pool unless external.
    nvm::Pool* main_pool = nullptr;
    nvm::Pool* backup_pool = nullptr;        // External only; else manager-owned.
    std::unique_ptr<txn::TxManager> mgr;
    std::unique_ptr<kv::KvStore> store;
    Status open_status;
  };

  ShardedStore() = default;

  // Per-shard plumbing shared by Create/Open.
  static txn::TxManagerOptions ManagerOptions(const ShardedStoreOptions& options, size_t i,
                                              nvm::Pool* external_backup, bool open);
  Status CheckShard(uint64_t key, size_t* shard) const;

  std::vector<Shard> shards_;
  std::atomic<uint64_t> cross_shard_commits_{0};
  std::atomic<uint64_t> cross_shard_aborts_{0};
  std::atomic<uint64_t> single_shard_multi_updates_{0};
};

}  // namespace kamino::shard

#endif  // SRC_SHARD_SHARDED_STORE_H_
