#include "src/chain/membership.h"

#include <algorithm>

namespace kamino::chain {

MembershipManager::MembershipManager(std::vector<uint64_t> initial_chain) {
  view_.view_id = 1;
  view_.nodes = std::move(initial_chain);
}

View MembershipManager::current() const {
  std::lock_guard<std::mutex> lk(mu_);
  return view_;
}

void MembershipManager::SetViewChangeListener(ViewChangeListener listener) {
  std::lock_guard<std::mutex> lk(mu_);
  listener_ = std::move(listener);
}

Result<View> MembershipManager::ReportSuspicion(uint64_t reporter, uint64_t suspect,
                                                uint64_t view_id) {
  View old_view;
  View new_view;
  ViewChangeListener listener;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (view_id != view_.view_id) {
      return Status::InvalidArgument("stale view in suspicion report");
    }
    if (!view_.Contains(reporter)) {
      return Status::InvalidArgument("reporter is not a member");
    }
    auto it = std::find(view_.nodes.begin(), view_.nodes.end(), suspect);
    if (it == view_.nodes.end()) {
      return Status::NotFound("suspect is not a member");
    }
    old_view = view_;
    view_.nodes.erase(it);
    ++view_.view_id;
    ++suspicion_view_changes_;
    new_view = view_;
    listener = listener_;
  }
  if (listener) {
    listener(new_view, suspect, old_view);
  }
  return new_view;
}

uint64_t MembershipManager::suspicion_view_changes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return suspicion_view_changes_;
}

View MembershipManager::ReportFailure(uint64_t node) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = std::find(view_.nodes.begin(), view_.nodes.end(), node);
  if (it != view_.nodes.end()) {
    view_.nodes.erase(it);
    ++view_.view_id;
  }
  return view_;
}

View MembershipManager::AddTail(uint64_t node) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!view_.Contains(node)) {
    view_.nodes.push_back(node);
    ++view_.view_id;
  }
  return view_;
}

Result<View> MembershipManager::RequestRejoin(uint64_t node, uint64_t believed_view_id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!view_.Contains(node)) {
    return Status::NotFound("node no longer a chain member");
  }
  (void)believed_view_id;  // Stale views are fine: we return the current one.
  return view_;
}

}  // namespace kamino::chain
